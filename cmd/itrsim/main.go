// Command itrsim is a deprecated shim for `itr sim` (one benchmark on the
// ITR-protected cycle-level core); it forwards all flags and produces
// identical output.
package main

import (
	"os"

	"itr/internal/experiment"
)

func main() { os.Exit(experiment.Shim("sim")) }
