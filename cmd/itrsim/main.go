// Command itrsim runs one benchmark on the ITR-protected cycle-level core
// and reports pipeline and checker statistics. It also prints the Table 2
// decode-signal specification and can demonstrate a single fault injection
// end to end.
//
// Usage:
//
//	itrsim -bench vortex -cycles 500000    # run and report
//	itrsim -print-signals                  # Table 2
//	itrsim -bench gap -inject 5000 -bit 36 # one injection, full protocol
//	itrsim -no-itr                         # baseline core without ITR
//	itrsim -asm prog.s                     # run an assembly source file
//	itrsim -profile my.json                # run a custom workload profile
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"itr/internal/asm"
	"itr/internal/fault"
	"itr/internal/isa"
	"itr/internal/pipeline"
	"itr/internal/program"
	"itr/internal/stats"
	"itr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "itrsim:", err)
		os.Exit(1)
	}
}

func run() error {
	bench := flag.String("bench", "bzip", "benchmark to run")
	asmFile := flag.String("asm", "", "run this assembly source file instead of a benchmark")
	profileFile := flag.String("profile", "", "run a custom workload profile (JSON) instead of a benchmark")
	cycles := flag.Int64("cycles", 500_000, "cycle budget")
	printSignals := flag.Bool("print-signals", false, "print the Table 2 decode-signal specification")
	noITR := flag.Bool("no-itr", false, "disable the ITR checker")
	inject := flag.Int64("inject", 0, "inject a fault at this decode event (0 = none)")
	bit := flag.Int("bit", 36, "signal bit to flip when injecting (0-63)")
	workers := flag.Int("workers", 0, "bound Go runtime parallelism (0 = all cores); itrsim runs one pipeline, so this only caps GC/runtime threads")
	flag.Parse()
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	if *printSignals {
		printTable2()
		return nil
	}

	var prog *program.Program
	var name string
	if *profileFile != "" {
		f, err := os.Open(*profileFile)
		if err != nil {
			return err
		}
		prof, err := workload.ParseProfile(f)
		f.Close()
		if err != nil {
			return err
		}
		prog, err = workload.Build(prof)
		if err != nil {
			return err
		}
		name = prof.Name
	} else if *asmFile != "" {
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			return err
		}
		prog, err = asm.Assemble(*asmFile, string(src))
		if err != nil {
			return err
		}
		name = *asmFile
	} else {
		prof, err := workload.ByName(*bench)
		if err != nil {
			return err
		}
		prog, err = workload.CachedProgram(prof)
		if err != nil {
			return err
		}
		name = prof.Name
	}

	cfg := pipeline.DefaultConfig()
	cfg.ITREnabled = !*noITR
	cpu, err := pipeline.New(prog, cfg)
	if err != nil {
		return err
	}
	if *inject > 0 {
		inj := fault.Injection{DecodeIndex: *inject, Bit: *bit}
		fmt.Printf("injecting: decode event %d, bit %d (%s field)\n", inj.DecodeIndex, inj.Bit, inj.Field())
		done := false
		cpu.SetFaultHook(func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
			if !done && i == inj.DecodeIndex {
				done = true
				fmt.Printf("  corrupted %s at pc=%d\n", d, pc)
				return d.FlipBit(inj.Bit)
			}
			return d
		})
	}

	res := cpu.Run(*cycles)
	fmt.Printf("program:        %s (%d static instructions)\n", name, prog.Len())
	fmt.Printf("termination:    %v\n", res.Termination)
	fmt.Printf("cycles:         %d\n", res.Cycles)
	fmt.Printf("committed:      %d (IPC %.2f)\n", res.Committed, res.IPC())
	fmt.Printf("decode events:  %d\n", res.DecodeEvents)
	fmt.Printf("mispredicts:    %d\n", res.Mispredicts)
	fmt.Printf("spc violations: %d\n", res.SpcFired)
	fmt.Printf("ITR flushes:    %d\n", res.ITRFlushes)
	if c := cpu.Checker(); c != nil {
		st := c.Stats()
		fmt.Printf("ITR checker:    %d traces dispatched, %d hits, %d misses, %d writes\n",
			st.Dispatched, st.Hits, st.Misses, st.Writes)
		fmt.Printf("                %d mismatches, %d retries, %d recoveries, %d machine checks\n",
			st.Mismatches, st.Retries, st.Recoveries, st.MachineChecks)
	}
	return nil
}

func printTable2() {
	fmt.Println("Table 2. List of decode signals (64 bits total).")
	t := stats.NewTable("field", "description", "width")
	t.AddRow("opcode", "instruction opcode", 8)
	t.AddRow("flags", "decoded control flags", 12)
	t.AddRow("shamt", "shift amount", 5)
	t.AddRow("rsrc1", "source register operand", 5)
	t.AddRow("rsrc2", "source register operand", 5)
	t.AddRow("rdst", "destination register operand", 5)
	t.AddRow("lat", "execution latency", 2)
	t.AddRow("imm", "immediate", 16)
	t.AddRow("num_rsrc", "number of source operands", 2)
	t.AddRow("num_rdst", "number of destination operands", 1)
	t.AddRow("mem_size", "size of memory word", 3)
	fmt.Print(t.String())
	fmt.Println("\nControl flags:", flagList())
	fmt.Println("\nBit layout of the packed signal word:")
	prev := ""
	start := 0
	for pos := 0; pos <= isa.SignalBits; pos++ {
		f := ""
		if pos < isa.SignalBits {
			f = isa.SignalField(pos)
		}
		if f != prev {
			if prev != "" {
				fmt.Printf("  bits %2d-%2d: %s\n", start, pos-1, prev)
			}
			prev, start = f, pos
		}
	}
}

func flagList() string {
	s := ""
	for i := 0; i < 12; i++ {
		if i > 0 {
			s += ", "
		}
		s += isa.FlagName(i)
	}
	return s
}
