// Command itrdump is a deprecated shim for `itr dump` (program inspection);
// it forwards all flags and produces identical output.
package main

import (
	"os"

	"itr/internal/experiment"
)

func main() { os.Exit(experiment.Shim("dump")) }
