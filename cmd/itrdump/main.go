// Command itrdump inspects a synthesized benchmark program: disassembly,
// static trace boundaries with fault-free signatures, image statistics and
// the instruction mix. It is the debugging companion to the simulators —
// what objdump is to a binary.
//
// Usage:
//
//	itrdump -bench bzip                  # summary + instruction mix
//	itrdump -bench bzip -dis -from 0 -n 40   # disassemble a range
//	itrdump -bench gap -traces           # static trace table with signatures
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"itr/internal/fault"
	"itr/internal/isa"
	"itr/internal/report"
	"itr/internal/stats"
	"itr/internal/trace"
	"itr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "itrdump:", err)
		os.Exit(1)
	}
}

func run() error {
	bench := flag.String("bench", "bzip", "benchmark to inspect")
	dis := flag.Bool("dis", false, "disassemble instructions")
	from := flag.Uint64("from", 0, "first PC to disassemble")
	n := flag.Int("n", 32, "instructions to disassemble")
	traces := flag.Bool("traces", false, "print the static trace table (dynamic, with signatures)")
	budget := flag.Int64("budget", 1_000_000, "instruction budget for dynamic trace discovery")
	workers := flag.Int("workers", 0, "report worker-pool width (0 = GOMAXPROCS); results are identical at any width")
	flag.Parse()
	report.SetWorkers(*workers)

	prof, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	prog, err := workload.CachedProgram(prof)
	if err != nil {
		return err
	}

	fmt.Printf("program %s: %d static instructions, entry %d\n", prog.Name, prog.Len(), prog.Entry)
	fmt.Printf("profile: %d static traces (Table 1), %d components, fp=%v\n",
		prof.StaticTraces, len(prof.Components), prof.FP)

	// Instruction mix.
	mix := stats.NewCounter()
	branches := 0
	for _, inst := range prog.Insts {
		mix.Inc(inst.Op.String(), 1)
		if inst.Op.IsBranch() {
			branches++
		}
	}
	fmt.Printf("branch density: %.1f%% (%d branching instructions)\n",
		100*float64(branches)/float64(prog.Len()), branches)
	fmt.Println("\ninstruction mix (top 12):")
	names := mix.Names()
	sort.Slice(names, func(i, j int) bool { return mix.Get(names[i]) > mix.Get(names[j]) })
	for i, name := range names {
		if i >= 12 {
			break
		}
		fmt.Printf("  %-6s %6d (%.1f%%)\n", name, mix.Get(name), mix.Pct(name))
	}

	if *dis {
		fmt.Printf("\ndisassembly from %d:\n", *from)
		end := *from + uint64(*n)
		if end > uint64(prog.Len()) {
			end = uint64(prog.Len())
		}
		var former trace.Former
		for pc := *from; pc < end; pc++ {
			inst := prog.Fetch(pc)
			d := isa.Decode(inst)
			marker := "  "
			if _, done := former.Step(pc, d); done {
				marker = " <" // trace boundary
			}
			fmt.Printf("%6d: %-28s%s\n", pc, inst.String(), marker)
		}
	}

	if *traces {
		fmt.Printf("\nstatic traces observed in %d instructions:\n", *budget)
		oracle := fault.NewSigOracle(prog)
		type row struct {
			start uint64
			count int64
			insts int64
		}
		counts := make(map[uint64]*row)
		trace.Stream(prog, *budget, func(ev trace.Event) bool {
			r := counts[ev.StartPC]
			if r == nil {
				r = &row{start: ev.StartPC}
				counts[ev.StartPC] = r
			}
			r.count++
			r.insts += int64(ev.Len)
			return true
		})
		rows := make([]*row, 0, len(counts))
		for _, r := range counts {
			rows = append(rows, r)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].insts > rows[j].insts })
		fmt.Printf("%8s %12s %14s %18s\n", "startPC", "instances", "dyn insts", "signature")
		for i, r := range rows {
			if i >= 25 {
				fmt.Printf("  ... and %d more\n", len(rows)-25)
				break
			}
			fmt.Printf("%8d %12d %14d %#18x\n", r.start, r.count, r.insts, oracle.TrueSig(r.start))
		}
	}
	return nil
}
