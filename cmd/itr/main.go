// Command itr is the unified experiment CLI: every paper artifact
// (characterization figures, coverage sweeps, fault campaigns, energy
// comparison, single-run simulation, program inspection) is a subcommand
// resolved through the config-driven experiment engine, and every run
// writes a manifest with the spec, per-stage timings and telemetry.
//
// Usage:
//
//	itr char -fig 1                  # Figures 1-4 / Table 1
//	itr coverage -headline           # Figures 6-7 / Section 3
//	itr fault -bench art -faults 12  # Figure 8 campaigns
//	itr energy -perf                 # Figure 9 / Section 5
//	itr sim -bench vortex            # one run on the cycle-level core
//	itr dump -bench bzip -dis        # program inspection
//	itr run -spec examples/specs/fault-small.json
package main

import (
	"os"

	"itr/internal/experiment"
)

func main() {
	os.Exit(experiment.Main(os.Args[1:], os.Stdout, os.Stderr))
}
