// Command itrfault reproduces the paper's Section 4 fault-injection study
// (Figure 8): random single-bit flips on the decode signals of Table 2,
// classified against a golden lockstep simulator into the ten outcome
// categories, with a two-way 1024-signature ITR cache.
//
// Usage:
//
//	itrfault                         # default-scale campaign over the 11 benchmarks
//	itrfault -faults 1000 -window 1000000   # paper-scale (slow)
//	itrfault -bench gap -faults 200  # one benchmark
//	itrfault -fields                 # tally injections by Table 2 field
//	itrfault -checkpoint             # enable Section 2.3 checkpointed recovery
//	itrfault -pc 50                  # Section 2.5 PC-fault study
//	itrfault -cache 50               # Section 2.4 ITR-cache fault study
//	itrfault -rename 50              # rename-unit protection study (Section 1)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"itr/internal/fault"
	"itr/internal/report"
	"itr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "itrfault:", err)
		os.Exit(1)
	}
}

func run() error {
	faults := flag.Int("faults", 100, "injections per benchmark (paper: 1000)")
	window := flag.Int64("window", 250_000, "observation window in cycles (paper: 1,000,000)")
	bench := flag.String("bench", "", "restrict to one benchmark")
	seed := flag.Uint64("seed", 0x17b, "campaign seed")
	verify := flag.Bool("verify", true, "confirm each recoverable detection with the full protocol")
	fields := flag.Bool("fields", false, "also tally injections by Table 2 field")
	ckpt := flag.Bool("checkpoint", false, "enable coarse-grain checkpointing in verify runs (Section 2.3 extension)")
	pcFaults := flag.Int("pc", 0, "run a Section 2.5 PC-fault study with this many injections per benchmark")
	cacheFaults := flag.Int("cache", 0, "run a Section 2.4 ITR-cache fault study with this many injections per benchmark")
	renameFaults := flag.Int("rename", 0, "run the rename-protection study with this many injections per benchmark")
	jsonPath := flag.String("json", "", "also write the Figure 8 campaign results to this JSON file")
	workers := flag.Int("workers", 0, "injection worker-pool width per campaign (0 = GOMAXPROCS); results are identical at any width")
	snapInterval := flag.Int64("snapshot-interval", 0, "decode events between pilot snapshots for campaign fast-forward (0 = default 8192, negative = disabled); results are identical either way")
	flag.Parse()
	// Parallelism lives in the per-injection campaign pool; keep the
	// benchmark-level report pool serial so the two do not multiply.
	report.SetWorkers(1)

	cfg := fault.DefaultCampaignConfig()
	cfg.Faults = *faults
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Experiment.WindowCycles = *window
	cfg.Experiment.Verify = *verify
	cfg.Experiment.Checkpoint = *ckpt
	cfg.Experiment.SnapshotInterval = *snapInterval

	profiles := workload.CoverageSuite()
	if *bench != "" {
		p, err := workload.ByName(*bench)
		if err != nil {
			return err
		}
		profiles = []workload.Profile{p}
	}

	fmt.Printf("Figure 8. Fault injection results: %d faults/benchmark, %d-cycle window, ITR cache 2-way/1024.\n",
		cfg.Faults, cfg.Experiment.WindowCycles)
	start := time.Now()
	rows, err := report.Figure8(profiles, cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.Figure8Table(rows).String())
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f, report.EncodeCampaigns(rows)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("(%d campaigns in %v)\n", len(rows), time.Since(start).Round(time.Millisecond))
	snaps, pages := 0, 0
	for _, r := range rows {
		snaps += r.Result.Snapshots
		pages += r.Result.SnapshotPages
	}
	if snaps > 0 {
		fmt.Printf("(snapshot fast-forward: %d pilot snapshots retained, %d memory pages ≈ %.1f MiB)\n",
			snaps, pages, float64(pages)*4096/(1<<20))
	}
	fmt.Println("(paper averages: 95.4% ITR-detected; ITR+Mask 59.4%, ITR+SDC+R 32%, ITR+wdog+R 3%,")
	fmt.Println(" ITR+SDC+D 1%, Undet+SDC 2.6%, Undet+Mask 1.8%, spc+SDC 0.1%, Undet+wdog 0.1%)")

	verified, attempted := 0, 0
	for _, r := range rows {
		verified += r.Result.RecoveryConfirmed
		attempted += r.Result.RecoveryAttempted
	}
	if attempted > 0 {
		fmt.Printf("Recovery verification: %d/%d recoverable detections recovered by the full protocol.\n",
			verified, attempted)
	}

	if *ckpt {
		recovered := 0
		for _, r := range rows {
			recovered += r.Result.CheckpointRecovered
		}
		fmt.Printf("Checkpoint extension: %d detection-only faults recovered by rollback.\n", recovered)
	}

	if *fields {
		fmt.Println("\nInjections by Table 2 field:")
		for _, r := range rows {
			fmt.Printf("  %-8s", r.Benchmark)
			for field, n := range r.Result.ByField {
				fmt.Printf(" %s:%d", field, n)
			}
			fmt.Println()
		}
	}

	if *pcFaults > 0 {
		fmt.Printf("\nSection 2.5 PC-fault study (%d injections/benchmark):\n", *pcFaults)
		fmt.Printf("%-10s %8s %14s %6s %16s %8s %6s\n",
			"benchmark", "itr(%)", "branch-rep(%)", "spc(%)", "undetect-sdc(%)", "mask(%)", "wdog(%)")
		for _, p := range profiles {
			prog, err := workload.CachedProgram(p)
			if err != nil {
				return err
			}
			res, err := fault.RunPCFaultCampaign(prog, cfg.Experiment, *pcFaults, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %8.1f %14.1f %6.1f %16.1f %8.1f %6.1f\n", p.Name,
				res.Pct(fault.PCDetectedITR), res.Pct(fault.PCDetectedBranch),
				res.Pct(fault.PCDetectedSpc), res.Pct(fault.PCUndetectedSDC),
				res.Pct(fault.PCMasked), res.Pct(fault.PCDeadlock))
		}
	}

	if *cacheFaults > 0 {
		fmt.Printf("\nSection 2.4 ITR-cache fault study (%d injections/benchmark):\n", *cacheFaults)
		fmt.Printf("%-10s %-10s %22s %18s %10s %5s\n",
			"benchmark", "parity", "false-machine-check(%)", "parity-repaired(%)", "masked(%)", "sdc")
		for _, p := range profiles {
			prog, err := workload.CachedProgram(p)
			if err != nil {
				return err
			}
			for _, parity := range []bool{false, true} {
				res, err := fault.RunCacheFaultCampaign(prog, cfg.Experiment, parity, *cacheFaults, *seed)
				if err != nil {
					return err
				}
				pct := func(o fault.CacheFaultOutcome) float64 {
					if res.Total == 0 {
						return 0
					}
					return 100 * float64(res.Counts[o]) / float64(res.Total)
				}
				fmt.Printf("%-10s %-10v %22.1f %18.1f %10.1f %5d\n", p.Name, parity,
					pct(fault.CacheFalseMachineCheck), pct(fault.CacheParityRepaired),
					pct(fault.CacheMasked), res.SDC)
			}
		}
	}
	if *renameFaults > 0 {
		fmt.Printf("\nRename-unit protection study (%d injections/benchmark):\n", *renameFaults)
		fmt.Printf("%-10s %18s %18s %14s %16s %14s\n",
			"benchmark", "sdc w/o ext (%)", "frontend-det (%)", "ext-det (%)", "ext-recover (%)", "sdc w/ ext (%)")
		for _, p := range profiles {
			prog, err := workload.CachedProgram(p)
			if err != nil {
				return err
			}
			res, err := fault.RunRenameCampaign(prog, cfg.Experiment, *renameFaults, *seed)
			if err != nil {
				return err
			}
			pct := func(n int) float64 {
				if res.Total == 0 {
					return 0
				}
				return 100 * float64(n) / float64(res.Total)
			}
			fmt.Printf("%-10s %18.1f %18.1f %14.1f %16.1f %14.1f\n", p.Name,
				res.SDCWithoutPct(), pct(res.FrontendDetected), res.DetectedPct(),
				pct(res.RecoveredWithExtension), pct(res.SDCWithExtension))
		}
		fmt.Println("(frontend ITR is blind to pure rename-index faults; the rename-signature")
		fmt.Println(" extension closes the gap, per the paper's Section 1 discussion of RNA)")
	}
	return nil
}
