// Command itrfault is a deprecated shim for `itr fault` (Figure 8 fault
// injection campaigns); it forwards all flags and produces identical output.
package main

import (
	"os"

	"itr/internal/experiment"
)

func main() { os.Exit(experiment.Shim("fault")) }
