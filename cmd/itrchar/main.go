// Command itrchar reproduces the paper's program-repetition
// characterization: Figures 1-2 (dynamic instructions contributed by the
// top-k static traces), Figures 3-4 (dynamic instructions by trace repeat
// distance) and Table 1 (static trace counts).
//
// Usage:
//
//	itrchar -fig 1            # Figure 1 (SPECint popularity CDF)
//	itrchar -fig 4            # Figure 4 (SPECfp distance distribution)
//	itrchar -table1           # Table 1 (measured vs paper)
//	itrchar -budget 20000000  # raise the per-benchmark instruction budget
package main

import (
	"flag"
	"fmt"
	"os"

	"itr/internal/report"
	"itr/internal/stats"
	"itr/internal/workload"
)

// jsonOut optionally archives regenerated figures as JSON.
type jsonOut struct {
	path    string
	figures []report.FigureJSON
}

func (j *jsonOut) add(fig report.FigureJSON) {
	if j.path != "" {
		j.figures = append(j.figures, fig)
	}
}

func (j *jsonOut) flush() error {
	if j.path == "" {
		return nil
	}
	f, err := os.Create(j.path)
	if err != nil {
		return err
	}
	defer f.Close()
	return report.WriteJSON(f, j.figures)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "itrchar:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.Int("fig", 0, "figure to reproduce (1, 2, 3 or 4); 0 prints everything")
	table1 := flag.Bool("table1", false, "print Table 1 (static trace counts)")
	budget := flag.Int64("budget", workload.DefaultBudget, "dynamic-instruction budget per benchmark (scaled per profile)")
	jsonPath := flag.String("json", "", "also write the regenerated figures to this JSON file")
	workers := flag.Int("workers", 0, "worker-pool width for per-benchmark characterization (0 = GOMAXPROCS); results are identical at any width")
	flag.Parse()
	report.SetWorkers(*workers)

	out := &jsonOut{path: *jsonPath}
	all := *fig == 0 && !*table1

	if *fig == 1 || all {
		series, err := report.PopularityFigure(workload.IntSuite(), 100, 1000, *budget)
		if err != nil {
			return err
		}
		fmt.Println("Figure 1. Dynamic instructions per 100 static traces (integer benchmarks).")
		fmt.Println("Cumulative % of dynamic instructions from the top-k static traces:")
		fmt.Print(stats.RenderSeries("top-k", series, "%.0f"))
		fmt.Println()
		out.add(report.EncodeSeries("figure1", "Dynamic instructions per 100 static traces (int)", "top-k traces", "% dyn insts", series))
	}
	if *fig == 2 || all {
		series, err := report.PopularityFigure(workload.FPSuite(), 50, 500, *budget)
		if err != nil {
			return err
		}
		fmt.Println("Figure 2. Dynamic instructions per 50 static traces (floating point benchmarks).")
		fmt.Print(stats.RenderSeries("top-k", series, "%.0f"))
		fmt.Println()
		out.add(report.EncodeSeries("figure2", "Dynamic instructions per 50 static traces (fp)", "top-k traces", "% dyn insts", series))
	}
	if *fig == 3 || all {
		series, err := report.DistanceFigure(workload.IntSuite(), *budget)
		if err != nil {
			return err
		}
		fmt.Println("Figure 3. Distance between trace repetitions (integer benchmarks).")
		fmt.Println("Cumulative % of dynamic instructions from repetitions within distance d:")
		fmt.Print(stats.RenderSeries("< d", series, "%.0f"))
		fmt.Println()
		out.add(report.EncodeSeries("figure3", "Distance between trace repetitions (int)", "< distance", "% dyn insts", series))
	}
	if *fig == 4 || all {
		series, err := report.DistanceFigure(workload.FPSuite(), *budget)
		if err != nil {
			return err
		}
		fmt.Println("Figure 4. Distance between trace repetitions (floating point benchmarks).")
		fmt.Print(stats.RenderSeries("< d", series, "%.0f"))
		fmt.Println()
		out.add(report.EncodeSeries("figure4", "Distance between trace repetitions (fp)", "< distance", "% dyn insts", series))
	}
	if *table1 || all {
		rows, err := report.Table1(*budget)
		if err != nil {
			return err
		}
		fmt.Println("Table 1. Number of static traces for SPEC.")
		t := stats.NewTable("benchmark", "suite", "measured", "paper")
		for _, r := range rows {
			suite := "SPECint"
			if r.FP {
				suite = "SPECfp"
			}
			t.AddRow(r.Benchmark, suite, r.Measured, r.Paper)
		}
		fmt.Print(t.String())
	}
	return out.flush()
}
