// Command itrchar is a deprecated shim for `itr char` (Figures 1-4 and
// Table 1); it forwards all flags and produces identical output.
package main

import (
	"os"

	"itr/internal/experiment"
)

func main() { os.Exit(experiment.Shim("char")) }
