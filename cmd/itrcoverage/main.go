// Command itrcoverage reproduces the paper's Section 3 design-space
// exploration: loss in fault detection coverage (Figure 6) and loss in
// fault recovery coverage (Figure 7) across ITR cache sizes {256, 512,
// 1024} and associativities {dm, 2, 4, 8, 16, fa}, plus the Section 3
// headline summary for the 2-way/1024 configuration.
//
// Usage:
//
//	itrcoverage                      # Figures 6 and 7 over the 11 paper benchmarks
//	itrcoverage -metric detection    # Figure 6 only
//	itrcoverage -headline            # Section 3's quoted avg/max numbers
//	itrcoverage -bench vortex        # one benchmark across the whole space
//	itrcoverage -ablation            # checked-LRU replacement + miss fallback
package main

import (
	"flag"
	"fmt"
	"os"

	"itr/internal/cache"
	"itr/internal/core"
	"itr/internal/report"
	"itr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "itrcoverage:", err)
		os.Exit(1)
	}
}

func run() error {
	metric := flag.String("metric", "both", "detection, recovery or both")
	bench := flag.String("bench", "", "restrict to one benchmark (default: the 11 shown in Figures 6-7)")
	headline := flag.Bool("headline", false, "print the Section 3 summary for 2-way/1024")
	ablation := flag.Bool("ablation", false, "also evaluate checked-LRU replacement and miss fallback")
	budget := flag.Int64("budget", workload.DefaultBudget, "dynamic-instruction budget per benchmark")
	warmup := flag.Int64("warmup", 0, "instructions to warm the ITR cache before measurement (paper: 900M skip)")
	jsonPath := flag.String("json", "", "also write the sweep cells to this JSON file")
	workers := flag.Int("workers", 0, "worker-pool width for the sweep (0 = GOMAXPROCS); results are identical at any width")
	flag.Parse()
	report.SetWorkers(*workers)

	if *headline {
		h, err := report.HeadlineCoverage(*budget)
		if err != nil {
			return err
		}
		fmt.Println("Section 3 headline (2-way set-associative, 1024 signatures):")
		fmt.Printf("  loss in fault detection coverage: %.1f%% average, %.1f%% max (%s)\n",
			h.AvgDetectionLoss, h.MaxDetectionLoss, h.MaxDetectionName)
		fmt.Printf("  loss in fault recovery  coverage: %.1f%% average, %.1f%% max (%s)\n",
			h.AvgRecoveryLoss, h.MaxRecoveryLoss, h.MaxRecoveryName)
		fmt.Println("  (paper: 1.3% avg / 8.2% max detection; 2.5% avg / 15% max recovery, both vortex)")
		return nil
	}

	profiles := workload.CoverageSuite()
	if *bench != "" {
		p, err := workload.ByName(*bench)
		if err != nil {
			return err
		}
		profiles = []workload.Profile{p}
	}

	cells, err := report.CoverageSweepWarm(profiles, core.DesignSpace(), *budget, *warmup)
	if err != nil {
		return err
	}
	report.SortCellsByBenchmark(cells)

	if *metric == "detection" || *metric == "both" {
		fmt.Println("Figure 6. Loss in fault detection coverage (% of all dynamic instructions).")
		fmt.Print(report.CoverageTable(cells, "detection").String())
		fmt.Println()
	}
	if *metric == "recovery" || *metric == "both" {
		fmt.Println("Figure 7. Loss in fault recovery coverage (% of all dynamic instructions).")
		fmt.Print(report.CoverageTable(cells, "recovery").String())
		fmt.Println()
	}

	if *ablation {
		if err := runAblation(profiles, *budget); err != nil {
			return err
		}
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteJSON(f, report.EncodeCoverage(cells)); err != nil {
			return err
		}
	}
	return nil
}

// runAblation evaluates the two Section 2.3 / Section 3 extensions at the
// headline configuration: checked-first LRU replacement and redundant
// fetch-on-miss.
func runAblation(profiles []workload.Profile, budget int64) error {
	base := core.DefaultConfig()
	checked := base
	checked.Replacement = cache.ReplCheckedLRU
	fallback := base
	fallback.MissFallback = true

	cells, err := report.CoverageSweep(profiles, []core.Config{base, checked, fallback}, budget)
	if err != nil {
		return err
	}
	fmt.Println("Ablation (2-way/1024): LRU vs checked-first LRU vs miss fallback.")
	fmt.Printf("%-10s %-22s %12s %12s %14s\n", "benchmark", "variant", "det loss (%)", "rec loss (%)", "refetch insts")
	for _, c := range cells {
		variant := "lru"
		switch {
		case c.Config.Replacement == cache.ReplCheckedLRU:
			variant = "checked-lru"
		case c.Config.MissFallback:
			variant = "lru+miss-fallback"
		}
		fmt.Printf("%-10s %-22s %12.2f %12.2f %14d\n",
			c.Benchmark, variant, c.Result.DetectionLoss, c.Result.RecoveryLoss, c.Result.FallbackInsts)
	}
	return nil
}
