// Command itrcoverage is a deprecated shim for `itr coverage` (Figures 6-7
// coverage-loss sweeps); it forwards all flags and produces identical output.
package main

import (
	"os"

	"itr/internal/experiment"
)

func main() { os.Exit(experiment.Shim("coverage")) }
