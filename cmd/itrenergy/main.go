// Command itrenergy is a deprecated shim for `itr energy` (Figure 9 and the
// Section 5 cost comparison); it forwards all flags and produces identical
// output.
package main

import (
	"os"

	"itr/internal/experiment"
)

func main() { os.Exit(experiment.Shim("energy")) }
