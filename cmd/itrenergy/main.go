// Command itrenergy reproduces the paper's Section 5 cost comparison:
// Figure 9 (ITR cache energy vs redundantly fetching every instruction from
// the I-cache) and the die-photo area argument (the ITR cache is about one
// seventh the area of the S/390 G5 I-unit), plus the full baseline
// comparison table.
//
// Usage:
//
//	itrenergy              # Figure 9 + area comparison
//	itrenergy -baselines   # per-benchmark comparison of all approaches
//	itrenergy -perf        # measured IPC cost of each protection scheme
//	itrenergy -scale 0     # report at the measured budget instead of 200M insts
package main

import (
	"flag"
	"fmt"
	"os"

	"itr/internal/baseline"
	"itr/internal/core"
	"itr/internal/energy"
	"itr/internal/report"
	"itr/internal/stats"
	"itr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "itrenergy:", err)
		os.Exit(1)
	}
}

func run() error {
	budget := flag.Int64("budget", workload.DefaultBudget, "dynamic-instruction budget per benchmark")
	scale := flag.Int64("scale", 200_000_000, "scale access counts to this many instructions (0 = no scaling; paper uses 200M)")
	baselines := flag.Bool("baselines", false, "print the full approach comparison per benchmark")
	perf := flag.Bool("perf", false, "measure IPC for each protection scheme on the cycle-level core")
	perfCycles := flag.Int64("perf-cycles", 300_000, "cycle budget per perf measurement")
	workers := flag.Int("workers", 0, "benchmark worker-pool width (0 = GOMAXPROCS); results are identical at any width")
	flag.Parse()
	report.SetWorkers(*workers)

	singleNJ, _ := energy.AccessEnergyNJ(energy.ITRCacheSinglePort)
	dualNJ, _ := energy.AccessEnergyNJ(energy.ITRCacheDualPort)
	iNJ, _ := energy.AccessEnergyNJ(energy.Power4ICache)
	fmt.Println("Per-access energies (calibrated CACTI-style model, 0.18 um):")
	fmt.Printf("  I-cache (64KB dm, 128B line):        %.2f nJ (paper %.2f)\n", iNJ, energy.PaperICacheNJ)
	fmt.Printf("  ITR cache (8KB 2-way, 1 rd/wr port): %.2f nJ (paper %.2f)\n", singleNJ, energy.PaperITRCacheNJ)
	fmt.Printf("  ITR cache (8KB 2-way, 1rd+1wr):      %.2f nJ (paper %.2f)\n", dualNJ, energy.PaperITRCacheDualNJ)
	fmt.Println()

	rows, err := report.Figure9(workload.Suite(), *budget, *scale)
	if err != nil {
		return err
	}
	fmt.Println("Figure 9. Energy of ITR cache vs I-cache redundant fetch.")
	if *scale > 0 {
		fmt.Printf("(access counts scaled to %d dynamic instructions, as in the paper)\n", *scale)
	}
	fmt.Print(report.Figure9Table(rows).String())
	fmt.Println()

	cmp := energy.CompareAreas()
	fmt.Println("Section 5 area comparison (IBM S/390 G5 die photo):")
	fmt.Printf("  I-unit (fetch+decode): %.1f cm^2\n", cmp.IUnitCM2)
	fmt.Printf("  ITR-cache-like BTB:    %.1f cm^2\n", cmp.ITRCacheCM2)
	fmt.Printf("  ratio: %.1fx (the ITR cache is about one seventh the I-unit area)\n", cmp.Ratio)

	if *baselines {
		fmt.Println()
		if err := printBaselines(*budget, *scale); err != nil {
			return err
		}
	}

	if *perf {
		fmt.Println()
		fmt.Println("Measured frontend-protection performance (cycle-level core):")
		rows, err := report.PerfComparison(workload.Suite(), *perfCycles)
		if err != nil {
			return err
		}
		fmt.Print(report.PerfTable(rows).String())
		fmt.Println("(ITR and structural duplication protect the frontend without consuming")
		fmt.Println(" its bandwidth; conventional time redundancy pays for it in IPC.)")
	}
	return nil
}

func printBaselines(budget, scale int64) error {
	fmt.Println("Approach comparison (per benchmark, headline ITR cache):")
	t := stats.NewTable("benchmark", "approach", "det cov (%)", "rec cov (%)", "energy (mJ)", "area (cm^2)")
	baseCfg := core.DefaultConfig()
	fbCfg := baseCfg
	fbCfg.MissFallback = true
	for _, p := range workload.Suite() {
		prog, err := workload.CachedProgram(p)
		if err != nil {
			return err
		}
		events, executed := workload.EventsOf(prog, p.ScaledBudget(budget))
		measure := func(cfg core.Config) (core.Result, error) {
			sim, err := core.NewCoverageSim(cfg)
			if err != nil {
				return core.Result{}, err
			}
			for _, ev := range events {
				sim.Access(ev)
			}
			res := sim.Result()
			if scale > 0 && executed > 0 {
				f := float64(scale) / float64(executed)
				res.Reads = int64(float64(res.Reads) * f)
				res.Writes = int64(float64(res.Writes) * f)
				res.FallbackInsts = int64(float64(res.FallbackInsts) * f)
			}
			return res, nil
		}
		base, err := measure(baseCfg)
		if err != nil {
			return err
		}
		fb, err := measure(fbCfg)
		if err != nil {
			return err
		}
		dyn := executed
		if scale > 0 {
			dyn = scale
		}
		for _, a := range []baseline.Approach{
			baseline.Unprotected, baseline.StructuralDuplication,
			baseline.TimeRedundant, baseline.ITR, baseline.ITRMissFallback,
		} {
			cov := base
			if a == baseline.ITRMissFallback {
				cov = fb
			}
			c, err := baseline.Compare(a, baseline.Workload{Name: p.Name, DynInsts: dyn, Coverage: cov}, energy.ITRCacheSinglePort)
			if err != nil {
				return err
			}
			t.AddRow(p.Name, c.Approach.String(), c.DetectionCoverage, c.RecoveryCoverage, c.EnergyMJ, c.AreaCM2)
		}
	}
	fmt.Print(t.String())
	return nil
}
