// Benchmarks regenerating every table and figure of the paper's evaluation.
//
// Each BenchmarkFigureN / BenchmarkTableN regenerates the corresponding
// result through the same internal/report entry points the cmd tools use,
// and reports the headline metric of that experiment via b.ReportMetric.
// Instruction budgets are scaled down from the cmd defaults so a full
// `go test -bench=.` pass completes in minutes on one core; the cmd tools
// expose flags for paper-scale runs.
//
// Microbenchmarks at the bottom measure the hot paths of the simulator
// itself (signature generation, ITR cache access, pipeline cycles).
package itr_test

import (
	"testing"

	"itr/internal/cache"
	"itr/internal/core"
	"itr/internal/energy"
	"itr/internal/fault"
	"itr/internal/isa"
	"itr/internal/pipeline"
	"itr/internal/program"
	"itr/internal/report"
	"itr/internal/sig"
	"itr/internal/trace"
	"itr/internal/workload"
)

// benchBudget is the per-benchmark instruction budget used by the figure
// benchmarks (profiles with BudgetScale still multiply it).
const benchBudget = 1_500_000

// BenchmarkFigure1 regenerates Figure 1: dynamic instructions contributed by
// the top-k static traces, SPECint.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := report.PopularityFigure(workload.IntSuite(), 100, 1000, benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		// Paper anchor: in bzip, 100 static traces contribute 99% of all
		// dynamic instructions.
		for _, s := range series {
			if s.Name == "bzip" {
				b.ReportMetric(s.Points[0].Y, "bzip-top100-%")
			}
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2: same CDF for SPECfp.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := report.PopularityFigure(workload.FPSuite(), 50, 500, benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		// Paper anchor: in wupwise, 50 static traces contribute 99%.
		for _, s := range series {
			if s.Name == "wupwise" {
				b.ReportMetric(s.Points[0].Y, "wupwise-top50-%")
			}
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: repeat-distance distribution,
// SPECint.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := report.DistanceFigure(workload.IntSuite(), benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		// Paper anchor: all integer benchmarks except perl and vortex
		// reach 85% within 5000 instructions.
		reach := 0.0
		for _, s := range series {
			if s.Name == "bzip" {
				reach = s.Points[9].Y // bucket < 5000
			}
		}
		b.ReportMetric(reach, "bzip-within5000-%")
	}
}

// BenchmarkFigure4 regenerates Figure 4: repeat-distance distribution,
// SPECfp.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := report.DistanceFigure(workload.FPSuite(), benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		// Paper anchor: fp benchmarks (except apsi) repeat within 1500.
		for _, s := range series {
			if s.Name == "wupwise" {
				b.ReportMetric(s.Points[2].Y, "wupwise-within1500-%")
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1: static trace counts.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := report.Table1(workload.DefaultBudget)
		if err != nil {
			b.Fatal(err)
		}
		exact := 0
		for _, r := range rows {
			if r.Measured == r.Paper {
				exact++
			}
		}
		b.ReportMetric(float64(exact), "exact-matches-of-16")
	}
}

// BenchmarkTable2 exercises the Table 2 decode-signal vector: full
// pack/unpack round trips of the 64-bit signal word.
func BenchmarkTable2(b *testing.B) {
	d := isa.Decode(isa.Instruction{Op: isa.OpLw, Rd: 5, Rs1: 4, Imm: 128})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := d.Pack()
		d = isa.UnpackSignals(w)
	}
	if d.Opcode != isa.OpLw {
		b.Fatal("round trip corrupted signals")
	}
}

// coverageSweepBench runs the Figures 6/7 sweep and reports the vortex
// worst-case cell for the requested metric.
func coverageSweepBench(b *testing.B, metric string) {
	for i := 0; i < b.N; i++ {
		cells, err := report.CoverageSweep(workload.CoverageSuite(), core.DesignSpace(), benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, c := range cells {
			v := c.Result.DetectionLoss
			if metric == "recovery" {
				v = c.Result.RecoveryLoss
			}
			if c.Benchmark == "vortex" && c.Config.String() == "dm/256" {
				worst = v
			}
		}
		b.ReportMetric(worst, "vortex-dm256-loss-%")
	}
}

// BenchmarkFigure6 regenerates Figure 6: loss in fault detection coverage
// across the 18-configuration design space.
func BenchmarkFigure6(b *testing.B) { coverageSweepBench(b, "detection") }

// BenchmarkFigure7 regenerates Figure 7: loss in fault recovery coverage.
func BenchmarkFigure7(b *testing.B) { coverageSweepBench(b, "recovery") }

// BenchmarkHeadlineCoverage regenerates the Section 3 headline numbers
// (2-way/1024: 1.3% avg / 8.2% max detection loss in the paper).
func BenchmarkHeadlineCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := report.HeadlineCoverage(benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(h.AvgDetectionLoss, "avg-det-loss-%")
		b.ReportMetric(h.MaxDetectionLoss, "max-det-loss-%")
	}
}

// BenchmarkFigure8 regenerates a scaled-down Figure 8 fault-injection
// campaign over the paper's 11 benchmarks and reports the ITR detection
// rate (paper: 95.4% average).
func BenchmarkFigure8(b *testing.B) {
	cfg := fault.DefaultCampaignConfig()
	cfg.Faults = 10
	cfg.Experiment.WindowCycles = 50_000
	for i := 0; i < b.N; i++ {
		rows, err := report.Figure8(workload.CoverageSuite(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		det := 0.0
		for _, r := range rows {
			det += r.Result.DetectedPct()
		}
		b.ReportMetric(det/float64(len(rows)), "avg-itr-detected-%")
	}
}

// figure8CampaignBench runs a small single-benchmark Figure 8 campaign at
// the given snapshot interval with a serial worker pool, isolating the
// per-injection simulation cost from parallelism.
func figure8CampaignBench(b *testing.B, interval int64) {
	prof, err := workload.ByName("art")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.CachedProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	cfg := fault.DefaultCampaignConfig()
	cfg.Faults = 12
	cfg.Workers = 1
	cfg.Experiment.WindowCycles = 50_000
	cfg.Experiment.SnapshotInterval = interval
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fault.RunCampaign("bench", prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DetectedPct(), "itr-detected-%")
		b.ReportMetric(float64(res.Budget.CyclesSimulated)/float64(cfg.Faults), "cycles/injection")
	}
}

// BenchmarkFigure8Campaign measures the fault campaign on the snapshot
// fast path (default interval): injections resume from pilot snapshots and
// compare against the precomputed golden stream.
func BenchmarkFigure8Campaign(b *testing.B) { figure8CampaignBench(b, 0) }

// BenchmarkFigure8CampaignCold is the same campaign with snapshots disabled
// — the pre-snapshot cold path, kept as the speedup reference. Results are
// bit-identical to the fast path.
func BenchmarkFigure8CampaignCold(b *testing.B) { figure8CampaignBench(b, -1) }

// BenchmarkCampaignArenaReuse measures campaign allocation behavior: each
// injection worker recycles its observe/verify machines through a run arena
// (restore-into-place instead of rebuilding), so allocs/op should stay within
// a small multiple of the pilot + snapshot cost rather than scaling with the
// per-injection machine construction it replaced.
func BenchmarkCampaignArenaReuse(b *testing.B) {
	prof, err := workload.ByName("art")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.CachedProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	cfg := fault.DefaultCampaignConfig()
	cfg.Faults = 24
	cfg.Workers = 1
	cfg.Experiment.WindowCycles = 20_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fault.RunCampaign("bench", prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Total), "injections")
	}
}

// snapshotBenchCPU builds a pipeline over a store loop striding across 64
// memory pages and runs it to a mid-window point. The synthetic SPEC
// workloads concentrate their data accesses in a single page, which would
// hide the memory side of snapshot cost entirely; the stride loop gives
// captures and restores a footprint where page handling is visible.
func snapshotBenchCPU(b *testing.B) *pipeline.CPU {
	b.Helper()
	const pages = 64
	pb := program.NewBuilder("stride")
	pb.LoadImm64(2, 0xabcd)
	pb.Label("outer")
	pb.LoadImm64(1, 0)     // r1: store pointer
	pb.LoadImm64(3, pages) // r3: pages left this sweep
	pb.Label("loop")
	pb.Store(isa.OpSd, 2, 1, 0) // dirty the page under r1
	pb.OpImm(isa.OpAddi, 1, 1, 4096)
	pb.OpImm(isa.OpAddi, 3, 3, -1)
	pb.Branch(isa.OpBne, 3, 0, "loop")
	pb.Jump("outer")
	pb.Halt() // unreachable; the run is budget-bound
	prog, err := pb.Build()
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := pipeline.New(prog, pipeline.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cpu.Run(30_000)
	return cpu
}

// BenchmarkSnapshotCapture measures Snapshot() itself. Memory capture is
// copy-on-write, so the cost is one page-table walk with zero page copies and
// allocations scale with the machine-state side (ROB, predictors, ITR cache
// lines), not the memory footprint.
func BenchmarkSnapshotCapture(b *testing.B) {
	cpu := snapshotBenchCPU(b)
	b.ReportAllocs()
	b.ResetTimer()
	var s *pipeline.Snapshot
	for i := 0; i < b.N; i++ {
		s = cpu.Snapshot()
	}
	b.ReportMetric(float64(s.MemPages()), "mem-pages")
}

// BenchmarkSnapshotRestore measures Restore() switching between two
// snapshots of diverged machine states — the campaign's pattern of pointing
// one worker CPU at successive resume points. Each restore adopts the
// snapshot's pages by reference; no page contents are copied.
func BenchmarkSnapshotRestore(b *testing.B) {
	cpu := snapshotBenchCPU(b)
	s1 := cpu.Snapshot()
	cpu.Run(2_000) // diverge so the two snapshots differ
	s2 := cpu.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := s1
		if i&1 == 1 {
			s = s2
		}
		if err := cpu.Restore(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9: ITR cache vs redundant I-cache
// fetch energy, scaled to the paper's 200M-instruction windows.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := report.Figure9(workload.Suite(), benchBudget, 200_000_000)
		if err != nil {
			b.Fatal(err)
		}
		var itrMJ, redMJ float64
		for _, r := range rows {
			itrMJ += r.ITRSinglePort
			redMJ += r.ICacheRedFetch
		}
		// The paper's claim: the ITR approach is far more energy
		// efficient than fetching twice.
		b.ReportMetric(redMJ/itrMJ, "icache-vs-itr-energy-x")
	}
}

// BenchmarkAreaComparison regenerates the Section 5 area argument.
func BenchmarkAreaComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp := energy.CompareAreas()
		b.ReportMetric(cmp.Ratio, "iunit-vs-itr-area-x")
	}
}

// BenchmarkAblationCheckedLRU compares plain LRU against the Section 2.3
// checked-first replacement optimization on the worst-case benchmark.
func BenchmarkAblationCheckedLRU(b *testing.B) {
	prof, err := workload.ByName("vortex")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		base := core.Config{Entries: 1024, Assoc: 2, Replacement: cache.ReplLRU}
		opt := core.Config{Entries: 1024, Assoc: 2, Replacement: cache.ReplCheckedLRU}
		cells, err := report.CoverageSweep([]workload.Profile{prof}, []core.Config{base, opt}, benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[0].Result.DetectionLoss, "lru-det-loss-%")
		b.ReportMetric(cells[1].Result.DetectionLoss, "checkedlru-det-loss-%")
	}
}

// BenchmarkAblationMissFallback measures the Section 3 hybrid: redundant
// fetch on ITR misses restores recovery coverage at a frontend-energy cost.
func BenchmarkAblationMissFallback(b *testing.B) {
	prof, err := workload.ByName("vortex")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		base := core.DefaultConfig()
		fb := base
		fb.MissFallback = true
		cells, err := report.CoverageSweep([]workload.Profile{prof}, []core.Config{base, fb}, benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[0].Result.RecoveryLoss, "base-rec-loss-%")
		b.ReportMetric(cells[1].Result.RecoveryLoss, "fallback-rec-loss-%")
		b.ReportMetric(float64(cells[1].Result.FallbackInsts), "refetched-insts")
	}
}

// ---- simulator microbenchmarks ----

// BenchmarkSignatureAccumulate measures ITR signature generation throughput.
func BenchmarkSignatureAccumulate(b *testing.B) {
	words := make([]uint64, 16)
	for i := range words {
		words[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	b.ReportAllocs()
	var acc sig.Accumulator
	for i := 0; i < b.N; i++ {
		acc.Reset()
		for _, w := range words {
			acc.Add(w)
		}
	}
	if acc.Len() != 16 {
		b.Fatal("accumulator broken")
	}
}

// BenchmarkITRCacheAccess measures the ITR cache hit path.
func BenchmarkITRCacheAccess(b *testing.B) {
	c := cache.MustNew(1024, 2, cache.ReplLRU)
	for pc := uint64(0); pc < 512; pc++ {
		c.Insert(pc*8, pc)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i%512) * 8)
	}
}

// BenchmarkTraceFormation measures the decode-side trace former.
func BenchmarkTraceFormation(b *testing.B) {
	d1 := isa.Decode(isa.Instruction{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3})
	d2 := isa.Decode(isa.Instruction{Op: isa.OpBne, Rs1: 1, Imm: 100})
	var f trace.Former
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Step(uint64(i*2), d1)
		f.Step(uint64(i*2+1), d2)
	}
}

// BenchmarkFunctionalExec measures functional instruction execution.
func BenchmarkFunctionalExec(b *testing.B) {
	st := isa.NewArchState()
	st.R[1], st.R[2] = 7, 9
	d := isa.Decode(isa.Instruction{Op: isa.OpAdd, Rd: 3, Rs1: 1, Rs2: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := st.Exec(d, uint64(i))
		st.Apply(o)
	}
}

// BenchmarkPipelineCycle measures end-to-end pipeline simulation speed in
// cycles per second on a real benchmark program.
func BenchmarkPipelineCycle(b *testing.B) {
	prof, err := workload.ByName("gap")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.CachedProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := pipeline.New(prog, pipeline.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res := cpu.Run(int64(b.N))
	b.ReportMetric(res.IPC(), "ipc")
}

// BenchmarkDetectorOverhead measures per-cycle pipeline cost under each
// detection backend against a detector-off machine, so the price of the
// rivals' replay work (and the ITR fast path's devirtualization) is visible
// as ns/cycle side by side.
func BenchmarkDetectorOverhead(b *testing.B) {
	prof, err := workload.ByName("gap")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.CachedProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	backends := []struct {
		name     string
		detector string
		enabled  bool
	}{
		{"off", "", false},
		{"itr", "itr", true},
		{"reptfd", "reptfd", true},
		{"dme", "dme", true},
	}
	for _, bk := range backends {
		b.Run(bk.name, func(b *testing.B) {
			cfg := pipeline.DefaultConfig()
			cfg.ITREnabled = bk.enabled
			cfg.Detector = bk.detector
			cpu, err := pipeline.New(prog, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			res := cpu.Run(int64(b.N))
			b.ReportMetric(res.IPC(), "ipc")
		})
	}
}

// BenchmarkCoverageReplay measures trace-event replay throughput (the inner
// loop of the Figures 6/7 sweep).
func BenchmarkCoverageReplay(b *testing.B) {
	prof, err := workload.ByName("bzip")
	if err != nil {
		b.Fatal(err)
	}
	events, err := workload.CachedEvents(prof, 200_000)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := core.NewCoverageSim(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Access(events[i%len(events)])
	}
}

// BenchmarkWorkloadSynthesis measures benchmark program generation
// (including the Table 1 calibration loop).
func BenchmarkWorkloadSynthesis(b *testing.B) {
	prof, err := workload.ByName("parser")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := workload.Build(prof); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultInjectionRun measures one complete injection experiment
// (observe + verify runs with golden lockstep).
func BenchmarkFaultInjectionRun(b *testing.B) {
	prof, err := workload.ByName("art")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.CachedProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	oracle := fault.NewSigOracle(prog)
	cfg := fault.DefaultConfig()
	cfg.WindowCycles = 20_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fault.RunOne(prog, oracle, cfg, fault.Injection{DecodeIndex: 2000 + int64(i%1000), Bit: i % 64}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- extension benchmarks ----

// BenchmarkCheckpointRecovery measures the Section 2.3 extension end to end:
// a fault installs a corrupted signature on an ITR miss; without
// checkpointing the machine check aborts, with it the run rolls back and
// completes.
func BenchmarkCheckpointRecovery(b *testing.B) {
	prof, err := workload.ByName("art")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.CachedProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	oracle := fault.NewSigOracle(prog)
	cfg := fault.DefaultConfig()
	cfg.WindowCycles = 30_000
	cfg.Checkpoint = true
	recovered := 0
	for i := 0; i < b.N; i++ {
		det, err := fault.RunOne(prog, oracle, cfg, fault.Injection{DecodeIndex: 2000 + int64(i%500), Bit: 42})
		if err != nil {
			b.Fatal(err)
		}
		if det.CheckpointRecovered {
			recovered++
		}
	}
	b.ReportMetric(float64(recovered), "ckpt-recoveries")
}

// BenchmarkRenameProtection measures the rename-unit protection study: the
// silent-corruption rate without the rename-signature extension and the
// detection rate with it.
func BenchmarkRenameProtection(b *testing.B) {
	prof, err := workload.ByName("art")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.CachedProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	cfg := fault.DefaultConfig()
	cfg.WindowCycles = 30_000
	for i := 0; i < b.N; i++ {
		res, err := fault.RunRenameCampaign(prog, cfg, 6, 0x42+uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SDCWithoutPct(), "sdc-without-ext-%")
		b.ReportMetric(res.DetectedPct(), "detected-with-ext-%")
	}
}

// BenchmarkPCFaults runs the Section 2.5 PC-fault study.
func BenchmarkPCFaults(b *testing.B) {
	prof, err := workload.ByName("art")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.CachedProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	cfg := fault.DefaultConfig()
	cfg.WindowCycles = 30_000
	for i := 0; i < b.N; i++ {
		res, err := fault.RunPCFaultCampaign(prog, cfg, 8, 0x9+uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Pct(fault.PCDetectedITR), "itr-detected-%")
	}
}

// BenchmarkCacheFaults runs the Section 2.4 ITR-cache fault study with
// parity protection on.
func BenchmarkCacheFaults(b *testing.B) {
	prof, err := workload.ByName("art")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.CachedProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	cfg := fault.DefaultConfig()
	cfg.WindowCycles = 30_000
	for i := 0; i < b.N; i++ {
		res, err := fault.RunCacheFaultCampaign(prog, cfg, true, 4, 0x3+uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Counts[fault.CacheParityRepaired]), "parity-repairs")
	}
}

// ---- performance-architecture benchmarks (decode memoization + sweep engine) ----

// benchProgram returns the memoized gap program for the decode benchmarks.
func benchProgram(b *testing.B) *program.Program {
	b.Helper()
	prof, err := workload.ByName("gap")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.CachedProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkDecodeFull measures the unmemoized per-instruction cost the hot
// loop used to pay: a full decode plus a signal-word pack.
func BenchmarkDecodeFull(b *testing.B) {
	prog := benchProgram(b)
	n := uint64(len(prog.Insts))
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= isa.Decode(prog.Fetch(uint64(i) % n)).Pack()
	}
	_ = sink
}

// BenchmarkDecodeMemoized measures the DecodeTable fast path that replaces
// it: one array index per dynamic instruction.
func BenchmarkDecodeMemoized(b *testing.B) {
	prog := benchProgram(b)
	tab := prog.DecodeTable()
	n := uint64(tab.Len())
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= tab.Word(uint64(i) % n)
	}
	_ = sink
}

// BenchmarkTraceStream measures end-to-end functional execution with trace
// formation — the event-generation phase of every sweep — in dynamic
// instructions per op.
func BenchmarkTraceStream(b *testing.B) {
	prog := benchProgram(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events := 0
		trace.Stream(prog, 200_000, func(trace.Event) bool {
			events++
			return true
		})
		if events == 0 {
			b.Fatal("no trace events")
		}
	}
}

// sweepEngineBench runs the full 16-benchmark x 18-configuration design-space
// sweep at the given worker-pool width through the per-cell reference path
// (one stream traversal per cell) — the baseline the single-pass engine is
// measured against.
func sweepEngineBench(b *testing.B, workers int) {
	eng := &report.Engine{Workers: workers}
	// One untimed sweep first: event streams are memoized per benchmark, so
	// this pins the measurement to the replay engine rather than charging
	// whichever variant runs first for one-time event generation.
	if _, err := eng.CoverageSweepWarmPerCell(workload.Suite(), core.DesignSpace(), benchBudget, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := eng.CoverageSweepWarmPerCell(workload.Suite(), core.DesignSpace(), benchBudget, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != len(workload.Suite())*len(core.DesignSpace()) {
			b.Fatalf("sweep returned %d cells", len(cells))
		}
	}
}

// BenchmarkCoverageSweepSerial is the per-cell design-space sweep pinned to
// one worker — the regression baseline for the single-core replay hot path
// and the reference BenchmarkCoverageSweepSinglePass is compared against.
func BenchmarkCoverageSweepSerial(b *testing.B) { sweepEngineBench(b, 1) }

// BenchmarkCoverageSweepParallel is the same per-cell sweep on the default
// pool (GOMAXPROCS workers); on a multi-core host the speedup over Serial is
// the parallel engine's contribution, and results are bit-identical either
// way.
func BenchmarkCoverageSweepParallel(b *testing.B) { sweepEngineBench(b, 0) }

// BenchmarkCoverageSweepSinglePass is the production sweep path: one stream
// traversal per benchmark fanning out to all 18 configurations through a
// core.SimBank, pinned to one worker so the win over
// BenchmarkCoverageSweepSerial is pure traversal reduction, not parallelism.
// Cells are bit-identical to the per-cell reference
// (TestSweepSinglePassMatchesPerCell).
func BenchmarkCoverageSweepSinglePass(b *testing.B) {
	eng := &report.Engine{Workers: 1}
	if _, err := eng.CoverageSweepWarm(workload.Suite(), core.DesignSpace(), benchBudget, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := eng.CoverageSweepWarm(workload.Suite(), core.DesignSpace(), benchBudget, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != len(workload.Suite())*len(core.DesignSpace()) {
			b.Fatalf("sweep returned %d cells", len(cells))
		}
	}
}

// BenchmarkPerfComparison measures the Section 5 performance argument: the
// IPC cost of each frontend-protection scheme on the cycle-level core.
func BenchmarkPerfComparison(b *testing.B) {
	profiles := []workload.Profile{}
	for _, name := range []string{"gap", "swim"} {
		p, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	for i := 0; i < b.N; i++ {
		rows, err := report.PerfComparison(profiles, 60_000)
		if err != nil {
			b.Fatal(err)
		}
		slow := 0.0
		for _, r := range rows {
			slow += 100 * (1 - r.TimeRedundantIPC/r.BaseIPC)
		}
		b.ReportMetric(slow/float64(len(rows)), "time-redundant-slowdown-%")
	}
}
