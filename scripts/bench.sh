#!/usr/bin/env bash
# Run the performance-regression benchmark set and compare against the
# promoted baseline.
#
#   scripts/bench.sh                 # run, write benchmarks/latest.txt, compare
#   BENCH_PATTERN='BenchmarkDecode' scripts/bench.sh   # subset
#   BENCH_TIME=5x BENCH_COUNT=3 scripts/bench.sh       # more samples
#   BENCH_MAX_REGRESSION_PCT=10 scripts/bench.sh       # looser gate
#   BENCH_GATE_ALLOCS=0 scripts/bench.sh               # ns/op gate only
#
# Exits non-zero when any benchmark's ns/op — or, for benchmarks reporting
# allocations, allocs/op — regresses more than BENCH_MAX_REGRESSION_PCT
# (default 5) past benchmarks/baseline.txt. Allocation gating can be disabled
# with BENCH_GATE_ALLOCS=0 (e.g. across Go toolchain versions, whose runtime
# allocation behavior may shift). Promote a reviewed latest.txt with
# scripts/bench-update.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-BenchmarkDecodeFull|BenchmarkDecodeMemoized|BenchmarkTraceStream|BenchmarkCoverageSweepSerial|BenchmarkCoverageSweepParallel|BenchmarkCoverageSweepSinglePass|BenchmarkSignatureAccumulate|BenchmarkITRCacheAccess|BenchmarkCoverageReplay|BenchmarkPipelineCycle|BenchmarkDetectorOverhead|BenchmarkFigure8Campaign|BenchmarkCampaignArenaReuse|BenchmarkSnapshotCapture|BenchmarkSnapshotRestore}"
TIME="${BENCH_TIME:-1s}"
COUNT="${BENCH_COUNT:-3}"
MAX="${BENCH_MAX_REGRESSION_PCT:-5}"
GATE_ALLOCS="${BENCH_GATE_ALLOCS:-1}"

mkdir -p benchmarks
go test -run '^$' -bench "$PATTERN" -benchtime "$TIME" -count "$COUNT" . | tee benchmarks/latest.txt

# Machine-readable summary alongside the raw samples: min-of-N ns/op (and
# B/op + allocs/op where reported) per benchmark, for dashboards and the CI
# artifact. Written before the gate so a failing comparison still leaves the
# numbers behind.
awk '
    function name(s) { sub(/-[0-9]+$/, "", s); return s }
    function metric(unit,   i) {
        for (i = 4; i <= NF; i++) if ($i == unit) return $(i - 1) + 0
        return -1
    }
    $1 ~ /^Benchmark/ {
        n = name($1)
        if (!(n in ns)) order[++nn] = n
        v = $3 + 0
        if (!(n in ns) || v < ns[n]) ns[n] = v
        b = metric("B/op");      if (b >= 0 && (!(n in bop) || b < bop[n])) bop[n] = b
        a = metric("allocs/op"); if (a >= 0 && (!(n in aop) || a < aop[n])) aop[n] = a
        # Custom campaign metric: simulated pipeline cycles per injection
        # (decided-outcome engine accounting; lower = more windows skipped).
        c = metric("cycles/injection"); if (c >= 0 && (!(n in cpi) || c < cpi[n])) cpi[n] = c
    }
    END {
        printf "{\n"
        for (i = 1; i <= nn; i++) {
            n = order[i]
            printf "  \"%s\": {\"ns_per_op\": %g", n, ns[n]
            if (n in bop) printf ", \"bytes_per_op\": %d", bop[n]
            if (n in aop) printf ", \"allocs_per_op\": %d", aop[n]
            if (n in cpi) printf ", \"cycles_per_injection\": %g", cpi[n]
            printf "}%s\n", i < nn ? "," : ""
        }
        printf "}\n"
    }
' benchmarks/latest.txt > benchmarks/latest.json
echo "bench.sh: wrote benchmarks/latest.json ($(wc -c < benchmarks/latest.json) bytes)"

if [ ! -f benchmarks/baseline.txt ]; then
    echo "bench.sh: no benchmarks/baseline.txt — skipping comparison (run scripts/bench-update.sh to promote)"
    exit 0
fi

# Compare the best (minimum) ns/op — and allocs/op where reported — per
# benchmark across the -count samples in each file: min-of-N is far less
# noisy than any single sample, which matters for sub-nanosecond loop bodies.
awk -v max="$MAX" -v gateallocs="$GATE_ALLOCS" '
    # Normalize "BenchmarkName-8" to "BenchmarkName" so baselines transfer
    # across machines with different GOMAXPROCS.
    function name(s) { sub(/-[0-9]+$/, "", s); return s }
    # allocs/op of the current line, or -1 when the benchmark does not report
    # allocations.
    function allocs(   i) {
        for (i = 4; i <= NF; i++) if ($i == "allocs/op") return $(i - 1) + 0
        return -1
    }
    FNR == NR {
        if ($1 ~ /^Benchmark/) {
            n = name($1)
            if (!(n in base) || $3 + 0 < base[n]) base[n] = $3 + 0
            a = allocs()
            if (a >= 0 && (!(n in basea) || a < basea[n])) basea[n] = a
        }
        next
    }
    $1 ~ /^Benchmark/ {
        n = name($1)
        if (!(n in cur)) order[++nn] = n
        if (!(n in cur) || $3 + 0 < cur[n]) cur[n] = $3 + 0
        a = allocs()
        if (a >= 0 && (!(n in cura) || a < cura[n])) cura[n] = a
    }
    END {
        for (i = 1; i <= nn; i++) {
            n = order[i]
            if (!(n in base)) continue
            b = base[n]
            pct = b > 0 ? 100 * (cur[n] - b) / b : 0
            printf "%-36s baseline %14.1f ns/op   latest %14.1f ns/op   %+7.2f%%\n", n, b, cur[n], pct
            if (n in basea && n in cura) {
                apct = basea[n] > 0 ? 100 * (cura[n] - basea[n]) / basea[n] : 0
                printf "%-36s baseline %14d allocs  latest %14d allocs  %+7.2f%%\n", "", basea[n], cura[n], apct
                # Allocation counts are deterministic modulo runtime details;
                # gate them with the same threshold unless opted out. Tiny
                # counts (< 100) flip on runtime noise — report only.
                if (gateallocs + 0 == 1 && basea[n] >= 100 && apct > max) {
                    bad = 1
                    printf "REGRESSION: %s allocates %.2f%% more per op (limit %s%%)\n", n, apct, max
                }
            }
            # Loop bodies under ~2ns are below timer resolution; report them
            # but do not gate on their percentage noise.
            if (b < 2) continue
            if (pct > max) { bad = 1; printf "REGRESSION: %s is %.2f%% slower (limit %s%%)\n", n, pct, max }
        }
        exit bad
    }
' benchmarks/baseline.txt benchmarks/latest.txt
