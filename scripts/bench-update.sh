#!/usr/bin/env bash
# Promote the last reviewed benchmark run to the regression baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ ! -f benchmarks/latest.txt ]; then
    echo "bench-update.sh: no benchmarks/latest.txt — run scripts/bench.sh first" >&2
    exit 1
fi
cp benchmarks/latest.txt benchmarks/baseline.txt
echo "bench-update.sh: promoted benchmarks/latest.txt -> benchmarks/baseline.txt"
