// Quickstart: build a small program, run it on the ITR-protected core,
// inject one transient fault into the decode signals, and watch the ITR
// cache detect it and the retry flush recover — with the committed
// instruction stream verified against a fault-free reference throughout.
package main

import (
	"fmt"
	"log"

	"itr"
	"itr/internal/isa"
	"itr/internal/program"
)

func main() {
	// 1. Build a program with the assembler-style builder: a loop that
	//    sums squares into memory.
	b := program.NewBuilder("quickstart")
	b.OpImm(isa.OpAddi, 1, 0, 2000)   // r1 = loop count
	b.OpImm(isa.OpAddi, 4, 0, 0x1000) // r4 = data base
	b.Label("loop")
	b.OpImm(isa.OpAddi, 2, 2, 1) // r2++
	b.Op(isa.OpMul, 3, 2, 2)     // r3 = r2*r2
	b.Load(isa.OpLd, 5, 4, 0)    // r5 = mem[r4]
	b.Op(isa.OpAdd, 5, 5, 3)     // r5 += r3
	b.Store(isa.OpSd, 5, 4, 0)   // mem[r4] = r5
	b.OpImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. A fault-free reference stream for end-to-end verification.
	type step struct {
		pc uint64
		o  isa.Outcome
	}
	var golden []step
	program.Run(prog, 0, func(pc uint64, _ isa.Instruction, o isa.Outcome) bool {
		golden = append(golden, step{pc, o})
		return true
	})

	// 3. The ITR-protected out-of-order core.
	cpu, err := itr.NewCPU(prog, itr.DefaultPipeline())
	if err != nil {
		log.Fatal(err)
	}

	// 4. A single-event upset: flip one bit of the rdst field of dynamic
	//    decode event 5000 (the paper's Table 2 fault model).
	injected := false
	cpu.SetFaultHook(func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
		if !injected && i == 5000 && d.NumRdst == 1 {
			injected = true
			fmt.Printf("injected: bit 36 (rdst field) of %q at pc=%d\n", d.Opcode, pc)
			return d.FlipBit(36)
		}
		return d
	})

	// 5. Verify every committed instruction against the reference.
	idx := 0
	cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		g := golden[idx]
		if pc != g.pc || !o.SameArchEffect(&g.o) {
			log.Fatalf("commit %d diverged from the fault-free reference", idx)
		}
		idx++
	})

	res := cpu.Run(10_000_000)
	st := cpu.Checker().Stats()

	fmt.Printf("termination:   %v after %d cycles (IPC %.2f)\n", res.Termination, res.Cycles, res.IPC())
	fmt.Printf("committed:     %d instructions, all matching the fault-free reference\n", idx)
	fmt.Printf("ITR cache:     %d hits, %d misses\n", st.Hits, st.Misses)
	fmt.Printf("fault story:   %d signature mismatch -> %d retry flush -> %d recovery\n",
		st.Mismatches, st.Retries, st.Recoveries)
	if st.Recoveries == 1 && idx == len(golden) {
		fmt.Println("ok: the transient fault was detected by the ITR cache and fully recovered")
	}
}
