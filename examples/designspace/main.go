// Designspace: explore the ITR cache design space for one benchmark (the
// paper's Section 3) and pick the cheapest configuration meeting a coverage
// target, accounting for energy with the Section 5 model.
//
// This is the workflow a processor architect would run: sweep sizes and
// associativities, look at detection/recovery loss, then weigh the energy
// of each candidate.
package main

import (
	"fmt"
	"log"

	"itr"
	"itr/internal/energy"
)

func main() {
	bench, err := itr.BenchmarkByName("vortex") // the paper's hardest benchmark
	if err != nil {
		log.Fatal(err)
	}
	const budget = 2_000_000
	const maxDetectionLoss = 10.0 // target: detect faults in >=90% of instructions

	fmt.Printf("design-space sweep for %s (budget %d instructions)\n\n", bench.Name, budget)
	fmt.Printf("%-12s %14s %14s %12s\n", "config", "det loss (%)", "rec loss (%)", "nJ/access")

	type candidate struct {
		cfg    itr.CacheConfig
		result itr.CoverageResult
		nj     float64
	}
	var best *candidate
	for _, cfg := range itr.DesignSpace() {
		res, err := itr.Coverage(bench, cfg, budget)
		if err != nil {
			log.Fatal(err)
		}
		// Energy per access for this geometry (64-bit signatures).
		assoc := cfg.Assoc
		nj, err := energy.AccessEnergyNJ(energy.CacheSpec{
			SizeBytes: cfg.Entries * 8,
			Assoc:     assoc,
			LineBytes: 8,
			Ports:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %14.2f %14.2f %12.3f\n", cfg, res.DetectionLoss, res.RecoveryLoss, nj)

		if res.DetectionLoss <= maxDetectionLoss {
			c := candidate{cfg: cfg, result: res, nj: nj}
			if best == nil || c.nj < best.nj {
				best = &c
			}
		}
	}

	if best == nil {
		fmt.Printf("\nno configuration meets the %.0f%% detection-loss target\n", maxDetectionLoss)
		return
	}
	fmt.Printf("\ncheapest configuration meeting <=%.0f%% detection loss: %s\n", maxDetectionLoss, best.cfg)
	fmt.Printf("  detection loss %.2f%%, recovery loss %.2f%%, %.3f nJ/access\n",
		best.result.DetectionLoss, best.result.RecoveryLoss, best.nj)

	// How much frontend-protection energy does that save against
	// re-fetching every instruction (conventional time redundancy)?
	iNJ, _ := energy.AccessEnergyNJ(energy.Power4ICache)
	itrMJ := energy.EnergyMJ(best.result.Reads+best.result.Writes, best.nj)
	redMJ := energy.EnergyMJ(energy.RedundantFetchAccesses(best.result.TotalInsts), iNJ)
	fmt.Printf("  protection energy: %.2f mJ vs %.2f mJ for redundant fetch (%.1fx less)\n",
		itrMJ, redMJ, redMJ/itrMJ)
}
