// Faultcampaign: run a scaled-down version of the paper's Section 4
// experiment on one benchmark — randomized single-bit decode-signal faults,
// golden lockstep comparison, outcome classification — and print the
// Figure 8-style breakdown together with the per-field tally.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"itr"
	"itr/internal/fault"
)

func main() {
	bench, err := itr.BenchmarkByName("gap")
	if err != nil {
		log.Fatal(err)
	}

	cfg := itr.DefaultCampaign()
	cfg.Faults = 40                       // the paper uses 1000 per benchmark
	cfg.Experiment.WindowCycles = 120_000 // the paper observes 1M cycles
	cfg.Experiment.Verify = true          // confirm recoveries with the full protocol

	fmt.Printf("injecting %d single-bit decode-signal faults into %s...\n", cfg.Faults, bench.Name)
	start := time.Now()
	res, err := itr.InjectFaults(bench, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("outcome breakdown (Figure 8 categories):")
	for _, cat := range fault.Categories() {
		if n := res.Counts[cat]; n > 0 {
			fmt.Printf("  %-12s %3d  (%.1f%%)\n", cat, n, res.Pct(cat))
		}
	}
	fmt.Printf("\nITR detected %.1f%% of injected faults (paper average: 95.4%%)\n", res.DetectedPct())
	if res.RecoveryAttempted > 0 {
		fmt.Printf("full-protocol verification: %d/%d recoverable detections recovered\n",
			res.RecoveryConfirmed, res.RecoveryAttempted)
	}

	fmt.Println("\ninjections by decode-signal field (Table 2):")
	fields := make([]string, 0, len(res.ByField))
	for f := range res.ByField {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, f := range fields {
		fmt.Printf("  %-10s %d\n", f, res.ByField[f])
	}

	// Show one interesting detail record, if present: a fault that would
	// have been an SDC but was recovered.
	for _, d := range res.Details {
		if d.Category == fault.ITRSDCR {
			fmt.Printf("\nexample recovered SDC: decode event %d, bit %d (%s field)\n",
				d.Injection.DecodeIndex, d.Injection.Bit, d.Injection.Field())
			fmt.Printf("  without ITR: architectural state corrupted (golden divergence)\n")
			fmt.Printf("  with ITR:    recovered=%v, machine check=%v\n", d.RecoveredInFull, d.MachineCheck)
			break
		}
	}
}
