// Characterize: measure the inherent time redundancy of your own workload —
// the analysis behind the paper's Figures 1-4 — and predict how well an ITR
// cache would cover it.
//
// The example builds a custom program (a string-search-like workload with a
// hot inner loop, a medium dispatch loop and a cold error path), runs the
// trace characterizer over it, and then checks the prediction against an
// actual coverage simulation.
package main

import (
	"fmt"
	"log"

	"itr"
	"itr/internal/core"
	"itr/internal/isa"
	"itr/internal/program"
	"itr/internal/trace"
	"itr/internal/workload"
)

func buildCustomWorkload() *program.Program {
	b := program.NewBuilder("custom")
	b.OpImm(isa.OpAddi, 1, 0, 10000) // outer iterations
	b.OpImm(isa.OpAddi, 4, 0, 0x2000)
	b.Label("outer")

	// Hot inner loop: compare bytes (think strcmp inner loop).
	b.OpImm(isa.OpAddi, 2, 0, 40)
	b.Label("scan")
	b.Load(isa.OpLb, 5, 4, 0)
	b.Load(isa.OpLb, 6, 4, 64)
	b.Op(isa.OpSub, 7, 5, 6)
	b.OpImm(isa.OpAddi, 2, 2, -1)
	b.Branch(isa.OpBne, 2, 0, "scan")

	// Medium-frequency dispatch work.
	b.OpImm(isa.OpAddi, 2, 0, 4)
	b.Label("dispatch")
	b.Op(isa.OpXor, 8, 8, 7)
	b.Shift(isa.OpSll, 9, 8, 3)
	b.Op(isa.OpAdd, 10, 9, 5)
	b.Store(isa.OpSw, 10, 4, 128)
	b.OpImm(isa.OpAddi, 2, 2, -1)
	b.Branch(isa.OpBne, 2, 0, "dispatch")

	// Cold error path, never taken (r3 stays zero).
	b.Branch(isa.OpBeq, 3, 0, "no_error")
	for i := 0; i < 30; i++ {
		b.OpImm(isa.OpAddi, 11, 11, 1)
	}
	b.Label("no_error")

	b.OpImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "outer")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	prog := buildCustomWorkload()
	const budget = 1_000_000

	// Characterize: static traces, popularity, repeat distances.
	c := trace.Characterize(prog, budget)
	fmt.Printf("workload: %d dynamic instructions, %d static traces\n",
		c.DynamicInstructions(), c.StaticTraces())
	fmt.Printf("top-10 static traces cover %.1f%% of dynamic instructions\n", c.CoverageAtTopK(10))
	for _, d := range []int64{100, 500, 1500, 5000} {
		fmt.Printf("repetitions within %5d instructions cover %.1f%% of dynamic instructions\n",
			d, c.RepeatFractionWithin(d))
	}

	// Predict and measure ITR cache coverage for two design points.
	events, _ := workload.EventsOf(prog, budget)
	for _, cfg := range []itr.CacheConfig{
		{Entries: 256, Assoc: 1},
		itr.DefaultCacheConfig(),
	} {
		sim, err := core.NewCoverageSim(cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range events {
			sim.Access(ev)
		}
		r := sim.Result()
		fmt.Printf("ITR cache %-11s detection loss %.3f%%, recovery loss %.3f%%\n",
			cfg, r.DetectionLoss, r.RecoveryLoss)
	}

	// Compare against a published benchmark profile for context.
	bzip, err := itr.BenchmarkByName("bzip")
	if err != nil {
		log.Fatal(err)
	}
	bc, err := itr.Characterize(bzip, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("for reference, bzip: %d static traces, %.1f%% of instructions repeat within 500\n",
		bc.StaticTraces(), bc.RepeatFractionWithin(500))
}
