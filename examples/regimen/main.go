// Regimen: the paper's closing argument is that ITR-style checks compose
// into "a regimen of low-overhead microarchitecture-level fault checks",
// each protecting a distinct part of the pipeline. This example arms the
// full regimen on one core and throws a different kind of transient fault at
// each protected structure:
//
//  1. a decode-signal fault   -> frontend ITR signature (Section 2)
//  2. a rename-index fault    -> rename-signature checker (Section 1)
//  3. an ITR-cache line fault -> parity protection (Section 2.4)
//
// All three are detected and recovered in the same run, with the committed
// instruction stream verified against a fault-free functional reference
// throughout, and coarse-grain checkpointing armed as the backstop.
package main

import (
	"fmt"
	"log"

	"itr"
	"itr/internal/cache"
	"itr/internal/isa"
	"itr/internal/pipeline"
	"itr/internal/program"
)

func buildProgram() *program.Program {
	b := program.NewBuilder("regimen")
	b.OpImm(isa.OpAddi, 1, 0, 6000)
	b.OpImm(isa.OpAddi, 4, 0, 0x4000)
	b.Label("loop")
	b.OpImm(isa.OpAddi, 2, 2, 1)
	b.Op(isa.OpMul, 3, 2, 2)
	b.Store(isa.OpSd, 3, 4, 0)
	b.Load(isa.OpLd, 5, 4, 0)
	b.Op(isa.OpXor, 6, 5, 2)
	b.OpImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	prog := buildProgram()

	// A fault-free reference stream for end-to-end verification.
	type step struct {
		pc uint64
		o  isa.Outcome
	}
	var golden []step
	program.Run(prog, 0, func(pc uint64, _ isa.Instruction, o isa.Outcome) bool {
		golden = append(golden, step{pc, o})
		return true
	})

	// Arm the full regimen.
	cfg := itr.DefaultPipeline()
	cfg.ITR.Parity = true        // Section 2.4: parity-protected ITR cache lines
	cfg.RenameITREnabled = true  // Section 1: rename-index signatures
	cfg.CheckpointEnabled = true // Section 2.3: coarse-grain checkpoint backstop
	cpu, err := itr.NewCPU(prog, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Fault 1: decode-signal upset (rdst bit) around decode event 3000.
	decodeDone := false
	cpu.SetFaultHook(func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
		if !decodeDone && i >= 3000 && !wrongPath && d.NumRdst == 1 {
			decodeDone = true
			fmt.Println("fault 1: decode-signal upset (rdst field)")
			return d.FlipBit(36)
		}
		return d
	})

	// Fault 2: rename-index upset around decode event 9000 — invisible to
	// the frontend signature, caught by the rename checker.
	renameDone := false
	cpu.SetRenameFaultHook(func(i int64, ri pipeline.RenameIndexes) pipeline.RenameIndexes {
		if !renameDone && i >= 9000 && ri.NSrc >= 1 && ri.Src1 != 0 {
			renameDone = true
			fmt.Println("fault 2: rename-map index upset (src1)")
			ri.Src1 ^= 0x1f
		}
		return ri
	})

	// Verify every committed instruction against the reference.
	idx := 0
	cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		if idx >= len(golden) {
			log.Fatalf("committed beyond the reference at %d", idx)
		}
		g := golden[idx]
		if pc != g.pc || !o.SameArchEffect(&g.o) {
			log.Fatalf("commit %d diverged from the fault-free reference", idx)
		}
		idx++
	})

	// Run the first half, then inject fault 3 directly into the ITR cache:
	// flip a stored signature bit (a fault on the checker's own state).
	cpu.Run(4_000)
	flipped := false
	cpu.Checker().Cache().Visit(func(ln *cache.Line) {
		if !flipped && ln.Referenced {
			flipped = true
			ln.Value ^= 1 << 13
		}
	})
	if flipped {
		fmt.Println("fault 3: ITR cache line upset (stored signature)")
	}

	res := cpu.Run(10_000_000)

	front := cpu.Checker().Stats()
	ren := cpu.RenameChecker().Stats()
	fmt.Printf("\ntermination:       %v after %d cycles\n", res.Termination, res.Cycles)
	fmt.Printf("committed:         %d instructions, all matching the reference\n", idx)
	fmt.Printf("frontend checker:  %d mismatches, %d retries, %d recoveries, %d parity repairs\n",
		front.Mismatches, front.Retries, front.Recoveries, front.ParityRecovers)
	fmt.Printf("rename checker:    %d mismatches, %d retries, %d recoveries\n",
		ren.Mismatches, ren.Retries, ren.Recoveries)
	fmt.Printf("checkpoints taken: %d (rollbacks needed: %d)\n",
		cpu.Checkpoints().Stats().Taken, res.CheckpointRollbacks)

	ok := res.Termination == pipeline.TermHalt &&
		front.Recoveries >= 1 && front.ParityRecovers >= 1 && ren.Recoveries >= 1 &&
		idx == len(golden)
	if ok {
		fmt.Println("\nok: three distinct transient faults — decode, rename, ITR cache —")
		fmt.Println("    all detected and recovered by the regimen; execution is exact.")
	} else {
		fmt.Println("\nWARNING: not every fault was exercised/recovered as expected")
	}
}
