package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry maps stable metric names to live counters, gauges, and
// histograms. Registration takes a mutex; reads go straight to the
// underlying lock-free primitives, so scraping /metrics mid-campaign never
// stalls a worker.
//
// Names follow Prometheus conventions (snake_case, unit-suffixed, counters
// end in _total) and may carry a literal label set, e.g.
// `itr_detection_latency_cycles{backend="dme"}` — the exposition writer
// splits the base name from the braces when forming series.
type Registry struct {
	mu      sync.Mutex
	order   []string
	metrics map[string]metric
}

type metric struct {
	counter *Counter
	gauge   func() int64
	hist    *Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

func (r *Registry) register(name string, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.metrics[name] = m
	r.order = append(r.order, name)
}

// RegisterCounter exposes an existing counter (e.g. a probe field) under
// name. Panics on duplicate names — metric names are program constants.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.register(name, metric{counter: c})
}

// RegisterGaugeFunc exposes a read callback as a gauge. The callback must
// be safe to invoke from the serving goroutine at any time.
func (r *Registry) RegisterGaugeFunc(name string, f func() int64) {
	r.register(name, metric{gauge: f})
}

// RegisterHist exposes an existing histogram under name.
func (r *Registry) RegisterHist(name string, h *Hist) {
	r.register(name, metric{hist: h})
}

// Hist returns the histogram registered under name, creating and
// registering a fresh one on first use.
func (r *Registry) Hist(name string) *Hist {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.hist == nil {
			panic("obs: metric " + name + " is not a histogram")
		}
		return m.hist
	}
	h := &Hist{}
	r.metrics[name] = metric{hist: h}
	r.order = append(r.order, name)
	return h
}

// snapshot returns the registered metrics in sorted-name order.
func (r *Registry) snapshot() ([]string, map[string]metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	ms := make(map[string]metric, len(names))
	for _, n := range names {
		ms[n] = r.metrics[n]
	}
	return names, ms
}

// splitSeries splits `base{labels}` into base and the inner label list
// (without braces); labels is empty when the name carries none.
func splitSeries(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// series joins a base name with label pairs into one exposition series.
func series(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	default:
		return base + "{" + labels + "," + extra + "}"
	}
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4), series sorted by metric name. Counter and gauge
// values are point-in-time folds of their shards; histograms expose
// cumulative _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	names, ms := r.snapshot()
	typed := make(map[string]bool)
	for _, name := range names {
		m := ms[name]
		base, labels := splitSeries(name)
		switch {
		case m.counter != nil:
			if !typed[base] {
				typed[base] = true
				fmt.Fprintf(w, "# TYPE %s counter\n", base)
			}
			fmt.Fprintf(w, "%s %d\n", series(base, labels, ""), m.counter.Load())
		case m.gauge != nil:
			if !typed[base] {
				typed[base] = true
				fmt.Fprintf(w, "# TYPE %s gauge\n", base)
			}
			fmt.Fprintf(w, "%s %d\n", series(base, labels, ""), m.gauge())
		case m.hist != nil:
			if !typed[base] {
				typed[base] = true
				fmt.Fprintf(w, "# TYPE %s histogram\n", base)
			}
			var cum int64
			for _, b := range m.hist.Buckets() {
				cum += b.Count
				fmt.Fprintf(w, "%s %d\n", series(base+"_bucket", labels, fmt.Sprintf("le=%q", fmt.Sprint(b.Hi))), cum)
			}
			fmt.Fprintf(w, "%s %d\n", series(base+"_bucket", labels, `le="+Inf"`), m.hist.Count())
			fmt.Fprintf(w, "%s %d\n", series(base+"_sum", labels, ""), m.hist.Sum())
			fmt.Fprintf(w, "%s %d\n", series(base+"_count", labels, ""), m.hist.Count())
		}
	}
	return nil
}

// Snapshot folds every metric to a plain value keyed by its registered
// name (histograms report their observation count) — the expvar view.
func (r *Registry) Snapshot() map[string]int64 {
	names, ms := r.snapshot()
	out := make(map[string]int64, len(names))
	for _, name := range names {
		m := ms[name]
		switch {
		case m.counter != nil:
			out[name] = m.counter.Load()
		case m.gauge != nil:
			out[name] = m.gauge()
		case m.hist != nil:
			out[name] = m.hist.Count()
		}
	}
	return out
}

// expvar publication: expvar.Publish panics on duplicate names and offers
// no unpublish, so one process-lifetime variable indirects through an
// atomic pointer to whichever registry is currently live (tests and
// multi-run processes swap it freely).
var (
	liveExpvar atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// publishExpvar makes r the registry backing the process's "itr_metrics"
// expvar (served at /debug/vars).
func publishExpvar(r *Registry) {
	liveExpvar.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("itr_metrics", expvar.Func(func() any {
			if reg := liveExpvar.Load(); reg != nil {
				return reg.Snapshot()
			}
			return map[string]int64{}
		}))
	})
}
