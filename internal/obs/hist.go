package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is bits.Len64 of the largest observable value plus one:
// bucket i holds observations v with bits.Len64(v) == i, i.e. bucket 0 is
// exactly {0} and bucket i>0 covers [2^(i-1), 2^i - 1].
const histBuckets = 65

// Hist is a fixed-bucket log2 histogram of non-negative int64
// observations. Buckets are power-of-two ranges, so Observe is one
// bits.Len64 plus three uncontended-in-practice atomic adds — no locks, no
// allocation, safe from any number of goroutines. Quantiles are approximate
// to within the bucket width (a factor of two), which is the right fidelity
// for latency distributions spanning many decades of cycles.
//
// The zero value is ready to use. Do not copy after first use.
type Hist struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Hist) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observation, or 0 with no observations.
func (h *Hist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// bucketHi returns the inclusive upper bound of bucket i.
func bucketHi(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(uint64(1)<<uint(i)) - 1
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// inclusive upper edge of the first bucket whose cumulative count reaches
// q*Count. Returns 0 with no observations.
func (h *Hist) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketHi(i)
		}
	}
	return bucketHi(histBuckets - 1)
}

// Bucket is one non-empty histogram bucket: observations in [Lo, Hi].
type Bucket struct {
	Lo, Hi int64
	Count  int64
}

// Buckets returns the non-empty buckets in ascending range order.
func (h *Hist) Buckets() []Bucket {
	var out []Bucket
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = bucketHi(i-1) + 1
		}
		out = append(out, Bucket{Lo: lo, Hi: bucketHi(i), Count: n})
	}
	return out
}
