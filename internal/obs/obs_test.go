package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterShards(t *testing.T) {
	var c Counter
	c.Add(3)
	c.AddAt(1, 4)
	c.AddAt(NumShards+1, 5) // masks onto shard 1
	c.AddAt(7, -2)
	if got := c.Load(); got != 10 {
		t.Fatalf("Load = %d, want 10", got)
	}
	c.Store(42)
	if got := c.Load(); got != 42 {
		t.Fatalf("after Store, Load = %d, want 42", got)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatalf("empty hist not zero")
	}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	h.Observe(-5) // clamps to 0
	if h.Count() != 1001 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 500500 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	// p50 of 1..1000 is ~500; the log2 bucket upper bound is 511.
	if got := h.Quantile(0.50); got != 511 {
		t.Fatalf("p50 = %d, want 511", got)
	}
	// p99 is ~990, bucket [512,1023].
	if got := h.Quantile(0.99); got != 1023 {
		t.Fatalf("p99 = %d, want 1023", got)
	}
	bs := h.Buckets()
	var n int64
	for i, b := range bs {
		if b.Lo > b.Hi {
			t.Fatalf("bucket %d: lo %d > hi %d", i, b.Lo, b.Hi)
		}
		if i > 0 && b.Lo <= bs[i-1].Hi {
			t.Fatalf("buckets overlap: %v", bs)
		}
		n += b.Count
	}
	if n != h.Count() {
		t.Fatalf("bucket counts sum to %d, want %d", n, h.Count())
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	r := tr.Ring("w")
	for i := int64(0); i < 10; i++ {
		r.Emit(EvDetection, i, i*2)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	for i, e := range evs {
		if want := int64(6 + i); e.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (oldest-first)", i, e.Cycle, want)
		}
	}
	if tr.Ring("w") != r {
		t.Fatalf("Ring not idempotent per label")
	}

	var nilRing *Ring
	nilRing.Emit(EvDetection, 1, 2) // must not panic
	nilRing.EmitSpan(EvStage, time.Now(), 0, 0)
	if nilRing.Len() != 0 || nilRing.Dropped() != 0 {
		t.Fatalf("nil ring not empty")
	}
}

func TestChromeExport(t *testing.T) {
	tr := NewTracer(16)
	a := tr.Ring("alpha")
	b := tr.Ring("beta")
	a.Emit(EvSnapshotCapture, 100, 7)
	b.EmitSpan(EvStage, time.Now().Add(-time.Millisecond), 0, 3)
	a.Emit(EvRollback, 222, 0x40)

	var sb strings.Builder
	if err := tr.WriteChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, sb.String())
	}
	var names, threads, spans int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			threads++
		case "X":
			spans++
		case "i":
			names++
		}
	}
	if threads != 2 || names != 2 || spans != 1 {
		t.Fatalf("export shape: %d threads, %d instants, %d spans\n%s", threads, names, spans, sb.String())
	}
}

func TestRegistryPrometheusAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(5)
	reg.RegisterCounter("itr_cycles_total", &c)
	reg.RegisterGaugeFunc("itr_workers", func() int64 { return 3 })
	h := reg.Hist(`itr_latency_cycles{backend="dme"}`)
	h.Observe(3)
	h.Observe(100)
	if reg.Hist(`itr_latency_cycles{backend="dme"}`) != h {
		t.Fatalf("Hist not idempotent per name")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE itr_cycles_total counter\n",
		"itr_cycles_total 5\n",
		"itr_workers 3\n",
		`itr_latency_cycles_bucket{backend="dme",le="3"} 1`,
		`itr_latency_cycles_bucket{backend="dme",le="+Inf"} 2`,
		`itr_latency_cycles_sum{backend="dme"} 103`,
		`itr_latency_cycles_count{backend="dme"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	snap := reg.Snapshot()
	if snap["itr_cycles_total"] != 5 || snap[`itr_latency_cycles{backend="dme"}`] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(9)
	reg.RegisterCounter("itr_test_total", &c)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	if got := get("/metrics"); !strings.Contains(got, "itr_test_total 9") {
		t.Fatalf("/metrics:\n%s", got)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["itr_metrics"]; !ok {
		t.Fatalf("/debug/vars missing itr_metrics: %v", vars)
	}
	if got := get("/debug/pprof/"); !strings.Contains(got, "goroutine") {
		t.Fatalf("/debug/pprof/ index:\n%s", got)
	}

	// A second server (fresh registry) must not trip expvar's
	// duplicate-publish panic and must serve the new registry's values.
	reg2 := NewRegistry()
	var c2 Counter
	c2.Add(11)
	reg2.RegisterCounter("itr_test_total", &c2)
	srv2, err := Serve("127.0.0.1:0", reg2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	resp, err := http.Get("http://" + srv2.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "itr_test_total 11") {
		t.Fatalf("second server /metrics:\n%s", body)
	}
}

// TestConcurrentHammer drives sharded counters, a histogram, per-worker
// rings, and concurrent registry reads from a worker pool; run under
// -race it is the tentpole's data-race regression test.
func TestConcurrentHammer(t *testing.T) {
	const workers = 8
	const perWorker = 2000

	reg := NewRegistry()
	var c Counter
	reg.RegisterCounter("hammer_total", &c)
	h := reg.Hist("hammer_hist")
	tr := NewTracer(64)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ring := tr.Ring(fmt.Sprintf("worker-%d", w))
			for i := 0; i < perWorker; i++ {
				c.AddAt(uint32(w), 1)
				h.Observe(int64(i))
				ring.Emit(EvInjectStart, int64(i), int64(w))
			}
		}(w)
	}
	// Concurrent scrapes while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			reg.WritePrometheus(&sb)
			reg.Snapshot()
			c.Load()
			h.Quantile(0.99)
		}
	}()
	wg.Wait()
	<-done

	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", got, workers*perWorker)
	}
	if got := tr.TotalEvents(); got != workers*perWorker {
		t.Fatalf("tracer events = %d, want %d", got, workers*perWorker)
	}
}
