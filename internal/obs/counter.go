// Package obs is the unified observability layer: sharded lock-free
// counters, fixed-bucket log2 histograms, a bounded ring-buffer event
// tracer, a named-metric registry with Prometheus-text and expvar
// exposition, and a live telemetry HTTP endpoint.
//
// The probe structs threaded through pipeline, fault, and report
// (pipeline.Probe, fault.Progress, report.Probe) are built from these
// primitives; the experiment engine registers them under stable metric
// names and serves them live. Everything here is observability only:
// nothing in this package may influence simulation results.
package obs

import "sync/atomic"

// NumShards is the number of independent cells in a Counter. It must be a
// power of two (AddAt masks the shard index with NumShards-1). Eight covers
// the campaign worker pool on typical core counts without making the
// counters unreasonably large (8 cache lines each).
const NumShards = 8

// cell is one counter shard, padded out to a cache line so shards written
// by different workers never false-share.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonic (by convention) event counter sharded across
// NumShards cache-line-padded cells. Writers on distinct shards never touch
// the same cache line, so a worker pool incrementing its own shard scales
// without contention; Load folds the shards on read, which is the rare
// path (progress ticks, manifest finalization, /metrics scrapes).
//
// The zero value is ready to use. Counters must not be copied after first
// use (hand around *Counter, as the probe structs do).
type Counter struct {
	cells [NumShards]cell
}

// Add adds d on shard 0. Single-writer call sites (the pilot run, the
// engine goroutine) use this; concurrent writers should spread over shards
// with AddAt.
func (c *Counter) Add(d int64) { c.cells[0].n.Add(d) }

// AddAt adds d on the shard selected by shard (masked into range), letting
// concurrent writers — pipeline CPUs, campaign workers — each pound a
// private cache line.
func (c *Counter) AddAt(shard uint32, d int64) {
	c.cells[shard&(NumShards-1)].n.Add(d)
}

// Load returns the sum over all shards. The result is exact once writers
// have quiesced; while they are running it is a linearization-free snapshot
// (never less than a previously observed quiesced value, as shards only
// grow under the monotonic convention).
func (c *Counter) Load() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// Store resets the counter to v (written to shard 0, other shards zeroed).
// Only for tests and single-writer re-baselining; racing Store with AddAt
// loses updates by design.
func (c *Counter) Store(v int64) {
	c.cells[0].n.Store(v)
	for i := 1; i < NumShards; i++ {
		c.cells[i].n.Store(0)
	}
}
