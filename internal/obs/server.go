package obs

import (
	"expvar"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"time"
)

// Server is a live telemetry HTTP endpoint bound to one registry:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/vars    expvar JSON (registry snapshot under "itr_metrics")
//	/debug/pprof/  net/http/pprof profiles of the running process
//
// It exists so a long campaign can be scraped and profiled while in
// flight; the experiment engine starts it when the spec carries a
// telemetry address and closes it when the run finishes.
type Server struct {
	// Addr is the resolved listen address (useful when the requested
	// address was ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve listens on addr and serves reg until Close. The listener is bound
// synchronously — on return the endpoint is scrapeable — while request
// serving runs on a background goroutine.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publishExpvar(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)

	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
