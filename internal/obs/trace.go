package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// EventKind identifies a typed trace event. Events carry no strings — a
// ring entry is five machine words — so the kind enumerates everything the
// exporter needs to name an event.
type EventKind uint8

const (
	evInvalid EventKind = iota
	// EvSnapshotCapture: a pipeline CPU captured a COW snapshot.
	// Cycle = capture cycle, Arg = pages referenced by the snapshot.
	EvSnapshotCapture
	// EvSnapshotRestore: a CPU restored (or fast-forwarded from) a
	// snapshot. Cycle = the restored-to cycle, Arg = 0.
	EvSnapshotRestore
	// EvDetectorPoll: a commit-stage slow poll (PollQuick returned false).
	// Cycle = poll cycle, Arg = the returned core.ActionKind.
	EvDetectorPoll
	// EvDetection: the detector's mismatch count advanced. Cycle =
	// detection cycle, Arg = committed instructions at detection.
	EvDetection
	// EvRollback: an ITR retry flush rewound the machine. Cycle = flush
	// cycle, Arg = restart PC.
	EvRollback
	// EvInjectStart: a campaign worker began an injection run.
	// Cycle = target decode-event index, Arg = flipped bit.
	EvInjectStart
	// EvInjectClassify: the injection's observe/verify runs finished and
	// the outcome was classified. Cycle = target decode-event index,
	// Arg = 1 if the backend detected the fault, else 0.
	EvInjectClassify
	// EvSweepCell: a design-space sweep cell completed. Cycle = completed
	// cells so far, Arg = cell wall-clock in microseconds.
	EvSweepCell
	// EvStage: an experiment stage span. Cycle = 0, Arg = the stage's
	// index in the manifest stage list. Dur covers the stage.
	EvStage
)

var eventKindNames = [...]string{
	evInvalid:         "invalid",
	EvSnapshotCapture: "snapshot-capture",
	EvSnapshotRestore: "snapshot-restore",
	EvDetectorPoll:    "detector-poll",
	EvDetection:       "detection",
	EvRollback:        "rollback",
	EvInjectStart:     "inject-start",
	EvInjectClassify:  "inject-classify",
	EvSweepCell:       "sweep-cell",
	EvStage:           "stage",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one ring entry: a wall-clock timestamp (µs since the tracer
// started), an optional duration for spans, the kind, and two kind-specific
// payload words — by convention Cycle carries a simulated-time coordinate
// and Arg everything else (see the kind docs).
type Event struct {
	TS    int64 // µs since Tracer start
	Dur   int64 // µs; 0 for instant events
	Kind  EventKind
	Cycle int64
	Arg   int64
}

// Ring is a bounded single-writer event buffer. Emit overwrites the oldest
// entry once full and never blocks, locks, or allocates, so it is safe on
// the pipeline's commit path. Exactly one goroutine may emit to a ring at a
// time (ownership may transfer between goroutines across a happens-before
// edge, e.g. successive campaign stages joined by WaitGroups); readers must
// wait for writers to quiesce. A nil *Ring is valid and drops everything,
// so call sites don't need nil checks.
type Ring struct {
	t     *Tracer
	label string
	buf   []Event
	next  int   // index of the slot Emit writes next
	total int64 // events emitted over the ring's lifetime
}

// Emit records an instant event. The nil check inlines at the call site,
// so an untraced (nil-ring) emit costs one predictable branch — cheap
// enough for the pipeline's flush and slow-poll paths.
func (r *Ring) Emit(kind EventKind, cycle, arg int64) {
	if r == nil {
		return
	}
	r.emit(kind, cycle, arg)
}

func (r *Ring) emit(kind EventKind, cycle, arg int64) {
	r.push(Event{TS: r.t.now(), Kind: kind, Cycle: cycle, Arg: arg})
}

// EmitSpan records a completed span that started at start and ends now.
func (r *Ring) EmitSpan(kind EventKind, start time.Time, cycle, arg int64) {
	if r == nil {
		return
	}
	ts := start.Sub(r.t.start).Microseconds()
	if ts < 0 {
		ts = 0
	}
	r.push(Event{TS: ts, Dur: r.t.now() - ts, Kind: kind, Cycle: cycle, Arg: arg})
}

func (r *Ring) push(e Event) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.total++
}

// Len returns the number of events currently held (≤ capacity).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	if r.total < int64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Dropped returns how many events were overwritten by newer ones.
func (r *Ring) Dropped() int64 {
	if r == nil {
		return 0
	}
	if d := r.total - int64(len(r.buf)); d > 0 {
		return d
	}
	return 0
}

// Events returns the held events oldest-first. Call only after the ring's
// writer has quiesced.
func (r *Ring) Events() []Event {
	n := r.Len()
	out := make([]Event, 0, n)
	if n == 0 {
		return out
	}
	start := 0
	if r.total > int64(len(r.buf)) {
		start = r.next // oldest surviving entry
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// DefaultRingCap is the per-ring event capacity when NewTracer is given a
// non-positive capacity: 4096 events × 40 bytes ≈ 160 KiB per ring.
const DefaultRingCap = 4096

// Tracer owns a set of labeled rings and the shared wall-clock epoch.
// Ring lookup/creation takes a mutex (call it once per worker, not per
// event); emission on the returned ring is lock-free.
type Tracer struct {
	start   time.Time
	ringCap int

	mu    sync.Mutex
	rings []*Ring
	index map[string]*Ring
}

// NewTracer returns a tracer whose rings hold ringCap events each
// (DefaultRingCap if ringCap <= 0).
func NewTracer(ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Tracer{
		start:   time.Now(),
		ringCap: ringCap,
		index:   make(map[string]*Ring),
	}
}

func (t *Tracer) now() int64 { return time.Since(t.start).Microseconds() }

// Ring returns the ring with the given label, creating it on first use.
// The label becomes the thread name in the Chrome export. The caller is
// responsible for the single-writer discipline on the returned ring.
func (t *Tracer) Ring(label string) *Ring {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.index[label]; ok {
		return r
	}
	r := &Ring{t: t, label: label, buf: make([]Event, t.ringCap)}
	t.index[label] = r
	t.rings = append(t.rings, r)
	return r
}

// TotalEvents returns the lifetime event count across all rings (including
// overwritten entries).
func (t *Tracer) TotalEvents() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, r := range t.rings {
		n += r.total
	}
	return n
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (catapult "trace event format"; loadable in Perfetto and
// chrome://tracing). ph "i" is an instant event, "X" a complete span, "M" a
// metadata record (thread names).
type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	S    string `json:"s,omitempty"`
	Args any    `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeJSON merges all rings (oldest-first per ring, globally sorted
// by timestamp) into one Chrome trace-event JSON document. Each ring is
// rendered as a named thread of pid 1. Call only after all ring writers
// have quiesced.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	t.mu.Lock()
	rings := append([]*Ring(nil), t.rings...)
	t.mu.Unlock()

	var out []chromeEvent
	for tid, r := range rings {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid + 1,
			Args: map[string]string{"name": r.label},
		})
		for _, e := range r.Events() {
			ce := chromeEvent{
				Name: e.Kind.String(),
				TS:   e.TS,
				PID:  1,
				TID:  tid + 1,
				Args: map[string]int64{"cycle": e.Cycle, "arg": e.Arg},
			}
			if e.Dur > 0 {
				ce.Ph, ce.Dur = "X", e.Dur
			} else {
				ce.Ph, ce.S = "i", "t"
			}
			out = append(out, ce)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Ph == "M" || out[j].Ph == "M" {
			return out[i].Ph == "M" && out[j].Ph != "M"
		}
		return out[i].TS < out[j].TS
	})
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}
