package sig

import (
	"testing"
	"testing/quick"

	"itr/internal/isa"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Len() != 0 || a.Value() != 0 || a.Full() {
		t.Fatal("zero accumulator not empty")
	}
	a.Add(0xff)
	a.Add(0x0f)
	if a.Value() != 0xf0 || a.Len() != 2 {
		t.Fatalf("value=%#x len=%d", a.Value(), a.Len())
	}
	a.Reset()
	if a.Len() != 0 || a.Value() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestAccumulatorFullAt16(t *testing.T) {
	var a Accumulator
	for i := 0; i < isa.MaxTraceLen; i++ {
		if a.Full() {
			t.Fatalf("full at %d", i)
		}
		a.Add(uint64(i))
	}
	if !a.Full() {
		t.Fatal("not full at 16")
	}
}

// Core ITR property: a single bit flip in any instruction's signal word
// changes the trace signature (the basis of fault detection, Section 2.1).
func TestPropertySingleFlipChangesSignature(t *testing.T) {
	if err := quick.Check(func(words []uint64, idxSel, bitSel uint8) bool {
		if len(words) == 0 {
			return true
		}
		if len(words) > isa.MaxTraceLen {
			words = words[:isa.MaxTraceLen]
		}
		idx := int(idxSel) % len(words)
		bit := int(bitSel) % 64

		var clean, faulty Accumulator
		for i, w := range words {
			clean.Add(w)
			if i == idx {
				w ^= 1 << uint(bit)
			}
			faulty.Add(w)
		}
		return clean.Value() != faulty.Value()
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// The known limitation the paper accepts: an even number of identical-signal
// faults cancels (outside the single-event-upset model).
func TestEvenFaultsInSameSignalCancel(t *testing.T) {
	words := []uint64{1, 2, 3, 4}
	var clean, faulty Accumulator
	for i, w := range words {
		clean.Add(w)
		if i == 1 || i == 2 {
			w ^= 1 << 7 // same bit position in two instructions
		}
		faulty.Add(w)
	}
	if clean.Value() != faulty.Value() {
		t.Fatal("double fault in the same signal should cancel under XOR")
	}
}

// Signature is order-insensitive under XOR; that is acceptable because the
// ITR cache key (start PC) pins the instruction sequence. Verify the
// documented behaviour so a future change to an order-sensitive combiner is
// deliberate.
func TestSignatureOrderInsensitive(t *testing.T) {
	var a, b Accumulator
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(1)
	if a.Value() != b.Value() {
		t.Fatal("XOR combiner should be order-insensitive")
	}
}

func TestOfMatchesAccumulator(t *testing.T) {
	insts := []isa.Instruction{
		{Op: isa.OpAddi, Rd: 1, Imm: 5},
		{Op: isa.OpAdd, Rd: 2, Rs1: 1, Rs2: 1},
		{Op: isa.OpBne, Rs1: 2, Rs2: 0, Imm: 3},
	}
	var a Accumulator
	for _, inst := range insts {
		a.AddSignals(isa.Decode(inst))
	}
	if Of(insts) != a.Value() {
		t.Fatal("Of disagrees with manual accumulation")
	}
}

func TestOfDistinguishesSequences(t *testing.T) {
	a := []isa.Instruction{{Op: isa.OpAddi, Rd: 1, Imm: 5}}
	b := []isa.Instruction{{Op: isa.OpAddi, Rd: 1, Imm: 6}}
	if Of(a) == Of(b) {
		t.Fatal("different immediates must produce different signatures")
	}
}

func TestParity(t *testing.T) {
	if Parity(0) || !Parity(1) || Parity(0x3) || !Parity(0x7) {
		t.Fatal("parity basics wrong")
	}
	if err := quick.Check(func(v uint64, bit uint8) bool {
		return Parity(v) != Parity(v^(1<<uint(bit%64)))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestControlStateOneHot(t *testing.T) {
	valid := []ControlState{CtrlNone, CtrlChkRetry, CtrlChk, CtrlMiss}
	for _, s := range valid {
		if !s.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	// Every non-one-hot pattern is invalid (a detectable control-bit fault).
	for v := 0; v < 16; v++ {
		s := ControlState(v)
		oneHot := v == 1 || v == 2 || v == 4 || v == 8
		if s.Valid() != oneHot {
			t.Errorf("state %#04b valid=%v want %v", v, s.Valid(), oneHot)
		}
	}
}

func TestControlStateSingleBitFlipsAreDetectable(t *testing.T) {
	// A single-event upset on the 4-bit control state always yields an
	// invalid (zero- or two-hot) pattern.
	for _, s := range []ControlState{CtrlNone, CtrlChkRetry, CtrlChk, CtrlMiss} {
		for bit := 0; bit < 4; bit++ {
			flipped := s ^ (1 << uint(bit))
			if flipped.Valid() {
				t.Errorf("flip bit %d of %v produced valid state %v", bit, s, flipped)
			}
		}
	}
}

func TestControlStatePredicates(t *testing.T) {
	if !CtrlChk.Checked() || !CtrlChkRetry.Checked() || CtrlMiss.Checked() || CtrlNone.Checked() {
		t.Error("Checked predicate wrong")
	}
	if !CtrlChkRetry.Retry() || CtrlChk.Retry() {
		t.Error("Retry predicate wrong")
	}
	if !CtrlMiss.Miss() || CtrlChk.Miss() {
		t.Error("Miss predicate wrong")
	}
}

func TestControlStateString(t *testing.T) {
	if CtrlNone.String() != "none" || CtrlMiss.String() != "miss" {
		t.Error("state names wrong")
	}
	if ControlState(0b0011).String() == "" {
		t.Error("invalid states need a rendering")
	}
}
