// Package sig implements ITR trace-signature generation (paper Section 2.1)
// and the protected control-state encodings of Section 2.4.
//
// A signature is the bitwise XOR of the packed 64-bit decode-signal vectors
// of every instruction in a trace. XOR combining guarantees that any single
// faulty signal bit anywhere in the trace changes the signature; only an even
// number of faults in the same signal of different instructions can cancel —
// outside the single-event-upset model the paper (and this reproduction)
// assumes.
package sig

import (
	"fmt"
	"math/bits"

	"itr/internal/isa"
)

// Accumulator combines decode-signal words into a trace signature. The zero
// value is an empty accumulator ready for use.
type Accumulator struct {
	sig uint64
	n   int
}

// Add folds one instruction's packed decode-signal word into the signature.
func (a *Accumulator) Add(word uint64) {
	a.sig ^= word
	a.n++
}

// AddSignals folds one instruction's decode signals into the signature.
func (a *Accumulator) AddSignals(d isa.DecodeSignals) { a.Add(d.Pack()) }

// Len returns the number of instructions accumulated since the last Reset.
func (a *Accumulator) Len() int { return a.n }

// Full reports whether the trace has reached the maximum trace length and
// must terminate (paper: limit of 16 instructions).
func (a *Accumulator) Full() bool { return a.n >= isa.MaxTraceLen }

// Value returns the current signature.
func (a *Accumulator) Value() uint64 { return a.sig }

// Reset clears the accumulator in preparation for the next trace.
func (a *Accumulator) Reset() { a.sig, a.n = 0, 0 }

// Of computes the signature of a complete instruction sequence.
func Of(insts []isa.Instruction) uint64 {
	var a Accumulator
	for _, inst := range insts {
		a.AddSignals(isa.Decode(inst))
	}
	return a.Value()
}

// OfWords computes the signature of a sequence of packed signal words — the
// decode-memoization fast path for callers holding a program.DecodeTable
// slice of an already-decoded trace.
func OfWords(words []uint64) uint64 {
	var s uint64
	for _, w := range words {
		s ^= w
	}
	return s
}

// Parity returns the even-parity bit of a signature, used to parity-protect
// ITR cache lines (Section 2.4): true when v has an odd number of set bits.
func Parity(v uint64) bool { return bits.OnesCount64(v)%2 == 1 }

// ControlState is the one-hot-protected encoding of the ITR ROB control bits
// {chk, miss, retry} (Section 2.4). Exactly one of the four architected bits
// must be set; any other pattern indicates a fault on the control bits
// themselves.
type ControlState uint8

// Architected one-hot control states (Section 2.4).
const (
	// CtrlNone: neither chk nor miss set yet - ITR cache access pending.
	CtrlNone ControlState = 0b0001
	// CtrlChkRetry: checked, mismatch observed - retry required.
	CtrlChkRetry ControlState = 0b0010
	// CtrlChk: checked, signatures matched.
	CtrlChk ControlState = 0b0100
	// CtrlMiss: ITR cache miss - signature must be installed at commit.
	CtrlMiss ControlState = 0b1000
)

// Valid reports whether s is one of the four architected one-hot states.
func (s ControlState) Valid() bool {
	switch s {
	case CtrlNone, CtrlChkRetry, CtrlChk, CtrlMiss:
		return true
	}
	return false
}

// Checked reports whether the trace has completed its ITR cache check.
func (s ControlState) Checked() bool { return s == CtrlChk || s == CtrlChkRetry }

// Retry reports whether a signature mismatch requires a flush-and-retry.
func (s ControlState) Retry() bool { return s == CtrlChkRetry }

// Miss reports whether the trace missed in the ITR cache.
func (s ControlState) Miss() bool { return s == CtrlMiss }

func (s ControlState) String() string {
	switch s {
	case CtrlNone:
		return "none"
	case CtrlChkRetry:
		return "chk+retry"
	case CtrlChk:
		return "chk"
	case CtrlMiss:
		return "miss"
	default:
		return fmt.Sprintf("invalid(%#04b)", uint8(s))
	}
}
