package fault

import (
	"reflect"
	"testing"

	"itr/internal/pipeline"
)

// TestCampaignSnapshotFastPathBitIdentical is the tentpole's correctness
// bar: for a fixed seed, the snapshot fast-forward campaign must produce
// Detail slices bit-identical to the cold path — same categories, same
// observe- and verify-run facts, for every injection — so the Figure 8
// percentages are unchanged by the optimization.
func TestCampaignSnapshotFastPathBitIdentical(t *testing.T) {
	variants := []struct {
		name     string
		interval int64
		ckpt     bool
	}{
		{"default-interval", 0, false},
		{"fine-interval", 2_000, false},
		{"checkpoint-verify", 2_000, true}, // verify runs must fall back cold
	}
	p := testProgram(t)
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			base := DefaultCampaignConfig()
			base.Faults = 50
			base.Workers = 4
			base.Experiment = quickConfig()
			base.Experiment.Checkpoint = v.ckpt
			// Pin the exact (run-to-completion) path: this test is about
			// snapshot-resume bit-identity, and only that path promises
			// byte-identical Detail payloads. The decided-outcome fast
			// path's classification identity has its own property test.
			base.Experiment.Exact = true

			cold := base
			cold.Experiment.SnapshotInterval = -1
			warm := base
			warm.Experiment.SnapshotInterval = v.interval

			cres, err := RunCampaign("cold", p, cold)
			if err != nil {
				t.Fatal(err)
			}
			wres, err := RunCampaign("warm", p, warm)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(cres.Details, wres.Details) {
				for i := range cres.Details {
					if cres.Details[i] != wres.Details[i] {
						t.Fatalf("Detail %d differs:\ncold %+v\nwarm %+v",
							i, cres.Details[i], wres.Details[i])
					}
				}
				t.Fatal("Detail slices differ")
			}
			if !reflect.DeepEqual(cres.Counts, wres.Counts) {
				t.Fatalf("category counts differ:\ncold %+v\nwarm %+v", cres.Counts, wres.Counts)
			}
			if cres.Snapshots != 0 || cres.SnapshotPages != 0 {
				t.Fatalf("cold path reported snapshots: %d (%d pages)", cres.Snapshots, cres.SnapshotPages)
			}
			if wres.Snapshots == 0 || wres.SnapshotPages == 0 {
				t.Fatalf("fast path took no snapshots: %d (%d pages)", wres.Snapshots, wres.SnapshotPages)
			}
			// COW sharing: the series references at least as many pages as
			// it distinctly holds, and every retained snapshot past the
			// first shares its predecessor's unchanged pages.
			if wres.SnapshotOwnedPages == 0 || wres.SnapshotOwnedPages > wres.SnapshotPages {
				t.Fatalf("snapshot footprint inconsistent: %d referenced, %d distinct",
					wres.SnapshotPages, wres.SnapshotOwnedPages)
			}
			if wres.Snapshots > 1 && wres.SnapshotOwnedPages == wres.SnapshotPages {
				t.Fatalf("%d snapshots share no pages (%d referenced, %d distinct)",
					wres.Snapshots, wres.SnapshotPages, wres.SnapshotOwnedPages)
			}
		})
	}
}

// TestGoldenStreamMatchesLiveGolden: a cursor over the precomputed stream
// reaches the same divergence verdicts as the live lockstep golden model.
func TestGoldenStreamMatchesLiveGolden(t *testing.T) {
	p := testProgram(t)
	s := NewGoldenStream(p)

	// Replay the stream's own entries through both observers: no divergence.
	g := newGolden(p)
	cur := s.cursor(0)
	view := s.ensure(499)
	for _, e := range view[:500] {
		g.observe(e.pc, &e.out)
		cur.observe(e.pc, &e.out)
	}
	if g.diverged || cur.diverged {
		t.Fatalf("fault-free replay diverged: live=%v cursor=%v", g.diverged, cur.diverged)
	}

	// A wrong PC diverges both, stickily.
	g2 := newGolden(p)
	cur2 := s.cursor(0)
	e := view[0]
	g2.observe(e.pc+1, &e.out)
	cur2.observe(e.pc+1, &e.out)
	if !g2.diverged || !cur2.diverged {
		t.Fatalf("PC mismatch not flagged: live=%v cursor=%v", g2.diverged, cur2.diverged)
	}

	// A corrupted outcome diverges the cursor mid-stream.
	cur3 := s.cursor(100)
	bad := view[100].out
	bad.NextPC ^= 1
	cur3.observe(view[100].pc, &bad)
	if !cur3.diverged {
		t.Fatal("outcome mismatch not flagged by seeked cursor")
	}
}

// TestNearestSnapshotIdx pins the strictly-before selection rule: the chosen
// snapshot must predate the injected decode event (equality is too late —
// that decode already happened in the snapshot), or the run starts cold.
func TestNearestSnapshotIdx(t *testing.T) {
	snaps := []*pipeline.Snapshot{
		{DecodeEvents: 100},
		{DecodeEvents: 200},
		{DecodeEvents: 300},
	}
	cases := []struct {
		decodeIndex int64
		want        int
	}{
		{50, -1},  // before every snapshot: cold
		{100, -1}, // equality is too late
		{101, 0},  // just past the first
		{200, 0},  // equality with the second: first still applies
		{250, 1},  //
		{300, 1},  // equality with the last
		{9999, 2}, // far past the last
	}
	for _, c := range cases {
		if got := nearestSnapshotIdx(snaps, c.decodeIndex); got != c.want {
			t.Errorf("nearestSnapshotIdx(%d) = %d, want %d", c.decodeIndex, got, c.want)
		}
	}
	if got := nearestSnapshotIdx(nil, 10); got != -1 {
		t.Fatalf("empty slice: got %d, want -1", got)
	}
}
