package fault

import (
	"reflect"
	"testing"

	"itr/internal/core"
	"itr/internal/isa"
	"itr/internal/pipeline"
)

// normalizeDecided zeroes the Detail facts the decided-outcome engine is
// documented to leave unsettled on early exit because no classification or
// recovery verdict reads them: Halted (a run that stops mid-window never
// sees a later halt) and FaultyResident on detected runs (the sweep happens
// at exit, not window end, and classify ignores it once Detected).
func normalizeDecided(d Detail) Detail {
	d.Halted = false
	if d.Detected {
		d.FaultyResident = false
	}
	return d
}

// TestDecidedClassificationMatchesExact is the decided-outcome engine's
// correctness bar: for fixed seeds, every injection's classification — and
// every fact classification or recovery accounting reads — must be identical
// between the fast path and the exact run-to-completion path, across all
// three detector backends and several worker widths.
func TestDecidedClassificationMatchesExact(t *testing.T) {
	p := testProgram(t)
	for _, backend := range []string{"itr", "reptfd", "dme"} {
		for _, workers := range []int{1, 4} {
			for _, seed := range []uint64{0x17b, 0xdead} {
				base := DefaultCampaignConfig()
				base.Faults = 40
				base.Seed = seed
				base.Workers = workers
				base.Experiment = quickConfig()
				base.Experiment.Pipeline.Detector = backend

				exact := base
				exact.Experiment.Exact = true
				fast := base

				eres, err := RunCampaign("exact", p, exact)
				if err != nil {
					t.Fatal(err)
				}
				fres, err := RunCampaign("fast", p, fast)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fres.Counts, eres.Counts) {
					t.Errorf("%s/w%d/seed %#x: counts %v != exact %v",
						backend, workers, seed, fres.Counts, eres.Counts)
				}
				if fres.RecoveryAttempted != eres.RecoveryAttempted ||
					fres.RecoveryConfirmed != eres.RecoveryConfirmed {
					t.Errorf("%s/w%d/seed %#x: recovery %d/%d != exact %d/%d",
						backend, workers, seed,
						fres.RecoveryConfirmed, fres.RecoveryAttempted,
						eres.RecoveryConfirmed, eres.RecoveryAttempted)
				}
				for i := range eres.Details {
					got := normalizeDecided(fres.Details[i])
					want := normalizeDecided(eres.Details[i])
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/w%d/seed %#x: injection %d\n fast  %+v\n exact %+v",
							backend, workers, seed, i, got, want)
					}
				}
				if eres.Budget.CyclesSaved != 0 {
					t.Errorf("%s/w%d/seed %#x: exact path reported %d cycles saved",
						backend, workers, seed, eres.Budget.CyclesSaved)
				}
			}
		}
	}
}

// TestDecidedBudgetAccounting checks that the fast path actually decides
// runs early on a workload dominated by quickly-settling faults, and that
// the budget's class breakdown is consistent with its totals.
func TestDecidedBudgetAccounting(t *testing.T) {
	p := testProgram(t)
	cfg := DefaultCampaignConfig()
	cfg.Faults = 40
	cfg.Experiment = quickConfig()
	var prog Progress
	cfg.Progress = &prog
	res, err := RunCampaign("budget", p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Budget
	if b.DecidedEarly == 0 {
		t.Error("no injection decided early; the fast path did not engage")
	}
	if b.CyclesSaved <= 0 || b.CyclesSimulated <= 0 {
		t.Errorf("degenerate budget: simulated %d, saved %d", b.CyclesSimulated, b.CyclesSaved)
	}
	var sim, saved int64
	for _, cb := range b.ByClass {
		sim += cb.Simulated
		saved += cb.Saved
	}
	if sim != b.CyclesSimulated || saved != b.CyclesSaved {
		t.Errorf("class breakdown (%d, %d) disagrees with totals (%d, %d)",
			sim, saved, b.CyclesSimulated, b.CyclesSaved)
	}
	if prog.CyclesSimulated.Load() != b.CyclesSimulated || prog.CyclesSaved.Load() != b.CyclesSaved {
		t.Errorf("progress counters (%d, %d) disagree with budget (%d, %d)",
			prog.CyclesSimulated.Load(), prog.CyclesSaved.Load(),
			b.CyclesSimulated, b.CyclesSaved)
	}
}

// TestConvergenceProof exercises convergedWithGolden directly: a fault-free
// machine must prove convergence at any commit boundary, and any single
// divergence in registers, PC, or memory — including on a page the golden
// fork never touched — must defeat the proof.
func TestConvergenceProof(t *testing.T) {
	p := testProgram(t)
	cfg := quickConfig()
	cpu, err := pipeline.New(p, cfg.pipelineConfig(core.ModeObserve))
	if err != nil {
		t.Fatal(err)
	}
	cpu.Run(2000)
	snap := cpu.Snapshot()
	stream := NewGoldenStream(p)
	cpu.Run(2000)
	if cpu.CommittedInsts() <= snap.Committed {
		t.Fatal("machine made no progress past the snapshot")
	}
	if !convergedWithGolden(cpu, stream, snap) {
		t.Fatal("fault-free machine failed its own convergence proof")
	}

	arch := cpu.Committed()
	arch.R[5] ^= 1
	if convergedWithGolden(cpu, stream, snap) {
		t.Error("proof survived a corrupted integer register")
	}
	arch.R[5] ^= 1

	pc := arch.PC
	arch.PC ^= 4
	if convergedWithGolden(cpu, stream, snap) {
		t.Error("proof survived a corrupted PC")
	}
	arch.PC = pc

	// A store to a page neither execution dirtied: the machine-side memory
	// gains a page the golden fork lacks, which the one-sided page compare
	// must catch.
	mem, ok := arch.Mem.(*isa.Memory)
	if !ok {
		t.Fatal("committed state is not backed by isa.Memory")
	}
	const farAddr = 0x40_0000
	mem.Store(farAddr, 8, 0xbad)
	if convergedWithGolden(cpu, stream, snap) {
		t.Error("proof survived a corrupted memory word")
	}
	mem.Store(farAddr, 8, 0)
	if !convergedWithGolden(cpu, stream, snap) {
		t.Error("proof failed after corruption was reverted to zero")
	}
}

// TestMemoryEqual pins the generation-tag page diff underneath the
// convergence proof: snapshot-shared pages compare by pointer, diverged
// copies by content, and pages present on one side only compare against
// zeros (copy-on-write never materializes untouched pages).
func TestMemoryEqual(t *testing.T) {
	a := isa.NewMemory()
	a.Store(0x1000, 8, 7)
	a.Store(0x9000, 8, 9)

	b := isa.NewMemory()
	b.CopyFrom(a)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("copy-on-write clone not equal to source")
	}

	// Same content written independently: compares by data, not pointer.
	c := isa.NewMemory()
	c.Store(0x1000, 8, 7)
	c.Store(0x9000, 8, 9)
	if !a.Equal(c) || !c.Equal(a) {
		t.Fatal("identical contents in distinct pages not equal")
	}

	// Divergent word.
	c.Store(0x9000, 8, 10)
	if a.Equal(c) || c.Equal(a) {
		t.Fatal("divergent contents reported equal")
	}

	// One-sided page holding only zeros is equal to an absent page...
	d := isa.NewMemory()
	d.CopyFrom(a)
	d.Store(0x20_000, 8, 1)
	d.Store(0x20_000, 8, 0)
	if !a.Equal(d) || !d.Equal(a) {
		t.Fatal("all-zero one-sided page broke equality")
	}
	// ...and a nonzero one-sided page is not.
	d.Store(0x20_000, 8, 2)
	if a.Equal(d) || d.Equal(a) {
		t.Fatal("nonzero one-sided page reported equal")
	}
}
