package fault

import (
	"fmt"

	"itr/internal/core"
	"itr/internal/isa"
	"itr/internal/pipeline"
	"itr/internal/program"
	"itr/internal/stats"
)

// isaRegID aliases the register type for brevity in the hook.
func isaRegID(v uint8) isa.RegID { return isa.RegID(v) }

// RenameInjection names a single-event upset on the rename-map index logic:
// XOR the chosen index of decode event DecodeIndex with Mask.
type RenameInjection struct {
	DecodeIndex int64
	Operand     int   // 0 = src1, 1 = src2, 2 = dst
	Mask        uint8 // non-zero, 5 bits
}

// RenameCampaignResult quantifies the rename-protection extension: how many
// rename-unit faults the frontend signature misses, and how many the rename
// signature detects and recovers.
type RenameCampaignResult struct {
	Total int
	// Without the extension (frontend ITR only):
	SDCWithoutExtension int // architectural corruption, undetected
	MaskedWithout       int
	FrontendDetected    int // should stay 0: the signals are uncorrupted
	// With the extension:
	DetectedWithExtension  int
	RecoveredWithExtension int
	SDCWithExtension       int // corruption that still slipped through
}

// Pct helpers.
func (r RenameCampaignResult) pct(n int) float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(r.Total)
}

// SDCWithoutPct returns the silent-corruption rate with only frontend ITR.
func (r RenameCampaignResult) SDCWithoutPct() float64 { return r.pct(r.SDCWithoutExtension) }

// DetectedPct returns the detection rate with the rename extension.
func (r RenameCampaignResult) DetectedPct() float64 { return r.pct(r.DetectedWithExtension) }

// renameHook builds the one-shot index corruption.
func renameHook(inj RenameInjection) pipeline.RenameFaultHook {
	done := false
	return func(i int64, ri pipeline.RenameIndexes) pipeline.RenameIndexes {
		if done || i != inj.DecodeIndex {
			return ri
		}
		done = true
		m := inj.Mask & 0x1f
		if m == 0 {
			m = 1
		}
		switch inj.Operand % 3 {
		case 0:
			ri.Src1 ^= isaRegID(m)
		case 1:
			ri.Src2 ^= isaRegID(m)
		default:
			ri.Dst ^= isaRegID(m)
		}
		return ri
	}
}

// RunRenameFault evaluates one rename-index upset with and without the
// rename-protection extension.
func RunRenameFault(prog *program.Program, cfg Config, inj RenameInjection) (withoutSDC, frontendDetected, detected, recovered, withSDC bool, err error) {
	// Pass 1: frontend ITR only, observe mode — the paper's baseline.
	cpu, err := pipeline.New(prog, cfg.pipelineConfig(core.ModeObserve))
	if err != nil {
		return false, false, false, false, false, fmt.Errorf("rename fault baseline: %w", err)
	}
	g := newGolden(prog)
	cpu.SetCommitObserver(g.observe)
	cpu.SetRenameFaultHook(renameHook(inj))
	cpu.Run(cfg.WindowCycles)
	withoutSDC = g.diverged
	frontendDetected = len(cpu.Detector().Detections()) > 0

	// Pass 2: rename extension attached, full protocol.
	pcfg := cfg.pipelineConfig(core.ModeFull)
	pcfg.RenameITREnabled = true
	vcpu, err := pipeline.New(prog, pcfg)
	if err != nil {
		return false, false, false, false, false, fmt.Errorf("rename fault extension: %w", err)
	}
	vg := newGolden(prog)
	vcpu.SetCommitObserver(vg.observe)
	vcpu.SetRenameFaultHook(renameHook(inj))
	vcpu.Run(cfg.WindowCycles)
	rst := vcpu.RenameChecker().Stats()
	detected = rst.Mismatches > 0
	recovered = rst.Recoveries > 0
	withSDC = vg.diverged
	return withoutSDC, frontendDetected, detected, recovered, withSDC, nil
}

// RunRenameCampaign injects n randomized rename-index faults.
func RunRenameCampaign(prog *program.Program, cfg Config, n int, seed uint64) (RenameCampaignResult, error) {
	var res RenameCampaignResult
	if n <= 0 {
		return res, fmt.Errorf("rename campaign: non-positive count %d", n)
	}
	// Profile the decode-event space (as the main campaign does). The
	// fault-free profiling trajectory is mode-independent.
	prof, err := pipeline.New(prog, cfg.pipelineConfig(cfg.Pipeline.ITRMode))
	if err != nil {
		return res, err
	}
	prof.Run(cfg.WindowCycles)
	space := prof.DecodeEvents()
	if space < 100 {
		return res, fmt.Errorf("rename campaign: window too small (%d decode events)", space)
	}

	rng := stats.NewRNG(seed)
	lo, hi := space/20, space/2
	for i := 0; i < n; i++ {
		inj := RenameInjection{
			DecodeIndex: lo + int64(rng.Uint64n(uint64(hi-lo))),
			Operand:     rng.Intn(3),
			Mask:        uint8(1 + rng.Intn(31)),
		}
		withoutSDC, fed, det, rec, withSDC, err := RunRenameFault(prog, cfg, inj)
		if err != nil {
			return res, err
		}
		res.Total++
		if withoutSDC {
			res.SDCWithoutExtension++
		} else {
			res.MaskedWithout++
		}
		if fed {
			res.FrontendDetected++
		}
		if det {
			res.DetectedWithExtension++
		}
		if rec {
			res.RecoveredWithExtension++
		}
		if withSDC {
			res.SDCWithExtension++
		}
	}
	return res, nil
}
