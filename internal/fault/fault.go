// Package fault implements the paper's Section 4 fault-injection
// methodology: random single-bit flips on the decode signals of one dynamic
// instruction, a golden (fault-free) simulator run in lockstep with the
// faulty simulator, and classification of each injection into the ten
// outcome categories of Figure 8.
//
// Each injection is evaluated with two pipeline runs:
//
//   - an *observe* run (core.ModeObserve): ITR records detections but never
//     recovers, exposing the fault's natural outcome — silent data
//     corruption (SDC), deadlock (wdog), or masked — alongside whether and
//     how ITR would have detected it;
//   - an optional *verify* run (core.ModeFull): the complete protocol, used
//     to confirm that recoverable detections actually recover (flush and
//     restart) and unrecoverable ones raise machine checks.
package fault

import (
	"fmt"
	"sync"

	"itr/internal/cache"
	"itr/internal/core"
	"itr/internal/detect"
	"itr/internal/isa"
	"itr/internal/pipeline"
	"itr/internal/program"
	"itr/internal/sig"
)

// Category is one Figure 8 outcome class.
type Category string

// The ten Figure 8 categories, in the paper's legend order.
const (
	ITRMask    Category = "ITR+Mask"    // detected by ITR; fault architecturally masked
	ITRSDCD    Category = "ITR+SDC+D"   // detected; state corrupted; detection only
	ITRSDCR    Category = "ITR+SDC+R"   // detected; would have been SDC; recoverable
	ITRWdogR   Category = "ITR+wdog+R"  // detected; would have deadlocked; recovered
	MayITRMask Category = "MayITR+Mask" // undetected in window; faulty signature still cached
	MayITRSDC  Category = "MayITR+SDC"
	SpcSDC     Category = "spc+SDC" // caught only by the sequential-PC check
	UndetMask  Category = "Undet+Mask"
	UndetWdog  Category = "Undet+wdog"
	UndetSDC   Category = "Undet+SDC"
)

// Categories lists all outcome classes in the paper's legend order.
func Categories() []Category {
	return []Category{
		UndetSDC, UndetWdog, UndetMask, SpcSDC,
		MayITRSDC, MayITRMask,
		ITRWdogR, ITRSDCR, ITRSDCD, ITRMask,
	}
}

// Injection names a single-event upset: flip Bit of the packed decode-signal
// word of decode event DecodeIndex (Table 2 fault model).
type Injection struct {
	DecodeIndex int64
	Bit         int
}

// Field returns the Table 2 field the injection lands in.
func (in Injection) Field() string { return isa.SignalField(in.Bit) }

// Detail carries everything observed for one injection.
type Detail struct {
	Injection Injection
	Category  Category

	// Observe-run facts.
	Detected       bool
	Recoverable    bool // the mismatching access was the faulty instance
	NaturalSDC     bool
	Deadlock       bool
	SpcFired       bool
	Halted         bool
	FaultyResident bool // faulty signature still in ITR cache at window end

	// Detection latency (observe run): machine time from the injection's
	// decode event to the backend's first detection, in pipeline cycles
	// and committed instructions (the trace length the fault survived).
	// Both are -1 when the fault went undetected.
	LatencyCycles int64
	LatencyInsts  int64

	// Verify-run facts (zero value when verification is disabled).
	Verified        bool
	RecoveredInFull bool // full protocol recovered (retry matched)
	MachineCheck    bool // full protocol aborted the program
	SDCUnderITR     bool // state still corrupted despite full protocol
	// CheckpointRecovered: the verify run converted a machine check into a
	// coarse-grain checkpoint rollback and the reference stream stayed
	// clean afterwards (Section 2.3 extension).
	CheckpointRecovered bool
}

// SigOracle computes fault-free trace signatures by static walk, memoizing
// per start PC. It answers "which side of a mismatch was faulty". The walk
// reads the program's memoized DecodeTable, so each uncached signature costs
// one XOR per trace instruction.
type SigOracle struct {
	tab  *program.DecodeTable
	mu   sync.Mutex
	memo map[uint64]uint64
}

// NewSigOracle builds an oracle for prog.
func NewSigOracle(prog *program.Program) *SigOracle {
	return &SigOracle{tab: prog.DecodeTable(), memo: make(map[uint64]uint64)}
}

// TrueSig returns the fault-free signature of the static trace starting at
// pc, replicating the trace-formation rule (terminate on branch or at 16).
func (o *SigOracle) TrueSig(pc uint64) uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if v, ok := o.memo[pc]; ok {
		return v
	}
	var acc sig.Accumulator
	cur := pc
	for {
		w := o.tab.Word(cur)
		acc.Add(w)
		if isa.WordIsBranching(w) || acc.Full() || isa.WordOpcode(w) == isa.OpHalt {
			break
		}
		cur++
	}
	o.memo[pc] = acc.Value()
	return acc.Value()
}

// golden is the lockstep fault-free reference execution attached to a
// pipeline's commit stream. It supports snapshot/restore so checkpointed
// pipelines can rewind the reference alongside the machine.
type golden struct {
	st       *isa.ArchState
	mem      *isa.Memory
	prog     *program.Program
	tab      *program.DecodeTable
	diverged bool

	snapValid    bool
	snapR        [isa.NumRegs]uint64
	snapF        [isa.NumRegs]uint64
	snapPC       uint64
	snapMem      *isa.Memory
	snapDiverged bool
}

func newGolden(prog *program.Program) *golden {
	mem := isa.NewMemory()
	g := &golden{st: &isa.ArchState{Mem: mem}, mem: mem, prog: prog, tab: prog.DecodeTable()}
	g.st.PC = prog.Entry
	return g
}

// checkpoint mirrors the pipeline's checkpoint lifecycle: snapshot the
// reference on take, restore it on rollback. Both sides ride the memory's
// copy-on-write machinery — capture shares pages by reference and rollback
// reverts only pages the reference dirtied since — so checkpointed verify
// runs no longer deep-copy the whole reference footprint per window.
func (g *golden) checkpoint(taken bool) {
	if taken {
		g.snapValid = true
		g.snapR = g.st.R
		g.snapF = g.st.F
		g.snapPC = g.st.PC
		g.snapMem = g.mem.Snapshot()
		g.snapDiverged = g.diverged
		return
	}
	if !g.snapValid {
		return
	}
	g.st.R = g.snapR
	g.st.F = g.snapF
	g.st.PC = g.snapPC
	g.mem.CopyFrom(g.snapMem)
	g.diverged = g.snapDiverged
}

// observe compares one committed instruction against the reference.
func (g *golden) observe(pc uint64, o *isa.Outcome) {
	if g.diverged {
		return
	}
	if pc != g.st.PC {
		g.diverged = true
		return
	}
	var want isa.Outcome
	g.st.ExecInto(&want, g.tab.Signals(pc), pc)
	g.st.ApplyRef(&want)
	if !o.SameArchEffect(&want) {
		g.diverged = true
	}
}

// DefaultSnapshotInterval is the decode-event spacing of pilot snapshots
// when Config.SnapshotInterval is zero. Smaller intervals skip more of the
// fault-free prefix per injection at the cost of more pilot snapshots held
// in memory. Captures are copy-on-write (pages shared, machine state deep),
// so the spacing is tuned for the resume gap — an injection re-simulates
// half the interval on average before its fault fires — not capture cost.
const DefaultSnapshotInterval = 2048

// Config parameterizes a single-injection experiment.
type Config struct {
	ITR          core.Config
	Pipeline     pipeline.Config // ITR fields are overridden per run
	WindowCycles int64           // observation window (paper: 1M cycles)
	Verify       bool            // run the full-protocol confirmation pass
	// Checkpoint enables the Section 2.3 coarse-grain checkpointing
	// extension in the verify run, upgrading detection-only machine checks
	// into rollbacks when the corruption postdates the last checkpoint.
	Checkpoint bool
	// SnapshotInterval controls the campaign's snapshot fast-forward: the
	// fault-free pilot drops a resumable machine snapshot every
	// SnapshotInterval decode events, and each injection resumes from the
	// nearest snapshot before its fault point instead of re-simulating the
	// shared prefix. 0 means DefaultSnapshotInterval; negative disables the
	// fast path entirely (every run starts cold). Results are bit-identical
	// either way. EffectiveSnapshotInterval resolves the semantics.
	SnapshotInterval int64
	// Exact disables the decided-outcome engine, forcing every injection
	// run to simulate its full observation window — the byte-identical
	// reference path. The default (false) lets snapshot-resumed runs stop
	// as soon as their classification is settled; their Detail payloads may
	// then differ in category-irrelevant facts (Halted, and FaultyResident
	// on detected runs), but categories, counts, and recovery verdicts are
	// identical — the invariant the classification-identity tests pin.
	Exact bool
}

// EffectiveSnapshotInterval resolves the SnapshotInterval convention in one
// place (flag help, campaign, and manifest all defer to it): zero maps to
// DefaultSnapshotInterval, a negative value disables the fast path and
// resolves to 0, and a positive value is used as-is.
func (c Config) EffectiveSnapshotInterval() int64 {
	switch {
	case c.SnapshotInterval == 0:
		return DefaultSnapshotInterval
	case c.SnapshotInterval < 0:
		return 0
	default:
		return c.SnapshotInterval
	}
}

// pipelineConfig returns the study's pipeline configuration with the
// detection backend enabled in the given mode. Every machine the fault
// studies build goes through here — observe and verify runs, campaign
// pilots, profiling passes — so the backend selection riding in
// Config.Pipeline (Detector, DetectorOpts) reaches all of them identically,
// and the ITR-field overriding lives in exactly one place.
func (c Config) pipelineConfig(mode core.Mode) pipeline.Config {
	pcfg := c.Pipeline
	pcfg.ITREnabled = true
	pcfg.ITR = c.ITR
	pcfg.ITRMode = mode
	return pcfg
}

// DefaultConfig mirrors the paper's Section 4 setup (two-way 1024-signature
// ITR cache) with a window scaled for quick runs; raise WindowCycles to 1M
// for paper-fidelity campaigns.
func DefaultConfig() Config {
	return Config{
		ITR:          core.DefaultConfig(),
		Pipeline:     pipeline.DefaultConfig(),
		WindowCycles: 250_000,
		Verify:       true,
	}
}

// RunOne performs one injection experiment and classifies it, simulating
// from cycle 0 (the cold path; campaigns use the snapshot fast path via
// RunCampaign).
func RunOne(prog *program.Program, oracle *SigOracle, cfg Config, inj Injection) (Detail, error) {
	return runOne(prog, oracle, cfg, inj, nil, nil, nil)
}

// runArena holds one campaign worker's reusable machines. Building a
// pipeline allocates every component a run touches — slot columns, predictor
// tables, ITR cache and ROB, fetch queue — so a campaign that built two
// fresh machines per injection spent a visible slice of its time and almost
// all of its allocations on setup that Restore makes redundant: restoring a
// snapshot (a pilot resume point, or the machine's own cycle-0 image for a
// cold start) rewrites the complete mutable state in place, bit-identically.
// The arena keeps one observe-mode and one verify-mode CPU per worker and
// recycles them across every injection the worker runs.
//
// An arena is single-threaded (each worker owns one); the machines it hands
// out carry whatever hooks and observers the previous run installed, so
// runOne (re)sets every hook it depends on at the start of each run.
type runArena struct {
	prog *program.Program
	cfg  Config

	observe  *pipeline.CPU
	observe0 *pipeline.Snapshot // observe's pristine cycle-0 image
	verify   *pipeline.CPU
	verify0  *pipeline.Snapshot
}

// newRunArena returns an empty arena for one worker; machines are built on
// first use so a campaign whose injections never verify (or never run cold)
// never pays for what it doesn't touch.
func newRunArena(prog *program.Program, cfg Config) *runArena {
	return &runArena{prog: prog, cfg: cfg}
}

// observeCPU returns the reusable observe-mode machine, reset to snap (or to
// its cycle-0 image when snap is nil).
func (a *runArena) observeCPU(snap *pipeline.Snapshot) (*pipeline.CPU, error) {
	if a.observe == nil {
		cpu, err := pipeline.New(a.prog, a.cfg.pipelineConfig(core.ModeObserve))
		if err != nil {
			return nil, err
		}
		a.observe = cpu
		a.observe0 = cpu.Snapshot()
	}
	if snap == nil {
		snap = a.observe0
	}
	if err := a.observe.Restore(snap); err != nil {
		return nil, err
	}
	return a.observe, nil
}

// verifyCPU is observeCPU for the full-protocol machine (ModeFull, plus the
// campaign's checkpointing setting).
func (a *runArena) verifyCPU(snap *pipeline.Snapshot) (*pipeline.CPU, error) {
	if a.verify == nil {
		pcfg := a.cfg.pipelineConfig(core.ModeFull)
		pcfg.CheckpointEnabled = a.cfg.Checkpoint
		cpu, err := pipeline.New(a.prog, pcfg)
		if err != nil {
			return nil, err
		}
		a.verify = cpu
		a.verify0 = cpu.Snapshot()
	}
	if snap == nil {
		snap = a.verify0
	}
	if err := a.verify.Restore(snap); err != nil {
		return nil, err
	}
	return a.verify, nil
}

// runOne performs one injection experiment and classifies it. When rc is
// non-nil and holds a snapshot taken before the injection's decode event,
// both the observe and verify runs fast-forward: the machine resumes from
// the snapshot and the golden reference is a cursor over the shared
// precomputed commit log. The resumed trajectory is bit-identical to the
// cold one — the snapshot captures the complete machine state and the fault
// fires strictly after it.
//
// Snapshot-resumed runs additionally use the decided-outcome engine (see
// decide.go) unless cfg.Exact is set: the observe run stops as soon as the
// classification is settled, and the verify run forks from a pre-fault
// capture of the observe machine instead of re-simulating the detect-free
// prefix. bud, when non-nil, receives the run's simulated/saved cycle
// accounting.
func runOne(prog *program.Program, oracle *SigOracle, cfg Config, inj Injection, rc *replayContext, ar *runArena, bud *runBudget) (Detail, error) {
	det := Detail{Injection: inj, LatencyCycles: -1, LatencyInsts: -1}
	snap := rc.nearest(inj.DecodeIndex)

	// ---- observe run: natural outcome + detection facts ----
	var cpu *pipeline.CPU
	var err error
	if ar != nil {
		cpu, err = ar.observeCPU(snap)
	} else {
		cpu, err = pipeline.New(prog, cfg.pipelineConfig(core.ModeObserve))
		if err == nil && snap != nil {
			err = cpu.Restore(snap)
		}
	}
	if err != nil {
		return det, fmt.Errorf("observe run: %w", err)
	}
	budget := cfg.WindowCycles
	var diverged func() bool
	var cur *goldenCursor
	if snap != nil {
		cur = rc.stream.cursor(int(snap.Committed))
		cpu.SetCommitObserver(cur.observe)
		diverged = func() bool { return cur.diverged }
		budget = cfg.WindowCycles - snap.Cycle
	} else {
		g := newGolden(prog)
		cpu.SetCommitObserver(g.observe)
		diverged = func() bool { return g.diverged }
	}
	fast := snap != nil && !cfg.Exact
	var injPt injectionPoint
	var presnap *pipeline.Snapshot
	var res pipeline.Result
	if fast {
		// Pre-fault leg: advance hook-free to just before the fault's
		// decode event and capture the verify run's fork point. The prefix
		// is fault-free, so splitting the run here is trajectory-invisible;
		// the capture is skipped when checkpointing makes forked verify
		// runs unsound, or when the fault lands too close to the snapshot
		// for the fork to skip anything.
		cpu.SetFaultHook(nil)
		if cfg.Verify && !cfg.Checkpoint {
			if stop := inj.DecodeIndex - preFaultMargin; stop > snap.DecodeEvents {
				pres := cpu.RunUntilDecode(budget, stop)
				if pres.Termination == pipeline.TermBudget && cpu.DecodeEvents() < inj.DecodeIndex {
					presnap = cpu.Snapshot()
				}
			}
		}
		cpu.SetFaultHook(hook(inj, cpu, &injPt))
		var early, fellBack bool
		res, early, fellBack = runDecided(cpu, cur, rc.stream, snap, oracle, inj, cfg.WindowCycles, false)
		if bud != nil {
			bud.simulated += cpu.CycleCount() - snap.Cycle
			if early {
				bud.saved += cfg.WindowCycles - cpu.CycleCount()
				bud.decidedEarly = true
			}
			if fellBack {
				bud.proofFallback = true
			}
		}
	} else {
		cpu.SetFaultHook(hook(inj, cpu, &injPt))
		res = cpu.Run(budget)
		if bud != nil {
			start := int64(0)
			if snap != nil {
				start = snap.Cycle
			}
			bud.simulated += cpu.CycleCount() - start
		}
	}

	det.NaturalSDC = diverged()
	det.Deadlock = res.Termination == pipeline.TermDeadlock
	det.Halted = res.Termination == pipeline.TermHalt
	det.SpcFired = res.SpcFired > 0

	detections := cpu.Detector().Detections()
	det.Detected = len(detections) > 0
	if stamps := cpu.DetectionStamps(); det.Detected && injPt.fired && len(stamps) > 0 {
		// Stamps were reset at the fast-forward Restore and the snapshot's
		// prefix is fault-free, so the first stamp is the first detection.
		det.LatencyCycles = stamps[0].Cycle - injPt.cycle
		det.LatencyInsts = stamps[0].Committed - injPt.committed
	}
	if det.Detected && detect.PreCommit(cfg.Pipeline.Detector) {
		// Recoverability only exists for backends that detect before the
		// faulty instance commits: a chunked-replay verdict arrives after
		// retirement, so a flush-and-retry can never help it.
		first := detections[0]
		det.Recoverable = first.AccessSig != oracle.TrueSig(first.StartPC)
	}
	// MayITR: a faulty signature resident at window end (paper footnote 1).
	// The category is ITR-specific — rival backends hold no signature cache,
	// so an undetected fault of theirs classifies as plain Undet.
	if ck := cpu.Checker(); ck != nil {
		ck.Cache().Visit(func(ln *cache.Line) {
			if ln.Value != oracle.TrueSig(ln.Key) {
				det.FaultyResident = true
			}
		})
	}

	det.Category = classify(det)

	// ---- verify run: confirm the recovery story under the full protocol ----
	if cfg.Verify && det.Detected {
		// The fast path is invalid under checkpointing: a cold verify run
		// takes coarse-grain checkpoints during the prefix, which the
		// checkpoint-free pilot snapshot cannot reproduce. Otherwise the
		// verify run resumes from the observe machine's pre-fault fork when
		// one was captured, skipping the detect-free prefix between the
		// pilot snapshot and the injection.
		vsnap := snap
		if cfg.Checkpoint {
			vsnap = nil
		} else if fast && presnap != nil {
			vsnap = presnap
		}
		var vcpu *pipeline.CPU
		if ar != nil {
			vcpu, err = ar.verifyCPU(vsnap)
		} else {
			pcfg := cfg.pipelineConfig(core.ModeFull)
			pcfg.CheckpointEnabled = cfg.Checkpoint
			vcpu, err = pipeline.New(prog, pcfg)
			if err == nil && vsnap != nil {
				err = vcpu.Restore(vsnap)
			}
		}
		if err != nil {
			return det, fmt.Errorf("verify run: %w", err)
		}
		vbudget := cfg.WindowCycles
		var vdiverged func() bool
		var vcur *goldenCursor
		// A reused machine carries the previous run's observers; every hook a
		// verify run depends on is (re)set below, and the checkpoint observer
		// is cleared unless this run installs its own.
		vcpu.SetCheckpointObserver(nil)
		if vsnap != nil {
			vcur = rc.stream.cursor(int(vsnap.Committed))
			vcpu.SetCommitObserver(vcur.observe)
			vdiverged = func() bool { return vcur.diverged }
			vbudget = cfg.WindowCycles - vsnap.Cycle
		} else {
			vg := newGolden(prog)
			vcpu.SetCommitObserver(vg.observe)
			if cfg.Checkpoint {
				vcpu.SetCheckpointObserver(vg.checkpoint)
			}
			vdiverged = func() bool { return vg.diverged }
		}
		var vinjPt injectionPoint
		vcpu.SetFaultHook(hook(inj, vcpu, &vinjPt))
		var vres pipeline.Result
		if fast && vsnap != nil {
			var vearly, vfell bool
			vres, vearly, vfell = runDecided(vcpu, vcur, rc.stream, vsnap, oracle, inj, cfg.WindowCycles, true)
			if bud != nil {
				bud.simulated += vcpu.CycleCount() - vsnap.Cycle
				if vearly {
					bud.saved += cfg.WindowCycles - vcpu.CycleCount()
				}
				if vfell {
					bud.proofFallback = true
				}
				if presnap != nil && vsnap == presnap {
					// The fork skipped re-simulating snap.Cycle→presnap.Cycle.
					bud.saved += presnap.Cycle - snap.Cycle
					bud.verifyForked = true
				}
			}
		} else {
			vres = vcpu.Run(vbudget)
			if bud != nil {
				vstart := int64(0)
				if vsnap != nil {
					vstart = vsnap.Cycle
				}
				bud.simulated += vcpu.CycleCount() - vstart
			}
		}
		det.Verified = true
		det.RecoveredInFull = vcpu.Detector().Stats().Recoveries > 0
		det.MachineCheck = vres.Termination == pipeline.TermMachineCheck
		det.SDCUnderITR = vdiverged()
		det.CheckpointRecovered = cfg.Checkpoint && vres.CheckpointRollbacks > 0 &&
			!det.MachineCheck && !vdiverged()
	}
	return det, nil
}

// injectionPoint records the machine time at which the fault hook fired:
// the cycle and committed-instruction counts when the bit was flipped.
// Detection latency is the first detection stamp minus this point.
type injectionPoint struct {
	fired     bool
	cycle     int64
	committed int64
}

// hook returns a FaultHook flipping the injection's bit exactly once,
// recording the flip's machine time in at. After the flip it uninstalls
// itself from cpu — the remainder of the window (the vast majority of its
// decode events) runs hook-free. An installed-but-fired hook would return
// every later instruction's signals unchanged, so clearing it is
// behaviorally invisible.
func hook(inj Injection, cpu *pipeline.CPU, at *injectionPoint) pipeline.FaultHook {
	return func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
		if !at.fired && i == inj.DecodeIndex {
			at.fired = true
			at.cycle = cpu.CycleCount()
			at.committed = cpu.CommittedInsts()
			cpu.SetFaultHook(nil)
			return d.FlipBit(inj.Bit)
		}
		return d
	}
}

// classify maps observed facts to the Figure 8 category.
func classify(d Detail) Category {
	mask := !d.NaturalSDC && !d.Deadlock
	switch {
	case d.Detected && d.Deadlock:
		return ITRWdogR
	case d.Detected && d.NaturalSDC && d.Recoverable:
		return ITRSDCR
	case d.Detected && d.NaturalSDC:
		return ITRSDCD
	case d.Detected:
		return ITRMask
	case d.FaultyResident && d.NaturalSDC:
		return MayITRSDC
	case d.FaultyResident:
		return MayITRMask
	case d.SpcFired && d.NaturalSDC:
		return SpcSDC
	case d.NaturalSDC:
		return UndetSDC
	case d.Deadlock:
		return UndetWdog
	case mask:
		return UndetMask
	default:
		return UndetMask
	}
}
