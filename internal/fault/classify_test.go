package fault

import "testing"

// TestClassifyAllCategories drives classify through each of the ten Figure 8
// categories and the precedence corners between them: ITR detection wins
// over everything, a resident faulty signature (MayITR) wins over the
// sequential-PC check, and spc only names a category when the fault was a
// real SDC.
func TestClassifyAllCategories(t *testing.T) {
	cases := []struct {
		name string
		d    Detail
		want Category
	}{
		// --- the ten categories, plain ---
		{"detected+deadlock", Detail{Detected: true, Deadlock: true}, ITRWdogR},
		{"detected+sdc+recoverable", Detail{Detected: true, NaturalSDC: true, Recoverable: true}, ITRSDCR},
		{"detected+sdc+unrecoverable", Detail{Detected: true, NaturalSDC: true}, ITRSDCD},
		{"detected+masked", Detail{Detected: true}, ITRMask},
		{"resident+sdc", Detail{FaultyResident: true, NaturalSDC: true}, MayITRSDC},
		{"resident+masked", Detail{FaultyResident: true}, MayITRMask},
		{"spc+sdc", Detail{SpcFired: true, NaturalSDC: true}, SpcSDC},
		{"undetected+sdc", Detail{NaturalSDC: true}, UndetSDC},
		{"undetected+deadlock", Detail{Deadlock: true}, UndetWdog},
		{"undetected+masked", Detail{}, UndetMask},

		// --- precedence corners ---
		// Detection beats a resident faulty signature: the fault was caught
		// through the ITR cache, the leftover line is incidental.
		{"detected-beats-resident",
			Detail{Detected: true, NaturalSDC: true, FaultyResident: true}, ITRSDCD},
		{"detected-beats-resident-masked",
			Detail{Detected: true, FaultyResident: true}, ITRMask},
		// Deadlock beats the SDC split once detected: ITR+wdog+R regardless
		// of whether state also corrupted before the hang.
		{"detected-deadlock-beats-sdc",
			Detail{Detected: true, Deadlock: true, NaturalSDC: true, Recoverable: true}, ITRWdogR},
		// A resident faulty signature beats the sequential-PC check: the
		// fault is still detectable on the trace's next instance.
		{"resident-beats-spc",
			Detail{FaultyResident: true, SpcFired: true, NaturalSDC: true}, MayITRSDC},
		// spc without a real SDC names no category: a masked fault that
		// tripped the PC chain is still masked.
		{"spc-without-sdc-is-masked", Detail{SpcFired: true}, UndetMask},
		{"spc-with-deadlock-is-wdog", Detail{SpcFired: true, Deadlock: true}, UndetWdog},
		// Recoverable only matters under detection+SDC.
		{"recoverable-without-detection",
			Detail{NaturalSDC: true, Recoverable: true}, UndetSDC},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := classify(c.d); got != c.want {
				t.Fatalf("classify(%+v) = %s, want %s", c.d, got, c.want)
			}
		})
	}
}

// TestClassifyCoversLegend: every category the classifier can emit is one of
// the ten legend entries.
func TestClassifyCoversLegend(t *testing.T) {
	legend := make(map[Category]bool)
	for _, c := range Categories() {
		legend[c] = true
	}
	for mask := 0; mask < 1<<6; mask++ {
		d := Detail{
			Detected:       mask&1 != 0,
			Recoverable:    mask&2 != 0,
			NaturalSDC:     mask&4 != 0,
			Deadlock:       mask&8 != 0,
			SpcFired:       mask&16 != 0,
			FaultyResident: mask&32 != 0,
		}
		if got := classify(d); !legend[got] {
			t.Fatalf("classify(%+v) = %q, not a Figure 8 category", d, got)
		}
	}
}
