package fault

import (
	"fmt"
	"math/bits"

	"itr/internal/cache"
	"itr/internal/core"
	"itr/internal/detect"
	"itr/internal/pipeline"
	"itr/internal/program"
	"itr/internal/stats"
)

// ---- PC faults (paper Section 2.5) ----

// PCOutcome classifies one fetch-PC upset.
type PCOutcome string

// PC fault outcomes.
const (
	// PCDetectedITR: the disruption landed mid-trace, so the polluted
	// trace's signature mismatched in the ITR cache.
	PCDetectedITR PCOutcome = "itr"
	// PCDetectedBranch: the corrupted fetch path was repaired by normal
	// branch resolution (the execution unit checks predicted targets, the
	// protection the paper notes already exists for branch boundaries).
	PCDetectedBranch PCOutcome = "branch-repair"
	// PCDetectedSpc: the commit-PC (sequential PC) check caught a
	// discontinuity at a natural trace boundary.
	PCDetectedSpc PCOutcome = "spc"
	// PCUndetectedSDC: architectural state corrupted with no check firing
	// within the window — the Section 2.5 vulnerability.
	PCUndetectedSDC PCOutcome = "undetected-sdc"
	// PCMasked: no architectural corruption and no check fired.
	PCMasked PCOutcome = "masked"
	// PCDeadlock: the machine deadlocked and only the watchdog caught it.
	PCDeadlock PCOutcome = "wdog"
)

// PCOutcomes lists the classes in report order.
func PCOutcomes() []PCOutcome {
	return []PCOutcome{PCDetectedITR, PCDetectedBranch, PCDetectedSpc, PCUndetectedSDC, PCMasked, PCDeadlock}
}

// PCFaultResult aggregates a PC-fault campaign.
type PCFaultResult struct {
	Total  int
	Counts map[PCOutcome]int
}

// Pct returns the percentage of injections with outcome o.
func (r PCFaultResult) Pct(o PCOutcome) float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Counts[o]) / float64(r.Total)
}

// RunPCFault injects one fetch-PC bit flip at the given cycle and classifies
// the outcome. The ITR checker runs in observe mode so the natural
// consequence is visible alongside every check that fires.
func RunPCFault(prog *program.Program, cfg Config, atCycle int64, bit int) (PCOutcome, error) {
	pcfg := cfg.pipelineConfig(core.ModeObserve)
	cpu, err := pipeline.New(prog, pcfg)
	if err != nil {
		return "", fmt.Errorf("pc fault run: %w", err)
	}
	g := newGolden(prog)
	cpu.SetCommitObserver(g.observe)
	cpu.SchedulePCFault(atCycle, bit)

	// Baseline repair count up to the injection point must be excluded:
	// run a clean reference for the same window to measure the expected
	// mispredict count.
	ref, err := pipeline.New(prog, pcfg)
	if err != nil {
		return "", err
	}
	refRes := ref.Run(cfg.WindowCycles)

	res := cpu.Run(cfg.WindowCycles)
	detections := cpu.Detector().Detections()

	switch {
	case len(detections) > 0:
		return PCDetectedITR, nil
	case res.Termination == pipeline.TermDeadlock:
		return PCDeadlock, nil
	case res.SpcFired > 0:
		return PCDetectedSpc, nil
	case !g.diverged && res.Mispredicts > refRes.Mispredicts:
		// Extra repair events relative to the fault-free run: the branch
		// unit redirected the corrupted path and no damage remains.
		return PCDetectedBranch, nil
	case g.diverged:
		return PCUndetectedSDC, nil
	default:
		return PCMasked, nil
	}
}

// RunPCFaultCampaign injects n randomized PC faults.
func RunPCFaultCampaign(prog *program.Program, cfg Config, n int, seed uint64) (PCFaultResult, error) {
	res := PCFaultResult{Counts: make(map[PCOutcome]int)}
	if n <= 0 {
		return res, fmt.Errorf("pc fault campaign: non-positive count %d", n)
	}
	rng := stats.NewRNG(seed)
	// Flips within the image dominate; one extra bit allows out-of-image
	// excursions (fetching past the image returns halts).
	bitRange := bits.Len64(uint64(prog.Len())) + 1
	for i := 0; i < n; i++ {
		bit := rng.Intn(bitRange)
		cycle := 1 + int64(rng.Uint64n(uint64(cfg.WindowCycles/2)))
		out, err := RunPCFault(prog, cfg, cycle, bit)
		if err != nil {
			return res, err
		}
		res.Total++
		res.Counts[out]++
	}
	return res, nil
}

// ---- ITR cache line faults (paper Section 2.4) ----

// CacheFaultOutcome classifies an upset on a stored ITR signature.
type CacheFaultOutcome string

// Cache fault outcomes.
const (
	// CacheFalseMachineCheck: without parity, the corrupted line's next
	// hit mismatches twice and raises a machine check even though the
	// program is fine (the false abort the paper describes).
	CacheFalseMachineCheck CacheFaultOutcome = "false-machine-check"
	// CacheParityRepaired: parity identified the line fault; the line was
	// repaired with the freshly generated signature and execution
	// continued (Section 2.4's fix).
	CacheParityRepaired CacheFaultOutcome = "parity-repaired"
	// CacheMasked: the corrupted line was evicted or overwritten before
	// any instance referenced it.
	CacheMasked CacheFaultOutcome = "masked"
)

// CacheFaultResult aggregates an ITR-cache fault campaign.
type CacheFaultResult struct {
	Total  int
	Counts map[CacheFaultOutcome]int
	// SDC counts runs where architectural state diverged (should stay 0:
	// ITR cache faults never corrupt the program, they can only abort it).
	SDC int
}

// RunCacheFault corrupts one resident ITR cache line mid-run and classifies
// the consequence. parity selects whether the Section 2.4 protection is on.
func RunCacheFault(prog *program.Program, cfg Config, parity bool, warmCycles int64, pick uint64, bit int) (CacheFaultOutcome, bool, error) {
	if name := detect.Canonical(cfg.Pipeline.Detector); name != detect.NameITR {
		return "", false, fmt.Errorf("cache fault study targets the ITR signature cache; detector backend %q has none", name)
	}
	pcfg := cfg.pipelineConfig(core.ModeFull)
	pcfg.ITR.Parity = parity
	cpu, err := pipeline.New(prog, pcfg)
	if err != nil {
		return "", false, fmt.Errorf("cache fault run: %w", err)
	}
	g := newGolden(prog)
	cpu.SetCommitObserver(g.observe)

	// Warm the ITR cache, then flip one bit of one resident signature.
	cpu.Run(warmCycles)
	var lines []*cache.Line
	cpu.Checker().Cache().Visit(func(ln *cache.Line) { lines = append(lines, ln) })
	if len(lines) == 0 {
		return "", false, fmt.Errorf("cache fault: no resident lines after %d warm cycles", warmCycles)
	}
	victim := lines[pick%uint64(len(lines))]
	victim.Value ^= 1 << uint(bit&63)

	res := cpu.Run(cfg.WindowCycles)
	st := cpu.Checker().Stats()

	var out CacheFaultOutcome
	switch {
	case st.ParityRecovers > 0:
		out = CacheParityRepaired
	case res.Termination == pipeline.TermMachineCheck:
		out = CacheFalseMachineCheck
	default:
		out = CacheMasked
	}
	return out, g.diverged, nil
}

// RunCacheFaultCampaign injects n randomized ITR-cache line faults.
func RunCacheFaultCampaign(prog *program.Program, cfg Config, parity bool, n int, seed uint64) (CacheFaultResult, error) {
	res := CacheFaultResult{Counts: make(map[CacheFaultOutcome]int)}
	if n <= 0 {
		return res, fmt.Errorf("cache fault campaign: non-positive count %d", n)
	}
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		out, sdc, err := RunCacheFaultCase(prog, cfg, parity, rng)
		if err != nil {
			return res, err
		}
		res.Total++
		res.Counts[out]++
		if sdc {
			res.SDC++
		}
	}
	return res, nil
}

// RunCacheFaultCase draws one randomized cache-fault experiment.
func RunCacheFaultCase(prog *program.Program, cfg Config, parity bool, rng *stats.RNG) (CacheFaultOutcome, bool, error) {
	warm := cfg.WindowCycles / 4
	if warm < 1000 {
		warm = 1000
	}
	return RunCacheFault(prog, cfg, parity, warm, rng.Uint64(), rng.Intn(64))
}
