package fault

import (
	"reflect"
	"testing"

	"itr/internal/isa"
	"itr/internal/program"
	"itr/internal/sig"
)

// testProgram is a compact loop nest that exercises the ITR cache quickly.
func testProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("fault-test")
	b.OpImm(isa.OpAddi, 1, 0, 30000)
	b.OpImm(isa.OpAddi, 4, 0, 0x1000)
	b.Label("outer")
	b.OpImm(isa.OpAddi, 2, 0, 50)
	b.Label("inner")
	b.OpImm(isa.OpAddi, 3, 3, 1)
	b.Op(isa.OpMul, 5, 3, 3)
	b.Store(isa.OpSd, 5, 4, 8)
	b.Load(isa.OpLd, 6, 4, 8)
	b.Op(isa.OpXor, 7, 6, 3)
	b.OpImm(isa.OpAddi, 2, 2, -1)
	b.Branch(isa.OpBne, 2, 0, "inner")
	b.OpImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "outer")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.WindowCycles = 20_000
	return cfg
}

func TestCategoriesComplete(t *testing.T) {
	cats := Categories()
	if len(cats) != 10 {
		t.Fatalf("%d categories, want the 10 of Figure 8", len(cats))
	}
	seen := make(map[Category]bool)
	for _, c := range cats {
		if seen[c] {
			t.Fatalf("duplicate category %s", c)
		}
		seen[c] = true
	}
}

func TestInjectionField(t *testing.T) {
	if f := (Injection{Bit: 0}).Field(); f != "opcode" {
		t.Fatalf("bit 0 field = %s", f)
	}
	if f := (Injection{Bit: 42}).Field(); f != "imm" {
		t.Fatalf("bit 42 field = %s", f)
	}
}

func TestSigOracleMatchesTraceFormation(t *testing.T) {
	p := testProgram(t)
	oracle := NewSigOracle(p)
	// The inner-loop trace starts right after the inner-loop setup.
	// Verify against a direct computation from the image.
	start := uint64(4) // first instruction of the inner body (addi r3)
	var acc sig.Accumulator
	for pc := start; ; pc++ {
		d := isa.Decode(p.Fetch(pc))
		acc.AddSignals(d)
		if d.IsBranching() || acc.Full() {
			break
		}
	}
	if got := oracle.TrueSig(start); got != acc.Value() {
		t.Fatalf("oracle sig %#x, want %#x", got, acc.Value())
	}
	// Memoized second call agrees.
	if oracle.TrueSig(start) != acc.Value() {
		t.Fatal("memoized value differs")
	}
}

func TestRunOneLatFaultIsDetectedAndMasked(t *testing.T) {
	p := testProgram(t)
	oracle := NewSigOracle(p)
	// Bit 40 is the low lat bit: timing-only, always masked, but the
	// signature differs so ITR detects it.
	det, err := RunOne(p, oracle, quickConfig(), Injection{DecodeIndex: 500, Bit: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected {
		t.Fatalf("lat fault undetected: %+v", det)
	}
	if det.NaturalSDC {
		t.Fatal("lat fault corrupted architectural state")
	}
	if det.Category != ITRMask {
		t.Fatalf("category = %s, want %s", det.Category, ITRMask)
	}
}

func TestRunOneRdstFaultIsSDCAndRecoverable(t *testing.T) {
	p := testProgram(t)
	oracle := NewSigOracle(p)
	// Find an injection on an rdst bit that produces an SDC: rdst field is
	// bits 35-39. Try several dynamic points; the mul (rdst=5) flipping
	// bit 36 writes r7 instead of r5.
	var hit *Detail
	for idx := int64(300); idx < 340 && hit == nil; idx++ {
		det, err := RunOne(p, oracle, quickConfig(), Injection{DecodeIndex: idx, Bit: 36})
		if err != nil {
			t.Fatal(err)
		}
		if det.NaturalSDC && det.Detected {
			d := det
			hit = &d
		}
	}
	if hit == nil {
		t.Fatal("no rdst injection produced a detected SDC")
	}
	if !hit.Recoverable {
		t.Fatalf("rdst fault on a hot trace should be recoverable: %+v", *hit)
	}
	if hit.Category != ITRSDCR {
		t.Fatalf("category = %s, want %s", hit.Category, ITRSDCR)
	}
	// The verify run must confirm recovery.
	if !hit.Verified || !hit.RecoveredInFull || hit.MachineCheck || hit.SDCUnderITR {
		t.Fatalf("full protocol failed to recover: %+v", *hit)
	}
}

func TestRunOneVerifyDisabled(t *testing.T) {
	p := testProgram(t)
	oracle := NewSigOracle(p)
	cfg := quickConfig()
	cfg.Verify = false
	det, err := RunOne(p, oracle, cfg, Injection{DecodeIndex: 500, Bit: 40})
	if err != nil {
		t.Fatal(err)
	}
	if det.Verified {
		t.Fatal("verify ran despite being disabled")
	}
}

func TestClassifyMapping(t *testing.T) {
	cases := []struct {
		d    Detail
		want Category
	}{
		{Detail{Detected: true, Deadlock: true}, ITRWdogR},
		{Detail{Detected: true, NaturalSDC: true, Recoverable: true}, ITRSDCR},
		{Detail{Detected: true, NaturalSDC: true}, ITRSDCD},
		{Detail{Detected: true}, ITRMask},
		{Detail{FaultyResident: true, NaturalSDC: true}, MayITRSDC},
		{Detail{FaultyResident: true}, MayITRMask},
		{Detail{SpcFired: true, NaturalSDC: true}, SpcSDC},
		{Detail{NaturalSDC: true}, UndetSDC},
		{Detail{Deadlock: true}, UndetWdog},
		{Detail{}, UndetMask},
		// spc fired but masked folds into Undet+Mask (documented deviation:
		// the paper only reports spc+SDC).
		{Detail{SpcFired: true}, UndetMask},
	}
	for i, c := range cases {
		if got := classify(c.d); got != c.want {
			t.Errorf("case %d: %s, want %s", i, got, c.want)
		}
	}
}

func TestCampaignSmall(t *testing.T) {
	p := testProgram(t)
	cfg := DefaultCampaignConfig()
	cfg.Faults = 12
	cfg.Experiment.WindowCycles = 15_000
	res, err := RunCampaign("test", p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 12 {
		t.Fatalf("total = %d", res.Total)
	}
	sum := 0
	for _, c := range Categories() {
		sum += res.Counts[c]
	}
	if sum != 12 {
		t.Fatalf("category counts sum to %d", sum)
	}
	if len(res.Details) != 12 {
		t.Fatalf("details = %d", len(res.Details))
	}
	// On this hot loop nearly everything is detected.
	if res.DetectedPct() < 50 {
		t.Fatalf("detected = %.1f%%, implausibly low for a hot loop", res.DetectedPct())
	}
	if res.RecoveryAttempted > 0 && res.RecoveryConfirmed != res.RecoveryAttempted {
		t.Fatalf("recovery confirmation %d/%d", res.RecoveryConfirmed, res.RecoveryAttempted)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	p := testProgram(t)
	cfg := DefaultCampaignConfig()
	cfg.Faults = 6
	cfg.Experiment.WindowCycles = 10_000
	a, err := RunCampaign("a", p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign("b", p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Categories() {
		if a.Counts[c] != b.Counts[c] {
			t.Fatalf("campaign not deterministic: %s %d vs %d", c, a.Counts[c], b.Counts[c])
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	p := testProgram(t)
	cfg := DefaultCampaignConfig()
	cfg.Faults = 0
	if _, err := RunCampaign("bad", p, cfg); err == nil {
		t.Fatal("zero faults accepted")
	}
	cfg.Faults = 1
	cfg.Experiment.WindowCycles = 10 // too small to profile
	if _, err := RunCampaign("bad", p, cfg); err == nil {
		t.Fatal("tiny window accepted")
	}
}

func TestCampaignPctHelpers(t *testing.T) {
	r := CampaignResult{Total: 200, Counts: map[Category]int{ITRMask: 100, ITRSDCR: 60, UndetSDC: 40}}
	if got := r.Pct(ITRMask); got != 50 {
		t.Fatalf("pct = %v", got)
	}
	if got := r.DetectedPct(); got != 80 {
		t.Fatalf("detected pct = %v", got)
	}
	var empty CampaignResult
	if empty.Pct(ITRMask) != 0 {
		t.Fatal("empty pct")
	}
}

func TestGoldenDetectsDivergence(t *testing.T) {
	p := testProgram(t)
	g := newGolden(p)
	// Feed the true stream: no divergence.
	st := isa.NewArchState()
	st.PC = p.Entry
	for i := 0; i < 50; i++ {
		pc := st.PC
		o := st.Step(p.Fetch(pc))
		g.observe(pc, &o)
	}
	if g.diverged {
		t.Fatal("golden diverged on the true stream")
	}
	// A wrong PC diverges immediately.
	g.observe(9999, &isa.Outcome{NextPC: 10000})
	if !g.diverged {
		t.Fatal("golden missed a PC divergence")
	}
}

func TestEffectiveSnapshotInterval(t *testing.T) {
	cases := []struct {
		in   int64
		want int64
	}{
		{0, DefaultSnapshotInterval}, // zero means the default
		{-1, 0},                      // negative disables the fast path
		{-8192, 0},
		{1, 1},
		{4096, 4096},
	}
	for _, tc := range cases {
		c := Config{SnapshotInterval: tc.in}
		if got := c.EffectiveSnapshotInterval(); got != tc.want {
			t.Errorf("EffectiveSnapshotInterval(%d) = %d; want %d", tc.in, got, tc.want)
		}
	}
}

// TestCampaignSnapshotIntervalIdentical checks the promise printed in the
// -snapshot-interval flag help: campaign results are identical with the
// fast path on, off, or at a non-default spacing.
func TestCampaignSnapshotIntervalIdentical(t *testing.T) {
	p := testProgram(t)
	base := DefaultCampaignConfig()
	base.Faults = 8
	base.Experiment.WindowCycles = 15_000

	run := func(interval int64) CampaignResult {
		cfg := base
		cfg.Experiment.SnapshotInterval = interval
		res, err := RunCampaign("test", p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(0) // default spacing
	for _, interval := range []int64{-1, 2048} {
		got := run(interval)
		if !reflect.DeepEqual(got.Counts, want.Counts) {
			t.Errorf("interval %d: counts %v != default %v", interval, got.Counts, want.Counts)
		}
		for i := range want.Details {
			if got.Details[i].Category != want.Details[i].Category {
				t.Errorf("interval %d: detail %d category %v != %v",
					interval, i, got.Details[i].Category, want.Details[i].Category)
			}
		}
	}
	if want.Snapshots == 0 {
		t.Error("default interval retained no snapshots; fast path did not engage")
	}
}
