package fault

import (
	"sync"

	"itr/internal/isa"
	"itr/internal/pipeline"
	"itr/internal/program"
)

// goldenEntry is one instruction of the fault-free reference execution: the
// PC the reference was at, and the outcome it computed there.
type goldenEntry struct {
	pc  uint64
	out isa.Outcome
}

// GoldenStream is the fault-free commit log computed once per benchmark and
// shared read-only by every injection in a campaign. It replaces the
// per-injection golden lockstep execution: instead of re-executing the
// reference alongside each faulty run, a cursor walks this precomputed
// stream and compares committed outcomes against it.
//
// The stream extends itself lazily under a mutex: a fault that delays or
// reorders work (e.g. a latency-bit flip) can make the faulty machine commit
// more instructions inside the window than the pilot did, so readers past
// the precomputed prefix grow the log on demand. Extension is safe at any
// index: the reference executes from the program's decode table, which
// yields halt signals beyond the program image — exactly what the live
// golden model does.
type GoldenStream struct {
	tab *program.DecodeTable

	mu      sync.Mutex
	st      isa.ArchState // execution frontier (guarded by mu)
	entries []goldenEntry // append-only (guarded by mu for append/len)
}

// NewGoldenStream builds an empty stream for prog; entries are computed on
// first use (or ahead of time via ensure).
func NewGoldenStream(prog *program.Program) *GoldenStream {
	s := &GoldenStream{tab: prog.DecodeTable()}
	s.st.Mem = isa.NewMemory()
	s.st.PC = prog.Entry
	return s
}

// ensure grows the log so index n exists and returns the current immutable
// prefix view. Appends only ever write array slots beyond every previously
// returned view's length, so returned views are safe for lock-free reads.
func (s *GoldenStream) ensure(n int) []goldenEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cap(s.entries) <= n {
		grown := make([]goldenEntry, len(s.entries), n+n/4+1)
		copy(grown, s.entries)
		s.entries = grown
	}
	for len(s.entries) <= n {
		pc := s.st.PC
		s.entries = append(s.entries, goldenEntry{pc: pc})
		e := &s.entries[len(s.entries)-1]
		s.st.ExecInto(&e.out, s.tab.Signals(pc), pc)
		s.st.ApplyRef(&e.out)
	}
	return s.entries[:len(s.entries):len(s.entries)]
}

// cursor returns a reader positioned at commit index start (the snapshot's
// committed-instruction count: everything before it matched by construction).
func (s *GoldenStream) cursor(start int) *goldenCursor {
	return &goldenCursor{s: s, view: s.ensure(start), idx: start}
}

// goldenCursor compares one machine's commit stream against the shared
// golden log, reproducing exactly the divergence rule of the live golden
// model (fault.golden.observe): sticky divergence on the first PC or
// architectural-effect mismatch.
type goldenCursor struct {
	s        *GoldenStream
	view     []goldenEntry
	idx      int
	diverged bool
}

// observe is a pipeline.CommitObserver.
func (c *goldenCursor) observe(pc uint64, o *isa.Outcome) {
	if c.diverged {
		return
	}
	if c.idx >= len(c.view) {
		c.view = c.s.ensure(c.idx)
	}
	e := &c.view[c.idx]
	if pc != e.pc {
		c.diverged = true
		return
	}
	c.idx++
	if !o.SameArchEffect(&e.out) {
		c.diverged = true
	}
}

// replayContext is the campaign-wide fast-forward state shared read-only
// across the injection worker pool: the pilot's snapshots (ascending by
// decode event) and the precomputed golden stream.
type replayContext struct {
	snaps  []*pipeline.Snapshot
	stream *GoldenStream
}

// nearest returns the latest snapshot taken strictly before decode event
// decodeIndex (so the injected event has not yet happened in it), or nil
// when no snapshot precedes it and the run must start cold.
func (rc *replayContext) nearest(decodeIndex int64) *pipeline.Snapshot {
	if rc == nil {
		return nil
	}
	if i := nearestSnapshotIdx(rc.snaps, decodeIndex); i >= 0 {
		return rc.snaps[i]
	}
	return nil
}

// nearestSnapshotIdx returns the index of the latest snapshot with
// DecodeEvents < decodeIndex, or -1.
func nearestSnapshotIdx(snaps []*pipeline.Snapshot, decodeIndex int64) int {
	lo, hi := 0, len(snaps)
	for lo < hi {
		mid := (lo + hi) / 2
		if snaps[mid].DecodeEvents < decodeIndex {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}
