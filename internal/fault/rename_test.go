package fault

import "testing"

func TestRenameFaultBlindSpotAndFix(t *testing.T) {
	p := testProgram(t)
	cfg := quickConfig()
	// Find an injection causing SDC without the extension.
	var chosen *RenameInjection
	for idx := int64(300); idx < 330 && chosen == nil; idx++ {
		inj := RenameInjection{DecodeIndex: idx, Operand: 0, Mask: 0x1f}
		withoutSDC, fed, _, _, _, err := RunRenameFault(p, cfg, inj)
		if err != nil {
			t.Fatal(err)
		}
		if fed {
			t.Fatal("frontend ITR detected a pure rename fault")
		}
		if withoutSDC {
			c := inj
			chosen = &c
		}
	}
	if chosen == nil {
		t.Fatal("no rename injection produced an SDC")
	}
	_, _, det, rec, withSDC, err := RunRenameFault(p, cfg, *chosen)
	if err != nil {
		t.Fatal(err)
	}
	if !det || !rec {
		t.Fatalf("extension missed the fault: detected=%v recovered=%v", det, rec)
	}
	if withSDC {
		t.Fatal("extension failed to prevent the corruption")
	}
}

func TestRenameCampaign(t *testing.T) {
	p := testProgram(t)
	cfg := quickConfig()
	res, err := RunRenameCampaign(p, cfg, 10, 0x42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 10 {
		t.Fatalf("total = %d", res.Total)
	}
	if res.FrontendDetected != 0 {
		t.Fatalf("frontend detected %d rename faults (must be blind)", res.FrontendDetected)
	}
	if res.DetectedWithExtension == 0 {
		t.Fatal("extension detected nothing")
	}
	// The extension must strictly reduce silent corruption.
	if res.SDCWithExtension >= res.SDCWithoutExtension && res.SDCWithoutExtension > 0 {
		t.Fatalf("no SDC reduction: %d -> %d", res.SDCWithoutExtension, res.SDCWithExtension)
	}
}

func TestRenameCampaignValidation(t *testing.T) {
	p := testProgram(t)
	if _, err := RunRenameCampaign(p, quickConfig(), 0, 1); err == nil {
		t.Fatal("zero count accepted")
	}
}
