package fault

import (
	"fmt"
	"runtime"
	"sync"

	"itr/internal/isa"
	"itr/internal/pipeline"
	"itr/internal/program"
	"itr/internal/stats"
)

// CampaignConfig parameterizes a Figure 8 campaign on one benchmark.
type CampaignConfig struct {
	// Faults is the number of injections (the paper uses 1000 per
	// benchmark).
	Faults int
	// Seed makes injection sampling reproducible.
	Seed uint64
	// Experiment configures each injection run.
	Experiment Config
	// Workers bounds parallel experiments (default: GOMAXPROCS).
	Workers int
}

// DefaultCampaignConfig returns a scaled-down campaign (raise Faults to 1000
// and Experiment.WindowCycles to 1M for paper fidelity).
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Faults:     100,
		Seed:       0x17b,
		Experiment: DefaultConfig(),
	}
}

// CampaignResult aggregates one benchmark's injections.
type CampaignResult struct {
	Benchmark string
	Total     int
	Counts    map[Category]int
	// ByField tallies injections by the Table 2 field hit.
	ByField map[string]int
	// RecoveryConfirmed counts recoverable detections whose verify run
	// actually recovered (retry matched, no machine check, no SDC).
	RecoveryConfirmed int
	RecoveryAttempted int
	// CheckpointRecovered counts detection-only faults (the ITR+SDC+D
	// class) that the checkpointing extension converted into rollbacks.
	CheckpointRecovered int
	Details             []Detail
}

// Pct returns the percentage of injections in category c.
func (r CampaignResult) Pct(c Category) float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Counts[c]) / float64(r.Total)
}

// DetectedPct returns the percentage of injections detected through the ITR
// cache (the paper reports 95.4% on average).
func (r CampaignResult) DetectedPct() float64 {
	return r.Pct(ITRMask) + r.Pct(ITRSDCR) + r.Pct(ITRSDCD) + r.Pct(ITRWdogR)
}

func (r CampaignResult) String() string {
	return fmt.Sprintf("%s: %d faults, %.1f%% ITR-detected", r.Benchmark, r.Total, r.DetectedPct())
}

// RunCampaign injects cfg.Faults random decode-signal faults into prog and
// classifies each. Injection points are sampled uniformly over the decode
// events of a profiling run covering the observation window, so every fault
// lands with room to be observed.
func RunCampaign(name string, prog *program.Program, cfg CampaignConfig) (CampaignResult, error) {
	res := CampaignResult{
		Benchmark: name,
		Counts:    make(map[Category]int),
		ByField:   make(map[string]int),
	}
	if cfg.Faults <= 0 {
		return res, fmt.Errorf("campaign: non-positive fault count %d", cfg.Faults)
	}

	// Profile the decode-event space once, fault-free.
	pcfg := cfg.Experiment.Pipeline
	pcfg.ITREnabled = true
	pcfg.ITR = cfg.Experiment.ITR
	profCPU, err := pipeline.New(prog, pcfg)
	if err != nil {
		return res, fmt.Errorf("campaign profile: %w", err)
	}
	profCPU.Run(cfg.Experiment.WindowCycles)
	decodeSpace := profCPU.DecodeEvents()
	if decodeSpace < 100 {
		return res, fmt.Errorf("campaign: window too small (%d decode events)", decodeSpace)
	}

	// Sample injections: decode index in the first half of the window so
	// every fault has at least half the window of observation; bit uniform
	// over the 64 Table 2 signal bits.
	rng := stats.NewRNG(cfg.Seed)
	lo := decodeSpace / 20
	hi := decodeSpace / 2
	injections := make([]Injection, cfg.Faults)
	for i := range injections {
		injections[i] = Injection{
			DecodeIndex: lo + int64(rng.Uint64n(uint64(hi-lo))),
			Bit:         rng.Intn(isa.SignalBits),
		}
	}

	oracle := NewSigOracle(prog)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Faults {
		workers = cfg.Faults
	}

	details := make([]Detail, cfg.Faults)
	errs := make([]error, cfg.Faults)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				details[i], errs[i] = RunOne(prog, oracle, cfg.Experiment, injections[i])
			}
		}()
	}
	for i := range injections {
		work <- i
	}
	close(work)
	wg.Wait()

	for i, d := range details {
		if errs[i] != nil {
			return res, fmt.Errorf("fault %d: %w", i, errs[i])
		}
		res.Total++
		res.Counts[d.Category]++
		res.ByField[d.Injection.Field()]++
		if d.Verified && d.Detected && d.Recoverable {
			res.RecoveryAttempted++
			if d.RecoveredInFull && !d.MachineCheck && !d.SDCUnderITR {
				res.RecoveryConfirmed++
			}
		}
		if d.CheckpointRecovered {
			res.CheckpointRecovered++
		}
	}
	res.Details = details
	return res, nil
}
