package fault

import (
	"fmt"
	"runtime"
	"sync"

	"itr/internal/core"
	"itr/internal/isa"
	"itr/internal/obs"
	"itr/internal/pipeline"
	"itr/internal/program"
	"itr/internal/stats"
)

// CampaignConfig parameterizes a Figure 8 campaign on one benchmark.
type CampaignConfig struct {
	// Faults is the number of injections (the paper uses 1000 per
	// benchmark).
	Faults int
	// Seed makes injection sampling reproducible.
	Seed uint64
	// Experiment configures each injection run.
	Experiment Config
	// Workers bounds parallel experiments (default: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives live campaign telemetry. One
	// Progress may be shared across concurrent campaigns.
	Progress *Progress
	// LatencyCycles and LatencyInsts, when non-nil, receive one
	// observation per detected injection: the machine time from the fault's
	// decode event to the backend's first detection, in pipeline cycles and
	// committed instructions respectively. Share one pair per backend to
	// accumulate a latency distribution across campaigns.
	LatencyCycles *obs.Hist
	LatencyInsts  *obs.Hist
	// Tracer, when non-nil, records the campaign timeline: the pilot's
	// snapshot captures and each worker's injection start/classify events,
	// with the worker's pipeline events interleaved on the same ring.
	Tracer *obs.Tracer
}

// Progress accumulates live campaign telemetry across injection workers and
// benchmarks. Injections is sharded per worker and merged on read, so a
// progress ticker can read it while the campaign runs without making the
// workers contend. Pair it with a pipeline.Probe on
// Experiment.Pipeline.Probe for cycle/decode/restore counts.
type Progress struct {
	// Injections counts completed injection experiments.
	Injections obs.Counter
	// CyclesSimulated and CyclesSaved mirror the campaign Budget live: the
	// pipeline cycles injections actually simulated, and the window cycles
	// the decided-outcome engine skipped (zero under Config.Exact).
	CyclesSimulated obs.Counter
	CyclesSaved     obs.Counter
}

// DefaultCampaignConfig returns a scaled-down campaign (raise Faults to 1000
// and Experiment.WindowCycles to 1M for paper fidelity).
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Faults:     100,
		Seed:       0x17b,
		Experiment: DefaultConfig(),
	}
}

// CampaignResult aggregates one benchmark's injections.
type CampaignResult struct {
	Benchmark string
	Total     int
	Counts    map[Category]int
	// ByField tallies injections by the Table 2 field hit.
	ByField map[string]int
	// RecoveryConfirmed counts recoverable detections whose verify run
	// actually recovered (retry matched, no machine check, no SDC).
	RecoveryConfirmed int
	RecoveryAttempted int
	// CheckpointRecovered counts detection-only faults (the ITR+SDC+D
	// class) that the checkpointing extension converted into rollbacks.
	CheckpointRecovered int
	// Snapshots is the number of pilot snapshots retained for fast-forward
	// (after pruning to the ones some injection actually resumes from);
	// SnapshotPages is the total page count they reference. Snapshot memory
	// is captured copy-on-write, so consecutive snapshots share unchanged
	// pages by reference and SnapshotPages counts a shared page once per
	// snapshot referencing it; SnapshotOwnedPages counts each distinct page
	// once — the series' actual resident footprint, which page sharing cuts
	// from SnapshotPages by the reuse factor. All are zero on the cold path.
	Snapshots          int
	SnapshotPages      int
	SnapshotOwnedPages int
	// Budget accounts the decided-outcome engine's work: cycles simulated
	// versus window cycles skipped, per outcome class.
	Budget  Budget
	Details []Detail
}

// Pct returns the percentage of injections in category c.
func (r CampaignResult) Pct(c Category) float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Counts[c]) / float64(r.Total)
}

// DetectedPct returns the percentage of injections detected through the ITR
// cache (the paper reports 95.4% on average).
func (r CampaignResult) DetectedPct() float64 {
	return r.Pct(ITRMask) + r.Pct(ITRSDCR) + r.Pct(ITRSDCD) + r.Pct(ITRWdogR)
}

func (r CampaignResult) String() string {
	return fmt.Sprintf("%s: %d faults, %.1f%% ITR-detected", r.Benchmark, r.Total, r.DetectedPct())
}

// RunCampaign injects cfg.Faults random decode-signal faults into prog and
// classifies each. Injection points are sampled uniformly over the decode
// events of a profiling run covering the observation window, so every fault
// lands with room to be observed.
func RunCampaign(name string, prog *program.Program, cfg CampaignConfig) (CampaignResult, error) {
	res := CampaignResult{
		Benchmark: name,
		Counts:    make(map[Category]int),
		ByField:   make(map[string]int),
	}
	if cfg.Faults <= 0 {
		return res, fmt.Errorf("campaign: non-positive fault count %d", cfg.Faults)
	}

	// Pilot run: profile the decode-event space once, fault-free, dropping a
	// resumable snapshot every SnapshotInterval decode events. The pilot uses
	// the observe run's exact configuration (mode aside, which Restore
	// ignores) so its snapshots restore into every injection run. A fault-
	// free machine's trajectory is mode-independent — the checker modes
	// differ only in how detections are handled — so the decode-event space
	// matches what any injection run sees up to its fault point.
	window := cfg.Experiment.WindowCycles
	interval := cfg.Experiment.EffectiveSnapshotInterval()
	pilotCfg := cfg.Experiment
	if cfg.Tracer != nil {
		pilotCfg.Pipeline.Trace = cfg.Tracer.Ring("fault-pilot")
	}
	pilot, err := pipeline.New(prog, pilotCfg.pipelineConfig(core.ModeObserve))
	if err != nil {
		return res, fmt.Errorf("campaign pilot: %w", err)
	}
	var snaps []*pipeline.Snapshot
	if interval > 0 {
		next := interval
		for pilot.CycleCount() < window {
			pres := pilot.RunUntilDecode(window-pilot.CycleCount(), next)
			if pres.Termination != pipeline.TermBudget || pilot.CycleCount() >= window {
				break // machine terminated or window exhausted: pilot done
			}
			snaps = append(snaps, pilot.Snapshot())
			next = pilot.DecodeEvents() + interval
		}
	} else {
		pilot.Run(window)
	}
	decodeSpace := pilot.DecodeEvents()
	if decodeSpace < 100 {
		return res, fmt.Errorf("campaign: window too small (%d decode events)", decodeSpace)
	}

	// Sample injections: decode index in the first half of the window so
	// every fault has at least half the window of observation; bit uniform
	// over the 64 Table 2 signal bits.
	rng := stats.NewRNG(cfg.Seed)
	lo := decodeSpace / 20
	hi := decodeSpace / 2
	injections := make([]Injection, cfg.Faults)
	for i := range injections {
		injections[i] = Injection{
			DecodeIndex: lo + int64(rng.Uint64n(uint64(hi-lo))),
			Bit:         rng.Intn(isa.SignalBits),
		}
	}

	// Keep only the snapshots some injection actually resumes from, and
	// precompute the shared golden commit log covering the pilot's window so
	// workers rarely contend on extending it.
	var rc *replayContext
	if len(snaps) > 0 {
		used := make([]bool, len(snaps))
		for _, inj := range injections {
			if i := nearestSnapshotIdx(snaps, inj.DecodeIndex); i >= 0 {
				used[i] = true
			}
		}
		kept := make([]*pipeline.Snapshot, 0, len(snaps))
		for i, s := range snaps {
			if used[i] {
				kept = append(kept, s)
			}
		}
		if len(kept) > 0 {
			stream := NewGoldenStream(prog)
			if n := pilot.CommittedInsts(); n > 0 {
				stream.ensure(int(n) - 1)
			}
			rc = &replayContext{snaps: kept, stream: stream}
			res.Snapshots = len(kept)
			distinct := make(map[uint64]struct{})
			for _, s := range kept {
				res.SnapshotPages += s.MemPages()
				s.VisitMemPages(func(id uint64) { distinct[id] = struct{}{} })
			}
			res.SnapshotOwnedPages = len(distinct)
		}
	}

	oracle := NewSigOracle(prog)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Faults {
		workers = cfg.Faults
	}

	details := make([]Detail, cfg.Faults)
	budgets := make([]runBudget, cfg.Faults)
	errs := make([]error, cfg.Faults)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One arena per worker: the observe and verify machines are
			// built once and recycled via Restore across every injection
			// this worker runs. The worker's ring is single-writer — the
			// arena machines run on this goroutine, so their pipeline
			// events interleave with the injection markers safely.
			wcfg := cfg.Experiment
			var ring *obs.Ring
			if cfg.Tracer != nil {
				ring = cfg.Tracer.Ring(fmt.Sprintf("fault-worker-%d", w))
				wcfg.Pipeline.Trace = ring
			}
			ar := newRunArena(prog, wcfg)
			for i := range work {
				inj := injections[i]
				ring.Emit(obs.EvInjectStart, inj.DecodeIndex, int64(inj.Bit))
				details[i], errs[i] = runOne(prog, oracle, wcfg, inj, rc, ar, &budgets[i])
				d := details[i]
				detected := int64(0)
				if errs[i] == nil && d.Detected {
					detected = 1
					if d.LatencyCycles >= 0 {
						if cfg.LatencyCycles != nil {
							cfg.LatencyCycles.Observe(d.LatencyCycles)
						}
						if cfg.LatencyInsts != nil {
							cfg.LatencyInsts.Observe(d.LatencyInsts)
						}
					}
				}
				ring.Emit(obs.EvInjectClassify, inj.DecodeIndex, detected)
				if cfg.Progress != nil {
					cfg.Progress.Injections.AddAt(uint32(w), 1)
					cfg.Progress.CyclesSimulated.AddAt(uint32(w), budgets[i].simulated)
					cfg.Progress.CyclesSaved.AddAt(uint32(w), budgets[i].saved)
				}
			}
		}(w)
	}
	for i := range injections {
		work <- i
	}
	close(work)
	wg.Wait()

	for i, d := range details {
		if errs[i] != nil {
			return res, fmt.Errorf("fault %d: %w", i, errs[i])
		}
		res.Total++
		res.Counts[d.Category]++
		res.ByField[d.Injection.Field()]++
		res.Budget.add(budgets[i], d.Category)
		if d.Verified && d.Detected && d.Recoverable {
			res.RecoveryAttempted++
			if d.RecoveredInFull && !d.MachineCheck && !d.SDCUnderITR {
				res.RecoveryConfirmed++
			}
		}
		if d.CheckpointRecovered {
			res.CheckpointRecovered++
		}
	}
	res.Details = details
	return res, nil
}
