package fault

import (
	"itr/internal/cache"
	"itr/internal/core"
	"itr/internal/isa"
	"itr/internal/pipeline"
)

// The decided-outcome engine: stop each injection run as soon as its Figure 8
// classification is information-theoretically settled instead of simulating
// the remainder of the observation window.
//
// The argument rests on one structural property of the fault model: exactly
// one decode event is corrupted, so once every pipeline structure that ever
// held the corrupted signals has drained, all *future* decodes are faithful.
// From that point the machine is a correct implementation of the ISA over
// whatever architectural state it reached, and each classification fact
// either is already final or is provable final:
//
//   - Deadlock: the watchdog can only starve while a corrupted uop stalls the
//     ROB (a faithful decode never yields an unsatisfiable resource — see
//     isa sweep tests). A stalled corrupted uop keeps the drain condition
//     false, so the probe loop keeps simulating until the watchdog actually
//     fires; after drain, no deadlock can occur.
//   - SpcFired: the sequential-PC check fires at most one commit after a
//     corrupted control commit; one clean commit past the drain point
//     settles it.
//   - NaturalSDC: the golden cursor is sticky once diverged. While clean,
//     convergence is *proved* (not assumed) by replaying the golden outcome
//     log from the run's own start snapshot and comparing the full
//     architectural state, memory included, against the machine.
//   - Detected/latency: detection events are append-only; for runs with none
//     yet, the backend's Settled contract plus (for ITR) a sweep of the
//     signature cache against the oracle rules out future events.
//
// Anything the proof cannot establish falls back to simulating the rest of
// the window, so the fast path is never less sound than the exact one.
const (
	// decideProbeCycles is the simulation chunk between decision probes.
	// Small enough that a settled run stops within ~1% of the paper's
	// window, large enough that probe overhead (a handful of counter reads,
	// usually) vanishes against simulation cost.
	decideProbeCycles = 512

	// preFaultMargin is how many decode events before the injection the
	// observe run pauses to capture the verify run's fork point. It must
	// exceed the maximum decode events a single RunUntilDecode stopping
	// cycle can add (fetch width times the redundancy factor), so the
	// capture always lands strictly before the fault fires.
	preFaultMargin = 64

	// faultySweepBackoff throttles the ITR cache sweep while a faulty
	// signature is resident: the line can only stop blocking the decision
	// via eviction or detection, both rare, so re-auditing every probe
	// would waste the sweep's oracle lookups.
	faultySweepBackoff = 8
)

// runBudget records one injection's simulation work for the campaign's
// cycles-saved accounting. It deliberately lives outside Detail so the
// decided-outcome engine never perturbs classification payloads.
type runBudget struct {
	simulated     int64 // cycles actually simulated (observe + verify)
	saved         int64 // window cycles skipped by deciding early or forking
	decidedEarly  bool  // observe run exited before its window
	verifyForked  bool  // verify run resumed from the observe pre-fault fork
	proofFallback bool  // a convergence proof failed; run went to completion
}

// ClassBudget is the per-category slice of Budget.
type ClassBudget struct {
	Simulated int64 `json:"simulated"`
	Saved     int64 `json:"saved"`
}

// Budget aggregates the decided-outcome engine's work accounting over a
// campaign: cycles actually simulated versus window cycles skipped, broken
// down by outcome class (SDCs settle fast — the cursor diverges and sticks —
// while masked faults pay for their convergence proof).
type Budget struct {
	CyclesSimulated int64
	CyclesSaved     int64
	DecidedEarly    int64 // injections whose observe run exited early
	VerifyForked    int64 // verify runs resumed from a pre-fault fork
	ProofFallbacks  int64 // convergence proofs that failed (ran to completion)
	ByClass         map[Category]ClassBudget
}

// add folds one injection's record into the campaign totals.
func (b *Budget) add(r runBudget, cat Category) {
	b.CyclesSimulated += r.simulated
	b.CyclesSaved += r.saved
	if r.decidedEarly {
		b.DecidedEarly++
	}
	if r.verifyForked {
		b.VerifyForked++
	}
	if r.proofFallback {
		b.ProofFallbacks++
	}
	if b.ByClass == nil {
		b.ByClass = make(map[Category]ClassBudget)
	}
	cb := b.ByClass[cat]
	cb.Simulated += r.simulated
	cb.Saved += r.saved
	b.ByClass[cat] = cb
}

// runDecided simulates cpu in probe-sized chunks until the injection's
// classification facts are settled or the machine genuinely terminates.
// It returns the final cumulative Result exactly as a single cpu.Run of the
// whole window would (chunked stepping is trajectory-identical and the
// Result counters are cumulative), plus whether the run exited early and
// whether a convergence proof failed.
//
// full selects the verify-run rules: the full protocol's retry and
// machine-check machinery means even already-detected runs must wait for the
// backend to settle before their recovery facts are final.
func runDecided(cpu *pipeline.CPU, cur *goldenCursor, stream *GoldenStream, snap *pipeline.Snapshot, oracle *SigOracle, inj Injection, window int64, full bool) (res pipeline.Result, early, fellBack bool) {
	// Everything decoded at or before taintHorizon may carry corrupted
	// signals: the injected event itself, plus the trace former's open
	// partial trace, which folds the corrupted signals into a trace event
	// dispatched up to MaxTraceLen-1 decode events later.
	taintHorizon := inj.DecodeIndex + isa.MaxTraceLen
	cleanCommit := int64(-1)
	sweepHold := 0
	for {
		chunk := window - cpu.CycleCount()
		if chunk > decideProbeCycles {
			chunk = decideProbeCycles
		}
		if chunk < 0 {
			chunk = 0
		}
		res = cpu.Run(chunk)
		if res.Termination != pipeline.TermBudget || cpu.CycleCount() >= window {
			return res, false, false
		}
		// Phase 0 — drain: wait until no structure can still hold corrupted
		// decode signals. A corrupted uop stalling forever keeps us here
		// until the watchdog terminates the run, which is the sound outcome.
		if cleanCommit < 0 {
			if cpu.DecodeEvents() <= taintHorizon {
				continue
			}
			if oldest, ok := cpu.OldestInFlightDecode(); ok && oldest <= taintHorizon {
				continue
			}
			cleanCommit = cpu.CommittedInsts()
			continue
		}
		// Phase 1 — one clean commit past the drain point settles the
		// sequential-PC check (a corrupted control commit can break the
		// expected-PC chain at exactly the next retirement) and gives the
		// golden cursor its final chance to diverge on taint-era state.
		if cpu.CommittedInsts() <= cleanCommit {
			continue
		}
		// Phase 2 — decide.
		d := cpu.Detector()
		diverged := cur.diverged
		// Observe runs that already detected need no quiescence: detection
		// is monotone and observe mode never retries. Undetected runs — and
		// every full-protocol run, whose retry/machine-check resolution is
		// still in flight — must show the backend can produce no further
		// event, and (ITR only) that no faulty signature is resident to
		// seed one later.
		if full || d.Stats().Mismatches == 0 {
			if !d.Settled(cleanCommit, diverged) {
				continue
			}
			if ck := cpu.Checker(); ck != nil {
				if sweepHold > 0 {
					sweepHold--
					continue
				}
				if faultyResident(ck, oracle) {
					sweepHold = faultySweepBackoff - 1
					continue
				}
			}
		}
		if !diverged {
			// The cursor never flagged a divergence; prove the machine
			// actually re-converged with the golden execution, so all
			// future commits must match it. A failed proof means the
			// masked verdict is not yet safe: simulate the rest of the
			// window exactly.
			if !convergedWithGolden(cpu, stream, snap) {
				if rest := window - cpu.CycleCount(); rest > 0 {
					res = cpu.Run(rest)
				}
				return res, false, true
			}
		}
		return res, true, false
	}
}

// faultyResident reports whether any ITR cache line holds a signature that
// disagrees with the fault-free oracle — persistent corrupted evidence that
// a future faithful access could still trip over.
func faultyResident(ck *core.Checker, oracle *SigOracle) bool {
	faulty := false
	ck.Cache().Visit(func(ln *cache.Line) {
		if !faulty && ln.Value != oracle.TrueSig(ln.Key) {
			faulty = true
		}
	})
	return faulty
}

// convergedWithGolden proves the machine's committed architectural state is
// identical to the fault-free execution at the current commit boundary: it
// forks the golden architectural state from the run's own start snapshot
// (whose prefix is fault-free by construction), replays the shared golden
// outcome log up to the machine's commit count, and compares registers, PC,
// and — via the copy-on-write generation tags, so untouched pages compare by
// pointer — the full memory image.
func convergedWithGolden(cpu *pipeline.CPU, stream *GoldenStream, snap *pipeline.Snapshot) bool {
	committed := cpu.CommittedInsts()
	if committed <= snap.Committed {
		return false
	}
	st, mem := snap.ArchFork()
	entries := stream.ensure(int(committed) - 1)
	for i := snap.Committed; i < committed; i++ {
		st.ApplyRef(&entries[i].out)
	}
	machine := cpu.Committed()
	if st.R != machine.R || st.F != machine.F || st.PC != machine.PC {
		return false
	}
	mmem, ok := machine.Mem.(*isa.Memory)
	return ok && mem.Equal(mmem)
}
