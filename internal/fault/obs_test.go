package fault

import (
	"fmt"
	"testing"

	"itr/internal/obs"
)

// TestRunOneLatencyStamp pins the Detail latency contract: a detected fault
// carries non-negative injection-to-detection distances in both cycles and
// committed instructions, and an injection that never fires reports -1.
func TestRunOneLatencyStamp(t *testing.T) {
	p := testProgram(t)
	oracle := NewSigOracle(p)

	det, err := RunOne(p, oracle, quickConfig(), Injection{DecodeIndex: 500, Bit: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected {
		t.Fatalf("lat fault undetected: %+v", det)
	}
	if det.LatencyCycles < 0 || det.LatencyInsts < 0 {
		t.Fatalf("detected fault has no latency: cycles=%d insts=%d",
			det.LatencyCycles, det.LatencyInsts)
	}

	// An injection index past the window never fires: no detection, no
	// latency.
	far, err := RunOne(p, oracle, quickConfig(), Injection{DecodeIndex: 1 << 40, Bit: 40})
	if err != nil {
		t.Fatal(err)
	}
	if far.Detected {
		t.Fatalf("unfired injection classified as detected: %+v", far)
	}
	if far.LatencyCycles != -1 || far.LatencyInsts != -1 {
		t.Fatalf("unfired injection has latency: cycles=%d insts=%d",
			far.LatencyCycles, far.LatencyInsts)
	}
}

// TestCampaignLatencyHistograms runs a campaign with the observability hooks
// attached and checks that the histogram totals reconcile exactly against
// the per-injection details, the progress counter matches the fault count,
// and the tracer saw one start/classify marker pair per injection.
func TestCampaignLatencyHistograms(t *testing.T) {
	p := testProgram(t)
	cfg := DefaultCampaignConfig()
	cfg.Faults = 12
	cfg.Experiment.WindowCycles = 15_000
	cfg.Workers = 3
	cfg.Progress = &Progress{}
	cfg.LatencyCycles = &obs.Hist{}
	cfg.LatencyInsts = &obs.Hist{}
	cfg.Tracer = obs.NewTracer(1024)

	res, err := RunCampaign("obs", p, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wantObs int64
	for _, d := range res.Details {
		if d.Detected != (d.LatencyCycles >= 0) {
			t.Errorf("detail %+v: Detected and LatencyCycles disagree", d)
		}
		if (d.LatencyCycles >= 0) != (d.LatencyInsts >= 0) {
			t.Errorf("detail %+v: cycle and instruction latencies disagree", d)
		}
		if d.LatencyCycles >= 0 {
			wantObs++
		}
	}
	if wantObs == 0 {
		t.Fatal("no detected faults; the histogram check would be vacuous")
	}
	if got := cfg.LatencyCycles.Count(); got != wantObs {
		t.Errorf("latency-cycles hist count = %d, want %d", got, wantObs)
	}
	if got := cfg.LatencyInsts.Count(); got != wantObs {
		t.Errorf("latency-insts hist count = %d, want %d", got, wantObs)
	}
	if got := cfg.Progress.Injections.Load(); got != int64(cfg.Faults) {
		t.Errorf("progress injections = %d, want %d", got, cfg.Faults)
	}

	// Every worker ring carries a balanced start/classify stream summing to
	// the fault count.
	var starts, classifies int
	for w := 0; w < cfg.Workers; w++ {
		ring := cfg.Tracer.Ring(fmt.Sprintf("fault-worker-%d", w))
		for _, e := range ring.Events() {
			switch e.Kind {
			case obs.EvInjectStart:
				starts++
			case obs.EvInjectClassify:
				classifies++
			}
		}
	}
	if starts != cfg.Faults || classifies != cfg.Faults {
		t.Errorf("tracer saw %d starts, %d classifies, want %d each",
			starts, classifies, cfg.Faults)
	}
}
