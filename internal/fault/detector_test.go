package fault

import (
	"testing"

	"itr/internal/detect"
)

// TestRunOneLatFaultDetectedByRivals mirrors the ITR lat-fault test for the
// rival backends: a timing-only lat-bit flip perturbs the signature without
// corrupting architectural state, so every backend must classify it ITR+Mask.
func TestRunOneLatFaultDetectedByRivals(t *testing.T) {
	p := testProgram(t)
	oracle := NewSigOracle(p)
	for _, name := range []string{detect.NameRepTFD, detect.NameDME} {
		t.Run(name, func(t *testing.T) {
			cfg := quickConfig()
			cfg.Pipeline.Detector = name
			det, err := RunOne(p, oracle, cfg, Injection{DecodeIndex: 500, Bit: 40})
			if err != nil {
				t.Fatal(err)
			}
			if !det.Detected {
				t.Fatalf("lat fault undetected by %s: %+v", name, det)
			}
			if det.NaturalSDC {
				t.Fatal("lat fault corrupted architectural state")
			}
			if det.Category != ITRMask {
				t.Fatalf("category = %s, want %s", det.Category, ITRMask)
			}
		})
	}
}

// TestRivalBackendCampaigns smoke-runs a Figure 8 campaign per rival backend:
// totals and category counts must be consistent, and RepTFD — whose
// detections are post-commit — must never attempt flush-and-retry recovery.
func TestRivalBackendCampaigns(t *testing.T) {
	p := testProgram(t)
	for _, name := range []string{detect.NameRepTFD, detect.NameDME} {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultCampaignConfig()
			cfg.Faults = 10
			cfg.Experiment.WindowCycles = 15_000
			cfg.Experiment.Pipeline.Detector = name
			res, err := RunCampaign(name, p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Total != 10 {
				t.Fatalf("total = %d", res.Total)
			}
			sum := 0
			for _, c := range Categories() {
				sum += res.Counts[c]
			}
			if sum != res.Total {
				t.Fatalf("category counts sum to %d of %d", sum, res.Total)
			}
			if name == detect.NameRepTFD {
				if res.RecoveryAttempted != 0 {
					t.Fatalf("reptfd attempted %d recoveries; its detections are post-commit", res.RecoveryAttempted)
				}
				if res.Counts[ITRSDCR] != 0 || res.Counts[ITRWdogR] != 0 {
					t.Fatalf("reptfd produced recoverable categories: %+v", res.Counts)
				}
			}
			if res.RecoveryAttempted > 0 && res.RecoveryConfirmed != res.RecoveryAttempted {
				t.Fatalf("recovery confirmation %d/%d", res.RecoveryConfirmed, res.RecoveryAttempted)
			}
		})
	}
}

// TestRivalBackendCampaignDeterministic: backend selection must not disturb
// the campaign's determinism guarantee.
func TestRivalBackendCampaignDeterministic(t *testing.T) {
	p := testProgram(t)
	cfg := DefaultCampaignConfig()
	cfg.Faults = 6
	cfg.Experiment.WindowCycles = 10_000
	cfg.Experiment.Pipeline.Detector = detect.NameDME
	a, err := RunCampaign("a", p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign("b", p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Categories() {
		if a.Counts[c] != b.Counts[c] {
			t.Fatalf("campaign not deterministic: %s %d vs %d", c, a.Counts[c], b.Counts[c])
		}
	}
}

// TestCacheFaultRejectsRivalBackend: the Section 2.4 study injects into the
// ITR signature cache, which the rival backends do not have.
func TestCacheFaultRejectsRivalBackend(t *testing.T) {
	p := testProgram(t)
	cfg := quickConfig()
	cfg.Pipeline.Detector = detect.NameRepTFD
	if _, err := RunCacheFaultCampaign(p, cfg, false, 3, 1); err == nil {
		t.Fatal("cache fault study accepted a backend without an ITR cache")
	}
}
