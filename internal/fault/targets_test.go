package fault

import (
	"testing"

	"itr/internal/stats"
)

func TestPCFaultMidTraceDetectedByITR(t *testing.T) {
	p := testProgram(t)
	cfg := quickConfig()
	// Sweep cycles until an ITR detection appears: a low-bit PC flip lands
	// mid-trace most of the time on this tight loop.
	sawITR := false
	for cycle := int64(500); cycle < 560 && !sawITR; cycle += 7 {
		out, err := RunPCFault(p, cfg, cycle, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out == PCDetectedITR {
			sawITR = true
		}
	}
	if !sawITR {
		t.Fatal("no mid-trace PC fault was detected by ITR")
	}
}

func TestPCFaultCampaignCoversOutcomes(t *testing.T) {
	p := testProgram(t)
	cfg := quickConfig()
	res, err := RunPCFaultCampaign(p, cfg, 20, 0x77)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 20 {
		t.Fatalf("total = %d", res.Total)
	}
	sum := 0
	for _, o := range PCOutcomes() {
		sum += res.Counts[o]
	}
	if sum != 20 {
		t.Fatalf("outcome counts sum to %d", sum)
	}
	// On a tight loop a healthy share of flips land mid-trace and are
	// detected by ITR.
	if res.Pct(PCDetectedITR) < 20 {
		t.Fatalf("ITR detected only %.0f%% of PC faults", res.Pct(PCDetectedITR))
	}
}

func TestPCFaultCampaignValidation(t *testing.T) {
	p := testProgram(t)
	if _, err := RunPCFaultCampaign(p, quickConfig(), 0, 1); err == nil {
		t.Fatal("zero-count campaign accepted")
	}
}

// hotCacheFault corrupts resident lines until it hits one that execution
// actually re-references (cold run-once lines are the legitimately masked
// case).
func hotCacheFault(t *testing.T, parity bool) (CacheFaultOutcome, bool) {
	t.Helper()
	p := testProgram(t)
	cfg := quickConfig()
	for pick := uint64(0); pick < 8; pick++ {
		out, sdc, err := RunCacheFault(p, cfg, parity, 2000, pick, 9)
		if err != nil {
			t.Fatal(err)
		}
		if out != CacheMasked {
			return out, sdc
		}
	}
	t.Fatal("every resident line was cold")
	return "", false
}

func TestCacheFaultWithoutParityIsFalseMachineCheck(t *testing.T) {
	out, sdc := hotCacheFault(t, false)
	if out != CacheFalseMachineCheck {
		t.Fatalf("outcome = %s, want false machine check (Section 2.4)", out)
	}
	if sdc {
		t.Fatal("an ITR cache fault must never corrupt architectural state")
	}
}

func TestCacheFaultWithParityIsRepaired(t *testing.T) {
	out, sdc := hotCacheFault(t, true)
	if out != CacheParityRepaired {
		t.Fatalf("outcome = %s, want parity repair", out)
	}
	if sdc {
		t.Fatal("parity repair must not corrupt state")
	}
}

func TestCacheFaultCampaign(t *testing.T) {
	p := testProgram(t)
	cfg := quickConfig()
	noParity, err := RunCacheFaultCampaign(p, cfg, false, 8, 0x5)
	if err != nil {
		t.Fatal(err)
	}
	withParity, err := RunCacheFaultCampaign(p, cfg, true, 8, 0x5)
	if err != nil {
		t.Fatal(err)
	}
	if noParity.SDC != 0 || withParity.SDC != 0 {
		t.Fatal("cache faults corrupted architectural state")
	}
	if withParity.Counts[CacheFalseMachineCheck] > 0 {
		t.Fatalf("parity left %d false machine checks", withParity.Counts[CacheFalseMachineCheck])
	}
	// Without parity, referenced corrupted lines abort the program.
	if noParity.Counts[CacheFalseMachineCheck] == 0 {
		t.Fatal("no false machine checks without parity — faults never referenced?")
	}
}

func TestRunCacheFaultCase(t *testing.T) {
	p := testProgram(t)
	rng := stats.NewRNG(3)
	out, _, err := RunCacheFaultCase(p, quickConfig(), true, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out != CacheParityRepaired && out != CacheMasked {
		t.Fatalf("parity-protected case produced %s", out)
	}
}
