package checkpoint

import (
	"testing"
	"testing/quick"

	"itr/internal/isa"
)

func newMgr(t *testing.T) (*Manager, *isa.ArchState, *isa.Memory) {
	t.Helper()
	mem := isa.NewMemory()
	st := &isa.ArchState{Mem: mem}
	m, err := New(st, mem)
	if err != nil {
		t.Fatal(err)
	}
	return m, st, mem
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil state accepted")
	}
}

func TestTake(t *testing.T) {
	m, _, _ := newMgr(t)
	if m.Valid() {
		t.Fatal("fresh manager has a checkpoint")
	}
	m.Take(100)
	if !m.Valid() || m.CommittedAt() != 100 {
		t.Fatalf("checkpoint state: valid=%v committedAt=%d", m.Valid(), m.CommittedAt())
	}
	if m.Stats().Taken != 1 {
		t.Fatalf("stats: %+v", m.Stats())
	}
}

func TestRollbackRestoresRegisters(t *testing.T) {
	m, st, _ := newMgr(t)
	st.R[5] = 42
	st.F[3] = 99
	st.PC = 1000
	m.Take(7)

	st.R[5] = 1
	st.F[3] = 2
	st.PC = 2000
	pc, ok := m.Rollback()
	if !ok || pc != 1000 {
		t.Fatalf("rollback: pc=%d ok=%v", pc, ok)
	}
	if st.R[5] != 42 || st.F[3] != 99 || st.PC != 1000 {
		t.Fatalf("registers not restored: r5=%d f3=%d pc=%d", st.R[5], st.F[3], st.PC)
	}
}

func TestRollbackRestoresMemory(t *testing.T) {
	m, st, mem := newMgr(t)
	mem.Store(0x100, 8, 111)
	mem.Store(0x200, 8, 222)
	m.Take(0)

	// Committed stores after the checkpoint, logged via BeforeStore.
	for _, w := range []isa.Outcome{
		{MemWrite: true, MemAddr: 0x100, MemWSize: 8, MemWData: 999},
		{MemWrite: true, MemAddr: 0x300, MemWSize: 4, MemWData: 333},
		{MemWrite: true, MemAddr: 0x100, MemWSize: 1, MemWData: 0xff}, // same word again
	} {
		m.BeforeStore(w)
		st.Mem.Store(w.MemAddr, w.MemWSize, w.MemWData)
	}
	if mem.Load(0x100, 8) == 111 {
		t.Fatal("test setup: stores did not apply")
	}
	if _, ok := m.Rollback(); !ok {
		t.Fatal("rollback failed")
	}
	if got := mem.Load(0x100, 8); got != 111 {
		t.Fatalf("word 0x100 = %d, want 111", got)
	}
	if got := mem.Load(0x200, 8); got != 222 {
		t.Fatalf("untouched word changed: %d", got)
	}
	if got := mem.Load(0x300, 8); got != 0 {
		t.Fatalf("post-checkpoint word not undone: %d", got)
	}
}

func TestUndoLogDeduplicatesWords(t *testing.T) {
	m, st, _ := newMgr(t)
	m.Take(0)
	w := isa.Outcome{MemWrite: true, MemAddr: 0x100, MemWSize: 8, MemWData: 1}
	for i := 0; i < 10; i++ {
		m.BeforeStore(w)
		st.Mem.Store(w.MemAddr, w.MemWSize, uint64(i))
	}
	if m.UndoLogLen() != 1 {
		t.Fatalf("undo log = %d entries, want 1 (first write wins)", m.UndoLogLen())
	}
}

func TestRollbackWithoutCheckpoint(t *testing.T) {
	m, _, _ := newMgr(t)
	if _, ok := m.Rollback(); ok {
		t.Fatal("rollback without checkpoint succeeded")
	}
}

func TestCheckpointRemainsValidAfterRollback(t *testing.T) {
	m, st, _ := newMgr(t)
	st.R[1] = 5
	m.Take(0)
	st.R[1] = 9
	m.Rollback()
	st.R[1] = 13
	if _, ok := m.Rollback(); !ok {
		t.Fatal("second rollback to the same checkpoint failed")
	}
	if st.R[1] != 5 {
		t.Fatalf("r1 = %d, want 5", st.R[1])
	}
}

func TestInvalidate(t *testing.T) {
	m, _, _ := newMgr(t)
	m.Take(0)
	m.Invalidate()
	if m.Valid() {
		t.Fatal("still valid after invalidate")
	}
	if _, ok := m.Rollback(); ok {
		t.Fatal("rollback after invalidate succeeded")
	}
}

func TestTakeResetsUndoLog(t *testing.T) {
	m, st, _ := newMgr(t)
	m.Take(0)
	w := isa.Outcome{MemWrite: true, MemAddr: 0x100, MemWSize: 8, MemWData: 1}
	m.BeforeStore(w)
	st.Mem.Store(w.MemAddr, w.MemWSize, w.MemWData)
	m.Take(10)
	if m.UndoLogLen() != 0 {
		t.Fatalf("undo log survived a new checkpoint: %d", m.UndoLogLen())
	}
	// Rolling back now must keep the newer value (it predates no logged
	// write).
	m.Rollback()
	if got := st.Mem.Load(0x100, 8); got != 1 {
		t.Fatalf("newer checkpoint rolled back too far: %d", got)
	}
}

// Property: for any sequence of stores after a checkpoint, rollback restores
// every touched word to its checkpointed contents.
func TestPropertyRollbackIsExact(t *testing.T) {
	if err := quick.Check(func(seed []uint16) bool {
		m, st, mem := newMgr(t)
		// Pre-checkpoint contents.
		for i, v := range seed {
			mem.Store(uint64(i)*8, 8, uint64(v))
		}
		before := make(map[uint64]uint64)
		for i := range seed {
			before[uint64(i)*8] = mem.Load(uint64(i)*8, 8)
		}
		m.Take(0)
		// Post-checkpoint stores to overlapping addresses.
		for i, v := range seed {
			o := isa.Outcome{
				MemWrite: true,
				MemAddr:  uint64(v%64) * 8,
				MemWSize: []uint8{1, 2, 4, 8}[i%4],
				MemWData: uint64(i) * 31,
			}
			m.BeforeStore(o)
			st.Mem.Store(o.MemAddr, o.MemWSize, o.MemWData)
		}
		m.Rollback()
		for addr, want := range before {
			if mem.Load(addr, 8) != want {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
