// Package checkpoint implements the coarse-grain checkpointing extension of
// the paper's Section 2.3 (in the spirit of SWICH [6] and Sorin et al. [7]):
//
//	"The key idea is to take a coarse-grain checkpoint when there are no
//	 unchecked lines in the ITR cache. ... Then in cases where the
//	 lightweight processor flush and restart is not possible, recovery can
//	 be done by rolling back to the previously taken coarse-grain
//	 checkpoint instead of aborting the program."
//
// A checkpoint is a register-file snapshot plus an undo log of memory words
// overwritten since the snapshot. Rolling back restores the registers and
// replays the undo log in reverse.
//
// When a rollback is *sufficient* is a policy of the pipeline layer: the
// paper's literal condition takes checkpoints only when the ITR cache holds
// no unchecked lines (sound, but run-once code can keep the condition from
// ever holding); the stamped generalization timestamps every installed
// signature and rolls back only when the machine-checked line postdates the
// checkpoint, which proves the corruption is covered by the undo log.
package checkpoint

import (
	"fmt"

	"itr/internal/isa"
)

// wordWrite records one overwritten memory word's previous contents.
type wordWrite struct {
	addr uint64 // 8-byte aligned
	old  uint64
}

// Stats counts checkpoint events.
type Stats struct {
	Taken       int64 // checkpoints established
	Rollbacks   int64 // successful rollbacks
	LoggedWords int64 // undo-log entries accumulated (lifetime)
}

// Manager maintains the active checkpoint over a committed architectural
// state. It must observe every committed store (BeforeStore) so the undo log
// stays complete. The zero value is not usable; call New.
type Manager struct {
	state *isa.ArchState
	mem   *isa.Memory

	valid  bool
	regs   [isa.NumRegs]uint64
	fregs  [isa.NumRegs]uint64
	pc     uint64
	seen   map[uint64]bool // words already logged since the checkpoint
	undo   []wordWrite
	commit int64 // committed instructions at checkpoint time

	// undoShared marks undo's backing array as referenced by a captured
	// State. Appends stay safe (captures are capacity-clamped, so growth is
	// invisible to them), but a reset must drop the array instead of
	// truncating in place, or later appends would overwrite the capture.
	undoShared bool

	stats Stats
}

// New builds a manager over the committed state. mem must be the concrete
// memory behind state.Mem (the manager reads old word values from it).
func New(state *isa.ArchState, mem *isa.Memory) (*Manager, error) {
	if state == nil || mem == nil {
		return nil, fmt.Errorf("checkpoint: nil state or memory")
	}
	return &Manager{state: state, mem: mem, seen: make(map[uint64]bool)}, nil
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// Valid reports whether a checkpoint is available to roll back to.
func (m *Manager) Valid() bool { return m.valid }

// CommittedAt returns the committed-instruction count of the active
// checkpoint.
func (m *Manager) CommittedAt() int64 { return m.commit }

// UndoLogLen returns the current undo-log length (words to restore on
// rollback).
func (m *Manager) UndoLogLen() int { return len(m.undo) }

// resetUndo empties the undo log. A backing array referenced by a captured
// State is abandoned rather than truncated, so the capture stays immutable.
func (m *Manager) resetUndo() {
	if m.undoShared {
		m.undo = nil
		m.undoShared = false
	} else {
		m.undo = m.undo[:0]
	}
	m.seen = make(map[uint64]bool)
}

// Take establishes a new checkpoint at the current committed state,
// discarding the previous one. committed is the committed-instruction count
// at this point; rollback-safety policy (the paper's "no unchecked lines"
// condition, or the stamped generalization) is decided by the caller.
func (m *Manager) Take(committed int64) {
	m.valid = true
	m.regs = m.state.R
	m.fregs = m.state.F
	m.pc = m.state.PC
	m.commit = committed
	m.resetUndo()
	m.stats.Taken++
}

// BeforeStore must be called with every committing store's outcome before it
// is applied to memory; it logs the previous contents of the touched words.
func (m *Manager) BeforeStore(o isa.Outcome) {
	if !m.valid || !o.MemWrite || o.MemWSize == 0 {
		return
	}
	addr := o.MemAddr &^ (uint64(o.MemWSize) - 1)
	wa := addr &^ 7
	if !m.seen[wa] {
		m.seen[wa] = true
		m.undo = append(m.undo, wordWrite{addr: wa, old: m.mem.Load(wa, 8)})
		m.stats.LoggedWords++
	}
}

// Rollback restores the committed state to the active checkpoint: registers,
// PC and all memory words written since. The checkpoint stays valid (the
// restored state is exactly the checkpointed state). It returns the
// checkpoint PC, or ok == false when no checkpoint exists.
func (m *Manager) Rollback() (restartPC uint64, ok bool) {
	if !m.valid {
		return 0, false
	}
	m.state.R = m.regs
	m.state.F = m.fregs
	m.state.PC = m.pc
	// Undo in reverse order; with first-write-wins logging the order is
	// immaterial, but reverse replay stays correct if the logging policy
	// ever changes.
	for i := len(m.undo) - 1; i >= 0; i-- {
		m.mem.Store(m.undo[i].addr, 8, m.undo[i].old)
	}
	m.resetUndo()
	m.stats.Rollbacks++
	return m.pc, true
}

// Invalidate drops the active checkpoint (e.g. when the machine gives up on
// checkpointed recovery).
func (m *Manager) Invalidate() {
	m.valid = false
	m.resetUndo()
}

// State is an immutable capture of a Manager's mutable state (the active
// checkpoint, undo log, and counters). The undo log is shared copy-on-write
// with the manager — the capture is capacity-clamped so the manager's later
// appends never reach it, and the manager abandons (rather than truncates) a
// shared backing array on reset. A State is never written through, so one
// state may be restored into many managers concurrently.
type State struct {
	valid  bool
	regs   [isa.NumRegs]uint64
	fregs  [isa.NumRegs]uint64
	pc     uint64
	undo   []wordWrite
	commit int64
	stats  Stats
}

// CaptureState snapshots the manager's mutable state in O(1): the undo log is
// shared by reference (capacity-clamped), not copied, and the logged-word set
// is not captured at all — it is always exactly the set of undo-log addresses,
// so RestoreState rebuilds it. The state/memory bindings are identity, not
// state, and are not captured.
func (m *Manager) CaptureState() *State {
	m.undoShared = len(m.undo) > 0
	return &State{
		valid:  m.valid,
		regs:   m.regs,
		fregs:  m.fregs,
		pc:     m.pc,
		undo:   m.undo[:len(m.undo):len(m.undo)],
		commit: m.commit,
		stats:  m.stats,
	}
}

// RestoreState overwrites the manager's mutable state with s, preserving the
// manager's identity and its state/memory bindings. The undo log is adopted
// by reference (appends grow a fresh array; resets abandon the shared one)
// and the logged-word set is rebuilt from the undo-log addresses.
func (m *Manager) RestoreState(s *State) {
	m.valid = s.valid
	m.regs = s.regs
	m.fregs = s.fregs
	m.pc = s.pc
	m.undo = s.undo
	m.undoShared = len(s.undo) > 0
	m.seen = make(map[uint64]bool, len(s.undo))
	for _, w := range s.undo {
		m.seen[w.addr] = true
	}
	m.commit = s.commit
	m.stats = s.stats
}
