package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func within(got, want, tolPct float64) bool {
	return math.Abs(got-want) <= want*tolPct/100
}

// The model must reproduce the paper's two published CACTI points.
func TestCalibrationICache(t *testing.T) {
	got, err := AccessEnergyNJ(Power4ICache)
	if err != nil {
		t.Fatal(err)
	}
	if !within(got, PaperICacheNJ, 1.0) {
		t.Fatalf("I-cache energy %.4f nJ, want %.2f (±1%%)", got, PaperICacheNJ)
	}
}

func TestCalibrationITRCache(t *testing.T) {
	got, err := AccessEnergyNJ(ITRCacheSinglePort)
	if err != nil {
		t.Fatal(err)
	}
	if !within(got, PaperITRCacheNJ, 1.0) {
		t.Fatalf("ITR cache energy %.4f nJ, want %.2f (±1%%)", got, PaperITRCacheNJ)
	}
}

func TestCalibrationITRCacheDualPort(t *testing.T) {
	got, err := AccessEnergyNJ(ITRCacheDualPort)
	if err != nil {
		t.Fatal(err)
	}
	if !within(got, PaperITRCacheDualNJ, 1.0) {
		t.Fatalf("dual-port ITR cache energy %.4f nJ, want %.2f (±1%%)", got, PaperITRCacheDualNJ)
	}
}

func TestEnergyMonotoneInSize(t *testing.T) {
	prev := 0.0
	for _, size := range []int{4096, 8192, 16384, 65536, 262144} {
		e, err := AccessEnergyNJ(CacheSpec{SizeBytes: size, Assoc: 2, LineBytes: 8})
		if err != nil {
			t.Fatal(err)
		}
		if e <= prev {
			t.Fatalf("energy not monotone at %d bytes: %v <= %v", size, e, prev)
		}
		prev = e
	}
}

func TestEnergySublinearInSize(t *testing.T) {
	small, _ := AccessEnergyNJ(CacheSpec{SizeBytes: 8192, Assoc: 2, LineBytes: 8})
	big, _ := AccessEnergyNJ(CacheSpec{SizeBytes: 8 * 8192, Assoc: 2, LineBytes: 8})
	if big >= 8*small {
		t.Fatalf("energy superlinear: 8x size gave %vx energy", big/small)
	}
	if big <= small {
		t.Fatal("bigger cache must cost more per access")
	}
}

func TestEnergyGrowsWithPortsAndWays(t *testing.T) {
	base, _ := AccessEnergyNJ(CacheSpec{SizeBytes: 8192, Assoc: 2, LineBytes: 8, Ports: 1})
	dual, _ := AccessEnergyNJ(CacheSpec{SizeBytes: 8192, Assoc: 2, LineBytes: 8, Ports: 2})
	if dual <= base {
		t.Fatal("extra port must cost energy")
	}
	w4, _ := AccessEnergyNJ(CacheSpec{SizeBytes: 8192, Assoc: 4, LineBytes: 8})
	if w4 <= base {
		t.Fatal("extra ways must cost energy")
	}
}

func TestEnergyTechScaling(t *testing.T) {
	e180, _ := AccessEnergyNJ(CacheSpec{SizeBytes: 8192, Assoc: 2, LineBytes: 8, TechNM: 180})
	e90, _ := AccessEnergyNJ(CacheSpec{SizeBytes: 8192, Assoc: 2, LineBytes: 8, TechNM: 90})
	if !within(e90, e180/4, 1) {
		t.Fatalf("quadratic tech scaling violated: %v vs %v/4", e90, e180)
	}
}

func TestEnergyFullyAssociativeSaturates(t *testing.T) {
	fa, err := AccessEnergyNJ(CacheSpec{SizeBytes: 8192, Assoc: 0, LineBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := AccessEnergyNJ(CacheSpec{SizeBytes: 8192, Assoc: 2, LineBytes: 8})
	if fa <= w2 {
		t.Fatal("fully associative must cost more than 2-way")
	}
	if fa > w2*5 {
		t.Fatalf("fa energy unsaturated: %v vs %v", fa, w2)
	}
}

func TestEnergyValidation(t *testing.T) {
	if _, err := AccessEnergyNJ(CacheSpec{SizeBytes: 0, LineBytes: 8}); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := AccessEnergyNJ(CacheSpec{SizeBytes: 4, LineBytes: 8}); err == nil {
		t.Fatal("line larger than cache accepted")
	}
	if _, err := AreaMM2(CacheSpec{SizeBytes: -1, LineBytes: 8}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestAreaModel(t *testing.T) {
	itr, err := AreaMM2(ITRCacheSinglePort)
	if err != nil {
		t.Fatal(err)
	}
	icache, _ := AreaMM2(Power4ICache)
	if itr <= 0 || icache <= itr {
		t.Fatalf("area ordering wrong: itr=%v icache=%v", itr, icache)
	}
	// 8 KiB at 0.18 um lands in the sub-mm^2 range.
	if itr > 2.0 {
		t.Fatalf("ITR cache area implausible: %v mm^2", itr)
	}
}

func TestAreaComparisonMatchesPaper(t *testing.T) {
	cmp := CompareAreas()
	if cmp.IUnitCM2 != 2.1 || cmp.ITRCacheCM2 != 0.3 {
		t.Fatalf("die photo constants: %+v", cmp)
	}
	if !within(cmp.Ratio, 7.0, 1) {
		t.Fatalf("ratio %v, paper says about one seventh", cmp.Ratio)
	}
}

func TestEnergyMJ(t *testing.T) {
	// 1e6 accesses at 1 nJ = 1 mJ.
	if got := EnergyMJ(1_000_000, 1.0); !within(got, 1.0, 0.001) {
		t.Fatalf("EnergyMJ = %v", got)
	}
}

func TestRedundantFetchAccesses(t *testing.T) {
	if got := RedundantFetchAccesses(200_000_000); got != 100_000_000 {
		t.Fatalf("accesses = %d", got)
	}
}

// Property: energy is positive and finite for any sane geometry.
func TestPropertyEnergyPositive(t *testing.T) {
	if err := quick.Check(func(sizeSel, lineSel, ways, ports uint8) bool {
		size := 1024 << (sizeSel % 8)
		line := 8 << (lineSel % 5)
		if line > size {
			return true
		}
		e, err := AccessEnergyNJ(CacheSpec{
			SizeBytes: size,
			Assoc:     int(ways%16) + 1,
			LineBytes: line,
			Ports:     int(ports%4) + 1,
		})
		return err == nil && e > 0 && !math.IsInf(e, 0) && !math.IsNaN(e)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
