// Package energy provides the analytic cache energy and area models behind
// the paper's Section 5 comparison (Figure 9 and the die-photo area
// argument).
//
// The paper feeds cache configurations into CACTI 3.0 at 0.18 um and
// multiplies per-access energy by access counts. CACTI itself is a large
// transistor-level model; this package substitutes a compact analytic form
//
//	E_access = (k * size^alpha + m * lineBits) * assocFactor * portFactor
//
// whose three behaviours match what Figure 9 depends on: energy grows
// sublinearly with capacity (bank/decoder scaling), linearly with the bits
// read per access, and with way count and port count. The constants are
// calibrated so the model reproduces the paper's two published CACTI points
// exactly:
//
//	IBM Power4-like I-cache (64 KiB, direct-mapped, 128 B line): 0.87 nJ
//	ITR cache (8 KiB, 2-way, 8 B line): 0.58 nJ (0.84 nJ with 1rd+1wr ports)
package energy

import (
	"fmt"
	"math"
)

// Calibrated model constants (0.18 um).
const (
	alpha = 0.195     // capacity exponent
	kCap  = 0.0901425 // nJ per size^alpha
	mLine = 8.4424e-5 // nJ per line bit read

	assocPerWay   = 0.10 // relative energy per extra way
	assocCap      = 3.0  // CAM-style structures saturate
	portOverhead  = 0.45 // relative energy per extra port
	refTechNM     = 180  // calibration technology node
	bitCellUM2    = 4.1  // SRAM cell area at 0.18 um, um^2 (6T cell)
	layoutFactor  = 1.45 // array overhead: decoders, sense amps, wiring
	portAreaExtra = 0.35 // area per extra port
)

// CacheSpec describes a cache for the energy/area model.
type CacheSpec struct {
	SizeBytes int
	Assoc     int // 0 = fully associative
	LineBytes int
	Ports     int // read/write ports (1 = single shared port)
	TechNM    int // technology node in nanometres (default 180)
}

// Validate checks the specification.
func (s CacheSpec) Validate() error {
	if s.SizeBytes <= 0 || s.LineBytes <= 0 || s.SizeBytes < s.LineBytes {
		return fmt.Errorf("invalid cache geometry: %d bytes, %d byte lines", s.SizeBytes, s.LineBytes)
	}
	if s.Ports < 0 {
		return fmt.Errorf("negative port count %d", s.Ports)
	}
	return nil
}

func (s CacheSpec) normalize() CacheSpec {
	if s.Ports == 0 {
		s.Ports = 1
	}
	if s.TechNM == 0 {
		s.TechNM = refTechNM
	}
	if s.Assoc == 0 { // fully associative
		s.Assoc = s.SizeBytes / s.LineBytes
	}
	return s
}

// techScale returns the energy scaling from the reference node: dynamic
// energy scales roughly with C*V^2, i.e. quadratically with feature size.
func techScale(nm int) float64 {
	f := float64(nm) / refTechNM
	return f * f
}

// AccessEnergyNJ returns the per-access energy in nanojoules.
func AccessEnergyNJ(s CacheSpec) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	s = s.normalize()
	lineBits := float64(s.LineBytes * 8)
	base := kCap*math.Pow(float64(s.SizeBytes), alpha) + mLine*lineBits
	assocF := 1 + assocPerWay*float64(s.Assoc-1)
	if assocF > assocCap {
		assocF = assocCap
	}
	portF := 1 + portOverhead*float64(s.Ports-1)
	return base * assocF * portF * techScale(s.TechNM), nil
}

// AreaMM2 returns an analytic area estimate in square millimetres: bit cells
// scaled by technology, layout overhead and porting.
func AreaMM2(s CacheSpec) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	s = s.normalize()
	bits := float64(s.SizeBytes * 8)
	f := float64(s.TechNM) / refTechNM
	cell := bitCellUM2 * f * f // um^2 per cell
	portF := 1 + portAreaExtra*float64(s.Ports-1)
	return bits * cell * layoutFactor * portF / 1e6, nil
}

// Reference specifications from the paper's Section 5.
var (
	// Power4ICache is the instruction cache used for the redundant-fetch
	// energy comparison: 64 KiB, direct-mapped, 128 B lines, one port.
	Power4ICache = CacheSpec{SizeBytes: 64 * 1024, Assoc: 1, LineBytes: 128, Ports: 1}
	// ITRCacheSinglePort is the paper's ITR cache: 8 KiB (1024 64-bit
	// signatures), 2-way, 8 B lines, one shared read/write port.
	ITRCacheSinglePort = CacheSpec{SizeBytes: 8 * 1024, Assoc: 2, LineBytes: 8, Ports: 1}
	// ITRCacheDualPort is the same array with separate read and write
	// ports.
	ITRCacheDualPort = CacheSpec{SizeBytes: 8 * 1024, Assoc: 2, LineBytes: 8, Ports: 2}
)

// Published CACTI values the model is calibrated against (nJ/access).
const (
	PaperICacheNJ       = 0.87
	PaperITRCacheNJ     = 0.58
	PaperITRCacheDualNJ = 0.84
)

// Die-photo areas from the IBM S/390 G5 (Section 5), in cm^2.
const (
	G5IUnitAreaCM2    = 2.1 // 1.5 cm x 1.4 cm: fetch + decode units
	G5ITRCacheAreaCM2 = 0.3 // 1.5 cm x 0.2 cm: BTB-like structure
)

// AreaComparison is the Section 5 area argument.
type AreaComparison struct {
	IUnitCM2    float64
	ITRCacheCM2 float64
	Ratio       float64 // I-unit area / ITR cache area (paper: ~7x)
}

// CompareAreas reproduces the die-photo comparison.
func CompareAreas() AreaComparison {
	return AreaComparison{
		IUnitCM2:    G5IUnitAreaCM2,
		ITRCacheCM2: G5ITRCacheAreaCM2,
		Ratio:       G5IUnitAreaCM2 / G5ITRCacheAreaCM2,
	}
}

// EnergyMJ converts an access count and per-access energy (nJ) to
// millijoules.
func EnergyMJ(accesses int64, perAccessNJ float64) float64 {
	return float64(accesses) * perAccessNJ * 1e-6
}

// FrontendAccessModel converts a dynamic instruction count to I-cache
// accesses. Fetch delivers about two useful instructions per I-cache access
// on average (taken branches and misalignment break fetch groups), the
// effective bandwidth behind Figure 9's I-cache bars.
const InstsPerICacheAccess = 2

// RedundantFetchAccesses returns the extra I-cache accesses a conventional
// time-redundant (or structurally duplicated) frontend performs to re-fetch
// dynInsts instructions.
func RedundantFetchAccesses(dynInsts int64) int64 {
	return dynInsts / InstsPerICacheAccess
}

// DetectorEnergyMJ maps a detection backend to its Section 5-style energy
// cost over one window, given the two measured ingredients: itrCacheMJ, the
// ITR cache's access-stream energy, and redundantFetchMJ, the I-cache energy
// of re-fetching every committed instruction once. The ITR checker pays only
// its cache stream; RepTFD-style chunked replay re-fetches each instruction
// once to rebuild the reference digest; DME-style divergent dual execution
// both re-fetches and re-executes, modeled as twice the redundant-fetch
// stream (fetch plus an execution pass of comparable datapath energy).
func DetectorEnergyMJ(detector string, itrCacheMJ, redundantFetchMJ float64) float64 {
	switch detector {
	case "reptfd":
		return redundantFetchMJ
	case "dme":
		return 2 * redundantFetchMJ
	default: // "itr" and the empty default
		return itrCacheMJ
	}
}
