package detect

import (
	"fmt"

	"itr/internal/core"
	"itr/internal/program"
	"itr/internal/sig"
	"itr/internal/trace"
)

// chunkFold mixes one trace signature into a chunk digest. The FNV-style
// multiply-xor keeps the fold order-sensitive, so two compensating faults
// inside a chunk cannot cancel the way a plain XOR would let them.
func chunkFold(digest, traceSig uint64) uint64 {
	return digest*1099511628211 ^ traceSig
}

// RepTFD is the chunked-replay detector: committed traces are folded into a
// fixed-length chunk digest while a deterministic replay of the same chunk
// (the memoized static decode walk) folds the fault-free digest, and the two
// are compared when the chunk closes. Faults are therefore detected with a
// latency of up to ChunkTraces committed traces — after the faulty instance
// retired — so the full protocol cannot flush-and-retry: it machine-checks,
// and only a coarse-grain checkpoint can turn that into recovery. A faulty
// trace inside a still-open chunk at window end goes undetected; that
// latency window is the mechanism's defining cost.
//
// The in-flight side reuses the ITR ROB purely as a dispatch-order FIFO
// (branch-checkpoint sequence numbers, misprediction rollback); no signature
// comparison happens before commit.
type RepTFD struct {
	mode core.Mode
	tab  *program.DecodeTable
	rob  *core.ROB
	memo map[uint64]uint64 // staticSig memo (pure; never captured)

	chunkTraces int

	// Open-chunk accumulation over the committed stream.
	chunkLen      int    // traces folded so far
	chunkSig      uint64 // digest of committed signatures
	replaySig     uint64 // digest of replayed (fault-free) signatures
	chunkStartPC  uint64 // start PC of the chunk's first trace
	chunkStartNow int64  // committed-instruction count at chunk start
	divSeen       bool   // first divergent trace inside the open chunk
	divPC         uint64
	divSig        uint64
	divOracle     uint64
	divSeq        uint64

	// A closed chunk whose digests disagreed, awaiting Poll (full mode).
	pending      bool
	pendingPC    uint64
	pendingStamp int64

	now        int64
	stats      core.Stats
	detections []core.Detection
}

// NewRepTFD builds a chunked-replay detector for prog.
func NewRepTFD(prog *program.Program, mode core.Mode, opts Options) (*RepTFD, error) {
	if err := checkMode(mode); err != nil {
		return nil, err
	}
	opts = opts.normalize()
	return &RepTFD{
		mode:        mode,
		tab:         prog.DecodeTable(),
		rob:         core.NewROB(64),
		memo:        make(map[uint64]uint64),
		chunkTraces: opts.ChunkTraces,
	}, nil
}

// DispatchTrace enqueues the trace in dispatch order. RepTFD does no
// dispatch-time checking; the entry only carries the signature to commit.
func (d *RepTFD) DispatchTrace(ev trace.Event, wrongPath bool) (seq uint64, ok bool) {
	if d.rob.Full() {
		return 0, false
	}
	d.stats.Dispatched++
	seq, _ = d.rob.Alloc(core.ROBEntry{
		StartPC: ev.StartPC, Sig: ev.Sig, Len: ev.Len,
		State: sig.CtrlChk, WrongPath: wrongPath,
	})
	return seq, true
}

// Full reports whether trace dispatch must stall for FIFO space.
func (d *RepTFD) Full() bool { return d.rob.Full() }

// PendingTraces returns the number of in-flight trace entries (for tests).
func (d *RepTFD) PendingTraces() int { return d.rob.Len() }

// PollQuick reports whether Poll would certainly proceed: no chunk mismatch
// is awaiting action.
func (d *RepTFD) PollQuick() bool { return !d.pending }

// Poll only ever acts on a closed mismatching chunk: by then the faulty
// instance committed, so the verdict is a machine check (detection-only; a
// checkpointed pipeline may still roll back).
func (d *RepTFD) Poll() core.Action {
	if !d.pending {
		return core.Action{Kind: core.ActionProceed}
	}
	if d.mode == core.ModeObserve {
		d.pending = false
		return core.Action{Kind: core.ActionProceed}
	}
	d.stats.MachineChecks++
	return core.Action{Kind: core.ActionMachineCheck, RestartPC: d.pendingPC}
}

// CommitTraceEnd folds the retiring trace into the open chunk, replays its
// fault-free signature, and closes the chunk at the configured length.
func (d *RepTFD) CommitTraceEnd() {
	h := d.rob.Head()
	if h == nil {
		return
	}
	if d.chunkLen == 0 {
		d.chunkStartPC = h.StartPC
		d.chunkStartNow = d.now
		d.divSeen = false
	}
	replayed := staticSig(d.tab, d.memo, h.StartPC)
	d.chunkSig = chunkFold(d.chunkSig, h.Sig)
	d.replaySig = chunkFold(d.replaySig, replayed)
	d.stats.ReplayedInsts += int64(h.Len)
	if !d.divSeen && h.Sig != replayed {
		d.divSeen = true
		d.divPC = h.StartPC
		d.divSig = h.Sig
		d.divOracle = replayed
		d.divSeq = d.rob.HeadSeq()
	}
	d.chunkLen++
	if d.chunkLen >= d.chunkTraces {
		d.closeChunk()
	}
	d.rob.PopHead()
}

// closeChunk compares the committed digest against the replay digest and
// records a detection on mismatch, attributing it to the first divergent
// trace so classification can ask which instance was faulty.
func (d *RepTFD) closeChunk() {
	d.stats.ChunksChecked++
	if d.chunkSig != d.replaySig && !d.pending {
		pc, accessSig, cachedSig, seq := d.chunkStartPC, d.chunkSig, d.replaySig, uint64(0)
		if d.divSeen {
			pc, accessSig, cachedSig, seq = d.divPC, d.divSig, d.divOracle, d.divSeq
		}
		d.stats.Mismatches++
		d.detections = append(d.detections, core.Detection{
			StartPC: pc, AccessSig: accessSig, CachedSig: cachedSig, Seq: seq,
		})
		d.pending = true
		d.pendingPC = pc
		d.pendingStamp = d.chunkStartNow
	}
	d.chunkLen = 0
	d.chunkSig = 0
	d.replaySig = 0
	d.divSeen = false
}

// SetNow provides the committed-instruction count (chunk-start stamps).
func (d *RepTFD) SetNow(committed int64) { d.now = committed }

// RollbackTo squashes in-flight entries younger than the branch checkpoint.
// Committed chunk accumulation is untouched: committed traces are final.
func (d *RepTFD) RollbackTo(keepSeq uint64) {
	before := d.rob.Len()
	d.rob.SquashAfter(keepSeq)
	d.stats.Squashed += int64(before - d.rob.Len())
}

// FlushAll squashes every in-flight entry.
func (d *RepTFD) FlushAll() {
	d.stats.Squashed += int64(d.rob.Len())
	d.rob.Clear()
}

// RetryArmed always reports false: RepTFD never retries.
func (d *RepTFD) RetryArmed() (uint64, bool) { return 0, false }

// Settled implements core.Detector. Every in-flight entry just carries its
// dispatched signature to commit, so under the caller's premise (all folds
// after cleanCommit are faithful) the only corrupted state that can still
// surface is a chunk that is pending action or an open chunk that started at
// or before cleanCommit and may have folded a corrupted trace. Divergence is
// irrelevant: each trace replays from its own start PC, so a faithfully
// dispatched trace matches its replay wherever control flow went.
func (d *RepTFD) Settled(cleanCommit int64, diverged bool) bool {
	return !d.pending && (d.chunkLen == 0 || d.chunkStartNow > cleanCommit)
}

// SafeToCheckpoint permits checkpoints only at chunk boundaries with no
// mismatch outstanding: an open chunk is committed-but-unverified state, the
// exact hazard the strict checkpoint policy exists to exclude.
func (d *RepTFD) SafeToCheckpoint() bool { return d.chunkLen == 0 && !d.pending }

// SignatureStamp reports when the pending mismatching chunk began, so
// checkpointed recovery can tell whether the corrupted chunk postdates the
// checkpoint (rollback sound) or straddles it.
func (d *RepTFD) SignatureStamp(pc uint64) (int64, bool) {
	if d.pending {
		return d.pendingStamp, true
	}
	return 0, false
}

// DiscardSignature clears the pending mismatch after a checkpoint rollback;
// the rolled-back re-execution accumulates fresh chunks.
func (d *RepTFD) DiscardSignature(pc uint64) {
	d.pending = false
	d.chunkLen = 0
	d.chunkSig = 0
	d.replaySig = 0
	d.divSeen = false
}

// Stats returns a copy of the event counters.
func (d *RepTFD) Stats() core.Stats { return d.stats }

// MismatchCount implements core.Detector.
func (d *RepTFD) MismatchCount() *int64 { return &d.stats.Mismatches }

// Detections returns all chunk mismatches observed so far.
func (d *RepTFD) Detections() []core.Detection {
	out := make([]core.Detection, len(d.detections))
	copy(out, d.detections)
	return out
}

// RepTFDState is an immutable capture of a RepTFD detector's mutable state.
type RepTFDState struct {
	core.BaseDetectorState

	rob         *core.ROB
	chunkTraces int

	chunkLen      int
	chunkSig      uint64
	replaySig     uint64
	chunkStartPC  uint64
	chunkStartNow int64
	divSeen       bool
	divPC         uint64
	divSig        uint64
	divOracle     uint64
	divSeq        uint64

	pending      bool
	pendingPC    uint64
	pendingStamp int64

	now        int64
	stats      core.Stats
	detections []core.Detection
}

// CaptureState snapshots the detector's mutable state. The staticSig memo is
// a pure function of the program and is deliberately not captured.
func (d *RepTFD) CaptureState() core.DetectorState {
	return &RepTFDState{
		rob:         d.rob.Clone(),
		chunkTraces: d.chunkTraces,

		chunkLen:      d.chunkLen,
		chunkSig:      d.chunkSig,
		replaySig:     d.replaySig,
		chunkStartPC:  d.chunkStartPC,
		chunkStartNow: d.chunkStartNow,
		divSeen:       d.divSeen,
		divPC:         d.divPC,
		divSig:        d.divSig,
		divOracle:     d.divOracle,
		divSeq:        d.divSeq,

		pending:      d.pending,
		pendingPC:    d.pendingPC,
		pendingStamp: d.pendingStamp,

		now:        d.now,
		stats:      d.stats,
		detections: clampDetections(d.detections),
	}
}

// RestoreState overwrites the detector's mutable state with a capture taken
// from an identically configured detector.
func (d *RepTFD) RestoreState(state core.DetectorState) error {
	s, ok := state.(*RepTFDState)
	if !ok {
		return fmt.Errorf("reptfd: restore from foreign detector state %T", state)
	}
	if s.chunkTraces != d.chunkTraces {
		return fmt.Errorf("reptfd: restore chunk length %d into detector with %d", s.chunkTraces, d.chunkTraces)
	}
	if err := d.rob.CopyFrom(s.rob); err != nil {
		return err
	}
	d.chunkLen = s.chunkLen
	d.chunkSig = s.chunkSig
	d.replaySig = s.replaySig
	d.chunkStartPC = s.chunkStartPC
	d.chunkStartNow = s.chunkStartNow
	d.divSeen = s.divSeen
	d.divPC = s.divPC
	d.divSig = s.divSig
	d.divOracle = s.divOracle
	d.divSeq = s.divSeq
	d.pending = s.pending
	d.pendingPC = s.pendingPC
	d.pendingStamp = s.pendingStamp
	d.now = s.now
	d.stats = s.stats
	// Adopt the capacity-clamped log by reference (copy-on-write append).
	d.detections = s.detections
	return nil
}

var _ core.Detector = (*RepTFD)(nil)
