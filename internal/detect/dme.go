package detect

import (
	"fmt"

	"itr/internal/core"
	"itr/internal/isa"
	"itr/internal/program"
	"itr/internal/sig"
	"itr/internal/trace"
)

// offsetBus decorrelates the shadow execution's address space: every load
// and store lands offset bytes away from the primary's, so a fault whose
// effect depends on absolute addresses cannot strike both executions the
// same way. Register values and PCs stay canonical (offset-free), which is
// what makes the lockstep compare meaningful.
type offsetBus struct {
	mem *isa.Memory
	off uint64
}

func (b offsetBus) Load(addr uint64, size uint8) uint64 { return b.mem.Load(addr+b.off, size) }

func (b offsetBus) Store(addr uint64, size uint8, v uint64) { b.mem.Store(addr+b.off, size, v) }

// DME is the divergent dual-execution detector. Two redundant comparisons
// bracket every committed trace:
//
//   - At dispatch, the trace's accumulated signature is compared against an
//     independent second decode (the memoized static walk). A mismatch is
//     pre-commit and recoverable: the protocol flushes and retries exactly
//     like ITR, and a second mismatch for the same trace machine-checks.
//
//   - Behind commit, a second golden-model execution advances trace by
//     trace through a decorrelated address space (all memory traffic offset
//     by AddrOffset; PCs and register values canonical). If the committed
//     stream's next trace is not where the dual execution's PC says it
//     should be, corrupted state steered control flow — a post-commit
//     machine-check-class detection that the per-trace compare missed.
//
// Unlike ITR, DME needs no warm-up and has no capacity misses — every trace
// is checked — but it pays for that with a full second execution.
type DME struct {
	mode core.Mode
	tab  *program.DecodeTable
	rob  *core.ROB
	memo map[uint64]uint64 // staticSig memo (pure; never captured)
	off  uint64

	// Shadow (dual) execution state: canonical registers and PC, memory
	// decorrelated through the offset bus.
	shadow    *isa.ArchState
	shadowMem *isa.Memory
	// resync re-anchors the shadow PC at the next committed trace (set
	// after a checkpoint rollback, whose horizon the shadow cannot rewind
	// to; see DiscardSignature).
	resync bool

	retryArmed bool
	retryPC    uint64

	// A committed-stream divergence awaiting Poll (full mode).
	pendingCheck bool
	pendingPC    uint64
	pendingStamp int64

	now        int64
	stats      core.Stats
	detections []core.Detection
}

// NewDME builds a divergent dual-execution detector for prog. The shadow
// starts at the program entry with empty decorrelated memory, mirroring the
// primary machine's reset state.
func NewDME(prog *program.Program, mode core.Mode, opts Options) (*DME, error) {
	if err := checkMode(mode); err != nil {
		return nil, err
	}
	opts = opts.normalize()
	mem := isa.NewMemory()
	d := &DME{
		mode:      mode,
		tab:       prog.DecodeTable(),
		rob:       core.NewROB(64),
		memo:      make(map[uint64]uint64),
		off:       opts.AddrOffset,
		shadow:    &isa.ArchState{Mem: offsetBus{mem: mem, off: opts.AddrOffset}},
		shadowMem: mem,
	}
	d.shadow.PC = prog.Entry
	return d, nil
}

// DispatchTrace performs the pre-commit compare: the trace's signature
// against the independent second decode of the same static trace.
func (d *DME) DispatchTrace(ev trace.Event, wrongPath bool) (seq uint64, ok bool) {
	if d.rob.Full() {
		return 0, false
	}
	ref := staticSig(d.tab, d.memo, ev.StartPC)
	entry := core.ROBEntry{
		StartPC: ev.StartPC, Sig: ev.Sig, CachedSig: ref, Len: ev.Len, WrongPath: wrongPath,
	}
	if ev.Sig == ref {
		entry.State = sig.CtrlChk
	} else {
		entry.State = sig.CtrlChkRetry
	}
	d.stats.Dispatched++
	d.stats.Hits++ // the reference is always available; DME never misses
	seq, _ = d.rob.Alloc(entry)
	return seq, true
}

// Full reports whether trace dispatch must stall for FIFO space.
func (d *DME) Full() bool { return d.rob.Full() }

// PendingTraces returns the number of in-flight trace entries (for tests).
func (d *DME) PendingTraces() int { return d.rob.Len() }

// PollQuick reports whether Poll would certainly proceed with no side
// effects: no committed-stream divergence pending and no head entry in the
// retry state.
func (d *DME) PollQuick() bool {
	if d.pendingCheck {
		return false
	}
	h := d.rob.Head()
	return h == nil || h.State == sig.CtrlChk
}

// record notes a detection exactly once per in-flight entry.
func (d *DME) record(h *core.ROBEntry) {
	if !h.MarkDetected() {
		return
	}
	d.stats.Mismatches++
	d.detections = append(d.detections, core.Detection{
		StartPC:   h.StartPC,
		AccessSig: h.Sig,
		CachedSig: h.CachedSig,
		Seq:       d.rob.HeadSeq(),
		OnRetry:   d.retryArmed && d.retryPC == h.StartPC,
	})
}

// Poll applies the commit rule: a pending committed-stream divergence
// machine-checks; a head entry whose dispatch compare mismatched flushes
// for retry (or machine-checks on the retry pass, mirroring ITR).
func (d *DME) Poll() core.Action {
	if d.pendingCheck {
		if d.mode == core.ModeObserve {
			d.pendingCheck = false
			return core.Action{Kind: core.ActionProceed}
		}
		d.stats.MachineChecks++
		return core.Action{Kind: core.ActionMachineCheck, RestartPC: d.pendingPC}
	}
	h := d.rob.Head()
	if h == nil {
		return core.Action{Kind: core.ActionProceed}
	}
	if h.State.Retry() {
		d.record(h)
		if d.mode == core.ModeObserve {
			return core.Action{Kind: core.ActionProceed}
		}
		if d.retryArmed && d.retryPC == h.StartPC {
			// The refetched instance still disagrees with the second
			// decode: the disagreement is persistent, not transient.
			d.retryArmed = false
			d.stats.MachineChecks++
			return core.Action{Kind: core.ActionMachineCheck, RestartPC: h.StartPC}
		}
		d.stats.Retries++
		pc := h.StartPC
		d.retryArmed = true
		d.retryPC = pc
		d.stats.Squashed += int64(d.rob.Len())
		d.rob.Clear()
		return core.Action{Kind: core.ActionRetry, RestartPC: pc}
	}
	return core.Action{Kind: core.ActionProceed}
}

// CommitTraceEnd retires the head trace: retry bookkeeping, then the dual
// execution advances through the same trace in its decorrelated space and
// checks that the committed stream is where its PC says it should be.
func (d *DME) CommitTraceEnd() {
	h := d.rob.Head()
	if h == nil {
		return
	}
	if h.State == sig.CtrlChk && d.retryArmed && d.retryPC == h.StartPC {
		// The retried instance matches the reference: transient confirmed.
		d.retryArmed = false
		d.stats.Recoveries++
	}
	d.advanceShadow(h)
	d.rob.PopHead()
}

// advanceShadow runs the dual execution through the retiring trace.
func (d *DME) advanceShadow(h *core.ROBEntry) {
	if d.pendingCheck {
		// A divergence already awaits action; the machine is about to
		// stop or roll back, so the shadow holds position.
		return
	}
	if d.resync {
		d.shadow.PC = h.StartPC
		d.resync = false
	}
	if d.shadow.PC != h.StartPC {
		// The primary committed a trace the dual execution did not reach:
		// corrupted state steered control flow past the per-trace compare.
		d.stats.Mismatches++
		d.detections = append(d.detections, core.Detection{
			StartPC:   h.StartPC,
			AccessSig: h.Sig,
			CachedSig: staticSig(d.tab, d.memo, h.StartPC),
			Seq:       d.rob.HeadSeq(),
		})
		if d.mode == core.ModeObserve {
			d.shadow.PC = h.StartPC // re-anchor and keep observing
		} else {
			d.pendingCheck = true
			d.pendingPC = h.StartPC
			d.pendingStamp = d.now
			return
		}
	}
	var out isa.Outcome
	for i := 0; i < h.Len; i++ {
		pc := d.shadow.PC
		d.shadow.ExecInto(&out, d.tab.Signals(pc), pc)
		d.shadow.ApplyRef(&out)
	}
	d.stats.ReplayedInsts += int64(h.Len)
}

// SetNow provides the committed-instruction count (divergence stamps).
func (d *DME) SetNow(committed int64) { d.now = committed }

// RollbackTo squashes in-flight entries younger than the branch checkpoint.
func (d *DME) RollbackTo(keepSeq uint64) {
	before := d.rob.Len()
	d.rob.SquashAfter(keepSeq)
	d.stats.Squashed += int64(before - d.rob.Len())
}

// FlushAll squashes every in-flight entry. The shadow is untouched: it only
// tracks committed state, which a flush does not change.
func (d *DME) FlushAll() {
	d.stats.Squashed += int64(d.rob.Len())
	d.rob.Clear()
}

// RetryArmed reports whether a flush-and-retry is outstanding.
func (d *DME) RetryArmed() (uint64, bool) { return d.retryPC, d.retryArmed }

// Settled implements core.Detector. The dual execution shadows the committed
// stream, so a permanently diverged stream keeps tripping the shadow-PC
// check forever — DME can never settle it. On a non-diverged stream the
// shadow stays in lockstep (committed outcomes equal golden, faithful static
// decode), so only transients block settlement: a pending divergence
// awaiting Poll, a scheduled re-anchor, an armed retry, or an in-flight
// entry whose dispatch compare already mismatched.
func (d *DME) Settled(cleanCommit int64, diverged bool) bool {
	if diverged || d.pendingCheck || d.resync || d.retryArmed {
		return false
	}
	settled := true
	d.rob.Visit(func(e *core.ROBEntry) {
		if e.State != sig.CtrlChk {
			settled = false
		}
	})
	return settled
}

// SafeToCheckpoint: every committed trace has already been checked against
// the second decode and the dual execution, so any quiescent point is safe.
func (d *DME) SafeToCheckpoint() bool { return !d.pendingCheck }

// SignatureStamp reports when the pending divergence was observed. DME holds
// no per-PC evidence older than that, so rollback is always worth trying.
func (d *DME) SignatureStamp(pc uint64) (int64, bool) {
	if d.pendingCheck {
		return d.pendingStamp, true
	}
	return 0, false
}

// DiscardSignature clears the pending divergence after a checkpoint
// rollback and schedules a shadow re-anchor: the dual execution cannot
// rewind its decorrelated memory to the checkpoint horizon, so it re-anchors
// its PC at the next committed trace and keeps checking control flow from
// there (a modeling simplification documented in DESIGN.md §9).
func (d *DME) DiscardSignature(pc uint64) {
	d.pendingCheck = false
	d.resync = true
}

// Stats returns a copy of the event counters.
func (d *DME) Stats() core.Stats { return d.stats }

// MismatchCount implements core.Detector.
func (d *DME) MismatchCount() *int64 { return &d.stats.Mismatches }

// Detections returns all mismatches observed so far.
func (d *DME) Detections() []core.Detection {
	out := make([]core.Detection, len(d.detections))
	copy(out, d.detections)
	return out
}

// DMEState is an immutable capture of a DME detector's mutable state. The
// shadow memory rides the paged store's copy-on-write snapshots, so captures
// are O(page table) like the machine's own.
type DMEState struct {
	core.BaseDetectorState

	rob *core.ROB
	off uint64

	shadowR   [isa.NumRegs]uint64
	shadowF   [isa.NumRegs]uint64
	shadowPC  uint64
	shadowMem *isa.Memory
	resync    bool

	retryArmed bool
	retryPC    uint64

	pendingCheck bool
	pendingPC    uint64
	pendingStamp int64

	now        int64
	stats      core.Stats
	detections []core.Detection
}

// CaptureState snapshots the detector's mutable state.
func (d *DME) CaptureState() core.DetectorState {
	return &DMEState{
		rob: d.rob.Clone(),
		off: d.off,

		shadowR:   d.shadow.R,
		shadowF:   d.shadow.F,
		shadowPC:  d.shadow.PC,
		shadowMem: d.shadowMem.Snapshot(),
		resync:    d.resync,

		retryArmed: d.retryArmed,
		retryPC:    d.retryPC,

		pendingCheck: d.pendingCheck,
		pendingPC:    d.pendingPC,
		pendingStamp: d.pendingStamp,

		now:        d.now,
		stats:      d.stats,
		detections: clampDetections(d.detections),
	}
}

// RestoreState overwrites the detector's mutable state with a capture taken
// from an identically configured detector, preserving the detector's
// identity (its shadow memory pointer stays wired into the offset bus).
func (d *DME) RestoreState(state core.DetectorState) error {
	s, ok := state.(*DMEState)
	if !ok {
		return fmt.Errorf("dme: restore from foreign detector state %T", state)
	}
	if s.off != d.off {
		return fmt.Errorf("dme: restore address offset %#x into detector with %#x", s.off, d.off)
	}
	if err := d.rob.CopyFrom(s.rob); err != nil {
		return err
	}
	d.shadow.R = s.shadowR
	d.shadow.F = s.shadowF
	d.shadow.PC = s.shadowPC
	d.shadowMem.CopyFrom(s.shadowMem)
	d.resync = s.resync
	d.retryArmed = s.retryArmed
	d.retryPC = s.retryPC
	d.pendingCheck = s.pendingCheck
	d.pendingPC = s.pendingPC
	d.pendingStamp = s.pendingStamp
	d.now = s.now
	d.stats = s.stats
	// Adopt the capacity-clamped log by reference (copy-on-write append).
	d.detections = s.detections
	return nil
}

var _ core.Detector = (*DME)(nil)
