package detect

import (
	"reflect"
	"strings"
	"testing"

	"itr/internal/core"
	"itr/internal/isa"
	"itr/internal/program"
)

// testProg builds a small loop with memory traffic for backend construction.
func testProg(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("detect-test")
	b.OpImm(isa.OpAddi, 1, 0, 100)
	b.OpImm(isa.OpAddi, 4, 0, 0x1000)
	b.Label("loop")
	b.OpImm(isa.OpAddi, 3, 3, 1)
	b.Store(isa.OpSd, 3, 4, 8)
	b.Load(isa.OpLd, 6, 4, 8)
	b.OpImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNamesAndCanonical(t *testing.T) {
	if got := Names(); !reflect.DeepEqual(got, []string{NameITR, NameRepTFD, NameDME}) {
		t.Fatalf("Names() = %v", got)
	}
	cases := []struct{ in, want string }{
		{"", NameITR},
		{"itr", NameITR},
		{"ITR", NameITR},
		{" reptfd ", NameRepTFD},
		{"Dme", NameDME},
		{"bogus", "bogus"},
	}
	for _, c := range cases {
		if got := Canonical(c.in); got != c.want {
			t.Errorf("Canonical(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestKnown(t *testing.T) {
	for _, name := range append(Names(), "", "ITR", " dme ") {
		if !Known(name) {
			t.Errorf("Known(%q) = false", name)
		}
	}
	for _, name := range []string{"bogus", "itr2", "replay"} {
		if Known(name) {
			t.Errorf("Known(%q) = true", name)
		}
	}
}

// TestPreCommit pins the classification contract: RepTFD's chunked replay is
// the only backend whose detections land after the faulty instance committed.
func TestPreCommit(t *testing.T) {
	for _, name := range []string{"", NameITR, NameDME, "DME"} {
		if !PreCommit(name) {
			t.Errorf("PreCommit(%q) = false", name)
		}
	}
	for _, name := range []string{NameRepTFD, "REPTFD", " reptfd "} {
		if PreCommit(name) {
			t.Errorf("PreCommit(%q) = true", name)
		}
	}
}

// TestNewDispatch checks the factory builds the right concrete backend (the
// empty name meaning ITR) and rejects unknown names and modes.
func TestNewDispatch(t *testing.T) {
	p := testProg(t)
	cfg := core.DefaultConfig()

	d, err := New("", p, cfg, core.ModeFull, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*core.Checker); !ok {
		t.Fatalf("New(\"\") built %T, want *core.Checker", d)
	}
	if d, err = New(NameRepTFD, p, cfg, core.ModeFull, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*RepTFD); !ok {
		t.Fatalf("New(reptfd) built %T", d)
	}
	if d, err = New(NameDME, p, cfg, core.ModeObserve, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*DME); !ok {
		t.Fatalf("New(dme) built %T", d)
	}

	if _, err := New("bogus", p, cfg, core.ModeFull, Options{}); err == nil {
		t.Fatal("unknown backend accepted")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error does not name the backend: %v", err)
	}
	for _, name := range Names() {
		if _, err := New(name, p, cfg, core.Mode(9), Options{}); err == nil {
			t.Errorf("%s: invalid mode accepted", name)
		}
	}
}

// TestRestoreRejectsForeignState: a capture only restores into a detector of
// the same backend with the same configuration — the sealed DetectorState
// types make any other pairing a descriptive error, not corruption.
func TestRestoreRejectsForeignState(t *testing.T) {
	p := testProg(t)
	rep, err := NewRepTFD(p, core.ModeFull, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dme, err := NewDME(p, core.ModeFull, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if err := rep.RestoreState(dme.CaptureState()); err == nil {
		t.Fatal("reptfd restored a DME capture")
	}
	if err := dme.RestoreState(rep.CaptureState()); err == nil {
		t.Fatal("dme restored a RepTFD capture")
	}

	rep2, err := NewRepTFD(p, core.ModeFull, Options{ChunkTraces: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep2.RestoreState(rep.CaptureState()); err == nil {
		t.Fatal("reptfd restored a capture with a different chunk length")
	}
	dme2, err := NewDME(p, core.ModeFull, Options{AddrOffset: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := dme2.RestoreState(dme.CaptureState()); err == nil {
		t.Fatal("dme restored a capture with a different address offset")
	}
}

// TestOptionsNormalize: the zero Options value means the documented defaults.
func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.ChunkTraces != DefaultChunkTraces || o.AddrOffset != DefaultAddrOffset {
		t.Fatalf("normalize(zero) = %+v", o)
	}
	o = Options{ChunkTraces: 3, AddrOffset: 1 << 16}.normalize()
	if o.ChunkTraces != 3 || o.AddrOffset != 1<<16 {
		t.Fatalf("normalize clobbered explicit options: %+v", o)
	}
}

// TestChunkFoldOrderSensitive: the RepTFD digest fold must distinguish the
// same signatures in a different order, or two compensating in-chunk faults
// could cancel.
func TestChunkFoldOrderSensitive(t *testing.T) {
	ab := chunkFold(chunkFold(0, 0xa), 0xb)
	ba := chunkFold(chunkFold(0, 0xb), 0xa)
	if ab == ba {
		t.Fatal("chunk fold is order-insensitive")
	}
}
