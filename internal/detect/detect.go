// Package detect hosts the pluggable fault-detection backends behind the
// core.Detector interface. The paper's ITR checker (internal/core) is the
// default and the bit-identity reference; this package adds the rival
// mechanisms the paper compares against only qualitatively:
//
//   - reptfd: RepTFD-style chunked replay detection. Committed traces are
//     folded into fixed-length chunk digests and compared against a
//     deterministic replay of the same chunk; a digest mismatch flags the
//     chunk. Detection is post-commit (latency = chunk length), so the full
//     protocol can only machine-check — or roll back to a coarse-grain
//     checkpoint — never flush-and-retry.
//
//   - dme: divergent dual-execution. Every dispatched trace is compared
//     against an independent second decode (pre-commit, ITR-like
//     flush-and-retry recovery), and a second golden-model execution runs
//     behind commit in an offset-decorrelated address space, catching
//     control-flow corruption that slips past the per-trace compare.
//
// Backends are selected by name through pipeline.Config.Detector and share
// the ITR checker's dispatch/poll/commit protocol, snapshot machinery and
// stats, so fault campaigns, energy accounting and the experiment engine
// drive all of them identically.
package detect

import (
	"fmt"
	"strings"

	"itr/internal/core"
	"itr/internal/isa"
	"itr/internal/program"
	"itr/internal/sig"
)

// Backend names accepted by New (and the -detector CLI flag).
const (
	// NameITR is the default backend: the paper's ITR checker.
	NameITR = "itr"
	// NameRepTFD is the chunked-replay rival.
	NameRepTFD = "reptfd"
	// NameDME is the divergent dual-execution rival.
	NameDME = "dme"
)

// Names lists the known backends in help order.
func Names() []string { return []string{NameITR, NameRepTFD, NameDME} }

// Canonical maps a user-supplied backend name to its canonical form: the
// empty string means the default ITR backend.
func Canonical(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return NameITR
	}
	return name
}

// Known reports whether name resolves to a registered backend.
func Known(name string) bool {
	switch Canonical(name) {
	case NameITR, NameRepTFD, NameDME:
		return true
	}
	return false
}

// PreCommit reports whether the backend detects a faulty instance before it
// commits, so flush-and-retry can rescue it. RepTFD's chunked replay only
// notices after the chunk committed; its detections are detection-only.
func PreCommit(name string) bool { return Canonical(name) != NameRepTFD }

// Tuning defaults for the rival backends.
const (
	// DefaultChunkTraces is the RepTFD replay-chunk length in traces. Short
	// chunks shrink detection latency; long chunks amortize the compare.
	DefaultChunkTraces = 8
	// DefaultAddrOffset is the DME address-space decorrelation offset. The
	// shadow execution's memory traffic lands offset by this many bytes, so
	// an address-dependent fault cannot strike both executions identically.
	DefaultAddrOffset = 1 << 32
)

// Options tunes the non-ITR backends. The zero value means the documented
// defaults, so it can ride inside comparable configuration structs.
type Options struct {
	// ChunkTraces is the RepTFD replay-chunk length in traces
	// (0 = DefaultChunkTraces).
	ChunkTraces int
	// AddrOffset is the DME decorrelation offset in bytes
	// (0 = DefaultAddrOffset).
	AddrOffset uint64
}

func (o Options) normalize() Options {
	if o.ChunkTraces <= 0 {
		o.ChunkTraces = DefaultChunkTraces
	}
	if o.AddrOffset == 0 {
		o.AddrOffset = DefaultAddrOffset
	}
	return o
}

// New builds the named detector backend for prog. cfg parameterizes the ITR
// cache (ITR backend only); mode selects observe/full exactly as for the
// checker. The empty name means ITR.
func New(name string, prog *program.Program, cfg core.Config, mode core.Mode, opts Options) (core.Detector, error) {
	switch Canonical(name) {
	case NameITR:
		return core.NewChecker(cfg, mode)
	case NameRepTFD:
		return NewRepTFD(prog, mode, opts)
	case NameDME:
		return NewDME(prog, mode, opts)
	}
	return nil, fmt.Errorf("unknown detector backend %q (have %s)", name, strings.Join(Names(), ", "))
}

func checkMode(mode core.Mode) error {
	if mode != core.ModeFull && mode != core.ModeObserve {
		return fmt.Errorf("unknown detector mode %d", mode)
	}
	return nil
}

// staticSig computes the fault-free signature of the static trace starting
// at pc by walking the memoized decode table with the trace-formation rule
// (terminate on a branching word, at MaxTraceLen, or at halt), memoizing per
// start PC. It is the rivals' independent second decode: the same role
// fault.SigOracle plays for campaign classification.
func staticSig(tab *program.DecodeTable, memo map[uint64]uint64, pc uint64) uint64 {
	if v, ok := memo[pc]; ok {
		return v
	}
	var acc sig.Accumulator
	cur := pc
	for {
		w := tab.Word(cur)
		acc.Add(w)
		if isa.WordIsBranching(w) || acc.Full() || isa.WordOpcode(w) == isa.OpHalt {
			break
		}
		cur++
	}
	memo[pc] = acc.Value()
	return acc.Value()
}

// clampDetections capacity-clamps a detection log for a capture, so the
// owner's next append grows a fresh backing array and the capture stays
// immutable (the same copy-on-write discipline core.CheckerState uses).
func clampDetections(d []core.Detection) []core.Detection {
	return d[:len(d):len(d)]
}
