package workload

import (
	"sync"

	"itr/internal/program"
	"itr/internal/trace"
)

// DefaultBudget is the default dynamic-instruction budget per benchmark. The
// paper simulates 200M instructions after a 900M skip; coverage ratios for
// these loop-structured workloads converge far below that, and every tool
// accepts a flag to raise the budget to paper scale.
const DefaultBudget = 4_000_000

// Events builds the benchmark program and returns its dynamic trace-event
// stream for the given instruction budget, along with the instructions
// executed. The stream is what drives the ITR cache: coverage sweeps replay
// it against many cache configurations without re-running the program.
func Events(p Profile, budget int64) ([]trace.Event, int64, error) {
	prog, err := Build(p)
	if err != nil {
		return nil, 0, err
	}
	events, executed := EventsOf(prog, budget)
	return events, executed, nil
}

// EventsOf streams an already-built program, returning the trace events and
// the number of dynamic instructions executed.
func EventsOf(prog *program.Program, budget int64) ([]trace.Event, int64) {
	events := make([]trace.Event, 0, budget/8)
	executed := trace.Stream(prog, budget, func(ev trace.Event) bool {
		events = append(events, ev)
		return true
	})
	return events, executed
}

// cacheEntry memoizes built programs and event streams per benchmark so that
// sweeps over 18 cache configurations pay for synthesis and functional
// execution once. Locking is per entry: the global map lock is held only for
// the cheap entry lookup, never during program synthesis or functional
// execution, so concurrent sweep workers generating *different* benchmarks
// proceed in parallel while workers asking for the *same* benchmark block
// until the first finishes and then reuse its result.
type cacheEntry struct {
	buildOnce sync.Once
	prog      *program.Program
	err       error

	mu     sync.Mutex // guards events/budget
	events []trace.Event
	budget int64
}

var (
	cacheMu sync.Mutex
	cached  = make(map[string]*cacheEntry)
)

// entryOf returns (creating if needed) the cache entry for a benchmark name.
func entryOf(name string) *cacheEntry {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	e := cached[name]
	if e == nil {
		e = &cacheEntry{}
		cached[name] = e
	}
	return e
}

// CachedProgram returns a memoized build of p. Safe for concurrent use; the
// returned Program is immutable after construction and may be shared freely.
func CachedProgram(p Profile) (*program.Program, error) {
	e := entryOf(p.Name)
	e.buildOnce.Do(func() { e.prog, e.err = Build(p) })
	return e.prog, e.err
}

// CachedEvents returns a memoized trace-event stream for p at the given
// budget. Streams cached at a different budget are regenerated. Safe for
// concurrent use; callers must treat the returned slice as read-only — it is
// shared by every caller at the same budget.
func CachedEvents(p Profile, budget int64) ([]trace.Event, error) {
	prog, err := CachedProgram(p)
	if err != nil {
		return nil, err
	}
	e := entryOf(p.Name)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.events == nil || e.budget != budget {
		e.events, _ = EventsOf(prog, budget)
		e.budget = budget
	}
	return e.events, nil
}
