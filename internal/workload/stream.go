package workload

import (
	"sort"
	"sync"
	"sync/atomic"

	"itr/internal/program"
	"itr/internal/sig"
	"itr/internal/trace"
)

// DefaultBudget is the default dynamic-instruction budget per benchmark. The
// paper simulates 200M instructions after a 900M skip; coverage ratios for
// these loop-structured workloads converge far below that, and every tool
// accepts a flag to raise the budget to paper scale.
const DefaultBudget = 4_000_000

// Events builds the benchmark program and returns its dynamic trace-event
// stream for the given instruction budget, along with the instructions
// executed. The stream is what drives the ITR cache: coverage sweeps replay
// it against many cache configurations without re-running the program.
func Events(p Profile, budget int64) ([]trace.Event, int64, error) {
	prog, err := Build(p)
	if err != nil {
		return nil, 0, err
	}
	events, executed := EventsOf(prog, budget)
	return events, executed, nil
}

// EventsOf streams an already-built program, returning the trace events and
// the number of dynamic instructions executed.
func EventsOf(prog *program.Program, budget int64) ([]trace.Event, int64) {
	events := make([]trace.Event, 0, budget/8)
	executed := trace.Stream(prog, budget, func(ev trace.Event) bool {
		events = append(events, ev)
		return true
	})
	return events, executed
}

// cacheEntry memoizes built programs and event streams per benchmark so that
// sweeps over 18 cache configurations pay for synthesis and functional
// execution once. Locking is per entry: the global map lock is held only for
// the cheap entry lookup, never during program synthesis or functional
// execution, so concurrent sweep workers generating *different* benchmarks
// proceed in parallel while workers asking for the *same* benchmark block
// until the first finishes and then reuse its result.
//
// The event cache is budget-monotonic: a stream generated at budget B serves
// every request b <= B as an exact prefix (see cutLocked), and a request
// beyond B regenerates at the larger budget. Requests therefore never thrash
// the cache by alternating between two budgets.
type cacheEntry struct {
	buildOnce sync.Once
	prog      *program.Program
	err       error

	mu     sync.Mutex // guards the fields below
	have   bool
	events []trace.Event
	cum    []int64 // cum[i] = dynamic instructions in events[:i+1]
	budget int64   // generation budget (events cover min(budget, program end))
}

var (
	cacheMu sync.Mutex
	cached  = make(map[string]*cacheEntry)

	// streamGens counts functional stream generations (cache misses); it
	// backs StreamInfo.Generated, sweep telemetry, and the cache-reuse tests.
	streamGens atomic.Int64
)

// entryOf returns (creating if needed) the cache entry for a benchmark name.
func entryOf(name string) *cacheEntry {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	e := cached[name]
	if e == nil {
		e = &cacheEntry{}
		cached[name] = e
	}
	return e
}

// CachedProgram returns a memoized build of p. Safe for concurrent use; the
// returned Program is immutable after construction and may be shared freely.
func CachedProgram(p Profile) (*program.Program, error) {
	e := entryOf(p.Name)
	e.buildOnce.Do(func() { e.prog, e.err = Build(p) })
	return e.prog, e.err
}

// executedLocked returns the dynamic instructions covered by the cached
// stream (0 when empty). Callers hold e.mu.
func (e *cacheEntry) executedLocked() int64 {
	if len(e.cum) == 0 {
		return 0
	}
	return e.cum[len(e.cum)-1]
}

// coversLocked reports whether the cached stream can serve a request at the
// given budget: either the cache was generated at that budget or beyond, or
// the program ended before exhausting the cached budget (so the stream is
// complete and no budget can extend it). Callers hold e.mu.
func (e *cacheEntry) coversLocked(budget int64) bool {
	if !e.have {
		return false
	}
	return budget <= e.budget || e.executedLocked() < e.budget
}

// generateLocked functionally executes prog for at most budget instructions,
// memoizing the event stream (with its cumulative instruction counts) and
// delivering each event to fn as it forms. Callers hold e.mu.
func (e *cacheEntry) generateLocked(prog *program.Program, budget int64, fn func(trace.Event)) {
	streamGens.Add(1)
	events := make([]trace.Event, 0, budget/8)
	cum := make([]int64, 0, budget/8)
	total := int64(0)
	trace.Stream(prog, budget, func(ev trace.Event) bool {
		events = append(events, ev)
		total += int64(ev.Len)
		cum = append(cum, total)
		if fn != nil {
			fn(ev)
		}
		return true
	})
	e.have = true
	e.events, e.cum, e.budget = events, cum, budget
}

// cutLocked locates the exact prefix of the cached stream that a fresh run
// at the given budget would produce: events[:k] whole events, plus — when the
// budget cuts through event k — a rebuilt partial tail covering its first
// tail.Len instructions. Callers hold e.mu and must have checked
// coversLocked.
func (e *cacheEntry) cutLocked(prog *program.Program, budget int64) (k int, tail trace.Event, hasTail bool) {
	k = sort.Search(len(e.cum), func(i int) bool { return e.cum[i] > budget })
	if k == len(e.events) {
		// The whole stream fits (budget at or past program end): a fresh run
		// would halt at the same point and emit the identical stream.
		return k, trace.Event{}, false
	}
	used := int64(0)
	if k > 0 {
		used = e.cum[k-1]
	}
	r := budget - used
	if r == 0 {
		// The budget lands exactly on an event boundary; event k never forms.
		return k, trace.Event{}, false
	}
	return k, partialPrefix(prog, e.events[k], int(r)), true
}

// partialPrefix rebuilds the partial event a budget-bound run emits when its
// limit cuts the given (longer) trace after r < ev.Len instructions: the
// trace former flushes the open trace with the signature of only the
// instructions that executed. Within a trace only the final instruction can
// branch, so instructions occupy consecutive PCs and the prefix signature is
// recomputable from the decode table without re-executing.
func partialPrefix(prog *program.Program, ev trace.Event, r int) trace.Event {
	tab := prog.DecodeTable()
	var acc sig.Accumulator
	for i := 0; i < r; i++ {
		acc.Add(tab.Word(ev.StartPC + uint64(i)))
	}
	return trace.Event{StartPC: ev.StartPC, Len: acc.Len(), Sig: acc.Value(), Partial: true}
}

// CachedEvents returns a memoized trace-event stream for p at the given
// budget — bit-identical to a fresh EventsOf run at that budget. A cached
// stream generated at a larger budget serves the request as a prefix
// re-slice (allocating only when the budget cuts an event in half); a
// request beyond the cached budget regenerates at the larger budget, which
// then serves both. Safe for concurrent use; callers must treat the returned
// slice as read-only — whole-prefix results share the cached backing array.
func CachedEvents(p Profile, budget int64) ([]trace.Event, error) {
	prog, err := CachedProgram(p)
	if err != nil {
		return nil, err
	}
	e := entryOf(p.Name)
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.coversLocked(budget) {
		e.generateLocked(prog, budget, nil)
	}
	k, tail, hasTail := e.cutLocked(prog, budget)
	if !hasTail {
		return e.events[:k:k], nil
	}
	out := make([]trace.Event, k+1)
	copy(out, e.events[:k])
	out[k] = tail
	return out, nil
}

// StreamEventSlices is StreamEvents for block consumers: it delivers the
// identical event sequence as at most two read-only slices — the cached
// whole-event prefix in place (zero copies, zero per-event calls) plus the
// rebuilt partial tail when the budget cuts an event in half. On a cache
// miss the stream is generated (and memoized) first, then delivered from the
// cache. fn must not retain or mutate the slices; they share the cached
// backing array.
//
// fn runs with the benchmark's cache entry locked and must not call back
// into this package for the same benchmark.
func StreamEventSlices(p Profile, budget int64, fn func([]trace.Event)) (StreamInfo, error) {
	prog, err := CachedProgram(p)
	if err != nil {
		return StreamInfo{}, err
	}
	e := entryOf(p.Name)
	e.mu.Lock()
	defer e.mu.Unlock()
	var info StreamInfo
	if !e.coversLocked(budget) {
		info.Generated = true
		e.generateLocked(prog, budget, nil)
	}
	k, tail, hasTail := e.cutLocked(prog, budget)
	if k > 0 {
		fn(e.events[:k:k])
		info.Events = int64(k)
		info.Insts = e.cum[k-1]
	}
	if hasTail {
		fn([]trace.Event{tail})
		info.Events++
		info.Insts += int64(tail.Len)
	}
	return info, nil
}

// StreamInfo summarizes one StreamEvents call for sweep telemetry.
type StreamInfo struct {
	// Events and Insts count the trace events delivered to fn and the
	// dynamic instructions they cover.
	Events int64
	Insts  int64
	// Generated reports whether the stream was functionally generated on
	// this call (a cache miss) rather than replayed from the memo cache.
	Generated bool
}

// StreamEvents drives fn over benchmark p's trace-event stream at the given
// budget — the single-traversal substrate of the sweep engine. A cached
// stream covering the budget is replayed in place (serving the exact prefix
// when the cache was generated at a larger budget, with no slice
// materialization); on a cache miss the program executes functionally and
// events are delivered to fn as they form, teeing into the memoization cache
// so later callers replay instead of re-executing. The event sequence fn
// observes is bit-identical to EventsOf(prog, budget).
//
// fn runs with the benchmark's cache entry locked and must not call back
// into this package for the same benchmark.
func StreamEvents(p Profile, budget int64, fn func(trace.Event)) (StreamInfo, error) {
	prog, err := CachedProgram(p)
	if err != nil {
		return StreamInfo{}, err
	}
	e := entryOf(p.Name)
	e.mu.Lock()
	defer e.mu.Unlock()
	var info StreamInfo
	if !e.coversLocked(budget) {
		info.Generated = true
		e.generateLocked(prog, budget, func(ev trace.Event) {
			info.Events++
			info.Insts += int64(ev.Len)
			fn(ev)
		})
		return info, nil
	}
	k, tail, hasTail := e.cutLocked(prog, budget)
	for i := 0; i < k; i++ {
		fn(e.events[i])
	}
	info.Events = int64(k)
	if k > 0 {
		info.Insts = e.cum[k-1]
	}
	if hasTail {
		fn(tail)
		info.Events++
		info.Insts += int64(tail.Len)
	}
	return info, nil
}
