package workload

import (
	"sync"

	"itr/internal/program"
	"itr/internal/trace"
)

// DefaultBudget is the default dynamic-instruction budget per benchmark. The
// paper simulates 200M instructions after a 900M skip; coverage ratios for
// these loop-structured workloads converge far below that, and every tool
// accepts a flag to raise the budget to paper scale.
const DefaultBudget = 4_000_000

// Events builds the benchmark program and returns its dynamic trace-event
// stream for the given instruction budget, along with the instructions
// executed. The stream is what drives the ITR cache: coverage sweeps replay
// it against many cache configurations without re-running the program.
func Events(p Profile, budget int64) ([]trace.Event, int64, error) {
	prog, err := Build(p)
	if err != nil {
		return nil, 0, err
	}
	events, executed := EventsOf(prog, budget)
	return events, executed, nil
}

// EventsOf streams an already-built program, returning the trace events and
// the number of dynamic instructions executed.
func EventsOf(prog *program.Program, budget int64) ([]trace.Event, int64) {
	events := make([]trace.Event, 0, budget/8)
	executed := trace.Stream(prog, budget, func(ev trace.Event) bool {
		events = append(events, ev)
		return true
	})
	return events, executed
}

// cacheEntry memoizes built programs and event streams per benchmark so that
// sweeps over 18 cache configurations pay for synthesis and functional
// execution once.
type cacheEntry struct {
	prog   *program.Program
	events []trace.Event
	budget int64
}

var (
	cacheMu sync.Mutex
	cached  = make(map[string]*cacheEntry)
)

// CachedProgram returns a memoized build of p.
func CachedProgram(p Profile) (*program.Program, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if e, ok := cached[p.Name]; ok && e.prog != nil {
		return e.prog, nil
	}
	prog, err := Build(p)
	if err != nil {
		return nil, err
	}
	e := cached[p.Name]
	if e == nil {
		e = &cacheEntry{}
		cached[p.Name] = e
	}
	e.prog = prog
	return prog, nil
}

// CachedEvents returns a memoized trace-event stream for p at the given
// budget. Streams cached at a different budget are regenerated.
func CachedEvents(p Profile, budget int64) ([]trace.Event, error) {
	prog, err := CachedProgram(p)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	e := cached[p.Name]
	if e.events == nil || e.budget != budget {
		e.events, _ = EventsOf(prog, budget)
		e.budget = budget
	}
	return e.events, nil
}
