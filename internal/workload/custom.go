package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// profileJSON is the on-disk form of a custom benchmark profile. Example:
//
//	{
//	  "name": "mydb",
//	  "fp": false,
//	  "staticTraces": 1200,
//	  "seed": 42,
//	  "components": [
//	    {"traces": 30, "iters": 200},
//	    {"traces": 400, "iters": 3},
//	    {"traces": 300, "iters": 1}
//	  ]
//	}
type profileJSON struct {
	Name         string `json:"name"`
	FP           bool   `json:"fp"`
	StaticTraces int    `json:"staticTraces"`
	Seed         uint64 `json:"seed"`
	BudgetScale  int    `json:"budgetScale,omitempty"`
	Components   []struct {
		Traces int `json:"traces"`
		Iters  int `json:"iters"`
	} `json:"components"`
}

// ParseProfile reads a custom benchmark profile from JSON. The profile can
// then be synthesized with Build and run through every experiment exactly
// like the built-in SPEC2K stand-ins.
func ParseProfile(r io.Reader) (Profile, error) {
	var pj profileJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pj); err != nil {
		return Profile{}, fmt.Errorf("parse profile: %w", err)
	}
	p := Profile{
		Name:         pj.Name,
		FP:           pj.FP,
		StaticTraces: pj.StaticTraces,
		Seed:         pj.Seed,
		BudgetScale:  pj.BudgetScale,
	}
	for _, c := range pj.Components {
		p.Components = append(p.Components, Component{Traces: c.Traces, Iters: c.Iters})
	}
	if err := ValidateProfile(p); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// ValidateProfile checks a profile's structural feasibility before the
// (more expensive) calibration loop runs.
func ValidateProfile(p Profile) error {
	if p.Name == "" {
		return fmt.Errorf("profile needs a name")
	}
	if len(p.Components) == 0 {
		return fmt.Errorf("profile %s: at least one component required", p.Name)
	}
	hot := 0
	for i, c := range p.Components {
		if c.Traces < 1 {
			return fmt.Errorf("profile %s: component %d has %d traces", p.Name, i, c.Traces)
		}
		if c.Iters < 0 {
			return fmt.Errorf("profile %s: component %d has negative iterations", p.Name, i)
		}
		hot += c.Traces
	}
	// Rough overhead floor: setup trace per component, init, loop control.
	// (wupwise sits at the floor exactly: 10 hot + 1 setup + 7 overhead.)
	overhead := len(p.Components) + 6
	if p.StaticTraces < hot+overhead {
		return fmt.Errorf("profile %s: staticTraces %d below hot traces %d + overhead %d",
			p.Name, p.StaticTraces, hot, overhead)
	}
	return nil
}

// MarshalProfile renders a profile as JSON (the inverse of ParseProfile).
func MarshalProfile(p Profile) ([]byte, error) {
	pj := profileJSON{
		Name:         p.Name,
		FP:           p.FP,
		StaticTraces: p.StaticTraces,
		Seed:         p.Seed,
		BudgetScale:  p.BudgetScale,
	}
	for _, c := range p.Components {
		pj.Components = append(pj.Components, struct {
			Traces int `json:"traces"`
			Iters  int `json:"iters"`
		}{c.Traces, c.Iters})
	}
	return json.MarshalIndent(pj, "", "  ")
}
