// Package workload synthesizes the benchmark programs that stand in for the
// paper's SPEC2K runs. Each profile is calibrated so that the resulting
// program reproduces the repetition characteristics the ITR mechanism is
// sensitive to:
//
//   - the static trace count of the paper's Table 1 (matched exactly by
//     construction: the synthesizer counts every trace it emits and pads
//     with cold code);
//   - the repeat-distance profile of Figures 3-4 (via loop-nest structure:
//     tight loops produce short distances, large loop bodies produce
//     capacity-scale distances, and straight-line phases repeat only at the
//     outer-cycle length);
//   - the popularity skew of Figures 1-2 (few hot traces dominating dynamic
//     instructions, plus a cold tail).
//
// The generated programs are real programs over the internal/isa instruction
// set — they execute functionally, run on the cycle-level pipeline, and their
// trace streams drive the ITR cache exactly as a SPEC binary would drive the
// paper's simulator.
package workload

import "fmt"

// Component is one loop nest of a synthetic benchmark, visited once per
// outer-loop cycle.
type Component struct {
	// Traces is the number of static traces in the loop body.
	Traces int
	// Iters is how many times the body executes per outer-cycle visit.
	// Iters == 1 models straight-line phase code: it repeats only at the
	// outer-cycle distance, the behaviour that stresses ITR cache capacity.
	Iters int
}

// Profile describes one synthetic benchmark.
type Profile struct {
	// Name matches the SPEC2K benchmark it stands in for.
	Name string
	// FP selects a floating-point instruction mix (SPECfp stand-ins).
	FP bool
	// StaticTraces is the Table 1 target: the synthesizer pads with cold
	// (executed-once) code until the program contains exactly this many
	// static traces.
	StaticTraces int
	// Components are the hot loop nests, visited in order each outer cycle.
	Components []Component
	// Seed makes instruction selection deterministic per benchmark.
	Seed uint64
	// BudgetScale multiplies the default instruction budget for benchmarks
	// whose static trace universe needs a longer window to be fully
	// observed (gcc's 24017 traces, mirroring why the paper simulates 200M
	// instructions). Zero means 1.
	BudgetScale int
}

// ScaledBudget applies the profile's budget multiplier.
func (p Profile) ScaledBudget(budget int64) int64 {
	if p.BudgetScale > 1 {
		return budget * int64(p.BudgetScale)
	}
	return budget
}

// HotTraces returns the number of static traces in hot components.
func (p Profile) HotTraces() int {
	n := 0
	for _, c := range p.Components {
		n += c.Traces
	}
	return n
}

func (p Profile) String() string {
	return fmt.Sprintf("%s(%d traces, %d components)", p.Name, p.StaticTraces, len(p.Components))
}

// The 16 benchmark profiles. Static trace counts are the paper's Table 1.
// Component structure is calibrated against the paper's Figures 3-4 anchors:
//   - bzip/gzip/art/mgrid/swim/wupwise: tight loops, negligible coverage loss;
//   - perl/vortex: large bodies and straight-line phases repeating far apart,
//     the highest coverage loss;
//   - gcc/twolf/apsi: notable but intermediate loss;
//   - remaining benchmarks: small loss, recoverable with modest caches.
var profiles = []Profile{
	// SPECint stand-ins.
	{Name: "bzip", StaticTraces: 283, Seed: 0xb21b,
		Components: []Component{{30, 220}, {25, 160}, {60, 60}}},
	{Name: "gap", StaticTraces: 696, Seed: 0x6a9,
		Components: []Component{{40, 200}, {80, 50}, {120, 18}, {160, 6}}},
	{Name: "gcc", StaticTraces: 24017, Seed: 0x6cc, BudgetScale: 10,
		Components: []Component{
			{25, 1000}, {30, 800}, {40, 500}, {80, 40}, {100, 30},
			{120, 25}, {150, 20}, {200, 15}, {250, 12}, {400, 1}, {400, 1},
		}},
	{Name: "gzip", StaticTraces: 291, Seed: 0x6219,
		Components: []Component{{25, 260}, {35, 140}, {55, 55}}},
	{Name: "parser", StaticTraces: 865, Seed: 0x9a54,
		Components: []Component{{50, 150}, {100, 40}, {150, 14}, {220, 3}}},
	{Name: "perl", StaticTraces: 1704, Seed: 0x9e41,
		Components: []Component{{40, 330}, {400, 3}, {400, 3}, {500, 1}}},
	{Name: "twolf", StaticTraces: 481, Seed: 0x2017,
		Components: []Component{{60, 60}, {120, 20}, {180, 5}, {80, 1}}},
	{Name: "vortex", StaticTraces: 2655, Seed: 0x0f7e,
		Components: []Component{{25, 300}, {30, 200}, {400, 3}, {400, 3}, {400, 3}, {550, 1}, {550, 1}}},
	{Name: "vpr", StaticTraces: 292, Seed: 0x09f4,
		Components: []Component{{35, 140}, {70, 65}, {90, 22}}},

	// SPECfp stand-ins.
	{Name: "applu", FP: true, StaticTraces: 282, Seed: 0xa931,
		Components: []Component{{60, 320}, {80, 110}, {100, 45}}},
	{Name: "apsi", FP: true, StaticTraces: 1274, Seed: 0xa851,
		Components: []Component{{80, 120}, {200, 8}, {250, 4}, {300, 1}}},
	{Name: "art", FP: true, StaticTraces: 98, Seed: 0xa47,
		Components: []Component{{30, 550}, {40, 220}}},
	{Name: "equake", FP: true, StaticTraces: 336, Seed: 0xe3a3,
		Components: []Component{{50, 330}, {90, 90}, {120, 22}}},
	{Name: "mgrid", FP: true, StaticTraces: 798, Seed: 0x369d,
		Components: []Component{{15, 4000}, {20, 2500}, {25, 1600}, {30, 1000}}},
	{Name: "swim", FP: true, StaticTraces: 73, Seed: 0x5319,
		Components: []Component{{25, 1100}, {30, 450}}},
	{Name: "wupwise", FP: true, StaticTraces: 18, Seed: 0x3389,
		Components: []Component{{10, 2600}}},
}

// Suite returns all 16 benchmark profiles in the paper's order
// (SPECint alphabetical, then SPECfp alphabetical).
func Suite() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// IntSuite returns the SPECint stand-ins.
func IntSuite() []Profile { return filter(false) }

// FPSuite returns the SPECfp stand-ins.
func FPSuite() []Profile { return filter(true) }

func filter(fp bool) []Profile {
	var out []Profile
	for _, p := range profiles {
		if p.FP == fp {
			out = append(out, p)
		}
	}
	return out
}

// CoverageSuite returns the 11 benchmarks shown in the paper's Figures 6-8
// (bzip, gzip, art, mgrid and wupwise are omitted there for having
// negligible coverage loss).
func CoverageSuite() []Profile {
	shown := map[string]bool{
		"gap": true, "gcc": true, "parser": true, "perl": true, "twolf": true,
		"vortex": true, "vpr": true, "applu": true, "apsi": true,
		"equake": true, "swim": true,
	}
	var out []Profile
	for _, p := range profiles {
		if shown[p.Name] {
			out = append(out, p)
		}
	}
	return out
}

// ByName returns the profile with the given benchmark name.
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("unknown benchmark %q", name)
}

// Names returns all benchmark names, SPECint first.
func Names() []string {
	names := make([]string, 0, len(profiles))
	for _, p := range profiles {
		names = append(names, p.Name)
	}
	return names
}
