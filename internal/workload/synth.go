package workload

import (
	"fmt"

	"itr/internal/isa"
	"itr/internal/program"
	"itr/internal/stats"
	"itr/internal/trace"
)

// Synthesizer layout constants.
const (
	// outerIters bounds the outer loop; runs are instruction-budget
	// limited, so this only needs to exceed any realistic budget's cycle
	// count.
	outerIters = 30000
	// dataBase is the start of the benchmark's data window.
	dataBase = 0x100000
	// runOnceColdMax is the largest cold-trace count emitted as a
	// run-once region; larger cold tails are sliced across outer cycles so
	// rarely-executed code stays distributed through the run (as in real
	// benchmarks) rather than front-loaded.
	runOnceColdMax = 150
)

// Reserved registers.
const (
	regZero      = isa.RegID(0)
	regOuter     = isa.RegID(1) // outer-loop countdown
	regInner     = isa.RegID(2) // inner-loop countdown
	regOne       = isa.RegID(3) // constant 1
	regBase      = isa.RegID(4) // data window base
	regOuterInit = isa.RegID(5) // initial outer count (run-once guard)
	regMask      = isa.RegID(6) // address mask constant
	regSlice     = isa.RegID(7) // cold-slice selector countdown
	tempLo       = isa.RegID(8)
	tempHi       = isa.RegID(23)
	scratch0     = isa.RegID(24)
	scratch1     = isa.RegID(25)
)

// Build synthesizes the program for profile p. The returned program contains
// exactly p.StaticTraces observable static traces; Build iterates cold-code
// padding until the static trace count (computed by structural walk) matches.
func Build(p Profile) (*program.Program, error) {
	if len(p.Components) == 0 {
		return nil, fmt.Errorf("profile %s: no components", p.Name)
	}
	// Initial guess: target minus hot traces minus per-component setup
	// minus rough control overhead.
	cold := p.StaticTraces - p.HotTraces() - len(p.Components) - 8
	if cold < 0 {
		cold = 0
	}
	for attempt := 0; attempt < 12; attempt++ {
		prog, err := assemble(p, cold)
		if err != nil {
			return nil, fmt.Errorf("assemble %s: %w", p.Name, err)
		}
		// The structural walk counts one never-executed trace: the halt
		// trace on the exit path.
		got := trace.StaticTraceCount(prog) - 1
		if got == p.StaticTraces {
			return prog, nil
		}
		cold += p.StaticTraces - got
		if cold < 0 {
			return nil, fmt.Errorf("profile %s: infeasible static trace target %d (overhead alone exceeds it)",
				p.Name, p.StaticTraces)
		}
	}
	return nil, fmt.Errorf("profile %s: static trace calibration did not converge", p.Name)
}

// MustBuild is Build for known-good profiles (tests, benchmarks).
func MustBuild(p Profile) *program.Program {
	prog, err := Build(p)
	if err != nil {
		panic(err)
	}
	return prog
}

// coldSlices picks how many outer cycles the cold tail is spread across.
func coldSlices(cold int) int {
	s := cold / 800
	if s < 2 {
		s = 2
	}
	if s > 12 {
		s = 12
	}
	return s
}

// gen carries synthesis state.
type gen struct {
	b      *program.Builder
	rng    *stats.RNG
	fp     bool
	labelN int
	tempN  int
	fpN    int
}

func (g *gen) newLabel(prefix string) string {
	g.labelN++
	return fmt.Sprintf("%s_%d", prefix, g.labelN)
}

func (g *gen) nextTemp() isa.RegID {
	g.tempN++
	return tempLo + isa.RegID(g.tempN%int(tempHi-tempLo+1))
}

func (g *gen) randTemp() isa.RegID {
	return tempLo + isa.RegID(g.rng.Intn(int(tempHi-tempLo+1)))
}

func (g *gen) nextFP() isa.RegID {
	g.fpN++
	return isa.RegID(1 + g.fpN%14)
}

func (g *gen) randFP() isa.RegID {
	return isa.RegID(1 + g.rng.Intn(14))
}

// neverTaken emits a trace-terminating branch that is statically never taken
// and whose taken-target is the next instruction (so it introduces no extra
// static trace start). A small fraction are unconditional jumps to the next
// instruction, which are always taken but land on the same start PC.
func (g *gen) neverTaken() {
	l := g.newLabel("nt")
	switch g.rng.Intn(6) {
	case 0:
		g.b.Branch(isa.OpBeq, regOne, regZero, l) // 1 == 0: never
	case 1:
		g.b.Branch(isa.OpBne, regOne, regOne, l) // 1 != 1: never
	case 2:
		g.b.Branch(isa.OpBlt, regOne, regZero, l) // 1 < 0: never
	case 3:
		g.b.Branch(isa.OpBge, regZero, regOne, l) // 0 >= 1: never
	case 4:
		g.b.Branch(isa.OpBltu, regOne, regZero, l) // 1 <u 0: never
	default:
		g.b.Jump(l) // taken, to the next instruction
	}
	g.b.Label(l)
}

// payload emits n instructions of benchmark-flavoured straight-line code.
func (g *gen) payload(n int) {
	emitted := 0
	for emitted < n {
		remaining := n - emitted
		emitted += g.payloadInst(remaining)
	}
}

// payloadInst emits one payload operation of at most budget instructions and
// returns how many instructions it emitted.
func (g *gen) payloadInst(budget int) int {
	r := g.rng
	if g.fp && r.Float64() < 0.45 {
		return g.fpInst(budget)
	}
	switch pick := r.Intn(100); {
	case pick < 22: // immediate ALU
		ops := []isa.Opcode{isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpSlti}
		g.b.OpImm(ops[r.Intn(len(ops))], g.nextTemp(), g.randTemp(), int16(r.Intn(4096)))
		return 1
	case pick < 44: // register ALU
		ops := []isa.Opcode{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSlt, isa.OpSltu}
		g.b.Op(ops[r.Intn(len(ops))], g.nextTemp(), g.randTemp(), g.randTemp())
		return 1
	case pick < 54: // shift
		ops := []isa.Opcode{isa.OpSll, isa.OpSrl, isa.OpSra}
		g.b.Shift(ops[r.Intn(len(ops))], g.nextTemp(), g.randTemp(), uint8(1+r.Intn(15)))
		return 1
	case pick < 62: // multiply
		g.b.Op(isa.OpMul, g.nextTemp(), g.randTemp(), g.randTemp())
		return 1
	case pick < 64: // divide
		g.b.Op(isa.OpDiv, g.nextTemp(), g.randTemp(), g.randTemp())
		return 1
	case pick < 78: // load, immediate-offset
		ops := []isa.Opcode{isa.OpLw, isa.OpLw, isa.OpLd, isa.OpLh, isa.OpLb}
		g.b.Load(ops[r.Intn(len(ops))], g.nextTemp(), regBase, int16(r.Intn(256)*8))
		return 1
	case pick < 84 && budget >= 3: // load, computed address within window
		g.b.Op(isa.OpAnd, scratch0, g.randTemp(), regMask)
		g.b.Op(isa.OpAdd, scratch0, scratch0, regBase)
		g.b.Load(isa.OpLw, g.nextTemp(), scratch0, 0)
		return 3
	case pick < 94: // store, immediate-offset
		ops := []isa.Opcode{isa.OpSw, isa.OpSd, isa.OpSh, isa.OpSb}
		g.b.Store(ops[r.Intn(len(ops))], g.randTemp(), regBase, int16(r.Intn(256)*8))
		return 1
	case pick < 97: // unaligned-word pair flavour
		g.b.Load(isa.OpLwl, g.nextTemp(), regBase, int16(r.Intn(256)*8))
		return 1
	default: // lui
		g.b.OpImm(isa.OpLui, g.nextTemp(), 0, int16(r.Intn(1<<12)))
		return 1
	}
}

// fpInst emits one floating-point payload operation.
func (g *gen) fpInst(budget int) int {
	r := g.rng
	switch pick := r.Intn(100); {
	case pick < 40:
		ops := []isa.Opcode{isa.OpFAdd, isa.OpFSub, isa.OpFMul}
		g.b.Op(ops[r.Intn(len(ops))], g.nextFP(), g.randFP(), g.randFP())
		return 1
	case pick < 46:
		g.b.Op(isa.OpFDiv, g.nextFP(), g.randFP(), g.randFP())
		return 1
	case pick < 56:
		ops := []isa.Opcode{isa.OpFNeg, isa.OpFMov}
		g.b.Op(ops[r.Intn(len(ops))], g.nextFP(), g.randFP(), 0)
		return 1
	case pick < 62:
		g.b.Op(isa.OpFCmp, g.nextFP(), g.randFP(), g.randFP())
		return 1
	case pick < 68:
		g.b.Op(isa.OpFCvt, g.nextFP(), g.randTemp(), 0)
		return 1
	case pick < 86:
		g.b.Load(isa.OpFLd, g.nextFP(), regBase, int16(r.Intn(256)*8))
		return 1
	default:
		g.b.Store(isa.OpFSd, g.randFP(), regBase, int16(r.Intn(256)*8))
		return 1
	}
}

// trace emits one complete hot/cold body trace: payload plus a never-taken
// terminator.
func (g *gen) trace() {
	g.payload(2 + g.rng.Intn(10)) // 2-11 payload instructions
	g.neverTaken()
}

// assemble lays the program out for the given cold-trace count.
func assemble(p Profile, cold int) (*program.Program, error) {
	g := &gen{b: program.NewBuilder(p.Name), rng: stats.NewRNG(p.Seed), fp: p.FP}
	b := g.b

	sliced := cold > runOnceColdMax
	slices := 0
	if sliced {
		slices = coldSlices(cold)
	}

	// --- init: constants, seeded temps, seeded memory, seeded fp regs ---
	b.OpImm(isa.OpAddi, regOne, 0, 1)
	b.LoadImm64(regBase, dataBase)
	b.OpImm(isa.OpAddi, regMask, 0, 0x7f8) // keeps computed addresses in a 2 KiB window
	b.OpImm(isa.OpAddi, regOuter, 0, outerIters)
	b.OpImm(isa.OpAddi, regOuterInit, 0, outerIters)
	if sliced {
		b.OpImm(isa.OpAddi, regSlice, 0, int16(slices-1))
	}
	g.neverTaken()
	// Seed the sixteen temp registers with distinct values.
	for i := tempLo; i <= tempHi; i++ {
		b.OpImm(isa.OpAddi, i, 0, int16(0x311+int(i)*0x67))
	}
	g.neverTaken()
	// Seed the data window and, for fp benchmarks, the fp register file.
	for i := 0; i < 8; i++ {
		b.Store(isa.OpSd, tempLo+isa.RegID(i), regBase, int16(i*8))
	}
	if p.FP {
		for i := 0; i < 8; i++ {
			b.Op(isa.OpFCvt, isa.RegID(1+i), tempLo+isa.RegID(i), 0)
		}
	}
	g.neverTaken()

	b.Label("outer_top")

	// --- cold code ---
	switch {
	case cold > 0 && !sliced:
		// Run-once region: executed on the first outer iteration only.
		b.Branch(isa.OpBne, regOuter, regOuterInit, "skip_cold")
		for i := 0; i < cold-1; i++ {
			g.trace()
		}
		b.Label("skip_cold")
	case sliced:
		// One slice of the cold tail executes per outer cycle, selected by
		// the regSlice countdown. Guards cost slices + control traces.
		bodies := cold - slices - 3 // slice guards + countdown control traces
		if bodies < 0 {
			bodies = 0
		}
		per := bodies / slices
		extra := bodies % slices
		for s := 0; s < slices; s++ {
			skip := g.newLabel("skipslice")
			b.OpImm(isa.OpAddi, scratch1, 0, int16(s))
			b.Branch(isa.OpBne, regSlice, scratch1, skip)
			n := per
			if s < extra {
				n++
			}
			for i := 0; i < n; i++ {
				g.trace()
			}
			b.Label(skip)
		}
	}

	// --- hot components ---
	for ci, c := range p.Components {
		top := fmt.Sprintf("inner_%d", ci)
		iters := c.Iters
		if iters < 1 {
			iters = 1
		}
		b.OpImm(isa.OpAddi, regInner, 0, int16(iters))
		g.neverTaken()
		b.Label(top)
		for t := 0; t < c.Traces-1; t++ {
			g.trace()
		}
		// Final body trace carries the loop bookkeeping.
		g.payload(1 + g.rng.Intn(8))
		b.OpImm(isa.OpAddi, regInner, regInner, -1)
		b.Branch(isa.OpBne, regInner, regZero, top)
	}

	// --- cold-slice countdown ---
	if sliced {
		b.OpImm(isa.OpAddi, regSlice, regSlice, -1)
		b.Branch(isa.OpBge, regSlice, regZero, "skip_reset")
		b.OpImm(isa.OpAddi, regSlice, 0, int16(slices-1))
		b.Label("skip_reset")
	}

	// --- outer-loop tail ---
	b.OpImm(isa.OpAddi, regOuter, regOuter, -1)
	b.Branch(isa.OpBeq, regOuter, regZero, "exit")
	b.Jump("outer_top")
	b.Label("exit")
	b.Halt()

	return b.Build()
}
