package workload

import (
	"bytes"
	"strings"
	"testing"

	"itr/internal/trace"
)

const customJSON = `{
  "name": "mydb",
  "fp": false,
  "staticTraces": 400,
  "seed": 42,
  "components": [
    {"traces": 30, "iters": 200},
    {"traces": 120, "iters": 3},
    {"traces": 100, "iters": 1}
  ]
}`

func TestParseProfileAndBuild(t *testing.T) {
	p, err := ParseProfile(strings.NewReader(customJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mydb" || p.StaticTraces != 400 || len(p.Components) != 3 {
		t.Fatalf("parsed: %+v", p)
	}
	prog, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	c := trace.Characterize(prog, 1_000_000)
	if got := c.StaticTraces(); got != 400 {
		t.Fatalf("custom profile calibrated to %d static traces, want 400", got)
	}
}

func TestParseProfileRejectsUnknownFields(t *testing.T) {
	if _, err := ParseProfile(strings.NewReader(`{"name":"x","staticTraces":50,"typo":1,"components":[{"traces":5,"iters":2}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	if _, err := ParseProfile(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestValidateProfile(t *testing.T) {
	cases := []struct {
		p    Profile
		want string
	}{
		{Profile{}, "name"},
		{Profile{Name: "x"}, "component"},
		{Profile{Name: "x", Components: []Component{{0, 1}}}, "traces"},
		{Profile{Name: "x", Components: []Component{{5, -1}}}, "negative"},
		{Profile{Name: "x", StaticTraces: 5, Components: []Component{{50, 1}}}, "below hot"},
	}
	for i, c := range cases {
		err := ValidateProfile(c.p)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: err = %v, want %q", i, err, c.want)
		}
	}
	good := Profile{Name: "ok", StaticTraces: 100, Components: []Component{{20, 5}}}
	if err := ValidateProfile(good); err != nil {
		t.Fatalf("good profile rejected: %v", err)
	}
}

func TestMarshalProfileRoundTrip(t *testing.T) {
	orig, err := ParseProfile(strings.NewReader(customJSON))
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalProfile(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseProfile(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.StaticTraces != orig.StaticTraces ||
		len(back.Components) != len(orig.Components) {
		t.Fatalf("round trip: %+v vs %+v", back, orig)
	}
	for i := range orig.Components {
		if back.Components[i] != orig.Components[i] {
			t.Fatalf("component %d: %+v vs %+v", i, back.Components[i], orig.Components[i])
		}
	}
}

func TestBuiltinProfilesValidate(t *testing.T) {
	for _, p := range Suite() {
		if err := ValidateProfile(p); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}
