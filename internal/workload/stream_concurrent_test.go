package workload

import (
	"sync"
	"testing"
)

// TestCachedConcurrent hammers the memoization cache from many goroutines —
// several benchmarks, each requested by several callers — the access pattern
// of the parallel sweep engine. Run under -race (CI does): it must be free
// of data races, every caller must observe the same memoized program and
// event slice, and different benchmarks must not corrupt each other.
func TestCachedConcurrent(t *testing.T) {
	names := []string{"bzip", "art", "gap", "equake"}
	const callers = 8
	const budget = 50_000

	type got struct {
		prog interface{}
		n    int
	}
	results := make([][]got, len(names))
	for i := range results {
		results[i] = make([]got, callers)
	}

	var wg sync.WaitGroup
	for ni, name := range names {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(ni, c int, p Profile) {
				defer wg.Done()
				prog, err := CachedProgram(p)
				if err != nil {
					t.Errorf("%s: CachedProgram: %v", p.Name, err)
					return
				}
				events, err := CachedEvents(p, budget)
				if err != nil {
					t.Errorf("%s: CachedEvents: %v", p.Name, err)
					return
				}
				results[ni][c] = got{prog: prog, n: len(events)}
			}(ni, c, p)
		}
	}
	wg.Wait()

	for ni, name := range names {
		first := results[ni][0]
		if first.prog == nil {
			t.Fatalf("%s: no result", name)
		}
		if first.n == 0 {
			t.Errorf("%s: empty event stream", name)
		}
		for c, r := range results[ni] {
			if r.prog != first.prog {
				t.Errorf("%s: caller %d observed a different program instance", name, c)
			}
			if r.n != first.n {
				t.Errorf("%s: caller %d observed %d events, caller 0 observed %d", name, c, r.n, first.n)
			}
		}
	}
}
