package workload

import (
	"reflect"
	"testing"

	"itr/internal/trace"
)

// prefixProfile returns a synthetic benchmark with its own (unique) cache
// entry, so generation-count assertions cannot race with other tests sharing
// the global memoization cache.
func prefixProfile(name string) Profile {
	return Profile{
		Name:         name,
		StaticTraces: 140,
		Components:   []Component{{40, 50}},
		Seed:         7,
	}
}

// freshEvents runs an uncached functional execution — the oracle every cached
// serving mode must match bit for bit.
func freshEvents(t *testing.T, p Profile, budget int64) []trace.Event {
	t.Helper()
	prog, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	events, _ := EventsOf(prog, budget)
	return events
}

// gens runs fn and returns how many functional stream generations it caused.
func gens(fn func()) int64 {
	before := streamGens.Load()
	fn()
	return streamGens.Load() - before
}

// TestCachedEventsServesPrefix: a stream cached at a large budget serves every
// smaller budget as an exact prefix — identical to a fresh run at that budget,
// including a cut landing exactly on an event boundary — without regenerating.
func TestCachedEventsServesPrefix(t *testing.T) {
	p := prefixProfile("prefix-serve")
	const big = 60_000
	full, err := CachedEvents(p, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("empty stream")
	}

	// An event-boundary budget and an arbitrary interior budget.
	boundary := int64(0)
	for _, ev := range full[:len(full)/2] {
		boundary += int64(ev.Len)
	}
	for _, budget := range []int64{boundary, 37_501, 1, big} {
		var got []trace.Event
		if n := gens(func() {
			var err error
			got, err = CachedEvents(p, budget)
			if err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("budget %d: caused %d regenerations, want 0", budget, n)
		}
		want := freshEvents(t, p, budget)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("budget %d: cached prefix (%d events) differs from fresh run (%d events)",
				budget, len(got), len(want))
		}
	}
}

// TestCachedEventsStraddlePartialTail pins the hard case: a budget cutting
// through the middle of a cached event must yield a rebuilt Partial tail whose
// length and signature match what the trace former emits on a fresh
// budget-bound run.
func TestCachedEventsStraddlePartialTail(t *testing.T) {
	p := prefixProfile("prefix-straddle")
	full, err := CachedEvents(p, 50_000)
	if err != nil {
		t.Fatal(err)
	}

	// Find an event of at least two instructions and cut it one short.
	cum := int64(0)
	cut := int64(-1)
	for _, ev := range full {
		if ev.Len >= 2 {
			cut = cum + int64(ev.Len) - 1
			break
		}
		cum += int64(ev.Len)
	}
	if cut < 0 {
		t.Fatal("no multi-instruction event found")
	}

	got, err := CachedEvents(p, cut)
	if err != nil {
		t.Fatal(err)
	}
	want := freshEvents(t, p, cut)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cut %d: cached %d events, fresh %d events; tails %+v vs %+v",
			cut, len(got), len(want), got[len(got)-1], want[len(want)-1])
	}
	tail := got[len(got)-1]
	if !tail.Partial {
		t.Fatalf("tail not marked partial: %+v", tail)
	}
}

// TestCachedEventsBudgetSequence is the anti-thrash property: alternating
// larger -> smaller -> larger requests within the cached budget never
// regenerate; only a request beyond the cached budget does, after which the
// larger cache serves everything.
func TestCachedEventsBudgetSequence(t *testing.T) {
	p := prefixProfile("prefix-thrash")
	ask := func(budget int64, wantGens int64) {
		t.Helper()
		if n := gens(func() {
			if _, err := CachedEvents(p, budget); err != nil {
				t.Fatal(err)
			}
		}); n != wantGens {
			t.Errorf("budget %d: %d generations, want %d", budget, n, wantGens)
		}
	}
	ask(40_000, 1) // cold: generate
	ask(10_000, 0) // prefix
	ask(40_000, 0) // full cached stream
	ask(10_000, 0) // prefix again — no thrash
	ask(55_000, 1) // beyond cache: regenerate once at the larger budget
	ask(40_000, 0) // now a prefix of the larger cache
	ask(55_000, 0)
}

// TestStreamEventsMatchesCachedEvents: the streaming entry point delivers the
// identical event sequence on both its paths (generation tee and cached
// replay), with accurate StreamInfo accounting.
func TestStreamEventsMatchesCachedEvents(t *testing.T) {
	p := prefixProfile("prefix-stream")
	const budget = 30_000

	collect := func(budget int64) ([]trace.Event, StreamInfo) {
		var got []trace.Event
		info, err := StreamEvents(p, budget, func(ev trace.Event) { got = append(got, ev) })
		if err != nil {
			t.Fatal(err)
		}
		return got, info
	}

	first, firstInfo := collect(budget)
	if !firstInfo.Generated {
		t.Error("first call should report a generation")
	}
	second, secondInfo := collect(budget)
	if secondInfo.Generated {
		t.Error("second call should replay from cache")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("generation tee and cached replay delivered different streams")
	}
	if !reflect.DeepEqual(first, freshEvents(t, p, budget)) {
		t.Fatal("streamed events differ from a fresh run")
	}

	for _, info := range []StreamInfo{firstInfo, secondInfo} {
		if info.Events != int64(len(first)) {
			t.Errorf("info.Events = %d, want %d", info.Events, len(first))
		}
		insts := int64(0)
		for _, ev := range first {
			insts += int64(ev.Len)
		}
		if info.Insts != insts {
			t.Errorf("info.Insts = %d, want %d", info.Insts, insts)
		}
	}

	// A prefix request delivers the same cut CachedEvents serves.
	streamed, info := collect(11_111)
	if info.Generated {
		t.Error("prefix request regenerated")
	}
	sliced, err := CachedEvents(p, 11_111)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, sliced) {
		t.Fatal("StreamEvents prefix differs from CachedEvents prefix")
	}
}
