package workload

import (
	"testing"

	"itr/internal/isa"
	"itr/internal/program"
	"itr/internal/trace"
)

func TestSuiteShape(t *testing.T) {
	all := Suite()
	if len(all) != 16 {
		t.Fatalf("suite size %d, want 16", len(all))
	}
	if len(IntSuite()) != 9 {
		t.Fatalf("int suite %d, want 9", len(IntSuite()))
	}
	if len(FPSuite()) != 7 {
		t.Fatalf("fp suite %d, want 7", len(FPSuite()))
	}
	if len(CoverageSuite()) != 11 {
		t.Fatalf("coverage suite %d, want 11 (paper Figures 6-8)", len(CoverageSuite()))
	}
}

// Table 1 of the paper, verbatim.
var table1 = map[string]int{
	"bzip": 283, "gap": 696, "gcc": 24017, "gzip": 291, "parser": 865,
	"perl": 1704, "twolf": 481, "vortex": 2655, "vpr": 292,
	"applu": 282, "apsi": 1274, "art": 98, "equake": 336, "mgrid": 798,
	"swim": 73, "wupwise": 18,
}

func TestProfilesMatchTable1(t *testing.T) {
	if len(table1) != 16 {
		t.Fatal("test fixture wrong")
	}
	for _, p := range Suite() {
		want, ok := table1[p.Name]
		if !ok {
			t.Errorf("benchmark %s not in Table 1", p.Name)
			continue
		}
		if p.StaticTraces != want {
			t.Errorf("%s: profile target %d, Table 1 says %d", p.Name, p.StaticTraces, want)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("vortex")
	if err != nil || p.StaticTraces != 2655 {
		t.Fatalf("ByName(vortex) = %+v, %v", p, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Names()) != 16 {
		t.Fatal("Names() incomplete")
	}
}

func TestScaledBudget(t *testing.T) {
	p := Profile{BudgetScale: 10}
	if got := p.ScaledBudget(100); got != 1000 {
		t.Fatalf("scaled = %d", got)
	}
	p.BudgetScale = 0
	if got := p.ScaledBudget(100); got != 100 {
		t.Fatalf("unscaled = %d", got)
	}
}

func TestBuildRejectsEmptyProfile(t *testing.T) {
	if _, err := Build(Profile{Name: "empty", StaticTraces: 10}); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestBuildRejectsInfeasibleTarget(t *testing.T) {
	p := Profile{Name: "tiny", StaticTraces: 3, Components: []Component{{10, 5}}}
	if _, err := Build(p); err == nil {
		t.Fatal("infeasible target accepted")
	}
}

// The central calibration property: every benchmark's dynamically observed
// static trace count equals the paper's Table 1 value exactly.
func TestStaticTraceCountsMatchTable1Dynamically(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite calibration check is not short")
	}
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := Build(p)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			budget := p.ScaledBudget(DefaultBudget)
			c := trace.Characterize(prog, budget)
			if got := c.StaticTraces(); got != p.StaticTraces {
				t.Errorf("observed %d static traces at budget %d, want %d", got, budget, p.StaticTraces)
			}
			if c.SignatureConflicts() != 0 {
				t.Error("signature conflicts detected: trace formation broken")
			}
		})
	}
}

func TestBuiltProgramsVerify(t *testing.T) {
	for _, p := range []string{"bzip", "vortex", "wupwise"} {
		prof, _ := ByName(p)
		prog, err := Build(prof)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := program.Verify(prog); err != nil {
			t.Errorf("%s does not verify: %v", p, err)
		}
	}
}

func TestProgramsAreDeterministic(t *testing.T) {
	prof, _ := ByName("gap")
	a, err := Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestProgramsRunWithoutHalting(t *testing.T) {
	// Benchmarks must be budget-limited, not self-terminating, at realistic
	// budgets.
	prof, _ := ByName("swim")
	prog, err := Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	executed, halted := program.Run(prog, 500_000, nil)
	if halted || executed != 500_000 {
		t.Fatalf("executed=%d halted=%v", executed, halted)
	}
}

func TestFPProfilesUseFPInstructions(t *testing.T) {
	prof, _ := ByName("swim")
	prog, err := Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	fp := 0
	for _, inst := range prog.Insts {
		if inst.Op.IsFP() {
			fp++
		}
	}
	if fp == 0 {
		t.Fatal("fp benchmark contains no fp instructions")
	}
	intProf, _ := ByName("gzip")
	intProg, err := Build(intProf)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range intProg.Insts {
		if inst.Op.IsFP() {
			t.Fatal("int benchmark contains fp instructions")
		}
	}
}

func TestEventsConsistentWithProgram(t *testing.T) {
	prof, _ := ByName("art")
	events, executed, err := Events(prof, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if executed != 100_000 {
		t.Fatalf("executed = %d", executed)
	}
	total := int64(0)
	for _, ev := range events {
		if ev.Len < 1 || ev.Len > isa.MaxTraceLen {
			t.Fatalf("bad trace length %d", ev.Len)
		}
		total += int64(ev.Len)
	}
	if total != executed {
		t.Fatalf("trace instructions %d != executed %d", total, executed)
	}
}

func TestCachedEventsMemoization(t *testing.T) {
	prof, _ := ByName("wupwise")
	a, err := CachedEvents(prof, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedEvents(prof, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("cached streams differ: %d vs %d", len(a), len(b))
	}
	// Different budget regenerates.
	c, err := CachedEvents(prof, 25_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) >= len(a) {
		t.Fatalf("smaller budget produced %d >= %d events", len(c), len(a))
	}
}

func TestHotTraces(t *testing.T) {
	p := Profile{Components: []Component{{10, 1}, {20, 5}}}
	if got := p.HotTraces(); got != 30 {
		t.Fatalf("hot = %d", got)
	}
}

// Distance-profile anchors from the paper's Figures 3-4 (Section 1 text):
// most integer benchmarks reach 85% of dynamic instructions within 5000;
// fp benchmarks (except apsi) within 1500; perl and vortex lag.
func TestDistanceAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization run is not short")
	}
	check := func(name string, dist int64, min, max float64) {
		prof, _ := ByName(name)
		prog, err := CachedProgram(prof)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c := trace.Characterize(prog, 1_000_000)
		got := c.RepeatFractionWithin(dist)
		if got < min || got > max {
			t.Errorf("%s: repeat fraction within %d = %.1f%%, want [%v, %v]", name, dist, got, min, max)
		}
	}
	check("bzip", 5000, 90, 100)
	check("wupwise", 1500, 95, 100)
	check("mgrid", 1500, 90, 100)
	check("vortex", 5000, 60, 92)
	check("perl", 5000, 70, 95)
}

// The sliced cold tail must actually distribute rarely-executed code across
// outer cycles: consecutive 500k-instruction windows of gcc observe
// different subsets of the static trace universe.
func TestSlicedColdSpreadsAcrossCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("gcc stream is not short")
	}
	prof, _ := ByName("gcc")
	prog, err := CachedProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	first := make(map[uint64]bool)
	second := make(map[uint64]bool)
	count := int64(0)
	trace.Stream(prog, 8_000_000, func(ev trace.Event) bool {
		count += int64(ev.Len)
		if count < 4_000_000 {
			first[ev.StartPC] = true
		} else {
			second[ev.StartPC] = true
		}
		return true
	})
	fresh := 0
	for pc := range second {
		if !first[pc] {
			fresh++
		}
	}
	if fresh < 500 {
		t.Fatalf("second window observed only %d new static traces; cold tail is front-loaded", fresh)
	}
}

// Run-once cold regions execute exactly once: their traces appear a single
// time in a long stream.
func TestRunOnceColdExecutesOnce(t *testing.T) {
	prof, _ := ByName("vpr") // small cold tail => run-once region
	prog, err := CachedProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	trace.Stream(prog, 2_000_000, func(ev trace.Event) bool {
		counts[ev.StartPC]++
		return true
	})
	once := 0
	for _, n := range counts {
		if n == 1 {
			once++
		}
	}
	if once < 50 {
		t.Fatalf("only %d run-once traces observed; expected a cold region", once)
	}
}

// Component structure determines reuse distance: a benchmark's inner-loop
// traces must repeat at roughly bodySize * averageTraceLength instructions.
func TestComponentDistanceStructure(t *testing.T) {
	prof := Profile{
		Name:         "synthetic",
		StaticTraces: 140,
		Components:   []Component{{40, 50}},
		Seed:         7,
	}
	prog, err := Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	c := trace.Characterize(prog, 500_000)
	// Body of 40 traces at ~8 instructions each: repeats land within 500.
	if got := c.RepeatFractionWithin(700); got < 80 {
		t.Fatalf("inner-loop repeats not tight: %.1f%% within 700", got)
	}
}
