// Package asm provides a plain-text assembler and disassembler for the
// synthetic ISA, so test programs and experiment inputs can be written as
// source files instead of builder calls. The syntax mirrors the
// disassembly printed by `itr dump`:
//
//	; comments run to end of line
//	        addi  r1, r0, 100      ; rd, rs1, imm
//	loop:   mul   r3, r2, r2       ; rd, rs1, rs2
//	        sd    r3, 8(r4)        ; store: data, offset(base)
//	        ld    r5, 8(r4)        ; load:  dest, offset(base)
//	        sll   r6, r5, 3        ; shift: rd, rs1, shamt
//	        bne   r1, r0, loop     ; branch: rs1, rs2, label
//	        j     done             ; direct jump to label
//	done:   halt
//
// Labels end with ':' and may share a line with an instruction. Registers
// are r0-r31 (or f0-f31 for floating point operands — the file is selected
// by the opcode). Immediates are decimal or 0x-hex, optionally negative.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"itr/internal/isa"
	"itr/internal/program"
)

// operand kinds an opcode expects, in source order.
type form int

const (
	formNone     form = iota // halt, nop
	formRRR                  // rd, rs1, rs2
	formRRI                  // rd, rs1, imm
	formRI                   // rd, imm (lui)
	formShift                // rd, rs1, shamt
	formLoad                 // rd, imm(rs1)
	formStore                // rs2, imm(rs1)
	formBranch               // rs1, rs2, label
	formJump                 // label
	formJumpLink             // rd, label
	formJumpReg              // rs1
	formJumpRegL             // rd, rs1
	formRR                   // rd, rs1 (fneg, fmov, fcvt)
)

var opForms = map[string]struct {
	op   isa.Opcode
	form form
}{
	"nop":  {isa.OpNop, formNone},
	"halt": {isa.OpHalt, formNone},

	"add": {isa.OpAdd, formRRR}, "sub": {isa.OpSub, formRRR},
	"and": {isa.OpAnd, formRRR}, "or": {isa.OpOr, formRRR},
	"xor": {isa.OpXor, formRRR}, "slt": {isa.OpSlt, formRRR},
	"sltu": {isa.OpSltu, formRRR}, "mul": {isa.OpMul, formRRR},
	"div": {isa.OpDiv, formRRR},

	"addi": {isa.OpAddi, formRRI}, "andi": {isa.OpAndi, formRRI},
	"ori": {isa.OpOri, formRRI}, "xori": {isa.OpXori, formRRI},
	"slti": {isa.OpSlti, formRRI},
	"lui":  {isa.OpLui, formRI},

	"sll": {isa.OpSll, formShift}, "srl": {isa.OpSrl, formShift},
	"sra": {isa.OpSra, formShift},

	"lb": {isa.OpLb, formLoad}, "lh": {isa.OpLh, formLoad},
	"lw": {isa.OpLw, formLoad}, "ld": {isa.OpLd, formLoad},
	"lwl": {isa.OpLwl, formLoad}, "lwr": {isa.OpLwr, formLoad},
	"fld": {isa.OpFLd, formLoad},
	"sb":  {isa.OpSb, formStore}, "sh": {isa.OpSh, formStore},
	"sw": {isa.OpSw, formStore}, "sd": {isa.OpSd, formStore},
	"fsd": {isa.OpFSd, formStore},

	"beq": {isa.OpBeq, formBranch}, "bne": {isa.OpBne, formBranch},
	"blt": {isa.OpBlt, formBranch}, "bge": {isa.OpBge, formBranch},
	"bltu": {isa.OpBltu, formBranch}, "bgeu": {isa.OpBgeu, formBranch},

	"j": {isa.OpJ, formJump}, "jal": {isa.OpJal, formJumpLink},
	"jr": {isa.OpJr, formJumpReg}, "jalr": {isa.OpJalr, formJumpRegL},

	"fadd": {isa.OpFAdd, formRRR}, "fsub": {isa.OpFSub, formRRR},
	"fmul": {isa.OpFMul, formRRR}, "fdiv": {isa.OpFDiv, formRRR},
	"fcmp": {isa.OpFCmp, formRRR},
	"fneg": {isa.OpFNeg, formRR}, "fmov": {isa.OpFMov, formRR},
	"fcvt": {isa.OpFCvt, formRR},
}

// SyntaxError reports a parse failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

// Assemble parses source text into a program named name.
func Assemble(name, src string) (*program.Program, error) {
	b := program.NewBuilder(name)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading labels (possibly several).
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !isIdent(label) {
				break
			}
			b.Label(label)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		if err := parseInst(b, line); err != nil {
			return nil, &SyntaxError{Line: lineNo + 1, Msg: err.Error()}
		}
	}
	return b.Build()
}

// MustAssemble is Assemble for known-good sources in tests and examples.
func MustAssemble(name, src string) *program.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseInst(b *program.Builder, line string) error {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	spec, ok := opForms[strings.ToLower(mnemonic)]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	args := splitArgs(rest)

	switch spec.form {
	case formNone:
		if len(args) != 0 {
			return fmt.Errorf("%s takes no operands", mnemonic)
		}
		b.Emit(isa.Instruction{Op: spec.op})
	case formRRR:
		rd, rs1, rs2, err := reg3(args)
		if err != nil {
			return err
		}
		b.Op(spec.op, rd, rs1, rs2)
	case formRR:
		if len(args) != 2 {
			return fmt.Errorf("%s wants rd, rs1", mnemonic)
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		rs1, err := reg(args[1])
		if err != nil {
			return err
		}
		b.Op(spec.op, rd, rs1, 0)
	case formRRI:
		if len(args) != 3 {
			return fmt.Errorf("%s wants rd, rs1, imm", mnemonic)
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		rs1, err := reg(args[1])
		if err != nil {
			return err
		}
		imm, err := immediate(args[2])
		if err != nil {
			return err
		}
		b.OpImm(spec.op, rd, rs1, imm)
	case formRI:
		if len(args) != 2 {
			return fmt.Errorf("%s wants rd, imm", mnemonic)
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		imm, err := immediate(args[1])
		if err != nil {
			return err
		}
		b.OpImm(spec.op, rd, 0, imm)
	case formShift:
		if len(args) != 3 {
			return fmt.Errorf("%s wants rd, rs1, shamt", mnemonic)
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		rs1, err := reg(args[1])
		if err != nil {
			return err
		}
		sh, err := immediate(args[2])
		if err != nil {
			return err
		}
		if sh < 0 || sh > 31 {
			return fmt.Errorf("shift amount %d out of range", sh)
		}
		b.Shift(spec.op, rd, rs1, uint8(sh))
	case formLoad, formStore:
		if len(args) != 2 {
			return fmt.Errorf("%s wants reg, off(base)", mnemonic)
		}
		r, err := reg(args[0])
		if err != nil {
			return err
		}
		off, base, err := memOperand(args[1])
		if err != nil {
			return err
		}
		if spec.form == formLoad {
			b.Load(spec.op, r, base, off)
		} else {
			b.Store(spec.op, r, base, off)
		}
	case formBranch:
		if len(args) != 3 {
			return fmt.Errorf("%s wants rs1, rs2, label", mnemonic)
		}
		rs1, err := reg(args[0])
		if err != nil {
			return err
		}
		rs2, err := reg(args[1])
		if err != nil {
			return err
		}
		if !isIdent(args[2]) {
			return fmt.Errorf("bad branch target %q", args[2])
		}
		b.Branch(spec.op, rs1, rs2, args[2])
	case formJump:
		if len(args) != 1 || !isIdent(args[0]) {
			return fmt.Errorf("%s wants a label", mnemonic)
		}
		b.Jump(args[0])
	case formJumpLink:
		if len(args) != 2 || !isIdent(args[1]) {
			return fmt.Errorf("%s wants rd, label", mnemonic)
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		b.Call(args[1], rd)
	case formJumpReg:
		if len(args) != 1 {
			return fmt.Errorf("%s wants rs1", mnemonic)
		}
		rs1, err := reg(args[0])
		if err != nil {
			return err
		}
		b.Return(rs1)
	case formJumpRegL:
		if len(args) != 2 {
			return fmt.Errorf("%s wants rd, rs1", mnemonic)
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		rs1, err := reg(args[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Instruction{Op: spec.op, Rd: rd, Rs1: rs1})
	}
	return nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func reg(s string) (isa.RegID, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'f' && s[0] != 'R' && s[0] != 'F') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.RegID(n), nil
}

func immediate(s string) (int16, error) {
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<15) || v >= 1<<16 {
		return 0, fmt.Errorf("immediate %d out of 16-bit range", v)
	}
	return int16(v), nil
}

// memOperand parses "off(base)".
func memOperand(s string) (int16, isa.RegID, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q, want off(base)", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err := immediate(offStr)
	if err != nil {
		return 0, 0, err
	}
	base, err := reg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}

// Disassemble renders a program as re-assemblable source with labels for
// every control-flow target.
func Disassemble(p *program.Program) string {
	labels := make(map[uint64]string)
	nextLabel := 0
	ensure := func(pc uint64) string {
		if l, ok := labels[pc]; ok {
			return l
		}
		l := fmt.Sprintf("L%d", nextLabel)
		nextLabel++
		labels[pc] = l
		return l
	}
	// First pass: name all targets.
	for pc, inst := range p.Insts {
		d := isa.Decode(inst)
		switch {
		case inst.Op == isa.OpJ || inst.Op == isa.OpJal:
			ensure(uint64(inst.Target))
		case d.IsBranching() && !d.HasFlag(isa.FlagUncond):
			ensure(uint64(int64(pc) + 1 + int64(int16(inst.Imm))))
		}
	}
	var sb strings.Builder
	for pc, inst := range p.Insts {
		if l, ok := labels[uint64(pc)]; ok {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		sb.WriteString("\t")
		sb.WriteString(renderInst(p, uint64(pc), inst, labels))
		sb.WriteString("\n")
	}
	return sb.String()
}

func renderInst(p *program.Program, pc uint64, inst isa.Instruction, labels map[uint64]string) string {
	d := isa.Decode(inst)
	name := inst.Op.String()
	switch {
	case inst.Op == isa.OpHalt || inst.Op == isa.OpNop:
		return name
	case inst.Op == isa.OpJ:
		return fmt.Sprintf("%s %s", name, labels[uint64(inst.Target)])
	case inst.Op == isa.OpJal:
		return fmt.Sprintf("%s r%d, %s", name, inst.Rd, labels[uint64(inst.Target)])
	case inst.Op == isa.OpJr:
		return fmt.Sprintf("%s r%d", name, inst.Rs1)
	case inst.Op == isa.OpJalr:
		return fmt.Sprintf("%s r%d, r%d", name, inst.Rd, inst.Rs1)
	case d.IsBranching():
		target := uint64(int64(pc) + 1 + int64(int16(inst.Imm)))
		return fmt.Sprintf("%s r%d, r%d, %s", name, inst.Rs1, inst.Rs2, labels[target])
	case d.HasFlag(isa.FlagLd):
		return fmt.Sprintf("%s r%d, %d(r%d)", name, inst.Rd, int16(inst.Imm), inst.Rs1)
	case d.HasFlag(isa.FlagSt):
		return fmt.Sprintf("%s r%d, %d(r%d)", name, inst.Rs2, int16(inst.Imm), inst.Rs1)
	case inst.Op == isa.OpSll || inst.Op == isa.OpSrl || inst.Op == isa.OpSra:
		return fmt.Sprintf("%s r%d, r%d, %d", name, inst.Rd, inst.Rs1, inst.Shamt)
	case inst.Op == isa.OpLui:
		return fmt.Sprintf("%s r%d, %d", name, inst.Rd, int16(inst.Imm))
	case d.HasFlag(isa.FlagDisp):
		return fmt.Sprintf("%s r%d, r%d, %d", name, inst.Rd, inst.Rs1, int16(inst.Imm))
	case inst.Op == isa.OpFNeg || inst.Op == isa.OpFMov || inst.Op == isa.OpFCvt:
		return fmt.Sprintf("%s r%d, r%d", name, inst.Rd, inst.Rs1)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", name, inst.Rd, inst.Rs1, inst.Rs2)
	}
}

func reg3(args []string) (rd, rs1, rs2 isa.RegID, err error) {
	if len(args) != 3 {
		return 0, 0, 0, fmt.Errorf("want rd, rs1, rs2")
	}
	if rd, err = reg(args[0]); err != nil {
		return
	}
	if rs1, err = reg(args[1]); err != nil {
		return
	}
	rs2, err = reg(args[2])
	return
}
