package asm

import (
	"strings"
	"testing"

	"itr/internal/isa"
	"itr/internal/program"
)

const loopSrc = `
; sum of squares
        addi  r1, r0, 100
        addi  r4, r0, 0x1000
loop:   addi  r2, r2, 1
        mul   r3, r2, r2
        sd    r3, 8(r4)
        ld    r5, 8(r4)
        sll   r6, r5, 2
        addi  r1, r1, -1
        bne   r1, r0, loop
        halt
`

func TestAssembleAndRun(t *testing.T) {
	p, err := Assemble("loop", loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	executed, halted := program.Run(p, 0, nil)
	if !halted {
		t.Fatal("did not halt")
	}
	// 2 init + 100*7 + halt = 703
	if executed != 703 {
		t.Fatalf("executed %d", executed)
	}
}

func TestAssembleLabelsAndComments(t *testing.T) {
	src := `
start:  addi r1, r0, 1   ; comment
second: third: add r2, r1, r1 # hash comment
        beq r0, r0, start
        halt
`
	p, err := Assemble("labels", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("len = %d", p.Len())
	}
	// Branch to start (pc 0) from pc 2: displacement -3.
	if got := int16(p.Insts[2].Imm); got != -3 {
		t.Fatalf("branch displacement %d", got)
	}
}

func TestAssembleJumpAndCall(t *testing.T) {
	src := `
        jal r31, fn
        halt
fn:     addi r5, r0, 7
        jr r31
`
	p, err := Assemble("call", src)
	if err != nil {
		t.Fatal(err)
	}
	st := isa.NewArchState()
	program.RunFrom(p, st, 0, nil)
	if st.R[5] != 7 {
		t.Fatalf("r5 = %d", st.R[5])
	}
}

func TestAssembleFP(t *testing.T) {
	src := `
        addi r1, r0, 3
        fcvt f2, r1
        fmul f3, f2, f2
        fsd  f3, 0(r4)
        halt
`
	p, err := Assemble("fp", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[2].Op != isa.OpFMul {
		t.Fatalf("op = %v", p.Insts[2].Op)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"frob r1, r2, r3\nhalt", "unknown mnemonic"},
		{"add r1, r2\nhalt", "rd, rs1, rs2"},
		{"addi r1, r2, banana\nhalt", "bad immediate"},
		{"addi r99, r0, 1\nhalt", "bad register"},
		{"lw r1, 8[r4]\nhalt", "memory operand"},
		{"sll r1, r2, 99\nhalt", "out of range"},
		{"bne r1, r0, 123bad\nhalt", "branch target"},
		{"beq r1, r0, nowhere\nhalt", "nowhere"},
		{"halt r1", "no operands"},
	}
	for _, c := range cases {
		_, err := Assemble("bad", c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestSyntaxErrorHasLine(t *testing.T) {
	_, err := Assemble("bad", "addi r1, r0, 1\nbogus x\nhalt")
	se, ok := err.(*SyntaxError)
	if !ok || se.Line != 2 {
		t.Fatalf("err = %v", err)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p1, err := Assemble("rt", loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	src2 := Disassemble(p1)
	p2, err := Assemble("rt2", src2)
	if err != nil {
		t.Fatalf("re-assemble failed: %v\nsource:\n%s", err, src2)
	}
	if p1.Len() != p2.Len() {
		t.Fatalf("lengths differ: %d vs %d", p1.Len(), p2.Len())
	}
	for i := range p1.Insts {
		if p1.Insts[i] != p2.Insts[i] {
			t.Fatalf("instruction %d differs: %v vs %v\nsource:\n%s",
				i, p1.Insts[i], p2.Insts[i], src2)
		}
	}
}

func TestDisassembleBenchmarkFragmentRoundTrips(t *testing.T) {
	// Round-trip a program containing every addressing form.
	src := `
        lui  r4, 16
        ori  r4, r4, 0
        addi r1, r0, 5
top:    lb   r5, 1(r4)
        lwl  r6, 4(r4)
        sb   r5, 2(r4)
        sra  r7, r5, 4
        slt  r8, r7, r5
        div  r9, r8, r7
        jal  r31, sub
        addi r1, r1, -1
        bgeu r1, r0, top
        halt
sub:    fcvt f1, r1
        fneg f2, f1
        fadd f3, f2, f1
        jr   r31
`
	p1, err := Assemble("frag", src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble("frag2", Disassemble(p1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Insts {
		if p1.Insts[i] != p2.Insts[i] {
			t.Fatalf("instruction %d differs: %v vs %v", i, p1.Insts[i], p2.Insts[i])
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad source")
		}
	}()
	MustAssemble("bad", "frob\nhalt")
}

func TestAssembledProgramOnTraceFormer(t *testing.T) {
	// The assembled loop forms stable traces (sanity check with the rest
	// of the stack).
	p := MustAssemble("loop", loopSrc)
	if err := program.Verify(p); err != nil {
		t.Fatal(err)
	}
}
