package baseline

import (
	"testing"

	"itr/internal/core"
	"itr/internal/energy"
)

func workload() Workload {
	return Workload{
		Name:     "test",
		DynInsts: 4_000_000,
		Coverage: core.Result{
			TotalInsts:    4_000_000,
			DetectionLoss: 1.3,
			RecoveryLoss:  2.5,
			Reads:         520_000,
			Writes:        4_000,
			FallbackInsts: 100_000,
		},
	}
}

func TestITRBeatsRedundantFetchOnEnergy(t *testing.T) {
	w := workload()
	itr, err := Compare(ITR, w, energy.ITRCacheSinglePort)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Compare(TimeRedundant, w, energy.ITRCacheSinglePort)
	if err != nil {
		t.Fatal(err)
	}
	if itr.EnergyMJ >= tr.EnergyMJ {
		t.Fatalf("ITR energy %.2f mJ not below time-redundant %.2f mJ (the paper's Figure 9 claim)",
			itr.EnergyMJ, tr.EnergyMJ)
	}
	// Roughly: ITR ~0.3 mJ vs redundant fetch ~1.7 mJ at this scale.
	if tr.EnergyMJ/itr.EnergyMJ < 2 {
		t.Fatalf("energy advantage only %.1fx; expected severalfold", tr.EnergyMJ/itr.EnergyMJ)
	}
}

func TestStructuralDuplicationAreaRatio(t *testing.T) {
	w := workload()
	sd, _ := Compare(StructuralDuplication, w, energy.ITRCacheSinglePort)
	itr, _ := Compare(ITR, w, energy.ITRCacheSinglePort)
	if sd.AreaCM2/itr.AreaCM2 < 6.5 || sd.AreaCM2/itr.AreaCM2 > 7.5 {
		t.Fatalf("area ratio %.2f, paper says about one seventh", sd.AreaCM2/itr.AreaCM2)
	}
	if sd.DetectionCoverage != 100 || sd.RecoveryCoverage != 100 {
		t.Fatal("duplication must give complete coverage")
	}
}

func TestITRCoverageReflectsLosses(t *testing.T) {
	w := workload()
	itr, _ := Compare(ITR, w, energy.ITRCacheSinglePort)
	if itr.DetectionCoverage != 98.7 || itr.RecoveryCoverage != 97.5 {
		t.Fatalf("coverage: %+v", itr)
	}
}

func TestMissFallbackRestoresCoverageAtEnergyCost(t *testing.T) {
	w := workload()
	itr, _ := Compare(ITR, w, energy.ITRCacheSinglePort)
	fb, _ := Compare(ITRMissFallback, w, energy.ITRCacheSinglePort)
	if fb.DetectionCoverage != 100 || fb.RecoveryCoverage != 100 {
		t.Fatal("fallback must restore full coverage")
	}
	if fb.EnergyMJ <= itr.EnergyMJ {
		t.Fatal("fallback must cost extra energy")
	}
	tr, _ := Compare(TimeRedundant, w, energy.ITRCacheSinglePort)
	if fb.EnergyMJ >= tr.EnergyMJ {
		t.Fatal("fallback should still undercut full time redundancy")
	}
}

func TestUnprotectedIsFree(t *testing.T) {
	w := workload()
	u, _ := Compare(Unprotected, w, energy.ITRCacheSinglePort)
	if u.EnergyMJ != 0 || u.AreaCM2 != 0 || u.DetectionCoverage != 0 {
		t.Fatalf("unprotected: %+v", u)
	}
}

func TestCompareAll(t *testing.T) {
	all, err := CompareAll(workload(), energy.ITRCacheSinglePort)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("approaches = %d", len(all))
	}
	seen := map[Approach]bool{}
	for _, c := range all {
		if seen[c.Approach] {
			t.Fatalf("duplicate %v", c.Approach)
		}
		seen[c.Approach] = true
	}
}

func TestCompareUnknownApproach(t *testing.T) {
	if _, err := Compare(Approach(99), workload(), energy.ITRCacheSinglePort); err == nil {
		t.Fatal("unknown approach accepted")
	}
}

func TestApproachString(t *testing.T) {
	for _, a := range []Approach{Unprotected, StructuralDuplication, TimeRedundant, ITR, ITRMissFallback, Approach(42)} {
		if a.String() == "" {
			t.Fatalf("empty name for %d", int(a))
		}
	}
}

func TestDualPortEnergyHigher(t *testing.T) {
	w := workload()
	single, _ := Compare(ITR, w, energy.ITRCacheSinglePort)
	dual, _ := Compare(ITR, w, energy.ITRCacheDualPort)
	if dual.EnergyMJ <= single.EnergyMJ {
		t.Fatal("dual-port ITR cache must cost more energy")
	}
}
