// Package baseline models the conventional fault-tolerance approaches the
// paper compares ITR against in Section 5:
//
//   - structural duplication of the frontend (IBM S/390 G5 style: the whole
//     I-unit is duplicated and outputs compared);
//   - conventional time redundancy (every instruction fetched and decoded
//     twice through the same frontend);
//   - ITR, optionally with the miss-fallback hybrid of Section 3 (redundant
//     fetch only on ITR cache misses).
//
// Each approach is summarized along the axes the paper argues about:
// frontend fault coverage, extra I-cache/ITR-cache work per instruction,
// area, and energy. The models are analytic on top of internal/energy plus
// measured access counts from the coverage simulator.
package baseline

import (
	"fmt"

	"itr/internal/core"
	"itr/internal/energy"
)

// Approach identifies a frontend protection scheme.
type Approach int

// The compared approaches.
const (
	Unprotected Approach = iota + 1
	StructuralDuplication
	TimeRedundant
	ITR
	ITRMissFallback
)

func (a Approach) String() string {
	switch a {
	case Unprotected:
		return "unprotected"
	case StructuralDuplication:
		return "structural-duplication"
	case TimeRedundant:
		return "time-redundant"
	case ITR:
		return "itr"
	case ITRMissFallback:
		return "itr+miss-fallback"
	default:
		return fmt.Sprintf("approach(%d)", int(a))
	}
}

// Workload carries the measured inputs for one benchmark.
type Workload struct {
	Name     string
	DynInsts int64
	// Coverage is the ITR coverage result for the chosen cache
	// configuration (provides read/write counts and loss percentages).
	Coverage core.Result
}

// Comparison is one row of the Section 5 comparison for one benchmark.
type Comparison struct {
	Approach Approach

	// DetectionCoverage is the percentage of dynamic instructions in which
	// a frontend fault would be detected.
	DetectionCoverage float64
	// RecoveryCoverage is the percentage of dynamic instructions in which a
	// detected frontend fault is recoverable by flush-and-restart.
	RecoveryCoverage float64

	// ExtraICacheAccesses counts redundant I-cache fetches.
	ExtraICacheAccesses int64
	// ITRCacheAccesses counts ITR cache reads + writes.
	ITRCacheAccesses int64
	// EnergyMJ is the protection-energy cost: redundant I-cache fetch
	// energy plus ITR cache access energy.
	EnergyMJ float64
	// AreaCM2 is the additional die area (G5-referenced, Section 5).
	AreaCM2 float64
}

// Compare evaluates one approach on one workload. itrSpec chooses the ITR
// cache port configuration used for energy accounting.
func Compare(a Approach, w Workload, itrSpec energy.CacheSpec) (Comparison, error) {
	iCacheNJ, err := energy.AccessEnergyNJ(energy.Power4ICache)
	if err != nil {
		return Comparison{}, fmt.Errorf("i-cache model: %w", err)
	}
	itrNJ, err := energy.AccessEnergyNJ(itrSpec)
	if err != nil {
		return Comparison{}, fmt.Errorf("itr cache model: %w", err)
	}

	c := Comparison{Approach: a}
	switch a {
	case Unprotected:
		// Nothing: zero cost, zero coverage.

	case StructuralDuplication:
		// A full second I-unit: complete detection, recovery by retry from
		// the checked boundary; re-fetches everything. (The G5 actually
		// duplicates inside one unit; energy-wise we charge the redundant
		// fetch stream, a conservative floor.)
		c.DetectionCoverage = 100
		c.RecoveryCoverage = 100
		c.ExtraICacheAccesses = energy.RedundantFetchAccesses(w.DynInsts)
		c.EnergyMJ = energy.EnergyMJ(c.ExtraICacheAccesses, iCacheNJ)
		c.AreaCM2 = energy.G5IUnitAreaCM2

	case TimeRedundant:
		// Fetch and decode everything twice through one frontend: full
		// detection, recovery by flush (the second copy has not committed),
		// half frontend bandwidth.
		c.DetectionCoverage = 100
		c.RecoveryCoverage = 100
		c.ExtraICacheAccesses = energy.RedundantFetchAccesses(w.DynInsts)
		c.EnergyMJ = energy.EnergyMJ(c.ExtraICacheAccesses, iCacheNJ)
		c.AreaCM2 = 0 // reuses existing structures; the cost is time/energy

	case ITR:
		c.DetectionCoverage = 100 - w.Coverage.DetectionLoss
		c.RecoveryCoverage = 100 - w.Coverage.RecoveryLoss
		c.ITRCacheAccesses = w.Coverage.Reads + w.Coverage.Writes
		c.EnergyMJ = energy.EnergyMJ(c.ITRCacheAccesses, itrNJ)
		c.AreaCM2 = energy.G5ITRCacheAreaCM2

	case ITRMissFallback:
		// Section 3 hybrid: conventional time redundancy only on ITR cache
		// misses. Detection and recovery become complete; the extra
		// I-cache traffic is only the re-fetched missing traces.
		c.DetectionCoverage = 100
		c.RecoveryCoverage = 100
		c.ITRCacheAccesses = w.Coverage.Reads + w.Coverage.Writes
		c.ExtraICacheAccesses = w.Coverage.FallbackInsts / energy.InstsPerICacheAccess
		c.EnergyMJ = energy.EnergyMJ(c.ITRCacheAccesses, itrNJ) +
			energy.EnergyMJ(c.ExtraICacheAccesses, iCacheNJ)
		c.AreaCM2 = energy.G5ITRCacheAreaCM2

	default:
		return Comparison{}, fmt.Errorf("unknown approach %d", int(a))
	}
	return c, nil
}

// CompareAll evaluates every approach on one workload.
func CompareAll(w Workload, itrSpec energy.CacheSpec) ([]Comparison, error) {
	approaches := []Approach{Unprotected, StructuralDuplication, TimeRedundant, ITR, ITRMissFallback}
	out := make([]Comparison, 0, len(approaches))
	for _, a := range approaches {
		c, err := Compare(a, w, itrSpec)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
