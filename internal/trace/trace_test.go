package trace

import (
	"testing"
	"testing/quick"

	"itr/internal/isa"
	"itr/internal/program"
	"itr/internal/sig"
)

func decodeOf(op isa.Opcode) isa.DecodeSignals {
	return isa.Decode(isa.Instruction{Op: op})
}

func TestFormerTerminatesOnBranch(t *testing.T) {
	var f Former
	if _, done := f.Step(10, decodeOf(isa.OpAdd)); done {
		t.Fatal("non-branch terminated trace")
	}
	ev, done := f.Step(11, decodeOf(isa.OpBeq))
	if !done {
		t.Fatal("branch did not terminate trace")
	}
	if ev.StartPC != 10 || ev.Len != 2 || !ev.Branch {
		t.Fatalf("event: %+v", ev)
	}
}

func TestFormerTerminatesAt16(t *testing.T) {
	var f Former
	for i := 0; i < isa.MaxTraceLen-1; i++ {
		if _, done := f.Step(uint64(i), decodeOf(isa.OpAdd)); done {
			t.Fatalf("terminated early at %d", i)
		}
	}
	ev, done := f.Step(15, decodeOf(isa.OpAdd))
	if !done {
		t.Fatal("did not terminate at 16")
	}
	if ev.Len != 16 || ev.Branch {
		t.Fatalf("event: %+v", ev)
	}
}

func TestFormerNextTraceStartsAfterTerminator(t *testing.T) {
	var f Former
	f.Step(10, decodeOf(isa.OpBeq)) // 1-instruction trace
	ev, done := f.Step(42, decodeOf(isa.OpJ))
	if !done || ev.StartPC != 42 {
		t.Fatalf("second trace: %+v done=%v", ev, done)
	}
}

func TestFormerSignatureMatchesAccumulation(t *testing.T) {
	insts := []isa.Instruction{
		{Op: isa.OpAddi, Rd: 1, Imm: 7},
		{Op: isa.OpLw, Rd: 2, Rs1: 1},
		{Op: isa.OpBne, Rs1: 2, Rs2: 0, Imm: 5},
	}
	var f Former
	var ev Event
	done := false
	for i, inst := range insts {
		ev, done = f.Step(uint64(100+i), isa.Decode(inst))
	}
	if !done {
		t.Fatal("trace not closed")
	}
	if ev.Sig != sig.Of(insts) {
		t.Fatalf("sig %#x, want %#x", ev.Sig, sig.Of(insts))
	}
}

func TestFormerFlushAndReset(t *testing.T) {
	var f Former
	f.Step(5, decodeOf(isa.OpAdd))
	if f.Pending() != 1 {
		t.Fatalf("pending = %d", f.Pending())
	}
	ev, ok := f.Flush()
	if !ok || ev.StartPC != 5 || ev.Len != 1 || ev.Branch {
		t.Fatalf("flush: %+v ok=%v", ev, ok)
	}
	if _, ok := f.Flush(); ok {
		t.Fatal("double flush succeeded")
	}

	f.Step(6, decodeOf(isa.OpAdd))
	f.Reset()
	if f.Pending() != 0 {
		t.Fatal("reset left pending instructions")
	}
	ev, done := f.Step(9, decodeOf(isa.OpBeq))
	if !done || ev.StartPC != 9 || ev.Len != 1 {
		t.Fatalf("post-reset trace: %+v", ev)
	}
}

// Property: the trace former partitions any instruction stream — every
// instruction lands in exactly one trace, and every trace has 1..16
// instructions with branches only at trace ends.
func TestPropertyFormerPartitionsStream(t *testing.T) {
	ops := []isa.Opcode{isa.OpAdd, isa.OpLw, isa.OpSw, isa.OpBeq, isa.OpJ, isa.OpMul}
	if err := quick.Check(func(sel []uint8) bool {
		var f Former
		total := 0
		var events []Event
		for i, s := range sel {
			op := ops[int(s)%len(ops)]
			ev, done := f.Step(uint64(i), decodeOf(op))
			if done {
				events = append(events, ev)
			}
		}
		if ev, ok := f.Flush(); ok {
			events = append(events, ev)
		}
		for _, ev := range events {
			if ev.Len < 1 || ev.Len > isa.MaxTraceLen {
				return false
			}
			total += ev.Len
		}
		return total == len(sel)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (the ITR premise): a static trace identified by start PC always
// produces the same signature across dynamic instances.
func TestPropertySignatureStablePerStartPC(t *testing.T) {
	p := loopProgram(t)
	c := NewCharacterizer()
	Stream(p, 10000, func(ev Event) bool {
		c.Add(ev)
		return true
	})
	if got := c.SignatureConflicts(); got != 0 {
		t.Fatalf("%d static traces produced conflicting signatures", got)
	}
	if c.StaticTraces() == 0 {
		t.Fatal("no traces observed")
	}
}

func loopProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("loop")
	b.OpImm(isa.OpAddi, 1, 0, 500)
	b.Label("top")
	b.OpImm(isa.OpAddi, 2, 2, 3)
	b.Op(isa.OpAdd, 3, 2, 2)
	b.OpImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "top")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCharacterizerCounts(t *testing.T) {
	c := NewCharacterizer()
	// Trace A (pc 0, 4 insts) repeats at distance 7; trace B once.
	c.Add(Event{StartPC: 0, Len: 4, Sig: 1})
	c.Add(Event{StartPC: 100, Len: 3, Sig: 2})
	c.Add(Event{StartPC: 0, Len: 4, Sig: 1})
	if c.StaticTraces() != 2 {
		t.Fatalf("static = %d", c.StaticTraces())
	}
	if c.DynamicInstructions() != 11 {
		t.Fatalf("dyn = %d", c.DynamicInstructions())
	}
	// Repeat distance for A's second instance: started at dyn 7, previous
	// start at 0 → distance 7, weight 4 instructions.
	if got := c.RepeatFractionWithin(8); got < 36 || got > 37 {
		t.Fatalf("repeat fraction = %v, want 4/11", got)
	}
	if got := c.RepeatFractionWithin(7); got != 0 {
		t.Fatalf("distance 7 not < 7: %v", got)
	}
}

func TestCharacterizerPopularityCDF(t *testing.T) {
	c := NewCharacterizer()
	for i := 0; i < 90; i++ {
		c.Add(Event{StartPC: 1, Len: 1})
	}
	for i := 0; i < 10; i++ {
		c.Add(Event{StartPC: uint64(100 + i), Len: 1})
	}
	pts := c.PopularityCDF(1, 3)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Y != 90 {
		t.Fatalf("top-1 coverage = %v, want 90", pts[0].Y)
	}
	if got := c.CoverageAtTopK(11); got != 100 {
		t.Fatalf("top-11 = %v", got)
	}
}

func TestCharacterizerDistanceBuckets(t *testing.T) {
	c := NewCharacterizer()
	// Build a known distance distribution: 10-inst trace repeating
	// back-to-back (distance 10).
	for i := 0; i < 100; i++ {
		c.Add(Event{StartPC: 7, Len: 10})
	}
	pts := c.DistanceBuckets(500, 10000)
	if len(pts) != 20 {
		t.Fatalf("buckets = %d", len(pts))
	}
	// 99 of 100 instances are repeats: 990/1000 = 99%.
	if pts[0].CumulativePct != 99 {
		t.Fatalf("first bucket = %v, want 99", pts[0].CumulativePct)
	}
	if pts[19].CumulativePct != 99 {
		t.Fatalf("monotone tail = %v", pts[19].CumulativePct)
	}
}

func TestCharacterizerEmpty(t *testing.T) {
	c := NewCharacterizer()
	if got := c.RepeatFractionWithin(1000); got != 0 {
		t.Fatalf("empty fraction = %v", got)
	}
	if pts := c.PopularityCDF(100, 500); len(pts) != 5 {
		t.Fatalf("empty CDF points = %d", len(pts))
	}
}

func TestStreamEndsWithPartialTrace(t *testing.T) {
	p := loopProgram(t)
	var events []Event
	executed := Stream(p, 10, func(ev Event) bool {
		events = append(events, ev)
		return true
	})
	if executed != 10 {
		t.Fatalf("executed = %d", executed)
	}
	total := 0
	for _, ev := range events {
		total += ev.Len
	}
	if total != 10 {
		t.Fatalf("trace instructions %d != executed 10 (flush missing?)", total)
	}
}

func TestStreamEarlyStop(t *testing.T) {
	p := loopProgram(t)
	n := 0
	Stream(p, 1000, func(ev Event) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("callbacks = %d", n)
	}
}

func TestStaticTraceCountOnLoop(t *testing.T) {
	p := loopProgram(t)
	static := StaticTraceCount(p)
	// Dynamic observation must agree, modulo the never-executed halt path
	// (here the halt IS executed, so counts match exactly).
	c := Characterize(p, 0)
	if static != c.StaticTraces() {
		t.Fatalf("static walk %d != dynamic %d", static, c.StaticTraces())
	}
}

func TestCharacterizeRunsProgram(t *testing.T) {
	p := loopProgram(t)
	c := Characterize(p, 2000)
	if c.DynamicInstructions() != 2000 {
		t.Fatalf("dyn = %d", c.DynamicInstructions())
	}
	// The loop body dominates: top-2 traces should cover nearly all
	// instructions.
	if got := c.CoverageAtTopK(2); got < 90 {
		t.Fatalf("top-2 coverage = %v", got)
	}
}

func TestFlushMarksPartial(t *testing.T) {
	var f Former
	f.Step(5, decodeOf(isa.OpAdd))
	ev, ok := f.Flush()
	if !ok || !ev.Partial {
		t.Fatalf("flush event: %+v", ev)
	}
	// Regular terminations are never partial.
	ev, done := f.Step(6, decodeOf(isa.OpBeq))
	if !done || ev.Partial {
		t.Fatalf("branch-terminated event marked partial: %+v", ev)
	}
}

func TestPartialEventDoesNotFlagConflict(t *testing.T) {
	c := NewCharacterizer()
	c.Add(Event{StartPC: 5, Len: 4, Sig: 0xaaaa})
	// A truncated instance of the same trace carries a prefix signature.
	c.Add(Event{StartPC: 5, Len: 2, Sig: 0xbbbb, Partial: true})
	if c.SignatureConflicts() != 0 {
		t.Fatal("partial instance flagged as signature conflict")
	}
	// A full instance with a different signature IS a conflict.
	c.Add(Event{StartPC: 5, Len: 4, Sig: 0xcccc})
	if c.SignatureConflicts() != 1 {
		t.Fatal("real conflict not flagged")
	}
}

func TestStaticTraceCountNeverTakenTargetsAddNothing(t *testing.T) {
	// A never-taken branch whose taken-target is the next instruction must
	// not create an extra static trace (the workload synthesizer depends
	// on this for exact Table 1 calibration).
	b := program.NewBuilder("nt")
	b.OpImm(isa.OpAddi, 1, 0, 3)
	b.Label("top")
	b.OpImm(isa.OpAddi, 2, 2, 1)
	l := "next"
	b.Branch(isa.OpBne, 0, 0, l) // never taken, target = next pc
	b.Label(l)
	b.OpImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "top")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	static := StaticTraceCount(p)
	dynamic := Characterize(p, 0).StaticTraces()
	if static != dynamic {
		t.Fatalf("static walk %d != dynamic %d", static, dynamic)
	}
}
