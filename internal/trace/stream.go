package trace

import (
	"itr/internal/isa"
	"itr/internal/program"
)

// Stream functionally executes p for at most limit dynamic instructions,
// forming traces and invoking fn for each completed trace event (including a
// final partial trace at program end). Returning false from fn stops the
// run. It returns the number of dynamic instructions executed.
func Stream(p *program.Program, limit int64, fn func(Event) bool) int64 {
	tab := p.DecodeTable()
	var former Former
	stop := false
	executed, _ := program.Run(p, limit, func(pc uint64, _ isa.Instruction, o isa.Outcome) bool {
		ev, done := former.StepWord(pc, tab.Word(pc))
		if done && !fn(ev) {
			stop = true
			return false
		}
		return true
	})
	if !stop {
		if ev, ok := former.Flush(); ok {
			fn(ev)
		}
	}
	return executed
}

// Characterize runs p for at most limit dynamic instructions and returns its
// repetition characterization.
func Characterize(p *program.Program, limit int64) *Characterizer {
	c := NewCharacterizer()
	Stream(p, limit, func(ev Event) bool {
		c.Add(ev)
		return true
	})
	return c
}

// StaticTraceCount walks the program image statically (without executing)
// and returns the number of distinct trace start PCs reachable by sequential
// decomposition from the entry point. Register-indirect jump targets are not
// statically knowable, so programs using them may undercount; it is a
// structural helper used in tests. The dynamic count from Characterize is
// the paper's metric.
func StaticTraceCount(p *program.Program) int {
	tab := p.DecodeTable()
	starts := make(map[uint64]bool)
	pending := []uint64{p.Entry}
	for len(pending) > 0 {
		pc := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		if pc >= uint64(len(p.Insts)) || starts[pc] {
			continue
		}
		starts[pc] = true
		// Walk the trace from pc to its terminator.
		cur := pc
		n := 0
		for {
			inst := p.Fetch(cur)
			n++
			d := tab.Signals(cur)
			if d.IsBranching() {
				// Successors: fall-through trace and target trace.
				if !d.HasFlag(isa.FlagUncond) {
					pending = append(pending, cur+1)
					pending = append(pending, cur+1+uint64(int64(int16(inst.Imm))))
				} else if inst.Op == isa.OpJ || inst.Op == isa.OpJal {
					pending = append(pending, uint64(inst.Target))
					if inst.Op == isa.OpJal {
						pending = append(pending, cur+1)
					}
				}
				break
			}
			if inst.Op == isa.OpHalt {
				break
			}
			if n >= isa.MaxTraceLen {
				pending = append(pending, cur+1)
				break
			}
			cur++
		}
	}
	return len(starts)
}
