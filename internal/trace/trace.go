// Package trace implements trace formation and the program-repetition
// characterization of the paper's Section 1.
//
// Instructions are grouped into traces that terminate either on a branching
// instruction or on reaching 16 instructions. A *static* trace is identified
// by its start PC: from a fixed start PC the instruction sequence of the
// trace is deterministic (the first branching instruction always terminates
// it), which is precisely why a PC-indexed signature cache works.
package trace

import (
	"sort"

	"itr/internal/isa"
	"itr/internal/sig"
	"itr/internal/stats"
)

// Event is one completed dynamic trace instance.
type Event struct {
	StartPC uint64 // static trace identity (ITR cache key)
	Len     int    // dynamic instructions in this instance
	Sig     uint64 // XOR signature of the instance's decode signals
	Branch  bool   // terminated by a branching instruction (vs length limit)
	// Partial marks a trace truncated by end-of-stream (Flush) rather than
	// terminated by the architecture's trace-formation rule. Partial
	// instances carry a prefix signature and are excluded from
	// signature-stability accounting.
	Partial bool
}

// Former groups an in-order instruction stream into traces.
// The zero value is ready to use.
type Former struct {
	acc     sig.Accumulator
	startPC uint64
	open    bool
}

// Step feeds one instruction (in program order). If the instruction
// terminates a trace, the completed Event is returned with done == true.
func (f *Former) Step(pc uint64, d isa.DecodeSignals) (ev Event, done bool) {
	return f.StepWord(pc, d.Pack())
}

// StepWord is Step for callers that already hold the instruction's packed
// signal word — the decode-memoization fast path (program.DecodeTable): one
// XOR plus a flag test per dynamic instruction, no signal-vector build. The
// common mid-trace step inlines into the caller; only a trace-terminating
// instruction (roughly one in five) pays the outlined completion call.
func (f *Former) StepWord(pc uint64, w uint64) (Event, bool) {
	if f.StepTerm(pc, w) {
		return f.complete(w), true
	}
	return Event{}, false
}

// StepTerm folds one instruction into the open trace and reports whether it
// terminates the trace. It exists as the inlinable core of StepWord for the
// per-dispatch hot loop: a caller holding the packed word tests termination
// here (no Event materializes mid-trace) and collects the completed trace
// with Take only on the terminating instruction.
func (f *Former) StepTerm(pc uint64, w uint64) bool {
	if !f.open {
		f.startPC = pc
		f.open = true
	}
	f.acc.Add(w)
	return isa.WordIsBranching(w) || f.acc.Full()
}

// Take closes the trace StepTerm just reported terminated, returning its
// Event. w must be the same word passed to the terminating StepTerm.
func (f *Former) Take(w uint64) Event { return f.complete(w) }

// complete closes the open trace: the terminating instruction's word has
// already been folded into the accumulator. Kept out of line so StepWord
// stays within the compiler's inlining budget.
//
//go:noinline
func (f *Former) complete(w uint64) Event {
	ev := Event{StartPC: f.startPC, Len: f.acc.Len(), Sig: f.acc.Value(), Branch: isa.WordIsBranching(w)}
	f.acc.Reset()
	f.open = false
	return ev
}

// Pending returns the number of instructions accumulated into the currently
// open trace (0 if no trace is open).
func (f *Former) Pending() int { return f.acc.Len() }

// Flush terminates any open trace at end of stream.
func (f *Former) Flush() (ev Event, ok bool) {
	if !f.open {
		return Event{}, false
	}
	ev = Event{StartPC: f.startPC, Len: f.acc.Len(), Sig: f.acc.Value(), Partial: true}
	f.acc.Reset()
	f.open = false
	return ev, true
}

// Reset abandons any open trace (used on pipeline flushes: the re-fetched
// instructions restart trace formation at the restart PC).
func (f *Former) Reset() {
	f.acc.Reset()
	f.open = false
}

// traceStat accumulates per-static-trace statistics.
type traceStat struct {
	dynInsts     int64 // dynamic instructions contributed by all instances
	occurrences  int64
	lastStartDyn int64 // dynamic-instruction index at which the last instance started
	length       int   // static length (instructions)
	sig          uint64
	sigConflict  bool // a second instance produced a different signature
}

// Characterizer reproduces the paper's repetition characterization:
// static trace counts (Table 1), the dynamic-instruction-per-static-trace
// CDF (Figures 1-2), and the repeat-distance distribution (Figures 3-4).
type Characterizer struct {
	dynInsts int64
	perTrace map[uint64]*traceStat
	distHist *stats.Histogram
}

// NewCharacterizer returns an empty characterizer.
func NewCharacterizer() *Characterizer {
	return &Characterizer{
		perTrace: make(map[uint64]*traceStat),
		distHist: stats.NewHistogram(),
	}
}

// Add records one completed trace event.
func (c *Characterizer) Add(ev Event) {
	startDyn := c.dynInsts
	c.dynInsts += int64(ev.Len)
	st, ok := c.perTrace[ev.StartPC]
	if !ok {
		st = &traceStat{length: ev.Len, sig: ev.Sig, lastStartDyn: startDyn}
		c.perTrace[ev.StartPC] = st
		st.dynInsts = int64(ev.Len)
		st.occurrences = 1
		return
	}
	if st.sig != ev.Sig && !ev.Partial {
		st.sigConflict = true
	}
	// Repeat distance: dynamic instructions separating this instance's
	// start from the previous instance's start.
	c.distHist.AddWeighted(startDyn-st.lastStartDyn, float64(ev.Len))
	st.lastStartDyn = startDyn
	st.dynInsts += int64(ev.Len)
	st.occurrences++
}

// DynamicInstructions returns the total dynamic instructions observed.
func (c *Characterizer) DynamicInstructions() int64 { return c.dynInsts }

// StaticTraces returns the number of distinct static traces observed
// (the paper's Table 1 metric).
func (c *Characterizer) StaticTraces() int { return len(c.perTrace) }

// SignatureConflicts returns how many static traces ever produced two
// different signatures. For a correct trace former this is always zero; it
// is exposed as a self-check.
func (c *Characterizer) SignatureConflicts() int {
	n := 0
	for _, st := range c.perTrace {
		if st.sigConflict {
			n++
		}
	}
	return n
}

// PopularityCDF returns the cumulative percentage of dynamic instructions
// contributed by the top-k static traces, sampled at each multiple of step up
// to limit: the paper's Figures 1 (step 100) and 2 (step 50).
func (c *Characterizer) PopularityCDF(step, limit int) []stats.Point {
	contrib := make([]int64, 0, len(c.perTrace))
	for _, st := range c.perTrace {
		contrib = append(contrib, st.dynInsts)
	}
	sort.Slice(contrib, func(i, j int) bool { return contrib[i] > contrib[j] })

	points := make([]stats.Point, 0, limit/step)
	var cum int64
	idx := 0
	for k := step; k <= limit; k += step {
		for idx < len(contrib) && idx < k {
			cum += contrib[idx]
			idx++
		}
		pct := 0.0
		if c.dynInsts > 0 {
			pct = 100 * float64(cum) / float64(c.dynInsts)
		}
		points = append(points, stats.Point{X: float64(k), Y: pct})
	}
	return points
}

// CoverageAtTopK returns the percentage of dynamic instructions contributed
// by the k most popular static traces.
func (c *Characterizer) CoverageAtTopK(k int) float64 {
	pts := c.PopularityCDF(k, k)
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].Y
}

// DistanceBuckets returns the cumulative percentage of dynamic instructions
// contributed by trace repetitions within each distance bucket
// (width 500 up to 10000 in the paper's Figures 3-4). Percentages are of
// *all* dynamic instructions, so first-occurrence instructions never reach
// 100%; this matches the paper's normalization.
func (c *Characterizer) DistanceBuckets(width, limit int64) []stats.BucketPoint {
	values := c.distHist.Values()
	points := make([]stats.BucketPoint, 0, limit/width)
	var below float64
	idx := 0
	for edge := width; edge <= limit; edge += width {
		for idx < len(values) && values[idx] < edge {
			below += c.distHist.Weight(values[idx])
			idx++
		}
		pct := 0.0
		if c.dynInsts > 0 {
			pct = 100 * below / float64(c.dynInsts)
		}
		points = append(points, stats.BucketPoint{UpperEdge: edge, CumulativePct: pct})
	}
	return points
}

// RepeatFractionWithin returns the fraction (0-100%) of dynamic instructions
// contributed by repetitions at distance < d.
func (c *Characterizer) RepeatFractionWithin(d int64) float64 {
	if c.dynInsts == 0 {
		return 0
	}
	var below float64
	for _, v := range c.distHist.Values() {
		if v < d {
			below += c.distHist.Weight(v)
		}
	}
	return 100 * below / float64(c.dynInsts)
}
