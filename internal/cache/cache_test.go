package cache

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		entries, assoc int
		ok             bool
	}{
		{256, 1, true},
		{256, 2, true},
		{1024, 16, true},
		{512, FullyAssociative, true},
		{0, 1, false},
		{-4, 1, false},
		{100, 1, false},  // not a power of two
		{256, 3, false},  // not divisible
		{256, -2, false}, // negative
		{8, 16, false},   // assoc > entries
	}
	for _, c := range cases {
		_, err := New(c.entries, c.assoc, ReplLRU)
		if (err == nil) != c.ok {
			t.Errorf("New(%d, %d): err=%v, want ok=%v", c.entries, c.assoc, err, c.ok)
		}
	}
	if _, err := New(256, 2, Replacement(99)); err == nil {
		t.Error("unknown replacement policy accepted")
	}
}

func TestGeometry(t *testing.T) {
	c := MustNew(1024, 2, ReplLRU)
	if c.Entries() != 1024 || c.Assoc() != 2 || c.NumSets() != 512 {
		t.Fatalf("geometry: %d entries, %d ways, %d sets", c.Entries(), c.Assoc(), c.NumSets())
	}
	fa := MustNew(256, FullyAssociative, ReplLRU)
	if fa.NumSets() != 1 || fa.Assoc() != 256 {
		t.Fatalf("fa geometry: %d sets, %d ways", fa.NumSets(), fa.Assoc())
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := MustNew(16, 2, ReplLRU)
	if _, hit := c.Lookup(5); hit {
		t.Fatal("empty cache hit")
	}
	c.Insert(5, 500)
	ln, hit := c.Lookup(5)
	if !hit || ln.Value != 500 {
		t.Fatalf("hit=%v val=%+v", hit, ln)
	}
	if !ln.Referenced {
		t.Fatal("hit must set Referenced")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserts != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := MustNew(16, 2, ReplLRU)
	c.Insert(5, 500)
	ln, ok := c.Probe(5)
	if !ok || ln.Referenced {
		t.Fatalf("probe: ok=%v ref=%v", ok, ln.Referenced)
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("probe changed stats: %+v", s)
	}
	if _, ok := c.Probe(6); ok {
		t.Fatal("probe hit missing key")
	}
}

func TestInsertOverwritesInPlace(t *testing.T) {
	c := MustNew(16, 2, ReplLRU)
	c.Insert(5, 500)
	ev, was := c.Insert(5, 501)
	if was {
		t.Fatalf("in-place overwrite evicted %+v", ev)
	}
	ln, _ := c.Probe(5)
	if ln.Value != 501 {
		t.Fatalf("overwrite lost: %d", ln.Value)
	}
	if s := c.Stats(); s.Evictions != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct construction of an LRU scenario in one 4-way set of a
	// fully-associative cache.
	c := MustNew(4, FullyAssociative, ReplLRU)
	for k := uint64(1); k <= 4; k++ {
		c.Insert(k, k*10)
	}
	c.Lookup(1) // make key 1 most recently used; LRU is now 2
	ev, was := c.Insert(5, 50)
	if !was || ev.Key != 2 {
		t.Fatalf("evicted %+v, want key 2", ev)
	}
	if _, hit := c.Lookup(1); !hit {
		t.Fatal("key 1 should survive")
	}
}

func TestEvictionUnreferencedAccounting(t *testing.T) {
	c := MustNew(2, FullyAssociative, ReplLRU)
	c.Insert(1, 0)
	c.Insert(2, 0)
	c.Lookup(1)    // reference line 1
	c.Insert(3, 0) // evicts 2 (LRU, never referenced)
	ev, _ := c.Probe(3)
	_ = ev
	s := c.Stats()
	if s.Evictions != 1 || s.EvictionsUnreferenced != 1 {
		t.Fatalf("stats: %+v", s)
	}
	c.Insert(4, 0) // evicts 1 (referenced) — LRU after 3's insert
	s = c.Stats()
	if s.Evictions != 2 || s.EvictionsUnreferenced != 1 {
		t.Fatalf("stats after 2nd evict: %+v", s)
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	c := MustNew(16, 1, ReplLRU)
	c.Insert(3, 30)
	// Key 3+16 maps to the same set in a 16-set direct-mapped cache.
	ev, was := c.Insert(19, 190)
	if !was || ev.Key != 3 {
		t.Fatalf("dm conflict eviction: %+v was=%v", ev, was)
	}
	if _, hit := c.Lookup(3); hit {
		t.Fatal("evicted key still resident")
	}
}

func TestSetIsolation(t *testing.T) {
	c := MustNew(16, 1, ReplLRU)
	for k := uint64(0); k < 16; k++ {
		c.Insert(k, k)
	}
	// All 16 distinct sets: no evictions.
	if s := c.Stats(); s.Evictions != 0 {
		t.Fatalf("isolated sets evicted: %+v", s)
	}
	for k := uint64(0); k < 16; k++ {
		if _, hit := c.Lookup(k); !hit {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestCheckedLRUPrefersCheckedVictims(t *testing.T) {
	c := MustNew(4, FullyAssociative, ReplCheckedLRU)
	for k := uint64(1); k <= 4; k++ {
		c.Insert(k, 0)
	}
	// Mark key 3 checked; it should be evicted even though 1 is LRU.
	ln, _ := c.Probe(3)
	ln.Checked = true
	ev, was := c.Insert(5, 0)
	if !was || ev.Key != 3 {
		t.Fatalf("checked-LRU evicted %+v, want key 3", ev)
	}
}

func TestCheckedLRUFallsBackToLRU(t *testing.T) {
	c := MustNew(4, FullyAssociative, ReplCheckedLRU)
	for k := uint64(1); k <= 4; k++ {
		c.Insert(k, 0)
	}
	// No line checked: plain LRU applies (key 1).
	ev, was := c.Insert(5, 0)
	if !was || ev.Key != 1 {
		t.Fatalf("fallback evicted %+v, want key 1", ev)
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(16, 2, ReplLRU)
	c.Insert(7, 70)
	if !c.Invalidate(7) {
		t.Fatal("invalidate missed resident key")
	}
	if _, hit := c.Lookup(7); hit {
		t.Fatal("invalidated key still hits")
	}
	if c.Invalidate(7) {
		t.Fatal("double invalidate succeeded")
	}
	// Invalidations are not evictions.
	if s := c.Stats(); s.Evictions != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestVisitAndCounts(t *testing.T) {
	c := MustNew(16, 2, ReplLRU)
	for k := uint64(0); k < 6; k++ {
		c.Insert(k, 0)
	}
	c.Lookup(0)
	ln, _ := c.Probe(1)
	ln.Checked = true
	n := 0
	c.Visit(func(*Line) { n++ })
	if n != 6 {
		t.Fatalf("visited %d lines", n)
	}
	if got := c.CountUnchecked(); got != 5 {
		t.Fatalf("unchecked = %d", got)
	}
	if got := c.ResidentUnreferenced(); got != 5 {
		t.Fatalf("unreferenced = %d", got)
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(16, 2, ReplLRU)
	c.Insert(1, 0)
	c.Lookup(1)
	c.ResetStats()
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("stats not reset: %+v", s)
	}
	if _, hit := c.Lookup(1); !hit {
		t.Fatal("reset stats must not drop contents")
	}
}

func TestParity64(t *testing.T) {
	if Parity64(0) {
		t.Error("parity of 0")
	}
	if !Parity64(1) {
		t.Error("parity of 1")
	}
	if Parity64(3) {
		t.Error("parity of 0b11")
	}
	if err := quick.Check(func(v uint64, bit uint8) bool {
		// Flipping any single bit flips parity.
		return Parity64(v) != Parity64(v^(1<<uint(bit%64)))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: contents behave like a bounded map — a key inserted and never
// evicted must hit with its latest value.
func TestPropertyInsertedKeysHitUntilEvicted(t *testing.T) {
	if err := quick.Check(func(keys []uint16) bool {
		c := MustNew(64, 4, ReplLRU)
		evicted := make(map[uint64]bool)
		latest := make(map[uint64]uint64)
		for i, k16 := range keys {
			k := uint64(k16)
			ev, was := c.Insert(k, uint64(i))
			latest[k] = uint64(i)
			delete(evicted, k)
			if was {
				evicted[ev.Key] = true
			}
		}
		for k, v := range latest {
			ln, hit := c.Probe(k)
			if evicted[k] {
				if hit {
					// Key may have been reinserted after eviction; only
					// fail if values disagree.
					if ln.Value != v {
						return false
					}
				}
				continue
			}
			if !hit || ln.Value != v {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total inserts == hits' complement — every lookup is either a hit
// or a miss, and evictions never exceed inserts.
func TestPropertyStatsConsistency(t *testing.T) {
	if err := quick.Check(func(ops []uint16) bool {
		c := MustNew(32, 2, ReplLRU)
		lookups := int64(0)
		for _, op := range ops {
			k := uint64(op % 100)
			if op%2 == 0 {
				c.Lookup(k)
				lookups++
			} else {
				c.Insert(k, 0)
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == lookups &&
			s.Evictions <= s.Inserts &&
			s.EvictionsUnreferenced <= s.Evictions
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: occupancy never exceeds capacity and only grows via inserts.
func TestPropertyOccupancyBounded(t *testing.T) {
	if err := quick.Check(func(keys []uint16, assocSel uint8) bool {
		assoc := []int{1, 2, 4, FullyAssociative}[assocSel%4]
		c := MustNew(16, assoc, ReplLRU)
		for _, k := range keys {
			c.Insert(uint64(k), 0)
			n := 0
			c.Visit(func(*Line) { n++ })
			if n > 16 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
