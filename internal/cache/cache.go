// Package cache implements a generic set-associative cache engine with true
// LRU replacement. It backs the ITR cache (keys are trace start PCs, values
// are trace signatures) and the access-counting models used for the energy
// comparison of the paper's Section 5.
//
// Associativity spans the full design space of the paper's Section 3:
// direct-mapped, 2/4/8/16-way, and fully associative.
package cache

import (
	"fmt"
	"math/bits"
)

// Replacement selects a victim line within a set.
type Replacement int

// Replacement policies.
const (
	// ReplLRU evicts the least recently used line (the paper's baseline).
	ReplLRU Replacement = iota + 1
	// ReplCheckedLRU prefers evicting the least recently used line whose
	// Checked flag is set, falling back to plain LRU when no line in the
	// set is checked. This is the optimization sketched in Section 2.3 to
	// avoid evicting unreferenced (unchecked) signatures.
	ReplCheckedLRU
)

// Line is one cache line. Value semantics are owned by the caller (the ITR
// layer stores trace signatures).
type Line struct {
	Key   uint64
	Value uint64
	Valid bool
	// Referenced records whether the line has hit at least once since it
	// was inserted. Evicting a line with Referenced == false is exactly the
	// paper's "eviction of an unreferenced, missed instance" — a loss in
	// fault detection coverage.
	Referenced bool
	// Checked records whether the line's signature has been confirmed
	// against a newly executed instance (used by ReplCheckedLRU).
	Checked bool
	// Aux carries caller-defined per-line metadata (the ITR layer stores
	// the instruction count of the trace that installed the signature).
	Aux uint64
	// Stamp is a caller-defined installation timestamp (the ITR layer
	// stores the committed-instruction count at install, which the
	// checkpointing extension compares against checkpoint ages).
	Stamp int64
	// Parity is the caller-maintained parity bit over Value (Section 2.4).
	Parity bool

	lru uint64
}

// Stats counts cache events since construction or the last ResetStats.
type Stats struct {
	Hits                  int64
	Misses                int64
	Inserts               int64
	Evictions             int64
	EvictionsUnreferenced int64
}

// Cache is a set-associative cache. Use New to construct one; the zero value
// is not usable.
type Cache struct {
	sets    [][]Line
	assoc   int
	numSets int
	setMask uint64
	clock   uint64
	repl    Replacement
	stats   Stats
	// index accelerates key lookup for high-associativity sets, where a
	// linear way scan (fine in hardware, O(assoc) here) dominates simulation
	// time. Line pointers are stable: sets are allocated once in New and
	// never resized. nil for low associativities, where the scan is faster
	// than a map operation.
	index map[uint64]*Line
}

// indexedAssocMin is the associativity at which Lookup/Probe switch from a
// linear way scan to the map index. Below it the scan's cache-friendly
// compare loop beats a hashed map access.
const indexedAssocMin = 32

// FullyAssociative requests a single set spanning all entries.
const FullyAssociative = 0

// New returns a cache with the given total entry count and associativity.
// assoc == FullyAssociative (0) makes the cache fully associative; assoc == 1
// is direct-mapped. entries must be a positive power of two and divisible by
// assoc.
func New(entries, assoc int, repl Replacement) (*Cache, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("cache entries must be a positive power of two, got %d", entries)
	}
	if assoc == FullyAssociative {
		assoc = entries
	}
	if assoc < 0 || assoc > entries || entries%assoc != 0 {
		return nil, fmt.Errorf("associativity %d incompatible with %d entries", assoc, entries)
	}
	if repl != ReplLRU && repl != ReplCheckedLRU {
		return nil, fmt.Errorf("unknown replacement policy %d", repl)
	}
	numSets := entries / assoc
	c := &Cache{
		sets:    make([][]Line, numSets),
		assoc:   assoc,
		numSets: numSets,
		setMask: uint64(numSets - 1),
		repl:    repl,
	}
	for i := range c.sets {
		c.sets[i] = make([]Line, assoc)
	}
	if assoc >= indexedAssocMin {
		c.index = make(map[uint64]*Line, entries)
	}
	return c, nil
}

// MustNew is New but panics on configuration error; for tests and tables of
// known-good configurations.
func MustNew(entries, assoc int, repl Replacement) *Cache {
	c, err := New(entries, assoc, repl)
	if err != nil {
		panic(err)
	}
	return c
}

// Entries returns the total number of lines.
func (c *Cache) Entries() int { return c.assoc * c.numSets }

// Assoc returns the associativity (ways per set).
func (c *Cache) Assoc() int { return c.assoc }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// setIndex maps a key to its set. Keys are trace start PCs (instruction
// indexes), so low bits index directly as in a hardware PC-indexed structure.
func (c *Cache) setIndex(key uint64) uint64 { return key & c.setMask }

// Lookup finds key, updating LRU state and the Referenced flag on a hit.
// The returned pointer stays valid until the line is evicted; callers may
// update Value/Checked/Parity/Aux through it.
func (c *Cache) Lookup(key uint64) (*Line, bool) {
	if ln := c.find(key); ln != nil {
		c.clock++
		ln.lru = c.clock
		ln.Referenced = true
		c.stats.Hits++
		return ln, true
	}
	c.stats.Misses++
	return nil, false
}

// Probe finds key without updating LRU, Referenced, or statistics.
func (c *Cache) Probe(key uint64) (*Line, bool) {
	if ln := c.find(key); ln != nil {
		return ln, true
	}
	return nil, false
}

// find returns the valid line holding key, or nil.
func (c *Cache) find(key uint64) *Line {
	if c.index != nil {
		if ln, ok := c.index[key]; ok {
			return ln
		}
		return nil
	}
	set := c.sets[c.setIndex(key)]
	for i := range set {
		ln := &set[i]
		if ln.Valid && ln.Key == key {
			return ln
		}
	}
	return nil
}

// Insert installs (key, value), evicting a victim if the set is full. It
// returns the evicted line (Valid == true) if an eviction occurred. If key is
// already present its line is overwritten in place (no eviction).
func (c *Cache) Insert(key, value uint64) (evicted Line, wasEvicted bool) {
	c.stats.Inserts++
	c.clock++
	si := c.setIndex(key)
	set := c.sets[si]

	if ln, ok := c.Probe(key); ok {
		ln.Value = value
		ln.lru = c.clock
		return Line{}, false
	}

	victim := -1
	for i := range set {
		if !set[i].Valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = c.pickVictim(set)
		evicted = set[victim]
		wasEvicted = true
		c.stats.Evictions++
		if !evicted.Referenced {
			c.stats.EvictionsUnreferenced++
		}
		if c.index != nil {
			delete(c.index, evicted.Key)
		}
	}
	set[victim] = Line{Key: key, Value: value, Valid: true, lru: c.clock}
	if c.index != nil {
		c.index[key] = &set[victim]
	}
	return evicted, wasEvicted
}

// pickVictim chooses a victim index within a full set per the policy.
func (c *Cache) pickVictim(set []Line) int {
	switch c.repl {
	case ReplCheckedLRU:
		best := -1
		for i := range set {
			if !set[i].Checked {
				continue
			}
			if best < 0 || set[i].lru < set[best].lru {
				best = i
			}
		}
		if best >= 0 {
			return best
		}
		// No checked line in the set: the optimization breaks down here
		// (as the paper notes) and we fall back to plain LRU.
		fallthrough
	default:
		best := 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[best].lru {
				best = i
			}
		}
		return best
	}
}

// Clone returns a deep copy of the cache: contents, LRU ordering, and
// statistics. The clone shares nothing with the original, so snapshot layers
// can retain it while the original keeps running.
func (c *Cache) Clone() *Cache {
	n := MustNew(c.Entries(), c.assoc, c.repl)
	if err := n.CopyFrom(c); err != nil {
		panic(err) // unreachable: geometry matches by construction
	}
	return n
}

// CopyFrom overwrites the cache's entire state (contents, LRU ordering,
// statistics) with a deep copy of src, preserving c's identity so existing
// references stay valid. The two caches must have identical geometry and
// replacement policy. src is only read, so one source may be restored into
// any number of caches concurrently.
func (c *Cache) CopyFrom(src *Cache) error {
	if c.assoc != src.assoc || c.numSets != src.numSets || c.repl != src.repl {
		return fmt.Errorf("cache: cannot copy %d-set/%d-way/repl-%d state into %d-set/%d-way/repl-%d cache",
			src.numSets, src.assoc, src.repl, c.numSets, c.assoc, c.repl)
	}
	for i := range c.sets {
		copy(c.sets[i], src.sets[i])
	}
	c.clock = src.clock
	c.stats = src.stats
	if c.index != nil {
		clear(c.index)
		for _, set := range c.sets {
			for i := range set {
				if set[i].Valid {
					c.index[set[i].Key] = &set[i]
				}
			}
		}
	}
	return nil
}

// State is an immutable, flat capture of a cache's complete state: every line
// (valid or not, preserving LRU ordering) in one contiguous array, plus the
// scalar counters. Capturing costs a single allocation — unlike Clone, no
// per-set slices and no map index are built for a copy that will never be
// looked up. A State is never written through, so one state may be restored
// into many caches concurrently.
type State struct {
	lines   []Line
	assoc   int
	numSets int
	repl    Replacement
	clock   uint64
	stats   Stats
}

// CaptureState snapshots the cache's state into a single flat allocation.
func (c *Cache) CaptureState() *State {
	s := &State{
		lines:   make([]Line, 0, c.assoc*c.numSets),
		assoc:   c.assoc,
		numSets: c.numSets,
		repl:    c.repl,
		clock:   c.clock,
		stats:   c.stats,
	}
	for _, set := range c.sets {
		s.lines = append(s.lines, set...)
	}
	return s
}

// RestoreState overwrites the cache's entire state with s, preserving c's
// identity so existing references stay valid. The geometry and replacement
// policy must match the cache the state was captured from.
func (c *Cache) RestoreState(s *State) error {
	if c.assoc != s.assoc || c.numSets != s.numSets || c.repl != s.repl {
		return fmt.Errorf("cache: cannot restore %d-set/%d-way/repl-%d state into %d-set/%d-way/repl-%d cache",
			s.numSets, s.assoc, s.repl, c.numSets, c.assoc, c.repl)
	}
	for i := range c.sets {
		copy(c.sets[i], s.lines[i*c.assoc:(i+1)*c.assoc])
	}
	c.clock = s.clock
	c.stats = s.stats
	if c.index != nil {
		clear(c.index)
		for _, set := range c.sets {
			for i := range set {
				if set[i].Valid {
					c.index[set[i].Key] = &set[i]
				}
			}
		}
	}
	return nil
}

// Invalidate removes key if present, returning whether it was resident.
// Invalidations do not count as evictions in the statistics (they model
// recovery actions such as discarding a parity-faulty ITR line, Section 2.4).
func (c *Cache) Invalidate(key uint64) bool {
	if ln, ok := c.Probe(key); ok {
		*ln = Line{}
		if c.index != nil {
			delete(c.index, key)
		}
		return true
	}
	return false
}

// Visit calls fn for every valid line. Mutating lines through the pointer is
// allowed; inserting or invalidating during a visit is not.
func (c *Cache) Visit(fn func(*Line)) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].Valid {
				fn(&set[i])
			}
		}
	}
}

// CountUnchecked returns the number of valid lines whose Checked flag is
// clear. The coarse-grain checkpointing extension (Section 2.3) takes a
// checkpoint when this reaches zero.
func (c *Cache) CountUnchecked() int {
	n := 0
	c.Visit(func(ln *Line) {
		if !ln.Checked {
			n++
		}
	})
	return n
}

// ResidentUnreferenced returns the number of valid lines never referenced
// since insertion (still-pending missed instances at end of simulation).
func (c *Cache) ResidentUnreferenced() int {
	n := 0
	c.Visit(func(ln *Line) {
		if !ln.Referenced {
			n++
		}
	})
	return n
}

// Parity64 returns the even-parity bit of v (true when v has odd popcount).
func Parity64(v uint64) bool { return bits.OnesCount64(v)%2 == 1 }
