// Package cache implements a generic set-associative cache engine with true
// LRU replacement. It backs the ITR cache (keys are trace start PCs, values
// are trace signatures) and the access-counting models used for the energy
// comparison of the paper's Section 5.
//
// Associativity spans the full design space of the paper's Section 3:
// direct-mapped, 2/4/8/16-way, and fully associative.
//
// The engine is the inner loop of the design-space sweep (tens of millions
// of lookups per figure), so its layout is chosen for simulation speed, not
// hardware fidelity: all lines live in one flat array (stable pointers, one
// allocation), tag scans run over a separate compact key array (8 bytes per
// way instead of a full Line), and high-associativity sets — where a linear
// scan would be O(entries) — carry a map index plus an intrusive LRU list
// giving O(1) lookup and O(1) victim selection.
package cache

import (
	"fmt"
	"math/bits"
	"sort"
)

// Replacement selects a victim line within a set.
type Replacement int

// Replacement policies.
const (
	// ReplLRU evicts the least recently used line (the paper's baseline).
	ReplLRU Replacement = iota + 1
	// ReplCheckedLRU prefers evicting the least recently used line whose
	// Checked flag is set, falling back to plain LRU when no line in the
	// set is checked. This is the optimization sketched in Section 2.3 to
	// avoid evicting unreferenced (unchecked) signatures.
	ReplCheckedLRU
)

// Line is one cache line. Value semantics are owned by the caller (the ITR
// layer stores trace signatures).
type Line struct {
	Key   uint64
	Value uint64
	Valid bool
	// Referenced records whether the line has hit at least once since it
	// was inserted. Evicting a line with Referenced == false is exactly the
	// paper's "eviction of an unreferenced, missed instance" — a loss in
	// fault detection coverage.
	Referenced bool
	// Checked records whether the line's signature has been confirmed
	// against a newly executed instance (used by ReplCheckedLRU).
	Checked bool
	// Aux carries caller-defined per-line metadata (the ITR layer stores
	// the instruction count of the trace that installed the signature).
	Aux uint64
	// Stamp is a caller-defined installation timestamp (the ITR layer
	// stores the committed-instruction count at install, which the
	// checkpointing extension compares against checkpoint ages).
	Stamp int64
	// Parity is the caller-maintained parity bit over Value (Section 2.4).
	Parity bool

	lru uint64
}

// Stats counts cache events since construction or the last ResetStats.
type Stats struct {
	Hits                  int64
	Misses                int64
	Inserts               int64
	Evictions             int64
	EvictionsUnreferenced int64
}

// Cache is a set-associative cache. Use New to construct one; the zero value
// is not usable.
type Cache struct {
	// lines holds every line of every set contiguously: set s occupies
	// lines[s*assoc : (s+1)*assoc]. The array is allocated once in New and
	// never resized, so *Line pointers handed to callers stay valid until
	// the line is evicted.
	lines []Line
	// keys mirrors lines' Key fields for the tag scan: comparing 8-byte
	// keys touches an eighth of the memory a scan over whole Lines would.
	// A slot's key may be stale after an invalidation, so a key match is
	// confirmed against the Line before it counts.
	keys    []uint64
	assoc   int
	numSets int
	setMask uint64
	clock   uint64
	repl    Replacement
	stats   Stats
	// fill counts valid lines per set; steady-state inserts skip the
	// free-way scan entirely once a set is full.
	fill []int32
	// idx accelerates key lookup for high-associativity sets, where a
	// linear way scan (fine in hardware, O(assoc) here) dominates
	// simulation time. nil for low associativities, where the scan's
	// cache-friendly compare loop beats a hashed map access.
	idx map[uint64]int32
	// prev/next/heads/tails form an intrusive LRU list per set (most
	// recent at head, least recent at tail), maintained only alongside
	// idx: victim selection in an indexed set is O(1) instead of an
	// O(assoc) minimum-stamp scan per eviction.
	prev, next   []int32
	heads, tails []int32
}

// indexedAssocMin is the associativity at which Lookup/Probe switch from a
// linear way scan to the map index. Below it the scan's cache-friendly
// compare loop beats a hashed map access.
const indexedAssocMin = 32

// FullyAssociative requests a single set spanning all entries.
const FullyAssociative = 0

// New returns a cache with the given total entry count and associativity.
// assoc == FullyAssociative (0) makes the cache fully associative; assoc == 1
// is direct-mapped. entries must be a positive power of two and divisible by
// assoc.
func New(entries, assoc int, repl Replacement) (*Cache, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("cache entries must be a positive power of two, got %d", entries)
	}
	if assoc == FullyAssociative {
		assoc = entries
	}
	if assoc < 0 || assoc > entries || entries%assoc != 0 {
		return nil, fmt.Errorf("associativity %d incompatible with %d entries", assoc, entries)
	}
	if repl != ReplLRU && repl != ReplCheckedLRU {
		return nil, fmt.Errorf("unknown replacement policy %d", repl)
	}
	numSets := entries / assoc
	c := &Cache{
		lines:   make([]Line, entries),
		keys:    make([]uint64, entries),
		assoc:   assoc,
		numSets: numSets,
		setMask: uint64(numSets - 1),
		repl:    repl,
		fill:    make([]int32, numSets),
	}
	if assoc >= indexedAssocMin {
		c.idx = make(map[uint64]int32, entries)
		c.prev = make([]int32, entries)
		c.next = make([]int32, entries)
		c.heads = make([]int32, numSets)
		c.tails = make([]int32, numSets)
		for i := range c.heads {
			c.heads[i], c.tails[i] = -1, -1
		}
	}
	return c, nil
}

// MustNew is New but panics on configuration error; for tests and tables of
// known-good configurations.
func MustNew(entries, assoc int, repl Replacement) *Cache {
	c, err := New(entries, assoc, repl)
	if err != nil {
		panic(err)
	}
	return c
}

// Entries returns the total number of lines.
func (c *Cache) Entries() int { return c.assoc * c.numSets }

// Assoc returns the associativity (ways per set).
func (c *Cache) Assoc() int { return c.assoc }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// setIndex maps a key to its set. Keys are trace start PCs (instruction
// indexes), so low bits index directly as in a hardware PC-indexed structure.
func (c *Cache) setIndex(key uint64) uint64 { return key & c.setMask }

// ---- intrusive LRU list (indexed sets only) ----

// unlink removes line i from its set's LRU list.
func (c *Cache) unlink(i int32, set int) {
	p, n := c.prev[i], c.next[i]
	if p >= 0 {
		c.next[p] = n
	} else {
		c.heads[set] = n
	}
	if n >= 0 {
		c.prev[n] = p
	} else {
		c.tails[set] = p
	}
}

// pushFront makes line i the most recently used of its set.
func (c *Cache) pushFront(i int32, set int) {
	h := c.heads[set]
	c.prev[i], c.next[i] = -1, h
	if h >= 0 {
		c.prev[h] = i
	} else {
		c.tails[set] = i
	}
	c.heads[set] = i
}

// touch moves an already-listed line to the front of its set's LRU list.
func (c *Cache) touch(i int32, set int) {
	if c.heads[set] == i {
		return
	}
	c.unlink(i, set)
	c.pushFront(i, set)
}

// rebuildAux reconstructs keys, fill and — for indexed caches — the map
// index and LRU lists from the line array. Used by the (cold) restore paths;
// LRU stamps are the durable representation of recency, and the lists are
// re-derived from them.
func (c *Cache) rebuildAux() {
	for i := range c.fill {
		c.fill[i] = 0
	}
	for i := range c.lines {
		if c.lines[i].Valid {
			c.keys[i] = c.lines[i].Key
			c.fill[i/c.assoc]++
		} else {
			c.keys[i] = 0
		}
	}
	if c.idx == nil {
		return
	}
	clear(c.idx)
	for i := range c.heads {
		c.heads[i], c.tails[i] = -1, -1
	}
	valid := make([]int32, 0, len(c.lines))
	for i := range c.lines {
		if c.lines[i].Valid {
			c.idx[c.lines[i].Key] = int32(i)
			valid = append(valid, int32(i))
		}
	}
	// Oldest first, so successive pushFront calls leave the most recently
	// used line at the head — the order victim selection depends on.
	sort.Slice(valid, func(a, b int) bool { return c.lines[valid[a]].lru < c.lines[valid[b]].lru })
	for _, i := range valid {
		c.pushFront(i, int(i)/c.assoc)
	}
}

// Lookup finds key, updating LRU state and the Referenced flag on a hit.
// The returned pointer stays valid until the line is evicted; callers may
// update Value/Checked/Parity/Aux through it.
func (c *Cache) Lookup(key uint64) (*Line, bool) {
	if i := c.find(key); i >= 0 {
		c.clock++
		ln := &c.lines[i]
		ln.lru = c.clock
		ln.Referenced = true
		c.stats.Hits++
		if c.idx != nil {
			c.touch(i, int(i)/c.assoc)
		}
		return ln, true
	}
	c.stats.Misses++
	return nil, false
}

// Probe finds key without updating LRU, Referenced, or statistics.
func (c *Cache) Probe(key uint64) (*Line, bool) {
	if i := c.find(key); i >= 0 {
		return &c.lines[i], true
	}
	return nil, false
}

// find returns the index of the valid line holding key, or -1.
func (c *Cache) find(key uint64) int32 {
	if c.idx != nil {
		if i, ok := c.idx[key]; ok {
			return i
		}
		return -1
	}
	base := int(c.setIndex(key)) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		// The key slot can be stale after an invalidation, so confirm
		// against the line before counting the match.
		if c.keys[i] == key && c.lines[i].Valid && c.lines[i].Key == key {
			return int32(i)
		}
	}
	return -1
}

// Insert installs (key, value), evicting a victim if the set is full. It
// returns the evicted line (Valid == true) if an eviction occurred. If key is
// already present its line is overwritten in place (no eviction).
func (c *Cache) Insert(key, value uint64) (evicted Line, wasEvicted bool) {
	_, evicted, wasEvicted = c.InsertGet(key, value)
	return evicted, wasEvicted
}

// InsertGet is Insert returning the installed line as well, so callers that
// decorate fresh lines (Aux, Stamp, Parity, Checked) do not pay a second
// lookup — the miss path of the coverage sweep calls this once per miss
// instead of Insert plus Probe.
func (c *Cache) InsertGet(key, value uint64) (ln *Line, evicted Line, wasEvicted bool) {
	c.stats.Inserts++
	c.clock++
	if i := c.find(key); i >= 0 {
		ln = &c.lines[i]
		ln.Value = value
		ln.lru = c.clock
		if c.idx != nil {
			c.touch(i, int(i)/c.assoc)
		}
		return ln, Line{}, false
	}

	si := int(c.setIndex(key))
	base := si * c.assoc
	victim := -1
	if int(c.fill[si]) < c.assoc {
		for i := base; i < base+c.assoc; i++ {
			if !c.lines[i].Valid {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		victim = c.pickVictim(si)
		ev := &c.lines[victim]
		evicted = *ev
		wasEvicted = true
		c.stats.Evictions++
		if !evicted.Referenced {
			c.stats.EvictionsUnreferenced++
		}
		if c.idx != nil {
			delete(c.idx, evicted.Key)
			c.unlink(int32(victim), si)
		}
	} else {
		c.fill[si]++
	}
	c.lines[victim] = Line{Key: key, Value: value, Valid: true, lru: c.clock}
	c.keys[victim] = key
	if c.idx != nil {
		c.idx[key] = int32(victim)
		c.pushFront(int32(victim), si)
	}
	return &c.lines[victim], evicted, wasEvicted
}

// pickVictim chooses a victim index within the (full) set si per the policy.
func (c *Cache) pickVictim(si int) int {
	if c.idx != nil {
		// The LRU list makes victim selection O(1): the tail is the
		// least recently used line. CheckedLRU walks from the tail toward
		// recency for the oldest checked line — the same line a full
		// minimum-stamp scan over checked lines would pick.
		if c.repl == ReplCheckedLRU {
			for i := c.tails[si]; i >= 0; i = c.prev[i] {
				if c.lines[i].Checked {
					return int(i)
				}
			}
			// No checked line in the set: the optimization breaks down
			// here (as the paper notes) and we fall back to plain LRU.
		}
		return int(c.tails[si])
	}
	base := si * c.assoc
	switch c.repl {
	case ReplCheckedLRU:
		best := -1
		for i := base; i < base+c.assoc; i++ {
			if !c.lines[i].Checked {
				continue
			}
			if best < 0 || c.lines[i].lru < c.lines[best].lru {
				best = i
			}
		}
		if best >= 0 {
			return best
		}
		fallthrough
	default:
		best := base
		for i := base + 1; i < base+c.assoc; i++ {
			if c.lines[i].lru < c.lines[best].lru {
				best = i
			}
		}
		return best
	}
}

// Clone returns a deep copy of the cache: contents, LRU ordering, and
// statistics. The clone shares nothing with the original, so snapshot layers
// can retain it while the original keeps running.
func (c *Cache) Clone() *Cache {
	n := MustNew(c.Entries(), c.assoc, c.repl)
	if err := n.CopyFrom(c); err != nil {
		panic(err) // unreachable: geometry matches by construction
	}
	return n
}

// CopyFrom overwrites the cache's entire state (contents, LRU ordering,
// statistics) with a deep copy of src, preserving c's identity so existing
// references stay valid. The two caches must have identical geometry and
// replacement policy. src is only read, so one source may be restored into
// any number of caches concurrently.
func (c *Cache) CopyFrom(src *Cache) error {
	if c.assoc != src.assoc || c.numSets != src.numSets || c.repl != src.repl {
		return fmt.Errorf("cache: cannot copy %d-set/%d-way/repl-%d state into %d-set/%d-way/repl-%d cache",
			src.numSets, src.assoc, src.repl, c.numSets, c.assoc, c.repl)
	}
	copy(c.lines, src.lines)
	c.clock = src.clock
	c.stats = src.stats
	c.rebuildAux()
	return nil
}

// State is an immutable, flat capture of a cache's complete state: every line
// (valid or not, preserving LRU ordering) in one contiguous array, plus the
// scalar counters. Capturing costs a single allocation — unlike Clone, no
// map index or LRU list is built for a copy that will never be looked up. A
// State is never written through, so one state may be restored into many
// caches concurrently.
type State struct {
	lines   []Line
	assoc   int
	numSets int
	repl    Replacement
	clock   uint64
	stats   Stats
}

// CaptureState snapshots the cache's state into a single flat allocation.
func (c *Cache) CaptureState() *State {
	s := &State{
		lines:   make([]Line, len(c.lines)),
		assoc:   c.assoc,
		numSets: c.numSets,
		repl:    c.repl,
		clock:   c.clock,
		stats:   c.stats,
	}
	copy(s.lines, c.lines)
	return s
}

// RestoreState overwrites the cache's entire state with s, preserving c's
// identity so existing references stay valid. The geometry and replacement
// policy must match the cache the state was captured from.
func (c *Cache) RestoreState(s *State) error {
	if c.assoc != s.assoc || c.numSets != s.numSets || c.repl != s.repl {
		return fmt.Errorf("cache: cannot restore %d-set/%d-way/repl-%d state into %d-set/%d-way/repl-%d cache",
			s.numSets, s.assoc, s.repl, c.numSets, c.assoc, c.repl)
	}
	copy(c.lines, s.lines)
	c.clock = s.clock
	c.stats = s.stats
	c.rebuildAux()
	return nil
}

// Invalidate removes key if present, returning whether it was resident.
// Invalidations do not count as evictions in the statistics (they model
// recovery actions such as discarding a parity-faulty ITR line, Section 2.4).
func (c *Cache) Invalidate(key uint64) bool {
	if i := c.find(key); i >= 0 {
		si := int(i) / c.assoc
		if c.idx != nil {
			delete(c.idx, key)
			c.unlink(i, si)
		}
		c.lines[i] = Line{}
		c.keys[i] = 0
		c.fill[si]--
		return true
	}
	return false
}

// Visit calls fn for every valid line. Mutating lines through the pointer is
// allowed — except Key and Valid, which the key scan and index depend on;
// inserting or invalidating during a visit is not.
func (c *Cache) Visit(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].Valid {
			fn(&c.lines[i])
		}
	}
}

// CountUnchecked returns the number of valid lines whose Checked flag is
// clear. The coarse-grain checkpointing extension (Section 2.3) takes a
// checkpoint when this reaches zero.
func (c *Cache) CountUnchecked() int {
	n := 0
	c.Visit(func(ln *Line) {
		if !ln.Checked {
			n++
		}
	})
	return n
}

// ResidentUnreferenced returns the number of valid lines never referenced
// since insertion (still-pending missed instances at end of simulation).
func (c *Cache) ResidentUnreferenced() int {
	n := 0
	c.Visit(func(ln *Line) {
		if !ln.Referenced {
			n++
		}
	})
	return n
}

// Parity64 returns the even-parity bit of v (true when v has odd popcount).
func Parity64(v uint64) bool { return bits.OnesCount64(v)%2 == 1 }
