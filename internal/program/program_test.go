package program

import (
	"errors"
	"strings"
	"testing"

	"itr/internal/isa"
)

func buildLoop(t *testing.T, iters int16) *Program {
	t.Helper()
	b := NewBuilder("loop")
	b.OpImm(isa.OpAddi, 1, 0, iters) // r1 = iters
	b.Label("top")
	b.OpImm(isa.OpAddi, 2, 2, 1) // r2++
	b.OpImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "top")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestBuilderLoopExecutes(t *testing.T) {
	p := buildLoop(t, 10)
	executed, halted := Run(p, 0, nil)
	if !halted {
		t.Fatal("program did not halt")
	}
	// 1 init + 10*(3 loop insts) + halt = 32
	if executed != 32 {
		t.Fatalf("executed %d instructions", executed)
	}
}

func TestRunObservesArchitecture(t *testing.T) {
	p := buildLoop(t, 5)
	var lastWrite uint64
	Run(p, 0, func(pc uint64, inst isa.Instruction, o isa.Outcome) bool {
		if o.RegWrite && o.Reg == 2 {
			lastWrite = o.Value
		}
		return true
	})
	if lastWrite != 5 {
		t.Fatalf("r2 final = %d, want 5", lastWrite)
	}
}

func TestRunLimit(t *testing.T) {
	p := buildLoop(t, 1000)
	executed, halted := Run(p, 10, nil)
	if halted || executed != 10 {
		t.Fatalf("executed=%d halted=%v", executed, halted)
	}
}

func TestRunEarlyStop(t *testing.T) {
	p := buildLoop(t, 1000)
	n := 0
	executed, _ := Run(p, 0, func(uint64, isa.Instruction, isa.Outcome) bool {
		n++
		return n < 5
	})
	if executed != 5 {
		t.Fatalf("executed=%d, want 5", executed)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Branch(isa.OpBeq, 0, 0, "nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderRedefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Label("x")
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "redefined") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderBranchRangeCheck(t *testing.T) {
	b := NewBuilder("far")
	b.Branch(isa.OpBeq, 0, 0, "far_away")
	for i := 0; i < 40000; i++ {
		b.OpImm(isa.OpAddi, 1, 1, 1)
	}
	b.Label("far_away")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "displacement") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderJumpReachesFar(t *testing.T) {
	b := NewBuilder("farjump")
	b.Jump("far_away")
	for i := 0; i < 40000; i++ {
		b.OpImm(isa.OpAddi, 1, 1, 1)
	}
	b.Label("far_away")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("26-bit jump should reach: %v", err)
	}
	executed, halted := Run(p, 0, nil)
	if !halted || executed != 2 {
		t.Fatalf("executed=%d halted=%v", executed, halted)
	}
}

func TestVerifyRejectsMissingHalt(t *testing.T) {
	p := &Program{Name: "nohalt", Insts: []isa.Instruction{{Op: isa.OpNop}}}
	if err := Verify(p); !errors.Is(err, ErrNoHalt) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsBadTarget(t *testing.T) {
	p := &Program{Name: "bad", Insts: []isa.Instruction{
		{Op: isa.OpJ, Target: 100},
		{Op: isa.OpHalt},
	}}
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "target") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsInvalidOpcode(t *testing.T) {
	p := &Program{Name: "bad", Insts: []isa.Instruction{
		{Op: isa.Opcode(240)},
		{Op: isa.OpHalt},
	}}
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "opcode") {
		t.Fatalf("err = %v", err)
	}
}

func TestFetchOutOfRangeHalts(t *testing.T) {
	p := buildLoop(t, 1)
	inst := p.Fetch(uint64(p.Len()) + 100)
	if inst.Op != isa.OpHalt {
		t.Fatalf("out-of-image fetch = %v", inst)
	}
}

func TestCallAndReturn(t *testing.T) {
	b := NewBuilder("callret")
	b.Call("fn", 31)
	b.OpImm(isa.OpAddi, 3, 3, 100) // after return
	b.Halt()
	b.Label("fn")
	b.OpImm(isa.OpAddi, 4, 0, 7)
	b.Return(31)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var r3, r4 uint64
	Run(p, 0, func(pc uint64, inst isa.Instruction, o isa.Outcome) bool {
		if o.RegWrite {
			switch o.Reg {
			case 3:
				r3 = o.Value
			case 4:
				r4 = o.Value
			}
		}
		return true
	})
	if r3 != 100 || r4 != 7 {
		t.Fatalf("r3=%d r4=%d", r3, r4)
	}
}

func TestLoadImm64(t *testing.T) {
	b := NewBuilder("imm")
	b.LoadImm64(5, 0xdeadbeef)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	Run(p, 0, func(pc uint64, inst isa.Instruction, o isa.Outcome) bool {
		if o.RegWrite && o.Reg == 5 {
			got = o.Value
		}
		return true
	})
	if got != 0xdeadbeef {
		t.Fatalf("LoadImm64 = %#x", got)
	}
}

func TestLoadImm64LowZero(t *testing.T) {
	b := NewBuilder("imm0")
	b.LoadImm64(5, 0x10000)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := isa.NewArchState()
	RunFrom(p, st, 0, nil)
	if st.R[5] != 0x10000 {
		t.Fatalf("r5 = %#x", st.R[5])
	}
	// With a zero low half, only the lui is emitted.
	if p.Len() != 2 {
		t.Fatalf("program length %d, want 2 (lui + halt)", p.Len())
	}
}

func TestBackwardAndForwardBranches(t *testing.T) {
	b := NewBuilder("dirs")
	b.OpImm(isa.OpAddi, 1, 0, 2)
	b.Label("back")
	b.OpImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBeq, 1, 0, "fwd") // exits loop when r1 == 0
	b.Branch(isa.OpBne, 1, 0, "back")
	b.Label("fwd")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, halted := Run(p, 100, nil)
	if !halted {
		t.Fatal("did not halt")
	}
}
