// Package program provides the static program representation executed by the
// simulators: a flat instruction image with an entry point, plus a builder
// with labels and control-flow fixups, and a functional runner.
//
// Programs built here stand in for SPEC2K binaries: the workload package
// synthesizes loop-nest programs whose trace-repetition behaviour is
// calibrated to the paper's characterization (Table 1, Figures 1-4).
package program

import (
	"errors"
	"fmt"
	"sync/atomic"

	"itr/internal/isa"
)

// Program is an assembled program: a flat image of instructions addressed by
// instruction index (PC counts instructions, not bytes). Programs are
// immutable once constructed; do not modify Insts after the first execution
// or DecodeTable call.
type Program struct {
	Name  string
	Insts []isa.Instruction
	Entry uint64
	// DataBase is the lowest data address the program's initialization
	// assumes; purely informational.
	DataBase uint64

	// table is the lazily built, atomically published decode memoization.
	table atomic.Pointer[DecodeTable]
}

// DecodeTable returns the program's memoized per-static-instruction decode
// table, building it on first use. Build pre-warms it, so programs from the
// builder or the assembler pay nothing here; directly constructed Programs
// build it lazily. Safe for concurrent use.
func (p *Program) DecodeTable() *DecodeTable {
	if t := p.table.Load(); t != nil {
		return t
	}
	// Two goroutines may race to build; both produce identical tables and
	// CompareAndSwap keeps the first, so every caller sees one winner.
	p.table.CompareAndSwap(nil, newDecodeTable(p.Insts))
	return p.table.Load()
}

// Len returns the number of static instructions in the image.
func (p *Program) Len() int { return len(p.Insts) }

// Fetch returns the instruction at pc. Out-of-image fetches (possible under
// PC faults) return a halt instruction so runaway execution terminates.
func (p *Program) Fetch(pc uint64) isa.Instruction {
	if pc >= uint64(len(p.Insts)) {
		return isa.Instruction{Op: isa.OpHalt}
	}
	return p.Insts[pc]
}

// ErrNoHalt is returned by Build when a program has no reachable halt.
var ErrNoHalt = errors.New("program contains no halt instruction")

// fixup records a control-flow operand to resolve once all labels are known.
type fixup struct {
	at     int    // instruction index to patch
	label  string // target label
	direct bool   // true: 26-bit absolute target; false: 16-bit displacement
}

// Builder assembles a Program incrementally. It is not safe for concurrent
// use.
type Builder struct {
	name   string
	insts  []isa.Instruction
	labels map[string]uint64
	fixups []fixup
	errs   []error
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]uint64)}
}

// PC returns the index of the next instruction to be emitted.
func (b *Builder) PC() uint64 { return uint64(len(b.insts)) }

// Label defines name at the current PC. Redefinition is an error reported by
// Build.
func (b *Builder) Label(name string) {
	if _, ok := b.labels[name]; ok {
		b.errs = append(b.errs, fmt.Errorf("label %q redefined", name))
		return
	}
	b.labels[name] = b.PC()
}

// Emit appends a raw instruction.
func (b *Builder) Emit(inst isa.Instruction) {
	b.insts = append(b.insts, inst)
}

// Op emits a register-register ALU operation rd = rs1 <op> rs2.
func (b *Builder) Op(op isa.Opcode, rd, rs1, rs2 isa.RegID) {
	b.Emit(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpImm emits an immediate ALU operation rd = rs1 <op> imm.
func (b *Builder) OpImm(op isa.Opcode, rd, rs1 isa.RegID, imm int16) {
	b.Emit(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Imm: uint16(imm)})
}

// Shift emits a shift rd = rs1 <op> shamt.
func (b *Builder) Shift(op isa.Opcode, rd, rs1 isa.RegID, shamt uint8) {
	b.Emit(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Shamt: shamt & 0x1f})
}

// Load emits rd = mem[rs1 + imm].
func (b *Builder) Load(op isa.Opcode, rd, base isa.RegID, imm int16) {
	b.Emit(isa.Instruction{Op: op, Rd: rd, Rs1: base, Imm: uint16(imm)})
}

// Store emits mem[base + imm] = rs2.
func (b *Builder) Store(op isa.Opcode, rs2, base isa.RegID, imm int16) {
	b.Emit(isa.Instruction{Op: op, Rs1: base, Rs2: rs2, Imm: uint16(imm)})
}

// Branch emits a conditional branch comparing rs1 and rs2, targeting label.
func (b *Builder) Branch(op isa.Opcode, rs1, rs2 isa.RegID, label string) {
	b.fixups = append(b.fixups, fixup{at: len(b.insts), label: label})
	b.Emit(isa.Instruction{Op: op, Rs1: rs1, Rs2: rs2})
}

// Jump emits an unconditional direct jump to label.
func (b *Builder) Jump(label string) {
	b.fixups = append(b.fixups, fixup{at: len(b.insts), label: label, direct: true})
	b.Emit(isa.Instruction{Op: isa.OpJ})
}

// Call emits a direct call (jal) to label with the return address in rd.
func (b *Builder) Call(label string, rd isa.RegID) {
	b.fixups = append(b.fixups, fixup{at: len(b.insts), label: label, direct: true})
	b.Emit(isa.Instruction{Op: isa.OpJal, Rd: rd})
}

// Return emits a register-indirect jump through rs1.
func (b *Builder) Return(rs1 isa.RegID) {
	b.Emit(isa.Instruction{Op: isa.OpJr, Rs1: rs1})
}

// Halt emits a program-terminating trap.
func (b *Builder) Halt() { b.Emit(isa.Instruction{Op: isa.OpHalt}) }

// LoadImm64 emits a short sequence materializing a 32-bit constant in rd.
func (b *Builder) LoadImm64(rd isa.RegID, v uint32) {
	b.OpImm(isa.OpLui, rd, 0, int16(v>>16))
	if low := uint16(v); low != 0 {
		b.OpImm(isa.OpOri, rd, rd, int16(low))
	}
}

// Build resolves fixups, verifies the program and returns it.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", f.label)
		}
		if f.direct {
			if target >= 1<<26 {
				return nil, fmt.Errorf("label %q at %d exceeds 26-bit direct range", f.label, target)
			}
			b.insts[f.at].Target = uint32(target)
			continue
		}
		disp := int64(target) - int64(f.at) - 1
		if disp < -(1<<15) || disp >= 1<<15 {
			return nil, fmt.Errorf("branch at %d to %q: displacement %d exceeds 16-bit range", f.at, f.label, disp)
		}
		b.insts[f.at].Imm = uint16(int16(disp))
	}
	p := &Program{Name: b.name, Insts: b.insts}
	if err := Verify(p); err != nil {
		return nil, err
	}
	// Pre-warm the decode memoization: one decode per static instruction
	// here saves two per dynamic instruction in every simulator hot loop.
	p.DecodeTable()
	return p, nil
}

// Verify checks static well-formedness of a program: at least one halt, all
// direct targets inside the image, and all register fields in range.
func Verify(p *Program) error {
	hasHalt := false
	for i, inst := range p.Insts {
		if inst.Op == isa.OpHalt {
			hasHalt = true
		}
		if !inst.Op.Valid() {
			return fmt.Errorf("instruction %d: invalid opcode %d", i, inst.Op)
		}
		if inst.Rd >= isa.NumRegs || inst.Rs1 >= isa.NumRegs || inst.Rs2 >= isa.NumRegs {
			return fmt.Errorf("instruction %d: register out of range", i)
		}
		if (inst.Op == isa.OpJ || inst.Op == isa.OpJal) && uint64(inst.Target) >= uint64(len(p.Insts)) {
			return fmt.Errorf("instruction %d: direct target %d outside image", i, inst.Target)
		}
	}
	if !hasHalt {
		return ErrNoHalt
	}
	return nil
}

// StepFunc observes one functionally executed instruction. Returning false
// stops the run.
type StepFunc func(pc uint64, inst isa.Instruction, o isa.Outcome) bool

// Run executes p functionally from its entry for at most limit dynamic
// instructions (limit <= 0 means unbounded), invoking fn for each. It
// returns the number of instructions executed and whether the program halted
// of its own accord.
func Run(p *Program, limit int64, fn StepFunc) (executed int64, halted bool) {
	st := isa.NewArchState()
	st.PC = p.Entry
	return RunFrom(p, st, limit, fn)
}

// RunFrom is Run starting from an existing architectural state. Execution
// reads decode signals from the program's memoized DecodeTable instead of
// re-decoding each dynamic instruction.
func RunFrom(p *Program, st *isa.ArchState, limit int64, fn StepFunc) (executed int64, halted bool) {
	tab := p.DecodeTable()
	for limit <= 0 || executed < limit {
		pc := st.PC
		o := st.Exec(tab.Signals(pc), pc)
		st.Apply(o)
		executed++
		if fn != nil && !fn(pc, p.Fetch(pc), o) {
			return executed, false
		}
		if o.Halt {
			return executed, true
		}
	}
	return executed, false
}
