package program

import (
	"sync"
	"testing"

	"itr/internal/isa"
)

// cornerInstructions enumerates every valid opcode crossed with field
// corners: register IDs at {0, mid, max}, shift amounts at {0, max},
// immediates at {0, max-positive, min-negative, all-ones}, and for the
// J-type opcodes the 26-bit direct target corners (whose decode splits the
// target across the imm, shamt and rsrc2 signal fields).
func cornerInstructions() []isa.Instruction {
	regs := []isa.RegID{0, 5, 31}
	shamts := []uint8{0, 31}
	imms := []uint16{0, 0x7fff, 0x8000, 0xffff}
	targets := []uint32{0, 1, 0xffff + 1, 1<<26 - 1}

	var insts []isa.Instruction
	for op := 0; op < 256; op++ {
		o := isa.Opcode(op)
		if !o.Valid() {
			continue
		}
		for _, rd := range regs {
			for _, rs1 := range regs {
				for _, rs2 := range regs {
					for _, sh := range shamts {
						for _, imm := range imms {
							inst := isa.Instruction{Op: o, Rd: rd, Rs1: rs1, Rs2: rs2, Shamt: sh, Imm: imm}
							if o == isa.OpJ || o == isa.OpJal {
								for _, tg := range targets {
									inst.Target = tg
									insts = append(insts, inst)
								}
							} else {
								insts = append(insts, inst)
							}
						}
					}
				}
			}
		}
	}
	return insts
}

// TestDecodeTableMatchesDecode is the memoization correctness property: for
// every static instruction, the precomputed table entry must equal a fresh
// isa.Decode of that instruction — signals structurally, words bit for bit.
func TestDecodeTableMatchesDecode(t *testing.T) {
	insts := cornerInstructions()
	p := &Program{Insts: insts}
	tab := p.DecodeTable()
	if tab.Len() != len(insts) {
		t.Fatalf("table length %d, want %d", tab.Len(), len(insts))
	}
	for i, inst := range insts {
		pc := uint64(i)
		want := isa.Decode(inst)
		if got := tab.Signals(pc); got != want {
			t.Fatalf("pc %d (%+v): memoized signals %+v, want %+v", pc, inst, got, want)
		}
		if got, want := tab.Word(pc), want.Pack(); got != want {
			t.Fatalf("pc %d (%+v): memoized word %#x, want %#x", pc, inst, got, want)
		}
	}
}

// TestDecodeTableOutOfRange checks the table mirrors Program.Fetch for PCs
// past the image: a halt instruction.
func TestDecodeTableOutOfRange(t *testing.T) {
	p := &Program{Insts: []isa.Instruction{{Op: isa.OpAddi, Rd: 1, Imm: 7}}}
	tab := p.DecodeTable()
	halt := isa.Decode(isa.Instruction{Op: isa.OpHalt})
	for _, pc := range []uint64{1, 2, 1 << 40} {
		if got := tab.Signals(pc); got != halt {
			t.Fatalf("pc %d: signals %+v, want halt %+v", pc, got, halt)
		}
		if got, want := tab.Word(pc), halt.Pack(); got != want {
			t.Fatalf("pc %d: word %#x, want halt %#x", pc, got, want)
		}
	}
}

// TestDecodeTableConcurrent publishes the table from many goroutines at once;
// all callers must observe the same table (run under -race in CI).
func TestDecodeTableConcurrent(t *testing.T) {
	p := &Program{Insts: cornerInstructions()[:64]}
	tabs := make([]*DecodeTable, 16)
	var wg sync.WaitGroup
	for i := range tabs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tabs[i] = p.DecodeTable()
		}(i)
	}
	wg.Wait()
	for i, tab := range tabs {
		if tab != tabs[0] {
			t.Fatalf("goroutine %d observed a different table: %p vs %p", i, tab, tabs[0])
		}
	}
}
