package program

import "itr/internal/isa"

// DecodeTable is the per-static-instruction decode memoization exploited by
// every simulator hot loop. The paper's central observation is that decode
// signals depend only on the static instruction, never on data — so the full
// Table 2 signal vector and its packed 64-bit word can be computed once per
// static instruction at program-build time and reused for every dynamic
// instance. The table turns the per-dynamic-instruction decode of the
// functional runner, the trace former, and the signature oracle into an array
// index.
//
// A DecodeTable is immutable after construction and safe for concurrent use
// by any number of goroutines (the parallel sweep engine shares one table per
// cached program across all workers). Fault injection never mutates the
// table: injectors corrupt the per-dynamic-instance copy of the signals after
// the table lookup, exactly as a transient upsets one decode event in
// hardware while the instruction image stays clean.
type DecodeTable struct {
	sigs  []isa.DecodeSignals
	words []uint64
}

// Out-of-image fetches decode as halt, mirroring Program.Fetch.
var (
	haltSignals = isa.Decode(isa.Instruction{Op: isa.OpHalt})
	haltWord    = isa.Decode(isa.Instruction{Op: isa.OpHalt}).Pack()
)

// newDecodeTable precomputes the signal vectors and packed words of insts.
func newDecodeTable(insts []isa.Instruction) *DecodeTable {
	t := &DecodeTable{
		sigs:  make([]isa.DecodeSignals, len(insts)),
		words: make([]uint64, len(insts)),
	}
	for i, inst := range insts {
		d := isa.Decode(inst)
		t.sigs[i] = d
		t.words[i] = d.Pack()
	}
	return t
}

// Len returns the number of static instructions covered by the table.
func (t *DecodeTable) Len() int { return len(t.sigs) }

// Signals returns the decode-signal vector of the instruction at pc.
// Out-of-image pcs (possible under PC faults) decode as halt.
func (t *DecodeTable) Signals(pc uint64) isa.DecodeSignals {
	if pc >= uint64(len(t.sigs)) {
		return haltSignals
	}
	return t.sigs[pc]
}

// Word returns the packed 64-bit signal word of the instruction at pc.
// Out-of-image pcs decode as halt.
func (t *DecodeTable) Word(pc uint64) uint64 {
	if pc >= uint64(len(t.words)) {
		return haltWord
	}
	return t.words[pc]
}
