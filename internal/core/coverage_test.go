package core

import (
	"testing"
	"testing/quick"

	"itr/internal/cache"
	"itr/internal/trace"
)

func ev(pc uint64, n int) trace.Event {
	return trace.Event{StartPC: pc, Len: n, Sig: pc * 31}
}

func TestConfigString(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Entries: 1024, Assoc: 2}, "2-way/1024"},
		{Config{Entries: 256, Assoc: 1}, "dm/256"},
		{Config{Entries: 512, Assoc: cache.FullyAssociative}, "fa/512"},
	}
	for _, c := range cases {
		if got := c.cfg.String(); got != c.want {
			t.Errorf("%+v => %q, want %q", c.cfg, got, c.want)
		}
	}
}

func TestDefaultConfigIsPaperHeadline(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Entries != 1024 || cfg.Assoc != 2 {
		t.Fatalf("default config %+v; the paper's Sections 4-5 use 2-way/1024", cfg)
	}
}

func TestDesignSpaceIs18Points(t *testing.T) {
	ds := DesignSpace()
	if len(ds) != 18 {
		t.Fatalf("design space has %d points, want 18 (3 sizes x 6 assocs)", len(ds))
	}
	seen := make(map[string]bool)
	for _, cfg := range ds {
		if seen[cfg.String()] {
			t.Fatalf("duplicate config %s", cfg)
		}
		seen[cfg.String()] = true
		if _, err := cfg.NewCache(); err != nil {
			t.Fatalf("config %s invalid: %v", cfg, err)
		}
	}
}

func TestCoverageAllHitsNoLoss(t *testing.T) {
	s, err := NewCoverageSim(Config{Entries: 16, Assoc: cache.FullyAssociative})
	if err != nil {
		t.Fatal(err)
	}
	// One trace repeating forever: one compulsory miss, then hits.
	for i := 0; i < 100; i++ {
		s.Access(ev(1, 8))
	}
	r := s.Result()
	if r.TotalInsts != 800 || r.TraceEvents != 100 {
		t.Fatalf("totals: %+v", r)
	}
	if r.RecoveryLoss != 1.0 { // 8/800 from the compulsory miss
		t.Fatalf("recovery loss = %v, want 1.0", r.RecoveryLoss)
	}
	if r.DetectionLoss != 0 {
		t.Fatalf("detection loss = %v, want 0 (line never evicted)", r.DetectionLoss)
	}
}

func TestCoverageEvictionUnreferencedChargesDetection(t *testing.T) {
	s, err := NewCoverageSim(Config{Entries: 2, Assoc: cache.FullyAssociative})
	if err != nil {
		t.Fatal(err)
	}
	// Three distinct traces cycle: capacity 2, so every access misses and
	// every eviction is unreferenced.
	for i := 0; i < 30; i++ {
		s.Access(ev(uint64(i%3), 10))
	}
	r := s.Result()
	if r.RecoveryLoss != 100 {
		t.Fatalf("recovery loss = %v, want 100", r.RecoveryLoss)
	}
	// All evictions are unreferenced; 28 of 30 instances' lines get
	// evicted (2 remain resident), so detection loss = 280/300.
	if r.DetectionLoss < 90 || r.DetectionLoss > 95 {
		t.Fatalf("detection loss = %v", r.DetectionLoss)
	}
	if r.ResidentUnreferenced != 2 {
		t.Fatalf("resident unreferenced = %d", r.ResidentUnreferenced)
	}
}

func TestCoverageDetectionNeverExceedsRecovery(t *testing.T) {
	if err := quick.Check(func(pcs []uint8, lens []uint8) bool {
		s, err := NewCoverageSim(Config{Entries: 8, Assoc: 2})
		if err != nil {
			return false
		}
		for i, pc := range pcs {
			n := 5
			if i < len(lens) {
				n = int(lens[i]%16) + 1
			}
			s.Access(ev(uint64(pc%40), n))
		}
		r := s.Result()
		return r.DetectionLoss <= r.RecoveryLoss+1e-9
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageLargerCacheNeverWorseRecovery(t *testing.T) {
	// Recovery loss counts misses; for the same fully-associative LRU
	// stream a larger cache has fewer misses (LRU inclusion property).
	streamGen := func(seed uint8) []trace.Event {
		var out []trace.Event
		for i := 0; i < 500; i++ {
			pc := uint64((i*int(seed+3) + i*i) % 60)
			out = append(out, ev(pc, 7))
		}
		return out
	}
	for seed := uint8(0); seed < 10; seed++ {
		small, _ := NewCoverageSim(Config{Entries: 16, Assoc: cache.FullyAssociative})
		big, _ := NewCoverageSim(Config{Entries: 64, Assoc: cache.FullyAssociative})
		for _, e := range streamGen(seed) {
			small.Access(e)
			big.Access(e)
		}
		if big.Result().RecoveryLoss > small.Result().RecoveryLoss+1e-9 {
			t.Fatalf("seed %d: bigger fa cache lost more recovery coverage", seed)
		}
	}
}

func TestCoverageMissFallbackRestoresRecovery(t *testing.T) {
	base, _ := NewCoverageSim(Config{Entries: 2, Assoc: cache.FullyAssociative})
	fb, _ := NewCoverageSim(Config{Entries: 2, Assoc: cache.FullyAssociative, MissFallback: true})
	for i := 0; i < 30; i++ {
		e := ev(uint64(i%3), 10)
		base.Access(e)
		fb.Access(e)
	}
	rb, rf := base.Result(), fb.Result()
	if rb.RecoveryLoss == 0 {
		t.Fatal("baseline should lose recovery coverage")
	}
	if rf.RecoveryLoss != 0 || rf.DetectionLoss != 0 {
		t.Fatalf("fallback still loses coverage: %+v", rf)
	}
	if rf.FallbackInsts != rb.TotalInsts {
		// Every access misses in this stream, so all instructions are
		// refetched.
		t.Fatalf("fallback insts = %d, want %d", rf.FallbackInsts, rb.TotalInsts)
	}
}

func TestCoverageReadsWritesForEnergyModel(t *testing.T) {
	s, _ := NewCoverageSim(Config{Entries: 16, Assoc: 2})
	for i := 0; i < 10; i++ {
		s.Access(ev(uint64(i%2), 5))
	}
	r := s.Result()
	if r.Reads != 10 {
		t.Fatalf("reads = %d, want one per dispatched trace", r.Reads)
	}
	if r.Writes != 2 {
		t.Fatalf("writes = %d, want one per miss install", r.Writes)
	}
}

func TestCoverageInvalidConfig(t *testing.T) {
	if _, err := NewCoverageSim(Config{Entries: 100, Assoc: 3}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCoverageResultString(t *testing.T) {
	s, _ := NewCoverageSim(DefaultConfig())
	s.Access(ev(1, 5))
	if s.Result().String() == "" {
		t.Fatal("empty render")
	}
}

func TestCoverageWarmChargesNothing(t *testing.T) {
	s, err := NewCoverageSim(Config{Entries: 2, Assoc: cache.FullyAssociative})
	if err != nil {
		t.Fatal(err)
	}
	// Warm with a thrashing stream: no accounting.
	for i := 0; i < 30; i++ {
		s.Warm(ev(uint64(i%3), 10))
	}
	r := s.Result()
	if r.TotalInsts != 0 || r.DetectionLoss != 0 || r.RecoveryLoss != 0 {
		t.Fatalf("warm-up charged: %+v", r)
	}
	// After warm-up, the cache is populated: a hit costs nothing.
	s.Access(ev(2, 10)) // resident from warm-up
	r = s.Result()
	if r.RecoveryLoss != 0 {
		t.Fatalf("warm line missed: %+v", r)
	}
}

func TestCoverageWarmAvoidsColdStartCharge(t *testing.T) {
	cold, _ := NewCoverageSim(Config{Entries: 16, Assoc: cache.FullyAssociative})
	warm, _ := NewCoverageSim(Config{Entries: 16, Assoc: cache.FullyAssociative})
	stream := make([]trace.Event, 0, 200)
	for i := 0; i < 200; i++ {
		stream = append(stream, ev(uint64(i%8), 10))
	}
	for i, e := range stream {
		if i < 16 {
			warm.Warm(e)
		} else {
			warm.Access(e)
		}
		cold.Access(e)
	}
	if warm.Result().RecoveryLoss >= cold.Result().RecoveryLoss {
		t.Fatalf("warm-up did not remove cold-start misses: warm %.2f cold %.2f",
			warm.Result().RecoveryLoss, cold.Result().RecoveryLoss)
	}
	if warm.Result().RecoveryLoss != 0 {
		t.Fatalf("fully warm stream still lost coverage: %+v", warm.Result())
	}
}
