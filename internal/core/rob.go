package core

import (
	"fmt"

	"itr/internal/sig"
)

// ROBEntry is one ITR ROB entry (Section 2.2): the start PC and signature of
// a dispatched trace, plus the one-hot-protected control state standing for
// the paper's {chk, miss, retry} bits.
type ROBEntry struct {
	StartPC   uint64
	Sig       uint64 // signature generated for this (new) instance
	CachedSig uint64 // signature read from the ITR cache on a hit
	Len       int    // instructions in this instance
	State     sig.ControlState
	WrongPath bool // dispatched down a mispredicted path

	detRecorded bool // detection already reported for this entry
}

// MarkDetected marks the entry's detection as reported, returning true the
// first time. Detector backends use it to record at most one detection per
// in-flight entry no matter how many commits poll it.
func (e *ROBEntry) MarkDetected() bool {
	if e.detRecorded {
		return false
	}
	e.detRecorded = true
	return true
}

// ROB is the ITR ROB: a ring of trace entries in dispatch order. Entries are
// addressed by absolute sequence number so branch-misprediction rollback can
// name the entry recorded in the branch's checkpoint, exactly as the paper
// describes. The ring is physically sized to a power of two (logical
// capacity unchanged) so the per-poll slot index is a mask, not a divide.
type ROB struct {
	entries []ROBEntry
	mask    uint64 // len(entries) - 1
	cap     int    // logical capacity (Full threshold)
	head    uint64 // sequence number of the oldest live entry
	tail    uint64 // sequence number one past the youngest live entry
}

// NewROB returns an ITR ROB with the given capacity. The paper sizes it to
// the number of branches that can be in flight; 64 comfortably covers a
// 128-entry main ROB.
func NewROB(capacity int) *ROB {
	if capacity <= 0 {
		capacity = 64
	}
	phys := 1
	for phys < capacity {
		phys <<= 1
	}
	return &ROB{entries: make([]ROBEntry, phys), mask: uint64(phys - 1), cap: capacity}
}

// Len returns the number of live entries.
func (r *ROB) Len() int { return int(r.tail - r.head) }

// Full reports whether dispatch must stall.
func (r *ROB) Full() bool { return r.Len() == r.cap }

// Alloc appends an entry at the tail, returning its sequence number.
// ok is false when the ROB is full.
func (r *ROB) Alloc(e ROBEntry) (seq uint64, ok bool) {
	if r.Full() {
		return 0, false
	}
	seq = r.tail
	r.entries[seq&r.mask] = e
	r.tail++
	return seq, true
}

// Head returns the oldest live entry, or nil when empty.
func (r *ROB) Head() *ROBEntry {
	if r.head == r.tail {
		return nil
	}
	return &r.entries[r.head&r.mask]
}

// HeadSeq returns the sequence number of the oldest live entry.
func (r *ROB) HeadSeq() uint64 { return r.head }

// At returns the live entry with the given sequence number, or nil.
func (r *ROB) At(seq uint64) *ROBEntry {
	if seq < r.head || seq >= r.tail {
		return nil
	}
	return &r.entries[seq&r.mask]
}

// Visit calls fn for every live entry, oldest first. Entries must not be
// reordered or freed during the walk.
func (r *ROB) Visit(fn func(*ROBEntry)) {
	for seq := r.head; seq != r.tail; seq++ {
		fn(&r.entries[seq&r.mask])
	}
}

// PopHead frees the oldest entry (called when the trace-terminating
// instruction commits, per Section 2.2).
func (r *ROB) PopHead() {
	if r.Len() > 0 {
		r.head++
	}
}

// SquashAfter removes every entry younger than keepSeq (entries with
// sequence number > keepSeq), implementing branch-misprediction rollback to
// the ITR ROB entry noted in the branch's checkpoint.
func (r *ROB) SquashAfter(keepSeq uint64) {
	if keepSeq+1 < r.head {
		r.tail = r.head
		return
	}
	if keepSeq+1 < r.tail {
		r.tail = keepSeq + 1
	}
}

// Clear removes all entries (ITR retry flush: the whole window is squashed
// and refetched).
func (r *ROB) Clear() { r.head, r.tail = 0, 0 }

func (r *ROB) String() string {
	return fmt.Sprintf("itr-rob[%d/%d head=%d]", r.Len(), len(r.entries), r.head)
}

// Clone returns a deep copy of the ROB (entries, head, tail) sharing nothing
// with the original.
func (r *ROB) Clone() *ROB {
	c := &ROB{entries: make([]ROBEntry, len(r.entries)), mask: r.mask, cap: r.cap, head: r.head, tail: r.tail}
	copy(c.entries, r.entries)
	return c
}

// CopyFrom overwrites the ROB's state with a deep copy of src, preserving
// r's identity. The capacities must match. src is only read.
func (r *ROB) CopyFrom(src *ROB) error {
	if len(r.entries) != len(src.entries) || r.cap != src.cap {
		return fmt.Errorf("itr-rob: cannot copy %d-entry state into %d-entry ROB", src.cap, r.cap)
	}
	copy(r.entries, src.entries)
	r.head, r.tail = src.head, src.tail
	return nil
}
