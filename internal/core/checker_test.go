package core

import (
	"testing"

	"itr/internal/cache"
	"itr/internal/sig"
	"itr/internal/trace"
)

func newChecker(t *testing.T, mode Mode) *Checker {
	t.Helper()
	c, err := NewChecker(Config{Entries: 16, Assoc: 2}, mode)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func dispatch(t *testing.T, c *Checker, e trace.Event) uint64 {
	t.Helper()
	seq, ok := c.DispatchTrace(e, false)
	if !ok {
		t.Fatal("ITR ROB full")
	}
	return seq
}

// pollCommit models a full commit of the head trace: poll, then commit the
// trace end if allowed.
func pollCommit(c *Checker) Action {
	a := c.Poll()
	if a.Kind == ActionProceed || a.Kind == ActionParityRecovered {
		c.CommitTraceEnd()
	}
	return a
}

func TestCheckerMissInstallHitMatch(t *testing.T) {
	c := newChecker(t, ModeFull)
	e := trace.Event{StartPC: 5, Len: 4, Sig: 0xabc}

	dispatch(t, c, e)
	st, ok := c.HeadState()
	if !ok || !st.Miss() {
		t.Fatalf("first dispatch state = %v", st)
	}
	if a := pollCommit(c); a.Kind != ActionProceed {
		t.Fatalf("miss commit action = %v", a.Kind)
	}
	// Signature must now be installed.
	ln, ok := c.Cache().Probe(5)
	if !ok || ln.Value != 0xabc || ln.Aux != 4 {
		t.Fatalf("installed line: %+v ok=%v", ln, ok)
	}

	dispatch(t, c, e)
	st, _ = c.HeadState()
	if st != sig.CtrlChk {
		t.Fatalf("second dispatch state = %v", st)
	}
	if a := pollCommit(c); a.Kind != ActionProceed {
		t.Fatalf("hit commit action = %v", a.Kind)
	}
	if c.PendingTraces() != 0 {
		t.Fatal("entries not freed")
	}
	stats := c.Stats()
	if stats.Misses != 1 || stats.Hits != 1 || stats.Writes != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestCheckerPollOnEmptyROBProceeds(t *testing.T) {
	c := newChecker(t, ModeFull)
	if a := c.Poll(); a.Kind != ActionProceed {
		t.Fatalf("empty-ROB poll = %v (the final partial trace must be able to commit)", a.Kind)
	}
}

func TestCheckerMismatchRetriesThenRecovers(t *testing.T) {
	c := newChecker(t, ModeFull)
	clean := trace.Event{StartPC: 5, Len: 4, Sig: 0xabc}
	faulty := trace.Event{StartPC: 5, Len: 4, Sig: 0xabd} // transient in new instance

	dispatch(t, c, clean)
	pollCommit(c) // install

	dispatch(t, c, faulty)
	st, _ := c.HeadState()
	if st != sig.CtrlChkRetry {
		t.Fatalf("mismatch state = %v", st)
	}
	a := c.Poll()
	if a.Kind != ActionRetry || a.RestartPC != 5 {
		t.Fatalf("action = %+v", a)
	}
	if c.PendingTraces() != 0 {
		t.Fatal("retry flush must clear the ITR ROB")
	}
	if _, armed := c.RetryArmed(); !armed {
		t.Fatal("retry not armed")
	}

	// Re-execution is fault-free: signature matches.
	dispatch(t, c, clean)
	if a := pollCommit(c); a.Kind != ActionProceed {
		t.Fatalf("retry commit = %v", a.Kind)
	}
	stats := c.Stats()
	if stats.Retries != 1 || stats.Recoveries != 1 || stats.MachineChecks != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if _, armed := c.RetryArmed(); armed {
		t.Fatal("retry still armed after recovery")
	}
}

func TestCheckerPollFiresBeforeTraceEndCommits(t *testing.T) {
	// The retry must trigger on the FIRST commit poll of the faulty trace,
	// not only when its terminating instruction commits — this is what lets
	// ITR rescue mid-trace deadlocks (ITR+wdog+R in the paper's Figure 8).
	c := newChecker(t, ModeFull)
	clean := trace.Event{StartPC: 5, Len: 4, Sig: 0xabc}
	dispatch(t, c, clean)
	pollCommit(c)

	dispatch(t, c, trace.Event{StartPC: 5, Len: 4, Sig: 0xbad})
	// An instruction in the middle of the trace polls: retry fires now.
	if a := c.Poll(); a.Kind != ActionRetry {
		t.Fatalf("mid-trace poll = %v, want retry", a.Kind)
	}
}

func TestCheckerPersistentMismatchRaisesMachineCheck(t *testing.T) {
	c := newChecker(t, ModeFull)
	// The cache holds a signature produced by a faulty previous instance.
	faulty := trace.Event{StartPC: 5, Len: 4, Sig: 0xbad}
	clean := trace.Event{StartPC: 5, Len: 4, Sig: 0xabc}

	dispatch(t, c, faulty)
	pollCommit(c) // installs the faulty signature

	dispatch(t, c, clean)
	if a := c.Poll(); a.Kind != ActionRetry {
		t.Fatalf("first mismatch = %v", a.Kind)
	}
	dispatch(t, c, clean) // retry pass: still mismatches
	a := c.Poll()
	if a.Kind != ActionMachineCheck {
		t.Fatalf("second mismatch = %v, want machine check", a.Kind)
	}
	if c.Stats().MachineChecks != 1 {
		t.Fatalf("stats: %+v", c.Stats())
	}
}

func TestCheckerParityRecoversCacheLineFault(t *testing.T) {
	c, err := NewChecker(Config{Entries: 16, Assoc: 2, Parity: true}, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	clean := trace.Event{StartPC: 5, Len: 4, Sig: 0xabc}
	dispatch(t, c, clean)
	pollCommit(c) // install with parity

	// Fault on the ITR cache line itself: flip one bit of the stored
	// signature; parity is now inconsistent.
	ln, _ := c.Cache().Probe(5)
	ln.Value ^= 1 << 9

	dispatch(t, c, clean)
	if a := c.Poll(); a.Kind != ActionRetry {
		t.Fatalf("first mismatch = %v", a.Kind)
	}
	dispatch(t, c, clean)
	a := pollCommit(c)
	if a.Kind != ActionParityRecovered {
		t.Fatalf("parity path = %v, want recovery", a.Kind)
	}
	// The line must be repaired with the fresh signature.
	ln, _ = c.Cache().Probe(5)
	if ln.Value != 0xabc || cache.Parity64(ln.Value) != ln.Parity {
		t.Fatalf("line not repaired: %+v", ln)
	}
	if c.Stats().MachineChecks != 0 {
		t.Fatal("parity recovery must avoid the machine check")
	}
	if c.PendingTraces() != 0 {
		t.Fatal("entry not freed after parity recovery")
	}
}

func TestCheckerWithoutParityCacheFaultAborts(t *testing.T) {
	c := newChecker(t, ModeFull) // parity disabled
	clean := trace.Event{StartPC: 5, Len: 4, Sig: 0xabc}
	dispatch(t, c, clean)
	pollCommit(c)
	ln, _ := c.Cache().Probe(5)
	ln.Value ^= 1 << 9

	dispatch(t, c, clean)
	c.Poll() // retry
	dispatch(t, c, clean)
	if a := c.Poll(); a.Kind != ActionMachineCheck {
		t.Fatalf("unprotected cache fault = %v, want machine check (false abort per Section 2.4)", a.Kind)
	}
}

func TestCheckerObserveModeNeverRecovers(t *testing.T) {
	c := newChecker(t, ModeObserve)
	dispatch(t, c, trace.Event{StartPC: 5, Len: 4, Sig: 0xabc})
	pollCommit(c)
	dispatch(t, c, trace.Event{StartPC: 5, Len: 4, Sig: 0xabd})
	a := pollCommit(c)
	if a.Kind != ActionProceed {
		t.Fatalf("observe mode acted: %v", a.Kind)
	}
	det := c.Detections()
	if len(det) != 1 || det[0].StartPC != 5 || det[0].AccessSig != 0xabd || det[0].CachedSig != 0xabc {
		t.Fatalf("detections: %+v", det)
	}
	if c.PendingTraces() != 0 {
		t.Fatal("observe mode must still free entries")
	}
}

func TestCheckerObserveRecordsDetectionOnce(t *testing.T) {
	c := newChecker(t, ModeObserve)
	dispatch(t, c, trace.Event{StartPC: 5, Len: 4, Sig: 0xabc})
	pollCommit(c)
	dispatch(t, c, trace.Event{StartPC: 5, Len: 4, Sig: 0xabd})
	// Several instructions of the faulty trace poll before the end commits.
	c.Poll()
	c.Poll()
	c.Poll()
	c.CommitTraceEnd()
	if got := len(c.Detections()); got != 1 {
		t.Fatalf("detections = %d, want 1 (deduplicated per entry)", got)
	}
}

func TestCheckerBranchRollback(t *testing.T) {
	c := newChecker(t, ModeFull)
	seqA := dispatch(t, c, trace.Event{StartPC: 1, Len: 2, Sig: 0x1})
	dispatch(t, c, trace.Event{StartPC: 2, Len: 2, Sig: 0x2})
	dispatch(t, c, trace.Event{StartPC: 3, Len: 2, Sig: 0x3})
	c.RollbackTo(seqA) // branch at end of trace A mispredicted
	if c.PendingTraces() != 1 {
		t.Fatalf("pending = %d, want 1", c.PendingTraces())
	}
	if a := pollCommit(c); a.Kind != ActionProceed {
		t.Fatalf("commit after rollback = %v", a.Kind)
	}
	if c.Stats().Squashed != 2 {
		t.Fatalf("squashed = %d", c.Stats().Squashed)
	}
}

func TestCheckerROBCapacityStallsDispatch(t *testing.T) {
	c := newChecker(t, ModeFull)
	for i := 0; i < 64; i++ {
		if _, ok := c.DispatchTrace(trace.Event{StartPC: uint64(i), Len: 1, Sig: 1}, false); !ok {
			t.Fatalf("dispatch %d failed early", i)
		}
	}
	if !c.Full() {
		t.Fatal("ROB should be full at 64")
	}
	if _, ok := c.DispatchTrace(trace.Event{StartPC: 99, Len: 1}, false); ok {
		t.Fatal("dispatch into full ROB succeeded")
	}
	pollCommit(c) // free head
	if _, ok := c.DispatchTrace(trace.Event{StartPC: 99, Len: 1}, false); !ok {
		t.Fatal("dispatch after free failed")
	}
}

func TestCheckerFlushAll(t *testing.T) {
	c := newChecker(t, ModeFull)
	dispatch(t, c, trace.Event{StartPC: 1, Len: 1})
	dispatch(t, c, trace.Event{StartPC: 2, Len: 1})
	c.FlushAll()
	if c.PendingTraces() != 0 {
		t.Fatal("flush incomplete")
	}
	if _, ok := c.HeadState(); ok {
		t.Fatal("head state on empty ROB")
	}
}

func TestCheckerInvalidControlStateForcesRetry(t *testing.T) {
	c := newChecker(t, ModeFull)
	seq := dispatch(t, c, trace.Event{StartPC: 7, Len: 3, Sig: 0x1})
	// Inject a control-bit fault: two-hot state.
	entry := c.rob.At(seq)
	entry.State = sig.ControlState(0b0011)
	a := c.Poll()
	if a.Kind != ActionRetry || a.RestartPC != 7 {
		t.Fatalf("invalid control state action = %+v", a)
	}
}

func TestCheckerInvalidControlStateObserveProceeds(t *testing.T) {
	c := newChecker(t, ModeObserve)
	seq := dispatch(t, c, trace.Event{StartPC: 7, Len: 3, Sig: 0x1})
	c.rob.At(seq).State = sig.ControlState(0b0000)
	if a := c.Poll(); a.Kind != ActionProceed {
		t.Fatalf("observe invalid state = %v", a.Kind)
	}
	if len(c.Detections()) != 1 {
		t.Fatal("control-bit fault not recorded")
	}
}

func TestROBSequencing(t *testing.T) {
	r := NewROB(4)
	if r.Head() != nil {
		t.Fatal("empty head")
	}
	s0, _ := r.Alloc(ROBEntry{StartPC: 10})
	s1, _ := r.Alloc(ROBEntry{StartPC: 11})
	if s1 != s0+1 {
		t.Fatalf("sequence numbers: %d %d", s0, s1)
	}
	if r.Head().StartPC != 10 {
		t.Fatal("head wrong")
	}
	if r.At(s1).StartPC != 11 {
		t.Fatal("At wrong")
	}
	if r.At(99) != nil {
		t.Fatal("At out of range")
	}
	r.PopHead()
	if r.Head().StartPC != 11 {
		t.Fatal("pop wrong")
	}
}

func TestROBWrapAround(t *testing.T) {
	r := NewROB(4)
	for round := 0; round < 5; round++ {
		for i := 0; i < 4; i++ {
			if _, ok := r.Alloc(ROBEntry{StartPC: uint64(round*4 + i)}); !ok {
				t.Fatalf("alloc failed round %d i %d", round, i)
			}
		}
		if _, ok := r.Alloc(ROBEntry{}); ok {
			t.Fatal("over-alloc succeeded")
		}
		for i := 0; i < 4; i++ {
			if got := r.Head().StartPC; got != uint64(round*4+i) {
				t.Fatalf("head = %d", got)
			}
			r.PopHead()
		}
	}
}

func TestROBSquashAfter(t *testing.T) {
	r := NewROB(8)
	var seqs []uint64
	for i := 0; i < 5; i++ {
		s, _ := r.Alloc(ROBEntry{StartPC: uint64(i)})
		seqs = append(seqs, s)
	}
	r.SquashAfter(seqs[2])
	if r.Len() != 3 {
		t.Fatalf("len after squash = %d", r.Len())
	}
	// Squashing to an already-committed entry empties the ROB.
	r2 := NewROB(8)
	sOld, _ := r2.Alloc(ROBEntry{})
	r2.PopHead()
	r2.Alloc(ROBEntry{})
	r2.SquashAfter(sOld)
	if r2.Len() != 0 {
		t.Fatalf("len = %d, want 0", r2.Len())
	}
}

func TestNewCheckerValidation(t *testing.T) {
	if _, err := NewChecker(Config{Entries: 100}, ModeFull); err == nil {
		t.Fatal("bad entries accepted")
	}
	if _, err := NewChecker(DefaultConfig(), Mode(0)); err == nil {
		t.Fatal("bad mode accepted")
	}
}
