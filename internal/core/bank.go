package core

import (
	"fmt"
	"sort"

	"itr/internal/cache"
	"itr/internal/trace"
)

// WarmupLatch implements the warm-up boundary rule shared by every replay
// path (single-sim and SimBank): a trace event is attributed to warm-up only
// when it fits *entirely* within the warmupInsts prefix; the first event
// straddling the boundary — and every event after it — is measured. Without
// the latch, a short event following a long straddler could slip back under
// the warm-up threshold and be spuriously warmed.
//
// The decision depends only on the event sequence, never on any cache
// configuration, which is what makes a lockstep fan-out to many
// configurations legal: one Admit call per event governs every member.
type WarmupLatch struct {
	budget  int64
	warmed  int64
	warming bool
}

// NewWarmupLatch returns a latch admitting the first warmupInsts
// instructions' worth of whole events into warm-up. A budget of 0 (or
// negative) admits nothing: every event is measured.
func NewWarmupLatch(warmupInsts int64) WarmupLatch {
	return WarmupLatch{budget: warmupInsts, warming: warmupInsts > 0}
}

// Admit reports whether an event of n instructions belongs to the warm-up
// prefix, consuming warm-up budget when it does. Once an event fails to fit,
// the latch closes: every subsequent event is measured regardless of length.
func (l *WarmupLatch) Admit(n int) bool {
	if !l.warming {
		return false
	}
	if l.warmed+int64(n) <= l.budget {
		l.warmed += int64(n)
		return true
	}
	l.warming = false
	return false
}

// bankMember maps one configuration of the bank to its executor: a lane of a
// shared LRU stack group, or (for configurations the sharing cannot serve) a
// standalone CoverageSim.
type bankMember struct {
	cfg   Config // normalized, as CoverageSim would report it
	group replayGroup
	lane  int
	sim   *CoverageSim
}

// SimBank evaluates many cache configurations over a single trace-event
// stream — the engine behind the single-pass design-space sweep. Rather than
// replaying the stream once per configuration (the per-cell path), the bank
// reads each event exactly once and shares the simulation work itself:
// all LRU configurations with the same set count collapse into one recency
// stack with a boundary marker per associativity (see lanes.go), so the
// paper's 18-configuration sweep does 8 stack updates per event instead of
// 18 cache simulations. Configurations the inclusion property cannot serve
// (CheckedLRU) run as ordinary member simulators.
//
// The warm-up boundary latch lives in the bank, not in its members, so the
// warm/measure decision is made once per event and cannot diverge across
// configurations (or from the single-sim replay path, which uses the same
// WarmupLatch).
//
// Events are buffered and replayed through the executors block by block, so
// one executor's working set at a time is hot instead of all of them
// thrashing each other per event. Every executor still observes the
// identical warm/measure sequence in the identical order, so results are
// bit-equal to per-event forwarding (and to a standalone CoverageSim).
type SimBank struct {
	members []bankMember
	groups  []replayGroup
	sims    []*CoverageSim
	latch   WarmupLatch

	// Pending block: events plus their latch decisions, replayed per
	// executor by flush. Parallel slices rather than a struct to keep the
	// event copy a straight memmove.
	events []trace.Event
	warm   []bool
	// allMeasured is a reusable all-false warm vector for FeedBlock windows
	// arriving after the warm-up latch has closed (the common case); it must
	// never be written.
	allMeasured []bool
	// packed is the reusable packed-event buffer replay hands the groups: one
	// word per event (see packEvent), built once per block.
	packed []uint64
}

// bankBlockEvents is the buffered block size: large enough to amortize the
// per-executor loop switch, small enough (~64KB of events) to stay
// L2-resident alongside one executor's state.
const bankBlockEvents = 2048

// groupable reports whether the configuration can join a shared LRU stack
// group, and its geometry (set count, ways) if so. Eligibility requires LRU
// replacement — inclusion does not hold for CheckedLRU — and a geometry the
// cache engine accepts; anything else takes the standalone path, where an
// invalid geometry surfaces the cache constructor's error verbatim.
func groupable(cfg Config) (numSets, ways int, ok bool) {
	if cfg.Replacement != cache.ReplLRU {
		return 0, 0, false
	}
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		return 0, 0, false
	}
	ways = cfg.Assoc
	if ways == cache.FullyAssociative {
		ways = cfg.Entries
	}
	if ways < 0 || ways > cfg.Entries || cfg.Entries%ways != 0 {
		return 0, 0, false
	}
	return cfg.Entries / ways, ways, true
}

// NewSimBank builds a bank over the given configurations with a shared
// warm-up prefix of warmupInsts instructions.
func NewSimBank(configs []Config, warmupInsts int64) (*SimBank, error) {
	b := &SimBank{
		members:     make([]bankMember, len(configs)),
		latch:       NewWarmupLatch(warmupInsts),
		events:      make([]trace.Event, 0, bankBlockEvents),
		warm:        make([]bool, 0, bankBlockEvents),
		allMeasured: make([]bool, bankBlockEvents),
		packed:      make([]uint64, bankBlockEvents),
	}
	// First pass: collect the lane demand per set count so each group is
	// built once with its full ascending lane list. Design spaces hold at
	// most a few dozen configurations, so flat slices with linear search
	// beat maps — and keep the bank's construction allocation count low
	// enough to matter against the per-cell path's.
	type demand struct {
		sets    int
		ways    []int32 // ascending, deduplicated
		members []int
	}
	var demands []demand
	for i, cfg := range configs {
		n := cfg.normalize()
		b.members[i].cfg = n
		if sets, w, ok := groupable(n); ok {
			di := -1
			for j := range demands {
				if demands[j].sets == sets {
					di = j
					break
				}
			}
			if di < 0 {
				demands = append(demands, demand{sets: sets})
				di = len(demands) - 1
			}
			d := &demands[di]
			pos := 0
			for pos < len(d.ways) && int(d.ways[pos]) < w {
				pos++
			}
			if pos == len(d.ways) || int(d.ways[pos]) != w {
				d.ways = append(d.ways, 0)
				copy(d.ways[pos+1:], d.ways[pos:])
				d.ways[pos] = int32(w)
			}
			d.members = append(d.members, i)
			continue
		}
		sim, err := NewCoverageSim(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg, err)
		}
		b.sims = append(b.sims, sim)
		b.members[i].sim = sim
	}
	for _, d := range demands {
		sets, ways := d.sets, d.ways
		if len(ways) > 64 {
			// The referenced bitmask holds 64 lanes; beyond that (never the
			// case for real design spaces) members run standalone.
			for _, mi := range d.members {
				sim, err := NewCoverageSim(b.members[mi].cfg)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", b.members[mi].cfg, err)
				}
				b.sims = append(b.sims, sim)
				b.members[mi].sim = sim
			}
			continue
		}
		g := newReplayGroup(sets, ways)
		b.groups = append(b.groups, g)
		for _, mi := range d.members {
			_, w, _ := groupable(b.members[mi].cfg)
			lane := sort.Search(len(ways), func(i int) bool { return int(ways[i]) >= w })
			b.members[mi].group = g
			b.members[mi].lane = lane
		}
	}
	return b, nil
}

// Feed routes one event through the warm-up latch and buffers it for the next
// block replay: warm while the event fits in the warm-up prefix, measured
// once the boundary latches. This is the single entry point sweep drivers use
// per event.
func (b *SimBank) Feed(ev trace.Event) {
	b.enqueue(ev, b.latch.Admit(ev.Len))
}

// Access buffers one measured event for every member, bypassing the latch.
func (b *SimBank) Access(ev trace.Event) { b.enqueue(ev, false) }

// Warm buffers one warm-up event for every member, bypassing the latch.
func (b *SimBank) Warm(ev trace.Event) { b.enqueue(ev, true) }

// FeedBlock feeds a whole slice of events through the warm-up latch in
// order, equivalent to (but much cheaper than) calling Feed per event: the
// slice is replayed through the executors in bankBlockEvents windows sliced
// in place — no per-event calls, no buffering copies. The slice is read-only
// and not retained.
func (b *SimBank) FeedBlock(events []trace.Event) {
	if len(b.events) > 0 {
		b.flush()
	}
	for len(events) > 0 {
		chunk := events
		if len(chunk) > bankBlockEvents {
			chunk = chunk[:bankBlockEvents]
		}
		events = events[len(chunk):]
		warm := b.allMeasured[:len(chunk)]
		if b.latch.warming {
			warm = b.warm[:len(chunk)]
			for i, ev := range chunk {
				warm[i] = b.latch.Admit(ev.Len)
			}
		}
		b.replay(chunk, warm)
	}
}

func (b *SimBank) enqueue(ev trace.Event, warm bool) {
	b.events = append(b.events, ev)
	b.warm = append(b.warm, warm)
	if len(b.events) == bankBlockEvents {
		b.flush()
	}
}

// flush replays the pending block through each executor in turn and empties
// it.
func (b *SimBank) flush() {
	b.replay(b.events, b.warm)
	b.events = b.events[:0]
	b.warm = b.warm[:0]
}

// replay runs one block of events (with their warm-up decisions) through
// every executor in turn, so one executor's working set at a time is hot.
// One pass packs the block into one word per event — the only per-event data
// the group loops then stream — and counts the measured totals, identical
// for every group, once rather than per group per event.
func (b *SimBank) replay(events []trace.Event, warm []bool) {
	if len(b.groups) > 0 {
		packed := b.packed[:len(events)]
		var me, mi int64
		for i := range events {
			p := packEvent(events[i], warm[i])
			packed[i] = p
			if int64(p) >= 0 {
				me++
				mi += int64(events[i].Len)
			}
		}
		for _, g := range b.groups {
			g.addMeasured(me, mi)
			g.accessBlock(packed)
		}
	}
	for _, s := range b.sims {
		for i, ev := range events {
			if warm[i] {
				s.Warm(ev)
			} else {
				s.Access(ev)
			}
		}
	}
}

// Len returns the number of member configurations.
func (b *SimBank) Len() int { return len(b.members) }

// Result returns member i's accumulated coverage result — identical to what
// a standalone CoverageSim fed the same warm/measure sequence would report.
// Pending buffered events are flushed first.
func (b *SimBank) Result(i int) Result {
	b.flush()
	m := b.members[i]
	if m.group != nil {
		return m.group.result(m.lane, m.cfg)
	}
	return m.sim.Result()
}

// Results extracts every member's result in configuration order, flushing any
// pending buffered events first.
func (b *SimBank) Results() []Result {
	b.flush()
	out := make([]Result, len(b.members))
	for i := range b.members {
		out[i] = b.Result(i)
	}
	return out
}
