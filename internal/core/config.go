// Package core implements the paper's contribution: the ITR cache, the ITR
// ROB, trace-signature checking with flush-and-retry recovery, and the
// fault-coverage accounting of Section 3.
//
// Two entry points exist, matching the paper's two evaluations:
//
//   - CoverageSim consumes a trace-event stream and measures loss in fault
//     detection coverage and fault recovery coverage for a cache
//     configuration (Figures 6 and 7).
//   - Checker implements the full dispatch/commit protocol of Section 2.2
//     (chk/miss/retry control bits, retry flush, machine check, parity
//     recovery) and is driven by the cycle-level pipeline for the fault
//     injection experiments (Figure 8).
package core

import (
	"fmt"

	"itr/internal/cache"
)

// Config describes an ITR cache configuration point in the design space of
// Section 3.
type Config struct {
	// Entries is the number of signatures the ITR cache holds
	// (the paper explores 256, 512 and 1024).
	Entries int
	// Assoc is the associativity: 1 = direct mapped,
	// cache.FullyAssociative (0) = fully associative.
	Assoc int
	// Replacement selects the victim policy (default LRU; CheckedLRU is the
	// Section 2.3 ablation).
	Replacement cache.Replacement
	// Parity enables per-line parity protection of cached signatures
	// (Section 2.4), turning ITR-cache line faults from machine checks into
	// recoverable invalidations.
	Parity bool
	// MissFallback enables the Section 3 extension: on an ITR cache miss
	// the trace is redundantly fetched and decoded, restoring recovery
	// coverage at an energy cost.
	MissFallback bool
}

// DefaultConfig is the paper's headline configuration: a two-way
// set-associative ITR cache holding 1024 signatures (Sections 4 and 5).
func DefaultConfig() Config {
	return Config{Entries: 1024, Assoc: 2, Replacement: cache.ReplLRU}
}

// normalize fills zero-value defaults.
func (c Config) normalize() Config {
	if c.Entries == 0 {
		c.Entries = 1024
	}
	if c.Replacement == 0 {
		c.Replacement = cache.ReplLRU
	}
	return c
}

// NewCache builds the ITR cache for this configuration.
func (c Config) NewCache() (*cache.Cache, error) {
	n := c.normalize()
	cc, err := cache.New(n.Entries, n.Assoc, n.Replacement)
	if err != nil {
		return nil, fmt.Errorf("itr cache: %w", err)
	}
	return cc, nil
}

// String renders the configuration like the paper's figure labels, e.g.
// "2-way/1024" or "dm/256" or "fa/512".
func (c Config) String() string {
	n := c.normalize()
	switch n.Assoc {
	case cache.FullyAssociative:
		return fmt.Sprintf("fa/%d", n.Entries)
	case 1:
		return fmt.Sprintf("dm/%d", n.Entries)
	default:
		return fmt.Sprintf("%d-way/%d", n.Assoc, n.Entries)
	}
}

// DesignSpace returns the 18 configurations of the paper's Section 3 sweep:
// sizes {256, 512, 1024} x associativity {dm, 2, 4, 8, 16, fa}.
func DesignSpace() []Config {
	sizes := []int{256, 512, 1024}
	assocs := []int{1, 2, 4, 8, 16, cache.FullyAssociative}
	configs := make([]Config, 0, len(sizes)*len(assocs))
	for _, a := range assocs {
		for _, s := range sizes {
			configs = append(configs, Config{Entries: s, Assoc: a, Replacement: cache.ReplLRU})
		}
	}
	return configs
}
