package core

import (
	"fmt"

	"itr/internal/cache"
	"itr/internal/trace"
)

// CoverageSim measures loss in fault detection coverage and fault recovery
// coverage for one ITR cache configuration, per Section 2.3 / Section 3:
//
//   - Every ITR cache *miss* enters an unchecked signature; a fault in that
//     (already committed) instance can only be detected later, after the
//     architectural state is corrupted. The instructions of every missing
//     instance are therefore charged to *recovery* coverage loss.
//   - If a missed instance's signature is *evicted before it is ever
//     referenced*, a fault in it would never be detected at all. Its
//     instructions are charged to *detection* coverage loss.
//
// Detection loss is a subset of recovery loss by construction.
type CoverageSim struct {
	cfg   Config
	cache *cache.Cache

	totalInsts       int64
	missInsts        int64 // instructions in trace instances that missed
	evictedLossInsts int64 // instructions of unreferenced evicted instances
	traceEvents      int64
	fallbackInsts    int64 // extra fetch/decode work done by MissFallback
	writes           int64 // ITR cache writes (installs)
}

// NewCoverageSim builds a coverage simulator for the given configuration.
func NewCoverageSim(cfg Config) (*CoverageSim, error) {
	cfg = cfg.normalize()
	c, err := cfg.NewCache()
	if err != nil {
		return nil, err
	}
	return &CoverageSim{cfg: cfg, cache: c}, nil
}

// Warm processes one dynamic trace instance without charging coverage
// accounting: the analog of the paper's 900M-instruction skip, used to bring
// the ITR cache to steady state before measurement begins. Lines installed
// during warm-up are marked referenced so their later eviction is not charged
// to the measured window.
func (s *CoverageSim) Warm(ev trace.Event) {
	if ln, hit := s.cache.Lookup(ev.StartPC); hit {
		ln.Checked = true
		return
	}
	ln, _, _ := s.cache.InsertGet(ev.StartPC, ev.Sig)
	// Charge nothing for warm-up instances: zero instruction weight and
	// pre-referenced, so a later unreferenced-eviction charge cannot
	// originate in the skipped region.
	ln.Aux = 0
	ln.Referenced = true
	ln.Parity = cache.Parity64(ev.Sig)
}

// Access processes one dynamic trace instance (fault-free stream).
func (s *CoverageSim) Access(ev trace.Event) {
	s.traceEvents++
	s.totalInsts += int64(ev.Len)

	if ln, hit := s.cache.Lookup(ev.StartPC); hit {
		// The stream is fault-free, so signatures always match; a mismatch
		// indicates trace-formation breakage, which tests guard against.
		ln.Checked = true
		return
	}

	if s.cfg.MissFallback {
		// Extension (Section 3): redundantly fetch and decode the trace,
		// check the two signatures against each other, then install. The
		// instance is covered by conventional time redundancy, so it is
		// not charged to recovery loss.
		s.fallbackInsts += int64(ev.Len)
	} else {
		s.missInsts += int64(ev.Len)
	}

	ln, evicted, wasEvicted := s.cache.InsertGet(ev.StartPC, ev.Sig)
	s.writes++
	// Remember how many instructions the installing instance carried, so an
	// unreferenced eviction can be charged precisely.
	ln.Aux = uint64(ev.Len)
	ln.Parity = cache.Parity64(ev.Sig)
	if s.cfg.MissFallback {
		// The fallback check validated this instance, so the line is born
		// checked.
		ln.Checked = true
	}
	if wasEvicted && !evicted.Referenced && !s.cfg.MissFallback {
		s.evictedLossInsts += int64(evicted.Aux)
	}
}

// Result is the coverage outcome for one (benchmark, configuration) cell of
// the paper's Figures 6 and 7.
type Result struct {
	Config        Config
	TotalInsts    int64
	TraceEvents   int64
	DetectionLoss float64 // % of dynamic instructions (Figure 6)
	RecoveryLoss  float64 // % of dynamic instructions (Figure 7)
	CacheStats    cache.Stats
	// ResidentUnreferenced counts still-unreferenced lines at end of run
	// (truncation artifact; the paper charges only evictions).
	ResidentUnreferenced int
	// FallbackInsts is the extra frontend work (instructions redundantly
	// fetched+decoded) performed when MissFallback is enabled.
	FallbackInsts int64
	// Reads and Writes are ITR cache access counts for the energy model
	// (Figure 9): one read per dispatched trace, one write per install.
	Reads  int64
	Writes int64
}

// Result returns the accumulated coverage result.
func (s *CoverageSim) Result() Result {
	r := Result{
		Config:               s.cfg,
		TotalInsts:           s.totalInsts,
		TraceEvents:          s.traceEvents,
		CacheStats:           s.cache.Stats(),
		ResidentUnreferenced: s.cache.ResidentUnreferenced(),
		FallbackInsts:        s.fallbackInsts,
		Reads:                s.traceEvents,
		Writes:               s.writes,
	}
	if s.totalInsts > 0 {
		r.DetectionLoss = 100 * float64(s.evictedLossInsts) / float64(s.totalInsts)
		r.RecoveryLoss = 100 * float64(s.missInsts) / float64(s.totalInsts)
	}
	return r
}

// Cache exposes the underlying ITR cache (for the checkpointing extension
// and for tests).
func (s *CoverageSim) Cache() *cache.Cache { return s.cache }

func (r Result) String() string {
	return fmt.Sprintf("%s: detection loss %.2f%%, recovery loss %.2f%% over %d insts",
		r.Config, r.DetectionLoss, r.RecoveryLoss, r.TotalInsts)
}
