package core

import (
	"math/rand"
	"reflect"
	"testing"

	"itr/internal/trace"
)

// TestWarmupLatchBoundary pins the shared warm-up attribution rule at the
// latch level: whole events fitting in the budget are admitted; the first
// straddler closes the latch for good.
func TestWarmupLatchBoundary(t *testing.T) {
	cases := []struct {
		name   string
		budget int64
		lens   []int
		want   []bool
	}{
		{"zero budget admits nothing", 0, []int{1, 5}, []bool{false, false}},
		{"negative budget admits nothing", -3, []int{1}, []bool{false}},
		{"exact fit then closed", 10, []int{4, 6, 1}, []bool{true, true, false}},
		{"straddler latches", 10, []int{8, 5, 1}, []bool{true, false, false}},
		{"short after straddler stays measured", 15, []int{10, 10, 3}, []bool{true, false, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			latch := NewWarmupLatch(tc.budget)
			for i, n := range tc.lens {
				if got := latch.Admit(n); got != tc.want[i] {
					t.Errorf("event %d (len %d): Admit = %v, want %v", i, n, got, tc.want[i])
				}
			}
		})
	}
}

// randomStream synthesizes a trace-event stream with heavy PC reuse (so hits,
// installs and evictions all occur) and a consistent signature per start PC.
func randomStream(rng *rand.Rand, n, pcs int) []trace.Event {
	sigs := make(map[uint64]uint64)
	events := make([]trace.Event, n)
	for i := range events {
		pc := uint64(rng.Intn(pcs)) * 32
		sig, ok := sigs[pc]
		if !ok {
			sig = rng.Uint64()
			sigs[pc] = sig
		}
		events[i] = trace.Event{StartPC: pc, Len: 1 + rng.Intn(16), Sig: sig}
	}
	return events
}

// TestSimBankMatchesSingleSims is the bank's central property: feeding one
// event stream through a SimBank produces, for every member, a Result
// identical to a standalone CoverageSim replaying the same stream through its
// own WarmupLatch — across random streams, config subsets and warm-up
// budgets.
func TestSimBankMatchesSingleSims(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	space := DesignSpace()
	for round := 0; round < 8; round++ {
		events := randomStream(rng, 200+rng.Intn(800), 50+rng.Intn(1500))
		configs := make([]Config, 2+rng.Intn(len(space)-1))
		for i := range configs {
			configs[i] = space[rng.Intn(len(space))]
			if rng.Intn(3) == 0 {
				configs[i].MissFallback = true
			}
		}
		warmup := int64(0)
		if rng.Intn(2) == 0 {
			warmup = int64(rng.Intn(2000))
		}

		bank, err := NewSimBank(configs, warmup)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			bank.Feed(ev)
		}

		for ci, cfg := range configs {
			sim, err := NewCoverageSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			latch := NewWarmupLatch(warmup)
			for _, ev := range events {
				if latch.Admit(ev.Len) {
					sim.Warm(ev)
				} else {
					sim.Access(ev)
				}
			}
			if got, want := bank.Result(ci), sim.Result(); !reflect.DeepEqual(got, want) {
				t.Errorf("round %d, config %s (warmup %d): bank result diverges from single sim\n bank: %+v\n sim:  %+v",
					round, cfg, warmup, got, want)
			}
		}

		all := bank.Results()
		if len(all) != bank.Len() || bank.Len() != len(configs) {
			t.Fatalf("Results/Len shape: %d results, Len %d, %d configs", len(all), bank.Len(), len(configs))
		}
		for i := range all {
			if !reflect.DeepEqual(all[i], bank.Result(i)) {
				t.Fatalf("Results()[%d] != Result(%d)", i, i)
			}
		}
	}
}

// TestNewSimBankConfigError verifies an invalid member configuration fails
// construction with the config identified in the error.
func TestNewSimBankConfigError(t *testing.T) {
	configs := []Config{DefaultConfig(), {Entries: 300, Assoc: 2}}
	if _, err := NewSimBank(configs, 0); err == nil {
		t.Fatal("invalid config accepted")
	}
}
