package core

import (
	"itr/internal/cache"
	"itr/internal/trace"
)

// This file implements the shared replay engine behind SimBank: one LRU
// recency stack per (set count) serving every LRU configuration that shares
// it, instead of one full cache simulation per configuration.
//
// The coverage replay touches every trace event the same way in every
// configuration — look the start PC up, and install it on a miss — so each
// configuration's set contents obey the LRU inclusion property (Mattson et
// al., 1970): an A-way set holds exactly the A most recently touched keys of
// that set. All configurations with the same set count therefore see the
// *same* per-set recency order and differ only in how deep into it they can
// hold lines. One recency stack per set answers hit/miss for every lane
// (associativity) at once: a key found at depth d hits every lane wider than
// d and misses the rest, and the line a missing lane of width A evicts is
// precisely the key at depth A-1 of that stack.
//
// Within the paper's 18-configuration design space this collapses 18 cache
// simulations per event into 8 stack updates (e.g. fa/256, fa/512 and
// fa/1024 share the single-set stack; dm/1024, 2-way/512 and 4-way/256 share
// the 256-set stack), which is where the single-pass sweep's speedup over
// the per-cell replay comes from. Per-lane coverage accounting rides on the
// stack entries, so every lane's Result is bit-identical to a standalone
// CoverageSim's — a property the core and report tests enforce.
//
// Per-entry lane state is two words. Coverage needs, per lane, a referenced
// bit and the installing instance's instruction count (the weight an
// unreferenced eviction charges to detection loss). The weights collapse to
// one value per entry: every touch reinstalls the entry in exactly the lanes
// it missed, all with the *current* event's weight, and sets the referenced
// bit in all the lanes it hit — so afterwards every unreferenced lane of the
// entry carries the same weight, that of its most recent event, and
// referenced lanes never have their weight read. One meta word therefore
// packs the whole lane state: a referenced bitmask in the low byte and the
// shared weight above it.
//
// Two stack layouts serve different depths:
//
//   - arrayGroup (depth < 32): each set's stack is a contiguous
//     most-recent-first array, so depth is literally the position. A touch
//     is one fused scan-and-shift pass: entries rotate down one slot as the
//     scan walks, and each missing lane's victim — the entry sliding across
//     that lane's boundary — is whatever the rotation carry holds when it
//     crosses, so eviction accounting reads registers, not memory. This is
//     the layout for every set-associative group.
//   - listGroup (depth >= 32, i.e. the fully associative group): a doubly
//     linked list per set with a key->node map, a band tag per node
//     (which inter-lane region its depth falls in), and one boundary marker
//     per lane pointing at that lane's current LRU node, so a touch is O(1)
//     in the stack depth instead of an O(depth) shift.
//
// Only ReplLRU configurations are eligible: CheckedLRU victims depend on
// per-configuration Checked bits, which breaks inclusion. SimBank falls back
// to standalone simulators for those.

// replayGroup is the executor interface SimBank drives: one shared stack
// structure standing in for all member configurations of one set count.
// Access is block-at-a-time: the bank hands each group a whole block of
// events pre-packed one word each (see packEvent), which keeps the group's
// working set hot, streams an eighth of the raw event bytes through every
// group, and amortizes per-call overhead over thousands of events.
type replayGroup interface {
	accessBlock(packed []uint64)
	// addMeasured accumulates the block's measured totals, computed once by
	// the bank — they are identical for every group, so no group counts them
	// per event.
	addMeasured(events, insts int64)
	result(lane int, cfg Config) Result
}

// Packed-event layout: the replay needs only a trace event's start PC, its
// instruction count, and its warm-up decision, so the bank packs all three
// into one word per event — the only per-event data the eight group loops
// stream. PCs are program counters, bounded far below 2^48 (packEvent checks);
// Len is capped at the trace-formation limit, far below 2^15.
const (
	packPCBits  = 48
	packPCMask  = uint64(1)<<packPCBits - 1
	packWarmBit = uint64(1) << 63
)

// packEvent packs one event and its warm-up decision. The warm flag is the
// sign bit, so group loops test "measured" with one signed compare.
func packEvent(ev trace.Event, warm bool) uint64 {
	if ev.StartPC > packPCMask {
		panic("core: trace event PC exceeds packed-replay range")
	}
	p := ev.StartPC | uint64(ev.Len)<<packPCBits
	if warm {
		p |= packWarmBit
	}
	return p
}

// groupIndexedCapMin is the stack depth at which the list layout (with a key
// map) replaces the positional array layout, mirroring the cache engine's
// indexing threshold.
const groupIndexedCapMin = 32

// metaRefBits is the width of the referenced bitmask in an entry's meta
// word; the installing weight lives in the bits above. Groups never have
// more lanes than this: array groups' associativities are powers of two
// below groupIndexedCapMin, and the list layout caps lanes at 64 via its own
// mask (beyond metaRefBits it stores weights unpacked — see listGroup).
const metaRefBits = 8

// groupTallies is the accounting shared by both layouts.
//
// Hit/miss counting never loops over lanes: an event touching band b (the
// index of the first lane wide enough to hold the key's depth; lane count
// for a cold miss) hits every lane from b up and misses every lane below, so
// one tally of band b records the outcome for all lanes at once, and
// per-lane totals fall out as prefix/suffix sums at result time. Only
// eviction bookkeeping — inherently per missing lane — runs per event.
// Both tally families are interleaved triples to keep the hot loops on one
// slice header and one cache line.
type groupTallies struct {
	ways []int32 // ascending distinct associativities (lanes)

	// bands[3b] counts events touching band b; bands[3b+1] those that were
	// measured (post-warm-up); bands[3b+2] their instruction weight.
	bands []int64
	// evs[3l] counts lane l's evictions; evs[3l+1] those of never-referenced
	// lines; evs[3l+2] sums the installing weights of never-referenced lines
	// evicted by measured events — the paper's detection loss.
	evs []int64

	// Group-level measured totals, identical for every lane, accumulated by
	// the bank via addMeasured.
	measuredEvents int64
	measuredInsts  int64
}

func (t *groupTallies) addMeasured(events, insts int64) {
	t.measuredEvents += events
	t.measuredInsts += insts
}

func newGroupTallies(ways []int32) groupTallies {
	nb := 3 * (len(ways) + 1)
	buf := make([]int64, nb+3*len(ways))
	return groupTallies{
		ways:  ways,
		bands: buf[:nb:nb],
		evs:   buf[nb:],
	}
}

// tally records one event of evLen instructions touching band b.
func (t *groupTallies) tally(b int, evLen int64, warm bool) {
	i := 3 * b
	t.bands[i]++
	if !warm {
		t.bands[i+1]++
		t.bands[i+2] += evLen
	}
}

// assemble builds the lane's coverage Result for one member configuration,
// field for field what a standalone CoverageSim fed the same event sequence
// computes. MissFallback only reroutes the miss accounting: missed instances
// are covered by the redundant fetch, so they charge FallbackInsts instead
// of recovery loss and their evictions stop charging detection loss.
func (t *groupTallies) assemble(lane int, cfg Config, residentUnref int) Result {
	var hits, misses, measuredMisses, measuredMissInsts int64
	for b := 0; b <= len(t.ways); b++ {
		if b <= lane {
			hits += t.bands[3*b]
		} else {
			misses += t.bands[3*b]
			measuredMisses += t.bands[3*b+1]
			measuredMissInsts += t.bands[3*b+2]
		}
	}
	missInsts, fallbackInsts, evictedLoss := measuredMissInsts, int64(0), t.evs[3*lane+2]
	if cfg.MissFallback {
		missInsts, fallbackInsts, evictedLoss = 0, measuredMissInsts, 0
	}
	r := Result{
		Config:      cfg,
		TotalInsts:  t.measuredInsts,
		TraceEvents: t.measuredEvents,
		CacheStats: cache.Stats{
			Hits:                  hits,
			Misses:                misses,
			Inserts:               misses, // the replay installs on every miss
			Evictions:             t.evs[3*lane],
			EvictionsUnreferenced: t.evs[3*lane+1],
		},
		ResidentUnreferenced: residentUnref,
		FallbackInsts:        fallbackInsts,
		Reads:                t.measuredEvents,
		Writes:               measuredMisses,
	}
	if t.measuredInsts > 0 {
		r.DetectionLoss = 100 * float64(evictedLoss) / float64(t.measuredInsts)
		r.RecoveryLoss = 100 * float64(missInsts) / float64(t.measuredInsts)
	}
	return r
}

// ---- positional array layout (set-associative groups, depth < 32) ----

// arrayGroup keeps each set's recency stack as a most-recent-first array of
// interleaved (key, meta) word pairs: kv[2(base+p)] is the p-th most
// recently touched key of the set, kv[2(base+p)+1] its packed lane state
// (referenced bitmask | weight<<metaRefBits). Interleaving keeps the fused
// rotation on a single forward stream — every element's two words load and
// store together.
type arrayGroup struct {
	groupTallies
	setMask     uint64
	cap         int
	laneMaskAll uint64
	kv          []uint64
	length      []int32 // per set: live entries
}

// noKey fills empty key slots so the hot loops need no occupancy check:
// trace keys are program counters, which never reach ^uint64(0).
const noKey = ^uint64(0)

func newArrayGroup(numSets int, ways []int32) *arrayGroup {
	depth := int(ways[len(ways)-1])
	g := &arrayGroup{
		groupTallies: newGroupTallies(ways),
		setMask:      uint64(numSets - 1),
		cap:          depth,
		laneMaskAll:  uint64(1)<<len(ways) - 1,
		kv:           make([]uint64, 2*numSets*depth),
		length:       make([]int32, numSets),
	}
	for i := 0; i < len(g.kv); i += 2 {
		g.kv[i] = noKey
	}
	return g
}

// accessBlock replays one buffered block. The loop body inlines only the
// dominant case — a re-touch of the most recent key, which hits every lane
// and moves nothing — with its tallies batched in registers; anything that
// reorders the stack drops to accessSlow.
func (g *arrayGroup) accessBlock(packed []uint64) {
	if g.cap == 1 {
		g.accessBlockDM(packed)
		return
	}
	kv, length := g.kv, g.length
	setMask, depth, laneMaskAll := g.setMask, g.cap, g.laneMaskAll
	var e0, m0, i0 int64 // band-0 (all-lanes-hit) tallies
	for _, p := range packed {
		pc := p & packPCMask
		set := int(pc & setMask)
		base := set * depth
		if kv[2*base] == pc {
			// Already most recent: every lane hits and references the line.
			e0++
			if int64(p) >= 0 { // measured (warm flag is the sign bit)
				m0++
				i0 += int64(p<<1) >> (packPCBits + 1)
			}
			kv[2*base+1] |= laneMaskAll
			continue
		}
		g.accessSlow(pc, int64(p<<1)>>(packPCBits+1), int64(p) < 0, set, base, int(length[set]))
	}
	g.bands[0] += e0
	g.bands[1] += m0
	g.bands[2] += i0
}

// accessBlockDM is the depth-1 specialization (a single direct-mapped lane,
// the group with the most sets): every touch is either a top hit or an
// evict-and-replace, so the whole replay inlines here with the tallies and
// eviction counters batched in registers — no accessSlow call per miss.
func (g *arrayGroup) accessBlockDM(packed []uint64) {
	kv, length := g.kv, g.length
	setMask := g.setMask
	var e0, m0, i0 int64    // band 0: the line hit
	var e1, m1, i1 int64    // band 1: the line missed
	var ev0, un0, ax0 int64 // lane-0 eviction tallies
	for _, p := range packed {
		pc := p & packPCMask
		set := int(pc & setMask)
		k := kv[2*set]
		if k == pc {
			e0++
			if int64(p) >= 0 {
				m0++
				i0 += int64(p<<1) >> (packPCBits + 1)
			}
			kv[2*set+1] |= 1
			continue
		}
		warm := int64(p) < 0
		if k != noKey {
			m := kv[2*set+1]
			ev0++
			if m&1 == 0 {
				un0++
				if !warm {
					ax0 += int64(m >> metaRefBits)
				}
			}
		} else {
			length[set] = 1
		}
		e1++
		var meta uint64
		if warm {
			meta = 1 // born referenced, zero weight
		} else {
			evLen := int64(p<<1) >> (packPCBits + 1)
			m1++
			i1 += evLen
			meta = uint64(evLen) << metaRefBits
		}
		kv[2*set] = pc
		kv[2*set+1] = meta
	}
	g.bands[0] += e0
	g.bands[1] += m0
	g.bands[2] += i0
	g.bands[3] += e1
	g.bands[4] += m1
	g.bands[5] += i1
	g.evs[0] += ev0
	g.evs[1] += un0
	g.evs[2] += ax0
}

// accessSlow handles every touch that reorders the stack: a hit below the
// top or a miss. It scans for the key (top already ruled out by the fast
// path), reads each missing lane's victim — the line at the lane's boundary
// position ways[l]-1 — directly, then shifts the moving prefix down one slot
// with a single overlapping copy (memmove) instead of rotating pairwise.
func (g *arrayGroup) accessSlow(pc uint64, evLen int64, warm bool, set, base, n int) {
	kv, ways := g.kv, g.ways
	lanes := len(ways)
	d := -1
	for j, p := 1, 2*base+2; j < n; j, p = j+1, p+2 {
		if kv[p] == pc {
			d = j
			break
		}
	}
	b := 0
	if d >= 0 {
		// Hit at depth d: every lane no wider than d misses, and each is
		// provably full (n > d >= ways[b]), so its victim is its boundary
		// line. The band is the count of missing lanes.
		for b < lanes && int(ways[b]) <= d {
			g.evict(b, kv[2*(base+int(ways[b]))-1], warm)
			b++
		}
		// Shift [0, d) down one slot; inline backward copy, since at depth
		// < 32 the move is far too short to amortize a memmove call.
		for p := 2 * (base + d); p > 2*base; p -= 2 {
			kv[p], kv[p+1] = kv[p-2], kv[p-1]
		}
	} else {
		// Cold miss: every lane misses, full or not. Full lanes (stack at
		// least their extent) evict their boundary line; wider ones have
		// room, and the stack grows unless at capacity, where the widest
		// lane's extent is the whole stack and the tail drops (its eviction
		// charged like any other boundary).
		b = lanes
		for li := 0; li < lanes && int(ways[li]) <= n; li++ {
			g.evict(li, kv[2*(base+int(ways[li]))-1], warm)
		}
		keep := n
		if n < g.cap {
			keep = n + 1
			g.length[set] = int32(keep)
		}
		for p := 2*(base+keep) - 2; p > 2*base; p -= 2 {
			kv[p], kv[p+1] = kv[p-2], kv[p-1]
		}
	}
	i := 3 * b
	g.bands[i]++
	if !warm {
		g.bands[i+1]++
		g.bands[i+2] += evLen
	}

	// Install at the front: lanes that hit (>= b) are referenced by this
	// touch; lanes that missed reinstall fresh. Either way the entry's
	// weight becomes this event's — zero for warm-up instances (born
	// referenced, so the skipped region can never be charged), the
	// instruction count for measured ones.
	kv[2*base] = pc
	if warm {
		kv[2*base+1] = g.laneMaskAll
	} else {
		kv[2*base+1] = uint64(evLen)<<metaRefBits | g.laneMaskAll&^(uint64(1)<<b-1)
	}
}

// evict charges lane li for evicting the line whose meta word is m.
func (g *arrayGroup) evict(li int, m uint64, warm bool) {
	g.evs[3*li]++
	if m&(uint64(1)<<li) == 0 {
		g.evs[3*li+1]++
		if !warm {
			g.evs[3*li+2] += int64(m >> metaRefBits)
		}
	}
}

// residentUnreferenced counts lines resident in the lane at end of replay
// that were never referenced — the truncation artifact CoverageSim reports.
func (g *arrayGroup) residentUnreferenced(lane int) int {
	w := int(g.ways[lane])
	bit := uint64(1) << lane
	n := 0
	for set := range g.length {
		depth := int(g.length[set])
		if depth > w {
			depth = w
		}
		base := set * g.cap
		for p := base; p < base+depth; p++ {
			if g.kv[2*p+1]&bit == 0 {
				n++
			}
		}
	}
	return n
}

func (g *arrayGroup) result(lane int, cfg Config) Result {
	return g.assemble(lane, cfg, g.residentUnreferenced(lane))
}

// ---- linked-list layout (the fully associative group, depth >= 32) ----

// listGroup keeps each set's recency stack as a doubly linked list over a
// flat node pool with a key->node map, so deep stacks never shift memory.
// Depth is tracked only as coarsely as the accounting needs it: each node
// carries its band (which inter-lane region its depth falls in), and each
// lane keeps a marker pointing at its boundary node — the lane's LRU line
// and next victim. A touch moves one node and slides at most one marker per
// missing lane. Lane state is a referenced bitmask (up to 64 lanes) plus the
// per-entry shared weight, here unpacked into its own array.
type listGroup struct {
	groupTallies
	setMask uint64
	cap     int

	// Node pool: set s owns slots [s*cap, (s+1)*cap). Slots are handed out
	// in order while a set fills; once full, the dropped tail's slot is
	// reused for the incoming key, so holes never form.
	key  []uint64
	ref  []uint64 // referenced-in-lane bitmask (bit l = lane l)
	aux  []int32  // installing weight of the entry's most recent event
	band []uint8  // depth band: b means depth in [ways[b-1], ways[b])
	next []int32
	prev []int32

	head   []int32 // per set: most recently used
	tail   []int32 // per set: least recently used
	length []int32 // per set: live nodes
	// marker[s*len(ways)+l] is the node at depth ways[l]-1 of set s — lane
	// l's LRU line and next victim — or -1 until the lane has filled.
	marker []int32

	// Open-addressing key index (linear probing): tabVal[i] is the node
	// owning tabKey[i], tabEmpty while never used, tabTomb after a delete.
	// tabPos[node] is the node's table position, making deletion one store.
	// The table is sized at twice the pool and rebuilt when tombstones crowd
	// it, so probes stay short.
	tabKey   []uint64
	tabVal   []int32
	tabPos   []int32
	tabMask  uint64
	tabShift uint
	live     int
	tombs    int
}

const (
	tabEmpty = int32(-1)
	tabTomb  = int32(-2)
	// tabHashMul is Fibonacci hashing's 64-bit multiplier; the top bits of
	// pc*tabHashMul index the table.
	tabHashMul = 0x9E3779B97F4A7C15
)

func newListGroup(numSets int, ways []int32) *listGroup {
	depth := int(ways[len(ways)-1])
	lanes := len(ways)
	n := numSets * depth
	tabSize := 1
	for tabSize < 2*n {
		tabSize *= 2
	}
	// All same-typed arrays carve one backing allocation each; full-width
	// capacities keep the carved slices from sharing append growth.
	u64 := make([]uint64, 2*n+tabSize)
	i32 := make([]int32, 4*n+tabSize+3*numSets+numSets*lanes)
	carve := func(k int) (s []int32) { s, i32 = i32[:k:k], i32[k:]; return }
	g := &listGroup{
		groupTallies: newGroupTallies(ways),
		setMask:      uint64(numSets - 1),
		cap:          depth,
		key:          u64[:n:n],
		ref:          u64[n : 2*n : 2*n],
		aux:          carve(n),
		band:         make([]uint8, n),
		next:         carve(n),
		prev:         carve(n),
		head:         carve(numSets),
		tail:         carve(numSets),
		length:       carve(numSets),
		marker:       carve(numSets * lanes),
		tabKey:       u64[2*n:],
		tabVal:       carve(tabSize),
		tabPos:       carve(n),
		tabMask:      uint64(tabSize - 1),
	}
	g.tabShift = 64
	for size := tabSize; size > 1; size /= 2 {
		g.tabShift--
	}
	for i := range g.head {
		g.head[i], g.tail[i] = -1, -1
	}
	for i := range g.marker {
		g.marker[i] = -1
	}
	for i := range g.tabVal {
		g.tabVal[i] = tabEmpty
	}
	return g
}

// tabInsert records pc -> node at the probe position accessBlock's inline
// probe reserved: the chain's first tombstone, or the empty slot ending it.
func (g *listGroup) tabInsert(pc uint64, node int32, ins uint64) {
	if g.tabVal[ins] == tabTomb {
		g.tombs--
	}
	g.tabKey[ins] = pc
	g.tabVal[ins] = node
	g.tabPos[node] = int32(ins)
	g.live++
	if (g.live+g.tombs)*4 > len(g.tabVal)*3 {
		g.tabRebuild()
	}
}

// tabDelete removes node's key in one store, leaving a tombstone.
func (g *listGroup) tabDelete(node int32) {
	g.tabVal[g.tabPos[node]] = tabTomb
	g.live--
	g.tombs++
}

// tabRebuild reinserts the live entries into a clean table, shedding
// tombstones. Amortized: it runs at most once per size/4 deletions.
func (g *listGroup) tabRebuild() {
	old := append([]int32(nil), g.tabVal...)
	for i := range g.tabVal {
		g.tabVal[i] = tabEmpty
	}
	g.tombs = 0
	for i, v := range old {
		if v < 0 {
			continue
		}
		pc := g.tabKey[i]
		j := (pc * tabHashMul) >> g.tabShift
		for g.tabVal[j] != tabEmpty {
			j = (j + 1) & g.tabMask
		}
		g.tabKey[j] = pc
		g.tabVal[j] = v
		g.tabPos[v] = int32(j)
	}
}

func (g *listGroup) unlink(i int32, set int) {
	p, n := g.prev[i], g.next[i]
	if p >= 0 {
		g.next[p] = n
	} else {
		g.head[set] = n
	}
	if n >= 0 {
		g.prev[n] = p
	} else {
		g.tail[set] = p
	}
}

func (g *listGroup) pushFront(i int32, set int) {
	h := g.head[set]
	g.prev[i], g.next[i] = -1, h
	if h >= 0 {
		g.prev[h] = i
	} else {
		g.tail[set] = i
	}
	g.head[set] = i
}

// missLanes settles lanes [0, b) — the lanes that miss when x is accessed
// from band b (b == len(ways) on a cold insert): the boundary eviction where
// the lane is full, and the marker advance. When the set is at capacity and
// x reuses the dropped tail's slot, the widest lane's victim *is* that slot;
// each iteration therefore reads its lane's eviction state before access
// writes x's fresh state.
func (g *listGroup) missLanes(x int32, set, b int, warm bool) {
	lanes := len(g.ways)
	mbase := set * lanes
	for l := 0; l < b; l++ {
		if m := g.marker[mbase+l]; m >= 0 { // lane full: its boundary line is evicted
			g.evs[3*l]++
			if g.ref[m]&(uint64(1)<<l) == 0 {
				g.evs[3*l+1]++
				if !warm {
					g.evs[3*l+2] += int64(g.aux[m])
				}
			}
			// The evicted node slides one deeper; the node above it becomes
			// the lane's new boundary. When the boundary was the head, the
			// incoming x (about to become head at depth 0) is — which can
			// only happen for a direct-mapped lane.
			if p := g.prev[m]; p >= 0 {
				g.marker[mbase+l] = p
			} else {
				g.marker[mbase+l] = x
			}
			g.band[m] = uint8(l + 1)
		}
	}
}

// accessBlock replays one buffered block. The key probe is inlined, and the
// dominant case — a re-touch of the current head, which hits every lane and
// moves nothing (the head's band is always 0, and a marker pointing at the
// head has no node above it to inherit the boundary) — short-circuits with
// its tallies batched in registers; anything else takes hitSlow or coldMiss
// with the probe result passed down, never re-probing.
func (g *listGroup) accessBlock(packed []uint64) {
	tabKey, tabVal := g.tabKey, g.tabVal
	tabMask, tabShift := g.tabMask, g.tabShift
	ref, aux, head := g.ref, g.aux, g.head
	setMask := g.setMask
	var e0, m0, i0 int64 // band-0 (all-lanes-hit) tallies
	for _, p := range packed {
		pc := p & packPCMask
		j := (pc * tabHashMul) >> tabShift
		ins := ^uint64(0)
		node := int32(-1)
		for {
			v := tabVal[j]
			if v == tabEmpty {
				if ins == ^uint64(0) {
					ins = j
				}
				break
			}
			if v == tabTomb {
				if ins == ^uint64(0) {
					ins = j
				}
			} else if tabKey[j] == pc {
				node = v
				break
			}
			j = (j + 1) & tabMask
		}
		set := int(pc & setMask)
		evLen := int64(p<<1) >> (packPCBits + 1)
		warm := int64(p) < 0
		if node >= 0 {
			if head[set] == node {
				e0++
				ref[node] = ^uint64(0)
				if warm {
					aux[node] = 0
				} else {
					m0++
					i0 += evLen
					aux[node] = int32(evLen)
				}
				continue
			}
			if g.band[node] == 0 {
				// Band 0 below the head: every lane hits, so the touch is
				// pure move-to-front. The node is not the head, so it has a
				// predecessor to inherit lane 0's boundary if it held it.
				e0++
				ref[node] = ^uint64(0)
				if warm {
					aux[node] = 0
				} else {
					m0++
					i0 += evLen
					aux[node] = int32(evLen)
				}
				if mi := set * len(g.ways); g.marker[mi] == node {
					g.marker[mi] = g.prev[node]
				}
				g.unlink(node, set)
				g.pushFront(node, set)
				continue
			}
			g.hitSlow(evLen, warm, set, node)
		} else {
			g.coldMiss(pc, evLen, warm, set, ins)
		}
	}
	g.bands[0] += e0
	g.bands[1] += m0
	g.bands[2] += i0
}

// hitSlow handles a hit anywhere below the head: node is the live entry the
// block loop's probe found.
func (g *listGroup) hitSlow(evLen int64, warm bool, set int, node int32) {
	lanes := len(g.ways)
	b := int(g.band[node])
	g.tally(b, evLen, warm)
	if b > 0 {
		g.missLanes(node, set, b, warm)
	}
	// Lanes wider than the node's depth hit and reference the line; the
	// missed lanes reinstall it with this event's weight (zero and
	// referenced when warming).
	if warm {
		g.ref[node] = ^uint64(0)
		g.aux[node] = 0
	} else {
		g.ref[node] = (g.ref[node] | ^uint64(0)<<b) &^ (uint64(1)<<b - 1)
		g.aux[node] = int32(evLen)
	}
	// If the node sat exactly on its own band's boundary, the node above
	// it inherits the boundary as everything shallower slides down one.
	if g.marker[set*lanes+b] == node {
		if p := g.prev[node]; p >= 0 {
			g.marker[set*lanes+b] = p
		}
	}
	g.unlink(node, set)
	g.pushFront(node, set)
	g.band[node] = 0
}

// coldMiss installs a key absent from every lane; ins is the table slot the
// block loop's probe reserved for it.
func (g *listGroup) coldMiss(pc uint64, evLen int64, warm bool, set int, ins uint64) {
	lanes := len(g.ways)
	g.tally(lanes, evLen, warm)
	var slot int32
	if g.length[set] == int32(g.cap) {
		slot = g.tail[set] // the widest lane's victim; reuse its slot
		g.missLanes(slot, set, lanes, warm)
		g.tabDelete(slot)
		g.unlink(slot, set)
	} else {
		slot = int32(set*g.cap) + g.length[set]
		g.length[set]++
		g.missLanes(slot, set, lanes, warm)
	}
	if warm {
		g.ref[slot] = ^uint64(0)
		g.aux[slot] = 0
	} else {
		g.ref[slot] = 0
		g.aux[slot] = int32(evLen)
	}
	g.key[slot] = pc
	g.pushFront(slot, set)
	g.band[slot] = 0
	g.tabInsert(pc, slot, ins)
	// A lane whose associativity the set just reached is now full: its
	// boundary is the current tail, and from here on it evicts.
	newLen := g.length[set]
	mbase := set * lanes
	for l, w := range g.ways {
		if w == newLen {
			g.marker[mbase+l] = g.tail[set]
		}
	}
}

// residentUnreferenced counts lines resident in the lane at end of replay
// that were never referenced. A node is resident in lane l exactly when its
// band is at most l.
func (g *listGroup) residentUnreferenced(lane int) int {
	bit := uint64(1) << lane
	n := 0
	for set := range g.head {
		for nd := g.head[set]; nd >= 0; nd = g.next[nd] {
			if int(g.band[nd]) <= lane && g.ref[nd]&bit == 0 {
				n++
			}
		}
	}
	return n
}

func (g *listGroup) result(lane int, cfg Config) Result {
	return g.assemble(lane, cfg, g.residentUnreferenced(lane))
}

// newReplayGroup picks the stack layout for the group's depth.
func newReplayGroup(numSets int, ways []int32) replayGroup {
	if int(ways[len(ways)-1]) >= groupIndexedCapMin {
		return newListGroup(numSets, ways)
	}
	return newArrayGroup(numSets, ways)
}
