package core
