package core

import "itr/internal/trace"

// Detector is the pipeline-facing contract every fault-detection backend
// implements. The ITR Checker is the reference implementation; rival
// mechanisms (chunked replay, divergent dual execution) plug in behind the
// same seam so the pipeline, fault campaigns, snapshots and experiment
// engine drive them identically.
//
// The protocol mirrors the Section 2.2 commit rule: the pipeline calls
// DispatchTrace when decode completes a trace (stalling while Full reports
// true), PollQuick/Poll for every instruction that is ready to commit,
// CommitTraceEnd when the trace-terminating instruction commits, SetNow with
// the committed-instruction count each cycle, RollbackTo on branch
// misprediction squashes and FlushAll on whole-pipeline flushes.
//
// Implementations are single-threaded: a detector belongs to one CPU and is
// only called from its cycle loop. Captured DetectorStates, however, must be
// immutable so one capture can be restored into many detectors concurrently
// (the campaign run arenas do exactly that).
type Detector interface {
	// DispatchTrace ingests a completed trace, returning the in-flight
	// sequence number used by branch checkpoints. ok is false when the
	// detector's in-flight window is full and dispatch must stall.
	DispatchTrace(ev trace.Event, wrongPath bool) (seq uint64, ok bool)
	// Full reports whether trace dispatch must stall for in-flight space.
	Full() bool
	// PollQuick reports whether Poll would certainly return ActionProceed
	// with no side effects; the commit loop uses it to skip Poll on the
	// overwhelmingly common fault-free path.
	PollQuick() bool
	// Poll is the per-commit verdict for the instruction at the head of the
	// machine's commit stream.
	Poll() Action
	// CommitTraceEnd retires the oldest in-flight trace after its
	// terminating instruction committed (backend bookkeeping: signature
	// install, replay fold, shadow execution).
	CommitTraceEnd()
	// SetNow provides the current committed-instruction count, the
	// timebase for checkpoint-safety decisions.
	SetNow(committed int64)
	// RollbackTo squashes in-flight entries younger than the branch
	// checkpoint keepSeq.
	RollbackTo(keepSeq uint64)
	// FlushAll squashes every in-flight entry (whole-pipeline flushes that
	// are not backend-initiated retries).
	FlushAll()
	// RetryArmed reports an outstanding flush-and-retry, and for which PC.
	RetryArmed() (pc uint64, armed bool)
	// SafeToCheckpoint reports whether a coarse-grain checkpoint taken now
	// could later be rolled back to safely — i.e. no committed state is
	// still awaiting verification by this backend (for ITR: no unchecked
	// cache lines; for chunked replay: no open chunk).
	SafeToCheckpoint() bool
	// SignatureStamp returns the committed-instruction stamp of the
	// backend's evidence about pc (the ITR cache line install stamp, or a
	// pending replay chunk's start). Checkpointed recovery compares it to
	// the checkpoint's commit horizon to decide whether rollback can help.
	// found is false when the backend holds no evidence for pc.
	SignatureStamp(pc uint64) (stamp int64, found bool)
	// DiscardSignature drops the backend's (possibly fault-corrupted)
	// evidence about pc after a checkpoint rollback, so re-execution
	// re-learns it cleanly.
	DiscardSignature(pc uint64)
	// Settled reports whether the backend can still produce any
	// detection, retry or machine-check event in the future, under the
	// caller-guaranteed premise that every trace folding into the backend
	// at a committed-instruction count strictly greater than cleanCommit
	// is faithful (its dispatched signature equals the fault-free static
	// decode of its start PC). diverged tells the backend whether the
	// committed stream has permanently left the fault-free golden path;
	// backends that shadow-execute the committed stream (DME) keep
	// detecting on a diverged stream forever and must answer false.
	// Settled returning true means the backend's detection verdict is
	// final — the decided-outcome fault classifier uses it to stop
	// simulating once nothing observable can change. False negatives are
	// safe (the run continues); false positives would misclassify.
	//
	// Settled does NOT cover corrupted evidence a backend persists for
	// later, unrelated accesses (a faulty resident ITR cache line); the
	// caller audits that state separately where it can consult an oracle.
	Settled(cleanCommit int64, diverged bool) bool
	// Stats returns a copy of the backend's event counters.
	Stats() Stats
	// MismatchCount returns a pointer to the running mismatch total
	// (Stats().Mismatches without the struct copy). The pipeline caches
	// the pointer at construction and loads through it on every trace
	// retirement to decide whether a detection needs a cycle stamp, so
	// the returned address must stay valid and current for the detector's
	// lifetime — a pointer to the live counter field, not to a copy
	// (RestoreState must update the counter in place).
	MismatchCount() *int64
	// Detections returns all mismatches observed so far.
	Detections() []Detection
	// CaptureState snapshots the detector's mutable state. The capture is
	// immutable and safe to restore concurrently into many detectors.
	CaptureState() DetectorState
	// RestoreState overwrites the detector's mutable state with a capture
	// taken from a structurally identical detector.
	RestoreState(DetectorState) error
}

// DetectorState marks a backend's opaque immutable state capture. Each
// backend type-asserts its own concrete state in RestoreState; the marker
// method keeps arbitrary types from slipping through the interface. Backends
// outside this package opt in by embedding BaseDetectorState.
type DetectorState interface {
	detectorState()
}

// BaseDetectorState is embedded by backend state types in other packages to
// satisfy the sealed DetectorState interface.
type BaseDetectorState struct{}

func (BaseDetectorState) detectorState() {}

var _ Detector = (*Checker)(nil)
