package isa

import "fmt"

// Instruction is one static instruction as produced by the program builder
// (the "binary" form stored in the instruction image that fetch reads).
type Instruction struct {
	Op    Opcode
	Rd    RegID  // destination register
	Rs1   RegID  // first source (base register for memory ops)
	Rs2   RegID  // second source (data register for stores)
	Shamt uint8  // shift amount (5 bits)
	Imm   uint16 // immediate / branch displacement (16 bits, sign-extended)
	// Target is the 26-bit direct jump target (instruction index) for OpJ
	// and OpJal. At decode it is split across the imm, shamt and rsrc2
	// fields of the signal vector, mirroring how a MIPS J-type instruction
	// spreads its target across the instruction word.
	Target uint32
}

// Decode produces the Table 2 decode-signal vector for inst. This is the
// model of the processor's decode unit: every downstream pipeline stage and
// the ITR signature generator consume only the returned signals.
func Decode(inst Instruction) DecodeSignals {
	info := opTable[OpInvalid]
	if inst.Op.Valid() {
		info = opTable[inst.Op]
	}
	d := DecodeSignals{
		Opcode:  inst.Op,
		Flags:   info.flags,
		Shamt:   inst.Shamt & 0x1f,
		Rsrc1:   inst.Rs1 & 0x1f,
		Rsrc2:   inst.Rs2 & 0x1f,
		Rdst:    inst.Rd & 0x1f,
		Lat:     info.lat,
		Imm:     inst.Imm,
		NumRsrc: info.numRsrc,
		NumRdst: info.numRdst,
		MemSize: info.memSize,
	}
	if inst.Op == OpJ || inst.Op == OpJal {
		// Split the 26-bit direct target across imm(15:0), shamt(20:16)
		// and rsrc2(25:21).
		d.Imm = uint16(inst.Target)
		d.Shamt = uint8(inst.Target>>16) & 0x1f
		d.Rsrc2 = RegID(inst.Target>>21) & 0x1f
	}
	return d
}

// DirectTarget reconstructs the 26-bit direct jump target from the signal
// vector (the inverse of the split performed by Decode).
func (d DecodeSignals) DirectTarget() uint64 {
	return uint64(d.Imm) | uint64(d.Shamt&0x1f)<<16 | uint64(d.Rsrc2&0x1f)<<21
}

// String renders the instruction in assembler-like form.
func (inst Instruction) String() string {
	switch {
	case inst.Op == OpJ || inst.Op == OpJal:
		return fmt.Sprintf("%s %#x", inst.Op, inst.Target)
	case inst.Op.IsBranch():
		return fmt.Sprintf("%s r%d,r%d,%d", inst.Op, inst.Rs1, inst.Rs2, int16(inst.Imm))
	case inst.Op.IsMem():
		return fmt.Sprintf("%s r%d,%d(r%d)", inst.Op, dataReg(inst), int16(inst.Imm), inst.Rs1)
	default:
		return fmt.Sprintf("%s r%d,r%d,r%d,imm=%d", inst.Op, inst.Rd, inst.Rs1, inst.Rs2, int16(inst.Imm))
	}
}

func dataReg(inst Instruction) RegID {
	if opTable[inst.Op].flags&FlagSt != 0 {
		return inst.Rs2
	}
	return inst.Rd
}
