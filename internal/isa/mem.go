package isa

// Sparse data memory with generation-tagged copy-on-write pages.
//
// The fault campaign re-runs each benchmark from fault-free state on the
// order of a thousand times; both the pilot's snapshot series and every
// per-injection restore used to deep-copy the entire page set, making their
// cost scale with the total touched footprint. The COW scheme below makes
// capture O(page-table) with zero page copies and makes the write path pay
// only for pages actually dirtied since the last snapshot boundary:
//
//   - every page carries the generation it was materialized in;
//   - Snapshot freezes the current page table by reference and bumps the
//     live memory's generation, so the first store to any captured page
//     copies it (pages the run never touches again are never copied);
//   - CopyFrom from a snapshot shares pages by reference, and when the
//     memory is already synchronized with that snapshot's lineage it only
//     reverts the pages dirtied since (the dirty log names them).

const (
	pageWords = 512 // 4 KiB pages of 8-byte words
	pageShift = 12
	pageMask  = (1 << pageShift) - 1

	// PageBytes is the size of one memory page (snapshot telemetry reports
	// copied pages in bytes with it).
	PageBytes = 1 << pageShift
)

// memPage is one 4 KiB page plus the generation it was materialized in. A
// memory may write a page in place only while its own generation matches the
// stamp; pages inherited from a snapshot always carry an older stamp and are
// copied on first store.
type memPage struct {
	gen  uint64
	data [pageWords]uint64
}

// Memory is a sparse, byte-addressable data memory backed by 4 KiB pages of
// 64-bit words, with copy-on-write snapshots. The zero value is not usable;
// call NewMemory.
type Memory struct {
	pages map[uint64]*memPage

	gen    uint64 // current write generation; pages stamped older are shared
	frozen bool   // snapshots are immutable: Store and CopyFrom panic

	// base is the snapshot this memory last synchronized with (captured or
	// restored); dirty lists the page IDs materialized since, enabling
	// O(dirty) revert back to base. nil/empty outside snapshot lineages.
	base  *Memory
	dirty []uint64

	copied int64 // lifetime count of copy-on-write page copies
	owned  int   // frozen only: pages first materialized by this snapshot
}

var _ MemBus = (*Memory)(nil)

// NewMemory returns an empty memory. All bytes read as zero until written.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*memPage)}
}

// word returns the word holding addr for reading, or nil when the page was
// never materialized. Shared (snapshot-visible) pages are read in place.
func (m *Memory) word(addr uint64) *uint64 {
	page, ok := m.pages[addr>>pageShift]
	if !ok {
		return nil
	}
	return &page.data[(addr&pageMask)>>3]
}

// wordForWrite returns the word holding addr for writing, materializing a
// private copy of the page when it is shared with a snapshot (stamped with an
// older generation) and allocating it when it does not exist yet.
func (m *Memory) wordForWrite(addr uint64) *uint64 {
	if m.frozen {
		panic("isa: store to frozen snapshot memory")
	}
	pageID := addr >> pageShift
	page, ok := m.pages[pageID]
	switch {
	case !ok:
		page = &memPage{gen: m.gen}
		m.pages[pageID] = page
		m.dirty = append(m.dirty, pageID)
	case page.gen != m.gen:
		cp := &memPage{gen: m.gen, data: page.data}
		m.pages[pageID] = cp
		m.dirty = append(m.dirty, pageID)
		m.copied++
		page = cp
	}
	return &page.data[(addr&pageMask)>>3]
}

// Load reads size bytes (1, 2, 4 or 8) at addr, little-endian, zero-extended.
// Accesses are aligned down to the access size.
func (m *Memory) Load(addr uint64, size uint8) uint64 {
	if size == 0 {
		return 0
	}
	addr &^= uint64(size) - 1
	w := m.word(addr)
	if w == nil {
		return 0
	}
	shift := (addr & 7) * 8
	switch size {
	case 1:
		return (*w >> shift) & 0xff
	case 2:
		return (*w >> shift) & 0xffff
	case 4:
		return (*w >> shift) & 0xffffffff
	default:
		return *w
	}
}

// Store writes size bytes (1, 2, 4 or 8) of v at addr, little-endian.
// Accesses are aligned down to the access size.
func (m *Memory) Store(addr uint64, size uint8, v uint64) {
	if size == 0 {
		return
	}
	addr &^= uint64(size) - 1
	w := m.wordForWrite(addr)
	shift := (addr & 7) * 8
	switch size {
	case 1:
		*w = *w&^(uint64(0xff)<<shift) | (v&0xff)<<shift
	case 2:
		*w = *w&^(uint64(0xffff)<<shift) | (v&0xffff)<<shift
	case 4:
		*w = *w&^(uint64(0xffffffff)<<shift) | (v&0xffffffff)<<shift
	default:
		*w = v
	}
}

// NumPages returns how many distinct pages the memory references — pages
// materialized by stores through this memory plus pages inherited by
// reference from a snapshot it was captured into or restored from.
func (m *Memory) NumPages() int { return len(m.pages) }

// DirtyPages returns how many pages have been materialized (allocated or
// copied) since the last snapshot boundary — the exact page count the next
// Snapshot will own.
func (m *Memory) DirtyPages() int {
	if m.base == nil {
		return len(m.pages)
	}
	return len(m.dirty)
}

// CopiedPages returns the lifetime count of copy-on-write page copies — the
// physical copying the write path performed to preserve snapshot views. It
// is monotonic across snapshots and restores.
func (m *Memory) CopiedPages() int64 { return m.copied }

// OwnedPages returns, for a snapshot, the number of pages it materialized
// first (pages dirtied since the previous snapshot of the capturing memory;
// everything else is shared by reference with older captures). For a live
// memory it reports the current dirty-page count.
func (m *Memory) OwnedPages() int {
	if m.frozen {
		return m.owned
	}
	return m.DirtyPages()
}

// SharedPages returns NumPages minus OwnedPages: pages held by reference
// only.
func (m *Memory) SharedPages() int { return len(m.pages) - m.OwnedPages() }

// Frozen reports whether the memory is an immutable snapshot.
func (m *Memory) Frozen() bool { return m.frozen }

// Snapshot returns an immutable copy-on-write capture of the memory:
// O(page-table) work, zero page copies. The snapshot shares page storage
// with the live memory, which copies any shared page on its next store to
// it, so the snapshot's view never changes; it may be read — and restored
// from via CopyFrom — by any number of goroutines concurrently.
func (m *Memory) Snapshot() *Memory {
	if m.frozen {
		return m
	}
	snap := &Memory{
		pages:  make(map[uint64]*memPage, len(m.pages)),
		gen:    m.gen,
		frozen: true,
		owned:  m.DirtyPages(),
	}
	for id, page := range m.pages {
		snap.pages[id] = page
	}
	m.gen++
	m.base = snap
	m.dirty = m.dirty[:0]
	return snap
}

// Clone returns a deep copy of the memory (used to seed golden/faulty pairs
// with identical initial state). The clone is private: it shares no pages
// and no snapshot lineage with the original.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for id, page := range m.pages {
		c.pages[id] = &memPage{data: page.data}
	}
	return c
}

// CopyFrom overwrites the memory's entire contents with the contents of src,
// preserving m's identity so aliases (ArchState.Mem, store overlays,
// checkpoint managers) stay valid. src is only read; one snapshot memory may
// be restored into any number of memories concurrently.
//
// When src is a snapshot the copy is O(pages dirtied since the snapshot):
// pages are adopted by reference and only divergent pages are touched —
// those the memory dirtied since last synchronizing with src when it is
// src's direct descendant (the dirty log names them), or the whole page
// table (still by reference, no page copies) when the lineages differ.
// Subsequent stores copy-on-write, so src's view is never disturbed. A
// non-snapshot src is deep-copied.
func (m *Memory) CopyFrom(src *Memory) {
	if m.frozen {
		panic("isa: CopyFrom into frozen snapshot memory")
	}
	if m == src {
		return
	}
	if !src.frozen {
		// Deep copy: src keeps its pages private, so sharing would alias
		// live stores. Fresh private pages reset m's snapshot lineage.
		m.pages = make(map[uint64]*memPage, len(src.pages))
		for id, page := range src.pages {
			m.pages[id] = &memPage{gen: m.gen, data: page.data}
		}
		m.base = nil
		m.dirty = m.dirty[:0]
		return
	}
	if m.base == src {
		// Revert-by-generation fast path: everything not in the dirty log
		// still matches the snapshot, so only dirtied pages need reverting.
		for _, id := range m.dirty {
			if page, ok := src.pages[id]; ok {
				m.pages[id] = page
			} else {
				delete(m.pages, id)
			}
		}
	} else {
		m.pages = make(map[uint64]*memPage, len(src.pages))
		for id, page := range src.pages {
			m.pages[id] = page
		}
	}
	// The memory now shares every page with src (and possibly with younger
	// snapshots of the same lineage); a generation strictly above both sides
	// forces copy-on-write for all of them.
	if src.gen > m.gen {
		m.gen = src.gen
	}
	m.gen++
	m.base = src
	m.dirty = m.dirty[:0]
}

// VisitPages calls fn for every materialized page with its page ID and word
// contents, in unspecified order. The words must not be mutated: on a
// snapshot they are immutable and possibly shared; on a live memory mutation
// would bypass copy-on-write. Page ID p covers addresses [p<<12, (p+1)<<12).
func (m *Memory) VisitPages(fn func(pageID uint64, words []uint64)) {
	for id, page := range m.pages {
		fn(id, page.data[:])
	}
}

var zeroPage memPage

// Equal reports whether the two memories hold identical contents at every
// address. It is the convergence check behind decided-outcome fault
// classification: a page shared by both page tables (the common case when
// one side descends from a snapshot of the other — the copy-on-write
// machinery shares pages by pointer until first write) compares in O(1) by
// identity; only pages one side materialized privately are word-compared. A
// page present on one side only is compared against zeros, because a
// never-materialized page reads as zero.
func (m *Memory) Equal(o *Memory) bool {
	for id, p := range m.pages {
		q, ok := o.pages[id]
		switch {
		case ok && p == q:
			// Shared by reference: identical by construction.
		case ok:
			if p.data != q.data {
				return false
			}
		default:
			if p.data != zeroPage.data {
				return false
			}
		}
	}
	for id, q := range o.pages {
		if _, ok := m.pages[id]; !ok && q.data != zeroPage.data {
			return false
		}
	}
	return true
}
