// Package isa defines the synthetic RISC instruction set used throughout the
// ITR reproduction: instruction encodings, the decode-signal vector of the
// paper's Table 2, a decoder, and full functional execution semantics.
//
// The ISA stands in for the SimpleScalar PISA ISA used by the paper. What
// matters for reproducing the paper is preserved exactly:
//
//   - the decode-signal vector is the paper's Table 2, bit for bit: opcode(8),
//     flags(12), shamt(5), rsrc1(5), rsrc2(5), rdst(5), lat(2), imm(16),
//     num_rsrc(2), num_rdst(1), mem_size(3) — 64 bits total;
//   - traces terminate on branching instructions or at 16 instructions;
//   - execution is driven by the decode signals themselves (not re-derived
//     from the opcode), so a transient fault on any signal propagates into
//     architectural behaviour the same way it would in hardware.
package isa

import "fmt"

// RegID names one architectural register within a register file.
// Each file (integer, floating point) holds 32 registers; register 0 of the
// integer file is hardwired to zero, as in MIPS/PISA.
type RegID uint8

// NumRegs is the number of registers in each architectural register file.
const NumRegs = 32

// MaxTraceLen is the maximum number of instructions in a trace before it is
// force-terminated (paper Section 1: "a limit of 16 instructions").
const MaxTraceLen = 16

// Flag bits within the 12-bit decoded control flags field of Table 2.
// The paper lists exactly twelve flags: is_int, is_fp, is_signed/unsigned,
// is_branch, is_uncond, is_ld, is_st, mem_left/right, is_RR, is_disp,
// is_direct, is_trap.
const (
	FlagInt    uint16 = 1 << 0  // integer operation
	FlagFP     uint16 = 1 << 1  // floating-point operation
	FlagSigned uint16 = 1 << 2  // signed (vs unsigned) interpretation
	FlagBranch uint16 = 1 << 3  // control-transfer instruction
	FlagUncond uint16 = 1 << 4  // unconditional control transfer
	FlagLd     uint16 = 1 << 5  // memory load
	FlagSt     uint16 = 1 << 6  // memory store
	FlagMemL   uint16 = 1 << 7  // unaligned-access left half (vs right)
	FlagRR     uint16 = 1 << 8  // register-register format
	FlagDisp   uint16 = 1 << 9  // displacement addressing / immediate format
	FlagDirect uint16 = 1 << 10 // direct (vs register-indirect) target
	FlagTrap   uint16 = 1 << 11 // trap / system instruction
)

// FlagsMask covers the 12 architected flag bits.
const FlagsMask uint16 = (1 << 12) - 1

// flagNames maps each flag bit position to the paper's name for it, used in
// fault-injection reports.
var flagNames = [12]string{
	"is_int", "is_fp", "is_signed", "is_branch", "is_uncond", "is_ld",
	"is_st", "mem_left", "is_RR", "is_disp", "is_direct", "is_trap",
}

// FlagName returns the paper's name for the flag at bit position pos (0-11).
func FlagName(pos int) string {
	if pos < 0 || pos >= len(flagNames) {
		return fmt.Sprintf("flag%d", pos)
	}
	return flagNames[pos]
}
