package isa

import (
	"math"
	"testing"
	"testing/quick"
)

const maxU64 = ^uint64(0)

// negImm encodes a negative immediate in the 16-bit field.
func negImm(v int16) uint16 { return uint16(-v) }

func exec(t *testing.T, st *ArchState, inst Instruction) Outcome {
	t.Helper()
	return st.Step(inst)
}

func TestMemoryLoadStoreRoundTrip(t *testing.T) {
	if err := quick.Check(func(addr uint64, v uint64, sz uint8) bool {
		m := NewMemory()
		size := []uint8{1, 2, 4, 8}[sz%4]
		addr %= 1 << 40
		m.Store(addr, size, v)
		got := m.Load(addr, size)
		var mask uint64
		switch size {
		case 1:
			mask = 0xff
		case 2:
			mask = 0xffff
		case 4:
			mask = 0xffffffff
		default:
			mask = ^uint64(0)
		}
		return got == v&mask
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory()
	if m.Load(0x1234, 8) != 0 {
		t.Fatal("untouched memory must read zero")
	}
	if m.NumPages() != 0 {
		t.Fatal("reads must not allocate pages")
	}
}

func TestMemorySubwordIndependence(t *testing.T) {
	m := NewMemory()
	m.Store(0x100, 8, 0x1122334455667788)
	m.Store(0x100, 1, 0xff)
	if got := m.Load(0x100, 8); got != 0x11223344556677ff {
		t.Fatalf("byte store clobbered word: %#x", got)
	}
	m.Store(0x102, 2, 0xaaaa) // overwrites bytes 2-3 (0x66, 0x55)
	if got, want := m.Load(0x100, 8), uint64(0x11223344aaaa77ff); got != want {
		t.Fatalf("halfword store wrong: got %#x want %#x", got, want)
	}
}

func TestMemoryAlignment(t *testing.T) {
	m := NewMemory()
	m.Store(0x107, 4, 0xdeadbeef) // aligns down to 0x104
	if got := m.Load(0x104, 4); got != 0xdeadbeef {
		t.Fatalf("unaligned store did not align down: %#x", got)
	}
}

func TestMemoryZeroSize(t *testing.T) {
	m := NewMemory()
	m.Store(0x100, 0, 0xff)
	if got := m.Load(0x100, 8); got != 0 {
		t.Fatalf("size-0 store wrote memory: %#x", got)
	}
	if got := m.Load(0x100, 0); got != 0 {
		t.Fatalf("size-0 load returned %#x", got)
	}
}

func TestMemoryClone(t *testing.T) {
	m := NewMemory()
	m.Store(0x100, 8, 42)
	c := m.Clone()
	c.Store(0x100, 8, 99)
	if m.Load(0x100, 8) != 42 {
		t.Fatal("clone aliases original")
	}
	if c.Load(0x100, 8) != 99 {
		t.Fatal("clone lost write")
	}
}

func TestExecALU(t *testing.T) {
	st := NewArchState()
	st.R[1], st.R[2] = 7, 5
	cases := []struct {
		inst Instruction
		want uint64
	}{
		{Instruction{Op: OpAdd, Rd: 3, Rs1: 1, Rs2: 2}, 12},
		{Instruction{Op: OpSub, Rd: 3, Rs1: 1, Rs2: 2}, 2},
		{Instruction{Op: OpAnd, Rd: 3, Rs1: 1, Rs2: 2}, 5},
		{Instruction{Op: OpOr, Rd: 3, Rs1: 1, Rs2: 2}, 7},
		{Instruction{Op: OpXor, Rd: 3, Rs1: 1, Rs2: 2}, 2},
		{Instruction{Op: OpSlt, Rd: 3, Rs1: 1, Rs2: 2}, 0},
		{Instruction{Op: OpSlt, Rd: 3, Rs1: 2, Rs2: 1}, 1},
		{Instruction{Op: OpMul, Rd: 3, Rs1: 1, Rs2: 2}, 35},
		{Instruction{Op: OpDiv, Rd: 3, Rs1: 1, Rs2: 2}, 1},
		{Instruction{Op: OpAddi, Rd: 3, Rs1: 1, Imm: 100}, 107},
		{Instruction{Op: OpAddi, Rd: 3, Rs1: 1, Imm: negImm(3)}, 4},
		{Instruction{Op: OpAndi, Rd: 3, Rs1: 1, Imm: 3}, 3},
		{Instruction{Op: OpLui, Rd: 3, Imm: 0x12}, 0x120000},
	}
	for _, c := range cases {
		st.PC = 0
		o := exec(t, st, c.inst)
		if !o.RegWrite || o.Reg != 3 || o.Value != c.want {
			t.Errorf("%v: outcome %v, want r3=%d", c.inst, o, c.want)
		}
	}
}

func TestExecShifts(t *testing.T) {
	st := NewArchState()
	st.R[1] = 0x8000000000000001
	if o := exec(t, st, Instruction{Op: OpSll, Rd: 2, Rs1: 1, Shamt: 1}); o.Value != 2 {
		t.Errorf("sll: %#x", o.Value)
	}
	if o := exec(t, st, Instruction{Op: OpSrl, Rd: 2, Rs1: 1, Shamt: 1}); o.Value != 0x4000000000000000 {
		t.Errorf("srl: %#x", o.Value)
	}
	if o := exec(t, st, Instruction{Op: OpSra, Rd: 2, Rs1: 1, Shamt: 1}); o.Value != 0xC000000000000000 {
		t.Errorf("sra: %#x", o.Value)
	}
}

func TestExecDivideByZero(t *testing.T) {
	st := NewArchState()
	st.R[1] = 10
	o := exec(t, st, Instruction{Op: OpDiv, Rd: 2, Rs1: 1, Rs2: 0})
	if o.Value != 0 {
		t.Fatalf("div by zero must produce 0, got %d", o.Value)
	}
}

func TestExecZeroRegisterHardwired(t *testing.T) {
	st := NewArchState()
	o := exec(t, st, Instruction{Op: OpAddi, Rd: 0, Rs1: 0, Imm: 42})
	if o.RegWrite {
		t.Fatal("write to r0 must be dropped")
	}
	if st.R[0] != 0 {
		t.Fatal("r0 modified")
	}
}

func TestExecLoadStore(t *testing.T) {
	st := NewArchState()
	st.R[1] = 0x1000
	st.R[2] = 0xdeadbeefcafef00d
	exec(t, st, Instruction{Op: OpSd, Rs1: 1, Rs2: 2, Imm: 8})
	o := exec(t, st, Instruction{Op: OpLd, Rd: 3, Rs1: 1, Imm: 8})
	if o.Value != 0xdeadbeefcafef00d {
		t.Fatalf("ld got %#x", o.Value)
	}
	// Signed sub-word load.
	exec(t, st, Instruction{Op: OpSb, Rs1: 1, Rs2: 2, Imm: 16}) // stores 0x0d
	exec(t, st, Instruction{Op: OpSb, Rs1: 1, Rs2: 2, Imm: 17})
	st.R[4] = 0x1000
	exec(t, st, Instruction{Op: OpSw, Rs1: 1, Rs2: 2, Imm: 24})
	o = exec(t, st, Instruction{Op: OpLw, Rd: 5, Rs1: 1, Imm: 24})
	if o.Value != uint64(0xffffffffcafef00d) {
		t.Fatalf("lw sign extension: %#x", o.Value)
	}
}

func TestExecSignedByteLoad(t *testing.T) {
	st := NewArchState()
	st.R[1] = 0x2000
	st.R[2] = 0x80 // sign bit set as a byte
	exec(t, st, Instruction{Op: OpSb, Rs1: 1, Rs2: 2})
	o := exec(t, st, Instruction{Op: OpLb, Rd: 3, Rs1: 1})
	if int64(o.Value) != -128 {
		t.Fatalf("lb = %d, want -128", int64(o.Value))
	}
}

func TestExecBranches(t *testing.T) {
	st := NewArchState()
	st.R[1], st.R[2] = 5, 5
	cases := []struct {
		op    Opcode
		r1v   uint64
		r2v   uint64
		taken bool
	}{
		{OpBeq, 5, 5, true},
		{OpBeq, 5, 6, false},
		{OpBne, 5, 6, true},
		{OpBlt, 5, 6, true},
		{OpBlt, maxU64, 1, true},
		{OpBge, 6, 5, true},
		{OpBltu, maxU64, 1, false}, // -1 unsigned is huge
		{OpBgeu, maxU64, 1, true},
	}
	for _, c := range cases {
		st.R[1], st.R[2] = c.r1v, c.r2v
		st.PC = 100
		o := exec(t, st, Instruction{Op: c.op, Rs1: 1, Rs2: 2, Imm: 10})
		if o.Taken != c.taken {
			t.Errorf("%s(%d,%d): taken=%v want %v", c.op, c.r1v, c.r2v, o.Taken, c.taken)
		}
		wantPC := uint64(101)
		if c.taken {
			wantPC = 111
		}
		if o.NextPC != wantPC {
			t.Errorf("%s: nextPC=%d want %d", c.op, o.NextPC, wantPC)
		}
		if !o.Branch {
			t.Errorf("%s: Branch flag not set", c.op)
		}
	}
}

func TestExecBackwardBranch(t *testing.T) {
	st := NewArchState()
	st.R[1] = 1
	st.PC = 50
	o := exec(t, st, Instruction{Op: OpBne, Rs1: 1, Rs2: 0, Imm: negImm(10)})
	if o.NextPC != 41 {
		t.Fatalf("backward branch nextPC=%d, want 41", o.NextPC)
	}
}

func TestExecJumps(t *testing.T) {
	st := NewArchState()
	st.PC = 10
	o := exec(t, st, Instruction{Op: OpJ, Target: 12345})
	if o.NextPC != 12345 || !o.Taken {
		t.Fatalf("j: %+v", o)
	}
	st.PC = 10
	o = exec(t, st, Instruction{Op: OpJal, Rd: 31, Target: 500})
	if o.NextPC != 500 || !o.RegWrite || o.Reg != 31 || o.Value != 11 {
		t.Fatalf("jal: %+v", o)
	}
	st.R[31] = 11
	st.PC = 500
	o = exec(t, st, Instruction{Op: OpJr, Rs1: 31})
	if o.NextPC != 11 {
		t.Fatalf("jr: nextPC=%d", o.NextPC)
	}
}

func TestExecLargeDirectTarget(t *testing.T) {
	st := NewArchState()
	target := uint32(3 << 20) // needs bits above imm's 16
	o := exec(t, st, Instruction{Op: OpJ, Target: target})
	if o.NextPC != uint64(target) {
		t.Fatalf("26-bit target: nextPC=%d want %d", o.NextPC, target)
	}
}

func TestExecFloatingPoint(t *testing.T) {
	st := NewArchState()
	st.F[1] = math.Float64bits(2.5)
	st.F[2] = math.Float64bits(1.5)
	cases := []struct {
		op   Opcode
		want float64
	}{
		{OpFAdd, 4.0}, {OpFSub, 1.0}, {OpFMul, 3.75}, {OpFDiv, 2.5 / 1.5},
	}
	for _, c := range cases {
		o := exec(t, st, Instruction{Op: c.op, Rd: 3, Rs1: 1, Rs2: 2})
		if !o.RegWrite || !o.RegFP || math.Float64frombits(o.Value) != c.want {
			t.Errorf("%s: %v (val=%v)", c.op, o, math.Float64frombits(o.Value))
		}
	}
	o := exec(t, st, Instruction{Op: OpFNeg, Rd: 3, Rs1: 1})
	if math.Float64frombits(o.Value) != -2.5 {
		t.Errorf("fneg: %v", math.Float64frombits(o.Value))
	}
	o = exec(t, st, Instruction{Op: OpFCmp, Rd: 3, Rs1: 2, Rs2: 1})
	if o.Value != 1 {
		t.Errorf("fcmp 1.5<2.5: %d", o.Value)
	}
	st.R[4] = 7
	o = exec(t, st, Instruction{Op: OpFCvt, Rd: 3, Rs1: 4})
	if math.Float64frombits(o.Value) != 7.0 {
		t.Errorf("fcvt: %v", math.Float64frombits(o.Value))
	}
}

func TestExecFPDivByZero(t *testing.T) {
	st := NewArchState()
	st.F[1] = math.Float64bits(1.0)
	st.F[2] = math.Float64bits(0.0)
	o := exec(t, st, Instruction{Op: OpFDiv, Rd: 3, Rs1: 1, Rs2: 2})
	if math.Float64frombits(o.Value) != 0 {
		t.Fatalf("fdiv by zero must yield 0, got %v", math.Float64frombits(o.Value))
	}
}

func TestExecFPLoadStore(t *testing.T) {
	st := NewArchState()
	st.R[1] = 0x3000
	st.F[2] = math.Float64bits(9.75)
	exec(t, st, Instruction{Op: OpFSd, Rs1: 1, Rs2: 2, Imm: 0})
	o := exec(t, st, Instruction{Op: OpFLd, Rd: 3, Rs1: 1, Imm: 0})
	if !o.RegFP || math.Float64frombits(o.Value) != 9.75 {
		t.Fatalf("fld: %+v", o)
	}
}

func TestExecHalt(t *testing.T) {
	st := NewArchState()
	o := exec(t, st, Instruction{Op: OpHalt})
	if !o.Halt {
		t.Fatal("halt must set Halt")
	}
}

func TestExecInvalidOpcodeActsAsAnnulled(t *testing.T) {
	st := NewArchState()
	d := Decode(Instruction{Op: Opcode(250)})
	o := st.Exec(d, 5)
	if !o.Illegal || o.Halt || o.RegWrite || o.MemWrite {
		t.Fatalf("invalid opcode outcome: %+v", o)
	}
	if o.NextPC != 6 {
		t.Fatalf("invalid opcode must fall through, nextPC=%d", o.NextPC)
	}
}

// Fault-model semantics: corrupted signals steer execution.

func TestFaultNumRdstSuppressesWrite(t *testing.T) {
	st := NewArchState()
	st.R[1], st.R[2] = 7, 5
	d := Decode(Instruction{Op: OpAdd, Rd: 3, Rs1: 1, Rs2: 2})
	d.NumRdst = 0 // fault
	o := st.Exec(d, 0)
	if o.RegWrite {
		t.Fatal("num_rdst=0 must suppress the register write")
	}
}

func TestFaultIsBranchClearedFallsThrough(t *testing.T) {
	st := NewArchState()
	st.R[1], st.R[2] = 5, 5
	d := Decode(Instruction{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 10})
	d.Flags &^= FlagBranch // fault: branch treated as non-branch
	o := st.Exec(d, 100)
	if o.Branch || o.Taken || o.NextPC != 101 {
		t.Fatalf("cleared is_branch: %+v", o)
	}
}

func TestFaultIsBranchSetOnALUFallsThroughUntaken(t *testing.T) {
	st := NewArchState()
	d := Decode(Instruction{Op: OpAdd, Rd: 3, Rs1: 1, Rs2: 2})
	d.Flags |= FlagBranch // fault
	o := st.Exec(d, 100)
	if !o.Branch || o.Taken {
		t.Fatalf("alu-with-branch-flag: %+v", o)
	}
	if o.RegWrite {
		t.Fatal("branch path must not write a register result")
	}
}

func TestFaultRsrcChangesValue(t *testing.T) {
	st := NewArchState()
	st.R[1], st.R[2], st.R[9] = 7, 5, 1000
	d := Decode(Instruction{Op: OpAdd, Rd: 3, Rs1: 1, Rs2: 2})
	d.Rsrc1 = 9 // fault: wrong source register
	o := st.Exec(d, 0)
	if o.Value != 1005 {
		t.Fatalf("corrupted rsrc1 result: %d", o.Value)
	}
}

func TestFaultMemSizeZeroSuppressesStore(t *testing.T) {
	st := NewArchState()
	st.R[1], st.R[2] = 0x1000, 42
	d := Decode(Instruction{Op: OpSd, Rs1: 1, Rs2: 2})
	d.MemSize = 0 // fault
	o := st.Exec(d, 0)
	if o.MemWrite {
		t.Fatal("mem_size=0 must suppress the store")
	}
}

func TestFaultIsFPRedirectsRegisterFile(t *testing.T) {
	st := NewArchState()
	st.R[1], st.R[2] = 7, 5
	st.F[1] = math.Float64bits(100.0)
	d := Decode(Instruction{Op: OpFMov, Rd: 3, Rs1: 1})
	o := st.Exec(d, 0)
	if !o.RegFP || o.Value != math.Float64bits(100.0) {
		t.Fatalf("fmov baseline: %+v", o)
	}
	d.Flags &^= FlagFP // fault: fp op reads/writes integer file
	o = st.Exec(d, 0)
	if o.RegFP {
		t.Fatal("cleared is_fp must target the integer file")
	}
}

func TestFaultLatOnlyAffectsTiming(t *testing.T) {
	st := NewArchState()
	st.R[1], st.R[2] = 7, 5
	d := Decode(Instruction{Op: OpAdd, Rd: 3, Rs1: 1, Rs2: 2})
	base := st.Exec(d, 0)
	d.Lat = Lat4 // fault on the latency field
	faulty := st.Exec(d, 0)
	if !base.SameArchEffect(&faulty) {
		t.Fatal("lat field must not change architectural effect")
	}
}

func TestOutcomeSameArchEffect(t *testing.T) {
	a := Outcome{NextPC: 1, RegWrite: true, Reg: 3, Value: 7}
	if !a.SameArchEffect(&a) {
		t.Fatal("outcome must equal itself")
	}
	b := a
	b.Value = 8
	if a.SameArchEffect(&b) {
		t.Fatal("different values must differ")
	}
	c := a
	c.NextPC = 2
	if a.SameArchEffect(&c) {
		t.Fatal("different nextPC must differ")
	}
	d := a
	d.MemWrite = true
	d.MemAddr = 0x10
	d.MemWSize = 8
	if a.SameArchEffect(&d) {
		t.Fatal("memory write must differ")
	}
}

func TestApplyOutcome(t *testing.T) {
	st := NewArchState()
	st.Apply(Outcome{NextPC: 7, RegWrite: true, Reg: 4, Value: 99})
	if st.R[4] != 99 || st.PC != 7 {
		t.Fatalf("apply reg: %+v", st.R[4])
	}
	st.Apply(Outcome{NextPC: 8, RegWrite: true, RegFP: true, Reg: 4, Value: 123})
	if st.F[4] != 123 {
		t.Fatal("apply fp reg")
	}
	st.Apply(Outcome{NextPC: 9, MemWrite: true, MemAddr: 0x40, MemWData: 5, MemWSize: 8})
	if st.Mem.Load(0x40, 8) != 5 {
		t.Fatal("apply mem")
	}
}

func TestStepSequence(t *testing.T) {
	st := NewArchState()
	st.Step(Instruction{Op: OpAddi, Rd: 1, Imm: 10})
	st.Step(Instruction{Op: OpAddi, Rd: 2, Imm: 20})
	st.Step(Instruction{Op: OpAdd, Rd: 3, Rs1: 1, Rs2: 2})
	if st.R[3] != 30 {
		t.Fatalf("r3 = %d", st.R[3])
	}
	if st.PC != 3 {
		t.Fatalf("pc = %d", st.PC)
	}
}

func TestExecDeterminism(t *testing.T) {
	// Exec must be a pure function of (signals, pc, state).
	st1, st2 := NewArchState(), NewArchState()
	st1.R[1], st2.R[1] = 7, 7
	d := Decode(Instruction{Op: OpAddi, Rd: 2, Rs1: 1, Imm: 3})
	o1 := st1.Exec(d, 5)
	o2 := st2.Exec(d, 5)
	if o1 != o2 {
		t.Fatalf("nondeterministic exec: %+v vs %+v", o1, o2)
	}
}
