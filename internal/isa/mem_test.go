package isa

import (
	"math/rand"
	"sync"
	"testing"
)

// pageAddr returns an address inside page p at word offset w.
func pageAddr(p, w uint64) uint64 { return p<<pageShift | w<<3 }

func TestSnapshotImmutableUnderStores(t *testing.T) {
	m := NewMemory()
	m.Store(pageAddr(0, 0), 8, 0x1111)
	m.Store(pageAddr(5, 3), 8, 0x2222)

	snap := m.Snapshot()
	if !snap.Frozen() {
		t.Fatal("snapshot not frozen")
	}

	// Overwrite a captured word, extend a captured page, and materialize a
	// brand-new page: none of it may show through the snapshot.
	m.Store(pageAddr(0, 0), 8, 0xdead)
	m.Store(pageAddr(5, 9), 8, 0xbeef)
	m.Store(pageAddr(7, 0), 8, 0xf00d)

	if got := snap.Load(pageAddr(0, 0), 8); got != 0x1111 {
		t.Errorf("snapshot saw overwrite: %#x", got)
	}
	if got := snap.Load(pageAddr(5, 9), 8); got != 0 {
		t.Errorf("snapshot saw page extension: %#x", got)
	}
	if got := snap.Load(pageAddr(7, 0), 8); got != 0 {
		t.Errorf("snapshot saw new page: %#x", got)
	}
	if got := m.Load(pageAddr(0, 0), 8); got != 0xdead {
		t.Errorf("live memory lost store: %#x", got)
	}
}

func TestSnapshotZeroCopyCapture(t *testing.T) {
	m := NewMemory()
	for p := uint64(0); p < 16; p++ {
		m.Store(pageAddr(p, 0), 8, p+1)
	}
	if m.CopiedPages() != 0 {
		t.Fatalf("fresh stores counted as COW copies: %d", m.CopiedPages())
	}
	m.Snapshot()
	if m.CopiedPages() != 0 {
		t.Fatalf("capture itself copied pages: %d", m.CopiedPages())
	}
	// Dirty 3 of the 16 pages; only those are copied.
	m.Store(pageAddr(1, 0), 8, 99)
	m.Store(pageAddr(1, 5), 8, 99) // same page: no second copy
	m.Store(pageAddr(4, 0), 8, 99)
	m.Store(pageAddr(9, 0), 8, 99)
	if got := m.CopiedPages(); got != 3 {
		t.Fatalf("CopiedPages = %d, want 3", got)
	}
}

func TestSnapshotRevertFastPath(t *testing.T) {
	m := NewMemory()
	m.Store(pageAddr(0, 0), 8, 1)
	m.Store(pageAddr(1, 0), 8, 2)
	snap := m.Snapshot()

	m.Store(pageAddr(0, 0), 8, 100) // COW-copy of an existing page
	m.Store(pageAddr(2, 0), 8, 300) // page absent from the snapshot

	m.CopyFrom(snap)
	if got := m.Load(pageAddr(0, 0), 8); got != 1 {
		t.Errorf("dirty page not reverted: %#x", got)
	}
	if got := m.Load(pageAddr(2, 0), 8); got != 0 {
		t.Errorf("post-snapshot page survived revert: %#x", got)
	}
	if got := m.NumPages(); got != snap.NumPages() {
		t.Errorf("NumPages = %d after revert, want %d", got, snap.NumPages())
	}

	// The memory is writable again and the snapshot still holds.
	m.Store(pageAddr(1, 0), 8, 200)
	if got := snap.Load(pageAddr(1, 0), 8); got != 2 {
		t.Errorf("snapshot disturbed by post-revert store: %#x", got)
	}
}

func TestCopyFromForeignSnapshot(t *testing.T) {
	src := NewMemory()
	src.Store(pageAddr(0, 0), 8, 42)
	src.Store(pageAddr(3, 1), 8, 43)
	snap := src.Snapshot()

	// A fresh memory with unrelated contents adopts the snapshot's pages by
	// reference (share-all path), then diverges without disturbing it.
	m := NewMemory()
	m.Store(pageAddr(9, 0), 8, 7)
	m.CopyFrom(snap)
	if got := m.Load(pageAddr(0, 0), 8); got != 42 {
		t.Errorf("restored word = %#x, want 42", got)
	}
	if got := m.Load(pageAddr(9, 0), 8); got != 0 {
		t.Errorf("pre-restore page survived: %#x", got)
	}
	m.Store(pageAddr(0, 0), 8, 0xbad)
	if got := snap.Load(pageAddr(0, 0), 8); got != 42 {
		t.Errorf("snapshot disturbed through foreign restore: %#x", got)
	}

	// Reverting to an older snapshot after syncing with a newer one of the
	// same lineage must take the rebuild path, not the dirty-log fast path.
	src.Store(pageAddr(0, 0), 8, 1000)
	snap2 := src.Snapshot()
	m.CopyFrom(snap2)
	m.CopyFrom(snap)
	if got := m.Load(pageAddr(0, 0), 8); got != 42 {
		t.Errorf("revert to older snapshot = %#x, want 42", got)
	}
}

func TestOwnedSharedAccounting(t *testing.T) {
	m := NewMemory()
	for p := uint64(0); p < 8; p++ {
		m.Store(pageAddr(p, 0), 8, p)
	}
	s1 := m.Snapshot()
	if s1.OwnedPages() != 8 || s1.SharedPages() != 0 {
		t.Fatalf("first snapshot owned/shared = %d/%d, want 8/0", s1.OwnedPages(), s1.SharedPages())
	}

	m.Store(pageAddr(2, 0), 8, 99)
	m.Store(pageAddr(8, 0), 8, 99)
	if m.DirtyPages() != 2 {
		t.Fatalf("DirtyPages = %d, want 2", m.DirtyPages())
	}
	s2 := m.Snapshot()
	if s2.NumPages() != 9 || s2.OwnedPages() != 2 || s2.SharedPages() != 7 {
		t.Fatalf("second snapshot pages/owned/shared = %d/%d/%d, want 9/2/7",
			s2.NumPages(), s2.OwnedPages(), s2.SharedPages())
	}
}

func TestFrozenMemoryPanics(t *testing.T) {
	m := NewMemory()
	m.Store(0, 8, 1)
	snap := m.Snapshot()

	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on frozen snapshot did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Store", func() { snap.Store(0, 8, 2) })
	mustPanic("CopyFrom", func() { snap.CopyFrom(m) })

	if s2 := snap.Snapshot(); s2 != snap {
		t.Error("Snapshot of a snapshot should return itself")
	}
}

func TestCloneIsPrivate(t *testing.T) {
	m := NewMemory()
	m.Store(pageAddr(0, 0), 8, 5)
	snap := m.Snapshot()
	c := snap.Clone()
	if c.Frozen() {
		t.Fatal("clone of a snapshot must be writable")
	}
	c.Store(pageAddr(0, 0), 8, 6)
	if got := snap.Load(pageAddr(0, 0), 8); got != 5 {
		t.Errorf("clone store leaked into snapshot: %#x", got)
	}
}

// TestMemoryCowRandomized drives the COW memory and a set of retained
// snapshots against a plain word-map model through random stores, snapshots,
// and restores, checking full-contents agreement after every operation.
func TestMemoryCowRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(0x17b))
	m := NewMemory()
	model := map[uint64]uint64{} // word-aligned addr -> value

	type capture struct {
		snap  *Memory
		model map[uint64]uint64
	}
	var caps []capture

	copyModel := func() map[uint64]uint64 {
		c := make(map[uint64]uint64, len(model))
		for k, v := range model {
			c[k] = v
		}
		return c
	}
	check := func(op string) {
		t.Helper()
		for addr, want := range model {
			if got := m.Load(addr, 8); got != want {
				t.Fatalf("after %s: mem[%#x] = %#x, want %#x", op, addr, got, want)
			}
		}
		for _, c := range caps {
			for addr, want := range c.model {
				if got := c.snap.Load(addr, 8); got != want {
					t.Fatalf("after %s: snapshot mem[%#x] = %#x, want %#x", op, addr, got, want)
				}
			}
		}
	}

	for i := 0; i < 3000; i++ {
		switch r := rng.Intn(100); {
		case r < 80: // store into a small page universe to force collisions
			addr := pageAddr(uint64(rng.Intn(6)), uint64(rng.Intn(pageWords)))
			v := rng.Uint64()
			m.Store(addr, 8, v)
			model[addr] = v
		case r < 90:
			caps = append(caps, capture{snap: m.Snapshot(), model: copyModel()})
		default:
			if len(caps) == 0 {
				continue
			}
			c := caps[rng.Intn(len(caps))]
			m.CopyFrom(c.snap)
			model = make(map[uint64]uint64, len(c.model))
			for k, v := range c.model {
				model[k] = v
			}
		}
		if i%50 == 0 || i == 2999 {
			check("op")
		}
	}
	check("final")
}

// TestConcurrentRestoreFromSnapshot has many goroutines restore from one
// snapshot and diverge while the capturing memory keeps storing into shared
// pages. Run under -race this proves snapshot reads, concurrent restores, and
// the producer's COW write path never touch the same memory unsynchronized.
func TestConcurrentRestoreFromSnapshot(t *testing.T) {
	m := NewMemory()
	for p := uint64(0); p < 32; p++ {
		m.Store(pageAddr(p, 0), 8, p+1)
	}
	snap := m.Snapshot()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := NewMemory()
			for iter := 0; iter < 50; iter++ {
				local.CopyFrom(snap)
				for p := uint64(0); p < 32; p++ {
					if got := local.Load(pageAddr(p, 0), 8); got != p+1 {
						t.Errorf("worker %d: mem[page %d] = %#x, want %#x", w, p, got, p+1)
						return
					}
				}
				// Diverge: COW-copy shared pages locally.
				local.Store(pageAddr(uint64(iter)%32, 8), 8, uint64(w))
			}
		}(w)
	}
	// The capturing memory keeps dirtying shared pages concurrently.
	for iter := 0; iter < 400; iter++ {
		m.Store(pageAddr(uint64(iter)%32, 16), 8, uint64(iter))
	}
	wg.Wait()

	for p := uint64(0); p < 32; p++ {
		if got := snap.Load(pageAddr(p, 0), 8); got != p+1 {
			t.Fatalf("snapshot disturbed: mem[page %d] = %#x", p, got)
		}
	}
}
