package isa

import (
	"fmt"
	"math"
)

// MemBus is the data-memory interface the executor reads and writes through.
// The pipeline substitutes a speculative store-buffer overlay; plain
// functional execution uses *Memory directly (see mem.go for the paged
// copy-on-write store behind it).
type MemBus interface {
	// Load reads size bytes (1, 2, 4 or 8) at addr, zero-extended.
	Load(addr uint64, size uint8) uint64
	// Store writes size bytes (1, 2, 4 or 8) of v at addr.
	Store(addr uint64, size uint8, v uint64)
}

// ArchState is the architectural state of the machine: two 32-entry register
// files (integer and floating point), data memory and the program counter.
// PC counts instructions (not bytes).
type ArchState struct {
	R   [NumRegs]uint64 // integer registers; R[0] is hardwired zero
	F   [NumRegs]uint64 // floating-point registers (raw float64 bits)
	Mem MemBus
	PC  uint64
}

// NewArchState returns a reset architectural state with empty memory.
func NewArchState() *ArchState {
	return &ArchState{Mem: NewMemory()}
}

// CloneRegs copies register state (not memory) from src.
func (s *ArchState) CloneRegs(src *ArchState) {
	s.R = src.R
	s.F = src.F
	s.PC = src.PC
}

// Outcome is the architectural effect of executing one instruction: the only
// state updates it may perform. The pipeline's commit stage compares Outcomes
// against a golden execution to detect silent data corruption.
type Outcome struct {
	NextPC   uint64
	Taken    bool // control transfer taken (branches only)
	Branch   bool // signals described a control-transfer instruction
	RegWrite bool
	RegFP    bool // write targets the floating-point file
	Reg      RegID
	Value    uint64
	MemWrite bool
	MemAddr  uint64
	MemWData uint64
	MemWSize uint8 // bytes
	Halt     bool
	Illegal  bool // signals did not describe a well-formed operation
}

// SameArchEffect reports whether two outcomes perform identical architectural
// updates (register write, memory write, and next PC). Pointer receiver and
// argument keep the comparison copy-free on the commit hot path.
func (o *Outcome) SameArchEffect(g *Outcome) bool {
	if o.NextPC != g.NextPC || o.Halt != g.Halt {
		return false
	}
	if o.RegWrite != g.RegWrite {
		return false
	}
	if o.RegWrite && (o.Reg != g.Reg || o.RegFP != g.RegFP || o.Value != g.Value) {
		return false
	}
	if o.MemWrite != g.MemWrite {
		return false
	}
	if o.MemWrite && (o.MemAddr != g.MemAddr || o.MemWData != g.MemWData || o.MemWSize != g.MemWSize) {
		return false
	}
	return true
}

func (o Outcome) String() string {
	s := fmt.Sprintf("next=%d", o.NextPC)
	if o.RegWrite {
		file := "r"
		if o.RegFP {
			file = "f"
		}
		s += fmt.Sprintf(" %s%d=%#x", file, o.Reg, o.Value)
	}
	if o.MemWrite {
		s += fmt.Sprintf(" mem[%#x]=%#x(%dB)", o.MemAddr, o.MemWData, o.MemWSize)
	}
	if o.Halt {
		s += " halt"
	}
	return s
}

// memBytes converts the 3-bit mem_size field to an access width in bytes.
// Values above 4 (possible only under faults) clamp to 8 bytes; 0 means no
// access.
func memBytes(memSize uint8) uint8 {
	switch memSize {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return 2
	case 3:
		return 4
	default:
		return 8
	}
}

func sx16(v uint16) uint64 { return uint64(int64(int16(v))) }

func signExtend(v uint64, bytes uint8) uint64 {
	switch bytes {
	case 1:
		return uint64(int64(int8(v)))
	case 2:
		return uint64(int64(int16(v)))
	case 4:
		return uint64(int64(int32(v)))
	default:
		return v
	}
}

// regInt reads integer register r through the hardwired-zero rule.
func (st *ArchState) regInt(r RegID) uint64 {
	if r == 0 {
		return 0
	}
	return st.R[r&0x1f]
}

// regFP reads floating-point register r.
func (st *ArchState) regFP(r RegID) uint64 { return st.F[r&0x1f] }

// regSrc reads r from the file selected by is_fp.
func (st *ArchState) regSrc(d DecodeSignals, r RegID) uint64 {
	if d.HasFlag(FlagFP) {
		return st.F[r&0x1f]
	}
	return st.regInt(r)
}

// writeDst records the register write-back of v, gated by num_rdst and the
// hardwired zero register.
func (o *Outcome) writeDst(d DecodeSignals, v uint64) {
	if d.NumRdst == 0 {
		return
	}
	o.RegWrite = true
	o.RegFP = d.HasFlag(FlagFP)
	o.Reg = d.Rdst & 0x1f
	o.Value = v
	if !o.RegFP && o.Reg == 0 {
		// Writes to the hardwired zero register are dropped.
		o.RegWrite = false
	}
}

// Exec computes the architectural effect of executing the decode signals d at
// program counter pc against state st. It reads registers and memory but
// performs no writes; apply the returned Outcome with Apply.
//
// Execution is driven by the (possibly fault-corrupted) signal vector, not by
// re-decoding the instruction: operand-file selection follows is_fp, operand
// sourcing follows is_RR/is_disp, memory behaviour follows is_ld/is_st and
// mem_size, control transfer follows is_branch/is_uncond/is_direct, and the
// register write-back is gated by num_rdst. This mirrors how corrupted decode
// signals steer a real pipeline.
func (st *ArchState) Exec(d DecodeSignals, pc uint64) Outcome {
	var o Outcome
	st.ExecInto(&o, d, pc)
	return o
}

// execSpecial is the flag set that steers execution away from the plain-ALU
// default path; testing it once fast-paths the most common instruction kind.
const execSpecial = FlagTrap | FlagBranch | FlagLd | FlagSt

// ExecInto is Exec writing the outcome into *o instead of returning it — the
// pipeline's dispatch loop executes straight into the ROB outcome column,
// avoiding a per-instruction Outcome copy.
func (st *ArchState) ExecInto(o *Outcome, d DecodeSignals, pc uint64) {
	*o = Outcome{NextPC: pc + 1}

	if d.Flags&execSpecial == 0 {
		o.writeDst(d, st.alu(d))
		return
	}

	switch {
	case d.HasFlag(FlagTrap):
		if d.Opcode == OpHalt {
			o.Halt = true
		} else {
			// A trap flag on a non-trap opcode (possible only under a
			// fault, or an invalid opcode) acts as an annulled operation.
			o.Illegal = true
		}
		return

	case d.HasFlag(FlagBranch):
		o.Branch = true
		if d.HasFlag(FlagUncond) {
			o.Taken = true
			if d.HasFlag(FlagDirect) {
				o.NextPC = d.DirectTarget()
			} else {
				o.NextPC = st.regInt(d.Rsrc1)
			}
			// Calls record the return address.
			o.writeDst(d, pc+1)
			if o.RegWrite && d.HasFlag(FlagFP) {
				// A link write can only meaningfully target the integer
				// file; a corrupted is_fp makes it land in the fp file,
				// which is exactly the corruption we want to model.
				o.RegFP = true
			}
			return
		}
		a, b := st.regInt(d.Rsrc1), st.regInt(d.Rsrc2)
		var taken bool
		switch d.Opcode {
		case OpBeq:
			taken = a == b
		case OpBne:
			taken = a != b
		case OpBlt:
			taken = int64(a) < int64(b)
		case OpBge:
			taken = int64(a) >= int64(b)
		case OpBltu:
			taken = a < b
		case OpBgeu:
			taken = a >= b
		default:
			// A corrupted opcode on a branch-flagged instruction: the
			// condition select lines pick nothing; fall through untaken.
			o.Illegal = true
		}
		if taken {
			o.Taken = true
			o.NextPC = pc + 1 + sx16(d.Imm)
		}
		return

	case d.HasFlag(FlagLd):
		addr := st.regInt(d.Rsrc1) + sx16(d.Imm)
		bytes := memBytes(d.MemSize)
		v := st.Mem.Load(addr, bytes)
		if d.HasFlag(FlagSigned) {
			v = signExtend(v, bytes)
		}
		switch d.Opcode {
		case OpLwl:
			old := st.regSrc(d, d.Rdst)
			v = old&0x0000ffff | st.Mem.Load(addr&^3, 4)&0xffff0000
		case OpLwr:
			old := st.regSrc(d, d.Rdst)
			v = old&0xffff0000 | st.Mem.Load(addr&^3, 4)&0x0000ffff
		}
		o.writeDst(d, v)
		return

	case d.HasFlag(FlagSt):
		addr := st.regInt(d.Rsrc1) + sx16(d.Imm)
		o.MemWrite = true
		o.MemAddr = addr
		o.MemWSize = memBytes(d.MemSize)
		o.MemWData = st.regSrc(d, d.Rsrc2)
		if o.MemWSize == 0 {
			// A corrupted mem_size of zero suppresses the access.
			o.MemWrite = false
		}
		return

	default:
		o.writeDst(d, st.alu(d))
		return
	}
}

// alu computes the result of a non-memory, non-branch operation.
func (st *ArchState) alu(d DecodeSignals) uint64 {
	// Operand sourcing: register-register format reads rsrc2; displacement
	// format substitutes the immediate.
	a := st.regInt(d.Rsrc1)
	b := st.regInt(d.Rsrc2)
	if d.HasFlag(FlagDisp) {
		if d.HasFlag(FlagSigned) {
			b = sx16(d.Imm)
		} else {
			b = uint64(d.Imm)
		}
	}

	if d.HasFlag(FlagFP) {
		fa := math.Float64frombits(st.regFP(d.Rsrc1))
		fb := math.Float64frombits(st.regFP(d.Rsrc2))
		switch d.Opcode {
		case OpFAdd:
			return math.Float64bits(fa + fb)
		case OpFSub:
			return math.Float64bits(fa - fb)
		case OpFMul:
			return math.Float64bits(fa * fb)
		case OpFDiv:
			if fb == 0 {
				return math.Float64bits(0)
			}
			return math.Float64bits(fa / fb)
		case OpFNeg:
			return math.Float64bits(-fa)
		case OpFMov:
			return st.regFP(d.Rsrc1)
		case OpFCmp:
			if fa < fb {
				return 1
			}
			return 0
		case OpFCvt:
			return math.Float64bits(float64(int64(a)))
		default:
			// Corrupted opcode with is_fp set: pass operand through.
			return st.regFP(d.Rsrc1)
		}
	}

	switch d.Opcode {
	case OpAdd, OpAddi:
		return a + b
	case OpSub:
		return a - b
	case OpAnd, OpAndi:
		return a & b
	case OpOr, OpOri:
		return a | b
	case OpXor, OpXori:
		return a ^ b
	case OpSll:
		return a << (d.Shamt & 0x3f)
	case OpSrl:
		return a >> (d.Shamt & 0x3f)
	case OpSra:
		return uint64(int64(a) >> (d.Shamt & 0x3f))
	case OpSlt, OpSlti:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case OpSltu:
		if a < b {
			return 1
		}
		return 0
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case OpLui:
		return uint64(d.Imm) << 16
	case OpNop:
		return 0
	default:
		// Corrupted opcode: the ALU op-select lines pick no unit; model as
		// a pass-through of the first operand.
		return a
	}
}

// Apply commits an Outcome to the architectural state.
func (st *ArchState) Apply(o Outcome) { st.ApplyRef(&o) }

// ApplyRef is Apply without the argument copy, for hot paths that already
// hold the outcome in addressable storage.
func (st *ArchState) ApplyRef(o *Outcome) {
	if o.RegWrite {
		if o.RegFP {
			st.F[o.Reg&0x1f] = o.Value
		} else if o.Reg&0x1f != 0 {
			st.R[o.Reg&0x1f] = o.Value
		}
	}
	if o.MemWrite {
		st.Mem.Store(o.MemAddr, o.MemWSize, o.MemWData)
	}
	st.PC = o.NextPC
}

// Step decodes and executes one instruction functionally: the reference
// ("golden") execution path.
func (st *ArchState) Step(inst Instruction) Outcome {
	o := st.Exec(Decode(inst), st.PC)
	st.Apply(o)
	return o
}
