package isa

import "fmt"

// Opcode identifies an operation. Values fit the 8-bit opcode field of the
// decode-signal vector (Table 2). Opcode 0 is reserved as invalid so that a
// zeroed instruction word is never silently meaningful.
type Opcode uint8

// Integer ALU operations.
const (
	OpInvalid Opcode = iota
	OpNop

	OpAdd  // rd = rs1 + rs2
	OpSub  // rd = rs1 - rs2
	OpAnd  // rd = rs1 & rs2
	OpOr   // rd = rs1 | rs2
	OpXor  // rd = rs1 ^ rs2
	OpSll  // rd = rs1 << shamt
	OpSrl  // rd = rs1 >> shamt (logical)
	OpSra  // rd = rs1 >> shamt (arithmetic)
	OpSlt  // rd = (int64(rs1) < int64(rs2)) ? 1 : 0
	OpSltu // rd = (rs1 < rs2) ? 1 : 0
	OpMul  // rd = rs1 * rs2 (multi-cycle)
	OpDiv  // rd = rs1 / rs2 (multi-cycle; 0 when rs2 == 0)

	OpAddi // rd = rs1 + sx(imm)
	OpAndi // rd = rs1 & zx(imm)
	OpOri  // rd = rs1 | zx(imm)
	OpXori // rd = rs1 ^ zx(imm)
	OpSlti // rd = (int64(rs1) < sx(imm)) ? 1 : 0
	OpLui  // rd = imm << 16

	OpLb  // rd = sx8 (mem[rs1 + sx(imm)])
	OpLh  // rd = sx16(mem[rs1 + sx(imm)])
	OpLw  // rd = sx32(mem[rs1 + sx(imm)])
	OpLd  // rd = mem64[rs1 + sx(imm)]
	OpLwl // rd = merge-left  unaligned word load
	OpLwr // rd = merge-right unaligned word load
	OpSb  // mem8 [rs1 + sx(imm)] = rs2
	OpSh  // mem16[rs1 + sx(imm)] = rs2
	OpSw  // mem32[rs1 + sx(imm)] = rs2
	OpSd  // mem64[rs1 + sx(imm)] = rs2

	OpBeq  // if rs1 == rs2 branch to pc+1+sx(imm)
	OpBne  // if rs1 != rs2 branch
	OpBlt  // if int64(rs1) <  int64(rs2) branch
	OpBge  // if int64(rs1) >= int64(rs2) branch
	OpBltu // if rs1 <  rs2 branch (unsigned)
	OpBgeu // if rs1 >= rs2 branch (unsigned)
	OpJ    // jump to 26-bit direct target
	OpJal  // jump and link: rd = pc+1, jump to 26-bit direct target
	OpJr   // jump to rs1 (register-indirect)
	OpJalr // rd = pc+1, jump to rs1

	OpFAdd // fd = fs1 + fs2
	OpFSub // fd = fs1 - fs2
	OpFMul // fd = fs1 * fs2
	OpFDiv // fd = fs1 / fs2 (0 when fs2 == 0)
	OpFNeg // fd = -fs1
	OpFMov // fd = fs1
	OpFCmp // rd(int) = (fs1 < fs2) ? 1 : 0
	OpFCvt // fd = float64(int64(rs1)); int->fp convert
	OpFLd  // fd = mem64[rs1 + sx(imm)] (fp load)
	OpFSd  // mem64[rs1 + sx(imm)] = fs2 (fp store)

	OpHalt // trap: stop the program

	numOpcodes // sentinel; must remain last
)

// LatClass encodes the 2-bit execution-latency field of Table 2.
// The class maps to pipeline execution latencies via LatCycles.
type LatClass uint8

// Latency classes.
const (
	Lat1 LatClass = iota // single cycle (simple ALU, branches)
	Lat2                 // two cycles (loads, stores, shifts-with-merge)
	Lat3                 // three cycles (multiply, fp add/sub)
	Lat4                 // long latency class (divide, fp mul/div)
)

// LatCycles converts a latency class to execution cycles.
func LatCycles(c LatClass) int {
	switch c {
	case Lat1:
		return 1
	case Lat2:
		return 2
	case Lat3:
		return 3
	default:
		return 6
	}
}

// opInfo is the static decode metadata for one opcode: exactly the
// information a real decoder PLA would produce.
type opInfo struct {
	name    string
	flags   uint16
	lat     LatClass
	numRsrc uint8 // 0-2 source register operands
	numRdst uint8 // 0-1 destination register operands
	memSize uint8 // log2(bytes)+1 for memory ops, 0 otherwise (3-bit field)
}

var opTable = [numOpcodes]opInfo{
	OpInvalid: {name: "invalid", flags: FlagTrap},
	OpNop:     {name: "nop", flags: FlagInt},

	OpAdd:  {name: "add", flags: FlagInt | FlagSigned | FlagRR, lat: Lat1, numRsrc: 2, numRdst: 1},
	OpSub:  {name: "sub", flags: FlagInt | FlagSigned | FlagRR, lat: Lat1, numRsrc: 2, numRdst: 1},
	OpAnd:  {name: "and", flags: FlagInt | FlagRR, lat: Lat1, numRsrc: 2, numRdst: 1},
	OpOr:   {name: "or", flags: FlagInt | FlagRR, lat: Lat1, numRsrc: 2, numRdst: 1},
	OpXor:  {name: "xor", flags: FlagInt | FlagRR, lat: Lat1, numRsrc: 2, numRdst: 1},
	OpSll:  {name: "sll", flags: FlagInt | FlagRR, lat: Lat1, numRsrc: 1, numRdst: 1},
	OpSrl:  {name: "srl", flags: FlagInt | FlagRR, lat: Lat1, numRsrc: 1, numRdst: 1},
	OpSra:  {name: "sra", flags: FlagInt | FlagSigned | FlagRR, lat: Lat1, numRsrc: 1, numRdst: 1},
	OpSlt:  {name: "slt", flags: FlagInt | FlagSigned | FlagRR, lat: Lat1, numRsrc: 2, numRdst: 1},
	OpSltu: {name: "sltu", flags: FlagInt | FlagRR, lat: Lat1, numRsrc: 2, numRdst: 1},
	OpMul:  {name: "mul", flags: FlagInt | FlagSigned | FlagRR, lat: Lat3, numRsrc: 2, numRdst: 1},
	OpDiv:  {name: "div", flags: FlagInt | FlagSigned | FlagRR, lat: Lat4, numRsrc: 2, numRdst: 1},

	OpAddi: {name: "addi", flags: FlagInt | FlagSigned | FlagDisp, lat: Lat1, numRsrc: 1, numRdst: 1},
	OpAndi: {name: "andi", flags: FlagInt | FlagDisp, lat: Lat1, numRsrc: 1, numRdst: 1},
	OpOri:  {name: "ori", flags: FlagInt | FlagDisp, lat: Lat1, numRsrc: 1, numRdst: 1},
	OpXori: {name: "xori", flags: FlagInt | FlagDisp, lat: Lat1, numRsrc: 1, numRdst: 1},
	OpSlti: {name: "slti", flags: FlagInt | FlagSigned | FlagDisp, lat: Lat1, numRsrc: 1, numRdst: 1},
	OpLui:  {name: "lui", flags: FlagInt | FlagDisp, lat: Lat1, numRsrc: 0, numRdst: 1},

	OpLb:  {name: "lb", flags: FlagInt | FlagSigned | FlagLd | FlagDisp, lat: Lat2, numRsrc: 1, numRdst: 1, memSize: 1},
	OpLh:  {name: "lh", flags: FlagInt | FlagSigned | FlagLd | FlagDisp, lat: Lat2, numRsrc: 1, numRdst: 1, memSize: 2},
	OpLw:  {name: "lw", flags: FlagInt | FlagSigned | FlagLd | FlagDisp, lat: Lat2, numRsrc: 1, numRdst: 1, memSize: 3},
	OpLd:  {name: "ld", flags: FlagInt | FlagLd | FlagDisp, lat: Lat2, numRsrc: 1, numRdst: 1, memSize: 4},
	OpLwl: {name: "lwl", flags: FlagInt | FlagLd | FlagDisp | FlagMemL, lat: Lat2, numRsrc: 2, numRdst: 1, memSize: 3},
	OpLwr: {name: "lwr", flags: FlagInt | FlagLd | FlagDisp, lat: Lat2, numRsrc: 2, numRdst: 1, memSize: 3},
	OpSb:  {name: "sb", flags: FlagInt | FlagSt | FlagDisp, lat: Lat2, numRsrc: 2, memSize: 1},
	OpSh:  {name: "sh", flags: FlagInt | FlagSt | FlagDisp, lat: Lat2, numRsrc: 2, memSize: 2},
	OpSw:  {name: "sw", flags: FlagInt | FlagSt | FlagDisp, lat: Lat2, numRsrc: 2, memSize: 3},
	OpSd:  {name: "sd", flags: FlagInt | FlagSt | FlagDisp, lat: Lat2, numRsrc: 2, memSize: 4},

	OpBeq:  {name: "beq", flags: FlagInt | FlagBranch | FlagDisp | FlagDirect, lat: Lat1, numRsrc: 2},
	OpBne:  {name: "bne", flags: FlagInt | FlagBranch | FlagDisp | FlagDirect, lat: Lat1, numRsrc: 2},
	OpBlt:  {name: "blt", flags: FlagInt | FlagSigned | FlagBranch | FlagDisp | FlagDirect, lat: Lat1, numRsrc: 2},
	OpBge:  {name: "bge", flags: FlagInt | FlagSigned | FlagBranch | FlagDisp | FlagDirect, lat: Lat1, numRsrc: 2},
	OpBltu: {name: "bltu", flags: FlagInt | FlagBranch | FlagDisp | FlagDirect, lat: Lat1, numRsrc: 2},
	OpBgeu: {name: "bgeu", flags: FlagInt | FlagBranch | FlagDisp | FlagDirect, lat: Lat1, numRsrc: 2},
	OpJ:    {name: "j", flags: FlagInt | FlagBranch | FlagUncond | FlagDirect, lat: Lat1},
	OpJal:  {name: "jal", flags: FlagInt | FlagBranch | FlagUncond | FlagDirect, lat: Lat1, numRdst: 1},
	OpJr:   {name: "jr", flags: FlagInt | FlagBranch | FlagUncond, lat: Lat1, numRsrc: 1},
	OpJalr: {name: "jalr", flags: FlagInt | FlagBranch | FlagUncond, lat: Lat1, numRsrc: 1, numRdst: 1},

	OpFAdd: {name: "fadd", flags: FlagFP | FlagSigned | FlagRR, lat: Lat3, numRsrc: 2, numRdst: 1},
	OpFSub: {name: "fsub", flags: FlagFP | FlagSigned | FlagRR, lat: Lat3, numRsrc: 2, numRdst: 1},
	OpFMul: {name: "fmul", flags: FlagFP | FlagSigned | FlagRR, lat: Lat4, numRsrc: 2, numRdst: 1},
	OpFDiv: {name: "fdiv", flags: FlagFP | FlagSigned | FlagRR, lat: Lat4, numRsrc: 2, numRdst: 1},
	OpFNeg: {name: "fneg", flags: FlagFP | FlagSigned | FlagRR, lat: Lat1, numRsrc: 1, numRdst: 1},
	OpFMov: {name: "fmov", flags: FlagFP | FlagRR, lat: Lat1, numRsrc: 1, numRdst: 1},
	OpFCmp: {name: "fcmp", flags: FlagFP | FlagSigned | FlagRR, lat: Lat3, numRsrc: 2, numRdst: 1},
	OpFCvt: {name: "fcvt", flags: FlagFP | FlagSigned | FlagRR, lat: Lat3, numRsrc: 1, numRdst: 1},
	OpFLd:  {name: "fld", flags: FlagFP | FlagLd | FlagDisp, lat: Lat2, numRsrc: 1, numRdst: 1, memSize: 4},
	OpFSd:  {name: "fsd", flags: FlagFP | FlagSt | FlagDisp, lat: Lat2, numRsrc: 2, memSize: 4},

	OpHalt: {name: "halt", flags: FlagTrap},
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool {
	return op > OpInvalid && op < numOpcodes
}

// String returns the assembler mnemonic for op.
func (op Opcode) String() string {
	if op < numOpcodes && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// IsBranch reports whether op is a control-transfer instruction (which
// terminates a trace per the paper's trace-formation rule).
func (op Opcode) IsBranch() bool {
	return op.Valid() && opTable[op].flags&FlagBranch != 0
}

// IsMem reports whether op accesses memory.
func (op Opcode) IsMem() bool {
	return op.Valid() && opTable[op].flags&(FlagLd|FlagSt) != 0
}

// IsFP reports whether op operates on the floating-point register file.
func (op Opcode) IsFP() bool {
	return op.Valid() && opTable[op].flags&FlagFP != 0
}
