package isa

import (
	"testing"
	"testing/quick"
)

// randomSignals builds an arbitrary but field-valid signal vector from quick
// inputs.
func randomSignals(op, flags, shamt, r1, r2, rd, lat uint8, imm uint16, nrs, nrd, ms uint8) DecodeSignals {
	return DecodeSignals{
		Opcode:  Opcode(op),
		Flags:   uint16(flags) | uint16(shamt)<<8&FlagsMask,
		Shamt:   shamt & 0x1f,
		Rsrc1:   RegID(r1 & 0x1f),
		Rsrc2:   RegID(r2 & 0x1f),
		Rdst:    RegID(rd & 0x1f),
		Lat:     LatClass(lat & 0x3),
		Imm:     imm,
		NumRsrc: nrs & 0x3,
		NumRdst: nrd & 0x1,
		MemSize: ms & 0x7,
	}
}

func TestSignalsPackUnpackRoundTrip(t *testing.T) {
	if err := quick.Check(func(op, flags, shamt, r1, r2, rd, lat uint8, imm uint16, nrs, nrd, ms uint8) bool {
		d := randomSignals(op, flags, shamt, r1, r2, rd, lat, imm, nrs, nrd, ms)
		return UnpackSignals(d.Pack()) == d
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSignalsPackUsesAll64Bits(t *testing.T) {
	// Every one of the 64 bit positions must be reachable: flipping any
	// packed bit must change the unpacked signal vector.
	base := Decode(Instruction{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3})
	for pos := 0; pos < SignalBits; pos++ {
		flipped := base.FlipBit(pos)
		if flipped == base {
			t.Errorf("bit %d (%s) has no effect on signals", pos, SignalField(pos))
		}
		if flipped.Pack() != base.Pack()^(1<<uint(pos)) {
			t.Errorf("bit %d: pack mismatch after flip", pos)
		}
	}
}

func TestFlipBitIsInvolution(t *testing.T) {
	if err := quick.Check(func(op, flags, shamt, r1, r2, rd, lat uint8, imm uint16, nrs, nrd, ms uint8, pos uint8) bool {
		d := randomSignals(op, flags, shamt, r1, r2, rd, lat, imm, nrs, nrd, ms)
		p := int(pos % SignalBits)
		return d.FlipBit(p).FlipBit(p) == d
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSignalFieldLayoutMatchesTable2(t *testing.T) {
	// Field widths from the paper's Table 2, in order.
	wants := []struct {
		field string
		width int
	}{
		{"opcode", 8},
		{"flags", 12},
		{"shamt", 5},
		{"rsrc1", 5},
		{"rsrc2", 5},
		{"rdst", 5},
		{"lat", 2},
		{"imm", 16},
		{"num_rsrc", 2},
		{"num_rdst", 1},
		{"mem_size", 3},
	}
	pos := 0
	for _, w := range wants {
		for i := 0; i < w.width; i++ {
			got := SignalField(pos)
			if w.field == "flags" {
				// Flag bits report their individual names.
				if got != FlagName(pos-8) {
					t.Errorf("bit %d: field %q, want flag %q", pos, got, FlagName(pos-8))
				}
			} else if got != w.field {
				t.Errorf("bit %d: field %q, want %q", pos, got, w.field)
			}
			pos++
		}
	}
	if pos != SignalBits {
		t.Fatalf("total width %d, want %d", pos, SignalBits)
	}
	if SignalField(-1) != "invalid" || SignalField(64) != "invalid" {
		t.Error("out-of-range positions should report invalid")
	}
}

func TestFlagNames(t *testing.T) {
	// The twelve decoded control flags of Table 2.
	want := []string{"is_int", "is_fp", "is_signed", "is_branch", "is_uncond",
		"is_ld", "is_st", "mem_left", "is_RR", "is_disp", "is_direct", "is_trap"}
	for i, w := range want {
		if got := FlagName(i); got != w {
			t.Errorf("flag %d = %q, want %q", i, got, w)
		}
	}
	if FlagName(12) == "" || FlagName(-1) == "" {
		t.Error("out-of-range flag positions should still return a name")
	}
}

func TestDecodeBranchFlags(t *testing.T) {
	cases := []struct {
		op         Opcode
		branch     bool
		uncond     bool
		direct     bool
		terminates bool
	}{
		{OpAdd, false, false, false, false},
		{OpBeq, true, false, true, true},
		{OpJ, true, true, true, true},
		{OpJal, true, true, true, true},
		{OpJr, true, true, false, true},
		{OpLw, false, false, false, false},
	}
	for _, c := range cases {
		d := Decode(Instruction{Op: c.op})
		if d.HasFlag(FlagBranch) != c.branch {
			t.Errorf("%s: branch flag = %v", c.op, d.HasFlag(FlagBranch))
		}
		if d.HasFlag(FlagUncond) != c.uncond {
			t.Errorf("%s: uncond flag = %v", c.op, d.HasFlag(FlagUncond))
		}
		if d.HasFlag(FlagDirect) != c.direct {
			t.Errorf("%s: direct flag = %v", c.op, d.HasFlag(FlagDirect))
		}
		if d.IsBranching() != c.terminates {
			t.Errorf("%s: IsBranching = %v", c.op, d.IsBranching())
		}
	}
}

func TestDecodeDirectTargetRoundTrip(t *testing.T) {
	if err := quick.Check(func(target uint32) bool {
		target &= 1<<26 - 1
		d := Decode(Instruction{Op: OpJ, Target: target})
		return d.DirectTarget() == uint64(target)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeOperandCounts(t *testing.T) {
	cases := []struct {
		op       Opcode
		nrs, nrd uint8
	}{
		{OpAdd, 2, 1},
		{OpAddi, 1, 1},
		{OpLw, 1, 1},
		{OpSw, 2, 0},
		{OpBeq, 2, 0},
		{OpJ, 0, 0},
		{OpJal, 0, 1},
		{OpJr, 1, 0},
		{OpLui, 0, 1},
		{OpFAdd, 2, 1},
		{OpHalt, 0, 0},
	}
	for _, c := range cases {
		d := Decode(Instruction{Op: c.op})
		if d.NumRsrc != c.nrs || d.NumRdst != c.nrd {
			t.Errorf("%s: num_rsrc=%d num_rdst=%d, want %d/%d", c.op, d.NumRsrc, d.NumRdst, c.nrs, c.nrd)
		}
	}
}

func TestDecodeMemSize(t *testing.T) {
	cases := []struct {
		op   Opcode
		size uint8 // encoded field
	}{
		{OpLb, 1}, {OpLh, 2}, {OpLw, 3}, {OpLd, 4},
		{OpSb, 1}, {OpSh, 2}, {OpSw, 3}, {OpSd, 4},
		{OpAdd, 0}, {OpFLd, 4},
	}
	for _, c := range cases {
		if d := Decode(Instruction{Op: c.op}); d.MemSize != c.size {
			t.Errorf("%s: mem_size = %d, want %d", c.op, d.MemSize, c.size)
		}
	}
}

func TestOpcodeStringAndValidity(t *testing.T) {
	if OpInvalid.Valid() {
		t.Error("OpInvalid must not be valid")
	}
	if !OpAdd.Valid() || !OpHalt.Valid() {
		t.Error("defined opcodes must be valid")
	}
	if Opcode(200).Valid() {
		t.Error("opcode 200 must be invalid")
	}
	if OpAdd.String() != "add" || OpFMul.String() != "fmul" {
		t.Errorf("mnemonics wrong: %s %s", OpAdd, OpFMul)
	}
	if Opcode(200).String() == "" {
		t.Error("invalid opcodes still need a rendering")
	}
}

func TestLatCycles(t *testing.T) {
	if LatCycles(Lat1) != 1 || LatCycles(Lat2) != 2 || LatCycles(Lat3) != 3 {
		t.Error("short latency classes wrong")
	}
	if LatCycles(Lat4) <= LatCycles(Lat3) {
		t.Error("Lat4 must be the longest class")
	}
}

func TestDecodeLatencyClasses(t *testing.T) {
	if d := Decode(Instruction{Op: OpAdd}); d.Lat != Lat1 {
		t.Errorf("add lat = %d", d.Lat)
	}
	if d := Decode(Instruction{Op: OpLw}); d.Lat != Lat2 {
		t.Errorf("lw lat = %d", d.Lat)
	}
	if d := Decode(Instruction{Op: OpMul}); d.Lat != Lat3 {
		t.Errorf("mul lat = %d", d.Lat)
	}
	if d := Decode(Instruction{Op: OpDiv}); d.Lat != Lat4 {
		t.Errorf("div lat = %d", d.Lat)
	}
}
