package isa

import (
	"strings"
	"testing"
)

// allOpcodes enumerates every defined opcode.
func allOpcodes() []Opcode {
	var ops []Opcode
	for op := OpNop; op < numOpcodes; op++ {
		ops = append(ops, op)
	}
	return ops
}

// Every opcode must decode to a well-formed signal vector: flags consistent
// with its class, operand counts within field widths, and a stable packed
// round trip.
func TestSweepDecodeAllOpcodes(t *testing.T) {
	for _, op := range allOpcodes() {
		inst := Instruction{Op: op, Rd: 1, Rs1: 2, Rs2: 3, Shamt: 4, Imm: 5, Target: 6}
		d := Decode(inst)
		if d.Opcode != op {
			t.Errorf("%s: decoded opcode %v", op, d.Opcode)
		}
		if UnpackSignals(d.Pack()) != d {
			t.Errorf("%s: pack round trip failed", op)
		}
		if d.NumRsrc > 2 || d.NumRdst > 1 || d.MemSize > 4 {
			t.Errorf("%s: operand counts out of range: %+v", op, d)
		}
		if op.IsBranch() != d.HasFlag(FlagBranch) {
			t.Errorf("%s: IsBranch disagrees with flag", op)
		}
		if op.IsMem() != d.HasFlag(FlagLd|FlagSt) {
			t.Errorf("%s: IsMem disagrees with flags", op)
		}
		if op.IsFP() != d.HasFlag(FlagFP) {
			t.Errorf("%s: IsFP disagrees with flag", op)
		}
		if d.HasFlag(FlagLd) && d.HasFlag(FlagSt) {
			t.Errorf("%s: both ld and st set", op)
		}
		if (d.HasFlag(FlagLd) || d.HasFlag(FlagSt)) && d.MemSize == 0 {
			t.Errorf("%s: memory op with mem_size 0", op)
		}
		if !d.HasFlag(FlagLd) && !d.HasFlag(FlagSt) && d.MemSize != 0 {
			t.Errorf("%s: non-memory op with mem_size %d", op, d.MemSize)
		}
	}
}

// Every opcode must execute without panicking and produce a bounded
// architectural effect from any of a few register states.
func TestSweepExecAllOpcodes(t *testing.T) {
	states := []func() *ArchState{
		NewArchState,
		func() *ArchState {
			st := NewArchState()
			for i := 1; i < NumRegs; i++ {
				st.R[i] = uint64(i) * 0x0101010101010101
				st.F[i] = uint64(i) * 0x3fb999999999999a
			}
			return st
		},
	}
	for _, op := range allOpcodes() {
		for si, mk := range states {
			st := mk()
			inst := Instruction{Op: op, Rd: 3, Rs1: 1, Rs2: 2, Shamt: 5, Imm: 40, Target: 2}
			o := st.Exec(Decode(inst), 10)
			if o.NextPC == 10 && !o.Halt {
				t.Errorf("%s state %d: nextPC did not advance", op, si)
			}
			if o.RegWrite && o.Reg >= NumRegs {
				t.Errorf("%s state %d: register out of range", op, si)
			}
			if o.MemWrite && o.MemWSize == 0 {
				t.Errorf("%s state %d: zero-size store emitted", op, si)
			}
			st.Apply(o)
			if st.R[0] != 0 {
				t.Errorf("%s state %d: r0 clobbered", op, si)
			}
		}
	}
}

// Every opcode's mnemonic is unique and renders a parseable-looking string.
func TestSweepMnemonicsUnique(t *testing.T) {
	seen := make(map[string]Opcode)
	for _, op := range allOpcodes() {
		name := op.String()
		if name == "" || strings.Contains(name, " ") {
			t.Errorf("bad mnemonic %q", name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("mnemonic %q shared by %d and %d", name, prev, op)
		}
		seen[name] = op
	}
}

// Instruction.String must render every opcode class without panicking.
func TestSweepInstructionString(t *testing.T) {
	for _, op := range allOpcodes() {
		inst := Instruction{Op: op, Rd: 1, Rs1: 2, Rs2: 3, Imm: 4, Target: 5}
		if inst.String() == "" {
			t.Errorf("%v renders empty", op)
		}
	}
}

// Single-bit decode-signal faults never crash execution — the whole fault
// campaign relies on this.
func TestSweepFaultedExecNeverPanics(t *testing.T) {
	st := NewArchState()
	for i := 1; i < NumRegs; i++ {
		st.R[i] = uint64(i) << 10
	}
	ops := []Opcode{OpAdd, OpAddi, OpLw, OpSd, OpBne, OpJ, OpJr, OpFMul, OpFLd, OpMul, OpHalt}
	for _, op := range ops {
		base := Decode(Instruction{Op: op, Rd: 3, Rs1: 1, Rs2: 2, Imm: 16, Target: 1})
		for bit := 0; bit < SignalBits; bit++ {
			d := base.FlipBit(bit)
			o := st.Exec(d, 100)
			st.Apply(o)
			st.R[0] = 0 // keep the invariant for the next iteration
		}
	}
}
