package isa

import "fmt"

// DecodeSignals is the decode-signal vector of the paper's Table 2. It is
// the exact set of signals the decode unit produces for one instruction, and
// the unit of both signature generation and fault injection.
//
// Field widths (total 64 bits):
//
//	opcode   8   instruction opcode
//	flags    12  decoded control flags
//	shamt    5   shift amount
//	rsrc1    5   source register operand
//	rsrc2    5   source register operand
//	rdst     5   destination register operand
//	lat      2   execution latency
//	imm      16  immediate
//	num_rsrc 2   number of source operands
//	num_rdst 1   number of destination operands
//	mem_size 3   size of memory word
type DecodeSignals struct {
	Opcode  Opcode
	Flags   uint16
	Shamt   uint8
	Rsrc1   RegID
	Rsrc2   RegID
	Rdst    RegID
	Lat     LatClass
	Imm     uint16
	NumRsrc uint8
	NumRdst uint8
	MemSize uint8
}

// SignalBits is the total width of the decode-signal vector (Table 2).
const SignalBits = 64

// Bit layout of the packed 64-bit signal word, low bits first. The layout
// follows Table 2's row order.
const (
	bitOpcode  = 0  // width 8
	bitFlags   = 8  // width 12
	bitShamt   = 20 // width 5
	bitRsrc1   = 25 // width 5
	bitRsrc2   = 30 // width 5
	bitRdst    = 35 // width 5
	bitLat     = 40 // width 2
	bitImm     = 42 // width 16
	bitNumRsrc = 58 // width 2
	bitNumRdst = 60 // width 1
	bitMemSize = 61 // width 3
)

// Pack serializes the signal vector into its architected 64-bit word. The
// packed form is what signature generation XOR-combines and what fault
// injection flips bits of.
func (d DecodeSignals) Pack() uint64 {
	var w uint64
	w |= uint64(d.Opcode) << bitOpcode
	w |= uint64(d.Flags&FlagsMask) << bitFlags
	w |= uint64(d.Shamt&0x1f) << bitShamt
	w |= uint64(d.Rsrc1&0x1f) << bitRsrc1
	w |= uint64(d.Rsrc2&0x1f) << bitRsrc2
	w |= uint64(d.Rdst&0x1f) << bitRdst
	w |= uint64(d.Lat&0x3) << bitLat
	w |= uint64(d.Imm) << bitImm
	w |= uint64(d.NumRsrc&0x3) << bitNumRsrc
	w |= uint64(d.NumRdst&0x1) << bitNumRdst
	w |= uint64(d.MemSize&0x7) << bitMemSize
	return w
}

// UnpackSignals deserializes a packed 64-bit signal word.
func UnpackSignals(w uint64) DecodeSignals {
	return DecodeSignals{
		Opcode:  Opcode(w >> bitOpcode),
		Flags:   uint16(w>>bitFlags) & FlagsMask,
		Shamt:   uint8(w>>bitShamt) & 0x1f,
		Rsrc1:   RegID(w>>bitRsrc1) & 0x1f,
		Rsrc2:   RegID(w>>bitRsrc2) & 0x1f,
		Rdst:    RegID(w>>bitRdst) & 0x1f,
		Lat:     LatClass(w>>bitLat) & 0x3,
		Imm:     uint16(w >> bitImm),
		NumRsrc: uint8(w>>bitNumRsrc) & 0x3,
		NumRdst: uint8(w>>bitNumRdst) & 0x1,
		MemSize: uint8(w>>bitMemSize) & 0x7,
	}
}

// FlipBit returns a copy of d with the signal bit at position pos (0-63 in
// the packed layout) inverted — the paper's single-event-upset fault model on
// decode signals.
func (d DecodeSignals) FlipBit(pos int) DecodeSignals {
	return UnpackSignals(d.Pack() ^ (1 << uint(pos&63)))
}

// SignalField describes which Table 2 field a packed bit position belongs
// to, for fault-injection reporting.
func SignalField(pos int) string {
	switch {
	case pos < 0 || pos >= SignalBits:
		return "invalid"
	case pos < bitFlags:
		return "opcode"
	case pos < bitShamt:
		return FlagName(pos - bitFlags)
	case pos < bitRsrc1:
		return "shamt"
	case pos < bitRsrc2:
		return "rsrc1"
	case pos < bitRdst:
		return "rsrc2"
	case pos < bitLat:
		return "rdst"
	case pos < bitImm:
		return "lat"
	case pos < bitNumRsrc:
		return "imm"
	case pos < bitNumRdst:
		return "num_rsrc"
	case pos < bitMemSize:
		return "num_rdst"
	default:
		return "mem_size"
	}
}

// HasFlag reports whether the given control flag is set.
func (d DecodeSignals) HasFlag(f uint16) bool { return d.Flags&f != 0 }

// WordHasFlag reports whether control flag f is set in a packed signal word,
// without unpacking the full vector. It is the decode-memoization fast path:
// hot loops that hold precomputed packed words (program.DecodeTable) test
// flags directly on the word.
func WordHasFlag(w uint64, f uint16) bool {
	return (w>>bitFlags)&uint64(f&FlagsMask) != 0
}

// WordIsBranching reports whether a packed signal word describes a
// control-transfer instruction (the trace-terminating condition).
func WordIsBranching(w uint64) bool { return WordHasFlag(w, FlagBranch) }

// WordOpcode extracts the opcode field from a packed signal word.
func WordOpcode(w uint64) Opcode { return Opcode(w >> bitOpcode) }

// IsBranching reports whether the signals describe a control-transfer
// instruction, i.e. whether this instruction terminates a trace.
func (d DecodeSignals) IsBranching() bool { return d.HasFlag(FlagBranch) }

func (d DecodeSignals) String() string {
	return fmt.Sprintf("%s r%d,r%d->r%d imm=%#x flags=%#03x lat=%d",
		d.Opcode, d.Rsrc1, d.Rsrc2, d.Rdst, d.Imm, d.Flags, d.Lat)
}
