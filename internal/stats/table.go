package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables for the cmd tools and
// EXPERIMENTS.md. Columns are sized to their widest cell.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row. Cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with a header rule.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a named sequence of (x, y) points, the unit of data behind the
// paper's line charts (Figures 1-4) and bar charts (Figures 6-9).
type Series struct {
	Name   string
	Points []Point
}

// Point is a single (x, y) sample.
type Point struct {
	X float64
	Y float64
}

// RenderSeries formats a set of series as a compact aligned listing,
// one x-value per row and one column per series.
func RenderSeries(xLabel string, series []Series, xFormat string) string {
	header := []string{xLabel}
	for _, s := range series {
		header = append(header, s.Name)
	}
	t := NewTable(header...)
	if len(series) == 0 {
		return t.String()
	}
	n := len(series[0].Points)
	for i := 0; i < n; i++ {
		cells := make([]interface{}, 0, len(series)+1)
		cells = append(cells, fmt.Sprintf(xFormat, series[0].Points[i].X))
		for _, s := range series {
			if i < len(s.Points) {
				cells = append(cells, fmt.Sprintf("%.1f", s.Points[i].Y))
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
