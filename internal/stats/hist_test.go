package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 {
		t.Fatal("empty histogram should have zero total")
	}
	h.Add(5)
	h.AddWeighted(10, 3)
	if got := h.Total(); got != 4 {
		t.Fatalf("total = %v, want 4", got)
	}
	if got := h.Weight(10); got != 3 {
		t.Fatalf("weight(10) = %v, want 3", got)
	}
	if got := h.Weight(999); got != 0 {
		t.Fatalf("weight(999) = %v, want 0", got)
	}
}

func TestHistogramCumulativeBelow(t *testing.T) {
	h := NewHistogram()
	h.AddWeighted(100, 1)
	h.AddWeighted(200, 1)
	h.AddWeighted(300, 2)
	cases := []struct {
		v    int64
		want float64
	}{
		{50, 0}, {100, 0}, {101, 0.25}, {201, 0.5}, {301, 1.0},
	}
	for _, c := range cases {
		if got := h.CumulativeBelow(c.v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CumulativeBelow(%d) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestHistogramCumulativeEmptyIsZero(t *testing.T) {
	h := NewHistogram()
	if got := h.CumulativeBelow(100); got != 0 {
		t.Fatalf("empty histogram cumulative = %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.AddWeighted(250, 50) // < 500
	h.AddWeighted(750, 30) // < 1000
	h.AddWeighted(9999, 20)
	pts := h.Buckets(500, 10000)
	if len(pts) != 20 {
		t.Fatalf("got %d buckets, want 20", len(pts))
	}
	if pts[0].UpperEdge != 500 || math.Abs(pts[0].CumulativePct-50) > 1e-9 {
		t.Fatalf("first bucket = %+v", pts[0])
	}
	if math.Abs(pts[1].CumulativePct-80) > 1e-9 {
		t.Fatalf("second bucket pct = %v, want 80", pts[1].CumulativePct)
	}
	if math.Abs(pts[19].CumulativePct-100) > 1e-9 {
		t.Fatalf("last bucket pct = %v, want 100", pts[19].CumulativePct)
	}
}

func TestHistogramBucketsMonotone(t *testing.T) {
	if err := quick.Check(func(vals []uint16) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Add(int64(v))
		}
		pts := h.Buckets(500, 65536+500)
		prev := -1.0
		for _, p := range pts {
			if p.CumulativePct < prev-1e-9 {
				return false
			}
			prev = p.CumulativePct
		}
		return len(vals) == 0 || math.Abs(prev-100) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketsZeroWidth(t *testing.T) {
	h := NewHistogram()
	h.Add(1)
	if pts := h.Buckets(0, 1000); pts != nil {
		t.Fatal("zero width should return nil")
	}
}

func TestHistogramValuesSorted(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{9, 3, 7, 1, 3} {
		h.Add(v)
	}
	vs := h.Values()
	want := []int64{1, 3, 7, 9}
	if len(vs) != len(want) {
		t.Fatalf("values = %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("values = %v, want %v", vs, want)
		}
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("a", 2)
	c.Inc("b", 3)
	c.Inc("a", 5)
	if got := c.Get("a"); got != 7 {
		t.Fatalf("a = %d", got)
	}
	if got := c.Total(); got != 10 {
		t.Fatalf("total = %d", got)
	}
	if got := c.Pct("b"); math.Abs(got-30) > 1e-9 {
		t.Fatalf("pct(b) = %v", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestCounterEmptyPct(t *testing.T) {
	c := NewCounter()
	if got := c.Pct("missing"); got != 0 {
		t.Fatalf("pct on empty counter = %v", got)
	}
}

func TestMeanMax(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Max(nil); got != 0 {
		t.Fatalf("Max(nil) = %v", got)
	}
	if got := Max([]float64{1, 5, 3}); got != 5 {
		t.Fatalf("Max = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("x", 1)
	tb.AddRow("longer-name", 3.14159)
	out := tb.String()
	if out == "" {
		t.Fatal("empty render")
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// Float cells render with two decimals.
	if want := "3.14"; !contains(out, want) {
		t.Fatalf("rendered table missing %q:\n%s", want, out)
	}
}

func TestRenderSeries(t *testing.T) {
	s := []Series{
		{Name: "a", Points: []Point{{X: 1, Y: 10}, {X: 2, Y: 20}}},
		{Name: "b", Points: []Point{{X: 1, Y: 30}}},
	}
	out := RenderSeries("x", s, "%.0f")
	if !contains(out, "a") || !contains(out, "b") || !contains(out, "30.0") {
		t.Fatalf("bad render:\n%s", out)
	}
	// Missing point renders as "-".
	if !contains(out, "-") {
		t.Fatalf("missing point should render as dash:\n%s", out)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
