// Package stats provides deterministic randomness, histogram and CDF
// utilities, and plain-text table rendering shared by the ITR simulator,
// workload synthesizer, fault-injection campaigns and report generators.
//
// Everything in this package is deterministic: random sequences are fully
// determined by an explicit 64-bit seed so that every experiment in the
// repository regenerates identical numbers.
package stats

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64 (Steele, Lea, Flood 2014). It is not cryptographically secure;
// it exists so simulations are reproducible without importing math/rand
// state that may change across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical sequences.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value in the sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent generator from this one. The derived stream is
// decorrelated from the parent by mixing in a stream label.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0xd6e8feb86659fd93))
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
