package stats

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n int) bool {
		if n <= 0 {
			n = 1
		}
		n = n%1000 + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnDegenerate(t *testing.T) {
	r := NewRNG(7)
	if got := r.Intn(0); got != 0 {
		t.Fatalf("Intn(0) = %d, want 0", got)
	}
	if got := r.Intn(-5); got != 0 {
		t.Fatalf("Intn(-5) = %d, want 0", got)
	}
	if got := r.Uint64n(0); got != 0 {
		t.Fatalf("Uint64n(0) = %d, want 0", got)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(123)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(55)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) hit fraction %v", frac)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(10)
	f1 := parent.Fork(1)
	f2 := parent.Fork(1) // second fork draws a different parent value
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams should differ")
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(77)
	p := r.Perm(100)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatalf("permutation has %d distinct elements, want 100", len(seen))
	}
}

func TestRNGPermIsShuffled(t *testing.T) {
	r := NewRNG(78)
	p := r.Perm(100)
	inPlace := 0
	for i, v := range p {
		if i == v {
			inPlace++
		}
	}
	if inPlace > 20 {
		t.Fatalf("permutation looks unshuffled: %d fixed points", inPlace)
	}
}

func TestRNGUniformity(t *testing.T) {
	// Chi-squared-ish sanity check over 16 buckets.
	r := NewRNG(2024)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Intn(16)]++
	}
	for i, c := range buckets {
		if c < n/16-n/160 || c > n/16+n/160 {
			t.Fatalf("bucket %d count %d deviates >10%% from expectation %d", i, c, n/16)
		}
	}
}
