package stats

import (
	"fmt"
	"sort"
)

// Histogram counts occurrences of integer-valued samples with an optional
// per-sample weight. It is used for repeat-distance distributions
// (Figures 3-4 of the paper) where the weight of a trace repetition is the
// number of dynamic instructions it contributes.
type Histogram struct {
	counts map[int64]float64
	total  float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int64]float64)}
}

// Add records one sample with weight 1.
func (h *Histogram) Add(v int64) { h.AddWeighted(v, 1) }

// AddWeighted records one sample with the given weight.
func (h *Histogram) AddWeighted(v int64, w float64) {
	h.counts[v] += w
	h.total += w
}

// Total returns the sum of all weights recorded.
func (h *Histogram) Total() float64 { return h.total }

// Weight returns the weight recorded at exactly v.
func (h *Histogram) Weight(v int64) float64 { return h.counts[v] }

// CumulativeBelow returns the fraction of total weight with sample value < v.
// It returns 0 for an empty histogram.
func (h *Histogram) CumulativeBelow(v int64) float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for k, w := range h.counts {
		if k < v {
			sum += w
		}
	}
	return sum / h.total
}

// Buckets aggregates the histogram into half-open buckets
// [0,width), [width,2*width), ... up to limit, returning the cumulative
// fraction of weight below each bucket's upper edge. This matches the
// "< 500, < 1000, ..." x-axis of the paper's Figures 3 and 4.
func (h *Histogram) Buckets(width, limit int64) []BucketPoint {
	if width <= 0 {
		return nil
	}
	n := int(limit / width)
	points := make([]BucketPoint, 0, n)
	for i := 1; i <= n; i++ {
		edge := int64(i) * width
		points = append(points, BucketPoint{
			UpperEdge:     edge,
			CumulativePct: 100 * h.CumulativeBelow(edge),
		})
	}
	return points
}

// Values returns all distinct sample values in ascending order.
func (h *Histogram) Values() []int64 {
	vs := make([]int64, 0, len(h.counts))
	for k := range h.counts {
		vs = append(vs, k)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// BucketPoint is one point of a cumulative bucketed distribution:
// CumulativePct percent of total weight lies strictly below UpperEdge.
type BucketPoint struct {
	UpperEdge     int64
	CumulativePct float64
}

func (p BucketPoint) String() string {
	return fmt.Sprintf("<%d: %.1f%%", p.UpperEdge, p.CumulativePct)
}

// Counter accumulates named integer counts. It is the common accounting
// structure for cache statistics and campaign outcome tallies.
type Counter struct {
	counts map[string]int64
	order  []string
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int64)}
}

// Inc adds delta to the named count, registering the name on first use.
func (c *Counter) Inc(name string, delta int64) {
	if _, ok := c.counts[name]; !ok {
		c.order = append(c.order, name)
	}
	c.counts[name] += delta
}

// Get returns the named count (0 if never incremented).
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names returns the registered names in first-use order.
func (c *Counter) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Total returns the sum of all counts.
func (c *Counter) Total() int64 {
	var t int64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// Pct returns 100 * count(name) / Total(), or 0 when empty.
func (c *Counter) Pct(name string) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(c.counts[name]) / float64(t)
}
