// Package report regenerates every table and figure of the paper's
// evaluation from the simulator packages. The cmd tools print these reports;
// the root-level benchmarks invoke the same entry points so each published
// result has exactly one implementation.
//
// Index (see DESIGN.md for the full experiment table):
//
//	Figure1/Figure2   dynamic instructions vs top-k static traces
//	Figure3/Figure4   dynamic instructions vs trace repeat distance
//	Table1            static trace counts per benchmark
//	Table2            the decode-signal vector (ISA spec)
//	Figure6/Figure7   coverage-loss design-space sweep
//	Figure8           fault-injection outcome breakdown
//	Figure9           ITR cache vs redundant I-cache fetch energy
//	AreaComparison    Section 5 die-area argument
//	Headline          Section 3's average/max coverage-loss summary
package report

import (
	"fmt"
	"sort"

	"itr/internal/core"
	"itr/internal/energy"
	"itr/internal/fault"
	"itr/internal/stats"
	"itr/internal/trace"
	"itr/internal/workload"
)

// Characterization runs one benchmark's trace characterization at the given
// base budget (scaled per profile). The characterizer is driven from the
// shared memoized event stream, so the four characterization figures,
// Table 1 and the coverage sweeps at the same budget pay for functional
// execution once between them.
func (e *Engine) Characterization(p workload.Profile, budget int64) (*trace.Characterizer, error) {
	c := trace.NewCharacterizer()
	info, err := workload.StreamEvents(p, p.ScaledBudget(budget), func(ev trace.Event) { c.Add(ev) })
	if err != nil {
		return nil, err
	}
	e.observe(info)
	return c, nil
}

// Characterization runs on the default engine.
func Characterization(p workload.Profile, budget int64) (*trace.Characterizer, error) {
	return defaultEngine.Characterization(p, budget)
}

// PopularityFigure produces Figure 1 (SPECint, step 100 up to 1000) or
// Figure 2 (SPECfp, step 50 up to 500): one series per benchmark of the
// cumulative percentage of dynamic instructions contributed by the top-k
// static traces.
func (e *Engine) PopularityFigure(profiles []workload.Profile, step, limit int, budget int64) ([]stats.Series, error) {
	series := make([]stats.Series, len(profiles))
	err := e.forEach(len(profiles), func(i int) error {
		p := profiles[i]
		return e.item(p.Name, func() error {
			c, err := e.Characterization(p, budget)
			if err != nil {
				return fmt.Errorf("%s: %w", p.Name, err)
			}
			series[i] = stats.Series{Name: p.Name, Points: c.PopularityCDF(step, limit)}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// PopularityFigure runs on the default engine (full-width pool).
func PopularityFigure(profiles []workload.Profile, step, limit int, budget int64) ([]stats.Series, error) {
	return defaultEngine.PopularityFigure(profiles, step, limit, budget)
}

// DistanceFigure produces Figure 3 (SPECint) or Figure 4 (SPECfp): one
// series per benchmark of the cumulative percentage of dynamic instructions
// contributed by trace repetitions within each 500-instruction distance
// bucket, up to 10000.
func (e *Engine) DistanceFigure(profiles []workload.Profile, budget int64) ([]stats.Series, error) {
	series := make([]stats.Series, len(profiles))
	err := e.forEach(len(profiles), func(i int) error {
		p := profiles[i]
		return e.item(p.Name, func() error {
			c, err := e.Characterization(p, budget)
			if err != nil {
				return fmt.Errorf("%s: %w", p.Name, err)
			}
			pts := make([]stats.Point, 0, 20)
			for _, b := range c.DistanceBuckets(500, 10000) {
				pts = append(pts, stats.Point{X: float64(b.UpperEdge), Y: b.CumulativePct})
			}
			series[i] = stats.Series{Name: p.Name, Points: pts}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// DistanceFigure runs on the default engine (full-width pool).
func DistanceFigure(profiles []workload.Profile, budget int64) ([]stats.Series, error) {
	return defaultEngine.DistanceFigure(profiles, budget)
}

// Table1Row is one row of the paper's Table 1 reproduction.
type Table1Row struct {
	Benchmark string
	FP        bool
	Measured  int // static traces observed in the simulated window
	Paper     int // the paper's Table 1 value
}

// Table1 measures static trace counts for every benchmark.
func (e *Engine) Table1(budget int64) ([]Table1Row, error) {
	suite := workload.Suite()
	rows := make([]Table1Row, len(suite))
	err := e.forEach(len(suite), func(i int) error {
		p := suite[i]
		return e.item(p.Name, func() error {
			c, err := e.Characterization(p, budget)
			if err != nil {
				return fmt.Errorf("%s: %w", p.Name, err)
			}
			rows[i] = Table1Row{
				Benchmark: p.Name,
				FP:        p.FP,
				Measured:  c.StaticTraces(),
				Paper:     p.StaticTraces,
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table1 runs on the default engine (full-width pool).
func Table1(budget int64) ([]Table1Row, error) {
	return defaultEngine.Table1(budget)
}

// CoverageCell is one (benchmark, configuration) point of Figures 6-7.
type CoverageCell struct {
	Benchmark string
	Config    core.Config
	Result    core.Result
}

// CoverageSweep replays each benchmark's trace stream against every cache
// configuration (the paper's Section 3 design-space exploration). The event
// stream is generated once per benchmark and shared across configurations.
func (e *Engine) CoverageSweep(profiles []workload.Profile, configs []core.Config, budget int64) ([]CoverageCell, error) {
	return e.CoverageSweepWarm(profiles, configs, budget, 0)
}

// CoverageSweep runs on the default engine (full-width pool).
func CoverageSweep(profiles []workload.Profile, configs []core.Config, budget int64) ([]CoverageCell, error) {
	return defaultEngine.CoverageSweepWarm(profiles, configs, budget, 0)
}

// CoverageSweepWarm is CoverageSweep with a warm-up prefix: the first
// warmupInsts instructions of each stream prime the ITR cache without being
// charged, mirroring the paper's 900M-instruction skip before its
// 200M-instruction measurement window.
//
// Each benchmark is one unit of work on the report worker pool: a
// core.SimBank holding every configuration is driven in lockstep from a
// single traversal of the benchmark's event stream (straight from
// trace.Stream on a workload-cache miss, replayed from the memo cache
// otherwise), instead of one traversal per configuration. Results are
// slotted by index, so the returned cell order (suite order, then config
// order) and every value are bit-identical to the per-cell reference path
// (CoverageSweepWarmPerCell) at any pool width.
func (e *Engine) CoverageSweepWarm(profiles []workload.Profile, configs []core.Config, budget, warmupInsts int64) ([]CoverageCell, error) {
	cells := make([]CoverageCell, len(profiles)*len(configs))
	err := e.forEach(len(profiles), func(pi int) error {
		p := profiles[pi]
		return e.item(p.Name, func() error {
			bank, err := core.NewSimBank(configs, warmupInsts)
			if err != nil {
				return fmt.Errorf("%s %w", p.Name, err)
			}
			info, err := workload.StreamEventSlices(p, p.ScaledBudget(budget)+warmupInsts, bank.FeedBlock)
			if err != nil {
				return fmt.Errorf("%s: %w", p.Name, err)
			}
			e.observe(info)
			for ci, cfg := range configs {
				cells[pi*len(configs)+ci] = CoverageCell{Benchmark: p.Name, Config: cfg, Result: bank.Result(ci)}
			}
			e.cells(len(configs))
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// CoverageSweepWarm runs on the default engine (full-width pool).
func CoverageSweepWarm(profiles []workload.Profile, configs []core.Config, budget, warmupInsts int64) ([]CoverageCell, error) {
	return defaultEngine.CoverageSweepWarm(profiles, configs, budget, warmupInsts)
}

// CoverageSweepWarmPerCell is the pre-bank reference implementation of the
// sweep: event streams materialized per benchmark, then one full stream
// traversal per (benchmark, configuration) cell. It is retained as the
// oracle for the single-pass path's bit-identity property tests and as the
// regression baseline (BenchmarkCoverageSweepSerial); CoverageSweepWarm
// returns identical cells from one traversal per benchmark.
func (e *Engine) CoverageSweepWarmPerCell(profiles []workload.Profile, configs []core.Config, budget, warmupInsts int64) ([]CoverageCell, error) {
	streams := make([][]trace.Event, len(profiles))
	err := e.forEach(len(profiles), func(pi int) error {
		p := profiles[pi]
		return e.item(p.Name, func() error {
			events, err := workload.CachedEvents(p, p.ScaledBudget(budget)+warmupInsts)
			if err != nil {
				return fmt.Errorf("%s: %w", p.Name, err)
			}
			streams[pi] = events
			return nil
		})
	})
	if err != nil {
		return nil, err
	}

	cells := make([]CoverageCell, len(profiles)*len(configs))
	err = e.forEach(len(cells), func(i int) error {
		pi, ci := i/len(configs), i%len(configs)
		p, cfg := profiles[pi], configs[ci]
		return e.item(p.Name, func() error {
			sim, err := core.NewCoverageSim(cfg)
			if err != nil {
				return fmt.Errorf("%s %s: %w", p.Name, cfg, err)
			}
			replayWarm(sim, streams[pi], warmupInsts)
			cells[i] = CoverageCell{Benchmark: p.Name, Config: cfg, Result: sim.Result()}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// replayWarm drives one coverage simulator over a shared (read-only) event
// stream, delegating the warm-up boundary rule to the same core.WarmupLatch
// that governs SimBank fan-out — the two replay paths cannot diverge.
func replayWarm(sim *core.CoverageSim, events []trace.Event, warmupInsts int64) {
	latch := core.NewWarmupLatch(warmupInsts)
	for _, ev := range events {
		if latch.Admit(ev.Len) {
			sim.Warm(ev)
		} else {
			sim.Access(ev)
		}
	}
}

// CoverageTable renders a Figures 6/7-shaped table: one row per
// (benchmark, associativity), one column per cache size, for the chosen
// metric ("detection" or "recovery").
func CoverageTable(cells []CoverageCell, metric string) *stats.Table {
	value := func(r core.Result) float64 {
		if metric == "recovery" {
			return r.RecoveryLoss
		}
		return r.DetectionLoss
	}
	sizes := []int{256, 512, 1024}
	t := stats.NewTable("benchmark", "assoc", "256 sigs (%)", "512 sigs (%)", "1024 sigs (%)")
	type key struct {
		bench string
		assoc int
	}
	grid := make(map[key]map[int]float64)
	var benches []string
	seen := map[string]bool{}
	for _, c := range cells {
		k := key{c.Benchmark, c.Config.Assoc}
		if grid[k] == nil {
			grid[k] = make(map[int]float64)
		}
		grid[k][c.Config.Entries] = value(c.Result)
		if !seen[c.Benchmark] {
			seen[c.Benchmark] = true
			benches = append(benches, c.Benchmark)
		}
	}
	assocs := []int{1, 2, 4, 8, 16, 0}
	names := map[int]string{1: "dm", 2: "2-way", 4: "4-way", 8: "8-way", 16: "16-way", 0: "fa"}
	for _, b := range benches {
		for _, a := range assocs {
			vals, ok := grid[key{b, a}]
			if !ok {
				continue
			}
			t.AddRow(b, names[a], vals[sizes[0]], vals[sizes[1]], vals[sizes[2]])
		}
	}
	return t
}

// Headline summarizes Section 3's quoted numbers for the 2-way/1024
// configuration: "the average loss in fault detection coverage is 1.3% with
// a maximum loss of 8.2% for vortex; recovery 2.5% average and 15% maximum".
type Headline struct {
	AvgDetectionLoss float64
	MaxDetectionLoss float64
	MaxDetectionName string
	AvgRecoveryLoss  float64
	MaxRecoveryLoss  float64
	MaxRecoveryName  string
}

// HeadlineCoverage computes the Section 3 headline over all 16 benchmarks.
func (e *Engine) HeadlineCoverage(budget int64) (Headline, error) {
	cells, err := e.CoverageSweep(workload.Suite(), []core.Config{core.DefaultConfig()}, budget)
	if err != nil {
		return Headline{}, err
	}
	var h Headline
	var det, rec []float64
	for _, c := range cells {
		det = append(det, c.Result.DetectionLoss)
		rec = append(rec, c.Result.RecoveryLoss)
		if c.Result.DetectionLoss > h.MaxDetectionLoss {
			h.MaxDetectionLoss = c.Result.DetectionLoss
			h.MaxDetectionName = c.Benchmark
		}
		if c.Result.RecoveryLoss > h.MaxRecoveryLoss {
			h.MaxRecoveryLoss = c.Result.RecoveryLoss
			h.MaxRecoveryName = c.Benchmark
		}
	}
	h.AvgDetectionLoss = stats.Mean(det)
	h.AvgRecoveryLoss = stats.Mean(rec)
	return h, nil
}

// HeadlineCoverage runs on the default engine (full-width pool).
func HeadlineCoverage(budget int64) (Headline, error) {
	return defaultEngine.HeadlineCoverage(budget)
}

// Figure8Row is one benchmark's fault-injection outcome breakdown.
type Figure8Row struct {
	Benchmark string
	Result    fault.CampaignResult
}

// Figure8 runs the Section 4 fault-injection campaign over the given
// benchmarks (the paper uses the 11 coverage benchmarks plus an average).
// Benchmarks fan out on the engine's pool; fault.RunCampaign has its own
// per-injection pool (cfg.Workers), so campaigns that set cfg.Workers > 1
// should pair it with an Engine{Workers: 1} — or vice versa — to avoid
// oversubscription.
func (e *Engine) Figure8(profiles []workload.Profile, cfg fault.CampaignConfig) ([]Figure8Row, error) {
	rows := make([]Figure8Row, len(profiles))
	err := e.forEach(len(profiles), func(i int) error {
		p := profiles[i]
		return e.item(p.Name, func() error {
			prog, err := workload.CachedProgram(p)
			if err != nil {
				return fmt.Errorf("%s: %w", p.Name, err)
			}
			res, err := fault.RunCampaign(p.Name, prog, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", p.Name, err)
			}
			rows[i] = Figure8Row{Benchmark: p.Name, Result: res}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Figure8 runs on the default engine (full-width pool over benchmarks);
// prefer an explicit Engine{Workers: 1} when cfg.Workers parallelizes the
// injections instead.
func Figure8(profiles []workload.Profile, cfg fault.CampaignConfig) ([]Figure8Row, error) {
	return defaultEngine.Figure8(profiles, cfg)
}

// Figure8Table renders the outcome breakdown with one row per benchmark and
// an average row, one column per category (percentages of injected faults).
func Figure8Table(rows []Figure8Row) *stats.Table {
	cats := fault.Categories()
	header := []string{"benchmark"}
	for _, c := range cats {
		header = append(header, string(c))
	}
	header = append(header, "ITR-detected")
	t := stats.NewTable(header...)
	avg := make(map[fault.Category]float64)
	var avgDet float64
	for _, r := range rows {
		cells := []interface{}{r.Benchmark}
		for _, c := range cats {
			pct := r.Result.Pct(c)
			avg[c] += pct
			cells = append(cells, pct)
		}
		avgDet += r.Result.DetectedPct()
		cells = append(cells, r.Result.DetectedPct())
		t.AddRow(cells...)
	}
	if len(rows) > 0 {
		cells := []interface{}{"Avg"}
		for _, c := range cats {
			cells = append(cells, avg[c]/float64(len(rows)))
		}
		cells = append(cells, avgDet/float64(len(rows)))
		t.AddRow(cells...)
	}
	return t
}

// Figure9Row is one benchmark's energy comparison (Figure 9): the ITR cache
// (both port options) against redundantly fetching every instruction from
// the I-cache.
type Figure9Row struct {
	Benchmark      string
	ITRSinglePort  float64 // mJ
	ITRDualPort    float64 // mJ
	ICacheRedFetch float64 // mJ
}

// Figure9 computes the energy comparison. Access counts are measured at the
// given budget and linearly scaled to scaleInsts dynamic instructions
// (pass 200e6 to match the paper's 200M-instruction windows; 0 disables
// scaling).
//
// The access counts come from a default-configuration coverage sweep over
// the shared memoized event streams — the same replay (and the same sweep
// cell) the Figures 6-7 design space contains — instead of a private
// re-simulation per benchmark. A trace event stream partitions every
// executed instruction into exactly one event, so the measured dynamic
// instruction count is the replay's TotalInsts.
func (e *Engine) Figure9(profiles []workload.Profile, budget, scaleInsts int64) ([]Figure9Row, error) {
	singleNJ, err := energy.AccessEnergyNJ(energy.ITRCacheSinglePort)
	if err != nil {
		return nil, err
	}
	dualNJ, err := energy.AccessEnergyNJ(energy.ITRCacheDualPort)
	if err != nil {
		return nil, err
	}
	iNJ, err := energy.AccessEnergyNJ(energy.Power4ICache)
	if err != nil {
		return nil, err
	}

	cells, err := e.CoverageSweepWarm(profiles, []core.Config{core.DefaultConfig()}, budget, 0)
	if err != nil {
		return nil, err
	}
	rows := make([]Figure9Row, len(profiles))
	for i, p := range profiles {
		res := cells[i].Result
		executed := res.TotalInsts
		scale := 1.0
		if scaleInsts > 0 && executed > 0 {
			scale = float64(scaleInsts) / float64(executed)
		}
		itrAccesses := int64(float64(res.Reads+res.Writes) * scale)
		iAccesses := int64(float64(energy.RedundantFetchAccesses(executed)) * scale)
		rows[i] = Figure9Row{
			Benchmark:      p.Name,
			ITRSinglePort:  energy.EnergyMJ(itrAccesses, singleNJ),
			ITRDualPort:    energy.EnergyMJ(itrAccesses, dualNJ),
			ICacheRedFetch: energy.EnergyMJ(iAccesses, iNJ),
		}
	}
	return rows, nil
}

// Figure9 runs on the default engine (full-width pool).
func Figure9(profiles []workload.Profile, budget, scaleInsts int64) ([]Figure9Row, error) {
	return defaultEngine.Figure9(profiles, budget, scaleInsts)
}

// Figure9Table renders the energy comparison.
func Figure9Table(rows []Figure9Row) *stats.Table {
	t := stats.NewTable("benchmark", "ITR 1rd/wr (mJ)", "ITR 1rd+1wr (mJ)", "I-cache refetch (mJ)")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.ITRSinglePort, r.ITRDualPort, r.ICacheRedFetch)
	}
	return t
}

// SortCellsByBenchmark orders coverage cells in suite order then by
// associativity and size (stable rendering).
func SortCellsByBenchmark(cells []CoverageCell) {
	order := map[string]int{}
	for i, name := range workload.Names() {
		order[name] = i
	}
	sort.SliceStable(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if order[a.Benchmark] != order[b.Benchmark] {
			return order[a.Benchmark] < order[b.Benchmark]
		}
		aa, ba := a.Config.Assoc, b.Config.Assoc
		if aa == 0 {
			aa = 1 << 20
		}
		if ba == 0 {
			ba = 1 << 20
		}
		if aa != ba {
			return aa < ba
		}
		return a.Config.Entries < b.Config.Entries
	})
}
