package report

import (
	"strings"
	"testing"
)

func TestPerfComparison(t *testing.T) {
	rows, err := PerfComparison(small(t, "gap"), 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.BaseIPC <= 1 {
		t.Fatalf("base IPC %.2f implausible", r.BaseIPC)
	}
	// ITR and structural duplication must not cost frontend bandwidth.
	if r.ITRIPC < r.BaseIPC*0.98 {
		t.Fatalf("ITR cost IPC: %.2f vs %.2f", r.ITRIPC, r.BaseIPC)
	}
	if r.DualDecodeIPC < r.BaseIPC*0.98 {
		t.Fatalf("dual decode cost IPC: %.2f vs %.2f", r.DualDecodeIPC, r.BaseIPC)
	}
	// Time redundancy must pay roughly half the frontend bandwidth.
	if r.TimeRedundantIPC > r.BaseIPC*0.7 {
		t.Fatalf("time redundancy too cheap: %.2f vs %.2f", r.TimeRedundantIPC, r.BaseIPC)
	}
}

func TestPerfTableRender(t *testing.T) {
	rows := []PerfRow{{Benchmark: "x", BaseIPC: 4, ITRIPC: 4, DualDecodeIPC: 4, TimeRedundantIPC: 2}}
	out := PerfTable(rows).String()
	if !strings.Contains(out, "x") || !strings.Contains(out, "50.00") {
		t.Fatalf("render:\n%s", out)
	}
}
