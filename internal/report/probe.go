package report

import (
	"itr/internal/obs"
	"itr/internal/workload"
)

// Probe collects sweep telemetry: how much event-stream work the report
// entry points actually performed. Attach one to an Engine to have every
// sweep, characterization and energy run account its traversals; the
// experiment manifest, the -progress ticker and the /metrics endpoint
// surface the counters. Fields are lock-free obs counters — probes are
// updated concurrently from pool goroutines and may be read while a run is
// in flight.
type Probe struct {
	// StreamsGenerated counts functional event-stream generations (workload
	// cache misses). Memoization working means this stays at one per
	// (benchmark, covering budget) no matter how many sweeps replay it.
	StreamsGenerated obs.Counter
	// EventsReplayed counts trace events traversed (each event is counted
	// once per stream pass, regardless of how many cache configurations the
	// bank fans it out to).
	EventsReplayed obs.Counter
	// CellsCompleted counts finished (benchmark, configuration) sweep cells.
	CellsCompleted obs.Counter
}

// observe folds one stream traversal's accounting into the engine's probe,
// if it has one. Stream traversals are orders of magnitude rarer than the
// events inside them, so these use the unsharded add.
func (e *Engine) observe(info workload.StreamInfo) {
	if e.Probe == nil {
		return
	}
	if info.Generated {
		e.Probe.StreamsGenerated.Add(1)
	}
	e.Probe.EventsReplayed.Add(info.Events)
}

// cells records n completed sweep cells on the engine's probe, if it has one.
func (e *Engine) cells(n int) {
	if e.Probe != nil {
		e.Probe.CellsCompleted.Add(int64(n))
	}
}
