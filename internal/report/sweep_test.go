package report

import (
	"math/rand"
	"reflect"
	"testing"

	"itr/internal/core"
	"itr/internal/energy"
	"itr/internal/workload"
)

// TestSweepSinglePassMatchesPerCell is the sweep engine's bit-identity
// property: the single-pass bank path returns exactly the cells the per-cell
// reference path computes — same order, same values — over a randomized
// configuration grid and warm-up budgets.
func TestSweepSinglePassMatchesPerCell(t *testing.T) {
	profiles := small(t, "vpr", "wupwise")
	rng := rand.New(rand.NewSource(23))
	space := core.DesignSpace()
	for round := 0; round < 4; round++ {
		configs := make([]core.Config, 1+rng.Intn(len(space)))
		for i := range configs {
			configs[i] = space[rng.Intn(len(space))]
			if rng.Intn(4) == 0 {
				configs[i].MissFallback = true
			}
		}
		warmup := int64(rng.Intn(2)) * int64(rng.Intn(20_000))

		eng := &Engine{Workers: 2}
		single, err := eng.CoverageSweepWarm(profiles, configs, testBudget, warmup)
		if err != nil {
			t.Fatal(err)
		}
		perCell, err := eng.CoverageSweepWarmPerCell(profiles, configs, testBudget, warmup)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single, perCell) {
			t.Fatalf("round %d (%d configs, warmup %d): single-pass cells diverge from per-cell reference",
				round, len(configs), warmup)
		}
	}
}

// TestSweepRenderingIdenticalAcrossPaths renders Figures 6/7-shaped tables
// from three sweeps — serial single-pass, full-width single-pass, and the
// per-cell reference — and requires byte-identical output.
func TestSweepRenderingIdenticalAcrossPaths(t *testing.T) {
	profiles := small(t, "bzip", "art")
	rng := rand.New(rand.NewSource(5))
	space := core.DesignSpace()
	configs := make([]core.Config, 8)
	for i := range configs {
		configs[i] = space[rng.Intn(len(space))]
	}

	render := func(cells []CoverageCell) string {
		SortCellsByBenchmark(cells)
		return CoverageTable(cells, "detection").String() + CoverageTable(cells, "recovery").String()
	}

	serial := &Engine{Workers: 1}
	wide := &Engine{Workers: 8}
	a, err := serial.CoverageSweepWarm(profiles, configs, testBudget, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := wide.CoverageSweepWarm(profiles, configs, testBudget, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	c, err := wide.CoverageSweepWarmPerCell(profiles, configs, testBudget, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb, rc := render(a), render(b), render(c)
	if ra != rb {
		t.Errorf("serial vs full-width single-pass renderings differ:\n%s\nvs\n%s", ra, rb)
	}
	if ra != rc {
		t.Errorf("single-pass vs per-cell renderings differ:\n%s\nvs\n%s", ra, rc)
	}
}

// TestFigure9MatchesDirectSimulation verifies Figure 9's shared-sweep rework
// against the pre-rework computation: a private replay per benchmark with its
// own instruction count and scaling.
func TestFigure9MatchesDirectSimulation(t *testing.T) {
	profiles := small(t, "vpr", "swim")
	const scaleInsts = 200_000_000
	rows, err := Figure9(profiles, testBudget, scaleInsts)
	if err != nil {
		t.Fatal(err)
	}

	singleNJ, _ := energy.AccessEnergyNJ(energy.ITRCacheSinglePort)
	dualNJ, _ := energy.AccessEnergyNJ(energy.ITRCacheDualPort)
	iNJ, _ := energy.AccessEnergyNJ(energy.Power4ICache)
	for i, p := range profiles {
		prog, err := workload.CachedProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		events, executed := workload.EventsOf(prog, p.ScaledBudget(testBudget))
		sim, err := core.NewCoverageSim(core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			sim.Access(ev)
		}
		res := sim.Result()
		scale := 1.0
		if executed > 0 {
			scale = float64(scaleInsts) / float64(executed)
		}
		want := Figure9Row{
			Benchmark:      p.Name,
			ITRSinglePort:  energy.EnergyMJ(int64(float64(res.Reads+res.Writes)*scale), singleNJ),
			ITRDualPort:    energy.EnergyMJ(int64(float64(res.Reads+res.Writes)*scale), dualNJ),
			ICacheRedFetch: energy.EnergyMJ(int64(float64(energy.RedundantFetchAccesses(executed))*scale), iNJ),
		}
		if rows[i] != want {
			t.Errorf("%s: Figure9 row %+v diverges from direct simulation %+v", p.Name, rows[i], want)
		}
	}
}

// TestSweepProbeTelemetry verifies the probe accounting: streams generate at
// most once per (benchmark, budget), every traversal counts its events, and
// each (benchmark, config) cell is recorded.
func TestSweepProbeTelemetry(t *testing.T) {
	profiles := small(t, "gap", "mgrid")
	configs := core.DesignSpace()[:4]
	probe := &Probe{}
	eng := &Engine{Workers: 2, Probe: probe}
	cells, err := eng.CoverageSweepWarm(profiles, configs, testBudget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := probe.CellsCompleted.Load(), int64(len(cells)); got != want {
		t.Errorf("cells completed %d, want %d", got, want)
	}
	if probe.EventsReplayed.Load() <= 0 {
		t.Error("no events accounted")
	}
	gens := probe.StreamsGenerated.Load()
	if gens > int64(len(profiles)) {
		t.Errorf("%d generations for %d benchmarks", gens, len(profiles))
	}

	// A second sweep at the same budget replays from cache: cells and events
	// accrue, generations do not.
	if _, err := eng.CoverageSweepWarm(profiles, configs, testBudget, 0); err != nil {
		t.Fatal(err)
	}
	if got := probe.StreamsGenerated.Load(); got != gens {
		t.Errorf("repeat sweep generated %d new streams", got-gens)
	}
	if got, want := probe.CellsCompleted.Load(), int64(2*len(cells)); got != want {
		t.Errorf("cells completed %d after second sweep, want %d", got, want)
	}
}
