package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"itr/internal/core"
	"itr/internal/fault"
	"itr/internal/stats"
)

func TestEncodeSeriesRoundTrip(t *testing.T) {
	fig := EncodeSeries("figure1", "test figure", "top-k", "%", []stats.Series{
		{Name: "bzip", Points: []stats.Point{{X: 100, Y: 99}, {X: 200, Y: 100}}},
	})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fig); err != nil {
		t.Fatal(err)
	}
	var back FigureJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "figure1" || len(back.Series) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	s := back.Series[0]
	if s.Name != "bzip" || len(s.X) != 2 || s.Y[0] != 99 {
		t.Fatalf("series: %+v", s)
	}
}

func TestEncodeCoverage(t *testing.T) {
	cells := []CoverageCell{{
		Benchmark: "vortex",
		Config:    core.Config{Entries: 1024, Assoc: 2},
		Result:    core.Result{DetectionLoss: 8.2, RecoveryLoss: 15, TotalInsts: 100},
	}}
	out := EncodeCoverage(cells)
	if len(out) != 1 || out[0].Config != "2-way/1024" || out[0].DetectionLoss != 8.2 {
		t.Fatalf("encode: %+v", out)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, out); err != nil {
		t.Fatal(err)
	}
	var back []CoverageJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back[0].RecoveryLoss != 15 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestEncodeCampaigns(t *testing.T) {
	rows := []Figure8Row{{
		Benchmark: "gap",
		Result: fault.CampaignResult{
			Benchmark: "gap",
			Total:     100,
			Counts:    map[fault.Category]int{fault.ITRMask: 60, fault.ITRSDCR: 30},
		},
	}}
	out := EncodeCampaigns(rows)
	if len(out) != 1 || out[0].Detected != 90 {
		t.Fatalf("encode: %+v", out)
	}
	if out[0].Categories[string(fault.ITRMask)] != 60 {
		t.Fatalf("categories: %+v", out[0].Categories)
	}
	// All ten categories present (zeros included).
	if len(out[0].Categories) != 10 {
		t.Fatalf("category count: %d", len(out[0].Categories))
	}
}
