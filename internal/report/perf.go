package report

import (
	"fmt"

	"itr/internal/pipeline"
	"itr/internal/stats"
	"itr/internal/workload"
)

// PerfRow is one benchmark's measured frontend-protection performance
// comparison: the paper's Section 5/6 argument that "frontend bandwidth is
// pricier than execution bandwidth" — ITR protects the frontend without
// consuming it, while conventional time redundancy fetches and decodes
// everything twice.
type PerfRow struct {
	Benchmark string
	// BaseIPC is the unprotected core.
	BaseIPC float64
	// ITRIPC is the core with the full ITR checker attached (the overhead
	// is only ITR cache dispatch/commit work, not frontend bandwidth).
	ITRIPC float64
	// DualDecodeIPC is structural duplication (no bandwidth cost, pure
	// hardware cost).
	DualDecodeIPC float64
	// TimeRedundantIPC is conventional time redundancy (every instruction
	// through the frontend twice).
	TimeRedundantIPC float64
}

// PerfComparison measures IPC for each protection scheme on the cycle-level
// core over the given cycle budget per run.
func (e *Engine) PerfComparison(profiles []workload.Profile, cycles int64) ([]PerfRow, error) {
	rows := make([]PerfRow, len(profiles))
	err := e.forEach(len(profiles), func(i int) error {
		p := profiles[i]
		return e.item(p.Name, func() error {
			prog, err := workload.CachedProgram(p)
			if err != nil {
				return fmt.Errorf("%s: %w", p.Name, err)
			}
			row := PerfRow{Benchmark: p.Name}

			measure := func(mutate func(*pipeline.Config)) (float64, error) {
				cfg := pipeline.DefaultConfig()
				cfg.ITREnabled = false
				mutate(&cfg)
				cpu, err := pipeline.New(prog, cfg)
				if err != nil {
					return 0, err
				}
				return cpu.Run(cycles).IPC(), nil
			}

			if row.BaseIPC, err = measure(func(*pipeline.Config) {}); err != nil {
				return err
			}
			if row.ITRIPC, err = measure(func(c *pipeline.Config) { c.ITREnabled = true }); err != nil {
				return err
			}
			if row.DualDecodeIPC, err = measure(func(c *pipeline.Config) { c.Redundancy = pipeline.RedundancyDualDecode }); err != nil {
				return err
			}
			if row.TimeRedundantIPC, err = measure(func(c *pipeline.Config) { c.Redundancy = pipeline.RedundancyTimeRedundant }); err != nil {
				return err
			}
			rows[i] = row
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PerfComparison runs on the default engine (full-width pool).
func PerfComparison(profiles []workload.Profile, cycles int64) ([]PerfRow, error) {
	return defaultEngine.PerfComparison(profiles, cycles)
}

// PerfTable renders the comparison with slowdown percentages.
func PerfTable(rows []PerfRow) *stats.Table {
	t := stats.NewTable("benchmark", "base IPC", "ITR IPC", "dual-decode IPC", "time-redundant IPC", "TR slowdown (%)")
	for _, r := range rows {
		slow := 0.0
		if r.BaseIPC > 0 {
			slow = 100 * (1 - r.TimeRedundantIPC/r.BaseIPC)
		}
		t.AddRow(r.Benchmark, r.BaseIPC, r.ITRIPC, r.DualDecodeIPC, r.TimeRedundantIPC, slow)
	}
	return t
}
