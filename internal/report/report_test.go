package report

import (
	"strings"
	"testing"

	"itr/internal/core"
	"itr/internal/fault"
	"itr/internal/workload"
)

// Small budget keeps report tests quick; exactness of Table 1 at full budget
// is covered in workload's tests.
const testBudget = 300_000

func small(t *testing.T, names ...string) []workload.Profile {
	t.Helper()
	out := make([]workload.Profile, 0, len(names))
	for _, n := range names {
		p, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func TestPopularityFigureShape(t *testing.T) {
	series, err := PopularityFigure(small(t, "bzip", "art"), 100, 1000, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 10 {
			t.Fatalf("%s: %d points, want 10", s.Name, len(s.Points))
		}
		prev := -1.0
		for _, p := range s.Points {
			if p.Y < prev {
				t.Fatalf("%s: CDF not monotone", s.Name)
			}
			prev = p.Y
		}
		if prev > 100.0001 {
			t.Fatalf("%s: CDF exceeds 100%%", s.Name)
		}
	}
}

func TestDistanceFigureShape(t *testing.T) {
	series, err := DistanceFigure(small(t, "bzip"), testBudget)
	if err != nil {
		t.Fatal(err)
	}
	pts := series[0].Points
	if len(pts) != 20 {
		t.Fatalf("points = %d, want 20 distance buckets", len(pts))
	}
	if pts[0].X != 500 || pts[19].X != 10000 {
		t.Fatalf("bucket edges: %v ... %v", pts[0].X, pts[19].X)
	}
	// bzip is dominated by tight loops: most mass inside the first bucket.
	if pts[0].Y < 80 {
		t.Fatalf("bzip first bucket %.1f%%, expected tight proximity", pts[0].Y)
	}
}

func TestTable1SmallBudgetUndercountsGcc(t *testing.T) {
	rows, err := Table1(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Measured <= 0 || r.Measured > r.Paper {
			t.Fatalf("%s: measured %d outside (0, %d]", r.Benchmark, r.Measured, r.Paper)
		}
	}
}

func TestCoverageSweepGrid(t *testing.T) {
	profiles := small(t, "vpr")
	cells, err := CoverageSweep(profiles, core.DesignSpace(), testBudget)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 18 {
		t.Fatalf("cells = %d, want 18", len(cells))
	}
	for _, c := range cells {
		if c.Result.DetectionLoss > c.Result.RecoveryLoss+1e-9 {
			t.Fatalf("%s %s: detection loss exceeds recovery loss", c.Benchmark, c.Config)
		}
	}
}

func TestCoverageTableRendering(t *testing.T) {
	cells, err := CoverageSweep(small(t, "vpr"), core.DesignSpace(), testBudget)
	if err != nil {
		t.Fatal(err)
	}
	SortCellsByBenchmark(cells)
	tab := CoverageTable(cells, "detection")
	if tab.NumRows() != 6 {
		t.Fatalf("rows = %d, want one per associativity", tab.NumRows())
	}
	out := tab.String()
	for _, want := range []string{"vpr", "dm", "2-way", "fa", "256 sigs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHeadlineCoverageSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("headline sweeps all 16 benchmarks")
	}
	h, err := HeadlineCoverage(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if h.AvgDetectionLoss <= 0 || h.AvgDetectionLoss > 10 {
		t.Fatalf("avg detection loss %.2f implausible", h.AvgDetectionLoss)
	}
	if h.MaxDetectionName != "vortex" {
		t.Errorf("max detection loss at %s, paper says vortex", h.MaxDetectionName)
	}
	if h.AvgRecoveryLoss < h.AvgDetectionLoss {
		t.Error("recovery loss must be at least detection loss")
	}
}

func TestFigure8SmallCampaign(t *testing.T) {
	cfg := fault.DefaultCampaignConfig()
	cfg.Faults = 5
	cfg.Experiment.WindowCycles = 30_000
	rows, err := Figure8(small(t, "art"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Result.Total != 5 {
		t.Fatalf("rows: %+v", rows)
	}
	out := Figure8Table(rows).String()
	if !strings.Contains(out, "art") || !strings.Contains(out, "Avg") {
		t.Fatalf("figure 8 table:\n%s", out)
	}
	if !strings.Contains(out, string(fault.ITRMask)) {
		t.Fatalf("missing category header:\n%s", out)
	}
}

func TestFigure9ShapeAndScaling(t *testing.T) {
	rows, err := Figure9(small(t, "bzip", "swim"), testBudget, 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's central energy claim, per benchmark.
		if r.ITRSinglePort >= r.ICacheRedFetch {
			t.Fatalf("%s: ITR %.2f mJ not below redundant fetch %.2f mJ",
				r.Benchmark, r.ITRSinglePort, r.ICacheRedFetch)
		}
		if r.ITRDualPort <= r.ITRSinglePort {
			t.Fatalf("%s: dual port should cost more", r.Benchmark)
		}
		// At 200M instructions the redundant-fetch bar sits in the paper's
		// tens-of-mJ range.
		if r.ICacheRedFetch < 30 || r.ICacheRedFetch > 150 {
			t.Fatalf("%s: redundant fetch %.1f mJ outside the paper's range", r.Benchmark, r.ICacheRedFetch)
		}
	}
	// Unscaled rows are much smaller.
	raw, err := Figure9(small(t, "bzip"), testBudget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0].ICacheRedFetch >= rows[0].ICacheRedFetch {
		t.Fatal("unscaled energy should be far below 200M-scaled energy")
	}
	if tab := Figure9Table(rows); !strings.Contains(tab.String(), "bzip") {
		t.Fatal("figure 9 table render broken")
	}
}

func TestSortCellsByBenchmark(t *testing.T) {
	cells := []CoverageCell{
		{Benchmark: "vpr", Config: core.Config{Entries: 256, Assoc: 0}},
		{Benchmark: "bzip", Config: core.Config{Entries: 512, Assoc: 2}},
		{Benchmark: "bzip", Config: core.Config{Entries: 256, Assoc: 1}},
	}
	SortCellsByBenchmark(cells)
	if cells[0].Benchmark != "bzip" || cells[0].Config.Assoc != 1 {
		t.Fatalf("sort order: %+v", cells)
	}
	if cells[2].Benchmark != "vpr" {
		t.Fatalf("fa must sort last: %+v", cells)
	}
}
