package report

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"itr/internal/core"
	"itr/internal/trace"
)

// newSim builds a coverage simulator for tests, failing on config error.
func newSim(t *testing.T) *core.CoverageSim {
	t.Helper()
	sim, err := core.NewCoverageSim(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestReplayWarmBoundary pins the warm-up attribution rule: an event counts
// as warm-up only when it fits entirely within the warmupInsts prefix; the
// first straddling event and everything after it is measured.
func TestReplayWarmBoundary(t *testing.T) {
	events := []trace.Event{
		{StartPC: 0, Len: 10, Sig: 1},
		{StartPC: 100, Len: 10, Sig: 2},
		{StartPC: 200, Len: 10, Sig: 3},
	}
	cases := []struct {
		name        string
		warmup      int64
		wantEvents  int64
		wantMeasure int64
	}{
		{"no warmup", 0, 3, 30},
		{"warmup below first event straddles", 5, 3, 30},
		{"boundary mid second event", 15, 2, 20},
		{"boundary exactly after second event", 20, 1, 10},
		{"warmup swallows all", 30, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim := newSim(t)
			replayWarm(sim, events, tc.warmup)
			res := sim.Result()
			if res.TraceEvents != tc.wantEvents {
				t.Errorf("warmup %d: measured %d events, want %d", tc.warmup, res.TraceEvents, tc.wantEvents)
			}
			if res.TotalInsts != tc.wantMeasure {
				t.Errorf("warmup %d: measured %d insts, want %d", tc.warmup, res.TotalInsts, tc.wantMeasure)
			}
		})
	}
}

// TestReplayWarmLatch verifies a short event after the boundary is crossed
// stays measured even though it would still fit under warmupInsts.
func TestReplayWarmLatch(t *testing.T) {
	events := []trace.Event{
		{StartPC: 0, Len: 10, Sig: 1},
		{StartPC: 100, Len: 10, Sig: 2}, // straddles warmup=15: measured
		{StartPC: 200, Len: 3, Sig: 3},  // 10+3 <= 15, but latch keeps it measured
	}
	sim := newSim(t)
	replayWarm(sim, events, 15)
	res := sim.Result()
	if res.TraceEvents != 2 || res.TotalInsts != 13 {
		t.Errorf("got %d events / %d insts measured, want 2 / 13", res.TraceEvents, res.TotalInsts)
	}
}

// TestForEach covers the pool helper: full coverage of the index space at
// serial and parallel widths, and lowest-index error selection.
func TestForEach(t *testing.T) {
	for _, w := range []int{1, 4} {
		eng := &Engine{Workers: w}
		got := make([]int, 100)
		if err := eng.forEach(len(got), func(i int) error {
			got[i] = i + 1
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("workers=%d: slot %d not visited", w, i)
			}
		}
	}

	errA, errB := errors.New("a"), errors.New("b")
	eng := &Engine{Workers: 4}
	err := eng.forEach(10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if err != errB {
		t.Fatalf("got error %v, want lowest-index error %v", err, errB)
	}
}

// TestEngineOnItem verifies the per-item observer fires once per unit of
// work with the benchmark label, at serial and parallel widths.
func TestEngineOnItem(t *testing.T) {
	profiles := small(t, "bzip", "art")
	for _, w := range []int{1, 4} {
		var mu sync.Mutex
		counts := map[string]int{}
		eng := &Engine{Workers: w, OnItem: func(label string, _ time.Duration) {
			mu.Lock()
			counts[label]++
			mu.Unlock()
		}}
		if _, err := eng.PopularityFigure(profiles, 100, 500, testBudget); err != nil {
			t.Fatal(err)
		}
		if counts["bzip"] != 1 || counts["art"] != 1 {
			t.Fatalf("workers=%d: item counts %v, want one per benchmark", w, counts)
		}
	}
}

// TestSweepDeterministicAcrossWidths is the parallel-engine contract: the
// sweep and the per-benchmark figures are bit-identical at any pool width.
func TestSweepDeterministicAcrossWidths(t *testing.T) {
	profiles := small(t, "bzip", "art")
	configs := core.DesignSpace()[:6]

	serial := &Engine{Workers: 1}
	serialCells, err := serial.CoverageSweepWarm(profiles, configs, testBudget, 1000)
	if err != nil {
		t.Fatal(err)
	}
	serialPop, err := serial.PopularityFigure(profiles, 100, 500, testBudget)
	if err != nil {
		t.Fatal(err)
	}

	par := &Engine{Workers: 4}
	parCells, err := par.CoverageSweepWarm(profiles, configs, testBudget, 1000)
	if err != nil {
		t.Fatal(err)
	}
	parPop, err := par.PopularityFigure(profiles, 100, 500, testBudget)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serialCells, parCells) {
		t.Error("sweep cells differ between workers=1 and workers=4")
	}
	if !reflect.DeepEqual(serialPop, parPop) {
		t.Error("popularity series differ between workers=1 and workers=4")
	}
}
