package report

import (
	"encoding/json"
	"fmt"
	"io"

	"itr/internal/fault"
	"itr/internal/stats"
)

// JSON export of experiment results, so regenerated figures can be archived,
// diffed across runs, and consumed by external plotting tools. All types
// marshal through stable, documented shapes.

// SeriesJSON is the wire form of one figure series.
type SeriesJSON struct {
	Name   string    `json:"name"`
	X      []float64 `json:"x"`
	Y      []float64 `json:"y"`
	XLabel string    `json:"xLabel,omitempty"`
	YLabel string    `json:"yLabel,omitempty"`
}

// FigureJSON is the wire form of one regenerated figure.
type FigureJSON struct {
	ID     string       `json:"id"`    // e.g. "figure1"
	Title  string       `json:"title"` // paper caption
	Series []SeriesJSON `json:"series"`
}

// EncodeSeries converts stats series into the wire form.
func EncodeSeries(id, title, xLabel, yLabel string, series []stats.Series) FigureJSON {
	fig := FigureJSON{ID: id, Title: title}
	for _, s := range series {
		sj := SeriesJSON{Name: s.Name, XLabel: xLabel, YLabel: yLabel}
		for _, p := range s.Points {
			sj.X = append(sj.X, p.X)
			sj.Y = append(sj.Y, p.Y)
		}
		fig.Series = append(fig.Series, sj)
	}
	return fig
}

// CoverageJSON is the wire form of one Figures 6/7 cell.
type CoverageJSON struct {
	Benchmark     string  `json:"benchmark"`
	Config        string  `json:"config"`
	Entries       int     `json:"entries"`
	Assoc         int     `json:"assoc"`
	DetectionLoss float64 `json:"detectionLossPct"`
	RecoveryLoss  float64 `json:"recoveryLossPct"`
	TotalInsts    int64   `json:"totalInsts"`
}

// EncodeCoverage converts sweep cells into the wire form.
func EncodeCoverage(cells []CoverageCell) []CoverageJSON {
	out := make([]CoverageJSON, 0, len(cells))
	for _, c := range cells {
		out = append(out, CoverageJSON{
			Benchmark:     c.Benchmark,
			Config:        c.Config.String(),
			Entries:       c.Config.Entries,
			Assoc:         c.Config.Assoc,
			DetectionLoss: c.Result.DetectionLoss,
			RecoveryLoss:  c.Result.RecoveryLoss,
			TotalInsts:    c.Result.TotalInsts,
		})
	}
	return out
}

// CampaignJSON is the wire form of one Figure 8 row.
type CampaignJSON struct {
	Benchmark  string             `json:"benchmark"`
	Total      int                `json:"faults"`
	Categories map[string]float64 `json:"categoryPct"`
	Detected   float64            `json:"itrDetectedPct"`
}

// EncodeCampaigns converts Figure 8 rows into the wire form.
func EncodeCampaigns(rows []Figure8Row) []CampaignJSON {
	out := make([]CampaignJSON, 0, len(rows))
	for _, r := range rows {
		cj := CampaignJSON{
			Benchmark:  r.Benchmark,
			Total:      r.Result.Total,
			Categories: make(map[string]float64),
			Detected:   r.Result.DetectedPct(),
		}
		for _, c := range fault.Categories() {
			cj.Categories[string(c)] = r.Result.Pct(c)
		}
		out = append(out, cj)
	}
	return out
}

// WriteJSON writes any exportable value as indented JSON.
func WriteJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("write json: %w", err)
	}
	return nil
}
