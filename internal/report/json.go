package report

import (
	"encoding/json"
	"fmt"
	"io"

	"itr/internal/fault"
	"itr/internal/stats"
)

// JSON export of experiment results, so regenerated figures can be archived,
// diffed across runs, and consumed by external plotting tools. All types
// marshal through stable, documented shapes.

// SeriesJSON is the wire form of one figure series.
type SeriesJSON struct {
	Name   string    `json:"name"`
	X      []float64 `json:"x"`
	Y      []float64 `json:"y"`
	XLabel string    `json:"xLabel,omitempty"`
	YLabel string    `json:"yLabel,omitempty"`
}

// FigureJSON is the wire form of one regenerated figure.
type FigureJSON struct {
	ID     string       `json:"id"`    // e.g. "figure1"
	Title  string       `json:"title"` // paper caption
	Series []SeriesJSON `json:"series"`
}

// EncodeSeries converts stats series into the wire form.
func EncodeSeries(id, title, xLabel, yLabel string, series []stats.Series) FigureJSON {
	fig := FigureJSON{ID: id, Title: title}
	for _, s := range series {
		sj := SeriesJSON{Name: s.Name, XLabel: xLabel, YLabel: yLabel}
		for _, p := range s.Points {
			sj.X = append(sj.X, p.X)
			sj.Y = append(sj.Y, p.Y)
		}
		fig.Series = append(fig.Series, sj)
	}
	return fig
}

// CoverageJSON is the wire form of one Figures 6/7 cell.
type CoverageJSON struct {
	Benchmark     string  `json:"benchmark"`
	Config        string  `json:"config"`
	Entries       int     `json:"entries"`
	Assoc         int     `json:"assoc"`
	DetectionLoss float64 `json:"detectionLossPct"`
	RecoveryLoss  float64 `json:"recoveryLossPct"`
	TotalInsts    int64   `json:"totalInsts"`
}

// EncodeCoverage converts sweep cells into the wire form.
func EncodeCoverage(cells []CoverageCell) []CoverageJSON {
	out := make([]CoverageJSON, 0, len(cells))
	for _, c := range cells {
		out = append(out, CoverageJSON{
			Benchmark:     c.Benchmark,
			Config:        c.Config.String(),
			Entries:       c.Config.Entries,
			Assoc:         c.Config.Assoc,
			DetectionLoss: c.Result.DetectionLoss,
			RecoveryLoss:  c.Result.RecoveryLoss,
			TotalInsts:    c.Result.TotalInsts,
		})
	}
	return out
}

// CampaignJSON is the wire form of one Figure 8 row.
type CampaignJSON struct {
	Benchmark  string             `json:"benchmark"`
	Total      int                `json:"faults"`
	Categories map[string]float64 `json:"categoryPct"`
	Detected   float64            `json:"itrDetectedPct"`
}

// EncodeCampaigns converts Figure 8 rows into the wire form.
func EncodeCampaigns(rows []Figure8Row) []CampaignJSON {
	out := make([]CampaignJSON, 0, len(rows))
	for _, r := range rows {
		cj := CampaignJSON{
			Benchmark:  r.Benchmark,
			Total:      r.Result.Total,
			Categories: make(map[string]float64),
			Detected:   r.Result.DetectedPct(),
		}
		for _, c := range fault.Categories() {
			cj.Categories[string(c)] = r.Result.Pct(c)
		}
		out = append(out, cj)
	}
	return out
}

// Table1JSON is the wire form of one Table 1 row.
type Table1JSON struct {
	Benchmark string `json:"benchmark"`
	Suite     string `json:"suite"` // "SPECint" or "SPECfp"
	Measured  int    `json:"measured"`
	Paper     int    `json:"paper"`
}

// EncodeTable1 converts Table 1 rows into the wire form.
func EncodeTable1(rows []Table1Row) []Table1JSON {
	out := make([]Table1JSON, 0, len(rows))
	for _, r := range rows {
		suite := "SPECint"
		if r.FP {
			suite = "SPECfp"
		}
		out = append(out, Table1JSON{Benchmark: r.Benchmark, Suite: suite, Measured: r.Measured, Paper: r.Paper})
	}
	return out
}

// Figure9JSON is the wire form of one Figure 9 energy row (mJ).
type Figure9JSON struct {
	Benchmark      string  `json:"benchmark"`
	ITRSinglePort  float64 `json:"itrSinglePortMJ"`
	ITRDualPort    float64 `json:"itrDualPortMJ"`
	ICacheRedFetch float64 `json:"icacheRedundantFetchMJ"`
}

// EncodeFigure9 converts Figure 9 rows into the wire form.
func EncodeFigure9(rows []Figure9Row) []Figure9JSON {
	out := make([]Figure9JSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, Figure9JSON{
			Benchmark:      r.Benchmark,
			ITRSinglePort:  r.ITRSinglePort,
			ITRDualPort:    r.ITRDualPort,
			ICacheRedFetch: r.ICacheRedFetch,
		})
	}
	return out
}

// PerfJSON is the wire form of one frontend-protection performance row.
type PerfJSON struct {
	Benchmark        string  `json:"benchmark"`
	BaseIPC          float64 `json:"baseIPC"`
	ITRIPC           float64 `json:"itrIPC"`
	DualDecodeIPC    float64 `json:"dualDecodeIPC"`
	TimeRedundantIPC float64 `json:"timeRedundantIPC"`
}

// EncodePerf converts perf-comparison rows into the wire form.
func EncodePerf(rows []PerfRow) []PerfJSON {
	out := make([]PerfJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, PerfJSON{
			Benchmark:        r.Benchmark,
			BaseIPC:          r.BaseIPC,
			ITRIPC:           r.ITRIPC,
			DualDecodeIPC:    r.DualDecodeIPC,
			TimeRedundantIPC: r.TimeRedundantIPC,
		})
	}
	return out
}

// HeadlineJSON is the wire form of the Section 3 headline summary.
type HeadlineJSON struct {
	AvgDetectionLossPct float64 `json:"avgDetectionLossPct"`
	MaxDetectionLossPct float64 `json:"maxDetectionLossPct"`
	MaxDetectionName    string  `json:"maxDetectionBenchmark"`
	AvgRecoveryLossPct  float64 `json:"avgRecoveryLossPct"`
	MaxRecoveryLossPct  float64 `json:"maxRecoveryLossPct"`
	MaxRecoveryName     string  `json:"maxRecoveryBenchmark"`
}

// EncodeHeadline converts the headline summary into the wire form.
func EncodeHeadline(h Headline) HeadlineJSON {
	return HeadlineJSON{
		AvgDetectionLossPct: h.AvgDetectionLoss,
		MaxDetectionLossPct: h.MaxDetectionLoss,
		MaxDetectionName:    h.MaxDetectionName,
		AvgRecoveryLossPct:  h.AvgRecoveryLoss,
		MaxRecoveryLossPct:  h.MaxRecoveryLoss,
		MaxRecoveryName:     h.MaxRecoveryName,
	}
}

// ArtifactJSON bundles every machine-readable artifact one command run
// produced; empty sections are omitted from the encoding, so each command
// writes exactly what it printed.
type ArtifactJSON struct {
	Figures   []FigureJSON   `json:"figures,omitempty"`
	Table1    []Table1JSON   `json:"table1,omitempty"`
	Coverage  []CoverageJSON `json:"coverage,omitempty"`
	Headline  *HeadlineJSON  `json:"headline,omitempty"`
	Campaigns []CampaignJSON `json:"campaigns,omitempty"`
	Energy    []Figure9JSON  `json:"energy,omitempty"`
	Perf      []PerfJSON     `json:"perf,omitempty"`
}

// Empty reports whether no artifact section is populated.
func (a ArtifactJSON) Empty() bool {
	return len(a.Figures) == 0 && len(a.Table1) == 0 && len(a.Coverage) == 0 &&
		a.Headline == nil && len(a.Campaigns) == 0 && len(a.Energy) == 0 && len(a.Perf) == 0
}

// WriteJSON writes any exportable value as indented JSON.
func WriteJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("write json: %w", err)
	}
	return nil
}
