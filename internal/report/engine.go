package report

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount holds the configured pool width; 0 means "use GOMAXPROCS".
var workerCount atomic.Int32

// SetWorkers sets the worker-pool width used by every report entry point
// (sweeps, figures, tables). n <= 0 restores the default, GOMAXPROCS.
// Output is deterministic regardless of the width: results are written into
// index-addressed slots, so parallel runs are bit-identical to SetWorkers(1).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCount.Store(int32(n))
}

// Workers returns the effective worker-pool width.
func Workers() int {
	if n := int(workerCount.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(i) for every i in [0, n) on a pool of Workers() goroutines.
// Work items are claimed from a shared atomic counter, so ordering of
// *execution* is nondeterministic — callers must write results into slot i of
// a pre-sized slice, never append. The returned error is the lowest-index
// failure, making error selection deterministic too. With an effective width
// of one the loop runs inline (no goroutines), which is also the fast path
// for tiny n.
func forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
