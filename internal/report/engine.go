package report

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Engine runs report entry points on an explicitly configured worker pool.
// The zero value is ready to use: a full-width pool (GOMAXPROCS) with no
// observer. Engines carry no mutable state, so one engine may serve many
// concurrent callers and two engines never interfere — worker width is
// per-engine configuration, not process-global.
type Engine struct {
	// Workers bounds the pool width; <= 0 means GOMAXPROCS. Output is
	// deterministic regardless of the width: results are written into
	// index-addressed slots, so parallel runs are bit-identical to
	// Workers: 1.
	Workers int
	// OnItem, when non-nil, is invoked after each completed unit of work
	// (one benchmark characterization, one sweep cell replay, one fault
	// campaign) with a label — the benchmark name — and its wall-clock
	// duration. It is called from pool goroutines concurrently, so it must
	// be safe for concurrent use.
	OnItem func(label string, elapsed time.Duration)
	// Probe, when non-nil, accumulates sweep telemetry (streams generated,
	// events replayed, cells completed) across every entry point run on this
	// engine. Updated concurrently from pool goroutines.
	Probe *Probe
}

// workers resolves the effective pool width.
func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// item runs fn, reporting its duration to OnItem under the given label.
func (e *Engine) item(label string, fn func() error) error {
	if e.OnItem == nil {
		return fn()
	}
	start := time.Now()
	err := fn()
	e.OnItem(label, time.Since(start))
	return err
}

// forEach runs fn(i) for every i in [0, n) on a pool of workers()
// goroutines. Work items are claimed from a shared atomic counter, so
// ordering of *execution* is nondeterministic — callers must write results
// into slot i of a pre-sized slice, never append. The returned error is the
// lowest-index failure, making error selection deterministic too. With an
// effective width of one the loop runs inline (no goroutines), which is
// also the fast path for tiny n.
func (e *Engine) forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := e.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// defaultEngine backs the package-level convenience wrappers: full-width
// pool, no observer.
var defaultEngine = &Engine{}
