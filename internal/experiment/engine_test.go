package experiment

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"itr/internal/fault"
)

// TestManifestGolden pins the manifest wire shape against a checked-in
// fixture: any field rename, omission or reordering shows up as a diff.
func TestManifestGolden(t *testing.T) {
	m := Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Spec: Spec{
			Kind: "fault", Bench: "art", Seed: 0x17b,
			Campaign: &CampaignSpec{Faults: 12, Window: 250_000},
		},
		Version:          "0123456789ab+dirty",
		Started:          "2026-01-02T03:04:05Z",
		WallClockSeconds: 2.5,
		Workers:          4,
		SnapshotInterval: fault.DefaultSnapshotInterval,
		Stages: []StageTiming{
			{Name: "campaign", Seconds: 2.4, OutputDigest: "00000000deadbeef"},
		},
		Benchmarks: []BenchTiming{
			{Name: "art", Seconds: 2.3, Items: 1},
		},
		Telemetry: Telemetry{
			CyclesSimulated:     1000,
			DecodeEvents:        4000,
			SnapshotRestores:    24,
			SnapshotCaptures:    6,
			SnapshotPagesShared: 5,
			SnapshotPagesCopied: 3,
			SnapshotBytesCopied: 12288,
			Injections:          12,
			InjectionsPerSec:    4.8,
		},
	}
	got, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "manifest.golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate by updating %s to the got bytes): %v\ngot:\n%s", golden, err, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("manifest encoding drifted from %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestEngineFaultRun drives a tiny real campaign through the engine and
// checks the manifest records what actually happened: the spec echo, the
// stage list, per-benchmark timings and the injection telemetry.
func TestEngineFaultRun(t *testing.T) {
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "manifest.json")
	spec := Spec{
		Kind:  "fault",
		Bench: "art",
		Campaign: &CampaignSpec{
			Faults: 3,
			Window: 20_000,
		},
		ManifestPath: manifestPath,
	}

	var out, errw bytes.Buffer
	eng := New(spec, &out, &errw)
	if err := eng.Run(); err != nil {
		t.Fatalf("engine run: %v\nstderr: %s", err, errw.String())
	}
	if !strings.Contains(out.String(), "Figure 8. Fault injection results: 3 faults/benchmark, 20000-cycle window") {
		t.Errorf("missing campaign header in output:\n%s", out.String())
	}

	blob, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatalf("manifest parse: %v", err)
	}
	if m.SchemaVersion != ManifestSchemaVersion {
		t.Errorf("schemaVersion = %d; want %d", m.SchemaVersion, ManifestSchemaVersion)
	}
	if m.Spec.Kind != "fault" || m.Spec.Bench != "art" || m.Spec.Campaign == nil || m.Spec.Campaign.Faults != 3 {
		t.Errorf("spec echo wrong: %+v", m.Spec)
	}
	if m.Spec.Seed != 0x17b {
		t.Errorf("spec echo should carry the normalized seed, got %#x", m.Spec.Seed)
	}
	if m.SnapshotInterval != fault.DefaultSnapshotInterval {
		t.Errorf("snapshotInterval = %d; want default %d", m.SnapshotInterval, fault.DefaultSnapshotInterval)
	}
	if len(m.Stages) != 1 || m.Stages[0].Name != "campaign" {
		t.Fatalf("stages = %+v; want one campaign stage", m.Stages)
	}
	if m.Stages[0].Seconds <= 0 || len(m.Stages[0].OutputDigest) != 16 {
		t.Errorf("campaign stage not timed/digested: %+v", m.Stages[0])
	}
	if len(m.Benchmarks) != 1 || m.Benchmarks[0].Name != "art" || m.Benchmarks[0].Items != 1 {
		t.Errorf("benchmarks = %+v; want one art entry", m.Benchmarks)
	}
	tl := m.Telemetry
	if tl.Injections != 3 {
		t.Errorf("injections = %d; want 3 (one per requested fault)", tl.Injections)
	}
	if tl.InjectionsPerSec <= 0 {
		t.Errorf("injectionsPerSec = %v; want > 0", tl.InjectionsPerSec)
	}
	if tl.CyclesSimulated <= 0 || tl.DecodeEvents <= 0 {
		t.Errorf("pipeline telemetry empty: %+v", tl)
	}
	if tl.SnapshotCaptures <= 0 {
		t.Errorf("snapshotCaptures = %d; want > 0 (pilot drops snapshots at the default interval)", tl.SnapshotCaptures)
	}
	if tl.SnapshotPagesCopied < 0 || tl.SnapshotBytesCopied != tl.SnapshotPagesCopied*4096 {
		t.Errorf("COW telemetry inconsistent: %d pages, %d bytes", tl.SnapshotPagesCopied, tl.SnapshotBytesCopied)
	}
	if m.WallClockSeconds <= 0 {
		t.Errorf("wallClockSeconds = %v; want > 0", m.WallClockSeconds)
	}
}

// TestEngineManifestNone checks "-manifest none" leaves no file behind.
func TestEngineManifestNone(t *testing.T) {
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	spec := Spec{
		Kind:         "sim",
		Sim:          &SimSpec{Cycles: 20_000},
		ManifestPath: "none",
	}
	var out bytes.Buffer
	if err := New(spec, &out, &out).Run(); err != nil {
		t.Fatalf("engine run: %v", err)
	}
	if !strings.Contains(out.String(), "ITR checker:") {
		t.Errorf("sim output missing checker stats:\n%s", out.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("manifest none still wrote files: %v", entries)
	}
}

// TestEngineRunSpecFile exercises the `itr run -spec` path end to end
// through Main: a spec file on disk drives the engine, CLI overrides win.
func TestEngineRunSpecFile(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "sim.json")
	manifestPath := filepath.Join(dir, "m.json")
	blob := `{"kind": "sim", "sim": {"cycles": 20000}}`
	if err := os.WriteFile(specPath, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errw bytes.Buffer
	code := Main([]string{"run", "-spec", specPath, "-manifest", manifestPath}, &out, &errw)
	if code != 0 {
		t.Fatalf("itr run exit = %d\nstderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "cycles:") {
		t.Errorf("run output missing sim report:\n%s", out.String())
	}
	blob2, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatalf("manifest override not honored: %v", err)
	}
	var m Manifest
	if err := json.Unmarshal(blob2, &m); err != nil {
		t.Fatal(err)
	}
	if m.Spec.Kind != "sim" || m.Spec.Sim == nil || m.Spec.Sim.Cycles != 20_000 {
		t.Errorf("spec echo wrong: %+v", m.Spec)
	}
	if m.Telemetry.CyclesSimulated <= 0 {
		t.Errorf("sim telemetry empty: %+v", m.Telemetry)
	}

	// A missing -spec flag is a usage error, not a crash.
	errw.Reset()
	if code := Main([]string{"run"}, &out, &errw); code != 1 {
		t.Errorf("run without -spec exit = %d; want 1", code)
	}
}
