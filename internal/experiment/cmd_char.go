package experiment

import (
	"flag"
	"fmt"

	"itr/internal/report"
	"itr/internal/stats"
	"itr/internal/workload"
)

func bindChar(fs *flag.FlagSet, s *Spec) {
	fs.IntVar(&s.Char.Fig, "fig", s.Char.Fig, "figure to reproduce (1, 2, 3 or 4); 0 prints everything")
	fs.BoolVar(&s.Char.Table1, "table1", s.Char.Table1, "print Table 1 (static trace counts)")
	fs.Int64Var(&s.Budget, "budget", s.Budget, "dynamic-instruction budget per benchmark (scaled per profile)")
	fs.StringVar(&s.JSONPath, "json", s.JSONPath, "also write the regenerated figures and Table 1 to this JSON file")
	fs.IntVar(&s.Workers, "workers", s.Workers, "worker-pool width for per-benchmark characterization (0 = GOMAXPROCS); results are identical at any width")
}

// runChar reproduces the paper's program-repetition characterization:
// Figures 1-2 (dynamic instructions contributed by the top-k static
// traces), Figures 3-4 (dynamic instructions by trace repeat distance) and
// Table 1 (static trace counts).
func runChar(e *Engine) error {
	s := e.Spec
	rep := e.reportEngine(s.Workers)
	w := e.out
	var art report.ArtifactJSON
	all := s.Char.Fig == 0 && !s.Char.Table1

	if s.Char.Fig == 1 || all {
		if err := e.stage("figure1", func() error {
			series, err := rep.PopularityFigure(workload.IntSuite(), 100, 1000, s.Budget)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Figure 1. Dynamic instructions per 100 static traces (integer benchmarks).")
			fmt.Fprintln(w, "Cumulative % of dynamic instructions from the top-k static traces:")
			fmt.Fprint(w, stats.RenderSeries("top-k", series, "%.0f"))
			fmt.Fprintln(w)
			art.Figures = append(art.Figures, report.EncodeSeries("figure1", "Dynamic instructions per 100 static traces (int)", "top-k traces", "% dyn insts", series))
			return nil
		}); err != nil {
			return err
		}
	}
	if s.Char.Fig == 2 || all {
		if err := e.stage("figure2", func() error {
			series, err := rep.PopularityFigure(workload.FPSuite(), 50, 500, s.Budget)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Figure 2. Dynamic instructions per 50 static traces (floating point benchmarks).")
			fmt.Fprint(w, stats.RenderSeries("top-k", series, "%.0f"))
			fmt.Fprintln(w)
			art.Figures = append(art.Figures, report.EncodeSeries("figure2", "Dynamic instructions per 50 static traces (fp)", "top-k traces", "% dyn insts", series))
			return nil
		}); err != nil {
			return err
		}
	}
	if s.Char.Fig == 3 || all {
		if err := e.stage("figure3", func() error {
			series, err := rep.DistanceFigure(workload.IntSuite(), s.Budget)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Figure 3. Distance between trace repetitions (integer benchmarks).")
			fmt.Fprintln(w, "Cumulative % of dynamic instructions from repetitions within distance d:")
			fmt.Fprint(w, stats.RenderSeries("< d", series, "%.0f"))
			fmt.Fprintln(w)
			art.Figures = append(art.Figures, report.EncodeSeries("figure3", "Distance between trace repetitions (int)", "< distance", "% dyn insts", series))
			return nil
		}); err != nil {
			return err
		}
	}
	if s.Char.Fig == 4 || all {
		if err := e.stage("figure4", func() error {
			series, err := rep.DistanceFigure(workload.FPSuite(), s.Budget)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Figure 4. Distance between trace repetitions (floating point benchmarks).")
			fmt.Fprint(w, stats.RenderSeries("< d", series, "%.0f"))
			fmt.Fprintln(w)
			art.Figures = append(art.Figures, report.EncodeSeries("figure4", "Distance between trace repetitions (fp)", "< distance", "% dyn insts", series))
			return nil
		}); err != nil {
			return err
		}
	}
	if s.Char.Table1 || all {
		if err := e.stage("table1", func() error {
			rows, err := rep.Table1(s.Budget)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Table 1. Number of static traces for SPEC.")
			t := stats.NewTable("benchmark", "suite", "measured", "paper")
			for _, r := range rows {
				suite := "SPECint"
				if r.FP {
					suite = "SPECfp"
				}
				t.AddRow(r.Benchmark, suite, r.Measured, r.Paper)
			}
			fmt.Fprint(w, t.String())
			art.Table1 = report.EncodeTable1(rows)
			return nil
		}); err != nil {
			return err
		}
	}
	return e.writeArtifact(art)
}
