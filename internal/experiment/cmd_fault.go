package experiment

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"itr/internal/detect"
	"itr/internal/fault"
	"itr/internal/obs"
	"itr/internal/report"
	"itr/internal/stats"
	"itr/internal/workload"
)

func bindFault(fs *flag.FlagSet, s *Spec) {
	fs.IntVar(&s.Campaign.Faults, "faults", s.Campaign.Faults, "injections per benchmark (paper: 1000)")
	fs.Int64Var(&s.Campaign.Window, "window", s.Campaign.Window, "observation window in cycles (paper: 1,000,000)")
	fs.StringVar(&s.Bench, "bench", s.Bench, "restrict to one benchmark")
	fs.Uint64Var(&s.Seed, "seed", s.Seed, "campaign seed")
	fs.StringVar(&s.Detector, "detector", s.Detector,
		fmt.Sprintf("detection backend: %s (default itr)", strings.Join(detect.Names(), ", ")))
	fs.Var(negBool{&s.Campaign.NoVerify}, "verify", "confirm each recoverable detection with the full protocol")
	fs.BoolVar(&s.Campaign.Fields, "fields", s.Campaign.Fields, "also tally injections by Table 2 field")
	fs.BoolVar(&s.Campaign.Checkpoint, "checkpoint", s.Campaign.Checkpoint, "enable coarse-grain checkpointing in verify runs (Section 2.3 extension)")
	fs.IntVar(&s.Campaign.PCFaults, "pc", s.Campaign.PCFaults, "run a Section 2.5 PC-fault study with this many injections per benchmark")
	fs.IntVar(&s.Campaign.CacheFaults, "cache", s.Campaign.CacheFaults, "run a Section 2.4 ITR-cache fault study with this many injections per benchmark")
	fs.IntVar(&s.Campaign.RenameFaults, "rename", s.Campaign.RenameFaults, "run the rename-protection study with this many injections per benchmark")
	fs.StringVar(&s.JSONPath, "json", s.JSONPath, "also write the Figure 8 campaign results to this JSON file")
	fs.IntVar(&s.Workers, "workers", s.Workers, "injection worker-pool width per campaign (0 = GOMAXPROCS); results are identical at any width")
	fs.Int64Var(&s.Campaign.SnapshotInterval, "snapshot-interval", s.Campaign.SnapshotInterval,
		fmt.Sprintf("decode events between pilot snapshots for campaign fast-forward (0 = default %d, negative = disabled); results are identical either way", fault.DefaultSnapshotInterval))
	fs.BoolVar(&s.Campaign.LatencyHist, "latency-hist", s.Campaign.LatencyHist,
		"print the detection-latency distribution (cycles and trace length from injection to detection)")
	fs.BoolVar(&s.Campaign.Exact, "exact", s.Campaign.Exact,
		"disable decided-outcome early exits: simulate every injection's full window (reference path; categories are identical either way)")
}

// printLatencyHist renders one detection-latency histogram as a log2-bucket
// table with cumulative percentages and quantile summaries. Latency
// observations are deterministic per spec (worker order only permutes them,
// and the buckets are order-blind), so the table is digest-stable.
func printLatencyHist(w io.Writer, title string, h *obs.Hist) {
	fmt.Fprintf(w, "\n%s\n", title)
	n := h.Count()
	if n == 0 {
		fmt.Fprintln(w, "  (no detections)")
		return
	}
	t := stats.NewTable("latency <=", "count", "cum (%)")
	var cum int64
	for _, b := range h.Buckets() {
		cum += b.Count
		t.AddRow(b.Hi, b.Count, 100*float64(cum)/float64(n))
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "p50 <= %d, p90 <= %d, p99 <= %d over %d detections (mean %.1f)\n",
		h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), n, h.Mean())
}

// runFault reproduces the paper's Section 4 fault-injection study
// (Figure 8): random single-bit flips on the decode signals of Table 2,
// classified against a golden lockstep simulator into the ten outcome
// categories, plus the optional PC-fault, cache-fault and rename studies.
func runFault(e *Engine) error {
	s := e.Spec
	w := e.out

	if !detect.Known(s.Detector) {
		return fmt.Errorf("unknown detector backend %q (have %s)", s.Detector, strings.Join(detect.Names(), ", "))
	}
	if s.Campaign.CacheFaults > 0 && detect.Canonical(s.Detector) != detect.NameITR {
		return fmt.Errorf("-cache studies the ITR signature cache and requires -detector=itr")
	}

	cfg := fault.DefaultCampaignConfig()
	cfg.Faults = s.Campaign.Faults
	cfg.Seed = s.Seed
	cfg.Workers = s.Workers
	cfg.Progress = e.camp
	cfg.Experiment.WindowCycles = s.Campaign.Window
	cfg.Experiment.Verify = !s.Campaign.NoVerify
	cfg.Experiment.Checkpoint = s.Campaign.Checkpoint
	cfg.Experiment.SnapshotInterval = s.Campaign.SnapshotInterval
	cfg.Experiment.Exact = s.Campaign.Exact
	cfg.Experiment.Pipeline.Detector = s.Detector
	cfg.Experiment.Pipeline.Probe = e.probe
	cfg.Tracer = e.tracer
	latCycles, latInsts := e.latencyHists(detect.Canonical(s.Detector))
	cfg.LatencyCycles, cfg.LatencyInsts = latCycles, latInsts
	e.manifest.SnapshotInterval = cfg.Experiment.EffectiveSnapshotInterval()

	profiles := workload.CoverageSuite()
	if s.Bench != "" {
		p, err := workload.ByName(s.Bench)
		if err != nil {
			return err
		}
		profiles = []workload.Profile{p}
	}

	// Parallelism lives in the per-injection campaign pool; keep the
	// benchmark-level report pool serial so the two do not multiply.
	rep := e.reportEngine(1)

	// The default backend keeps the historical header byte-for-byte; rivals
	// name themselves instead of the ITR cache geometry.
	backendDesc := "ITR cache 2-way/1024"
	if name := detect.Canonical(s.Detector); name != detect.NameITR {
		backendDesc = "detector " + name
	}

	var rows []report.Figure8Row
	if err := e.stage("campaign", func() error {
		fmt.Fprintf(w, "Figure 8. Fault injection results: %d faults/benchmark, %d-cycle window, %s.\n",
			cfg.Faults, cfg.Experiment.WindowCycles, backendDesc)
		start := time.Now()
		var err error
		rows, err = rep.Figure8(profiles, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, report.Figure8Table(rows).String())
		if s.JSONPath != "" {
			f, err := os.Create(s.JSONPath)
			if err != nil {
				return err
			}
			if err := report.WriteJSON(f, report.EncodeCampaigns(rows)); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		// The elapsed time is the one nondeterministic part of the stage
		// output; route it around the digest so reruns hash identically.
		fmt.Fprintf(w, "(%d campaigns", len(rows))
		fmt.Fprintf(e.rawOut(), " in %v", time.Since(start).Round(time.Millisecond))
		fmt.Fprintln(w, ")")
		snaps, pages, owned := 0, 0, 0
		for _, r := range rows {
			snaps += r.Result.Snapshots
			pages += r.Result.SnapshotPages
			owned += r.Result.SnapshotOwnedPages
		}
		if snaps > 0 {
			fmt.Fprintf(w, "(snapshot fast-forward: %d pilot snapshots retained, %d page refs sharing %d distinct pages ≈ %.1f MiB resident, copy-on-write)\n",
				snaps, pages, owned, float64(owned)*4096/(1<<20))
		}
		var bud fault.Budget
		for _, r := range rows {
			b := r.Result.Budget
			bud.CyclesSimulated += b.CyclesSimulated
			bud.CyclesSaved += b.CyclesSaved
			bud.DecidedEarly += b.DecidedEarly
			bud.VerifyForked += b.VerifyForked
			bud.ProofFallbacks += b.ProofFallbacks
			e.addBudget(r.Result.Budget)
		}
		if bud.DecidedEarly > 0 {
			total := bud.CyclesSimulated + bud.CyclesSaved
			fmt.Fprintf(w, "(decided-outcome: %d injections settled early, %d verify runs forked; %d of %d window cycles skipped ≈ %.1f%%",
				bud.DecidedEarly, bud.VerifyForked, bud.CyclesSaved, total,
				100*float64(bud.CyclesSaved)/float64(total))
			if bud.ProofFallbacks > 0 {
				fmt.Fprintf(w, "; %d proof fallbacks", bud.ProofFallbacks)
			}
			fmt.Fprintln(w, ")")
		}
		fmt.Fprintln(w, "(paper averages: 95.4% ITR-detected; ITR+Mask 59.4%, ITR+SDC+R 32%, ITR+wdog+R 3%,")
		fmt.Fprintln(w, " ITR+SDC+D 1%, Undet+SDC 2.6%, Undet+Mask 1.8%, spc+SDC 0.1%, Undet+wdog 0.1%)")

		verified, attempted := 0, 0
		for _, r := range rows {
			verified += r.Result.RecoveryConfirmed
			attempted += r.Result.RecoveryAttempted
		}
		if attempted > 0 {
			fmt.Fprintf(w, "Recovery verification: %d/%d recoverable detections recovered by the full protocol.\n",
				verified, attempted)
		}

		if s.Campaign.Checkpoint {
			recovered := 0
			for _, r := range rows {
				recovered += r.Result.CheckpointRecovered
			}
			fmt.Fprintf(w, "Checkpoint extension: %d detection-only faults recovered by rollback.\n", recovered)
		}

		if s.Campaign.Fields {
			fmt.Fprintln(w, "\nInjections by Table 2 field:")
			for _, r := range rows {
				fmt.Fprintf(w, "  %-8s", r.Benchmark)
				for field, n := range r.Result.ByField {
					fmt.Fprintf(w, " %s:%d", field, n)
				}
				fmt.Fprintln(w)
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if s.Campaign.LatencyHist {
		if err := e.stage("latency-hist", func() error {
			printLatencyHist(w, "Detection latency (cycles from injection to first detection):", latCycles)
			printLatencyHist(w, "Trace length at detection (instructions committed since injection):", latInsts)
			return nil
		}); err != nil {
			return err
		}
	}

	if s.Campaign.PCFaults > 0 {
		if err := e.stage("pc-study", func() error {
			fmt.Fprintf(w, "\nSection 2.5 PC-fault study (%d injections/benchmark):\n", s.Campaign.PCFaults)
			fmt.Fprintf(w, "%-10s %8s %14s %6s %16s %8s %6s\n",
				"benchmark", "itr(%)", "branch-rep(%)", "spc(%)", "undetect-sdc(%)", "mask(%)", "wdog(%)")
			for _, p := range profiles {
				prog, err := workload.CachedProgram(p)
				if err != nil {
					return err
				}
				res, err := fault.RunPCFaultCampaign(prog, cfg.Experiment, s.Campaign.PCFaults, s.Seed)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-10s %8.1f %14.1f %6.1f %16.1f %8.1f %6.1f\n", p.Name,
					res.Pct(fault.PCDetectedITR), res.Pct(fault.PCDetectedBranch),
					res.Pct(fault.PCDetectedSpc), res.Pct(fault.PCUndetectedSDC),
					res.Pct(fault.PCMasked), res.Pct(fault.PCDeadlock))
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if s.Campaign.CacheFaults > 0 {
		if err := e.stage("cache-study", func() error {
			fmt.Fprintf(w, "\nSection 2.4 ITR-cache fault study (%d injections/benchmark):\n", s.Campaign.CacheFaults)
			fmt.Fprintf(w, "%-10s %-10s %22s %18s %10s %5s\n",
				"benchmark", "parity", "false-machine-check(%)", "parity-repaired(%)", "masked(%)", "sdc")
			for _, p := range profiles {
				prog, err := workload.CachedProgram(p)
				if err != nil {
					return err
				}
				for _, parity := range []bool{false, true} {
					res, err := fault.RunCacheFaultCampaign(prog, cfg.Experiment, parity, s.Campaign.CacheFaults, s.Seed)
					if err != nil {
						return err
					}
					pct := func(o fault.CacheFaultOutcome) float64 {
						if res.Total == 0 {
							return 0
						}
						return 100 * float64(res.Counts[o]) / float64(res.Total)
					}
					fmt.Fprintf(w, "%-10s %-10v %22.1f %18.1f %10.1f %5d\n", p.Name, parity,
						pct(fault.CacheFalseMachineCheck), pct(fault.CacheParityRepaired),
						pct(fault.CacheMasked), res.SDC)
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if s.Campaign.RenameFaults > 0 {
		if err := e.stage("rename-study", func() error {
			fmt.Fprintf(w, "\nRename-unit protection study (%d injections/benchmark):\n", s.Campaign.RenameFaults)
			fmt.Fprintf(w, "%-10s %18s %18s %14s %16s %14s\n",
				"benchmark", "sdc w/o ext (%)", "frontend-det (%)", "ext-det (%)", "ext-recover (%)", "sdc w/ ext (%)")
			for _, p := range profiles {
				prog, err := workload.CachedProgram(p)
				if err != nil {
					return err
				}
				res, err := fault.RunRenameCampaign(prog, cfg.Experiment, s.Campaign.RenameFaults, s.Seed)
				if err != nil {
					return err
				}
				pct := func(n int) float64 {
					if res.Total == 0 {
						return 0
					}
					return 100 * float64(n) / float64(res.Total)
				}
				fmt.Fprintf(w, "%-10s %18.1f %18.1f %14.1f %16.1f %14.1f\n", p.Name,
					res.SDCWithoutPct(), pct(res.FrontendDetected), res.DetectedPct(),
					pct(res.RecoveredWithExtension), pct(res.SDCWithExtension))
			}
			fmt.Fprintln(w, "(frontend ITR is blind to pure rename-index faults; the rename-signature")
			fmt.Fprintln(w, " extension closes the gap, per the paper's Section 1 discussion of RNA)")
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
