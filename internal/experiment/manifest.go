package experiment

import (
	"runtime/debug"
)

// ManifestSchemaVersion identifies the manifest wire shape; bump it on any
// incompatible change so downstream consumers can dispatch.
const ManifestSchemaVersion = 1

// Manifest is the reproducible record written alongside every run: the spec
// that produced it, the code version, wall clock per stage, effective worker
// width, per-benchmark timings, digests of the rendered output, and the
// simulation telemetry accumulated by the pipeline and campaign probes.
type Manifest struct {
	SchemaVersion int `json:"schemaVersion"`
	// Spec echoes the (normalized) spec; feeding it back through
	// `itr run -spec` reproduces the run.
	Spec Spec `json:"spec"`
	// Version is a git-describe-style identifier of the code that ran
	// (VCS revision when stamped into the build, else "unknown").
	Version string `json:"version"`
	// Started is the run's UTC start time, RFC 3339.
	Started string `json:"started"`
	// WallClockSeconds is the whole run, including manifest bookkeeping.
	WallClockSeconds float64 `json:"wallClockSeconds"`
	// Workers is the effective worker width the run resolved to.
	Workers int `json:"workers"`
	// SnapshotInterval is the resolved campaign fast-forward interval
	// (fault runs only; 0 = fast path disabled).
	SnapshotInterval int64 `json:"snapshotInterval,omitempty"`
	// Stages times each sequential phase of the run and digests the bytes
	// it printed, so two runs can be compared stage by stage.
	Stages []StageTiming `json:"stages"`
	// Benchmarks aggregates per-benchmark work (sorted by name; one entry
	// per benchmark that contributed timed work units).
	Benchmarks []BenchTiming `json:"benchmarks,omitempty"`
	// Detectors records per-backend results for shootout runs (one entry per
	// backend, in the order run).
	Detectors []DetectorRun `json:"detectors,omitempty"`
	// Telemetry is the probe snapshot at the end of the run.
	Telemetry Telemetry `json:"telemetry"`
	// TelemetryAddr is the resolved listen address the run's live telemetry
	// endpoint actually bound (spec telemetryAddr; empty when disabled).
	TelemetryAddr string `json:"telemetryAddr,omitempty"`
}

// DetectorRun is one backend's slice of a shootout: its Figure 8 coverage,
// the detector telemetry it accumulated, and its Figure 9-style energy
// estimate.
type DetectorRun struct {
	Name string `json:"name"`
	// DetectedPct is the campaign-average detection coverage (percent of
	// injected faults the backend detected inside the window).
	DetectedPct float64 `json:"detectedPct"`
	// Injections and Detections count completed injection experiments and
	// detector-observed mismatches across the backend's campaigns.
	Injections int64 `json:"injections"`
	Detections int64 `json:"detections"`
	// Polls counts detector poll checks during the backend's campaigns.
	Polls int64 `json:"polls"`
	// EnergyMJ is the backend's detection-energy estimate over the spec's
	// Scale instructions (energy.DetectorEnergyMJ).
	EnergyMJ float64 `json:"energyMJ"`
	// LatencyP50Cycles and LatencyP99Cycles are detection-latency quantile
	// upper bounds in pipeline cycles (injection to first detection, over
	// the backend's detected faults); 0 when nothing was detected.
	LatencyP50Cycles int64 `json:"latencyP50Cycles"`
	LatencyP99Cycles int64 `json:"latencyP99Cycles"`
}

// StageTiming is one sequential phase of a run.
type StageTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// OutputDigest is the FNV-64a of the bytes the stage wrote to stdout —
	// a cheap result digest: identical output implies identical digest.
	OutputDigest string `json:"outputDigest"`
}

// BenchTiming aggregates one benchmark's timed work units (characterization
// runs, sweep cell replays, fault campaigns).
type BenchTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// Items is the number of work units timed (e.g. sweep cells).
	Items int `json:"items"`
}

// Telemetry is the observability snapshot surfaced in the manifest and the
// -progress ticker.
type Telemetry struct {
	// CyclesSimulated and DecodeEvents aggregate over every pipeline the
	// run created (pilots, observe runs, verify runs, sim runs).
	CyclesSimulated int64 `json:"cyclesSimulated"`
	DecodeEvents    int64 `json:"decodeEvents"`
	// SnapshotRestores counts campaign fast-forward resumes.
	SnapshotRestores int64 `json:"snapshotRestores"`
	// SnapshotCaptures counts pilot snapshots taken. Snapshot memory is
	// copy-on-write: each capture shares its unchanged pages with earlier
	// captures (SnapshotPagesShared sums those per capture), and the write
	// path copies a page only on the first store after a capture
	// (SnapshotPagesCopied / SnapshotBytesCopied count that actual copying —
	// the whole memory cost of the snapshot series beyond page-table walks).
	SnapshotCaptures    int64 `json:"snapshotCaptures,omitempty"`
	SnapshotPagesShared int64 `json:"snapshotPagesShared,omitempty"`
	SnapshotPagesCopied int64 `json:"snapshotPagesCopied,omitempty"`
	SnapshotBytesCopied int64 `json:"snapshotBytesCopied,omitempty"`
	// StreamsGenerated counts functional event-stream generations (workload
	// cache misses); EventsReplayed counts trace events traversed by the
	// sweep engine (one count per stream pass, however many cache
	// configurations fan out from it); SweepCells counts completed
	// (benchmark, configuration) sweep cells.
	StreamsGenerated int64 `json:"streamsGenerated,omitempty"`
	EventsReplayed   int64 `json:"eventsReplayed,omitempty"`
	SweepCells       int64 `json:"sweepCells,omitempty"`
	// Injections counts completed fault-injection experiments;
	// InjectionsPerSec is Injections over the run's wall clock.
	Injections       int64   `json:"injections,omitempty"`
	InjectionsPerSec float64 `json:"injectionsPerSec,omitempty"`
	// DetectorPolls counts detection-backend poll checks at commit;
	// DetectorDetections counts mismatches the backends observed.
	DetectorPolls      int64 `json:"detectorPolls,omitempty"`
	DetectorDetections int64 `json:"detectorDetections,omitempty"`
	// The decided-outcome engine's accounting (fault/shootout runs):
	// InjectionCyclesSimulated is the pipeline cycles injection runs
	// actually simulated; InjectionCyclesSaved is the window cycles skipped
	// by early-settled classifications and verify-run forks;
	// InjectionsDecidedEarly counts observe runs that exited before their
	// window; VerifyRunsForked counts verify runs resumed from a pre-fault
	// fork of the observe machine; ProofFallbacks counts convergence proofs
	// that failed (those runs simulated their full window).
	InjectionCyclesSimulated int64 `json:"injectionCyclesSimulated,omitempty"`
	InjectionCyclesSaved     int64 `json:"injectionCyclesSaved,omitempty"`
	InjectionsDecidedEarly   int64 `json:"injectionsDecidedEarly,omitempty"`
	VerifyRunsForked         int64 `json:"verifyRunsForked,omitempty"`
	ProofFallbacks           int64 `json:"proofFallbacks,omitempty"`
	// CyclesSavedByClass breaks InjectionCyclesSaved down by Figure 8
	// outcome category.
	CyclesSavedByClass map[string]int64 `json:"cyclesSavedByClass,omitempty"`
}

// Version returns a git-describe-style identifier for the running build:
// the VCS revision (12 hex digits, "+dirty" when the tree was modified)
// when the toolchain stamped one, else "unknown".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if modified == "true" {
		rev += "+dirty"
	}
	return rev
}
