// Package experiment is the config-driven engine behind the unified `itr`
// CLI: a typed experiment Spec with JSON round-trip and flag binding, an
// Engine resolving specs into the report/fault/energy entry points, and a
// Manifest written alongside every run (spec echo, version, per-stage wall
// clock, worker width, per-benchmark timings, result digests, telemetry).
//
// The six paper commands (char, coverage, dump, energy, fault, sim) are
// subcommands registered here. Batch drivers build a Spec directly (or load
// one from JSON with ParseSpec) and hand it to an Engine — the CLI is just
// one thin producer of specs.
package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"itr/internal/workload"
)

// Spec declares one experiment scenario: which artifact to regenerate, over
// which workloads, at which scale, and with how much parallelism. The zero
// value of every field means "the command's documented default"; Normalized
// resolves them. Specs round-trip through JSON, so a run's manifest echoes
// a spec that reproduces it.
type Spec struct {
	// Kind selects the experiment: char, coverage, dump, energy, fault or
	// sim (the former standalone binaries).
	Kind string `json:"kind"`

	// Bench restricts the run to one benchmark (empty = the command's
	// default suite; dump and sim default to bzip).
	Bench string `json:"bench,omitempty"`
	// Budget is the dynamic-instruction budget per benchmark, scaled per
	// profile (0 = the command's default).
	Budget int64 `json:"budget,omitempty"`
	// Warmup primes the ITR cache before measurement (coverage only).
	Warmup int64 `json:"warmup,omitempty"`
	// Workers is the worker-pool width (0 = GOMAXPROCS). Results are
	// identical at any width. For fault it sizes the per-injection pool;
	// for sim it caps runtime parallelism.
	Workers int `json:"workers,omitempty"`
	// Seed makes fault-injection sampling reproducible (fault only;
	// 0 = the paper campaign seed 0x17b).
	Seed uint64 `json:"seed,omitempty"`
	// Detector selects the detection backend driven through the pipeline's
	// Detector seam: "itr" (default), "reptfd" (chunked replay) or "dme"
	// (divergent dual execution). Consulted by fault and sim; shootout runs
	// its own backend list instead.
	Detector string `json:"detector,omitempty"`

	// Exactly one of the sections below (matching Kind) is consulted;
	// Normalized allocates it.
	Char     *CharSpec     `json:"char,omitempty"`
	Coverage *CoverageSpec `json:"coverage,omitempty"`
	Dump     *DumpSpec     `json:"dump,omitempty"`
	Energy   *EnergySpec   `json:"energy,omitempty"`
	Campaign *CampaignSpec `json:"campaign,omitempty"`
	Sim      *SimSpec      `json:"sim,omitempty"`
	Shootout *ShootoutSpec `json:"shootout,omitempty"`

	// JSONPath, when set, also writes the run's machine-readable artifacts
	// there (a report.ArtifactJSON bundle; fault keeps its legacy
	// campaign-array shape).
	JSONPath string `json:"jsonPath,omitempty"`
	// ManifestPath is where the run manifest is written. Empty means the
	// default, itr-<kind>-manifest.json in the working directory; "none"
	// disables the manifest.
	ManifestPath string `json:"manifestPath,omitempty"`
	// Progress enables a live telemetry ticker on stderr.
	Progress bool `json:"progress,omitempty"`
	// CPUProfile and MemProfile, when set, write pprof profiles of the run
	// there (CPU profile spanning the experiment; heap profile captured after
	// it finishes). Like the manifest they default to the working directory
	// when given bare file names.
	CPUProfile string `json:"cpuProfile,omitempty"`
	MemProfile string `json:"memProfile,omitempty"`
	// TelemetryAddr, when set, serves live run telemetry over HTTP for the
	// duration of the run: Prometheus-text metrics at /metrics, expvar at
	// /debug/vars, and net/http/pprof under /debug/pprof/. ":0" picks a
	// free port; the resolved address is echoed in the manifest.
	TelemetryAddr string `json:"telemetryAddr,omitempty"`
	// TraceOut, when set, writes a Chrome trace-event JSON timeline of the
	// run there (snapshot activity, detections, injections, sweep cells,
	// stage spans) — loadable in Perfetto or chrome://tracing.
	TraceOut string `json:"traceOut,omitempty"`

	// SpecPath is CLI plumbing for `itr run -spec`; it is not part of the
	// declarative spec.
	SpecPath string `json:"-"`
}

// CharSpec parameterizes the characterization command (Figures 1-4, Table 1).
type CharSpec struct {
	// Fig is the figure to reproduce (1-4); 0 prints everything.
	Fig int `json:"fig,omitempty"`
	// Table1 prints Table 1 (static trace counts).
	Table1 bool `json:"table1,omitempty"`
}

// CoverageSpec parameterizes the Section 3 design-space exploration
// (Figures 6-7).
type CoverageSpec struct {
	// Metric is "detection", "recovery" or "both" (the default).
	Metric string `json:"metric,omitempty"`
	// Headline prints the Section 3 summary for 2-way/1024 instead of the
	// full sweep.
	Headline bool `json:"headline,omitempty"`
	// Ablation also evaluates checked-LRU replacement and miss fallback.
	Ablation bool `json:"ablation,omitempty"`
}

// DumpSpec parameterizes the program inspector.
type DumpSpec struct {
	// Dis disassembles instructions starting at From, N of them.
	Dis  bool   `json:"dis,omitempty"`
	From uint64 `json:"from,omitempty"`
	N    int    `json:"n,omitempty"`
	// Traces prints the static trace table with signatures.
	Traces bool `json:"traces,omitempty"`
}

// EnergySpec parameterizes the Section 5 cost comparison (Figure 9).
type EnergySpec struct {
	// Scale scales access counts to this many instructions. 0 = default
	// 200M (the paper's window), negative = report at the measured budget.
	Scale int64 `json:"scale,omitempty"`
	// Baselines prints the full approach comparison per benchmark.
	Baselines bool `json:"baselines,omitempty"`
	// Perf measures IPC for each protection scheme on the cycle-level core,
	// over PerfCycles cycles per run (0 = default 300k).
	Perf       bool  `json:"perf,omitempty"`
	PerfCycles int64 `json:"perfCycles,omitempty"`
}

// CampaignSpec parameterizes the Section 4 fault-injection study (Figure 8).
type CampaignSpec struct {
	// Faults is the number of injections per benchmark (0 = default 100;
	// paper: 1000).
	Faults int `json:"faults,omitempty"`
	// Window is the observation window in cycles (0 = default 250k;
	// paper: 1M).
	Window int64 `json:"window,omitempty"`
	// NoVerify skips the full-protocol confirmation pass (verification is
	// on by default, as in the paper).
	NoVerify bool `json:"noVerify,omitempty"`
	// Fields also tallies injections by Table 2 field.
	Fields bool `json:"fields,omitempty"`
	// Checkpoint enables Section 2.3 checkpointed recovery in verify runs.
	Checkpoint bool `json:"checkpoint,omitempty"`
	// PCFaults, CacheFaults and RenameFaults run the Section 2.5 PC-fault,
	// Section 2.4 ITR-cache-fault and rename-protection side studies with
	// that many injections per benchmark (0 = skip).
	PCFaults     int `json:"pcFaults,omitempty"`
	CacheFaults  int `json:"cacheFaults,omitempty"`
	RenameFaults int `json:"renameFaults,omitempty"`
	// SnapshotInterval is the decode-event spacing of pilot snapshots for
	// campaign fast-forward (0 = fault.DefaultSnapshotInterval, negative =
	// disabled); results are identical either way.
	SnapshotInterval int64 `json:"snapshotInterval,omitempty"`
	// LatencyHist prints the detection-latency distribution after the
	// campaign: log2-bucket tables of cycles and trace length (committed
	// instructions) from injection to first detection, with quantiles.
	LatencyHist bool `json:"latencyHist,omitempty"`
	// Exact disables the decided-outcome engine: every injection simulates
	// its full observation window instead of stopping once its
	// classification is settled. Categories and counts are identical either
	// way; exact mode exists as the reference path for identity checks.
	Exact bool `json:"exact,omitempty"`
}

// ShootoutSpec parameterizes the detector-backend comparison: the Figure 8
// campaign run once per backend plus the Figure 9-style energy estimate,
// reported side by side in one table.
type ShootoutSpec struct {
	// Faults is the number of injections per benchmark per backend
	// (0 = default 100).
	Faults int `json:"faults,omitempty"`
	// Window is the observation window in cycles (0 = default 250k).
	Window int64 `json:"window,omitempty"`
	// Backends is the comma-separated backend list (empty = all:
	// "itr,reptfd,dme").
	Backends string `json:"backends,omitempty"`
	// Scale scales the energy estimate to this many committed instructions
	// (0 = default 200M, the paper's window).
	Scale int64 `json:"scale,omitempty"`
	// NoVerify skips each campaign's full-protocol confirmation pass.
	NoVerify bool `json:"noVerify,omitempty"`
	// SnapshotInterval is the campaign fast-forward spacing (as in fault).
	SnapshotInterval int64 `json:"snapshotInterval,omitempty"`
	// SweepChunks additionally sweeps each backend's detection-granularity
	// knob (RepTFD chunk length, DME address offset) and prints a
	// per-configuration outcome table alongside the main shootout.
	SweepChunks bool `json:"sweepChunks,omitempty"`
}

// SimSpec parameterizes a single run on the ITR-protected cycle-level core.
type SimSpec struct {
	// Asm runs an assembly source file instead of a benchmark; Profile runs
	// a custom workload profile (JSON).
	Asm     string `json:"asm,omitempty"`
	Profile string `json:"profile,omitempty"`
	// Cycles is the cycle budget (0 = default 500k).
	Cycles int64 `json:"cycles,omitempty"`
	// PrintSignals prints the Table 2 decode-signal specification and exits.
	PrintSignals bool `json:"printSignals,omitempty"`
	// NoITR disables the ITR checker (baseline core).
	NoITR bool `json:"noITR,omitempty"`
	// Inject injects a fault at this decode event (0 = none), flipping Bit
	// (0 = default bit 36, the immediate field).
	Inject int64 `json:"inject,omitempty"`
	Bit    int   `json:"bit,omitempty"`
}

// Normalized resolves zero fields to the Kind's documented defaults and
// allocates the Kind's section, so engine code can read the spec without
// nil checks or default logic. Normalizing twice is a no-op.
func (s Spec) Normalized() Spec {
	switch s.Kind {
	case "char":
		if s.Char == nil {
			s.Char = &CharSpec{}
		}
		if s.Budget == 0 {
			s.Budget = workload.DefaultBudget
		}
	case "coverage":
		if s.Coverage == nil {
			s.Coverage = &CoverageSpec{}
		}
		if s.Coverage.Metric == "" {
			s.Coverage.Metric = "both"
		}
		if s.Budget == 0 {
			s.Budget = workload.DefaultBudget
		}
	case "dump":
		if s.Dump == nil {
			s.Dump = &DumpSpec{}
		}
		if s.Dump.N == 0 {
			s.Dump.N = 32
		}
		if s.Budget == 0 {
			s.Budget = 1_000_000
		}
		if s.Bench == "" {
			s.Bench = "bzip"
		}
	case "energy":
		if s.Energy == nil {
			s.Energy = &EnergySpec{}
		}
		if s.Energy.Scale == 0 {
			s.Energy.Scale = 200_000_000
		}
		if s.Energy.PerfCycles == 0 {
			s.Energy.PerfCycles = 300_000
		}
		if s.Budget == 0 {
			s.Budget = workload.DefaultBudget
		}
	case "fault":
		if s.Campaign == nil {
			s.Campaign = &CampaignSpec{}
		}
		if s.Campaign.Faults == 0 {
			s.Campaign.Faults = 100
		}
		if s.Campaign.Window == 0 {
			s.Campaign.Window = 250_000
		}
		if s.Seed == 0 {
			s.Seed = 0x17b
		}
	case "shootout":
		if s.Shootout == nil {
			s.Shootout = &ShootoutSpec{}
		}
		if s.Shootout.Faults == 0 {
			s.Shootout.Faults = 100
		}
		if s.Shootout.Window == 0 {
			s.Shootout.Window = 250_000
		}
		if s.Shootout.Backends == "" {
			s.Shootout.Backends = "itr,reptfd,dme"
		}
		if s.Shootout.Scale == 0 {
			s.Shootout.Scale = 200_000_000
		}
		if s.Budget == 0 {
			s.Budget = workload.DefaultBudget
		}
		if s.Seed == 0 {
			s.Seed = 0x17b
		}
	case "sim":
		if s.Sim == nil {
			s.Sim = &SimSpec{}
		}
		if s.Sim.Cycles == 0 {
			s.Sim.Cycles = 500_000
		}
		if s.Sim.Bit == 0 {
			s.Sim.Bit = 36
		}
		if s.Bench == "" {
			s.Bench = "bzip"
		}
	}
	return s
}

// DefaultSpec returns the normalized spec for a kind — the exact defaults
// the original paper commands used, which double as the subcommands' flag
// defaults.
func DefaultSpec(kind string) Spec {
	return Spec{Kind: kind}.Normalized()
}

// ParseSpec reads a JSON spec, rejecting unknown fields so typos in
// hand-written spec files fail loudly instead of silently running the
// default scenario.
func ParseSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("parse spec: %w", err)
	}
	if s.Kind == "" {
		return Spec{}, fmt.Errorf("parse spec: missing \"kind\"")
	}
	if Lookup(s.Kind) == nil || s.Kind == "run" {
		return Spec{}, fmt.Errorf("parse spec: unknown kind %q", s.Kind)
	}
	return s, nil
}
