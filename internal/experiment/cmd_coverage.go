package experiment

import (
	"flag"
	"fmt"

	"itr/internal/cache"
	"itr/internal/core"
	"itr/internal/report"
	"itr/internal/workload"
)

func bindCoverage(fs *flag.FlagSet, s *Spec) {
	fs.StringVar(&s.Coverage.Metric, "metric", s.Coverage.Metric, "detection, recovery or both")
	fs.StringVar(&s.Bench, "bench", s.Bench, "restrict to one benchmark (default: the 11 shown in Figures 6-7)")
	fs.BoolVar(&s.Coverage.Headline, "headline", s.Coverage.Headline, "print the Section 3 summary for 2-way/1024")
	fs.BoolVar(&s.Coverage.Ablation, "ablation", s.Coverage.Ablation, "also evaluate checked-LRU replacement and miss fallback")
	fs.Int64Var(&s.Budget, "budget", s.Budget, "dynamic-instruction budget per benchmark")
	fs.Int64Var(&s.Warmup, "warmup", s.Warmup, "instructions to warm the ITR cache before measurement (paper: 900M skip)")
	fs.StringVar(&s.JSONPath, "json", s.JSONPath, "also write the sweep cells to this JSON file")
	fs.IntVar(&s.Workers, "workers", s.Workers, "worker-pool width for the sweep (0 = GOMAXPROCS); results are identical at any width")
}

// runCoverage reproduces the paper's Section 3 design-space exploration:
// loss in fault detection coverage (Figure 6) and loss in fault recovery
// coverage (Figure 7) across ITR cache sizes and associativities, plus the
// Section 3 headline summary for the 2-way/1024 configuration.
func runCoverage(e *Engine) error {
	s := e.Spec
	rep := e.reportEngine(s.Workers)
	w := e.out
	var art report.ArtifactJSON

	if s.Coverage.Headline {
		return e.stage("headline", func() error {
			h, err := rep.HeadlineCoverage(s.Budget)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Section 3 headline (2-way set-associative, 1024 signatures):")
			fmt.Fprintf(w, "  loss in fault detection coverage: %.1f%% average, %.1f%% max (%s)\n",
				h.AvgDetectionLoss, h.MaxDetectionLoss, h.MaxDetectionName)
			fmt.Fprintf(w, "  loss in fault recovery  coverage: %.1f%% average, %.1f%% max (%s)\n",
				h.AvgRecoveryLoss, h.MaxRecoveryLoss, h.MaxRecoveryName)
			fmt.Fprintln(w, "  (paper: 1.3% avg / 8.2% max detection; 2.5% avg / 15% max recovery, both vortex)")
			hj := report.EncodeHeadline(h)
			art.Headline = &hj
			return e.writeArtifact(art)
		})
	}

	profiles := workload.CoverageSuite()
	if s.Bench != "" {
		p, err := workload.ByName(s.Bench)
		if err != nil {
			return err
		}
		profiles = []workload.Profile{p}
	}

	var cells []report.CoverageCell
	if err := e.stage("sweep", func() error {
		var err error
		cells, err = rep.CoverageSweepWarm(profiles, core.DesignSpace(), s.Budget, s.Warmup)
		if err != nil {
			return err
		}
		report.SortCellsByBenchmark(cells)

		if s.Coverage.Metric == "detection" || s.Coverage.Metric == "both" {
			fmt.Fprintln(w, "Figure 6. Loss in fault detection coverage (% of all dynamic instructions).")
			fmt.Fprint(w, report.CoverageTable(cells, "detection").String())
			fmt.Fprintln(w)
		}
		if s.Coverage.Metric == "recovery" || s.Coverage.Metric == "both" {
			fmt.Fprintln(w, "Figure 7. Loss in fault recovery coverage (% of all dynamic instructions).")
			fmt.Fprint(w, report.CoverageTable(cells, "recovery").String())
			fmt.Fprintln(w)
		}
		return nil
	}); err != nil {
		return err
	}

	if s.Coverage.Ablation {
		if err := e.stage("ablation", func() error {
			return runCoverageAblation(e, rep, profiles, s.Budget)
		}); err != nil {
			return err
		}
	}

	art.Coverage = report.EncodeCoverage(cells)
	return e.writeArtifact(art)
}

// runCoverageAblation evaluates the two Section 2.3 / Section 3 extensions
// at the headline configuration: checked-first LRU replacement and
// redundant fetch-on-miss.
func runCoverageAblation(e *Engine, rep *report.Engine, profiles []workload.Profile, budget int64) error {
	w := e.out
	base := core.DefaultConfig()
	checked := base
	checked.Replacement = cache.ReplCheckedLRU
	fallback := base
	fallback.MissFallback = true

	cells, err := rep.CoverageSweep(profiles, []core.Config{base, checked, fallback}, budget)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation (2-way/1024): LRU vs checked-first LRU vs miss fallback.")
	fmt.Fprintf(w, "%-10s %-22s %12s %12s %14s\n", "benchmark", "variant", "det loss (%)", "rec loss (%)", "refetch insts")
	for _, c := range cells {
		variant := "lru"
		switch {
		case c.Config.Replacement == cache.ReplCheckedLRU:
			variant = "checked-lru"
		case c.Config.MissFallback:
			variant = "lru+miss-fallback"
		}
		fmt.Fprintf(w, "%-10s %-22s %12.2f %12.2f %14d\n",
			c.Benchmark, variant, c.Result.DetectionLoss, c.Result.RecoveryLoss, c.Result.FallbackInsts)
	}
	return nil
}
