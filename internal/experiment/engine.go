package experiment

import (
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"itr/internal/fault"
	"itr/internal/obs"
	"itr/internal/pipeline"
	"itr/internal/report"
)

// Engine resolves a Spec into the report/fault/energy entry points, timing
// each stage and writing a Manifest beside the run. Engines are single-use:
// build one per run with New.
type Engine struct {
	// Spec is the scenario to run; it is normalized by Run.
	Spec Spec
	// Out receives the rendered tables and figures (the legacy binaries'
	// stdout). Err receives progress ticks and diagnostics.
	Out io.Writer
	Err io.Writer

	out     *digestWriter
	probe   *pipeline.Probe
	sweep   *report.Probe
	camp    *fault.Progress
	started time.Time

	// reg names every live counter/histogram for the /metrics and expvar
	// views; tracer owns the run's event rings. stageRing records stage
	// spans (engine goroutine only); sweepRing records sweep-cell
	// completions (written under mu from recordItem).
	reg       *obs.Registry
	tracer    *obs.Tracer
	stageRing *obs.Ring
	sweepRing *obs.Ring

	mu       sync.Mutex
	bench    map[string]*BenchTiming
	budget   fault.Budget
	manifest Manifest
}

// addBudget folds one campaign's decided-outcome accounting into the run
// totals surfaced by the manifest telemetry. Safe to call concurrently with
// the -progress ticker's telemetrySnapshot.
func (e *Engine) addBudget(b fault.Budget) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.budget.CyclesSimulated += b.CyclesSimulated
	e.budget.CyclesSaved += b.CyclesSaved
	e.budget.DecidedEarly += b.DecidedEarly
	e.budget.VerifyForked += b.VerifyForked
	e.budget.ProofFallbacks += b.ProofFallbacks
	for cat, cb := range b.ByClass {
		if e.budget.ByClass == nil {
			e.budget.ByClass = make(map[fault.Category]fault.ClassBudget)
		}
		acc := e.budget.ByClass[cat]
		acc.Simulated += cb.Simulated
		acc.Saved += cb.Saved
		e.budget.ByClass[cat] = acc
	}
}

// New builds an engine for spec writing to out (tables) and errw
// (progress/diagnostics). Nil writers default to os.Stdout / os.Stderr.
func New(spec Spec, out, errw io.Writer) *Engine {
	if out == nil {
		out = os.Stdout
	}
	if errw == nil {
		errw = os.Stderr
	}
	return &Engine{Spec: spec, Out: out, Err: errw}
}

// Run executes the spec's experiment and writes the manifest. The rendered
// output is byte-identical to the pre-engine standalone binaries.
func (e *Engine) Run() error {
	e.Spec = e.Spec.Normalized()
	cmd := Lookup(e.Spec.Kind)
	if cmd == nil || cmd.Run == nil {
		return fmt.Errorf("unknown experiment kind %q", e.Spec.Kind)
	}
	e.out = &digestWriter{w: e.Out}
	e.probe = &pipeline.Probe{}
	e.sweep = &report.Probe{}
	e.camp = &fault.Progress{}
	e.bench = make(map[string]*BenchTiming)
	e.started = time.Now()
	e.reg = obs.NewRegistry()
	e.registerMetrics()
	e.tracer = obs.NewTracer(0)
	e.stageRing = e.tracer.Ring("engine")
	e.sweepRing = e.tracer.Ring("sweep")
	e.manifest = Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Spec:          e.Spec,
		Version:       Version(),
		Started:       e.started.UTC().Format(time.RFC3339),
		Workers:       resolveWorkers(e.Spec.Workers),
	}
	if e.Spec.TelemetryAddr != "" {
		srv, err := obs.Serve(e.Spec.TelemetryAddr, e.reg)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		defer srv.Close()
		e.manifest.TelemetryAddr = srv.Addr
		fmt.Fprintf(e.Err, "telemetry: serving /metrics, /debug/vars, /debug/pprof/ on %s\n", srv.Addr)
	}
	stopProfile, err := e.startCPUProfile()
	if err != nil {
		return err
	}
	if e.Spec.Progress {
		stop := e.startProgress()
		defer stop()
	}
	if err := cmd.Run(e); err != nil {
		stopProfile()
		return err
	}
	stopProfile()
	if err := e.writeMemProfile(); err != nil {
		return err
	}
	if err := e.writeTrace(); err != nil {
		return err
	}
	e.finish()
	return e.writeManifest()
}

// registerMetrics names the engine's probe counters in the registry. The
// names are the public /metrics contract; the manifest's telemetry keys
// are derived from the same counters in telemetrySnapshot.
func (e *Engine) registerMetrics() {
	e.reg.RegisterCounter("itr_cycles_total", &e.probe.Cycles)
	e.reg.RegisterCounter("itr_decode_events_total", &e.probe.DecodeEvents)
	e.reg.RegisterCounter("itr_snapshot_restores_total", &e.probe.SnapshotRestores)
	e.reg.RegisterCounter("itr_snapshot_captures_total", &e.probe.SnapshotCaptures)
	e.reg.RegisterCounter("itr_snapshot_pages_shared_total", &e.probe.SnapshotPagesShared)
	e.reg.RegisterCounter("itr_snapshot_pages_copied_total", &e.probe.SnapshotPagesCopied)
	e.reg.RegisterCounter("itr_snapshot_bytes_copied_total", &e.probe.SnapshotBytesCopied)
	e.reg.RegisterCounter("itr_detector_polls_total", &e.probe.DetectorPolls)
	e.reg.RegisterCounter("itr_detector_detections_total", &e.probe.DetectorDetections)
	e.reg.RegisterCounter("itr_sweep_streams_generated_total", &e.sweep.StreamsGenerated)
	e.reg.RegisterCounter("itr_sweep_events_replayed_total", &e.sweep.EventsReplayed)
	e.reg.RegisterCounter("itr_sweep_cells_total", &e.sweep.CellsCompleted)
	e.reg.RegisterCounter("itr_injections_total", &e.camp.Injections)
	e.reg.RegisterCounter("itr_injection_cycles_simulated_total", &e.camp.CyclesSimulated)
	e.reg.RegisterCounter("itr_injection_cycles_saved_total", &e.camp.CyclesSaved)
	e.reg.RegisterGaugeFunc("itr_uptime_seconds", func() int64 {
		return int64(time.Since(e.started).Seconds())
	})
	e.reg.RegisterGaugeFunc("itr_trace_events_total", func() int64 {
		if e.tracer == nil {
			return 0
		}
		return e.tracer.TotalEvents()
	})
}

// latencyHists returns the per-backend detection-latency histograms
// (cycles and committed instructions from injection to first detection),
// creating and registering them on first use.
func (e *Engine) latencyHists(backend string) (cycles, insts *obs.Hist) {
	cycles = e.reg.Hist(fmt.Sprintf("itr_detection_latency_cycles{backend=%q}", backend))
	insts = e.reg.Hist(fmt.Sprintf("itr_detection_latency_insts{backend=%q}", backend))
	return cycles, insts
}

// writeTrace exports the run's ring buffers as a Chrome trace-event JSON
// timeline when the spec requests one.
func (e *Engine) writeTrace() error {
	if e.Spec.TraceOut == "" {
		return nil
	}
	f, err := os.Create(e.Spec.TraceOut)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := e.tracer.WriteChromeJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// startCPUProfile begins CPU profiling when the spec requests it, returning
// an idempotent stop function (a no-op one when profiling is off).
func (e *Engine) startCPUProfile() (func(), error) {
	if e.Spec.CPUProfile == "" {
		return func() {}, nil
	}
	f, err := os.Create(e.Spec.CPUProfile)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile captures a post-run heap profile when the spec requests
// one. The GC beforehand makes the profile reflect live retention (snapshot
// series, golden streams, arenas) rather than transient garbage.
func (e *Engine) writeMemProfile() error {
	if e.Spec.MemProfile == "" {
		return nil
	}
	f, err := os.Create(e.Spec.MemProfile)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// Manifest returns the run record; valid after Run returns nil.
func (e *Engine) Manifest() Manifest { return e.manifest }

// resolveWorkers maps the spec convention (<= 0 means GOMAXPROCS) to the
// effective width recorded in the manifest.
func resolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// reportEngine builds a report pool of the given width wired to the
// engine's per-benchmark timing observer and sweep-telemetry probe.
func (e *Engine) reportEngine(workers int) *report.Engine {
	return &report.Engine{Workers: workers, OnItem: e.recordItem, Probe: e.sweep}
}

// recordItem aggregates one timed work unit into the per-benchmark table.
// It is called concurrently from report pool goroutines.
func (e *Engine) recordItem(label string, elapsed time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	bt := e.bench[label]
	if bt == nil {
		bt = &BenchTiming{Name: label}
		e.bench[label] = bt
	}
	bt.Seconds += elapsed.Seconds()
	bt.Items++
	// The sweep ring is written here only, and always under mu, which
	// serializes the pool goroutines into a single-writer stream.
	e.sweepRing.Emit(obs.EvSweepCell, e.sweep.CellsCompleted.Load(), elapsed.Microseconds())
}

// stage runs one sequential phase, recording its wall clock and a digest of
// everything it printed.
func (e *Engine) stage(name string, fn func() error) error {
	h := fnv.New64a()
	e.out.setHash(h)
	start := time.Now()
	err := fn()
	e.out.setHash(nil)
	e.stageRing.EmitSpan(obs.EvStage, start, 0, int64(len(e.manifest.Stages)))
	e.manifest.Stages = append(e.manifest.Stages, StageTiming{
		Name:         name,
		Seconds:      time.Since(start).Seconds(),
		OutputDigest: fmt.Sprintf("%016x", h.Sum64()),
	})
	return err
}

// finish seals the manifest: total wall clock, sorted per-benchmark
// timings, and the final telemetry snapshot.
func (e *Engine) finish() {
	e.manifest.WallClockSeconds = time.Since(e.started).Seconds()

	names := make([]string, 0, len(e.bench))
	for name := range e.bench {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e.manifest.Benchmarks = append(e.manifest.Benchmarks, *e.bench[name])
	}

	e.manifest.Telemetry = e.telemetrySnapshot()
	t := &e.manifest.Telemetry
	if t.Injections > 0 && e.manifest.WallClockSeconds > 0 {
		t.InjectionsPerSec = float64(t.Injections) / e.manifest.WallClockSeconds
	}
}

// telemetrySnapshot folds the live counters into the manifest's telemetry
// shape. The -progress ticker and the sealed manifest both read through
// here, so the two views can never drift apart.
func (e *Engine) telemetrySnapshot() Telemetry {
	var t Telemetry
	t.CyclesSimulated = e.probe.Cycles.Load()
	t.DecodeEvents = e.probe.DecodeEvents.Load()
	t.SnapshotRestores = e.probe.SnapshotRestores.Load()
	t.SnapshotCaptures = e.probe.SnapshotCaptures.Load()
	t.SnapshotPagesShared = e.probe.SnapshotPagesShared.Load()
	t.SnapshotPagesCopied = e.probe.SnapshotPagesCopied.Load()
	t.SnapshotBytesCopied = e.probe.SnapshotBytesCopied.Load()
	t.StreamsGenerated = e.sweep.StreamsGenerated.Load()
	t.EventsReplayed = e.sweep.EventsReplayed.Load()
	t.SweepCells = e.sweep.CellsCompleted.Load()
	t.Injections = e.camp.Injections.Load()
	t.DetectorPolls = e.probe.DetectorPolls.Load()
	t.DetectorDetections = e.probe.DetectorDetections.Load()
	t.InjectionCyclesSimulated = e.camp.CyclesSimulated.Load()
	t.InjectionCyclesSaved = e.camp.CyclesSaved.Load()
	e.mu.Lock()
	t.InjectionsDecidedEarly = e.budget.DecidedEarly
	t.VerifyRunsForked = e.budget.VerifyForked
	t.ProofFallbacks = e.budget.ProofFallbacks
	if len(e.budget.ByClass) > 0 {
		t.CyclesSavedByClass = make(map[string]int64, len(e.budget.ByClass))
		for cat, cb := range e.budget.ByClass {
			t.CyclesSavedByClass[string(cat)] = cb.Saved
		}
	}
	e.mu.Unlock()
	return t
}

// writeManifest writes the run record to the spec's manifest path
// (default itr-<kind>-manifest.json; "none" disables).
func (e *Engine) writeManifest() error {
	path := e.Spec.ManifestPath
	if path == "none" {
		return nil
	}
	if path == "" {
		path = fmt.Sprintf("itr-%s-manifest.json", e.Spec.Kind)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if err := report.WriteJSON(f, e.manifest); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}

// writeArtifact writes the run's machine-readable artifact bundle to the
// spec's JSON path, if one was requested.
func (e *Engine) writeArtifact(art report.ArtifactJSON) error {
	if e.Spec.JSONPath == "" {
		return nil
	}
	f, err := os.Create(e.Spec.JSONPath)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f, art); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// startProgress launches the -progress ticker: a live telemetry line on Err
// every two seconds. The returned stop function is safe to call once.
func (e *Engine) startProgress() func() {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				elapsed := time.Since(e.started).Seconds()
				snap := e.telemetrySnapshot()
				line := fmt.Sprintf("progress: %.0fs: %d cycles, %d decode events", elapsed, snap.CyclesSimulated, snap.DecodeEvents)
				if snap.SnapshotRestores > 0 {
					line += fmt.Sprintf(", %d restores", snap.SnapshotRestores)
				}
				if snap.SnapshotCaptures > 0 {
					line += fmt.Sprintf(", %d snapshots (%.1f MiB cow-copied)",
						snap.SnapshotCaptures, float64(snap.SnapshotBytesCopied)/(1<<20))
				}
				if snap.SweepCells > 0 || snap.EventsReplayed > 0 {
					line += fmt.Sprintf(", %d sweep cells (%d streams, %d events replayed)",
						snap.SweepCells, snap.StreamsGenerated, snap.EventsReplayed)
				}
				if snap.Injections > 0 {
					line += fmt.Sprintf(", %d injections (%.1f/s)", snap.Injections, float64(snap.Injections)/elapsed)
				}
				if snap.InjectionCyclesSaved > 0 {
					total := snap.InjectionCyclesSimulated + snap.InjectionCyclesSaved
					line += fmt.Sprintf(", %d cycles saved early (%.0f%% of windows)",
						snap.InjectionCyclesSaved, 100*float64(snap.InjectionCyclesSaved)/float64(total))
				}
				if snap.DetectorPolls > 0 {
					line += fmt.Sprintf(", %d detector polls (%d detections)",
						snap.DetectorPolls, snap.DetectorDetections)
				}
				fmt.Fprintln(e.Err, line)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// digestWriter tees writes into the stage's hash (when one is installed) on
// the way to the real output. The mutex covers hash swaps racing with
// writes; experiment output itself is written from the engine goroutine.
type digestWriter struct {
	mu sync.Mutex
	w  io.Writer
	h  hash.Hash64
}

func (d *digestWriter) setHash(h hash.Hash64) {
	d.mu.Lock()
	d.h = h
	d.mu.Unlock()
}

func (d *digestWriter) Write(p []byte) (int, error) {
	d.mu.Lock()
	if d.h != nil {
		d.h.Write(p)
	}
	d.mu.Unlock()
	return d.w.Write(p)
}

// rawWriter wraps a digestWriter, bypassing the stage hash: bytes reach the
// output but never the digest.
type rawWriter struct{ d *digestWriter }

func (r rawWriter) Write(p []byte) (int, error) { return r.d.w.Write(p) }

// rawOut returns a writer to Out that bypasses the current stage's output
// digest. Stages print nondeterministic decoration (wall-clock timings)
// through it, so two runs of the same spec produce byte-identical digests —
// exactly, not "modulo the timing line".
func (e *Engine) rawOut() io.Writer { return rawWriter{d: e.out} }
