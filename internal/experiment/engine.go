package experiment

import (
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"itr/internal/fault"
	"itr/internal/pipeline"
	"itr/internal/report"
)

// Engine resolves a Spec into the report/fault/energy entry points, timing
// each stage and writing a Manifest beside the run. Engines are single-use:
// build one per run with New.
type Engine struct {
	// Spec is the scenario to run; it is normalized by Run.
	Spec Spec
	// Out receives the rendered tables and figures (the legacy binaries'
	// stdout). Err receives progress ticks and diagnostics.
	Out io.Writer
	Err io.Writer

	out     *digestWriter
	probe   *pipeline.Probe
	sweep   *report.Probe
	camp    *fault.Progress
	started time.Time

	mu       sync.Mutex
	bench    map[string]*BenchTiming
	manifest Manifest
}

// New builds an engine for spec writing to out (tables) and errw
// (progress/diagnostics). Nil writers default to os.Stdout / os.Stderr.
func New(spec Spec, out, errw io.Writer) *Engine {
	if out == nil {
		out = os.Stdout
	}
	if errw == nil {
		errw = os.Stderr
	}
	return &Engine{Spec: spec, Out: out, Err: errw}
}

// Run executes the spec's experiment and writes the manifest. The rendered
// output is byte-identical to the pre-engine standalone binaries.
func (e *Engine) Run() error {
	e.Spec = e.Spec.Normalized()
	cmd := Lookup(e.Spec.Kind)
	if cmd == nil || cmd.Run == nil {
		return fmt.Errorf("unknown experiment kind %q", e.Spec.Kind)
	}
	e.out = &digestWriter{w: e.Out}
	e.probe = &pipeline.Probe{}
	e.sweep = &report.Probe{}
	e.camp = &fault.Progress{}
	e.bench = make(map[string]*BenchTiming)
	e.started = time.Now()
	e.manifest = Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Spec:          e.Spec,
		Version:       Version(),
		Started:       e.started.UTC().Format(time.RFC3339),
		Workers:       resolveWorkers(e.Spec.Workers),
	}
	stopProfile, err := e.startCPUProfile()
	if err != nil {
		return err
	}
	if e.Spec.Progress {
		stop := e.startProgress()
		defer stop()
	}
	if err := cmd.Run(e); err != nil {
		stopProfile()
		return err
	}
	stopProfile()
	if err := e.writeMemProfile(); err != nil {
		return err
	}
	e.finish()
	return e.writeManifest()
}

// startCPUProfile begins CPU profiling when the spec requests it, returning
// an idempotent stop function (a no-op one when profiling is off).
func (e *Engine) startCPUProfile() (func(), error) {
	if e.Spec.CPUProfile == "" {
		return func() {}, nil
	}
	f, err := os.Create(e.Spec.CPUProfile)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile captures a post-run heap profile when the spec requests
// one. The GC beforehand makes the profile reflect live retention (snapshot
// series, golden streams, arenas) rather than transient garbage.
func (e *Engine) writeMemProfile() error {
	if e.Spec.MemProfile == "" {
		return nil
	}
	f, err := os.Create(e.Spec.MemProfile)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// Manifest returns the run record; valid after Run returns nil.
func (e *Engine) Manifest() Manifest { return e.manifest }

// resolveWorkers maps the spec convention (<= 0 means GOMAXPROCS) to the
// effective width recorded in the manifest.
func resolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// reportEngine builds a report pool of the given width wired to the
// engine's per-benchmark timing observer and sweep-telemetry probe.
func (e *Engine) reportEngine(workers int) *report.Engine {
	return &report.Engine{Workers: workers, OnItem: e.recordItem, Probe: e.sweep}
}

// recordItem aggregates one timed work unit into the per-benchmark table.
// It is called concurrently from report pool goroutines.
func (e *Engine) recordItem(label string, elapsed time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	bt := e.bench[label]
	if bt == nil {
		bt = &BenchTiming{Name: label}
		e.bench[label] = bt
	}
	bt.Seconds += elapsed.Seconds()
	bt.Items++
}

// stage runs one sequential phase, recording its wall clock and a digest of
// everything it printed.
func (e *Engine) stage(name string, fn func() error) error {
	h := fnv.New64a()
	e.out.setHash(h)
	start := time.Now()
	err := fn()
	e.out.setHash(nil)
	e.manifest.Stages = append(e.manifest.Stages, StageTiming{
		Name:         name,
		Seconds:      time.Since(start).Seconds(),
		OutputDigest: fmt.Sprintf("%016x", h.Sum64()),
	})
	return err
}

// finish seals the manifest: total wall clock, sorted per-benchmark
// timings, and the final telemetry snapshot.
func (e *Engine) finish() {
	e.manifest.WallClockSeconds = time.Since(e.started).Seconds()

	names := make([]string, 0, len(e.bench))
	for name := range e.bench {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e.manifest.Benchmarks = append(e.manifest.Benchmarks, *e.bench[name])
	}

	t := &e.manifest.Telemetry
	t.CyclesSimulated = e.probe.Cycles.Load()
	t.DecodeEvents = e.probe.DecodeEvents.Load()
	t.SnapshotRestores = e.probe.SnapshotRestores.Load()
	t.SnapshotCaptures = e.probe.SnapshotCaptures.Load()
	t.SnapshotPagesShared = e.probe.SnapshotPagesShared.Load()
	t.SnapshotPagesCopied = e.probe.SnapshotPagesCopied.Load()
	t.SnapshotBytesCopied = e.probe.SnapshotBytesCopied.Load()
	t.StreamsGenerated = e.sweep.StreamsGenerated.Load()
	t.EventsReplayed = e.sweep.EventsReplayed.Load()
	t.SweepCells = e.sweep.CellsCompleted.Load()
	t.Injections = e.camp.Injections.Load()
	if t.Injections > 0 && e.manifest.WallClockSeconds > 0 {
		t.InjectionsPerSec = float64(t.Injections) / e.manifest.WallClockSeconds
	}
	t.DetectorPolls = e.probe.DetectorPolls.Load()
	t.DetectorDetections = e.probe.DetectorDetections.Load()
}

// writeManifest writes the run record to the spec's manifest path
// (default itr-<kind>-manifest.json; "none" disables).
func (e *Engine) writeManifest() error {
	path := e.Spec.ManifestPath
	if path == "none" {
		return nil
	}
	if path == "" {
		path = fmt.Sprintf("itr-%s-manifest.json", e.Spec.Kind)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if err := report.WriteJSON(f, e.manifest); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}

// writeArtifact writes the run's machine-readable artifact bundle to the
// spec's JSON path, if one was requested.
func (e *Engine) writeArtifact(art report.ArtifactJSON) error {
	if e.Spec.JSONPath == "" {
		return nil
	}
	f, err := os.Create(e.Spec.JSONPath)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f, art); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// startProgress launches the -progress ticker: a live telemetry line on Err
// every two seconds. The returned stop function is safe to call once.
func (e *Engine) startProgress() func() {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				elapsed := time.Since(e.started).Seconds()
				cycles := e.probe.Cycles.Load()
				decodes := e.probe.DecodeEvents.Load()
				restores := e.probe.SnapshotRestores.Load()
				inj := e.camp.Injections.Load()
				line := fmt.Sprintf("progress: %.0fs: %d cycles, %d decode events", elapsed, cycles, decodes)
				if restores > 0 {
					line += fmt.Sprintf(", %d restores", restores)
				}
				if captures := e.probe.SnapshotCaptures.Load(); captures > 0 {
					line += fmt.Sprintf(", %d snapshots (%.1f MiB cow-copied)",
						captures, float64(e.probe.SnapshotBytesCopied.Load())/(1<<20))
				}
				if cells := e.sweep.CellsCompleted.Load(); cells > 0 || e.sweep.EventsReplayed.Load() > 0 {
					line += fmt.Sprintf(", %d sweep cells (%d streams, %d events replayed)",
						cells, e.sweep.StreamsGenerated.Load(), e.sweep.EventsReplayed.Load())
				}
				if inj > 0 {
					line += fmt.Sprintf(", %d injections (%.1f/s)", inj, float64(inj)/elapsed)
				}
				if polls := e.probe.DetectorPolls.Load(); polls > 0 {
					line += fmt.Sprintf(", %d detector polls (%d detections)",
						polls, e.probe.DetectorDetections.Load())
				}
				fmt.Fprintln(e.Err, line)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// digestWriter tees writes into the stage's hash (when one is installed) on
// the way to the real output. The mutex covers hash swaps racing with
// writes; experiment output itself is written from the engine goroutine.
type digestWriter struct {
	mu sync.Mutex
	w  io.Writer
	h  hash.Hash64
}

func (d *digestWriter) setHash(h hash.Hash64) {
	d.mu.Lock()
	d.h = h
	d.mu.Unlock()
}

func (d *digestWriter) Write(p []byte) (int, error) {
	d.mu.Lock()
	if d.h != nil {
		d.h.Write(p)
	}
	d.mu.Unlock()
	return d.w.Write(p)
}
