package experiment

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// faultSpec returns a tiny fault spec the observability tests share.
func faultSpec(manifestPath string) Spec {
	return Spec{
		Kind:         "fault",
		Bench:        "art",
		Campaign:     &CampaignSpec{Faults: 3, Window: 20_000},
		ManifestPath: manifestPath,
	}
}

// TestStageDigestsExactAcrossRuns pins the digest-exactness contract: the
// same spec run twice produces byte-identical stage digests even though the
// human-readable output carries a wall-clock timing that differs between
// runs — the decoration is routed around the digest, not hashed "modulo"
// anything.
func TestStageDigestsExactAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	run := func(name string) (Manifest, string) {
		t.Helper()
		mp := filepath.Join(dir, name)
		var out, errw bytes.Buffer
		if err := New(faultSpec(mp), &out, &errw).Run(); err != nil {
			t.Fatalf("engine run: %v\nstderr: %s", err, errw.String())
		}
		blob, err := os.ReadFile(mp)
		if err != nil {
			t.Fatal(err)
		}
		var m Manifest
		if err := json.Unmarshal(blob, &m); err != nil {
			t.Fatal(err)
		}
		return m, out.String()
	}

	a, outA := run("a.json")
	b, _ := run("b.json")

	if !strings.Contains(outA, " in ") {
		t.Errorf("output lost its wall-clock decoration:\n%s", outA)
	}
	if len(a.Stages) == 0 || len(a.Stages) != len(b.Stages) {
		t.Fatalf("stage lists differ: %d vs %d", len(a.Stages), len(b.Stages))
	}
	for i := range a.Stages {
		if a.Stages[i].OutputDigest != b.Stages[i].OutputDigest {
			t.Errorf("stage %s digest not reproducible: %s vs %s",
				a.Stages[i].Name, a.Stages[i].OutputDigest, b.Stages[i].OutputDigest)
		}
	}
}

// TestEngineTraceAndTelemetry runs a campaign with the trace exporter and
// the live telemetry endpoint enabled, and checks the side artifacts: the
// manifest echoes the bound address, and the Chrome trace JSON parses with
// a non-empty event list naming the campaign worker threads.
func TestEngineTraceAndTelemetry(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	spec := faultSpec(filepath.Join(dir, "m.json"))
	spec.TraceOut = tracePath
	spec.TelemetryAddr = "127.0.0.1:0"

	var out, errw bytes.Buffer
	if err := New(spec, &out, &errw).Run(); err != nil {
		t.Fatalf("engine run: %v\nstderr: %s", err, errw.String())
	}
	if !strings.Contains(errw.String(), "telemetry: serving /metrics") {
		t.Errorf("missing telemetry banner on stderr:\n%s", errw.String())
	}

	blob, err := os.ReadFile(spec.ManifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if m.TelemetryAddr == "" || m.TelemetryAddr == "127.0.0.1:0" {
		t.Errorf("manifest telemetryAddr = %q; want the resolved listen address", m.TelemetryAddr)
	}

	tblob, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tblob, &trace); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	var names, spans int
	for _, e := range trace.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			names++
		}
		if e.Ph == "X" {
			spans++
		}
	}
	if names == 0 {
		t.Error("trace has no thread_name metadata")
	}
	if spans == 0 {
		t.Error("trace has no stage spans")
	}
}

// TestShootoutLatencyColumns drives a minimal two-backend shootout and
// checks that the latency columns reach both the table and the manifest's
// detector comparison.
func TestShootoutLatencyColumns(t *testing.T) {
	dir := t.TempDir()
	mp := filepath.Join(dir, "m.json")
	spec := Spec{
		Kind:  "shootout",
		Bench: "art",
		Shootout: &ShootoutSpec{
			Faults:   3,
			Window:   20_000,
			Backends: "itr,dme",
			Scale:    1_000_000,
		},
		Budget:       200_000,
		ManifestPath: mp,
	}

	var out, errw bytes.Buffer
	if err := New(spec, &out, &errw).Run(); err != nil {
		t.Fatalf("engine run: %v\nstderr: %s", err, errw.String())
	}
	if !strings.Contains(out.String(), "lat p50 (cyc)") || !strings.Contains(out.String(), "lat p99 (cyc)") {
		t.Errorf("shootout table missing latency columns:\n%s", out.String())
	}

	blob, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Detectors) != 2 {
		t.Fatalf("manifest detectors = %+v; want 2 entries", m.Detectors)
	}
	for _, d := range m.Detectors {
		if d.Detections > 0 && (d.LatencyP50Cycles <= 0 || d.LatencyP99Cycles < d.LatencyP50Cycles) {
			t.Errorf("backend %s latency quantiles implausible: p50=%d p99=%d",
				d.Name, d.LatencyP50Cycles, d.LatencyP99Cycles)
		}
	}
}
