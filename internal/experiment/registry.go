package experiment

import (
	"flag"
	"fmt"
	"io"
	"strconv"
)

// Command is one `itr` subcommand: a name, a one-line summary, a flag
// binding onto the Spec, and either a Run body (engine-backed experiments)
// or a Resolve hook producing the spec to run (e.g. `itr run -spec`).
type Command struct {
	Name    string
	Summary string
	// Bind registers the command's flags onto fs, targeting fields of s.
	// Flag defaults are s's current (normalized) values, so CLI defaults
	// and spec-file defaults cannot drift apart.
	Bind func(fs *flag.FlagSet, s *Spec)
	// Run executes the experiment on an engine (nil for meta commands).
	Run func(e *Engine) error
	// Resolve, when non-nil, maps the parsed spec to the spec actually run
	// (it may change Kind). Used by `itr run` to load a spec file.
	Resolve func(s Spec) (Spec, error)
}

// commands is the registry, in help order. It is filled in by init rather
// than declared with its value: `run` resolves spec files through ParseSpec,
// which validates kinds against the registry, and a literal would make that
// an initialization cycle.
var commands []*Command

func init() {
	commands = []*Command{
		{Name: "char", Summary: "Figures 1-4 and Table 1: program-repetition characterization", Bind: bindChar, Run: runChar},
		{Name: "coverage", Summary: "Figures 6-7: coverage-loss design-space exploration", Bind: bindCoverage, Run: runCoverage},
		{Name: "dump", Summary: "inspect a benchmark program (disassembly, traces, mix)", Bind: bindDump, Run: runDump},
		{Name: "energy", Summary: "Figure 9 and Section 5: energy and area comparison", Bind: bindEnergy, Run: runEnergy},
		{Name: "fault", Summary: "Figure 8: the Section 4 fault-injection campaign", Bind: bindFault, Run: runFault},
		{Name: "shootout", Summary: "race detector backends (itr, reptfd, dme) on coverage and energy", Bind: bindShootout, Run: runShootout},
		{Name: "sim", Summary: "run one benchmark on the ITR-protected cycle-level core", Bind: bindSim, Run: runSim},
		{Name: "run", Summary: "run an experiment declared in a JSON spec file", Bind: bindRun, Resolve: resolveRun},
	}
}

// Commands returns the registry in help order.
func Commands() []*Command { return commands }

// Lookup returns the command named name, or nil.
func Lookup(name string) *Command {
	for _, c := range commands {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "Usage: itr <command> [flags]")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Commands:")
	for _, c := range commands {
		fmt.Fprintf(w, "  %-10s %s\n", c.Name, c.Summary)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Run 'itr <command> -h' for the command's flags. Every run writes a")
	fmt.Fprintln(w, "manifest (itr-<command>-manifest.json; -manifest none disables) with the")
	fmt.Fprintln(w, "spec, per-stage timings, per-benchmark timings and telemetry.")
}

// bindCommon registers the flags shared by every subcommand.
func bindCommon(fs *flag.FlagSet, s *Spec) {
	fs.StringVar(&s.ManifestPath, "manifest", s.ManifestPath,
		"run-manifest path (default itr-<command>-manifest.json; \"none\" disables)")
	fs.BoolVar(&s.Progress, "progress", s.Progress,
		"print a live telemetry ticker to stderr while the run is in flight")
	fs.StringVar(&s.CPUProfile, "cpuprofile", s.CPUProfile,
		"write a pprof CPU profile of the run to this file")
	fs.StringVar(&s.MemProfile, "memprofile", s.MemProfile,
		"write a pprof heap profile (taken after the run) to this file")
	fs.StringVar(&s.TelemetryAddr, "telemetry-addr", s.TelemetryAddr,
		"serve live telemetry over HTTP on this address while the run is in flight\n(/metrics, /debug/vars, /debug/pprof/; \":0\" picks a free port)")
	fs.StringVar(&s.TraceOut, "trace-out", s.TraceOut,
		"write a Chrome trace-event JSON timeline of the run to this file\n(load in Perfetto or chrome://tracing)")
}

// Main is the `itr` CLI entry point: dispatches argv[0] to the registry,
// binds flags onto the command's default spec, and runs the engine. It
// returns the process exit code.
func Main(argv []string, out, errw io.Writer) int {
	if len(argv) == 0 || argv[0] == "help" || argv[0] == "-h" || argv[0] == "--help" {
		usage(errw)
		if len(argv) == 0 {
			return 2
		}
		return 0
	}
	cmd := Lookup(argv[0])
	if cmd == nil {
		fmt.Fprintf(errw, "itr: unknown command %q\n\n", argv[0])
		usage(errw)
		return 2
	}
	spec := DefaultSpec(cmd.Name)
	fs := flag.NewFlagSet("itr "+cmd.Name, flag.ContinueOnError)
	fs.SetOutput(errw)
	bindCommon(fs, &spec)
	cmd.Bind(fs, &spec)
	if err := fs.Parse(argv[1:]); err != nil {
		return 2
	}
	if cmd.Resolve != nil {
		var err error
		if spec, err = cmd.Resolve(spec); err != nil {
			fmt.Fprintf(errw, "itr %s: %v\n", cmd.Name, err)
			return 1
		}
	}
	if err := New(spec, out, errw).Run(); err != nil {
		fmt.Fprintf(errw, "itr %s: %v\n", cmd.Name, err)
		return 1
	}
	return 0
}

// negBool is a flag.Value storing the *negation* of the flag into its
// target, so a legacy "-verify" (default true) flag can back a zero-default
// NoVerify spec field without CLI and spec-file defaults drifting.
type negBool struct{ p *bool }

func (b negBool) IsBoolFlag() bool { return true }

func (b negBool) String() string {
	if b.p == nil {
		return "true"
	}
	return strconv.FormatBool(!*b.p)
}

func (b negBool) Set(v string) error {
	val, err := strconv.ParseBool(v)
	if err != nil {
		return err
	}
	*b.p = !val
	return nil
}
