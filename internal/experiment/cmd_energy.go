package experiment

import (
	"flag"
	"fmt"

	"itr/internal/baseline"
	"itr/internal/core"
	"itr/internal/energy"
	"itr/internal/report"
	"itr/internal/stats"
	"itr/internal/workload"
)

func bindEnergy(fs *flag.FlagSet, s *Spec) {
	fs.Int64Var(&s.Budget, "budget", s.Budget, "dynamic-instruction budget per benchmark")
	fs.Int64Var(&s.Energy.Scale, "scale", s.Energy.Scale, "scale access counts to this many instructions (0 = default 200M, the paper's window; negative = no scaling)")
	fs.BoolVar(&s.Energy.Baselines, "baselines", s.Energy.Baselines, "print the full approach comparison per benchmark")
	fs.BoolVar(&s.Energy.Perf, "perf", s.Energy.Perf, "measure IPC for each protection scheme on the cycle-level core")
	fs.Int64Var(&s.Energy.PerfCycles, "perf-cycles", s.Energy.PerfCycles, "cycle budget per perf measurement")
	fs.StringVar(&s.JSONPath, "json", s.JSONPath, "also write the energy and perf rows to this JSON file")
	fs.IntVar(&s.Workers, "workers", s.Workers, "benchmark worker-pool width (0 = GOMAXPROCS); results are identical at any width")
}

// runEnergy reproduces the paper's Section 5 cost comparison: Figure 9 (ITR
// cache energy vs redundantly fetching every instruction from the I-cache)
// and the die-photo area argument, plus the full baseline comparison table
// and the measured IPC cost of each protection scheme.
func runEnergy(e *Engine) error {
	s := e.Spec
	rep := e.reportEngine(s.Workers)
	w := e.out
	var art report.ArtifactJSON
	scale := s.Energy.Scale
	if scale < 0 {
		scale = 0 // report at the measured budget
	}

	if err := e.stage("figure9", func() error {
		singleNJ, _ := energy.AccessEnergyNJ(energy.ITRCacheSinglePort)
		dualNJ, _ := energy.AccessEnergyNJ(energy.ITRCacheDualPort)
		iNJ, _ := energy.AccessEnergyNJ(energy.Power4ICache)
		fmt.Fprintln(w, "Per-access energies (calibrated CACTI-style model, 0.18 um):")
		fmt.Fprintf(w, "  I-cache (64KB dm, 128B line):        %.2f nJ (paper %.2f)\n", iNJ, energy.PaperICacheNJ)
		fmt.Fprintf(w, "  ITR cache (8KB 2-way, 1 rd/wr port): %.2f nJ (paper %.2f)\n", singleNJ, energy.PaperITRCacheNJ)
		fmt.Fprintf(w, "  ITR cache (8KB 2-way, 1rd+1wr):      %.2f nJ (paper %.2f)\n", dualNJ, energy.PaperITRCacheDualNJ)
		fmt.Fprintln(w)

		rows, err := rep.Figure9(workload.Suite(), s.Budget, scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Figure 9. Energy of ITR cache vs I-cache redundant fetch.")
		if scale > 0 {
			fmt.Fprintf(w, "(access counts scaled to %d dynamic instructions, as in the paper)\n", scale)
		}
		fmt.Fprint(w, report.Figure9Table(rows).String())
		fmt.Fprintln(w)

		cmp := energy.CompareAreas()
		fmt.Fprintln(w, "Section 5 area comparison (IBM S/390 G5 die photo):")
		fmt.Fprintf(w, "  I-unit (fetch+decode): %.1f cm^2\n", cmp.IUnitCM2)
		fmt.Fprintf(w, "  ITR-cache-like BTB:    %.1f cm^2\n", cmp.ITRCacheCM2)
		fmt.Fprintf(w, "  ratio: %.1fx (the ITR cache is about one seventh the I-unit area)\n", cmp.Ratio)
		art.Energy = report.EncodeFigure9(rows)
		return nil
	}); err != nil {
		return err
	}

	if s.Energy.Baselines {
		if err := e.stage("baselines", func() error {
			fmt.Fprintln(w)
			return printBaselines(e, s.Budget, scale)
		}); err != nil {
			return err
		}
	}

	if s.Energy.Perf {
		if err := e.stage("perf", func() error {
			fmt.Fprintln(w)
			fmt.Fprintln(w, "Measured frontend-protection performance (cycle-level core):")
			rows, err := rep.PerfComparison(workload.Suite(), s.Energy.PerfCycles)
			if err != nil {
				return err
			}
			fmt.Fprint(w, report.PerfTable(rows).String())
			fmt.Fprintln(w, "(ITR and structural duplication protect the frontend without consuming")
			fmt.Fprintln(w, " its bandwidth; conventional time redundancy pays for it in IPC.)")
			art.Perf = report.EncodePerf(rows)
			return nil
		}); err != nil {
			return err
		}
	}
	return e.writeArtifact(art)
}

func printBaselines(e *Engine, budget, scale int64) error {
	w := e.out
	fmt.Fprintln(w, "Approach comparison (per benchmark, headline ITR cache):")
	t := stats.NewTable("benchmark", "approach", "det cov (%)", "rec cov (%)", "energy (mJ)", "area (cm^2)")
	baseCfg := core.DefaultConfig()
	fbCfg := baseCfg
	fbCfg.MissFallback = true
	for _, p := range workload.Suite() {
		// One stream traversal fans out to both baseline configurations.
		bank, err := core.NewSimBank([]core.Config{baseCfg, fbCfg}, 0)
		if err != nil {
			return err
		}
		info, err := workload.StreamEvents(p, p.ScaledBudget(budget), bank.Feed)
		if err != nil {
			return err
		}
		executed := info.Insts
		if info.Generated {
			e.sweep.StreamsGenerated.Add(1)
		}
		e.sweep.EventsReplayed.Add(info.Events)
		e.sweep.CellsCompleted.Add(int64(bank.Len()))
		rescale := func(res core.Result) core.Result {
			if scale > 0 && executed > 0 {
				f := float64(scale) / float64(executed)
				res.Reads = int64(float64(res.Reads) * f)
				res.Writes = int64(float64(res.Writes) * f)
				res.FallbackInsts = int64(float64(res.FallbackInsts) * f)
			}
			return res
		}
		base := rescale(bank.Result(0))
		fb := rescale(bank.Result(1))
		dyn := executed
		if scale > 0 {
			dyn = scale
		}
		for _, a := range []baseline.Approach{
			baseline.Unprotected, baseline.StructuralDuplication,
			baseline.TimeRedundant, baseline.ITR, baseline.ITRMissFallback,
		} {
			cov := base
			if a == baseline.ITRMissFallback {
				cov = fb
			}
			c, err := baseline.Compare(a, baseline.Workload{Name: p.Name, DynInsts: dyn, Coverage: cov}, energy.ITRCacheSinglePort)
			if err != nil {
				return err
			}
			t.AddRow(p.Name, c.Approach.String(), c.DetectionCoverage, c.RecoveryCoverage, c.EnergyMJ, c.AreaCM2)
		}
	}
	fmt.Fprint(w, t.String())
	return nil
}
