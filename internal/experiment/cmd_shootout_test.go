package experiment

import (
	"reflect"
	"testing"
)

func TestParseBackends(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"itr,reptfd,dme", []string{"itr", "reptfd", "dme"}},
		{"dme", []string{"dme"}},
		{" ITR , dme ", []string{"itr", "dme"}},
		{"itr,itr,reptfd", []string{"itr", "reptfd"}}, // deduplicated
		{"itr,,dme", []string{"itr", "dme"}},          // empty fields skipped
	}
	for _, c := range cases {
		got, err := parseBackends(c.in)
		if err != nil {
			t.Errorf("parseBackends(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseBackends(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, in := range []string{"", ",,", "itr,bogus", "replay"} {
		if _, err := parseBackends(in); err == nil {
			t.Errorf("parseBackends(%q) accepted", in)
		}
	}
}
