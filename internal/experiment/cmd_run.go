package experiment

import (
	"flag"
	"fmt"
	"os"
)

func bindRun(fs *flag.FlagSet, s *Spec) {
	fs.StringVar(&s.SpecPath, "spec", s.SpecPath, "JSON experiment spec file to run (see docs/EXPERIMENT_SPECS.md)")
	fs.IntVar(&s.Workers, "workers", s.Workers, "override the spec's worker-pool width (0 = keep the spec's value)")
}

// resolveRun loads the spec file named by -spec and returns it as the spec
// to execute, applying any CLI overrides (-workers, -manifest, -progress)
// on top of the file's values.
func resolveRun(cli Spec) (Spec, error) {
	if cli.SpecPath == "" {
		return Spec{}, fmt.Errorf("run: -spec is required")
	}
	f, err := os.Open(cli.SpecPath)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	spec, err := ParseSpec(f)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", cli.SpecPath, err)
	}
	spec.SpecPath = cli.SpecPath
	if cli.Workers > 0 {
		spec.Workers = cli.Workers
	}
	if cli.ManifestPath != "" {
		spec.ManifestPath = cli.ManifestPath
	}
	if cli.Progress {
		spec.Progress = true
	}
	if cli.CPUProfile != "" {
		spec.CPUProfile = cli.CPUProfile
	}
	if cli.MemProfile != "" {
		spec.MemProfile = cli.MemProfile
	}
	return spec, nil
}
