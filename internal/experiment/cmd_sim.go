package experiment

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"itr/internal/asm"
	"itr/internal/detect"
	"itr/internal/fault"
	"itr/internal/isa"
	"itr/internal/pipeline"
	"itr/internal/program"
	"itr/internal/stats"
	"itr/internal/workload"
)

func bindSim(fs *flag.FlagSet, s *Spec) {
	fs.StringVar(&s.Bench, "bench", s.Bench, "benchmark to run")
	fs.StringVar(&s.Sim.Asm, "asm", s.Sim.Asm, "run this assembly source file instead of a benchmark")
	fs.StringVar(&s.Sim.Profile, "profile", s.Sim.Profile, "run a custom workload profile (JSON) instead of a benchmark")
	fs.Int64Var(&s.Sim.Cycles, "cycles", s.Sim.Cycles, "cycle budget")
	fs.BoolVar(&s.Sim.PrintSignals, "print-signals", s.Sim.PrintSignals, "print the Table 2 decode-signal specification")
	fs.BoolVar(&s.Sim.NoITR, "no-itr", s.Sim.NoITR, "disable the ITR checker")
	fs.StringVar(&s.Detector, "detector", s.Detector,
		fmt.Sprintf("detection backend: %s (default itr)", strings.Join(detect.Names(), ", ")))
	fs.Int64Var(&s.Sim.Inject, "inject", s.Sim.Inject, "inject a fault at this decode event (0 = none)")
	fs.IntVar(&s.Sim.Bit, "bit", s.Sim.Bit, "signal bit to flip when injecting (0-63)")
	fs.IntVar(&s.Workers, "workers", s.Workers, "bound Go runtime parallelism (0 = all cores); sim runs one pipeline, so this only caps GC/runtime threads")
}

// runSim runs one benchmark on the ITR-protected cycle-level core and
// reports pipeline and checker statistics. It can also print the Table 2
// decode-signal specification and demonstrate a single fault injection end
// to end.
func runSim(e *Engine) error {
	s := e.Spec
	w := e.out
	if s.Workers > 0 {
		runtime.GOMAXPROCS(s.Workers)
	}

	if s.Sim.PrintSignals {
		return e.stage("signals", func() error {
			printTable2(e)
			return nil
		})
	}

	return e.stage("run", func() error {
		var prog *program.Program
		var name string
		if s.Sim.Profile != "" {
			f, err := os.Open(s.Sim.Profile)
			if err != nil {
				return err
			}
			prof, err := workload.ParseProfile(f)
			f.Close()
			if err != nil {
				return err
			}
			prog, err = workload.Build(prof)
			if err != nil {
				return err
			}
			name = prof.Name
		} else if s.Sim.Asm != "" {
			src, err := os.ReadFile(s.Sim.Asm)
			if err != nil {
				return err
			}
			prog, err = asm.Assemble(s.Sim.Asm, string(src))
			if err != nil {
				return err
			}
			name = s.Sim.Asm
		} else {
			prof, err := workload.ByName(s.Bench)
			if err != nil {
				return err
			}
			prog, err = workload.CachedProgram(prof)
			if err != nil {
				return err
			}
			name = prof.Name
		}

		if !detect.Known(s.Detector) {
			return fmt.Errorf("unknown detector backend %q (have %s)", s.Detector, strings.Join(detect.Names(), ", "))
		}
		cfg := pipeline.DefaultConfig()
		cfg.ITREnabled = !s.Sim.NoITR
		cfg.Detector = s.Detector
		cfg.Probe = e.probe
		// The sim machine runs on the stage goroutine; its pipeline events
		// (snapshots, rollbacks, detections) share the engine's timeline.
		cfg.Trace = e.tracer.Ring("sim")
		cpu, err := pipeline.New(prog, cfg)
		if err != nil {
			return err
		}
		if s.Sim.Inject > 0 {
			inj := fault.Injection{DecodeIndex: s.Sim.Inject, Bit: s.Sim.Bit}
			fmt.Fprintf(w, "injecting: decode event %d, bit %d (%s field)\n", inj.DecodeIndex, inj.Bit, inj.Field())
			done := false
			cpu.SetFaultHook(func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
				if !done && i == inj.DecodeIndex {
					done = true
					fmt.Fprintf(w, "  corrupted %s at pc=%d\n", d, pc)
					return d.FlipBit(inj.Bit)
				}
				return d
			})
		}

		res := cpu.Run(s.Sim.Cycles)
		fmt.Fprintf(w, "program:        %s (%d static instructions)\n", name, prog.Len())
		fmt.Fprintf(w, "termination:    %v\n", res.Termination)
		fmt.Fprintf(w, "cycles:         %d\n", res.Cycles)
		fmt.Fprintf(w, "committed:      %d (IPC %.2f)\n", res.Committed, res.IPC())
		fmt.Fprintf(w, "decode events:  %d\n", res.DecodeEvents)
		fmt.Fprintf(w, "mispredicts:    %d\n", res.Mispredicts)
		fmt.Fprintf(w, "spc violations: %d\n", res.SpcFired)
		fmt.Fprintf(w, "ITR flushes:    %d\n", res.ITRFlushes)
		if c := cpu.Checker(); c != nil {
			st := c.Stats()
			fmt.Fprintf(w, "ITR checker:    %d traces dispatched, %d hits, %d misses, %d writes\n",
				st.Dispatched, st.Hits, st.Misses, st.Writes)
			fmt.Fprintf(w, "                %d mismatches, %d retries, %d recoveries, %d machine checks\n",
				st.Mismatches, st.Retries, st.Recoveries, st.MachineChecks)
		} else if d := cpu.Detector(); d != nil {
			st := d.Stats()
			fmt.Fprintf(w, "%s detector: %d traces dispatched, %d insts replayed, %d chunks checked\n",
				detect.Canonical(s.Detector), st.Dispatched, st.ReplayedInsts, st.ChunksChecked)
			fmt.Fprintf(w, "                %d mismatches, %d retries, %d recoveries, %d machine checks\n",
				st.Mismatches, st.Retries, st.Recoveries, st.MachineChecks)
		}
		return nil
	})
}

func printTable2(e *Engine) {
	w := e.out
	fmt.Fprintln(w, "Table 2. List of decode signals (64 bits total).")
	t := stats.NewTable("field", "description", "width")
	t.AddRow("opcode", "instruction opcode", 8)
	t.AddRow("flags", "decoded control flags", 12)
	t.AddRow("shamt", "shift amount", 5)
	t.AddRow("rsrc1", "source register operand", 5)
	t.AddRow("rsrc2", "source register operand", 5)
	t.AddRow("rdst", "destination register operand", 5)
	t.AddRow("lat", "execution latency", 2)
	t.AddRow("imm", "immediate", 16)
	t.AddRow("num_rsrc", "number of source operands", 2)
	t.AddRow("num_rdst", "number of destination operands", 1)
	t.AddRow("mem_size", "size of memory word", 3)
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "\nControl flags:", flagList())
	fmt.Fprintln(w, "\nBit layout of the packed signal word:")
	prev := ""
	start := 0
	for pos := 0; pos <= isa.SignalBits; pos++ {
		f := ""
		if pos < isa.SignalBits {
			f = isa.SignalField(pos)
		}
		if f != prev {
			if prev != "" {
				fmt.Fprintf(w, "  bits %2d-%2d: %s\n", start, pos-1, prev)
			}
			prev, start = f, pos
		}
	}
}

func flagList() string {
	s := ""
	for i := 0; i < 12; i++ {
		if i > 0 {
			s += ", "
		}
		s += isa.FlagName(i)
	}
	return s
}
