package experiment

import (
	"bytes"
	"flag"
	"reflect"
	"strings"
	"testing"
)

// parseArgs mimics Main's flag binding: defaults from the normalized spec,
// common flags, then the command's flags over argv.
func parseArgs(t *testing.T, kind string, argv ...string) Spec {
	t.Helper()
	cmd := Lookup(kind)
	if cmd == nil {
		t.Fatalf("no command %q", kind)
	}
	spec := DefaultSpec(kind)
	fs := flag.NewFlagSet("itr "+kind, flag.ContinueOnError)
	fs.SetOutput(&bytes.Buffer{})
	bindCommon(fs, &spec)
	cmd.Bind(fs, &spec)
	if err := fs.Parse(argv); err != nil {
		t.Fatalf("itr %s %v: %v", kind, argv, err)
	}
	return spec
}

// TestLegacyFlagParity drives each subcommand with the flag vectors the
// legacy standalone binaries documented and checks the resulting spec —
// this is the contract that lets the shims forward verbatim.
func TestLegacyFlagParity(t *testing.T) {
	cases := []struct {
		name string
		kind string
		argv []string
		want func(Spec) Spec // edits on top of the kind's default spec
	}{
		{"fault defaults", "fault", nil, func(s Spec) Spec { return s }},
		{"fault paper scale", "fault", []string{"-faults", "1000", "-window", "1000000"},
			func(s Spec) Spec { s.Campaign.Faults = 1000; s.Campaign.Window = 1_000_000; return s }},
		{"fault one bench", "fault", []string{"-bench", "gap", "-faults", "200"},
			func(s Spec) Spec { s.Bench = "gap"; s.Campaign.Faults = 200; return s }},
		{"fault verify off", "fault", []string{"-verify=false"},
			func(s Spec) Spec { s.Campaign.NoVerify = true; return s }},
		{"fault verify on is default", "fault", []string{"-verify"},
			func(s Spec) Spec { return s }},
		{"fault studies", "fault", []string{"-pc", "50", "-cache", "40", "-rename", "30", "-fields", "-checkpoint"},
			func(s Spec) Spec {
				s.Campaign.PCFaults = 50
				s.Campaign.CacheFaults = 40
				s.Campaign.RenameFaults = 30
				s.Campaign.Fields = true
				s.Campaign.Checkpoint = true
				return s
			}},
		{"fault snapshot interval off", "fault", []string{"-snapshot-interval", "-1"},
			func(s Spec) Spec { s.Campaign.SnapshotInterval = -1; return s }},
		{"fault rival detector", "fault", []string{"-detector", "reptfd"},
			func(s Spec) Spec { s.Detector = "reptfd"; return s }},
		{"sim rival detector", "sim", []string{"-detector", "dme"},
			func(s Spec) Spec { s.Detector = "dme"; return s }},
		{"shootout defaults", "shootout", nil, func(s Spec) Spec { return s }},
		{"shootout backends", "shootout", []string{"-backends", "itr,dme", "-faults", "7", "-verify=false"},
			func(s Spec) Spec {
				s.Shootout.Backends = "itr,dme"
				s.Shootout.Faults = 7
				s.Shootout.NoVerify = true
				return s
			}},
		{"char figure", "char", []string{"-fig", "4", "-budget", "20000000"},
			func(s Spec) Spec { s.Char.Fig = 4; s.Budget = 20_000_000; return s }},
		{"char table1 json", "char", []string{"-table1", "-json", "t1.json"},
			func(s Spec) Spec { s.Char.Table1 = true; s.JSONPath = "t1.json"; return s }},
		{"coverage metric", "coverage", []string{"-metric", "detection", "-bench", "vortex"},
			func(s Spec) Spec { s.Coverage.Metric = "detection"; s.Bench = "vortex"; return s }},
		{"coverage headline", "coverage", []string{"-headline", "-warmup", "1000000"},
			func(s Spec) Spec { s.Coverage.Headline = true; s.Warmup = 1_000_000; return s }},
		{"dump disassembly", "dump", []string{"-bench", "gap", "-dis", "-from", "10", "-n", "40"},
			func(s Spec) Spec { s.Bench = "gap"; s.Dump.Dis = true; s.Dump.From = 10; s.Dump.N = 40; return s }},
		{"energy perf", "energy", []string{"-perf", "-scale", "-1"},
			func(s Spec) Spec { s.Energy.Perf = true; s.Energy.Scale = -1; return s }},
		{"sim injection", "sim", []string{"-bench", "gap", "-inject", "5000", "-bit", "12"},
			func(s Spec) Spec { s.Bench = "gap"; s.Sim.Inject = 5000; s.Sim.Bit = 12; return s }},
		{"sim no itr", "sim", []string{"-no-itr", "-cycles", "1000"},
			func(s Spec) Spec { s.Sim.NoITR = true; s.Sim.Cycles = 1000; return s }},
		{"common manifest progress", "sim", []string{"-manifest", "none", "-progress"},
			func(s Spec) Spec { s.ManifestPath = "none"; s.Progress = true; return s }},
	}
	for _, tc := range cases {
		got := parseArgs(t, tc.kind, tc.argv...)
		want := tc.want(DefaultSpec(tc.kind))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s:\n got %+v\nwant %+v", tc.name, got, want)
		}
	}
}

// TestRegistryComplete checks the registry lists exactly the seven experiment
// kinds plus the run meta-command, each with a bind and a summary.
func TestRegistryComplete(t *testing.T) {
	want := []string{"char", "coverage", "dump", "energy", "fault", "shootout", "sim", "run"}
	cmds := Commands()
	if len(cmds) != len(want) {
		t.Fatalf("registry has %d commands; want %d", len(cmds), len(want))
	}
	for i, name := range want {
		c := cmds[i]
		if c.Name != name {
			t.Errorf("commands[%d] = %q; want %q", i, c.Name, name)
		}
		if c.Bind == nil || c.Summary == "" {
			t.Errorf("%s: missing Bind or Summary", name)
		}
		if name == "run" {
			if c.Resolve == nil || c.Run != nil {
				t.Errorf("run must have Resolve and no Run body")
			}
		} else if c.Run == nil {
			t.Errorf("%s: missing Run", name)
		}
		if Lookup(name) != c {
			t.Errorf("Lookup(%q) did not return the registry entry", name)
		}
	}
	if Lookup("nope") != nil {
		t.Error("Lookup of unknown name should be nil")
	}
}

// TestMainUnknownCommand pins the CLI's error paths: unknown commands and
// bare invocations print usage and exit 2.
func TestMainUnknownCommand(t *testing.T) {
	var out, errw bytes.Buffer
	if code := Main([]string{"warp"}, &out, &errw); code != 2 {
		t.Errorf("unknown command exit = %d; want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown command") || !strings.Contains(errw.String(), "Usage: itr") {
		t.Errorf("unknown command output missing usage:\n%s", errw.String())
	}
	errw.Reset()
	if code := Main(nil, &out, &errw); code != 2 {
		t.Errorf("bare invocation exit = %d; want 2", code)
	}
	errw.Reset()
	if code := Main([]string{"help"}, &out, &errw); code != 0 {
		t.Errorf("help exit = %d; want 0", code)
	}
}
