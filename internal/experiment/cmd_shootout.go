package experiment

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"itr/internal/detect"
	"itr/internal/energy"
	"itr/internal/fault"
	"itr/internal/stats"
	"itr/internal/workload"
)

func bindShootout(fs *flag.FlagSet, s *Spec) {
	fs.IntVar(&s.Shootout.Faults, "faults", s.Shootout.Faults, "injections per benchmark per backend")
	fs.Int64Var(&s.Shootout.Window, "window", s.Shootout.Window, "observation window in cycles")
	fs.StringVar(&s.Shootout.Backends, "backends", s.Shootout.Backends,
		fmt.Sprintf("comma-separated backend list (subset of %s)", strings.Join(detect.Names(), ",")))
	fs.StringVar(&s.Bench, "bench", s.Bench, "restrict to one benchmark")
	fs.Uint64Var(&s.Seed, "seed", s.Seed, "campaign seed (shared by every backend)")
	fs.Var(negBool{&s.Shootout.NoVerify}, "verify", "confirm each recoverable detection with the full protocol")
	fs.Int64Var(&s.Shootout.Scale, "scale", s.Shootout.Scale, "scale the energy estimate to this many committed instructions")
	fs.Int64Var(&s.Budget, "budget", s.Budget, "dynamic-instruction budget for the energy measurement")
	fs.IntVar(&s.Workers, "workers", s.Workers, "injection worker-pool width per campaign (0 = GOMAXPROCS); results are identical at any width")
	fs.Int64Var(&s.Shootout.SnapshotInterval, "snapshot-interval", s.Shootout.SnapshotInterval,
		fmt.Sprintf("decode events between pilot snapshots for campaign fast-forward (0 = default %d, negative = disabled)", fault.DefaultSnapshotInterval))
}

// parseBackends resolves the spec's comma-separated backend list into
// canonical, deduplicated names, rejecting unknown entries.
func parseBackends(csv string) ([]string, error) {
	var names []string
	seen := make(map[string]bool)
	for _, f := range strings.Split(csv, ",") {
		if strings.TrimSpace(f) == "" {
			continue
		}
		if !detect.Known(f) {
			return nil, fmt.Errorf("unknown detector backend %q (have %s)", strings.TrimSpace(f), strings.Join(detect.Names(), ", "))
		}
		name := detect.Canonical(f)
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("empty backend list")
	}
	return names, nil
}

// runShootout races the detection backends against each other: one Figure 8
// campaign per backend over the same injections (same seed, same windows),
// one Figure 9-style energy measurement, and a closing table putting
// per-backend coverage, detector telemetry and energy side by side. The
// manifest records the same comparison as Manifest.Detectors.
func runShootout(e *Engine) error {
	s := e.Spec
	w := e.out

	backends, err := parseBackends(s.Shootout.Backends)
	if err != nil {
		return err
	}

	profiles := workload.CoverageSuite()
	if s.Bench != "" {
		p, err := workload.ByName(s.Bench)
		if err != nil {
			return err
		}
		profiles = []workload.Profile{p}
	}

	// Parallelism lives in the per-injection campaign pool (as in fault).
	rep := e.reportEngine(1)

	fmt.Fprintf(w, "Detector shootout: %d faults/benchmark, %d-cycle window, backends %s.\n",
		s.Shootout.Faults, s.Shootout.Window, strings.Join(backends, ", "))

	// One campaign per backend, same injection sample (the seed and window
	// fix the decode-event draw, which is backend-independent: the pilot's
	// fault-free trajectory does not depend on the detector).
	runs := make([]DetectorRun, len(backends))
	for i, name := range backends {
		cfg := fault.DefaultCampaignConfig()
		cfg.Faults = s.Shootout.Faults
		cfg.Seed = s.Seed
		cfg.Workers = s.Workers
		cfg.Progress = e.camp
		cfg.Experiment.WindowCycles = s.Shootout.Window
		cfg.Experiment.Verify = !s.Shootout.NoVerify
		cfg.Experiment.SnapshotInterval = s.Shootout.SnapshotInterval
		cfg.Experiment.Pipeline.Detector = name
		cfg.Experiment.Pipeline.Probe = e.probe
		cfg.Tracer = e.tracer
		latCycles, latInsts := e.latencyHists(name)
		cfg.LatencyCycles, cfg.LatencyInsts = latCycles, latInsts

		pollsBefore := e.probe.DetectorPolls.Load()
		detBefore := e.probe.DetectorDetections.Load()
		injBefore := e.camp.Injections.Load()
		if err := e.stage("campaign-"+name, func() error {
			start := time.Now()
			rows, err := rep.Figure8(profiles, cfg)
			if err != nil {
				return err
			}
			var avgDet float64
			for _, r := range rows {
				avgDet += r.Result.DetectedPct()
			}
			if len(rows) > 0 {
				avgDet /= float64(len(rows))
			}
			runs[i] = DetectorRun{Name: name, DetectedPct: avgDet}
			// Keep the wall-clock decoration out of the stage digest so
			// reruns of the same spec hash identically.
			fmt.Fprintf(w, "  %-7s %5.1f%% detected (%d campaigns", name, avgDet, len(rows))
			fmt.Fprintf(e.rawOut(), " in %v", time.Since(start).Round(time.Millisecond))
			fmt.Fprintln(w, ")")
			return nil
		}); err != nil {
			return err
		}
		runs[i].Polls = e.probe.DetectorPolls.Load() - pollsBefore
		runs[i].Detections = e.probe.DetectorDetections.Load() - detBefore
		runs[i].Injections = e.camp.Injections.Load() - injBefore
		runs[i].LatencyP50Cycles = latCycles.Quantile(0.50)
		runs[i].LatencyP99Cycles = latCycles.Quantile(0.99)
	}

	// One energy measurement feeds every backend's estimate: the ITR cache
	// access stream and the redundant-fetch stream at the spec's scale.
	var itrMJ, redMJ float64
	if err := e.stage("energy", func() error {
		rows, err := rep.Figure9(profiles, s.Budget, s.Shootout.Scale)
		if err != nil {
			return err
		}
		for _, r := range rows {
			itrMJ += r.ITRSinglePort
			redMJ += r.ICacheRedFetch
		}
		if len(rows) > 0 {
			itrMJ /= float64(len(rows))
			redMJ /= float64(len(rows))
		}
		return nil
	}); err != nil {
		return err
	}
	for i := range runs {
		runs[i].EnergyMJ = energy.DetectorEnergyMJ(runs[i].Name, itrMJ, redMJ)
	}
	e.manifest.Detectors = runs

	return e.stage("shootout-table", func() error {
		fmt.Fprintf(w, "\nBackend comparison (Figure 8 coverage; energy per %d committed instructions):\n", s.Shootout.Scale)
		t := stats.NewTable("backend", "detected (%)", "lat p50 (cyc)", "lat p99 (cyc)", "injections", "detections", "polls", "energy (mJ)")
		for _, r := range runs {
			t.AddRow(r.Name, r.DetectedPct, r.LatencyP50Cycles, r.LatencyP99Cycles, r.Injections, r.Detections, r.Polls, r.EnergyMJ)
		}
		fmt.Fprint(w, t.String())
		fmt.Fprintln(w, "(itr pays one small-cache lookup per trace; reptfd re-fetches every")
		fmt.Fprintln(w, " instruction to replay chunks, with detection latency up to a chunk;")
		fmt.Fprintln(w, " dme re-fetches and re-executes everything for the tightest detection;")
		fmt.Fprintln(w, " latency quantiles are log2-bucket upper bounds over detected faults)")
		return nil
	})
}
