package experiment

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"itr/internal/detect"
	"itr/internal/energy"
	"itr/internal/fault"
	"itr/internal/obs"
	"itr/internal/report"
	"itr/internal/stats"
	"itr/internal/workload"
)

func bindShootout(fs *flag.FlagSet, s *Spec) {
	fs.IntVar(&s.Shootout.Faults, "faults", s.Shootout.Faults, "injections per benchmark per backend")
	fs.Int64Var(&s.Shootout.Window, "window", s.Shootout.Window, "observation window in cycles")
	fs.StringVar(&s.Shootout.Backends, "backends", s.Shootout.Backends,
		fmt.Sprintf("comma-separated backend list (subset of %s)", strings.Join(detect.Names(), ",")))
	fs.StringVar(&s.Bench, "bench", s.Bench, "restrict to one benchmark")
	fs.Uint64Var(&s.Seed, "seed", s.Seed, "campaign seed (shared by every backend)")
	fs.Var(negBool{&s.Shootout.NoVerify}, "verify", "confirm each recoverable detection with the full protocol")
	fs.Int64Var(&s.Shootout.Scale, "scale", s.Shootout.Scale, "scale the energy estimate to this many committed instructions")
	fs.Int64Var(&s.Budget, "budget", s.Budget, "dynamic-instruction budget for the energy measurement")
	fs.IntVar(&s.Workers, "workers", s.Workers, "injection worker-pool width per campaign (0 = GOMAXPROCS); results are identical at any width")
	fs.Int64Var(&s.Shootout.SnapshotInterval, "snapshot-interval", s.Shootout.SnapshotInterval,
		fmt.Sprintf("decode events between pilot snapshots for campaign fast-forward (0 = default %d, negative = disabled)", fault.DefaultSnapshotInterval))
	fs.BoolVar(&s.Shootout.SweepChunks, "sweep-chunks", s.Shootout.SweepChunks,
		"also sweep each backend's granularity knob (reptfd chunk length, dme address offset) and print a per-configuration table")
}

// parseBackends resolves the spec's comma-separated backend list into
// canonical, deduplicated names, rejecting unknown entries.
func parseBackends(csv string) ([]string, error) {
	var names []string
	seen := make(map[string]bool)
	for _, f := range strings.Split(csv, ",") {
		if strings.TrimSpace(f) == "" {
			continue
		}
		if !detect.Known(f) {
			return nil, fmt.Errorf("unknown detector backend %q (have %s)", strings.TrimSpace(f), strings.Join(detect.Names(), ", "))
		}
		name := detect.Canonical(f)
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("empty backend list")
	}
	return names, nil
}

// runShootout races the detection backends against each other: one Figure 8
// campaign per backend over the same injections (same seed, same windows),
// one Figure 9-style energy measurement, and a closing table putting
// per-backend coverage, detector telemetry and energy side by side. The
// manifest records the same comparison as Manifest.Detectors.
func runShootout(e *Engine) error {
	s := e.Spec
	w := e.out

	backends, err := parseBackends(s.Shootout.Backends)
	if err != nil {
		return err
	}

	profiles := workload.CoverageSuite()
	if s.Bench != "" {
		p, err := workload.ByName(s.Bench)
		if err != nil {
			return err
		}
		profiles = []workload.Profile{p}
	}

	// Parallelism lives in the per-injection campaign pool (as in fault).
	rep := e.reportEngine(1)

	fmt.Fprintf(w, "Detector shootout: %d faults/benchmark, %d-cycle window, backends %s.\n",
		s.Shootout.Faults, s.Shootout.Window, strings.Join(backends, ", "))

	// campaignCfg builds one backend's campaign over the shared injection
	// sample; the shootout loop and the granularity sweep both go through it.
	campaignCfg := func(name string) fault.CampaignConfig {
		cfg := fault.DefaultCampaignConfig()
		cfg.Faults = s.Shootout.Faults
		cfg.Seed = s.Seed
		cfg.Workers = s.Workers
		cfg.Progress = e.camp
		cfg.Experiment.WindowCycles = s.Shootout.Window
		cfg.Experiment.Verify = !s.Shootout.NoVerify
		cfg.Experiment.SnapshotInterval = s.Shootout.SnapshotInterval
		cfg.Experiment.Pipeline.Detector = name
		cfg.Experiment.Pipeline.Probe = e.probe
		cfg.Tracer = e.tracer
		return cfg
	}

	// One campaign per backend, same injection sample (the seed and window
	// fix the decode-event draw, which is backend-independent: the pilot's
	// fault-free trajectory does not depend on the detector).
	runs := make([]DetectorRun, len(backends))
	for i, name := range backends {
		cfg := campaignCfg(name)
		latCycles, latInsts := e.latencyHists(name)
		cfg.LatencyCycles, cfg.LatencyInsts = latCycles, latInsts

		pollsBefore := e.probe.DetectorPolls.Load()
		detBefore := e.probe.DetectorDetections.Load()
		injBefore := e.camp.Injections.Load()
		if err := e.stage("campaign-"+name, func() error {
			start := time.Now()
			rows, err := rep.Figure8(profiles, cfg)
			if err != nil {
				return err
			}
			var avgDet float64
			for _, r := range rows {
				avgDet += r.Result.DetectedPct()
			}
			if len(rows) > 0 {
				avgDet /= float64(len(rows))
			}
			runs[i] = DetectorRun{Name: name, DetectedPct: avgDet}
			for _, r := range rows {
				e.addBudget(r.Result.Budget)
			}
			// Keep the wall-clock decoration out of the stage digest so
			// reruns of the same spec hash identically.
			fmt.Fprintf(w, "  %-7s %5.1f%% detected (%d campaigns", name, avgDet, len(rows))
			fmt.Fprintf(e.rawOut(), " in %v", time.Since(start).Round(time.Millisecond))
			fmt.Fprintln(w, ")")
			return nil
		}); err != nil {
			return err
		}
		runs[i].Polls = e.probe.DetectorPolls.Load() - pollsBefore
		runs[i].Detections = e.probe.DetectorDetections.Load() - detBefore
		runs[i].Injections = e.camp.Injections.Load() - injBefore
		runs[i].LatencyP50Cycles = latCycles.Quantile(0.50)
		runs[i].LatencyP99Cycles = latCycles.Quantile(0.99)
	}

	// One energy measurement feeds every backend's estimate: the ITR cache
	// access stream and the redundant-fetch stream at the spec's scale.
	var itrMJ, redMJ float64
	if err := e.stage("energy", func() error {
		rows, err := rep.Figure9(profiles, s.Budget, s.Shootout.Scale)
		if err != nil {
			return err
		}
		for _, r := range rows {
			itrMJ += r.ITRSinglePort
			redMJ += r.ICacheRedFetch
		}
		if len(rows) > 0 {
			itrMJ /= float64(len(rows))
			redMJ /= float64(len(rows))
		}
		return nil
	}); err != nil {
		return err
	}
	for i := range runs {
		runs[i].EnergyMJ = energy.DetectorEnergyMJ(runs[i].Name, itrMJ, redMJ)
	}
	e.manifest.Detectors = runs

	if err := e.stage("shootout-table", func() error {
		fmt.Fprintf(w, "\nBackend comparison (Figure 8 coverage; energy per %d committed instructions):\n", s.Shootout.Scale)
		t := stats.NewTable("backend", "detected (%)", "lat p50 (cyc)", "lat p99 (cyc)", "injections", "detections", "polls", "energy (mJ)")
		for _, r := range runs {
			t.AddRow(r.Name, r.DetectedPct, r.LatencyP50Cycles, r.LatencyP99Cycles, r.Injections, r.Detections, r.Polls, r.EnergyMJ)
		}
		fmt.Fprint(w, t.String())
		fmt.Fprintln(w, "(itr pays one small-cache lookup per trace; reptfd re-fetches every")
		fmt.Fprintln(w, " instruction to replay chunks, with detection latency up to a chunk;")
		fmt.Fprintln(w, " dme re-fetches and re-executes everything for the tightest detection;")
		fmt.Fprintln(w, " latency quantiles are log2-bucket upper bounds over detected faults)")
		return nil
	}); err != nil {
		return err
	}

	if !s.Shootout.SweepChunks {
		return nil
	}
	return e.stage("sweep-chunks", func() error {
		return runChunkSweep(e, w, backends, campaignCfg, profiles, rep)
	})
}

// chunkSweepCell is one (backend, knob value) configuration of the
// detection-granularity sweep.
type chunkSweepCell struct {
	backend string
	knob    string
	label   string
	opts    detect.Options
}

// chunkSweepCells enumerates the sweep: RepTFD's chunk length trades
// detection latency against replay bookkeeping, and DME's address offset
// moves the shadow image around the address space (coverage should be
// offset-invariant — the sweep row is the regression check). ITR holds no
// granularity knob and is skipped.
func chunkSweepCells(backends []string) []chunkSweepCell {
	var cells []chunkSweepCell
	for _, name := range backends {
		switch name {
		case detect.NameRepTFD:
			for _, n := range []int{2, 4, 8, 16, 32} {
				cells = append(cells, chunkSweepCell{
					backend: name, knob: "chunk-traces",
					label: fmt.Sprintf("%d", n),
					opts:  detect.Options{ChunkTraces: n},
				})
			}
		case detect.NameDME:
			for _, shift := range []uint{28, 32, 36} {
				cells = append(cells, chunkSweepCell{
					backend: name, knob: "addr-offset",
					label: fmt.Sprintf("2^%d", shift),
					opts:  detect.Options{AddrOffset: 1 << shift},
				})
			}
		}
	}
	return cells
}

// runChunkSweep runs one campaign per granularity cell and prints the
// resulting coverage/latency table.
func runChunkSweep(e *Engine, w io.Writer, backends []string, campaignCfg func(string) fault.CampaignConfig, profiles []workload.Profile, rep *report.Engine) error {
	cells := chunkSweepCells(backends)
	if len(cells) == 0 {
		fmt.Fprintln(w, "\n(granularity sweep: no swept backend in the list; reptfd and dme carry the knobs)")
		return nil
	}
	fmt.Fprintln(w, "\nDetection-granularity sweep (same injection sample per cell):")
	t := stats.NewTable("backend", "knob", "value", "detected (%)", "lat p50 (cyc)", "lat p99 (cyc)", "detections")
	for _, cell := range cells {
		cfg := campaignCfg(cell.backend)
		cfg.Experiment.Pipeline.DetectorOpts = cell.opts
		var latCycles, latInsts obs.Hist
		cfg.LatencyCycles, cfg.LatencyInsts = &latCycles, &latInsts
		rows, err := rep.Figure8(profiles, cfg)
		if err != nil {
			return fmt.Errorf("sweep %s %s=%s: %w", cell.backend, cell.knob, cell.label, err)
		}
		var avgDet float64
		detections := 0
		for _, r := range rows {
			avgDet += r.Result.DetectedPct()
			for _, d := range r.Result.Details {
				if d.Detected {
					detections++
				}
			}
			e.addBudget(r.Result.Budget)
		}
		if len(rows) > 0 {
			avgDet /= float64(len(rows))
		}
		t.AddRow(cell.backend, cell.knob, cell.label, avgDet,
			latCycles.Quantile(0.50), latCycles.Quantile(0.99), detections)
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "(longer reptfd chunks defer the digest compare, stretching latency and")
	fmt.Fprintln(w, " leaving more window-end faults inside an open chunk; dme coverage must")
	fmt.Fprintln(w, " not depend on where the shadow image lands)")
	return nil
}
