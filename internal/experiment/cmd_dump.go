package experiment

import (
	"flag"
	"fmt"
	"sort"

	"itr/internal/fault"
	"itr/internal/isa"
	"itr/internal/stats"
	"itr/internal/trace"
	"itr/internal/workload"
)

func bindDump(fs *flag.FlagSet, s *Spec) {
	fs.StringVar(&s.Bench, "bench", s.Bench, "benchmark to inspect")
	fs.BoolVar(&s.Dump.Dis, "dis", s.Dump.Dis, "disassemble instructions")
	fs.Uint64Var(&s.Dump.From, "from", s.Dump.From, "first PC to disassemble")
	fs.IntVar(&s.Dump.N, "n", s.Dump.N, "instructions to disassemble")
	fs.BoolVar(&s.Dump.Traces, "traces", s.Dump.Traces, "print the static trace table (dynamic, with signatures)")
	fs.Int64Var(&s.Budget, "budget", s.Budget, "instruction budget for dynamic trace discovery")
	fs.IntVar(&s.Workers, "workers", s.Workers, "accepted for compatibility; dump runs a single functional walk")
}

// runDump inspects a synthesized benchmark program: disassembly, static
// trace boundaries with fault-free signatures, image statistics and the
// instruction mix. It is the debugging companion to the simulators — what
// objdump is to a binary.
func runDump(e *Engine) error {
	s := e.Spec
	w := e.out
	return e.stage("inspect", func() error {
		prof, err := workload.ByName(s.Bench)
		if err != nil {
			return err
		}
		prog, err := workload.CachedProgram(prof)
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "program %s: %d static instructions, entry %d\n", prog.Name, prog.Len(), prog.Entry)
		fmt.Fprintf(w, "profile: %d static traces (Table 1), %d components, fp=%v\n",
			prof.StaticTraces, len(prof.Components), prof.FP)

		// Instruction mix.
		mix := stats.NewCounter()
		branches := 0
		for _, inst := range prog.Insts {
			mix.Inc(inst.Op.String(), 1)
			if inst.Op.IsBranch() {
				branches++
			}
		}
		fmt.Fprintf(w, "branch density: %.1f%% (%d branching instructions)\n",
			100*float64(branches)/float64(prog.Len()), branches)
		fmt.Fprintln(w, "\ninstruction mix (top 12):")
		names := mix.Names()
		sort.Slice(names, func(i, j int) bool { return mix.Get(names[i]) > mix.Get(names[j]) })
		for i, name := range names {
			if i >= 12 {
				break
			}
			fmt.Fprintf(w, "  %-6s %6d (%.1f%%)\n", name, mix.Get(name), mix.Pct(name))
		}

		if s.Dump.Dis {
			fmt.Fprintf(w, "\ndisassembly from %d:\n", s.Dump.From)
			end := s.Dump.From + uint64(s.Dump.N)
			if end > uint64(prog.Len()) {
				end = uint64(prog.Len())
			}
			var former trace.Former
			for pc := s.Dump.From; pc < end; pc++ {
				inst := prog.Fetch(pc)
				d := isa.Decode(inst)
				marker := "  "
				if _, done := former.Step(pc, d); done {
					marker = " <" // trace boundary
				}
				fmt.Fprintf(w, "%6d: %-28s%s\n", pc, inst.String(), marker)
			}
		}

		if s.Dump.Traces {
			fmt.Fprintf(w, "\nstatic traces observed in %d instructions:\n", s.Budget)
			oracle := fault.NewSigOracle(prog)
			type row struct {
				start uint64
				count int64
				insts int64
			}
			counts := make(map[uint64]*row)
			trace.Stream(prog, s.Budget, func(ev trace.Event) bool {
				r := counts[ev.StartPC]
				if r == nil {
					r = &row{start: ev.StartPC}
					counts[ev.StartPC] = r
				}
				r.count++
				r.insts += int64(ev.Len)
				return true
			})
			rows := make([]*row, 0, len(counts))
			for _, r := range counts {
				rows = append(rows, r)
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].insts > rows[j].insts })
			fmt.Fprintf(w, "%8s %12s %14s %18s\n", "startPC", "instances", "dyn insts", "signature")
			for i, r := range rows {
				if i >= 25 {
					fmt.Fprintf(w, "  ... and %d more\n", len(rows)-25)
					break
				}
				fmt.Fprintf(w, "%8d %12d %14d %#18x\n", r.start, r.count, r.insts, oracle.TrueSig(r.start))
			}
		}
		return nil
	})
}
