package experiment

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"itr/internal/workload"
)

// TestSpecJSONRoundTrip marshals a fully-populated spec and decodes it back:
// the two must be structurally identical, or manifests would not reproduce
// the runs they record.
func TestSpecJSONRoundTrip(t *testing.T) {
	specs := []Spec{
		{
			Kind: "fault", Bench: "art", Workers: 3, Seed: 42,
			Campaign: &CampaignSpec{
				Faults: 12, Window: 125_000, NoVerify: true, Fields: true,
				Checkpoint: true, PCFaults: 5, CacheFaults: 6, RenameFaults: 7,
				SnapshotInterval: -1,
			},
			JSONPath: "out.json", ManifestPath: "m.json", Progress: true,
		},
		{
			Kind: "char", Budget: 123, Workers: 2,
			Char: &CharSpec{Fig: 3, Table1: true},
		},
		{
			Kind: "coverage", Budget: 456, Warmup: 789,
			Coverage: &CoverageSpec{Metric: "detection", Headline: true, Ablation: true},
		},
		{
			Kind: "dump", Bench: "gap", Budget: 1000,
			Dump: &DumpSpec{Dis: true, From: 7, N: 9, Traces: true},
		},
		{
			Kind: "energy", Budget: 2000,
			Energy: &EnergySpec{Scale: -1, Baselines: true, Perf: true, PerfCycles: 99},
		},
		{
			Kind: "sim", Bench: "vortex",
			Sim: &SimSpec{Asm: "a.s", Profile: "p.json", Cycles: 77, PrintSignals: true, NoITR: true, Inject: 3, Bit: 11},
		},
	}
	for _, want := range specs {
		blob, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("%s: marshal: %v", want.Kind, err)
		}
		got, err := ParseSpec(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("%s: parse: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", want.Kind, got, want)
		}
	}
}

// TestSpecNormalizedDefaults pins the per-kind defaults to the values the
// legacy standalone binaries used.
func TestSpecNormalizedDefaults(t *testing.T) {
	fault := DefaultSpec("fault")
	if fault.Campaign.Faults != 100 || fault.Campaign.Window != 250_000 || fault.Seed != 0x17b {
		t.Errorf("fault defaults = faults %d, window %d, seed %#x; want 100, 250000, 0x17b",
			fault.Campaign.Faults, fault.Campaign.Window, fault.Seed)
	}
	sim := DefaultSpec("sim")
	if sim.Sim.Cycles != 500_000 || sim.Sim.Bit != 36 || sim.Bench != "bzip" {
		t.Errorf("sim defaults = cycles %d, bit %d, bench %q; want 500000, 36, bzip",
			sim.Sim.Cycles, sim.Sim.Bit, sim.Bench)
	}
	dump := DefaultSpec("dump")
	if dump.Dump.N != 32 || dump.Budget != 1_000_000 || dump.Bench != "bzip" {
		t.Errorf("dump defaults = n %d, budget %d, bench %q; want 32, 1000000, bzip",
			dump.Dump.N, dump.Budget, dump.Bench)
	}
	energy := DefaultSpec("energy")
	if energy.Energy.Scale != 200_000_000 || energy.Energy.PerfCycles != 300_000 {
		t.Errorf("energy defaults = scale %d, perfCycles %d; want 200000000, 300000",
			energy.Energy.Scale, energy.Energy.PerfCycles)
	}
	cov := DefaultSpec("coverage")
	if cov.Coverage.Metric != "both" || cov.Budget != workload.DefaultBudget {
		t.Errorf("coverage defaults = metric %q, budget %d; want both, %d",
			cov.Coverage.Metric, cov.Budget, workload.DefaultBudget)
	}
	char := DefaultSpec("char")
	if char.Budget != workload.DefaultBudget {
		t.Errorf("char default budget = %d; want %d", char.Budget, workload.DefaultBudget)
	}

	// Normalizing twice must be a no-op.
	if again := fault.Normalized(); !reflect.DeepEqual(again, fault) {
		t.Errorf("Normalized is not idempotent:\n got %+v\nwant %+v", again, fault)
	}
}

// TestParseSpecRejects covers the failure modes that should fail loudly
// instead of silently running a default scenario.
func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name, blob, wantErr string
	}{
		{"missing kind", `{}`, "missing"},
		{"unknown kind", `{"kind": "warp"}`, "unknown kind"},
		{"meta kind run", `{"kind": "run"}`, "unknown kind"},
		{"unknown field", `{"kind": "fault", "faultz": 3}`, "unknown field"},
		{"misplaced section", `{"kind": "fault", "campaign": {"windowz": 1}}`, "unknown field"},
	}
	for _, tc := range cases {
		_, err := ParseSpec(strings.NewReader(tc.blob))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v; want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestEffectiveSnapshotIntervalConvention pins the flag convention shared
// with -snapshot-interval: zero means the default, negative disables.
func TestSpecSnapshotIntervalConvention(t *testing.T) {
	blob := `{"kind": "fault", "campaign": {"snapshotInterval": -1}}`
	s, err := ParseSpec(strings.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if s.Campaign.SnapshotInterval != -1 {
		t.Fatalf("snapshotInterval = %d; want -1", s.Campaign.SnapshotInterval)
	}
}
