// Package pipeline implements a cycle-level out-of-order superscalar core in
// the style of the MIPS R10K, the substrate the paper evaluates ITR on.
//
// The model captures everything the paper's mechanisms interact with:
//
//   - a fetch unit with BTB + gshare direction prediction (so is_branch
//     faults create the Section 2.5 sequential-PC scenarios);
//   - a decode stage that produces the Table 2 signal vector, feeds ITR
//     signature generation, and is the fault-injection point;
//   - dispatch-order functional execution with speculative register files
//     and a store-buffer memory overlay (so ITR retry flushes can roll the
//     speculative state back to the committed state);
//   - a scheduler whose operand tracking is driven by the (possibly
//     corrupted) num_rsrc/num_rdst fields, so scheduling faults can deadlock
//     the machine and be caught by the watchdog;
//   - in-order commit with ITR ROB polling, flush-and-restart recovery,
//     machine checks, the sequential-PC check and a watchdog timer.
package pipeline

// Predictor is the fetch unit's branch predictor: a BTB for target/identity
// and a gshare direction predictor.
type Predictor struct {
	btb        []btbEntry
	btbSets    int
	btbAssoc   int
	gshare     []uint8 // 2-bit counters
	historyLen uint
	history    uint64
	clock      uint64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	uncond bool
	lru    uint64
}

// NewPredictor builds a predictor. btbEntries must be a power of two and
// divisible by btbAssoc; gshareBits sets the counter-table size (2^bits).
func NewPredictor(btbEntries, btbAssoc int, gshareBits uint) *Predictor {
	if btbEntries <= 0 {
		btbEntries = 1024
	}
	if btbAssoc <= 0 {
		btbAssoc = 2
	}
	if gshareBits == 0 {
		gshareBits = 12
	}
	return &Predictor{
		btb:        make([]btbEntry, btbEntries),
		btbSets:    btbEntries / btbAssoc,
		btbAssoc:   btbAssoc,
		gshare:     make([]uint8, 1<<gshareBits),
		historyLen: gshareBits,
	}
}

func (p *Predictor) btbSet(pc uint64) []btbEntry {
	set := int(pc) & (p.btbSets - 1)
	return p.btb[set*p.btbAssoc : (set+1)*p.btbAssoc]
}

// Predict returns the fetch unit's next-PC guess for the instruction at pc:
// predicted-taken branches redirect to the BTB target, everything else falls
// through. taken reports whether a redirect was predicted.
func (p *Predictor) Predict(pc uint64) (next uint64, taken bool) {
	for i := range p.btbSet(pc) {
		e := &p.btbSet(pc)[i]
		if e.valid && e.tag == pc {
			p.clock++
			e.lru = p.clock
			if e.uncond || p.direction(pc) {
				return e.target, true
			}
			return pc + 1, false
		}
	}
	return pc + 1, false
}

func (p *Predictor) gshareIndex(pc uint64) uint64 {
	return (pc ^ p.history) & (uint64(len(p.gshare)) - 1)
}

func (p *Predictor) direction(pc uint64) bool {
	return p.gshare[p.gshareIndex(pc)] >= 2
}

// Train updates the predictor with a resolved branch outcome. uncond marks
// unconditional transfers (always-taken BTB entries, no direction training).
func (p *Predictor) Train(pc, target uint64, taken, uncond bool) {
	if !uncond {
		idx := p.gshareIndex(pc)
		c := p.gshare[idx]
		if taken && c < 3 {
			p.gshare[idx] = c + 1
		} else if !taken && c > 0 {
			p.gshare[idx] = c - 1
		}
		p.history = (p.history << 1) | boolBit(taken)
	}
	if !taken {
		return
	}
	// Install/refresh the BTB entry for taken branches.
	set := p.btbSet(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			victim = i
			break
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	p.clock++
	set[victim] = btbEntry{valid: true, tag: pc, target: target, uncond: uncond, lru: p.clock}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
