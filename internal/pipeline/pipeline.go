package pipeline

import (
	"fmt"
	"sync/atomic"

	"itr/internal/checkpoint"
	"itr/internal/core"
	"itr/internal/isa"
	"itr/internal/program"
	"itr/internal/trace"
)

// Config sizes the core. Zero fields take DefaultConfig values.
type Config struct {
	FetchWidth  int // instructions fetched per cycle
	IssueWidth  int // instructions issued per cycle
	CommitWidth int // instructions committed per cycle
	ROBSize     int
	IssueWindow int // scheduler window depth (entries scanned for issue)
	FetchQueue  int

	BTBEntries int
	BTBAssoc   int
	GshareBits uint

	// WatchdogCycles is the deadlock threshold: cycles without a commit
	// before the watchdog check fires (paper Section 4's "wdog").
	WatchdogCycles int64

	// ITREnabled attaches the ITR checker; ITR/ITRMode configure it.
	ITREnabled bool
	ITR        core.Config
	ITRMode    core.Mode

	// CheckpointEnabled attaches the coarse-grain checkpointing extension
	// of Section 2.3: machine checks roll back to the last checkpoint
	// instead of aborting the program, whenever the rollback is provably
	// sufficient.
	CheckpointEnabled bool
	// CheckpointIntervalCycles is how often a checkpoint take is attempted
	// (default 4096).
	CheckpointIntervalCycles int64
	// CheckpointPolicy selects the rollback-safety rule (default
	// CheckpointStamped).
	CheckpointPolicy CheckpointPolicy

	// Redundancy selects a conventional frontend-protection baseline
	// (structural duplication or time redundancy) to run instead of ITR.
	Redundancy RedundancyMode

	// RenameITREnabled attaches the rename-protection extension: a second
	// ITR checker over per-trace signatures of the rename-map indexes
	// (paper Section 1), covering faults the frontend signature cannot see.
	RenameITREnabled bool

	// TACEnabled attaches the Timestamp-based Assertion Check for the
	// out-of-order scheduler (Section 1's third regimen member): commit
	// asserts that no instruction issued before its producers completed,
	// and flushes on violation.
	TACEnabled bool

	// Probe, when non-nil, receives cross-run telemetry (cycles simulated,
	// decode events, snapshot restores). One probe may be shared by many
	// CPUs running concurrently; it never affects simulation results.
	Probe *Probe
}

// Probe accumulates telemetry across pipeline runs. All fields are atomic,
// so a single probe can be shared by every CPU of a campaign and read live
// by a progress ticker. Counters are updated at run boundaries (end of each
// Run/RunUntilDecode call and each Restore), not per cycle, so probing is
// free on the hot path.
type Probe struct {
	// Cycles is the total number of cycles simulated.
	Cycles atomic.Int64
	// DecodeEvents is the total number of decode events observed.
	DecodeEvents atomic.Int64
	// SnapshotRestores counts Restore calls (campaign fast-forwards).
	SnapshotRestores atomic.Int64
	// SnapshotCaptures counts Snapshot calls (pilot snapshot series).
	SnapshotCaptures atomic.Int64
	// SnapshotPagesShared counts memory pages captured by reference at
	// snapshot boundaries — pages a pre-COW deep copy would have duplicated.
	SnapshotPagesShared atomic.Int64
	// SnapshotPagesCopied counts memory pages physically copied by the
	// copy-on-write write path (first store to a page shared with a
	// snapshot); SnapshotBytesCopied is the same in bytes. Together they are
	// the total page-copying work the snapshot machinery actually performed,
	// which scales with pages dirtied between boundaries rather than with
	// the benchmark's whole footprint.
	SnapshotPagesCopied atomic.Int64
	SnapshotBytesCopied atomic.Int64
}

// CheckpointPolicy is the rule deciding when checkpoints are taken and when
// a rollback is known to undo the fault's damage.
type CheckpointPolicy int

// Checkpoint policies.
const (
	// CheckpointStamped takes a checkpoint at every interval and records
	// install timestamps on ITR cache lines. A machine check rolls back
	// only when the offending (faulty) line was installed after the
	// checkpoint, which proves the corruption postdates the checkpointed
	// state. Run-once code may leave permanently unchecked lines, but they
	// cannot invalidate younger checkpoints under this rule.
	CheckpointStamped CheckpointPolicy = iota + 1
	// CheckpointStrict is the paper's literal Section 2.3 condition: take a
	// checkpoint only when the ITR cache holds no unchecked lines. Sound,
	// but on workloads with run-once code the condition may never hold.
	CheckpointStrict
)

// DefaultConfig returns a 4-wide core in the spirit of the MIPS R10K with
// the paper's headline ITR cache (2-way, 1024 signatures).
func DefaultConfig() Config {
	return Config{
		FetchWidth:     4,
		IssueWidth:     4,
		CommitWidth:    4,
		ROBSize:        128,
		IssueWindow:    48,
		FetchQueue:     16,
		BTBEntries:     1024,
		BTBAssoc:       2,
		GshareBits:     12,
		WatchdogCycles: 8192,
		ITREnabled:     true,
		ITR:            core.DefaultConfig(),
		ITRMode:        core.ModeFull,
	}
}

func (c Config) normalize() Config {
	d := DefaultConfig()
	if c.FetchWidth == 0 {
		c.FetchWidth = d.FetchWidth
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = d.IssueWidth
	}
	if c.CommitWidth == 0 {
		c.CommitWidth = d.CommitWidth
	}
	if c.ROBSize == 0 {
		c.ROBSize = d.ROBSize
	}
	if c.IssueWindow == 0 {
		c.IssueWindow = d.IssueWindow
	}
	if c.FetchQueue == 0 {
		c.FetchQueue = d.FetchQueue
	}
	if c.BTBEntries == 0 {
		c.BTBEntries = d.BTBEntries
	}
	if c.BTBAssoc == 0 {
		c.BTBAssoc = d.BTBAssoc
	}
	if c.GshareBits == 0 {
		c.GshareBits = d.GshareBits
	}
	if c.WatchdogCycles == 0 {
		c.WatchdogCycles = d.WatchdogCycles
	}
	if c.ITRMode == 0 {
		c.ITRMode = core.ModeFull
	}
	if c.CheckpointIntervalCycles == 0 {
		c.CheckpointIntervalCycles = 4096
	}
	if c.CheckpointPolicy == 0 {
		c.CheckpointPolicy = CheckpointStamped
	}
	return c
}

// FaultHook lets a fault injector corrupt the decode signals of one (or
// more) dynamic decode events. decodeIndex counts every decode, including
// wrong-path instructions — exactly the population the paper injects into
// (campaigns ignore wrongPath; targeted tests may gate on it).
type FaultHook func(decodeIndex int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals

// CommitObserver sees every committed instruction in order (golden lockstep
// comparison attaches here).
type CommitObserver func(pc uint64, o isa.Outcome)

// Termination says why a run ended.
type Termination int

// Termination causes.
const (
	TermBudget       Termination = iota + 1 // cycle budget exhausted
	TermHalt                                // program executed halt
	TermMachineCheck                        // ITR raised a machine check (program aborted)
	TermDeadlock                            // watchdog fired: no commit for WatchdogCycles
)

func (t Termination) String() string {
	switch t {
	case TermBudget:
		return "budget"
	case TermHalt:
		return "halt"
	case TermMachineCheck:
		return "machine-check"
	case TermDeadlock:
		return "deadlock"
	default:
		return fmt.Sprintf("termination(%d)", int(t))
	}
}

// Result summarizes a pipeline run.
type Result struct {
	Cycles       int64
	Committed    int64
	DecodeEvents int64
	Termination  Termination
	// SpcFired counts sequential-PC check violations observed at commit
	// (Section 2.5 / Section 4's "spc" check).
	SpcFired int64
	// Mispredicts counts resolved branch mispredictions (repair events).
	Mispredicts int64
	// ITRFlushes counts retry flushes performed by the checker.
	ITRFlushes int64
	// CheckpointRollbacks counts machine checks converted into coarse-grain
	// checkpoint rollbacks (Section 2.3 extension).
	CheckpointRollbacks int64
	// CheckpointsDeclined counts take attempts refused by the strict
	// policy's unchecked-lines condition.
	CheckpointsDeclined int64
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

type srcKind uint8

const (
	srcReady srcKind = iota
	srcSeq
	srcPhantom // operand that can never become ready (fault-induced)
)

type source struct {
	kind srcKind
	seq  uint64
}

type uop struct {
	valid       bool
	pc          uint64
	predNext    uint64
	d           isa.DecodeSignals
	outcome     isa.Outcome
	wrongPath   bool
	traceEnd    bool
	itrSeq      uint64 // ITR ROB entry sequence (valid when traceEnd)
	renameSeq   uint64 // rename checker entry sequence (valid when traceEnd)
	decodeIndex int64
	tacViolated bool // issued before a producer completed (scheduler fault)
	issued      bool
	done        bool
	doneCycle   int64
	srcs        [3]source
	nsrc        int
}

type fetchedInst struct {
	pc       uint64
	predNext uint64
	taken    bool
}

type producer struct {
	valid bool
	seq   uint64
}

// CPU is the cycle-level core. Construct with New; one CPU runs one program.
type CPU struct {
	cfg    Config
	prog   *program.Program
	decode *program.DecodeTable // memoized per-static-instruction signals

	mem       *isa.Memory
	committed *isa.ArchState
	spec      *specState

	pred          *Predictor
	checker       *core.Checker
	renameChecker *core.Checker
	renameSig     renameState
	ckpt          *checkpoint.Manager
	former        trace.Former

	rob              []uop // ring storage; power-of-two length ≥ cfg.ROBSize
	robMask          uint64
	robCap           int // logical capacity (cfg.ROBSize)
	robHead, robTail uint64
	executing        []uint64
	wbCompleted      []uint64 // writeback scratch; logically empty between cycles

	prod [2][isa.NumRegs]producer

	fq             []fetchedInst // fetch-queue ring; power-of-two length ≥ cfg.FetchQueue
	fqMask         uint64
	fqHead, fqTail uint64
	fetchPC        uint64
	haltSeen       bool

	wrongPathFrom  uint64
	wrongPathArmed bool

	cycle           int64
	lastCommitCycle int64
	ckptRollbacks   int64
	ckptDeclined    int64
	redundancy      RedundancyStats
	decodeEvents    int64
	committedCount  int64
	expectedPC      uint64
	spcFired        int64
	mispredicts     int64
	itrFlushes      int64

	faultHook       FaultHook
	renameFaultHook RenameFaultHook
	schedFaultHook  SchedulerFaultHook
	observer        CommitObserver
	ckptObserver    CheckpointObserver
	tac             TACStats

	pcFaultCycle int64 // schedule: flip fetch PC at this cycle (0 = none)
	pcFaultBit   int
	pcFaultDone  bool

	terminated  bool
	termination Termination

	// memCopiedSeen is the memory's lifetime COW page-copy count already
	// published to the probe; run boundaries publish the delta.
	memCopiedSeen int64
}

// New builds a CPU over prog with the given configuration.
func New(prog *program.Program, cfg Config) (*CPU, error) {
	cfg = cfg.normalize()
	c := &CPU{
		cfg:        cfg,
		prog:       prog,
		decode:     prog.DecodeTable(),
		mem:        isa.NewMemory(),
		pred:       NewPredictor(cfg.BTBEntries, cfg.BTBAssoc, cfg.GshareBits),
		rob:        make([]uop, nextPow2(cfg.ROBSize)),
		robCap:     cfg.ROBSize,
		fq:         make([]fetchedInst, nextPow2(cfg.FetchQueue)),
		fetchPC:    prog.Entry,
		expectedPC: prog.Entry,
	}
	c.robMask = uint64(len(c.rob) - 1)
	c.fqMask = uint64(len(c.fq) - 1)
	c.committed = &isa.ArchState{Mem: c.mem, PC: prog.Entry}
	c.spec = newSpecState(c.committed, c.mem)
	if cfg.ITREnabled {
		checker, err := core.NewChecker(cfg.ITR, cfg.ITRMode)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		c.checker = checker
	}
	if cfg.RenameITREnabled {
		if !cfg.ITREnabled {
			return nil, fmt.Errorf("pipeline: rename ITR requires the main ITR checker")
		}
		rc, err := core.NewChecker(cfg.ITR, cfg.ITRMode)
		if err != nil {
			return nil, fmt.Errorf("pipeline: rename checker: %w", err)
		}
		c.renameChecker = rc
	}
	if cfg.CheckpointEnabled {
		if !cfg.ITREnabled {
			return nil, fmt.Errorf("pipeline: checkpointing requires the ITR checker (its safety condition is an all-checked ITR cache)")
		}
		m, err := checkpoint.New(c.committed, c.mem)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		c.ckpt = m
	}
	return c, nil
}

// SetFaultHook installs the decode-signal corruption hook.
func (c *CPU) SetFaultHook(h FaultHook) { c.faultHook = h }

// SchedulePCFault arms a single-event upset on the fetch PC (Section 2.5):
// at the first fetch at or after the given cycle, bit is flipped in the PC
// used to fetch. Depending on where the flip lands relative to trace
// boundaries, the fault is caught by the ITR signature, by branch
// resolution, by the sequential-PC check, or not at all.
func (c *CPU) SchedulePCFault(cycle int64, bit int) {
	c.pcFaultCycle = cycle
	c.pcFaultBit = bit & 63
	c.pcFaultDone = false
}

// SetCommitObserver installs the committed-instruction observer.
func (c *CPU) SetCommitObserver(o CommitObserver) { c.observer = o }

// CheckpointObserver is notified of checkpoint lifecycle events:
// taken == true when a checkpoint is established, taken == false when the
// machine rolls back to it. Golden lockstep comparators use this to keep a
// matching snapshot of the reference state.
type CheckpointObserver func(taken bool)

// SetCheckpointObserver installs the checkpoint lifecycle observer.
func (c *CPU) SetCheckpointObserver(o CheckpointObserver) { c.ckptObserver = o }

// checkpointRecover converts a machine check into a rollback to the last
// coarse-grain checkpoint: the committed state is restored, the offending
// trace's (faulty) ITR cache line is discarded so re-execution installs a
// fresh signature, and fetch restarts at the checkpoint PC.
func (c *CPU) checkpointRecover(faultyTracePC uint64) (restartPC uint64, ok bool) {
	if !c.ckpt.Valid() {
		return 0, false
	}
	// Rollback is sufficient only when the faulty instance committed after
	// the checkpoint: the install stamp of the offending line proves it.
	if ln, found := c.checker.Cache().Probe(faultyTracePC); found && ln.Stamp < c.ckpt.CommittedAt() {
		return 0, false
	}
	restart, ok := c.ckpt.Rollback()
	if !ok {
		return 0, false
	}
	c.ckptRollbacks++
	c.checker.Cache().Invalidate(faultyTracePC)
	c.checker.FlushAll()
	if c.renameChecker != nil {
		c.renameChecker.Cache().Invalidate(faultyTracePC)
		c.renameChecker.FlushAll()
	}
	if c.ckptObserver != nil {
		c.ckptObserver(false)
	}
	// Replayed instructions must not be double-counted by consumers of
	// CommittedInsts; rewinding the counter keeps commit counts consistent
	// with the architectural state. The sequential-PC chain also restarts
	// at the checkpoint.
	c.committedCount = c.ckpt.CommittedAt()
	c.expectedPC = restart
	return restart, true
}

// Checker exposes the ITR checker (nil when ITR is disabled).
func (c *CPU) Checker() *core.Checker { return c.checker }

// Checkpoints exposes the coarse-grain checkpoint manager (nil when the
// extension is disabled).
func (c *CPU) Checkpoints() *checkpoint.Manager { return c.ckpt }

// Redundancy returns the baseline-comparator statistics (zero when
// RedundancyNone).
func (c *CPU) Redundancy() RedundancyStats { return c.redundancy }

// RenameChecker exposes the rename-protection checker (nil when disabled).
func (c *CPU) RenameChecker() *core.Checker { return c.renameChecker }

// Committed exposes the committed architectural state.
func (c *CPU) Committed() *isa.ArchState { return c.committed }

// DecodeEvents returns the number of decode events so far (the fault
// injector samples injection points from this space).
func (c *CPU) DecodeEvents() int64 { return c.decodeEvents }

// CommittedInsts returns the number of committed instructions so far.
func (c *CPU) CommittedInsts() int64 { return c.committedCount }

// Run executes until the cycle budget is exhausted or the machine
// terminates, returning the run summary. Run may be called repeatedly to
// extend a run; the budget is per-call.
func (c *CPU) Run(maxCycles int64) Result {
	return c.RunUntilDecode(maxCycles, -1)
}

// RunUntilDecode is Run with an additional stop condition: execution pauses
// at the first cycle boundary where the decode-event count has reached
// stopDecode (negative disables the condition). The snapshot pilot uses it
// to pause at snapshot intervals; the machine is left resumable, so a
// further Run/RunUntilDecode call continues exactly where this one stopped.
func (c *CPU) RunUntilDecode(maxCycles, stopDecode int64) Result {
	start := c.cycle
	decodeStart := c.decodeEvents
	for !c.terminated && c.cycle-start < maxCycles && (stopDecode < 0 || c.decodeEvents < stopDecode) {
		c.stepCycle()
	}
	if p := c.cfg.Probe; p != nil {
		p.Cycles.Add(c.cycle - start)
		p.DecodeEvents.Add(c.decodeEvents - decodeStart)
		c.publishCowCopies(p)
	}
	term := c.termination
	if !c.terminated {
		term = TermBudget
	}
	return Result{
		Cycles:              c.cycle,
		Committed:           c.committedCount,
		DecodeEvents:        c.decodeEvents,
		Termination:         term,
		SpcFired:            c.spcFired,
		Mispredicts:         c.mispredicts,
		ITRFlushes:          c.itrFlushes,
		CheckpointRollbacks: c.ckptRollbacks,
		CheckpointsDeclined: c.ckptDeclined,
	}
}

func (c *CPU) stepCycle() {
	c.commitStage()
	if c.terminated {
		return
	}
	c.writebackStage()
	c.issueStage()
	c.dispatchStage()
	c.fetchStage()
	c.cycle++
	if c.ckpt != nil && c.cycle%c.cfg.CheckpointIntervalCycles == 0 {
		take := true
		if c.cfg.CheckpointPolicy == CheckpointStrict {
			// Section 2.3's literal condition: no unchecked lines remain.
			take = c.checker.Cache().CountUnchecked() == 0
		}
		if take {
			c.ckpt.Take(c.committedCount)
			if c.ckptObserver != nil {
				c.ckptObserver(true)
			}
		} else {
			c.ckptDeclined++
		}
	}
	if c.cycle-c.lastCommitCycle > c.cfg.WatchdogCycles {
		c.terminated = true
		c.termination = TermDeadlock
	}
}

func (c *CPU) robLen() int { return int(c.robTail - c.robHead) }

// at maps a sequence number to its ROB slot. The backing array is sized to a
// power of two so the hot-path index is a mask, not a divide.
func (c *CPU) at(seq uint64) *uop { return &c.rob[seq&c.robMask] }

// nextPow2 returns the smallest power of two >= n (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ---- fetch queue (ring) ----

func (c *CPU) fqLen() int { return int(c.fqTail - c.fqHead) }

func (c *CPU) fqReset() { c.fqTail = c.fqHead }

// ---- commit ----

func (c *CPU) commitStage() {
	for n := 0; n < c.cfg.CommitWidth && c.robLen() > 0; n++ {
		u := c.at(c.robHead)
		if !u.done {
			return
		}
		if u.wrongPath {
			// Unreachable when resolution works: wrong-path uops are
			// always squashed by the mispredicted branch ahead of them.
			panic("pipeline: wrong-path uop reached commit")
		}
		if c.checker != nil {
			switch a := c.checker.Poll(); a.Kind {
			case core.ActionStall:
				return
			case core.ActionRetry:
				c.itrFlush(a.RestartPC)
				return
			case core.ActionMachineCheck:
				if c.ckpt != nil {
					if restart, ok := c.checkpointRecover(a.RestartPC); ok {
						c.itrFlush(restart)
						return
					}
				}
				c.terminated = true
				c.termination = TermMachineCheck
				return
			}
		}
		if c.renameChecker != nil {
			switch a := c.renameChecker.Poll(); a.Kind {
			case core.ActionStall:
				return
			case core.ActionRetry:
				c.itrFlush(a.RestartPC)
				return
			case core.ActionMachineCheck:
				if c.ckpt != nil {
					if restart, ok := c.checkpointRecover(a.RestartPC); ok {
						c.itrFlush(restart)
						return
					}
				}
				c.terminated = true
				c.termination = TermMachineCheck
				return
			}
		}
		// TAC (scheduler) assertion: flush and re-execute on an issue-order
		// violation, before the stale result can commit.
		if c.tacCommitCheck(u) {
			c.tac.Recovered++
			c.itrFlush(u.pc)
			return
		}

		// Sequential-PC check (Section 2.5): a committing instruction's PC
		// must match the commit PC chain.
		if u.pc != c.expectedPC {
			c.spcFired++
		}
		c.expectedPC = u.outcome.NextPC

		if c.ckpt != nil {
			c.ckpt.BeforeStore(u.outcome)
		}
		c.committed.Apply(u.outcome)
		c.committedCount++
		if c.checker != nil {
			c.checker.SetNow(c.committedCount)
		}
		c.lastCommitCycle = c.cycle
		if c.observer != nil {
			c.observer(u.pc, u.outcome)
		}
		if u.traceEnd && c.checker != nil {
			c.checker.CommitTraceEnd()
		}
		if u.traceEnd && c.renameChecker != nil {
			c.renameChecker.CommitTraceEnd()
		}
		c.robHead++
		if u.outcome.Halt {
			c.terminated = true
			c.termination = TermHalt
			return
		}
	}
}

// itrFlush implements the Section 2.2 recovery: flush the whole window and
// restart fetch at the faulting trace's start PC. Architectural state is
// intact because nothing from the flushed window committed.
func (c *CPU) itrFlush(restartPC uint64) {
	c.itrFlushes++
	c.robTail = c.robHead
	c.executing = c.executing[:0]
	c.fqReset()
	c.former.Reset()
	c.renameSig.reset()
	// Both checkers' in-flight windows are squashed. The checker whose
	// retry caused this flush has already cleared itself (and armed its
	// retry state); FlushAll on an empty window is a no-op, so flushing
	// both keeps the two ITR ROBs aligned trace-for-trace.
	if c.checker != nil {
		c.checker.FlushAll()
	}
	if c.renameChecker != nil {
		c.renameChecker.FlushAll()
	}
	c.spec.restore(c.committed)
	c.fetchPC = restartPC
	c.wrongPathArmed = false
	c.haltSeen = false
	for f := range c.prod {
		for r := range c.prod[f] {
			c.prod[f][r] = producer{}
		}
	}
}

// ---- writeback / branch resolution ----

func (c *CPU) writebackStage() {
	if len(c.executing) == 0 {
		return
	}
	kept := c.executing[:0]
	completed := c.wbCompleted[:0]
	for _, seq := range c.executing {
		if seq < c.robHead || seq >= c.robTail {
			continue // squashed or committed
		}
		u := c.at(seq)
		if u.doneCycle > c.cycle {
			kept = append(kept, seq)
			continue
		}
		completed = append(completed, seq)
	}
	c.executing = kept
	c.wbCompleted = completed[:0] // keep the grown backing array for next cycle
	// Complete oldest-first so the oldest misprediction wins the redirect.
	for i := 1; i < len(completed); i++ {
		for j := i; j > 0 && completed[j] < completed[j-1]; j-- {
			completed[j], completed[j-1] = completed[j-1], completed[j]
		}
	}
	for _, seq := range completed {
		if seq < c.robHead || seq >= c.robTail {
			continue // squashed by an older branch this cycle
		}
		u := c.at(seq)
		u.done = true
		if u.wrongPath || !u.d.IsBranching() {
			continue
		}
		// Correct-path branch resolution.
		c.pred.Train(u.pc, u.outcome.NextPC, u.outcome.Taken, u.d.HasFlag(isa.FlagUncond))
		if c.wrongPathArmed && c.wrongPathFrom == seq {
			c.repairMispredict(seq, u.outcome.NextPC)
		}
	}
}

// repairMispredict squashes everything younger than the branch at seq and
// redirects fetch to the correct target.
func (c *CPU) repairMispredict(seq uint64, target uint64) {
	c.mispredicts++
	c.robTail = seq + 1
	c.fqReset()
	c.former.Reset()
	c.fetchPC = target
	c.wrongPathArmed = false
	c.haltSeen = false
	// Producers in the squashed region are gone.
	for f := range c.prod {
		for r := range c.prod[f] {
			if c.prod[f][r].valid && c.prod[f][r].seq >= c.robTail {
				c.prod[f][r] = producer{}
			}
		}
	}
	// The branch terminated its trace, so it owns the youngest surviving
	// ITR ROB entry; roll back to the checkpoint noted at its dispatch.
	if c.checker != nil {
		u := c.at(seq)
		if u.traceEnd {
			c.checker.RollbackTo(u.itrSeq)
		}
	}
	if c.renameChecker != nil {
		u := c.at(seq)
		if u.traceEnd {
			c.renameChecker.RollbackTo(u.renameSeq)
		}
	}
	c.renameSig.reset()
}

// ---- issue ----

func (c *CPU) sourceReady(s source) bool {
	switch s.kind {
	case srcReady:
		return true
	case srcPhantom:
		return false
	default:
		if s.seq < c.robHead || s.seq >= c.robTail {
			return true // committed or squashed
		}
		return c.at(s.seq).done
	}
}

func (c *CPU) issueStage() {
	issued := 0
	limit := c.robHead + uint64(c.cfg.IssueWindow)
	if limit > c.robTail {
		limit = c.robTail
	}
	for seq := c.robHead; seq < limit && issued < c.cfg.IssueWidth; seq++ {
		u := c.at(seq)
		if u.issued || u.done {
			continue
		}
		ready := true
		for i := 0; i < u.nsrc; i++ {
			if !c.sourceReady(u.srcs[i]) {
				ready = false
				break
			}
		}
		if !ready {
			// A scheduler transient can fire the instruction anyway.
			if c.schedFaultHook != nil && c.schedFaultHook(u.decodeIndex) {
				c.tacPrematureIssue(seq)
			} else {
				continue
			}
		}
		u.issued = true
		u.doneCycle = c.cycle + int64(isa.LatCycles(u.d.Lat))
		c.executing = append(c.executing, seq)
		issued++
	}
}

// ---- dispatch / decode ----

func (c *CPU) dispatchStage() {
	for n := 0; n < c.cfg.FetchWidth && c.fqLen() > 0; n++ {
		if c.robLen() == c.robCap {
			return // ROB full
		}
		if c.checker != nil && c.checker.Full() {
			return // ITR ROB full: stall decode (paper Section 2.2)
		}
		if c.renameChecker != nil && c.renameChecker.Full() {
			return
		}
		fi := c.fq[c.fqHead&c.fqMask]
		c.fqHead++

		// The memoized table supplies the fault-free signals; the fault hook
		// then corrupts this dynamic instance's private copy, so injection at
		// the chosen decode event works exactly as with a live decoder while
		// the table stays clean.
		c.decodeEvents++
		d := c.decode.Signals(fi.pc)
		// w mirrors d in packed form. The table memoizes the fault-free
		// packing, so the per-dispatch Pack() is only paid when a hook
		// actually corrupts this dynamic instance's signals.
		w := c.decode.Word(fi.pc)
		if c.faultHook != nil {
			if nd := c.faultHook(c.decodeEvents, fi.pc, c.wrongPathArmed, d); nd != d {
				d = nd
				w = d.Pack()
			}
		}
		if c.cfg.Redundancy != RedundancyNone {
			// Decode the instruction a second time (a second decoder for
			// dual-decode; a second pass for time redundancy) and compare
			// the signal vectors. Both copies are independently exposed to
			// faults.
			c.decodeEvents++
			c.redundancy.ExtraDecodes++
			d2 := c.decode.Signals(fi.pc)
			if c.faultHook != nil {
				d2 = c.faultHook(c.decodeEvents, fi.pc, c.wrongPathArmed, d2)
			}
			c.redundancy.Comparisons++
			if d != d2 {
				// Mismatch: a transient hit one copy. Recovery is a clean
				// re-decode before anything propagates.
				c.redundancy.Detections++
				d = c.decode.Signals(fi.pc)
				w = c.decode.Word(fi.pc)
			}
			if c.cfg.Redundancy == RedundancyTimeRedundant {
				// The second pass consumes a decode slot: halved frontend
				// bandwidth is the measurable cost of time redundancy.
				n++
			}
		}

		// Build the uop directly in its ROB slot; the slot is invisible
		// until robTail advances, so nothing observes it half-built.
		seq := c.robTail
		u := c.at(seq)
		*u = uop{
			valid:       true,
			pc:          fi.pc,
			predNext:    fi.predNext,
			d:           d,
			decodeIndex: c.decodeEvents,
			wrongPath:   c.wrongPathArmed,
		}

		// Rename stage: the map indexes are derived from the decode
		// signals; a rename-stage fault corrupts them without touching the
		// signals themselves, so only the rename signature can see it.
		exe := d
		if c.renameChecker != nil || c.renameFaultHook != nil {
			ri := renameIndexesOf(d)
			if c.renameFaultHook != nil {
				ri = c.renameFaultHook(c.decodeEvents, ri)
			}
			exe = applyRenameIndexes(d, ri)
			if c.renameChecker != nil {
				c.renameSig.add(ri)
			}
		}

		if !u.wrongPath {
			u.outcome = c.spec.exec(exe, fi.pc)
		}

		c.collectSources(u)
		c.robTail++

		if u.d.NumRdst == 1 && !u.wrongPath {
			file := 0
			if u.d.HasFlag(isa.FlagFP) {
				file = 1
			}
			if !(file == 0 && u.d.Rdst == 0) {
				c.prod[file][u.d.Rdst&0x1f] = producer{valid: true, seq: seq}
			}
		}

		// Trace formation at decode; trace ends dispatch into the ITR ROB
		// and access the ITR cache (Section 2.2).
		if ev, done := c.former.StepWord(fi.pc, w); done {
			u.traceEnd = true
			if c.checker != nil {
				u.itrSeq, _ = c.checker.DispatchTrace(ev, u.wrongPath)
			}
			if c.renameChecker != nil {
				rev := ev
				rev.Sig = c.renameSig.takeSig()
				u.renameSeq, _ = c.renameChecker.DispatchTrace(rev, u.wrongPath)
			}
		}

		// Misprediction detection: the functional outcome of a correct-path
		// branch is known at dispatch; the repair happens at resolve.
		if !u.wrongPath && d.IsBranching() && u.outcome.NextPC != fi.predNext {
			c.wrongPathArmed = true
			c.wrongPathFrom = seq
		}

		if !c.wrongPathArmed && d.HasFlag(isa.FlagTrap) && d.Opcode == isa.OpHalt {
			c.haltSeen = true
			c.fqReset()
			return
		}
	}
}

// collectSources derives the scheduler's operand dependences from the
// (possibly corrupted) signal vector: num_rsrc names how many operands the
// instruction waits for; a num_rsrc of 3 waits forever (deadlock, caught by
// the watchdog).
func (c *CPU) collectSources(u *uop) {
	file := 0
	if u.d.HasFlag(isa.FlagFP) && !u.d.HasFlag(isa.FlagLd) && !u.d.HasFlag(isa.FlagSt) {
		file = 1
	}
	add := func(f int, r isa.RegID) {
		s := source{kind: srcReady}
		if !(f == 0 && r == 0) {
			if p := c.prod[f][r&0x1f]; p.valid {
				s = source{kind: srcSeq, seq: p.seq}
			}
		}
		u.srcs[u.nsrc] = s
		u.nsrc++
	}
	n := int(u.d.NumRsrc)
	if n >= 1 {
		add(file, u.d.Rsrc1)
	}
	if n >= 2 {
		dataFile := file
		if u.d.HasFlag(isa.FlagFP) && u.d.HasFlag(isa.FlagSt) {
			dataFile = 1 // fp store data comes from the fp file
		}
		add(dataFile, u.d.Rsrc2)
	}
	if n >= 3 {
		u.srcs[u.nsrc] = source{kind: srcPhantom}
		u.nsrc++
	}
}

// ---- fetch ----

func (c *CPU) fetchStage() {
	if c.haltSeen {
		return
	}
	if c.pcFaultCycle > 0 && !c.pcFaultDone && c.cycle >= c.pcFaultCycle {
		c.pcFaultDone = true
		c.fetchPC ^= 1 << uint(c.pcFaultBit)
	}
	for n := 0; n < c.cfg.FetchWidth && c.fqLen() < c.cfg.FetchQueue; n++ {
		next, taken := c.pred.Predict(c.fetchPC)
		c.fq[c.fqTail&c.fqMask] = fetchedInst{pc: c.fetchPC, predNext: next, taken: taken}
		c.fqTail++
		c.fetchPC = next
		if taken {
			break // fetch group ends at a predicted-taken branch
		}
	}
}
