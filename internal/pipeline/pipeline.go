package pipeline

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"itr/internal/checkpoint"
	"itr/internal/core"
	"itr/internal/detect"
	"itr/internal/isa"
	"itr/internal/obs"
	"itr/internal/program"
	"itr/internal/trace"
)

// Config sizes the core. Zero fields take DefaultConfig values.
type Config struct {
	FetchWidth  int // instructions fetched per cycle
	IssueWidth  int // instructions issued per cycle
	CommitWidth int // instructions committed per cycle
	ROBSize     int
	IssueWindow int // scheduler window depth (entries scanned for issue)
	FetchQueue  int

	BTBEntries int
	BTBAssoc   int
	GshareBits uint

	// WatchdogCycles is the deadlock threshold: cycles without a commit
	// before the watchdog check fires (paper Section 4's "wdog").
	WatchdogCycles int64

	// ITREnabled attaches the fault-detection backend; ITR/ITRMode
	// configure it (the cache geometry only applies to the ITR backend;
	// the mode applies to all of them).
	ITREnabled bool
	ITR        core.Config
	ITRMode    core.Mode
	// Detector names the detection backend driven through core.Detector:
	// "" or "itr" (the default ITR checker, bit-identical to the
	// pre-interface pipeline), "reptfd" (chunked replay) or "dme"
	// (divergent dual execution). See internal/detect.
	Detector string
	// DetectorOpts tunes the non-ITR backends (zero value = defaults).
	DetectorOpts detect.Options

	// CheckpointEnabled attaches the coarse-grain checkpointing extension
	// of Section 2.3: machine checks roll back to the last checkpoint
	// instead of aborting the program, whenever the rollback is provably
	// sufficient.
	CheckpointEnabled bool
	// CheckpointIntervalCycles is how often a checkpoint take is attempted
	// (default 4096).
	CheckpointIntervalCycles int64
	// CheckpointPolicy selects the rollback-safety rule (default
	// CheckpointStamped).
	CheckpointPolicy CheckpointPolicy

	// Redundancy selects a conventional frontend-protection baseline
	// (structural duplication or time redundancy) to run instead of ITR.
	Redundancy RedundancyMode

	// RenameITREnabled attaches the rename-protection extension: a second
	// ITR checker over per-trace signatures of the rename-map indexes
	// (paper Section 1), covering faults the frontend signature cannot see.
	RenameITREnabled bool

	// TACEnabled attaches the Timestamp-based Assertion Check for the
	// out-of-order scheduler (Section 1's third regimen member): commit
	// asserts that no instruction issued before its producers completed,
	// and flushes on violation.
	TACEnabled bool

	// Probe, when non-nil, receives cross-run telemetry (cycles simulated,
	// decode events, snapshot restores). One probe may be shared by many
	// CPUs running concurrently; it never affects simulation results.
	Probe *Probe

	// Trace, when non-nil, receives cycle-stamped machine events (snapshot
	// capture/restore, slow detector polls, detections, retry rollbacks)
	// on a bounded ring. Rings are single-writer: share a ring between
	// CPUs only if they run on the same goroutine (the campaign workers
	// give each arena its own). Like Probe, it never affects simulation.
	Trace *obs.Ring

	// pad keeps the embedded Config's size a multiple of 64 bytes, so the
	// hot CPU fields that follow it keep their pre-Trace cache-line
	// alignment (measurable on the tightest pipeline benchmarks).
	_pad [56]byte
}

// Probe accumulates telemetry across pipeline runs. Fields are sharded
// lock-free counters (obs.Counter), so a single probe can be shared by
// every CPU of a campaign — each CPU adds on its own shard, so concurrent
// workers never contend on a cache line — and read live by a progress
// ticker or /metrics scrape. Counters are updated at run boundaries (end
// of each Run/RunUntilDecode call and each Restore), not per cycle, so
// probing is free on the hot path.
type Probe struct {
	// Cycles is the total number of cycles simulated.
	Cycles obs.Counter
	// DecodeEvents is the total number of decode events observed.
	DecodeEvents obs.Counter
	// SnapshotRestores counts Restore calls (campaign fast-forwards).
	SnapshotRestores obs.Counter
	// SnapshotCaptures counts Snapshot calls (pilot snapshot series).
	SnapshotCaptures obs.Counter
	// SnapshotPagesShared counts memory pages captured by reference at
	// snapshot boundaries — pages a pre-COW deep copy would have duplicated.
	SnapshotPagesShared obs.Counter
	// SnapshotPagesCopied counts memory pages physically copied by the
	// copy-on-write write path (first store to a page shared with a
	// snapshot); SnapshotBytesCopied is the same in bytes. Together they are
	// the total page-copying work the snapshot machinery actually performed,
	// which scales with pages dirtied between boundaries rather than with
	// the benchmark's whole footprint.
	SnapshotPagesCopied obs.Counter
	SnapshotBytesCopied obs.Counter
	// DetectorPolls counts commit-time detector polls (one per committing
	// instruction while a detector is attached).
	DetectorPolls obs.Counter
	// DetectorDetections counts mismatches the detector recorded.
	DetectorDetections obs.Counter
}

// CheckpointPolicy is the rule deciding when checkpoints are taken and when
// a rollback is known to undo the fault's damage.
type CheckpointPolicy int

// Checkpoint policies.
const (
	// CheckpointStamped takes a checkpoint at every interval and records
	// install timestamps on ITR cache lines. A machine check rolls back
	// only when the offending (faulty) line was installed after the
	// checkpoint, which proves the corruption postdates the checkpointed
	// state. Run-once code may leave permanently unchecked lines, but they
	// cannot invalidate younger checkpoints under this rule.
	CheckpointStamped CheckpointPolicy = iota + 1
	// CheckpointStrict is the paper's literal Section 2.3 condition: take a
	// checkpoint only when the ITR cache holds no unchecked lines. Sound,
	// but on workloads with run-once code the condition may never hold.
	CheckpointStrict
)

// DefaultConfig returns a 4-wide core in the spirit of the MIPS R10K with
// the paper's headline ITR cache (2-way, 1024 signatures).
func DefaultConfig() Config {
	return Config{
		FetchWidth:     4,
		IssueWidth:     4,
		CommitWidth:    4,
		ROBSize:        128,
		IssueWindow:    48,
		FetchQueue:     16,
		BTBEntries:     1024,
		BTBAssoc:       2,
		GshareBits:     12,
		WatchdogCycles: 8192,
		ITREnabled:     true,
		ITR:            core.DefaultConfig(),
		ITRMode:        core.ModeFull,
	}
}

func (c Config) normalize() Config {
	d := DefaultConfig()
	if c.FetchWidth == 0 {
		c.FetchWidth = d.FetchWidth
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = d.IssueWidth
	}
	if c.CommitWidth == 0 {
		c.CommitWidth = d.CommitWidth
	}
	if c.ROBSize == 0 {
		c.ROBSize = d.ROBSize
	}
	if c.IssueWindow == 0 {
		c.IssueWindow = d.IssueWindow
	}
	if c.FetchQueue == 0 {
		c.FetchQueue = d.FetchQueue
	}
	if c.BTBEntries == 0 {
		c.BTBEntries = d.BTBEntries
	}
	if c.BTBAssoc == 0 {
		c.BTBAssoc = d.BTBAssoc
	}
	if c.GshareBits == 0 {
		c.GshareBits = d.GshareBits
	}
	if c.WatchdogCycles == 0 {
		c.WatchdogCycles = d.WatchdogCycles
	}
	if c.ITRMode == 0 {
		c.ITRMode = core.ModeFull
	}
	if c.CheckpointIntervalCycles == 0 {
		c.CheckpointIntervalCycles = 4096
	}
	if c.CheckpointPolicy == 0 {
		c.CheckpointPolicy = CheckpointStamped
	}
	return c
}

// FaultHook lets a fault injector corrupt the decode signals of one (or
// more) dynamic decode events. decodeIndex counts every decode, including
// wrong-path instructions — exactly the population the paper injects into
// (campaigns ignore wrongPath; targeted tests may gate on it).
type FaultHook func(decodeIndex int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals

// CommitObserver sees every committed instruction in order (golden lockstep
// comparison attaches here). The outcome pointer aliases pipeline-internal
// storage and is valid only for the duration of the call: observers that
// retain the outcome must copy it.
type CommitObserver func(pc uint64, o *isa.Outcome)

// Termination says why a run ended.
type Termination int

// Termination causes.
const (
	TermBudget       Termination = iota + 1 // cycle budget exhausted
	TermHalt                                // program executed halt
	TermMachineCheck                        // ITR raised a machine check (program aborted)
	TermDeadlock                            // watchdog fired: no commit for WatchdogCycles
)

func (t Termination) String() string {
	switch t {
	case TermBudget:
		return "budget"
	case TermHalt:
		return "halt"
	case TermMachineCheck:
		return "machine-check"
	case TermDeadlock:
		return "deadlock"
	default:
		return fmt.Sprintf("termination(%d)", int(t))
	}
}

// Result summarizes a pipeline run.
type Result struct {
	Cycles       int64
	Committed    int64
	DecodeEvents int64
	Termination  Termination
	// SpcFired counts sequential-PC check violations observed at commit
	// (Section 2.5 / Section 4's "spc" check).
	SpcFired int64
	// Mispredicts counts resolved branch mispredictions (repair events).
	Mispredicts int64
	// ITRFlushes counts retry flushes performed by the checker.
	ITRFlushes int64
	// CheckpointRollbacks counts machine checks converted into coarse-grain
	// checkpoint rollbacks (Section 2.3 extension).
	CheckpointRollbacks int64
	// CheckpointsDeclined counts take attempts refused by the strict
	// policy's unchecked-lines condition.
	CheckpointsDeclined int64
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

type fetchedInst struct {
	pc       uint64
	predNext uint64
	taken    bool
}

type producer struct {
	valid bool
	seq   uint64
}

// CPU is the cycle-level core. Construct with New; one CPU runs one program.
type CPU struct {
	cfg    Config
	prog   *program.Program
	decode *program.DecodeTable // memoized per-static-instruction signals

	mem       *isa.Memory
	committed *isa.ArchState
	spec      *specState

	pred *Predictor
	// det is the attached detection backend; itr is the same object when
	// (and only when) the backend is the default ITR checker, so the
	// per-commit hot calls stay devirtualized and inlinable on the default
	// path.
	det           core.Detector
	itr           *core.Checker
	renameChecker *core.Checker
	renameSig     renameState
	ckpt          *checkpoint.Manager
	former        trace.Former

	slots            robSlots // SoA uop columns; ring length is a power of two ≥ cfg.ROBSize
	robMask          uint64
	robCap           int // logical capacity (cfg.ROBSize)
	robHead, robTail uint64
	// wheel is the completion calendar: bucket doneCycle&wheelMask holds the
	// sequence numbers finishing that cycle, so writeback touches only the
	// uops completing now instead of rescanning everything in flight. Stale
	// entries (squashed uops, possibly with their slot since recycled) are
	// filtered at pop by the issued/done bits and an exact doneCycle match.
	wheel       [wheelSlots][]uint64
	wbCompleted []uint64 // writeback scratch; logically empty between cycles

	prod [2][isa.NumRegs]producer

	fq             []fetchedInst // fetch-queue ring; power-of-two length ≥ cfg.FetchQueue
	fqMask         uint64
	fqHead, fqTail uint64
	fetchPC        uint64
	haltSeen       bool

	wrongPathFrom  uint64
	wrongPathArmed bool

	cycle           int64
	lastCommitCycle int64
	ckptRollbacks   int64
	ckptDeclined    int64
	redundancy      RedundancyStats
	decodeEvents    int64
	committedCount  int64
	expectedPC      uint64
	spcFired        int64
	mispredicts     int64
	itrFlushes      int64

	faultHook       FaultHook
	renameFaultHook RenameFaultHook
	schedFaultHook  SchedulerFaultHook
	observer        CommitObserver
	ckptObserver    CheckpointObserver
	tac             TACStats

	pcFaultCycle int64 // schedule: flip fetch PC at this cycle (0 = none)
	pcFaultBit   int
	pcFaultDone  bool

	terminated  bool
	termination Termination

	// memCopiedSeen is the memory's lifetime COW page-copy count already
	// published to the probe; run boundaries publish the delta.
	memCopiedSeen int64
	// detPolls counts commit-time detector polls for the probe; like the
	// COW counters it is published as a delta at run boundaries. The
	// detection count is deltaed against the detector's own (snapshot-
	// rewindable) mismatch counter, re-seeded on Restore.
	detPolls          int64
	detPollsSeen      int64
	detDetectionsSeen int64

	// obsShard selects this CPU's shard in the shared probe's counters,
	// assigned round-robin at construction so concurrent campaign workers
	// publish to distinct cache lines.
	obsShard uint32

	// detStamps timestamps each detector mismatch observed by this machine
	// since construction or the last Restore; detStamped is the detector
	// mismatch count already stamped (rewound alongside the detector).
	// detMismatch points at the detector's live mismatch counter
	// (Detector.MismatchCount, cached at construction) so the per-trace
	// retirement check is one load, not an interface call.
	detStamps   []DetectionStamp
	detStamped  int64
	detMismatch *int64
}

// DetectionStamp records the machine time at which one detector mismatch
// surfaced: the cycle count and committed-instruction count at the slow
// poll or trace retirement that recorded it. Fault studies subtract the
// injection point to get detection latency.
type DetectionStamp struct {
	Cycle     int64
	Committed int64
}

// DetectionStamps returns the stamps of detector mismatches observed since
// construction or the last Restore, in detection order. The slice aligns
// with the tail of Detector().Detections(): a restored detector may carry
// pre-snapshot detections the recycled machine never observed, but
// campaign snapshots are fault-free, so there stamp i is detection i.
func (c *CPU) DetectionStamps() []DetectionStamp { return c.detStamps }

// obsShardSeq distributes CPUs over probe shards round-robin.
var obsShardSeq atomic.Uint32

// New builds a CPU over prog with the given configuration.
func New(prog *program.Program, cfg Config) (*CPU, error) {
	cfg = cfg.normalize()
	c := &CPU{
		cfg:        cfg,
		prog:       prog,
		decode:     prog.DecodeTable(),
		mem:        isa.NewMemory(),
		pred:       NewPredictor(cfg.BTBEntries, cfg.BTBAssoc, cfg.GshareBits),
		slots:      newRobSlots(nextPow2(cfg.ROBSize)),
		robCap:     cfg.ROBSize,
		fq:         make([]fetchedInst, nextPow2(cfg.FetchQueue)),
		fetchPC:    prog.Entry,
		expectedPC: prog.Entry,
		obsShard:   obsShardSeq.Add(1),
	}
	c.robMask = uint64(c.slots.capacity - 1)
	c.fqMask = uint64(len(c.fq) - 1)
	c.committed = &isa.ArchState{Mem: c.mem, PC: prog.Entry}
	c.spec = newSpecState(c.committed, c.mem)
	if cfg.ITREnabled {
		det, err := detect.New(cfg.Detector, prog, cfg.ITR, cfg.ITRMode, cfg.DetectorOpts)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		c.det = det
		c.itr, _ = det.(*core.Checker)
		c.detMismatch = det.MismatchCount()
	}
	if cfg.RenameITREnabled {
		if !cfg.ITREnabled {
			return nil, fmt.Errorf("pipeline: rename ITR requires the main ITR checker")
		}
		rc, err := core.NewChecker(cfg.ITR, cfg.ITRMode)
		if err != nil {
			return nil, fmt.Errorf("pipeline: rename checker: %w", err)
		}
		c.renameChecker = rc
	}
	if cfg.CheckpointEnabled {
		if !cfg.ITREnabled {
			return nil, fmt.Errorf("pipeline: checkpointing requires a detector (its safety condition is the detector's SafeToCheckpoint query)")
		}
		m, err := checkpoint.New(c.committed, c.mem)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		c.ckpt = m
	}
	return c, nil
}

// SetFaultHook installs the decode-signal corruption hook.
func (c *CPU) SetFaultHook(h FaultHook) { c.faultHook = h }

// SchedulePCFault arms a single-event upset on the fetch PC (Section 2.5):
// at the first fetch at or after the given cycle, bit is flipped in the PC
// used to fetch. Depending on where the flip lands relative to trace
// boundaries, the fault is caught by the ITR signature, by branch
// resolution, by the sequential-PC check, or not at all.
func (c *CPU) SchedulePCFault(cycle int64, bit int) {
	c.pcFaultCycle = cycle
	c.pcFaultBit = bit & 63
	c.pcFaultDone = false
}

// SetCommitObserver installs the committed-instruction observer.
func (c *CPU) SetCommitObserver(o CommitObserver) { c.observer = o }

// CheckpointObserver is notified of checkpoint lifecycle events:
// taken == true when a checkpoint is established, taken == false when the
// machine rolls back to it. Golden lockstep comparators use this to keep a
// matching snapshot of the reference state.
type CheckpointObserver func(taken bool)

// SetCheckpointObserver installs the checkpoint lifecycle observer.
func (c *CPU) SetCheckpointObserver(o CheckpointObserver) { c.ckptObserver = o }

// checkpointRecover converts a machine check into a rollback to the last
// coarse-grain checkpoint: the committed state is restored, the offending
// trace's (faulty) ITR cache line is discarded so re-execution installs a
// fresh signature, and fetch restarts at the checkpoint PC.
func (c *CPU) checkpointRecover(faultyTracePC uint64) (restartPC uint64, ok bool) {
	if !c.ckpt.Valid() {
		return 0, false
	}
	// Rollback is sufficient only when the faulty instance committed after
	// the checkpoint: the stamp of the detector's evidence proves it.
	if stamp, found := c.det.SignatureStamp(faultyTracePC); found && stamp < c.ckpt.CommittedAt() {
		return 0, false
	}
	restart, ok := c.ckpt.Rollback()
	if !ok {
		return 0, false
	}
	c.ckptRollbacks++
	c.det.DiscardSignature(faultyTracePC)
	c.det.FlushAll()
	if c.renameChecker != nil {
		c.renameChecker.DiscardSignature(faultyTracePC)
		c.renameChecker.FlushAll()
	}
	if c.ckptObserver != nil {
		c.ckptObserver(false)
	}
	// Replayed instructions must not be double-counted by consumers of
	// CommittedInsts; rewinding the counter keeps commit counts consistent
	// with the architectural state. The sequential-PC chain also restarts
	// at the checkpoint.
	c.committedCount = c.ckpt.CommittedAt()
	c.expectedPC = restart
	return restart, true
}

// Checker exposes the ITR checker when the attached backend is the default
// ITR one (nil when detection is disabled or a rival backend is attached).
// ITR-specific studies and tests reach the cache through it; backend-generic
// code uses Detector instead.
func (c *CPU) Checker() *core.Checker { return c.itr }

// Detector exposes the attached detection backend (nil when disabled).
func (c *CPU) Detector() core.Detector { return c.det }

// Checkpoints exposes the coarse-grain checkpoint manager (nil when the
// extension is disabled).
func (c *CPU) Checkpoints() *checkpoint.Manager { return c.ckpt }

// Redundancy returns the baseline-comparator statistics (zero when
// RedundancyNone).
func (c *CPU) Redundancy() RedundancyStats { return c.redundancy }

// RenameChecker exposes the rename-protection checker (nil when disabled).
func (c *CPU) RenameChecker() *core.Checker { return c.renameChecker }

// Committed exposes the committed architectural state.
func (c *CPU) Committed() *isa.ArchState { return c.committed }

// DecodeEvents returns the number of decode events so far (the fault
// injector samples injection points from this space).
func (c *CPU) DecodeEvents() int64 { return c.decodeEvents }

// CommittedInsts returns the number of committed instructions so far.
func (c *CPU) CommittedInsts() int64 { return c.committedCount }

// OldestInFlightDecode returns the decode-event index of the oldest
// in-flight (dispatched, not yet committed) uop; ok is false when the ROB is
// empty. Decode indices are assigned in allocation order, so every in-flight
// uop's index is at least the returned one — the decided-outcome fault
// classifier uses that to prove a corrupted decode has fully drained from
// the window.
func (c *CPU) OldestInFlightDecode() (idx int64, ok bool) {
	if c.robLen() == 0 {
		return 0, false
	}
	return int64(c.slots.decodeIndex[c.slot(c.robHead)]), true
}

// Run executes until the cycle budget is exhausted or the machine
// terminates, returning the run summary. Run may be called repeatedly to
// extend a run; the budget is per-call.
func (c *CPU) Run(maxCycles int64) Result {
	return c.RunUntilDecode(maxCycles, -1)
}

// RunUntilDecode is Run with an additional stop condition: execution pauses
// at the first cycle boundary where the decode-event count has reached
// stopDecode (negative disables the condition). The snapshot pilot uses it
// to pause at snapshot intervals; the machine is left resumable, so a
// further Run/RunUntilDecode call continues exactly where this one stopped.
func (c *CPU) RunUntilDecode(maxCycles, stopDecode int64) Result {
	start := c.cycle
	decodeStart := c.decodeEvents
	for !c.terminated && c.cycle-start < maxCycles && (stopDecode < 0 || c.decodeEvents < stopDecode) {
		c.stepCycle()
	}
	if p := c.cfg.Probe; p != nil {
		p.Cycles.AddAt(c.obsShard, c.cycle-start)
		p.DecodeEvents.AddAt(c.obsShard, c.decodeEvents-decodeStart)
		c.publishCowCopies(p)
		if d := c.detPolls - c.detPollsSeen; d > 0 {
			p.DetectorPolls.AddAt(c.obsShard, d)
			c.detPollsSeen = c.detPolls
		}
		if c.det != nil {
			m := c.det.Stats().Mismatches
			if d := m - c.detDetectionsSeen; d > 0 {
				p.DetectorDetections.AddAt(c.obsShard, d)
			}
			c.detDetectionsSeen = m
		}
	}
	term := c.termination
	if !c.terminated {
		term = TermBudget
	}
	return Result{
		Cycles:              c.cycle,
		Committed:           c.committedCount,
		DecodeEvents:        c.decodeEvents,
		Termination:         term,
		SpcFired:            c.spcFired,
		Mispredicts:         c.mispredicts,
		ITRFlushes:          c.itrFlushes,
		CheckpointRollbacks: c.ckptRollbacks,
		CheckpointsDeclined: c.ckptDeclined,
	}
}

func (c *CPU) stepCycle() {
	c.commitStage()
	if c.terminated {
		return
	}
	c.writebackStage()
	c.issueStage()
	c.dispatchStage()
	c.fetchStage()
	c.cycle++
	if c.ckpt != nil && c.cycle%c.cfg.CheckpointIntervalCycles == 0 {
		take := true
		if c.cfg.CheckpointPolicy == CheckpointStrict {
			// Section 2.3's literal condition, generalized per backend: no
			// committed state is still awaiting verification.
			take = c.det.SafeToCheckpoint()
		}
		if take {
			c.ckpt.Take(c.committedCount)
			if c.ckptObserver != nil {
				c.ckptObserver(true)
			}
		} else {
			c.ckptDeclined++
		}
	}
	if c.cycle-c.lastCommitCycle > c.cfg.WatchdogCycles {
		c.terminated = true
		c.termination = TermDeadlock
	}
}

func (c *CPU) robLen() int { return int(c.robTail - c.robHead) }

// slot maps a sequence number to its ROB slot index. The ring is sized to a
// power of two so the hot-path index is a mask, not a divide.
func (c *CPU) slot(seq uint64) uint64 { return seq & c.robMask }

// nextPow2 returns the smallest power of two >= n (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ---- fetch queue (ring) ----

func (c *CPU) fqLen() int { return int(c.fqTail - c.fqHead) }

func (c *CPU) fqReset() { c.fqTail = c.fqHead }

// ---- commit ----

func (c *CPU) commitStage() {
	for n := 0; n < c.cfg.CommitWidth && c.robLen() > 0; n++ {
		idx := c.slot(c.robHead)
		if !c.slots.done.get(idx) {
			return
		}
		flags := c.slots.flags[idx]
		if flags&slotWrongPath != 0 {
			// Unreachable when resolution works: wrong-path uops are
			// always squashed by the mispredicted branch ahead of them.
			panic("pipeline: wrong-path uop reached commit")
		}
		if c.det != nil {
			c.detPolls++
			// The concrete-type call on the default backend inlines; rival
			// backends take the interface call.
			var quick bool
			if c.itr != nil {
				quick = c.itr.PollQuick()
			} else {
				quick = c.det.PollQuick()
			}
			if !quick {
				a := c.det.Poll()
				// Slow polls are where mismatches surface, so stamping
				// here keeps detection-latency tracking off the
				// quick-poll hot path. The counter guard matters for the
				// default backend, whose slow polls are routine (one per
				// checked trace) and overwhelmingly mismatch-free.
				c.cfg.Trace.Emit(obs.EvDetectorPoll, c.cycle, int64(a.Kind))
				if *c.detMismatch > c.detStamped {
					c.stampDetections()
				}
				switch a.Kind {
				case core.ActionStall:
					return
				case core.ActionRetry:
					c.itrFlush(a.RestartPC)
					return
				case core.ActionMachineCheck:
					if c.ckpt != nil {
						if restart, ok := c.checkpointRecover(a.RestartPC); ok {
							c.itrFlush(restart)
							return
						}
					}
					c.terminated = true
					c.termination = TermMachineCheck
					return
				}
			}
		}
		if c.renameChecker != nil && !c.renameChecker.PollQuick() {
			switch a := c.renameChecker.Poll(); a.Kind {
			case core.ActionStall:
				return
			case core.ActionRetry:
				c.itrFlush(a.RestartPC)
				return
			case core.ActionMachineCheck:
				if c.ckpt != nil {
					if restart, ok := c.checkpointRecover(a.RestartPC); ok {
						c.itrFlush(restart)
						return
					}
				}
				c.terminated = true
				c.termination = TermMachineCheck
				return
			}
		}
		// TAC (scheduler) assertion: flush and re-execute on an issue-order
		// violation, before the stale result can commit.
		if c.tacCommitCheck(flags) {
			c.tac.Recovered++
			c.itrFlush(c.slots.pc[idx])
			return
		}

		pc := c.slots.pc[idx]
		out := &c.slots.outcome[idx]
		// Sequential-PC check (Section 2.5): a committing instruction's PC
		// must match the commit PC chain.
		if pc != c.expectedPC {
			c.spcFired++
		}
		c.expectedPC = out.NextPC

		if c.ckpt != nil {
			c.ckpt.BeforeStore(*out)
		}
		c.committed.ApplyRef(out)
		if out.MemWrite && flags&slotTACViolated == 0 {
			// The store's effect is in committed memory now; release its
			// overlay word. A TAC-violated uop commits a recomputed outcome
			// whose store may not match the one dispatch put in the overlay,
			// so its entry is left for the flush the violation triggers.
			c.spec.overlay.commitStore(out.MemAddr)
		}
		c.committedCount++
		if c.itr != nil {
			c.itr.SetNow(c.committedCount)
		} else if c.det != nil {
			c.det.SetNow(c.committedCount)
		}
		c.lastCommitCycle = c.cycle
		if c.observer != nil {
			c.observer(pc, out)
		}
		if flags&slotTraceEnd != 0 {
			if c.itr != nil {
				c.itr.CommitTraceEnd()
			} else if c.det != nil {
				// Rival backends (RepTFD, DME) record mismatches during
				// trace retirement rather than in Poll; stamp them here.
				// The devirtualized ITR path records only in Poll, so it
				// skips the extra check. The counter load keeps the
				// no-mismatch case (every fault-free trace) call-free.
				c.det.CommitTraceEnd()
				if *c.detMismatch > c.detStamped {
					c.stampDetections()
				}
			}
			if c.renameChecker != nil {
				c.renameChecker.CommitTraceEnd()
			}
		}
		c.robHead++
		if out.Halt {
			c.terminated = true
			c.termination = TermHalt
			return
		}
	}
}

// stampDetections timestamps any mismatches the detector has recorded
// since the last stamp, attributing them to the current cycle and
// committed-instruction count. Callers invoke it only on slow paths (slow
// polls, and rival-backend trace retirements whose counter advanced),
// never per commit.
func (c *CPU) stampDetections() {
	m := *c.detMismatch
	for c.detStamped < m {
		c.detStamped++
		c.detStamps = append(c.detStamps, DetectionStamp{Cycle: c.cycle, Committed: c.committedCount})
		c.cfg.Trace.Emit(obs.EvDetection, c.cycle, c.committedCount)
	}
}

// itrFlush implements the Section 2.2 recovery: flush the whole window and
// restart fetch at the faulting trace's start PC. Architectural state is
// intact because nothing from the flushed window committed.
func (c *CPU) itrFlush(restartPC uint64) {
	c.itrFlushes++
	c.cfg.Trace.Emit(obs.EvRollback, c.cycle, int64(restartPC))
	c.robTail = c.robHead
	for i := range c.wheel {
		c.wheel[i] = c.wheel[i][:0]
	}
	c.fqReset()
	c.former.Reset()
	c.renameSig.reset()
	// Both detectors' in-flight windows are squashed. The detector whose
	// retry caused this flush has already cleared itself (and armed its
	// retry state); FlushAll on an empty window is a no-op, so flushing
	// both keeps the two in-flight windows aligned trace-for-trace.
	if c.det != nil {
		c.det.FlushAll()
	}
	if c.renameChecker != nil {
		c.renameChecker.FlushAll()
	}
	c.spec.restore(c.committed)
	c.fetchPC = restartPC
	c.wrongPathArmed = false
	c.haltSeen = false
	for f := range c.prod {
		for r := range c.prod[f] {
			c.prod[f][r] = producer{}
		}
	}
}

// ---- writeback / branch resolution ----

// wheelSlots sizes the completion calendar; it must exceed the largest
// isa.LatCycles value (6) so a bucket never mixes two completion cycles.
const (
	wheelSlots = 8
	wheelMask  = wheelSlots - 1
)

func (c *CPU) writebackStage() {
	bucket := c.wheel[c.cycle&wheelMask]
	if len(bucket) == 0 {
		return
	}
	completed := c.wbCompleted[:0]
	for _, seq := range bucket {
		if seq < c.robHead || seq >= c.robTail {
			continue // squashed or committed
		}
		idx := c.slot(seq)
		// A recycled slot invalidates stale bucket entries: the new occupant
		// is unissued, already done, or issued toward a different cycle.
		if !c.slots.issued.get(idx) || c.slots.done.get(idx) ||
			int64(c.slots.doneCycle[idx]) != c.cycle {
			continue
		}
		completed = append(completed, seq)
	}
	c.wheel[c.cycle&wheelMask] = bucket[:0]
	c.wbCompleted = completed[:0] // keep the grown backing array for next cycle
	// Complete oldest-first so the oldest misprediction wins the redirect.
	for i := 1; i < len(completed); i++ {
		for j := i; j > 0 && completed[j] < completed[j-1]; j-- {
			completed[j], completed[j-1] = completed[j-1], completed[j]
		}
	}
	for _, seq := range completed {
		if seq < c.robHead || seq >= c.robTail {
			continue // squashed by an older branch this cycle
		}
		idx := c.slot(seq)
		if c.slots.done.get(idx) {
			continue // duplicate bucket entry for a recycled sequence number
		}
		c.slots.done.set(idx)
		c.wake(idx, seq)
		flags := c.slots.flags[idx]
		if flags&slotWrongPath != 0 || flags&slotBranching == 0 {
			continue
		}
		// Correct-path branch resolution.
		out := &c.slots.outcome[idx]
		c.pred.Train(c.slots.pc[idx], out.NextPC, out.Taken, flags&slotUncond != 0)
		if c.wrongPathArmed && c.wrongPathFrom == seq {
			c.repairMispredict(seq, out.NextPC)
		}
	}
}

// repairMispredict squashes everything younger than the branch at seq and
// redirects fetch to the correct target.
func (c *CPU) repairMispredict(seq uint64, target uint64) {
	c.mispredicts++
	c.robTail = seq + 1
	c.fqReset()
	c.former.Reset()
	c.fetchPC = target
	c.wrongPathArmed = false
	c.haltSeen = false
	// Producers in the squashed region are gone.
	for f := range c.prod {
		for r := range c.prod[f] {
			if c.prod[f][r].valid && c.prod[f][r].seq >= c.robTail {
				c.prod[f][r] = producer{}
			}
		}
	}
	// Squashed consumers' wakeup nodes sit at the head of surviving
	// producers' lists (insertion is newest-first), in front of surviving
	// waiters. Once a squashed slot is recycled, its node's next-link is
	// overwritten by the new occupant's registration, which would strand
	// every surviving waiter behind it. Rebuild the survivors' lists from
	// the source words — the authoritative record of unsatisfied operands.
	for s := c.robHead; s < c.robTail; s++ {
		c.slots.wakeHead[c.slot(s)] = wakeNone
	}
	for s := c.robHead; s < c.robTail; s++ {
		idx := c.slot(s)
		if c.slots.issued.get(idx) {
			continue // already in the completion wheel; never waits again
		}
		srcs := c.slots.srcs[idx*3 : idx*3+3 : idx*3+3]
		pending := uint64(0)
		for k := uint64(0); k < 3; k++ {
			w := srcs[k]
			if w == 0 {
				continue
			}
			if w < srcWordPhantom {
				pseq := w & srcSeqMask
				pidx := pseq & c.robMask
				if pseq < c.robHead || pseq >= c.robTail || c.slots.done.get(pidx) {
					srcs[k] = 0
					continue
				}
				c.slots.wakeNext[idx*3+k] = c.slots.wakeHead[pidx]
				c.slots.wakeHead[pidx] = idx*3 + k
			}
			pending++
		}
		c.slots.pending[idx] = pending
		c.slots.ready.put(idx, pending == 0)
	}
	// The branch terminated its trace, so it owns the youngest surviving
	// ITR ROB entry; roll back to the checkpoint noted at its dispatch.
	if idx := c.slot(seq); c.slots.flags[idx]&slotTraceEnd != 0 {
		if c.det != nil {
			c.det.RollbackTo(c.slots.itrSeq[idx])
		}
		if c.renameChecker != nil {
			c.renameChecker.RollbackTo(c.slots.renameSeq[idx])
		}
	}
	c.renameSig.reset()
}

// ---- issue ----

// sourceReady reports whether a non-zero packed source word is satisfied.
// The zero (ready) encoding is filtered by the caller, which keeps this
// within the compiler's inlining budget for the issue scan.
func (c *CPU) sourceReady(w uint64) bool {
	if w >= srcWordPhantom {
		return false // operand that can never become ready (fault-induced)
	}
	seq := w & srcSeqMask
	if seq < c.robHead || seq >= c.robTail {
		return true // committed or squashed
	}
	return c.slots.done.get(seq & c.robMask)
}

func (c *CPU) issueStage() {
	if c.schedFaultHook != nil {
		// Premature-issue injection needs to see the not-ready candidates the
		// fast path never visits; use the polling scan.
		c.issueStageSlow()
		return
	}
	issued := 0
	limit := c.robHead + uint64(c.cfg.IssueWindow)
	if limit > c.robTail {
		limit = c.robTail
	}
	width := c.cfg.IssueWidth
	issuedCol, doneCol, readyCol := c.slots.issued, c.slots.done, c.slots.ready
	// Walk the window one flag word at a time: one AND over the three bitset
	// words yields exactly the issueable slots — readiness is maintained
	// incrementally by wake, so no per-candidate operand polling happens here.
	for seq := c.robHead; seq < limit && issued < width; {
		idx := c.slot(seq)
		off := idx & 63
		span := 64 - off
		if rem := limit - seq; rem < span {
			span = rem
		}
		if wrap := uint64(c.slots.capacity) - idx; wrap < span {
			span = wrap // the ring wraps mid-word for rings shorter than 64
		}
		cand := (readyCol[idx>>6] &^ (issuedCol[idx>>6] | doneCol[idx>>6])) >> off
		if span < 64 {
			cand &= 1<<span - 1
		}
		for cand != 0 && issued < width {
			b := uint64(bits.TrailingZeros64(cand))
			cand &= cand - 1
			s := seq + b
			si := c.slot(s)
			issuedCol.set(si)
			dc := uint64(c.cycle + int64(c.slots.lat[si]))
			c.slots.doneCycle[si] = dc
			c.wheel[dc&wheelMask] = append(c.wheel[dc&wheelMask], s)
			issued++
		}
		seq += span
	}
}

// issueStageSlow is the readiness-polling scan, semantically identical to the
// fast path for every slot the fast path would issue, but additionally
// offering each not-ready candidate to the scheduler fault hook. It must not
// modify the source words: the wakeup bookkeeping (pending counts, producer
// lists) stays live underneath so the fast path is always re-entrant.
func (c *CPU) issueStageSlow() {
	issued := 0
	limit := c.robHead + uint64(c.cfg.IssueWindow)
	if limit > c.robTail {
		limit = c.robTail
	}
	width := c.cfg.IssueWidth
	issuedCol, doneCol := c.slots.issued, c.slots.done
	for seq := c.robHead; seq < limit && issued < width; {
		idx := c.slot(seq)
		off := idx & 63
		span := 64 - off
		if rem := limit - seq; rem < span {
			span = rem
		}
		if wrap := uint64(c.slots.capacity) - idx; wrap < span {
			span = wrap
		}
		cand := ^(issuedCol[idx>>6] | doneCol[idx>>6]) >> off
		if span < 64 {
			cand &= 1<<span - 1
		}
		for cand != 0 && issued < width {
			b := uint64(bits.TrailingZeros64(cand))
			cand &= cand - 1
			s := seq + b
			si := c.slot(s)
			srcs := c.slots.srcs[si*3 : si*3+3 : si*3+3]
			ready := true
			for k := 0; k < 3; k++ {
				if w := srcs[k]; w != 0 && !c.sourceReady(w) {
					ready = false
				}
			}
			if !ready {
				// A scheduler transient can fire the instruction anyway.
				if c.schedFaultHook(int64(c.slots.decodeIndex[si])) {
					c.tacPrematureIssue(s)
				} else {
					continue
				}
			}
			issuedCol.set(si)
			dc := uint64(c.cycle + int64(c.slots.lat[si]))
			c.slots.doneCycle[si] = dc
			c.wheel[dc&wheelMask] = append(c.wheel[dc&wheelMask], s)
			issued++
		}
		seq += span
	}
}

// wake satisfies every source word waiting on the completed producer at slot
// pidx (sequence pseq): each registered waiter's word is cleared and its
// pending count dropped, setting the ready bit when the last operand arrives.
// Nodes are validated against the exact packed word before acting, so links
// stranded by slot recycling skip harmlessly; the step bound caps walks over
// next-pointers corrupted the same way (a corrupted hop can only skip or
// correctly wake, never mis-wake).
func (c *CPU) wake(pidx, pseq uint64) {
	n := c.slots.wakeHead[pidx]
	if n == wakeNone {
		return
	}
	c.slots.wakeHead[pidx] = wakeNone
	want := srcWordSeq | pseq
	for steps := 3 * c.slots.capacity; n != wakeNone && steps > 0; steps-- {
		next := c.slots.wakeNext[n]
		if c.slots.srcs[n] == want {
			c.slots.srcs[n] = 0
			ci := n / 3
			c.slots.pending[ci]--
			if c.slots.pending[ci] == 0 {
				c.slots.ready.set(ci)
			}
		}
		n = next
	}
}

// ---- dispatch / decode ----

func (c *CPU) dispatchStage() {
	for n := 0; n < c.cfg.FetchWidth && c.fqLen() > 0; n++ {
		if c.robLen() == c.robCap {
			return // ROB full
		}
		if c.det != nil && c.det.Full() {
			return // detector in-flight window full: stall decode (Section 2.2)
		}
		if c.renameChecker != nil && c.renameChecker.Full() {
			return
		}
		fi := c.fq[c.fqHead&c.fqMask]
		c.fqHead++

		// The memoized table supplies the fault-free signals; the fault hook
		// then corrupts this dynamic instance's private copy, so injection at
		// the chosen decode event works exactly as with a live decoder while
		// the table stays clean.
		c.decodeEvents++
		d := c.decode.Signals(fi.pc)
		// w mirrors d in packed form. The table memoizes the fault-free
		// packing, so the per-dispatch Pack() is only paid when a hook
		// actually corrupts this dynamic instance's signals.
		w := c.decode.Word(fi.pc)
		if c.faultHook != nil {
			if nd := c.faultHook(c.decodeEvents, fi.pc, c.wrongPathArmed, d); nd != d {
				d = nd
				w = d.Pack()
			}
		}
		if c.cfg.Redundancy != RedundancyNone {
			// Decode the instruction a second time (a second decoder for
			// dual-decode; a second pass for time redundancy) and compare
			// the signal vectors. Both copies are independently exposed to
			// faults.
			c.decodeEvents++
			c.redundancy.ExtraDecodes++
			d2 := c.decode.Signals(fi.pc)
			if c.faultHook != nil {
				d2 = c.faultHook(c.decodeEvents, fi.pc, c.wrongPathArmed, d2)
			}
			c.redundancy.Comparisons++
			if d != d2 {
				// Mismatch: a transient hit one copy. Recovery is a clean
				// re-decode before anything propagates.
				c.redundancy.Detections++
				d = c.decode.Signals(fi.pc)
				w = c.decode.Word(fi.pc)
			}
			if c.cfg.Redundancy == RedundancyTimeRedundant {
				// The second pass consumes a decode slot: halved frontend
				// bandwidth is the measurable cost of time redundancy.
				n++
			}
		}

		// Build the uop directly in its ROB slot columns; the slot is
		// invisible until robTail advances, so nothing observes it
		// half-built. Every column a recycled slot may carry stale data in
		// is rewritten here (the flags word is accumulated locally and
		// stored once, below).
		seq := c.robTail
		idx := c.slot(seq)
		wrongPath := c.wrongPathArmed
		flags := slotValid
		if wrongPath {
			flags |= slotWrongPath
		}
		if d.IsBranching() {
			flags |= slotBranching
		}
		if d.HasFlag(isa.FlagUncond) {
			flags |= slotUncond
		}
		c.slots.issued.clear(idx)
		c.slots.done.clear(idx)
		c.slots.pc[idx] = fi.pc
		c.slots.predNext[idx] = fi.predNext
		c.slots.d[idx] = d
		c.slots.decodeIndex[idx] = uint64(c.decodeEvents)
		c.slots.lat[idx] = uint64(isa.LatCycles(d.Lat))

		// Rename stage: the map indexes are derived from the decode
		// signals; a rename-stage fault corrupts them without touching the
		// signals themselves, so only the rename signature can see it.
		exe := d
		if c.renameChecker != nil || c.renameFaultHook != nil {
			ri := renameIndexesOf(d)
			if c.renameFaultHook != nil {
				ri = c.renameFaultHook(c.decodeEvents, ri)
			}
			exe = applyRenameIndexes(d, ri)
			if c.renameChecker != nil {
				c.renameSig.add(ri)
			}
		}

		out := &c.slots.outcome[idx]
		if wrongPath {
			*out = isa.Outcome{}
		} else {
			c.spec.execInto(out, exe, fi.pc)
		}

		c.collectSources(idx, d)
		c.robTail++

		if d.NumRdst == 1 && !wrongPath {
			file := 0
			if d.HasFlag(isa.FlagFP) {
				file = 1
			}
			if !(file == 0 && d.Rdst == 0) {
				c.prod[file][d.Rdst&0x1f] = producer{valid: true, seq: seq}
			}
		}

		// Trace formation at decode; trace ends dispatch into the ITR ROB
		// and access the ITR cache (Section 2.2).
		if c.former.StepTerm(fi.pc, w) {
			ev := c.former.Take(w)
			flags |= slotTraceEnd
			if c.det != nil {
				itrSeq, _ := c.det.DispatchTrace(ev, wrongPath)
				c.slots.itrSeq[idx] = itrSeq
			}
			if c.renameChecker != nil {
				rev := ev
				rev.Sig = c.renameSig.takeSig()
				renameSeq, _ := c.renameChecker.DispatchTrace(rev, wrongPath)
				c.slots.renameSeq[idx] = renameSeq
			}
		}
		c.slots.flags[idx] = flags

		// Misprediction detection: the functional outcome of a correct-path
		// branch is known at dispatch; the repair happens at resolve.
		if !wrongPath && d.IsBranching() && out.NextPC != fi.predNext {
			c.wrongPathArmed = true
			c.wrongPathFrom = seq
		}

		if !c.wrongPathArmed && d.HasFlag(isa.FlagTrap) && d.Opcode == isa.OpHalt {
			c.haltSeen = true
			c.fqReset()
			return
		}
	}
}

// collectSources derives the scheduler's operand dependences from the
// (possibly corrupted) signal vector, writing the slot's three packed source
// words (zero = ready, so unused operand slots need no count): num_rsrc names
// how many operands the instruction waits for; a num_rsrc of 3 waits forever
// (deadlock, caught by the watchdog).
func (c *CPU) collectSources(idx uint64, d isa.DecodeSignals) {
	srcs := c.slots.srcs[idx*3 : idx*3+3 : idx*3+3]
	srcs[0], srcs[1], srcs[2] = 0, 0, 0
	file := 0
	if d.HasFlag(isa.FlagFP) && !d.HasFlag(isa.FlagLd) && !d.HasFlag(isa.FlagSt) {
		file = 1
	}
	n := int(d.NumRsrc)
	if n >= 1 {
		srcs[0] = c.srcWord(file, d.Rsrc1)
	}
	if n >= 2 {
		dataFile := file
		if d.HasFlag(isa.FlagFP) && d.HasFlag(isa.FlagSt) {
			dataFile = 1 // fp store data comes from the fp file
		}
		srcs[1] = c.srcWord(dataFile, d.Rsrc2)
	}
	if n >= 3 {
		srcs[2] = srcWordPhantom
	}

	// Wakeup bookkeeping. This slot is a fresh producer: abandon whatever
	// list a previous occupant left. Then resolve each operand once, here:
	// words whose producer already completed (or left the window) clear to
	// ready; the rest register on their producer's wakeup list and are never
	// polled again.
	c.slots.wakeHead[idx] = wakeNone
	pending := uint64(0)
	for k := uint64(0); k < 3; k++ {
		w := srcs[k]
		if w == 0 {
			continue
		}
		if w < srcWordPhantom {
			seq := w & srcSeqMask
			pidx := seq & c.robMask
			if seq < c.robHead || seq >= c.robTail || c.slots.done.get(pidx) {
				srcs[k] = 0
				continue
			}
			c.slots.wakeNext[idx*3+k] = c.slots.wakeHead[pidx]
			c.slots.wakeHead[pidx] = idx*3 + k
		}
		pending++ // a phantom word registers nowhere: it can never wake
	}
	c.slots.pending[idx] = pending
	c.slots.ready.put(idx, pending == 0)
}

// srcWord packs one operand dependence: the in-flight producer's sequence
// number, or 0 (ready) for the hardwired zero register or a committed value.
func (c *CPU) srcWord(f int, r isa.RegID) uint64 {
	if f == 0 && r == 0 {
		return 0
	}
	if p := &c.prod[f][r&0x1f]; p.valid {
		return srcWordSeq | p.seq
	}
	return 0
}

// ---- fetch ----

func (c *CPU) fetchStage() {
	if c.haltSeen {
		return
	}
	if c.pcFaultCycle > 0 && !c.pcFaultDone && c.cycle >= c.pcFaultCycle {
		c.pcFaultDone = true
		c.fetchPC ^= 1 << uint(c.pcFaultBit)
	}
	for n := 0; n < c.cfg.FetchWidth && c.fqLen() < c.cfg.FetchQueue; n++ {
		next, taken := c.pred.Predict(c.fetchPC)
		c.fq[c.fqTail&c.fqMask] = fetchedInst{pc: c.fetchPC, predNext: next, taken: taken}
		c.fqTail++
		c.fetchPC = next
		if taken {
			break // fetch group ends at a predicted-taken branch
		}
	}
}
