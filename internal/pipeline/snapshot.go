package pipeline

import (
	"fmt"

	"itr/internal/checkpoint"
	"itr/internal/core"
	"itr/internal/isa"
	"itr/internal/obs"
	"itr/internal/trace"
)

// Snapshot is a deep, immutable capture of a CPU's complete mutable state at
// a cycle boundary: architectural state (registers + memory), the
// microarchitectural window (ROB, fetch queue, scheduler producers,
// speculative view), predictor tables, ITR checker and checkpoint state, and
// every counter that feeds Result or Detail classification. Restoring a
// snapshot into a structurally identical CPU resumes execution bit-for-bit:
// the resumed machine's trajectory is indistinguishable from one that ran
// from cycle 0.
//
// Snapshots share no mutable state with the CPU that produced them: memory
// pages are shared copy-on-write (the producing CPU copies a page before its
// first post-capture store to it), everything else is deep-copied. One
// snapshot may therefore be restored into many CPUs concurrently (the fault
// campaign's worker pool does exactly this).
type Snapshot struct {
	// Cycle is the cycle count at capture.
	Cycle int64
	// DecodeEvents is the decode-event count at capture (the fault
	// injector's fast-forward key).
	DecodeEvents int64
	// Committed is the committed-instruction count at capture (the golden
	// stream cursor's seek position).
	Committed int64

	cfg Config // normalized capture-time config, for structural validation

	mem          *isa.Memory
	regsR, regsF [isa.NumRegs]uint64
	pc           uint64

	specR, specF [isa.NumRegs]uint64
	overlay      map[uint64]specWord

	predBTB     []btbEntry
	predGshare  []uint8
	predHistory uint64
	predClock   uint64

	det           core.DetectorState
	renameChecker core.DetectorState
	renameSig     renameState
	ckpt          *checkpoint.State
	former        trace.Former

	slots            robSlots
	robHead, robTail uint64
	wheel            [wheelSlots][]uint64
	prod             [2][isa.NumRegs]producer
	fetchQ           []fetchedInst
	fetchPC          uint64
	haltSeen         bool

	wrongPathFrom  uint64
	wrongPathArmed bool

	lastCommitCycle int64
	ckptRollbacks   int64
	ckptDeclined    int64
	redundancy      RedundancyStats
	expectedPC      uint64
	spcFired        int64
	mispredicts     int64
	itrFlushes      int64
	tac             TACStats

	pcFaultCycle int64
	pcFaultBit   int
	pcFaultDone  bool

	terminated  bool
	termination Termination
}

// MemPages returns the number of memory pages the snapshot references.
// Memory capture is copy-on-write, so most of these are shared by reference
// with earlier snapshots of the same machine (and with the live memory until
// it overwrites them); only MemOwnedPages of them were first materialized by
// this snapshot. Summing MemPages over a snapshot series therefore counts
// shared pages once per snapshot; summing MemOwnedPages approximates the
// series' resident footprint.
func (s *Snapshot) MemPages() int { return s.mem.NumPages() }

// MemOwnedPages returns the number of memory pages first captured by this
// snapshot: the pages dirtied since the previous snapshot of the same
// machine (for the first snapshot, the whole footprint). The remaining
// MemPages - MemOwnedPages pages are held by reference only.
func (s *Snapshot) MemOwnedPages() int { return s.mem.OwnedPages() }

// VisitMemPages calls fn with the ID of every memory page the snapshot
// references (campaign footprint reporting deduplicates page IDs across a
// snapshot series with it). Order is unspecified.
func (s *Snapshot) VisitMemPages(fn func(pageID uint64)) {
	s.mem.VisitPages(func(id uint64, _ []uint64) { fn(id) })
}

// ArchFork returns an independent functional machine seeded with the
// snapshot's committed architectural state: registers and PC copied, memory
// adopted copy-on-write from the snapshot's page table. The fork and any
// machine restored from the same snapshot share every untouched page by
// pointer, so comparing the two with isa.Memory.Equal degenerates to a
// generation-tag page diff: only pages either side dirtied since the
// snapshot are word-compared. The decided-outcome fault classifier walks
// this fork along the golden commit stream to prove re-convergence.
func (s *Snapshot) ArchFork() (*isa.ArchState, *isa.Memory) {
	m := isa.NewMemory()
	m.CopyFrom(s.mem)
	return &isa.ArchState{R: s.regsR, F: s.regsF, PC: s.pc, Mem: m}, m
}

// publishCowCopies publishes the memory's not-yet-reported copy-on-write
// page copies to the probe. Called at run boundaries and around
// snapshot/restore, so COW accounting stays off the per-store hot path.
func (c *CPU) publishCowCopies(p *Probe) {
	if n := c.mem.CopiedPages(); n > c.memCopiedSeen {
		delta := n - c.memCopiedSeen
		c.memCopiedSeen = n
		p.SnapshotPagesCopied.AddAt(c.obsShard, delta)
		p.SnapshotBytesCopied.AddAt(c.obsShard, delta*isa.PageBytes)
	}
}

// Snapshot captures the CPU's complete mutable state. Call it only between
// cycles (i.e. outside stepCycle — after Run/RunUntilDecode returns).
//
// Memory is captured copy-on-write: the snapshot adopts the CPU's page table
// by reference (no page copies), and the CPU's next store to any captured
// page copies it first. Capture cost is therefore O(page-table), and the
// copying the machine pays afterwards scales with the pages it actually
// dirties before the next boundary, not with its whole footprint.
func (c *CPU) Snapshot() *Snapshot {
	s := &Snapshot{
		Cycle:        c.cycle,
		DecodeEvents: c.decodeEvents,
		Committed:    c.committedCount,

		cfg: c.cfg,

		mem:   c.mem.Snapshot(),
		regsR: c.committed.R,
		regsF: c.committed.F,
		pc:    c.committed.PC,

		specR:   c.spec.arch.R,
		specF:   c.spec.arch.F,
		overlay: make(map[uint64]specWord, len(c.spec.overlay.words)),

		predBTB:     make([]btbEntry, len(c.pred.btb)),
		predGshare:  make([]uint8, len(c.pred.gshare)),
		predHistory: c.pred.history,
		predClock:   c.pred.clock,

		renameSig: c.renameSig,
		former:    c.former,

		slots:    c.slots.clone(),
		robHead:  c.robHead,
		robTail:  c.robTail,
		prod:     c.prod,
		fetchQ:   make([]fetchedInst, 0, c.fqLen()),
		fetchPC:  c.fetchPC,
		haltSeen: c.haltSeen,

		wrongPathFrom:  c.wrongPathFrom,
		wrongPathArmed: c.wrongPathArmed,

		lastCommitCycle: c.lastCommitCycle,
		ckptRollbacks:   c.ckptRollbacks,
		ckptDeclined:    c.ckptDeclined,
		redundancy:      c.redundancy,
		expectedPC:      c.expectedPC,
		spcFired:        c.spcFired,
		mispredicts:     c.mispredicts,
		itrFlushes:      c.itrFlushes,
		tac:             c.tac,

		pcFaultCycle: c.pcFaultCycle,
		pcFaultBit:   c.pcFaultBit,
		pcFaultDone:  c.pcFaultDone,

		terminated:  c.terminated,
		termination: c.termination,
	}
	for i := range c.wheel {
		s.wheel[i] = append([]uint64(nil), c.wheel[i]...)
	}
	for k, v := range c.spec.overlay.words {
		s.overlay[k] = v
	}
	// Linearize the fetch-queue ring oldest-first.
	for i := c.fqHead; i != c.fqTail; i++ {
		s.fetchQ = append(s.fetchQ, c.fq[i&c.fqMask])
	}
	copy(s.predBTB, c.pred.btb)
	copy(s.predGshare, c.pred.gshare)
	if c.det != nil {
		s.det = c.det.CaptureState()
	}
	if c.renameChecker != nil {
		s.renameChecker = c.renameChecker.CaptureState()
	}
	if c.ckpt != nil {
		s.ckpt = c.ckpt.CaptureState()
	}
	if p := c.cfg.Probe; p != nil {
		p.SnapshotCaptures.AddAt(c.obsShard, 1)
		p.SnapshotPagesShared.AddAt(c.obsShard, int64(s.mem.SharedPages()))
		c.publishCowCopies(p)
	}
	c.cfg.Trace.Emit(obs.EvSnapshotCapture, c.cycle, int64(s.mem.NumPages()))
	return s
}

// Restore overwrites the CPU's mutable state with the snapshot's, preserving
// the CPU's identity: its memory, checker cache, and checkpoint-manager
// pointers stay valid, and installed hooks/observers are untouched. Memory
// is adopted copy-on-write — pages are shared by reference and the CPU
// copies a page on its first store to it — so restore cost scales with the
// pages the CPU had dirtied since its last synchronization with this
// snapshot (for a fresh CPU: one page-table walk, zero page copies), not
// with the benchmark's footprint. The CPU's configuration must structurally match the snapshot's;
// only ITRMode may differ — mode is policy, not state, and fault-free
// trajectories are identical across modes. The snapshot is only read, so one
// snapshot may be restored into many CPUs concurrently.
func (c *CPU) Restore(s *Snapshot) error {
	want, have := s.cfg, c.cfg
	want.ITRMode, have.ITRMode = 0, 0
	// The probe and trace ring are observability, not machine state:
	// snapshots restore across CPUs wired to different (or no) probes.
	want.Probe, have.Probe = nil, nil
	want.Trace, have.Trace = nil, nil
	if want != have {
		return fmt.Errorf("pipeline: snapshot config %+v does not structurally match CPU config %+v", s.cfg, c.cfg)
	}

	c.mem.CopyFrom(s.mem)
	c.committed.R = s.regsR
	c.committed.F = s.regsF
	c.committed.PC = s.pc

	c.spec.arch.R = s.specR
	c.spec.arch.F = s.specF
	c.spec.overlay.words = make(map[uint64]specWord, len(s.overlay))
	for k, v := range s.overlay {
		c.spec.overlay.words[k] = v
	}

	copy(c.pred.btb, s.predBTB)
	copy(c.pred.gshare, s.predGshare)
	c.pred.history = s.predHistory
	c.pred.clock = s.predClock

	if c.det != nil {
		if err := c.det.RestoreState(s.det); err != nil {
			return fmt.Errorf("pipeline: restore detector: %w", err)
		}
		// Re-seed the probe's detection delta base and the stamp cursor:
		// the detector's mismatch counter just rewound to the snapshot's
		// value, and stamps of the abandoned trajectory are meaningless.
		c.detDetectionsSeen = c.det.Stats().Mismatches
		c.detStamps = c.detStamps[:0]
		c.detStamped = c.detDetectionsSeen
	}
	if c.renameChecker != nil {
		if err := c.renameChecker.RestoreState(s.renameChecker); err != nil {
			return fmt.Errorf("pipeline: restore rename checker: %w", err)
		}
	}
	if c.ckpt != nil {
		c.ckpt.RestoreState(s.ckpt)
	}
	c.renameSig = s.renameSig
	c.former = s.former

	c.slots.copyFrom(&s.slots)
	c.robHead = s.robHead
	c.robTail = s.robTail
	for i := range c.wheel {
		c.wheel[i] = append(c.wheel[i][:0], s.wheel[i]...)
	}
	c.prod = s.prod
	c.fqHead, c.fqTail = 0, uint64(len(s.fetchQ))
	copy(c.fq, s.fetchQ) // len(s.fetchQ) <= cfg.FetchQueue <= len(c.fq)
	c.fetchPC = s.fetchPC
	c.haltSeen = s.haltSeen

	c.wrongPathFrom = s.wrongPathFrom
	c.wrongPathArmed = s.wrongPathArmed

	c.cycle = s.Cycle
	c.lastCommitCycle = s.lastCommitCycle
	c.ckptRollbacks = s.ckptRollbacks
	c.ckptDeclined = s.ckptDeclined
	c.redundancy = s.redundancy
	c.decodeEvents = s.DecodeEvents
	c.committedCount = s.Committed
	c.expectedPC = s.expectedPC
	c.spcFired = s.spcFired
	c.mispredicts = s.mispredicts
	c.itrFlushes = s.itrFlushes
	c.tac = s.tac

	c.pcFaultCycle = s.pcFaultCycle
	c.pcFaultBit = s.pcFaultBit
	c.pcFaultDone = s.pcFaultDone

	c.terminated = s.terminated
	c.termination = s.termination
	if p := c.cfg.Probe; p != nil {
		p.SnapshotRestores.AddAt(c.obsShard, 1)
		c.publishCowCopies(p)
	}
	c.cfg.Trace.Emit(obs.EvSnapshotRestore, s.Cycle, 0)
	return nil
}

// CycleCount returns the cycle count so far (snapshot consumers size their
// remaining budget with it).
func (c *CPU) CycleCount() int64 { return c.cycle }
