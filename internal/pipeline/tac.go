package pipeline

// TAC: Timestamp-based Assertion Checking for the out-of-order scheduler,
// the third member of the paper's fault-check regimen (Section 1 cites it
// alongside RNA from the authors' ICCD 2006 work):
//
//	"recording and confirming correct issue ordering among instructions in
//	 a trace can detect faults in the out-of-order scheduler of a
//	 processor, similar to Timestamp-based Assertion Checking (TAC)"
//
// The invariant: an instruction may not issue before every producer of its
// source operands has completed. A transient in the wakeup/select logic can
// fire an instruction early, making it read a stale physical register. TAC
// records issue/complete timestamps and asserts the ordering at commit; a
// violation flushes the window and re-executes, exactly like an ITR retry.

// TACStats counts scheduler-check events.
type TACStats struct {
	// Checked counts commit-time ordering assertions evaluated.
	Checked int64
	// Violations counts detected issue-order violations.
	Violations int64
	// Recovered counts violations repaired by flush-and-restart.
	Recovered int64
}

// SchedulerFaultHook lets an injector force one dynamic instruction to issue
// prematurely (ignoring operand readiness), modelling a transient in the
// scheduler's wakeup/select logic. Return true to fire the fault on this
// decode event.
type SchedulerFaultHook func(decodeIndex int64) bool

// SetSchedulerFaultHook installs the scheduler fault injector.
func (c *CPU) SetSchedulerFaultHook(h SchedulerFaultHook) { c.schedFaultHook = h }

// TAC returns the scheduler-check statistics.
func (c *CPU) TAC() TACStats { return c.tac }

// tacIssueCheck is called at issue time for an instruction whose operands
// were not all ready (a premature issue). It models the architectural damage
// — the instruction consumes stale register values — by recomputing its
// outcome against the committed (pre-producer) state.
func (c *CPU) tacPrematureIssue(seq uint64) {
	idx := c.slot(seq)
	if c.slots.flags[idx]&slotWrongPath != 0 {
		return
	}
	// Recompute with committed (stale) register values: the speculative
	// producers' results are exactly what a premature issue misses.
	stale := *c.committed
	stale.Mem = c.spec.overlay
	c.slots.outcome[idx] = stale.Exec(c.slots.d[idx], c.slots.pc[idx])
	c.slots.flags[idx] |= slotTACViolated
}

// tacCommitCheck asserts the issue-order invariant for the committing uop,
// given its flags word. It returns true when a violation was detected (the
// caller flushes).
func (c *CPU) tacCommitCheck(flags uint64) bool {
	if !c.cfg.TACEnabled {
		return false
	}
	c.tac.Checked++
	if flags&slotTACViolated == 0 {
		return false
	}
	c.tac.Violations++
	return true
}
