package pipeline

import (
	"testing"

	"itr/internal/isa"
	"itr/internal/program"
	"itr/internal/stats"
	"itr/internal/workload"
)

// randomProgram synthesizes a random but well-formed benchmark-shaped
// program from a seed, via the workload generator with a random profile.
func randomProgram(t *testing.T, seed uint64) *program.Program {
	t.Helper()
	rng := stats.NewRNG(seed)
	nComp := 1 + rng.Intn(4)
	comps := make([]workload.Component, nComp)
	hot := 0
	for i := range comps {
		comps[i] = workload.Component{
			Traces: 3 + rng.Intn(40),
			Iters:  1 + rng.Intn(30),
		}
		hot += comps[i].Traces
	}
	prof := workload.Profile{
		Name:         "random",
		FP:           rng.Bool(0.4),
		StaticTraces: hot + nComp + 12 + rng.Intn(120),
		Components:   comps,
		Seed:         rng.Uint64(),
	}
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatalf("seed %#x: %v", seed, err)
	}
	return prog
}

// The central integration property: for arbitrary generated programs, the
// ITR-protected out-of-order pipeline commits exactly the functional
// instruction stream, and the fault-free checkers stay silent.
func TestPropertyRandomProgramsLockstep(t *testing.T) {
	if testing.Short() {
		t.Skip("random lockstep sweep is not short")
	}
	const limit = 25_000
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			prog := randomProgram(t, seed*0x9e3779b9)
			want := functionalStream(prog, limit)

			cfg := DefaultConfig()
			cfg.RenameITREnabled = true
			cfg.CheckpointEnabled = true
			cpu, err := New(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			idx := 0
			cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
				if idx >= len(want) {
					return
				}
				w := want[idx]
				if pc != w.pc || !o.SameArchEffect(&w.o) {
					t.Fatalf("seed %d: commit %d diverged (pc %d vs %d)", seed, idx, pc, w.pc)
				}
				idx++
			})
			for cpu.CommittedInsts() < limit {
				res := cpu.Run(40_000)
				if res.Termination != TermBudget {
					t.Fatalf("seed %d: termination %v after %d commits", seed, res.Termination, idx)
				}
			}
			if idx < limit/2 {
				t.Fatalf("seed %d: only %d commits compared", seed, idx)
			}
			if st := cpu.Checker().Stats(); st.Mismatches != 0 {
				t.Fatalf("seed %d: frontend mismatches on fault-free run: %+v", seed, st)
			}
			if st := cpu.RenameChecker().Stats(); st.Mismatches != 0 {
				t.Fatalf("seed %d: rename mismatches on fault-free run: %+v", seed, st)
			}
		})
	}
}

// The coverage simulator and the pipeline's ITR checker must agree on the
// trace stream: same dispatch counts and (fault-free) zero mismatches over
// the same committed instruction window.
func TestPipelineTraceStreamMatchesWalker(t *testing.T) {
	prog := randomProgram(t, 0xfeed)
	const limit = 20_000

	// Walker view.
	events, _ := workload.EventsOf(prog, limit)

	// Pipeline view: count committed trace ends.
	cfg := DefaultConfig()
	cpu, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for cpu.CommittedInsts() < limit {
		if res := cpu.Run(64); res.Termination != TermBudget {
			t.Fatalf("termination %v", res.Termination)
		}
	}
	// Committed trace ends == walker events over the same instruction
	// window, modulo the trailing partial trace and the pipeline's
	// overshoot within the final cycle; compare with a small tolerance.
	walkerEvents := int64(len(events))
	pipeEnds := cpu.Checker().Stats().Writes + cpu.Checker().Stats().Hits - int64(cpu.Checker().PendingTraces())
	// Hits+Writes counts checked/installed traces including speculative
	// dispatches that were later squashed; instead compare dispatched
	// minus squashed.
	st := cpu.Checker().Stats()
	committedTraces := st.Dispatched - st.Squashed - int64(cpu.Checker().PendingTraces())
	_ = pipeEnds
	diff := committedTraces - walkerEvents
	if diff < -12 || diff > 12 {
		t.Fatalf("trace streams disagree: walker %d, pipeline %d (diff %d)",
			walkerEvents, committedTraces, diff)
	}
}
