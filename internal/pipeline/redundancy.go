package pipeline

import "fmt"

// RedundancyMode selects a conventional frontend-protection baseline to run
// instead of (or alongside) ITR, making the paper's Section 5 comparison
// executable rather than purely analytic.
type RedundancyMode int

// Redundancy modes.
const (
	// RedundancyNone runs the plain frontend (default).
	RedundancyNone RedundancyMode = iota
	// RedundancyDualDecode models IBM S/390 G5-style structural
	// duplication: every instruction is decoded by two independent
	// decoders whose signal vectors are compared at dispatch. A mismatch
	// is detected before the instruction proceeds, and recovery is a
	// same-cycle re-decode. There is no bandwidth cost — the cost is the
	// duplicated hardware (area/energy, modeled in internal/baseline).
	RedundancyDualDecode
	// RedundancyTimeRedundant models conventional time redundancy: every
	// instruction passes through the single frontend twice, consuming two
	// decode slots. Faults are detected by comparing the two passes;
	// the measurable cost is halved frontend bandwidth (IPC).
	RedundancyTimeRedundant
)

func (m RedundancyMode) String() string {
	switch m {
	case RedundancyNone:
		return "none"
	case RedundancyDualDecode:
		return "dual-decode"
	case RedundancyTimeRedundant:
		return "time-redundant"
	default:
		return fmt.Sprintf("redundancy(%d)", int(m))
	}
}

// RedundancyStats counts baseline-comparator events.
type RedundancyStats struct {
	// Comparisons is the number of instruction decode-pairs compared.
	Comparisons int64
	// Detections is the number of decode-signal mismatches caught by the
	// comparator (each implies a transient in one of the two copies).
	Detections int64
	// ExtraDecodes counts the redundant decode operations performed (the
	// energy-relevant quantity).
	ExtraDecodes int64
}
