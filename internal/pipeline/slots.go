package pipeline

import "itr/internal/isa"

// Structure-of-arrays uop storage for the in-flight window.
//
// The commit, issue and writeback stages scan the ROB every cycle, but each
// scan reads only a few fields per uop: issue wants the issued/done flags and
// the source operands, writeback the completion cycle and branch flags,
// commit the done flag plus the outcome of the single head entry. With the
// former array-of-structs layout every such read dragged a >150-byte uop
// record (decode signals + outcome + bookkeeping) through the cache; the
// columns below keep each field dense so a stage streams exactly the bytes it
// tests, and the six boolean fields compress into bitsets the issue scan can
// reject 64 slots at a time from.
//
// Slots are addressed by ROB slot index (sequence number & robMask). A slot's
// columns are written when a uop dispatches into it and are only meaningful
// while the slot is live (robHead <= seq < robTail): recycled slots keep
// stale column values, which nothing reads — dispatch rewrites every column
// it uses before advancing robTail.

// bitset is a packed per-slot boolean column (one bit per ROB slot).
type bitset []uint64

func (b bitset) get(i uint64) bool { return b[i>>6]&(1<<(i&63)) != 0 }
func (b bitset) set(i uint64)      { b[i>>6] |= 1 << (i & 63) }
func (b bitset) clear(i uint64)    { b[i>>6] &^= 1 << (i & 63) }

func (b bitset) put(i uint64, v bool) {
	if v {
		b.set(i)
	} else {
		b.clear(i)
	}
}

// Packed source operands: one word per operand, three per slot, in a flat
// [3*cap] column. The top two bits carry the operand kind (the former
// srcKind), the low 62 bits the producer's sequence number. A ready operand
// is the zero word, so unused operand slots need no separate count — they
// read as ready.
const (
	srcKindShift   = 62
	srcWordSeq     = uint64(1) << srcKindShift // waiting on producer seq (low bits)
	srcWordPhantom = uint64(2) << srcKindShift // can never become ready (fault-induced)
	srcSeqMask     = srcWordSeq - 1
)

// Per-slot flag bits, packed into one word of the flags column. A dispatch
// writes the whole word once; commit and writeback read it once and test
// bits, instead of touching one bitset per boolean.
const (
	slotValid       = uint64(1) << iota // slot has been dispatched into at least once
	slotWrongPath                       // fetched down a mispredicted path
	slotTraceEnd                        // terminates a trace (itrSeq/renameSeq valid)
	slotTACViolated                     // issued before its producers completed
	// slotBranching/slotUncond memoize d.IsBranching() / the FlagUncond bit
	// at dispatch so branch resolution never touches the signals column.
	slotBranching
	slotUncond
)

// robSlots is the column store. All word-sized columns are carved from one
// backing slab, so cloning the whole store (snapshot capture) is three copies
// (slab, signals, outcomes) instead of one per column.
type robSlots struct {
	capacity int // ring length (power of two)

	slab []uint64 // backing for every word column below

	// issued/done/ready are bitsets (one bit per slot): the issue scan
	// rejects a whole word of issued-or-completed slots at a time and accepts
	// only ready ones, and sourceReady tests producers' done bits. All other
	// per-slot booleans live in the flags column as slot* bits.
	issued bitset
	done   bitset
	ready  bitset
	flags  []uint64

	pc       []uint64
	predNext []uint64
	// itrSeq/renameSeq are the checkers' ROB entry sequences (valid when
	// slotTraceEnd is set).
	itrSeq    []uint64
	renameSeq []uint64
	// decodeIndex and doneCycle are int64 values stored as uint64 (both are
	// non-negative); lat is the memoized isa.LatCycles of the dispatched
	// signals, so issue never reads the signals column.
	decodeIndex []uint64
	doneCycle   []uint64
	lat         []uint64
	srcs        []uint64 // 3 packed source words per slot

	// Operand wakeup state. pending counts a slot's unsatisfied source words;
	// it reaches zero exactly when the slot becomes ready. Each producer slot
	// heads an intrusive list of waiting source words: wakeHead[p] is the
	// first link (a flat srcs index, consumerSlot*3+operand), wakeNext[link]
	// the next, wakeNone the end. When a producer completes, walking its list
	// replaces the per-cycle readiness polling of every waiting slot.
	pending  []uint64
	wakeHead []uint64
	wakeNext []uint64

	d       []isa.DecodeSignals
	outcome []isa.Outcome
}

// slotBitWords returns the bitset length covering capacity slots.
func slotBitWords(capacity int) int { return (capacity + 63) >> 6 }

// newRobSlots allocates a column store for a power-of-two ring length.
func newRobSlots(capacity int) robSlots {
	s := robSlots{
		capacity: capacity,
		slab:     make([]uint64, 3*slotBitWords(capacity)+16*capacity),
		d:        make([]isa.DecodeSignals, capacity),
		outcome:  make([]isa.Outcome, capacity),
	}
	s.carve()
	return s
}

// carve points every column view at its region of the slab.
func (s *robSlots) carve() {
	bw := slotBitWords(s.capacity)
	n := s.capacity
	rest := s.slab
	take := func(k int) []uint64 {
		col := rest[:k:k]
		rest = rest[k:]
		return col
	}
	s.issued = take(bw)
	s.done = take(bw)
	s.ready = take(bw)
	s.flags = take(n)
	s.pc = take(n)
	s.predNext = take(n)
	s.itrSeq = take(n)
	s.renameSeq = take(n)
	s.decodeIndex = take(n)
	s.doneCycle = take(n)
	s.lat = take(n)
	s.srcs = take(3 * n)
	s.pending = take(n)
	s.wakeHead = take(n)
	s.wakeNext = take(3 * n)
}

// wakeNone terminates a producer's wakeup list. Fresh slots hold zeroes
// there, but a slot's list head is reset at dispatch — before the slot can
// complete — so the zero value is never walked.
const wakeNone = ^uint64(0)

// clone deep-copies the store (snapshot capture).
func (s *robSlots) clone() robSlots {
	c := robSlots{
		capacity: s.capacity,
		slab:     append([]uint64(nil), s.slab...),
		d:        append([]isa.DecodeSignals(nil), s.d...),
		outcome:  append([]isa.Outcome(nil), s.outcome...),
	}
	c.carve()
	return c
}

// copyFrom overwrites the store's contents with src's, preserving the
// receiver's backing arrays (snapshot restore). Capacities must match; the
// caller (Restore) has already validated structural config equality.
func (s *robSlots) copyFrom(src *robSlots) {
	copy(s.slab, src.slab)
	copy(s.d, src.d)
	copy(s.outcome, src.outcome)
}
