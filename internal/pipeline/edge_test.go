package pipeline

import (
	"testing"

	"itr/internal/isa"
	"itr/internal/program"
	"itr/internal/workload"
)

// straightline builds a long run of independent instructions ending in halt,
// to exercise 16-instruction trace splits and ROB pressure.
func straightline(t *testing.T, n int) *program.Program {
	t.Helper()
	b := program.NewBuilder("straight")
	for i := 0; i < n; i++ {
		b.OpImm(isa.OpAddi, isa.RegID(1+i%20), 0, int16(i))
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStraightlineTraceSplitsCommitExactly(t *testing.T) {
	p := straightline(t, 200)
	res := expectLockstep(t, p, DefaultConfig(), 100_000)
	if res.SpcFired != 0 {
		t.Fatalf("spc fired on straightline code: %d", res.SpcFired)
	}
}

func TestLongDependencyChainStillCommits(t *testing.T) {
	// Serial multiply chain: issue is latency-bound, the ROB backs up,
	// commit still makes exact progress.
	b := program.NewBuilder("chain")
	b.OpImm(isa.OpAddi, 1, 0, 3)
	for i := 0; i < 100; i++ {
		b.Op(isa.OpMul, 1, 1, 1)
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := expectLockstep(t, p, DefaultConfig(), 100_000)
	// Latency-bound: IPC must be well below width.
	if res.IPC() > 1.0 {
		t.Fatalf("dependency chain IPC %.2f implausibly high", res.IPC())
	}
}

func TestTinyROBStillCorrect(t *testing.T) {
	p := loopProgram(t, 8, 12)
	cfg := DefaultConfig()
	cfg.ROBSize = 16
	cfg.IssueWindow = 8
	cfg.FetchQueue = 4
	expectLockstep(t, p, cfg, 2_000_000)
}

func TestNarrowMachineStillCorrect(t *testing.T) {
	p := loopProgram(t, 8, 12)
	cfg := DefaultConfig()
	cfg.FetchWidth = 1
	cfg.IssueWidth = 1
	cfg.CommitWidth = 1
	res := expectLockstep(t, p, cfg, 5_000_000)
	if res.IPC() > 1.0 {
		t.Fatalf("single-issue IPC %.2f > 1", res.IPC())
	}
}

func TestWatchdogDoesNotFireOnSlowButLiveCode(t *testing.T) {
	b := program.NewBuilder("slow")
	b.OpImm(isa.OpAddi, 1, 0, 50)
	b.Label("top")
	for i := 0; i < 6; i++ {
		b.Op(isa.OpDiv, 2, 2, 3) // long latency, serial
	}
	b.OpImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "top")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 256
	cpu, _ := New(p, cfg)
	res := cpu.Run(1_000_000)
	if res.Termination != TermHalt {
		t.Fatalf("termination %v: watchdog too eager", res.Termination)
	}
}

func TestSpcChainSurvivesMispredicts(t *testing.T) {
	// Heavy mispredict traffic (short inner loops) must not perturb the
	// commit-PC chain.
	p := loopProgram(t, 100, 3)
	res := expectLockstep(t, p, DefaultConfig(), 2_000_000)
	if res.Mispredicts == 0 {
		t.Fatal("expected mispredicts")
	}
	if res.SpcFired != 0 {
		t.Fatalf("spc fired %d times across %d repairs", res.SpcFired, res.Mispredicts)
	}
}

func TestDecodeEventsCountWrongPath(t *testing.T) {
	p := loopProgram(t, 50, 4)
	cpu, _ := New(p, DefaultConfig())
	res := cpu.Run(1_000_000)
	if res.Termination != TermHalt {
		t.Fatalf("termination %v", res.Termination)
	}
	if res.DecodeEvents <= res.Committed {
		t.Fatalf("decode events %d should exceed commits %d (wrong-path decodes)",
			res.DecodeEvents, res.Committed)
	}
}

func TestAllBenchmarksPipelineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("16-benchmark pipeline smoke is not short")
	}
	for _, prof := range workload.Suite() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			t.Parallel()
			p, err := workload.CachedProgram(prof)
			if err != nil {
				t.Fatal(err)
			}
			want := functionalStream(p, 8_000)
			cpu, err := New(p, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			idx := 0
			cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
				if idx >= len(want) {
					return
				}
				w := want[idx]
				if pc != w.pc || !o.SameArchEffect(&w.o) {
					t.Fatalf("commit %d diverged", idx)
				}
				idx++
			})
			for cpu.CommittedInsts() < 8_000 {
				if res := cpu.Run(1_000); res.Termination != TermBudget {
					t.Fatalf("termination %v", res.Termination)
				}
			}
			if cpu.Checker().Stats().Mismatches != 0 {
				t.Fatal("fault-free mismatches")
			}
		})
	}
}

func TestRunZeroCycles(t *testing.T) {
	p := loopProgram(t, 2, 2)
	cpu, _ := New(p, DefaultConfig())
	res := cpu.Run(0)
	if res.Termination != TermBudget || res.Committed != 0 {
		t.Fatalf("zero-cycle run: %+v", res)
	}
}

func TestPCFaultScheduling(t *testing.T) {
	p := loopProgram(t, 20, 30)
	cpu, _ := New(p, DefaultConfig())
	cpu.SchedulePCFault(100, 1)
	res := cpu.Run(50_000)
	// The flip lands mid-loop: either detected by ITR (flush), repaired as
	// a mispredict, or the run completes with a corrupted path; in all
	// cases the machine must not wedge before the watchdog.
	if res.Termination == TermBudget && res.Committed == 0 {
		t.Fatal("machine wedged after PC fault")
	}
}
