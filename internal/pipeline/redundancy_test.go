package pipeline

import (
	"testing"

	"itr/internal/isa"
)

func TestDualDecodeDetectsAndRecoversInline(t *testing.T) {
	p := loopProgram(t, 10, 20)
	cfg := DefaultConfig()
	cfg.ITREnabled = false
	cfg.Redundancy = RedundancyDualDecode
	cpu, _ := New(p, cfg)
	injected := false
	cpu.SetFaultHook(func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
		if !injected && i == 501 {
			injected = true
			return d.FlipBit(36)
		}
		return d
	})
	res := expectLockstepOn(t, cpu)
	if !injected {
		t.Skip("injection point not reached")
	}
	st := cpu.Redundancy()
	if st.Detections != 1 {
		t.Fatalf("comparator detections = %d, want 1", st.Detections)
	}
	if st.Comparisons == 0 || st.ExtraDecodes != st.Comparisons {
		t.Fatalf("stats: %+v", st)
	}
	if res.Termination != TermHalt {
		t.Fatalf("termination %v", res.Termination)
	}
}

// expectLockstepOn verifies an already-configured CPU against functional
// execution.
func expectLockstepOn(t *testing.T, cpu *CPU) Result {
	t.Helper()
	st := isa.NewArchState()
	prog := cpu.prog
	st.PC = prog.Entry
	idx := 0
	cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		if pc != st.PC {
			t.Fatalf("commit %d: pc %d, functional %d", idx, pc, st.PC)
		}
		want := st.Step(prog.Fetch(pc))
		if !o.SameArchEffect(&want) {
			t.Fatalf("commit %d diverged at pc %d", idx, pc)
		}
		idx++
	})
	res := cpu.Run(5_000_000)
	if idx == 0 {
		t.Fatal("nothing committed")
	}
	return res
}

func TestTimeRedundantHalvesFrontendBandwidth(t *testing.T) {
	p := loopProgram(t, 40, 50)
	base := DefaultConfig()
	base.ITREnabled = false
	cpuBase, _ := New(p, base)
	resBase := cpuBase.Run(5_000_000)

	tr := base
	tr.Redundancy = RedundancyTimeRedundant
	cpuTR, _ := New(p, tr)
	resTR := cpuTR.Run(5_000_000)

	if resBase.Termination != TermHalt || resTR.Termination != TermHalt {
		t.Fatalf("terminations: %v %v", resBase.Termination, resTR.Termination)
	}
	// This frontend-bound loop should lose a large share of its IPC.
	ratio := resTR.IPC() / resBase.IPC()
	if ratio > 0.72 {
		t.Fatalf("time redundancy only cost %.0f%% IPC (base %.2f, tr %.2f)",
			100*(1-ratio), resBase.IPC(), resTR.IPC())
	}
	if ratio < 0.35 {
		t.Fatalf("IPC ratio %.2f implausibly low", ratio)
	}
}

func TestTimeRedundantStillCommitsCorrectly(t *testing.T) {
	p := loopProgram(t, 10, 20)
	cfg := DefaultConfig()
	cfg.ITREnabled = false
	cfg.Redundancy = RedundancyTimeRedundant
	cpu, _ := New(p, cfg)
	expectLockstepOn(t, cpu)
}

func TestDualDecodeNoBandwidthCost(t *testing.T) {
	p := loopProgram(t, 40, 50)
	base := DefaultConfig()
	base.ITREnabled = false
	cpuBase, _ := New(p, base)
	resBase := cpuBase.Run(5_000_000)

	dd := base
	dd.Redundancy = RedundancyDualDecode
	cpuDD, _ := New(p, dd)
	resDD := cpuDD.Run(5_000_000)
	if resDD.IPC() < resBase.IPC()*0.99 {
		t.Fatalf("dual decode cost IPC: %.2f vs %.2f", resDD.IPC(), resBase.IPC())
	}
}

func TestRedundancyModeString(t *testing.T) {
	for _, m := range []RedundancyMode{RedundancyNone, RedundancyDualDecode, RedundancyTimeRedundant, RedundancyMode(9)} {
		if m.String() == "" {
			t.Fatalf("empty name for %d", int(m))
		}
	}
}
