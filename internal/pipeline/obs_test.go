package pipeline

import (
	"testing"

	"itr/internal/core"
	"itr/internal/isa"
	"itr/internal/obs"
)

// TestProbeExactCounts pins the telemetry contract on a deterministic
// workload: the shared probe's merged counters must equal the machine's own
// Result counters exactly — sharding and run-boundary delta publication
// must lose nothing.
func TestProbeExactCounts(t *testing.T) {
	p := loopProgram(t, 6, 24)
	cfg := DefaultConfig()
	cfg.ITREnabled = true
	probe := &Probe{}
	cfg.Probe = probe

	cpu, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(1 << 20)
	if res.Termination != TermHalt {
		t.Fatalf("termination = %v, want halt", res.Termination)
	}

	if got := probe.Cycles.Load(); got != res.Cycles {
		t.Errorf("probe cycles = %d, want %d", got, res.Cycles)
	}
	if got := probe.DecodeEvents.Load(); got != res.DecodeEvents {
		t.Errorf("probe decode events = %d, want %d", got, res.DecodeEvents)
	}
	if got := probe.SnapshotCaptures.Load(); got != 0 {
		t.Errorf("probe captures = %d, want 0", got)
	}

	// A second machine on the same probe accumulates; split the run into
	// several Run calls so boundary publication fires more than once.
	cpu2, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < 50 && total < res.Cycles; i++ {
		r := cpu2.Run(100)
		total = r.Cycles
		if r.Termination == TermHalt {
			break
		}
	}
	if got := probe.Cycles.Load(); got != res.Cycles+total {
		t.Errorf("shared probe cycles = %d, want %d", got, res.Cycles+total)
	}
}

// TestProbeSnapshotAndTraceEvents pins the snapshot counters and the trace
// ring's capture/restore event stream against an exactly-known sequence.
func TestProbeSnapshotAndTraceEvents(t *testing.T) {
	p := loopProgram(t, 6, 24)
	cfg := DefaultConfig()
	cfg.ITREnabled = true
	probe := &Probe{}
	cfg.Probe = probe
	tr := obs.NewTracer(64)
	cfg.Trace = tr.Ring("cpu")

	cpu, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cpu.Run(200)
	snap := cpu.Snapshot()
	cpu.Run(200)
	if err := cpu.Restore(snap); err != nil {
		t.Fatal(err)
	}
	cpu.Run(200)

	if got := probe.SnapshotCaptures.Load(); got != 1 {
		t.Errorf("captures = %d, want 1", got)
	}
	if got := probe.SnapshotRestores.Load(); got != 1 {
		t.Errorf("restores = %d, want 1", got)
	}

	ring := cfg.Trace
	var captures, restores int
	for _, e := range ring.Events() {
		switch e.Kind {
		case obs.EvSnapshotCapture:
			captures++
			if e.Cycle != snap.Cycle {
				t.Errorf("capture event cycle = %d, want %d", e.Cycle, snap.Cycle)
			}
		case obs.EvSnapshotRestore:
			restores++
			if e.Cycle != snap.Cycle {
				t.Errorf("restore event cycle = %d, want %d", e.Cycle, snap.Cycle)
			}
		}
	}
	if captures != 1 || restores != 1 {
		t.Errorf("ring has %d captures, %d restores, want 1 and 1", captures, restores)
	}
}

// TestDetectionStamps checks that a detected fault gets a cycle-stamped
// detection aligned with the detector's own detection log, and that
// Restore rewinds the stamps.
func TestDetectionStamps(t *testing.T) {
	for _, backend := range []string{"itr", "reptfd", "dme"} {
		t.Run(backend, func(t *testing.T) {
			p := loopProgram(t, 60, 40)
			cfg := DefaultConfig()
			cfg.ITREnabled = true
			cfg.Detector = backend
			cfg.ITRMode = core.ModeObserve
			cpu, err := New(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a lat bit in the first right-path decode event past the
			// warmup, as in TestDetectorBackendsDetectInjectedFault — every
			// backend observes it.
			fired := false
			var fireCycle int64
			cpu.SetFaultHook(func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
				if !fired && i >= 9_000 && !wrongPath {
					fired = true
					fireCycle = cpu.CycleCount()
					return d.FlipBit(40)
				}
				return d
			})
			cpu.Run(40_000)
			dets := cpu.Detector().Detections()
			stamps := cpu.DetectionStamps()
			if len(dets) == 0 {
				t.Fatalf("backend %s did not detect the injected flip", backend)
			}
			if len(stamps) != len(dets) {
				t.Fatalf("stamps = %d, detections = %d", len(stamps), len(dets))
			}
			for i, s := range stamps {
				if s.Cycle < fireCycle {
					t.Errorf("stamp %d at cycle %d predates injection at %d", i, s.Cycle, fireCycle)
				}
				if i > 0 && s.Cycle < stamps[i-1].Cycle {
					t.Errorf("stamps not monotonic: %v", stamps)
				}
			}
		})
	}
}
