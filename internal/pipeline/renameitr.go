package pipeline

import (
	"itr/internal/isa"
	"itr/internal/sig"
)

// This file implements the rename-protection extension sketched in the
// paper's Section 1:
//
//	"Indexes into the rename map table and architectural map table
//	 generated for a trace are constant across all its instances. Recording
//	 and confirming their correctness will boost the fault coverage of the
//	 rename unit of a processor, especially when used with schemes like
//	 Register Name Authentication (RNA). For instance, RNA cannot detect
//	 pure source renaming errors like reading from a wrong index in the
//	 rename map table."
//
// The rename unit presents architectural register indexes to the rename map
// table. A transient fault in that index logic reads (or writes) the wrong
// map entry: the decode signals are intact — so the frontend ITR signature
// cannot see the fault — but the instruction silently consumes the wrong
// value. Because the index stream of a trace depends only on its
// instructions, ITR applies: a per-trace XOR signature of the map indexes,
// stored in a second ITR-cache-backed checker, detects the corruption on
// the trace's next instance.

// RenameIndexes is the set of rename-map indexes one instruction presents
// to the map table.
type RenameIndexes struct {
	Src1, Src2 isa.RegID
	Dst        isa.RegID
	NSrc       uint8
	NDst       uint8
	FP         bool
}

// renameIndexesOf derives the fault-free index stream from decode signals.
func renameIndexesOf(d isa.DecodeSignals) RenameIndexes {
	return RenameIndexes{
		Src1: d.Rsrc1 & 0x1f,
		Src2: d.Rsrc2 & 0x1f,
		Dst:  d.Rdst & 0x1f,
		NSrc: d.NumRsrc,
		NDst: d.NumRdst,
		FP:   d.HasFlag(isa.FlagFP),
	}
}

// pack serializes the index set for XOR signature accumulation.
func (r RenameIndexes) pack() uint64 {
	var w uint64
	w |= uint64(r.Src1 & 0x1f)
	w |= uint64(r.Src2&0x1f) << 5
	w |= uint64(r.Dst&0x1f) << 10
	w |= uint64(r.NSrc&0x3) << 15
	w |= uint64(r.NDst&0x1) << 17
	if r.FP {
		w |= 1 << 18
	}
	return w
}

// RenameFaultHook lets an injector corrupt the rename-map indexes of one
// dynamic instruction — a fault strictly downstream of decode, invisible to
// the frontend ITR signature.
type RenameFaultHook func(decodeIndex int64, ri RenameIndexes) RenameIndexes

// SetRenameFaultHook installs the rename-index corruption hook.
func (c *CPU) SetRenameFaultHook(h RenameFaultHook) { c.renameFaultHook = h }

// applyRenameIndexes rewrites the executed signal vector so the instruction
// consumes exactly the registers the (possibly corrupted) rename indexes
// select. The decode-signal word used for the frontend ITR signature is NOT
// changed: the fault happened after decode.
func applyRenameIndexes(d isa.DecodeSignals, ri RenameIndexes) isa.DecodeSignals {
	d.Rsrc1 = ri.Src1 & 0x1f
	d.Rsrc2 = ri.Src2 & 0x1f
	d.Rdst = ri.Dst & 0x1f
	return d
}

// renameState is the per-CPU rename-signature machinery: a parallel XOR
// accumulator aligned with the trace former.
type renameState struct {
	acc sig.Accumulator
}

func (r *renameState) add(ri RenameIndexes) { r.acc.Add(ri.pack()) }

func (r *renameState) takeSig() uint64 {
	v := r.acc.Value()
	r.acc.Reset()
	return v
}

func (r *renameState) reset() { r.acc.Reset() }
