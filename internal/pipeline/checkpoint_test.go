package pipeline

import (
	"testing"

	"itr/internal/isa"
	"itr/internal/program"
)

// missFaultProgram is structured so a fault can land on a trace's FIRST
// dynamic instance (an ITR cache miss): the faulty signature is installed,
// the next instance mismatches, the retry mismatches again, and without
// checkpointing the machine check aborts the program.
func missFaultProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("missfault")
	b.OpImm(isa.OpAddi, 1, 0, 400) // outer count
	b.OpImm(isa.OpAddi, 4, 0, 0x1000)
	b.Label("outer")
	// Warm phase: a tight loop that gets every line checked.
	b.OpImm(isa.OpAddi, 2, 0, 8)
	b.Label("warm")
	b.OpImm(isa.OpAddi, 3, 3, 1)
	b.Store(isa.OpSd, 3, 4, 0)
	b.OpImm(isa.OpAddi, 2, 2, -1)
	b.Branch(isa.OpBne, 2, 0, "warm")
	// Late phase: entered only after many outer iterations, so its first
	// execution happens long after checkpoints exist.
	b.OpImm(isa.OpAddi, 5, 0, 200)
	b.Branch(isa.OpBlt, 1, 5, "late") // taken once r1 < 200
	b.Jump("skip_late")
	b.Label("late")
	b.Op(isa.OpAdd, 6, 6, 3)
	b.Op(isa.OpXor, 7, 7, 6)
	b.Store(isa.OpSd, 7, 4, 16)
	b.OpImm(isa.OpAddi, 8, 8, 3)
	b.Branch(isa.OpBeq, 0, 0, "skip_late") // never... taken: 0==0 always
	b.Label("skip_late")
	b.OpImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "outer")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// injectOnFirstLateInstance flips an imm bit on the first dynamic execution
// of the "late" block's add instruction — a trace instance that misses in
// the ITR cache, installing a faulty signature.
func injectOnFirstLateInstance(p *program.Program) (FaultHook, *bool) {
	// Find the late add: first OpAdd in the image.
	var target uint64
	for pc, inst := range p.Insts {
		if inst.Op == isa.OpAdd {
			target = uint64(pc)
			break
		}
	}
	injected := new(bool)
	return func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
		// Gate on the correct path: wrong-path instances are squashed and
		// would consume the one-shot injection without effect.
		if !*injected && pc == target && !wrongPath {
			*injected = true
			return d.FlipBit(45) // imm field
		}
		return d
	}, injected
}

func TestMachineCheckWithoutCheckpoint(t *testing.T) {
	p := missFaultProgram(t)
	cfg := DefaultConfig()
	cpu, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hook, injected := injectOnFirstLateInstance(p)
	cpu.SetFaultHook(hook)
	res := cpu.Run(2_000_000)
	if !*injected {
		t.Fatal("fault not injected")
	}
	if res.Termination != TermMachineCheck {
		t.Fatalf("termination = %v, want machine check (faulty signature installed on miss)", res.Termination)
	}
	if cpu.Checker().Stats().MachineChecks != 1 {
		t.Fatalf("checker stats: %+v", cpu.Checker().Stats())
	}
}

func TestCheckpointConvertsMachineCheckToRollback(t *testing.T) {
	p := missFaultProgram(t)
	cfg := DefaultConfig()
	cfg.CheckpointEnabled = true
	cfg.CheckpointIntervalCycles = 512
	cpu, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hook, injected := injectOnFirstLateInstance(p)
	cpu.SetFaultHook(hook)

	takes, rollbacks := 0, 0
	cpu.SetCheckpointObserver(func(taken bool) {
		if taken {
			takes++
		} else {
			rollbacks++
		}
	})

	res := cpu.Run(4_000_000)
	if !*injected {
		t.Fatal("fault not injected")
	}
	if res.Termination != TermHalt {
		t.Fatalf("termination = %v, want halt (recovered via checkpoint)", res.Termination)
	}
	if res.CheckpointRollbacks != 1 || rollbacks != 1 {
		t.Fatalf("rollbacks = %d (observer %d), want 1", res.CheckpointRollbacks, rollbacks)
	}
	if takes == 0 {
		t.Fatal("no checkpoints were taken")
	}
	st := cpu.Checkpoints().Stats()
	if st.Rollbacks != 1 {
		t.Fatalf("manager stats: %+v", st)
	}

	// The replayed execution must converge to the same final architectural
	// state as a fault-free run.
	ref, err := New(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	refRes := ref.Run(4_000_000)
	if refRes.Termination != TermHalt {
		t.Fatalf("reference run: %v", refRes.Termination)
	}
	got, want := cpu.Committed(), ref.Committed()
	if got.R != want.R || got.F != want.F {
		t.Fatal("final register state differs from fault-free run after checkpoint recovery")
	}
	for _, addr := range []uint64{0x1000, 0x1010} {
		if got.Mem.Load(addr, 8) != want.Mem.Load(addr, 8) {
			t.Fatalf("memory at %#x differs after checkpoint recovery", addr)
		}
	}
}

func TestCheckpointRequiresITR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ITREnabled = false
	cfg.CheckpointEnabled = true
	if _, err := New(missFaultProgram(t), cfg); err == nil {
		t.Fatal("checkpointing without ITR accepted")
	}
}

func TestCheckpointFaultFreeOverheadIsBookkeepingOnly(t *testing.T) {
	p := missFaultProgram(t)
	cfg := DefaultConfig()
	cfg.CheckpointEnabled = true
	cpu, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(2_000_000)
	if res.Termination != TermHalt {
		t.Fatalf("termination = %v", res.Termination)
	}
	if res.CheckpointRollbacks != 0 {
		t.Fatal("fault-free run rolled back")
	}
	st := cpu.Checkpoints().Stats()
	if st.Taken == 0 {
		t.Fatal("no checkpoints taken on a fault-free run")
	}
	if st.LoggedWords == 0 {
		t.Fatal("undo log never recorded a committed store")
	}
}

func TestCheckpointStrictPolicyDeclines(t *testing.T) {
	// The paper's literal condition: run-once init code leaves permanently
	// unchecked ITR lines, so strict-policy takes are (mostly) declined.
	p := missFaultProgram(t)
	cfg := DefaultConfig()
	cfg.CheckpointEnabled = true
	cfg.CheckpointPolicy = CheckpointStrict
	cfg.CheckpointIntervalCycles = 256
	cpu, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(500_000)
	if res.CheckpointsDeclined == 0 {
		t.Fatal("strict policy never declined despite unchecked run-once lines")
	}
}
