package pipeline

import (
	"reflect"
	"sync"
	"testing"

	"itr/internal/core"
	"itr/internal/isa"
)

type commitRecord struct {
	pc uint64
	o  isa.Outcome
}

// TestSnapshotResumeBitIdentical is the snapshot layer's correctness bar: a
// machine restored from a snapshot must produce exactly the commit stream,
// final Result, architectural state, and checker statistics of the machine
// that kept running — across the ITR, rename-ITR, and checkpoint variants.
func TestSnapshotResumeBitIdentical(t *testing.T) {
	variants := []struct {
		name string
		mod  func(*Config)
	}{
		{"itr", func(*Config) {}},
		{"rename-itr", func(c *Config) { c.RenameITREnabled = true }},
		{"checkpoint", func(c *Config) { c.CheckpointEnabled = true }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			p := loopProgram(t, 60, 40)
			cfg := DefaultConfig()
			v.mod(&cfg)
			const budget = 40_000
			const snapAt = 6_000 // decode events before the snapshot

			cold, err := New(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var coldStream []commitRecord
			cold.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
				coldStream = append(coldStream, commitRecord{pc, *o})
			})
			cold.RunUntilDecode(budget, snapAt)
			snap := cold.Snapshot()
			if snap.DecodeEvents < snapAt {
				t.Fatalf("pilot stopped at %d decode events, want >= %d", snap.DecodeEvents, snapAt)
			}
			if int64(len(coldStream)) != snap.Committed {
				t.Fatalf("snapshot Committed = %d, observer saw %d commits", snap.Committed, len(coldStream))
			}
			prefix := len(coldStream)
			coldRes := cold.Run(budget - cold.CycleCount())

			warm, err := New(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var warmStream []commitRecord
			warm.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
				warmStream = append(warmStream, commitRecord{pc, *o})
			})
			if err := warm.Restore(snap); err != nil {
				t.Fatal(err)
			}
			warmRes := warm.Run(budget - snap.Cycle)

			if coldRes != warmRes {
				t.Fatalf("results differ:\ncold %+v\nwarm %+v", coldRes, warmRes)
			}
			if !reflect.DeepEqual(coldStream[prefix:], warmStream) {
				t.Fatalf("commit streams differ: cold suffix %d commits, warm %d commits",
					len(coldStream)-prefix, len(warmStream))
			}
			if cold.Committed().R != warm.Committed().R ||
				cold.Committed().F != warm.Committed().F ||
				cold.Committed().PC != warm.Committed().PC {
				t.Fatal("final architectural registers differ")
			}
			if cold.Checker().Stats() != warm.Checker().Stats() {
				t.Fatalf("checker stats differ:\ncold %+v\nwarm %+v",
					cold.Checker().Stats(), warm.Checker().Stats())
			}
			if cs, ws := cold.Checker().Cache().Stats(), warm.Checker().Cache().Stats(); cs != ws {
				t.Fatalf("ITR cache stats differ:\ncold %+v\nwarm %+v", cs, ws)
			}
		})
	}
}

// TestSnapshotResumeWithFault checks the fast path the fault campaign relies
// on: a fault injected strictly after the snapshot point produces the same
// machine behavior whether the run starts cold or resumes from the snapshot.
func TestSnapshotResumeWithFault(t *testing.T) {
	p := loopProgram(t, 60, 40)
	cfg := DefaultConfig()
	cfg.ITRMode = core.ModeObserve
	const budget = 40_000
	const snapAt = 5_000
	const faultAt = 9_000 // decode event of the injected bit flip

	flipHook := func() FaultHook {
		done := false
		return func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
			if !done && i == faultAt {
				done = true
				return d.FlipBit(3)
			}
			return d
		}
	}

	cold, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var coldStream []commitRecord
	cold.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		coldStream = append(coldStream, commitRecord{pc, *o})
	})
	cold.SetFaultHook(flipHook())
	cold.RunUntilDecode(budget, snapAt)
	snap := cold.Snapshot()
	prefix := len(coldStream)
	coldRes := cold.Run(budget - cold.CycleCount())

	warm, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var warmStream []commitRecord
	warm.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		warmStream = append(warmStream, commitRecord{pc, *o})
	})
	if err := warm.Restore(snap); err != nil {
		t.Fatal(err)
	}
	warm.SetFaultHook(flipHook())
	warmRes := warm.Run(budget - snap.Cycle)

	if coldRes != warmRes {
		t.Fatalf("results differ:\ncold %+v\nwarm %+v", coldRes, warmRes)
	}
	if !reflect.DeepEqual(coldStream[prefix:], warmStream) {
		t.Fatal("faulty commit streams differ between cold run and snapshot resume")
	}
	if !reflect.DeepEqual(cold.Checker().Detections(), warm.Checker().Detections()) {
		t.Fatal("detections differ between cold run and snapshot resume")
	}
}

// snapMemHash folds a snapshot's entire memory view into one value,
// order-independently (pages are visited in map order): per-page FNV-1a over
// the page ID and words, XOR-combined across pages.
func snapMemHash(s *Snapshot) uint64 {
	var h uint64
	s.mem.VisitPages(func(id uint64, words []uint64) {
		ph := uint64(1469598103934665603)
		mix := func(v uint64) {
			for i := 0; i < 8; i++ {
				ph ^= (v >> (8 * i)) & 0xff
				ph *= 1099511628211
			}
		}
		mix(id)
		for _, w := range words {
			mix(w)
		}
		h ^= ph
	})
	return h
}

// TestSnapshotConcurrentRestoreImmutable models the fault campaign's sharing
// pattern: one pilot snapshot is restored into many CPUs concurrently, each
// diverging under a different injected fault and storing into pages it shares
// copy-on-write with the snapshot, while the pilot machine itself keeps
// running past the capture point. The snapshot's memory view must come out
// bit-identical, and under -race this proves concurrent restores never touch
// shared pages unsynchronized.
func TestSnapshotConcurrentRestoreImmutable(t *testing.T) {
	p := loopProgram(t, 60, 40)
	cfg := DefaultConfig()
	cfg.ITRMode = core.ModeObserve
	const budget = 40_000

	pilot, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pilot.RunUntilDecode(budget, 5_000)
	snap := pilot.Snapshot()
	before := snapMemHash(snap)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cpu, err := New(p, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if err := cpu.Restore(snap); err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			faultAt := snap.DecodeEvents + int64(100+13*w)
			done := false
			cpu.SetFaultHook(func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
				if !done && i == faultAt {
					done = true
					return d.FlipBit(w % isa.SignalBits)
				}
				return d
			})
			cpu.Run(budget - snap.Cycle)
		}(w)
	}
	// The capturing machine keeps dirtying pages it shares with the snapshot.
	pilot.Run(budget - pilot.CycleCount())
	wg.Wait()

	if after := snapMemHash(snap); after != before {
		t.Fatalf("snapshot memory changed under concurrent restores: hash %#x -> %#x", before, after)
	}
}

// TestRestoreRejectsStructuralMismatch: a snapshot only restores into a CPU
// whose configuration matches structurally; only the checker mode may vary.
func TestRestoreRejectsStructuralMismatch(t *testing.T) {
	p := loopProgram(t, 4, 4)
	cfg := DefaultConfig()
	cpu, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cpu.Run(1_000)
	snap := cpu.Snapshot()

	bad := cfg
	bad.ROBSize = 64
	other, err := New(p, bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Fatal("restore into a differently sized CPU must fail")
	}

	obs := cfg
	obs.ITRMode = core.ModeObserve
	ocpu, err := New(p, obs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ocpu.Restore(snap); err != nil {
		t.Fatalf("mode-only mismatch must be allowed: %v", err)
	}
}

// TestRunUntilDecodeChunksMatchSingleRun: pausing at decode boundaries and
// resuming is invisible — the chunked machine ends in the same state as one
// that ran straight through.
func TestRunUntilDecodeChunksMatchSingleRun(t *testing.T) {
	p := loopProgram(t, 30, 20)
	cfg := DefaultConfig()
	const budget = 25_000

	whole, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wres := whole.Run(budget)

	chunked, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cres Result
	for stop := int64(1_000); ; stop += 1_000 {
		cres = chunked.RunUntilDecode(budget-chunked.CycleCount(), stop)
		if cres.Termination != TermBudget || chunked.CycleCount() >= budget {
			break
		}
	}
	if wres != cres {
		t.Fatalf("chunked run differs:\nwhole   %+v\nchunked %+v", wres, cres)
	}
	if whole.Committed().R != chunked.Committed().R || whole.Committed().PC != chunked.Committed().PC {
		t.Fatal("final architectural state differs")
	}
}
