package pipeline

import (
	"reflect"
	"testing"

	"itr/internal/core"
	"itr/internal/detect"
	"itr/internal/isa"
)

// firstArchFlip returns a FaultHook that flips bit in the first right-path
// decode event at or after at, so the corruption is guaranteed to reach a
// committed trace on a well-predicted loop.
func firstArchFlip(at int64, bit int) FaultHook {
	done := false
	return func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
		if !done && i >= at && !wrongPath {
			done = true
			return d.FlipBit(bit)
		}
		return d
	}
}

// TestDetectorBackendsDetectInjectedFault checks the cross-backend contract
// the fault campaign relies on: every backend observes an injected
// signature-visible bit flip (bit 40 is a lat bit — timing-only, so the run
// itself completes normally) and records it through the shared Detector
// surface.
func TestDetectorBackendsDetectInjectedFault(t *testing.T) {
	for _, name := range detect.Names() {
		t.Run(name, func(t *testing.T) {
			p := loopProgram(t, 60, 40)
			cfg := DefaultConfig()
			cfg.ITRMode = core.ModeObserve
			cfg.Detector = name
			cpu, err := New(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cpu.SetFaultHook(firstArchFlip(9_000, 40))
			cpu.Run(40_000)
			det := cpu.Detector()
			if det.Stats().Mismatches == 0 {
				t.Fatalf("backend %s missed the injected fault: %+v", name, det.Stats())
			}
			if len(det.Detections()) == 0 {
				t.Fatalf("backend %s recorded no detection", name)
			}
		})
	}
}

// TestDetectorStateRoundTrip is the capture/restore property test: for every
// backend, a state captured through the Detector interface survives arbitrary
// further execution and restores bit-identically — the detector's observable
// stats and detection log come back exactly as captured.
func TestDetectorStateRoundTrip(t *testing.T) {
	for _, name := range detect.Names() {
		t.Run(name, func(t *testing.T) {
			p := loopProgram(t, 60, 40)
			cfg := DefaultConfig()
			cfg.ITRMode = core.ModeObserve
			cfg.Detector = name
			const budget = 40_000
			cpu, err := New(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Inject before the capture point so the captured state carries a
			// non-empty detection log.
			cpu.SetFaultHook(firstArchFlip(4_000, 40))
			cpu.RunUntilDecode(budget, 8_000)

			det := cpu.Detector()
			st := det.CaptureState()
			wantStats := det.Stats()
			wantDetections := det.Detections()
			if len(wantDetections) == 0 {
				t.Fatalf("backend %s: no detection before capture; the round trip would be vacuous", name)
			}

			// Mutate: keep executing well past the capture point.
			cpu.Run(budget - cpu.CycleCount())
			if det.Stats() == wantStats {
				t.Fatalf("backend %s: stats unchanged after further execution", name)
			}

			if err := det.RestoreState(st); err != nil {
				t.Fatal(err)
			}
			if got := det.Stats(); got != wantStats {
				t.Fatalf("stats did not round-trip:\ngot  %+v\nwant %+v", got, wantStats)
			}
			if got := det.Detections(); !reflect.DeepEqual(got, wantDetections) {
				t.Fatalf("detection log did not round-trip: got %d entries, want %d", len(got), len(wantDetections))
			}
		})
	}
}

// TestDetectorSnapshotResumeBitIdentical extends the snapshot layer's
// correctness bar to every backend: with a fault injected strictly after the
// snapshot point, a machine restored from the snapshot must replay exactly
// the commit stream, final Result, detector statistics and detection log of
// the machine that kept running.
func TestDetectorSnapshotResumeBitIdentical(t *testing.T) {
	for _, name := range detect.Names() {
		t.Run(name, func(t *testing.T) {
			p := loopProgram(t, 60, 40)
			cfg := DefaultConfig()
			cfg.ITRMode = core.ModeObserve
			cfg.Detector = name
			const budget = 40_000
			const snapAt = 5_000
			const faultAt = 9_000

			flipHook := func() FaultHook { return firstArchFlip(faultAt, 3) }

			cold, err := New(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var coldStream []commitRecord
			cold.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
				coldStream = append(coldStream, commitRecord{pc, *o})
			})
			cold.SetFaultHook(flipHook())
			cold.RunUntilDecode(budget, snapAt)
			snap := cold.Snapshot()
			prefix := len(coldStream)
			coldRes := cold.Run(budget - cold.CycleCount())

			warm, err := New(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var warmStream []commitRecord
			warm.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
				warmStream = append(warmStream, commitRecord{pc, *o})
			})
			if err := warm.Restore(snap); err != nil {
				t.Fatal(err)
			}
			warm.SetFaultHook(flipHook())
			warmRes := warm.Run(budget - snap.Cycle)

			if coldRes != warmRes {
				t.Fatalf("results differ:\ncold %+v\nwarm %+v", coldRes, warmRes)
			}
			if !reflect.DeepEqual(coldStream[prefix:], warmStream) {
				t.Fatal("faulty commit streams differ between cold run and snapshot resume")
			}
			if cs, ws := cold.Detector().Stats(), warm.Detector().Stats(); cs != ws {
				t.Fatalf("detector stats differ:\ncold %+v\nwarm %+v", cs, ws)
			}
			if !reflect.DeepEqual(cold.Detector().Detections(), warm.Detector().Detections()) {
				t.Fatal("detections differ between cold run and snapshot resume")
			}
		})
	}
}

// TestDetectorSnapshotResumeFullMode runs the same cold/warm comparison with
// the full protocol active and no fault: the rivals' extra machinery (DME's
// shadow execution, RepTFD's open-chunk digests) must snapshot and restore
// without perturbing a clean run.
func TestDetectorSnapshotResumeFullMode(t *testing.T) {
	for _, name := range detect.Names() {
		t.Run(name, func(t *testing.T) {
			p := loopProgram(t, 60, 40)
			cfg := DefaultConfig()
			cfg.Detector = name
			const budget = 40_000
			const snapAt = 6_000

			cold, err := New(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var coldStream []commitRecord
			cold.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
				coldStream = append(coldStream, commitRecord{pc, *o})
			})
			cold.RunUntilDecode(budget, snapAt)
			snap := cold.Snapshot()
			prefix := len(coldStream)
			coldRes := cold.Run(budget - cold.CycleCount())

			warm, err := New(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var warmStream []commitRecord
			warm.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
				warmStream = append(warmStream, commitRecord{pc, *o})
			})
			if err := warm.Restore(snap); err != nil {
				t.Fatal(err)
			}
			warmRes := warm.Run(budget - snap.Cycle)

			if coldRes != warmRes {
				t.Fatalf("results differ:\ncold %+v\nwarm %+v", coldRes, warmRes)
			}
			if !reflect.DeepEqual(coldStream[prefix:], warmStream) {
				t.Fatal("commit streams differ between cold run and snapshot resume")
			}
			if cold.Committed().R != warm.Committed().R || cold.Committed().PC != warm.Committed().PC {
				t.Fatal("final architectural registers differ")
			}
			if cs, ws := cold.Detector().Stats(), warm.Detector().Stats(); cs != ws {
				t.Fatalf("detector stats differ:\ncold %+v\nwarm %+v", cs, ws)
			}
		})
	}
}

// TestDetectorProbeCounters checks the probe surfaces commit-time detector
// polls and detections for every backend: polls track committed instructions
// and the detection counter matches the detector's own mismatch count.
func TestDetectorProbeCounters(t *testing.T) {
	for _, name := range detect.Names() {
		t.Run(name, func(t *testing.T) {
			p := loopProgram(t, 60, 40)
			cfg := DefaultConfig()
			cfg.ITRMode = core.ModeObserve
			cfg.Detector = name
			probe := &Probe{}
			cfg.Probe = probe
			cpu, err := New(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cpu.SetFaultHook(firstArchFlip(9_000, 40))
			res := cpu.Run(40_000)

			// Every committed instruction polls the detector at least once
			// (repolls after a stall or retry may add more).
			if got := probe.DetectorPolls.Load(); got < res.Committed {
				t.Fatalf("probe polls = %d, want >= committed instructions (%d)", got, res.Committed)
			}
			want := cpu.Detector().Stats().Mismatches
			if got := probe.DetectorDetections.Load(); got != want {
				t.Fatalf("probe detections = %d, detector reports %d mismatches", got, want)
			}
		})
	}
}
