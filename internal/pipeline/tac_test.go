package pipeline

import (
	"testing"

	"itr/internal/isa"
)

// schedFaultAfter fires the scheduler fault once, at the first premature
// issue opportunity past the given decode event.
func schedFaultAfter(after int64) (SchedulerFaultHook, *bool) {
	fired := new(bool)
	return func(i int64) bool {
		if !*fired && i > after {
			*fired = true
			return true
		}
		return false
	}, fired
}

func TestSchedulerFaultCausesSDCWithoutTAC(t *testing.T) {
	p := loopProgram(t, 20, 30) // mul feeds store: real dependences
	cfg := DefaultConfig()
	cfg.TACEnabled = false
	cpu, _ := New(p, cfg)
	hook, fired := schedFaultAfter(500)
	cpu.SetSchedulerFaultHook(hook)

	st := isa.NewArchState()
	st.PC = p.Entry
	diverged := false
	cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		if diverged {
			return
		}
		if pc != st.PC {
			diverged = true
			return
		}
		want := st.Step(p.Fetch(pc))
		if !o.SameArchEffect(&want) {
			diverged = true
		}
	})
	cpu.Run(2_000_000)
	if !*fired {
		t.Skip("no premature-issue opportunity arose")
	}
	if !diverged {
		t.Skip("stale value happened to match (masked)")
	}
	// The frontend ITR signature is blind to scheduler faults: the decode
	// signals were never corrupted.
	if cpu.Checker().Stats().Mismatches != 0 {
		t.Fatal("frontend ITR detected a scheduler fault — it should be blind")
	}
}

func TestTACDetectsAndRecoversSchedulerFault(t *testing.T) {
	p := loopProgram(t, 20, 30)
	cfg := DefaultConfig()
	cfg.TACEnabled = true
	cpu, _ := New(p, cfg)
	hook, fired := schedFaultAfter(500)
	cpu.SetSchedulerFaultHook(hook)

	st := isa.NewArchState()
	st.PC = p.Entry
	idx := 0
	cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		if pc != st.PC {
			t.Fatalf("commit %d: pc %d, functional %d", idx, pc, st.PC)
		}
		want := st.Step(p.Fetch(pc))
		if !o.SameArchEffect(&want) {
			t.Fatalf("commit %d diverged at pc %d (TAC failed to stop the stale result)", idx, pc)
		}
		idx++
	})
	res := cpu.Run(2_000_000)
	if !*fired {
		t.Skip("no premature-issue opportunity arose")
	}
	if res.Termination != TermHalt {
		t.Fatalf("termination: %v", res.Termination)
	}
	tac := cpu.TAC()
	if tac.Violations != 1 || tac.Recovered != 1 {
		t.Fatalf("tac stats: %+v", tac)
	}
}

func TestTACFaultFreeIsSilent(t *testing.T) {
	p := loopProgram(t, 10, 20)
	cfg := DefaultConfig()
	cfg.TACEnabled = true
	cpu, _ := New(p, cfg)
	res := cpu.Run(2_000_000)
	if res.Termination != TermHalt {
		t.Fatalf("termination: %v", res.Termination)
	}
	tac := cpu.TAC()
	if tac.Violations != 0 {
		t.Fatalf("fault-free violations: %+v", tac)
	}
	if tac.Checked == 0 {
		t.Fatal("TAC never checked anything")
	}
}

func TestTACLockstep(t *testing.T) {
	p := loopProgram(t, 10, 20)
	cfg := DefaultConfig()
	cfg.TACEnabled = true
	cpu, _ := New(p, cfg)
	expectLockstepOn(t, cpu)
}
