package pipeline

import "itr/internal/isa"

// storeOverlay is the speculative memory view: committed memory plus a
// word-granular overlay of in-flight (uncommitted) stores. Flushing the
// pipeline discards the overlay, rolling memory back to the committed image
// without copying it.
//
// Each entry carries the merged speculative word plus a count of the
// in-flight stores that wrote it. When a store commits (committed memory now
// holds its effect) the count drops, and the entry is deleted with the last
// one: the overlay holds only genuinely in-flight words — at most a
// ROB-window's worth — so speculative loads in store-free stretches hit the
// empty-map fast path instead of paying a lookup against every store the run
// ever made.
type specWord struct {
	word uint64 // merged speculative value of the aligned 8-byte word
	refs uint32 // in-flight (dispatched, uncommitted) stores to this word
}

type storeOverlay struct {
	base  *isa.Memory
	words map[uint64]specWord // 8-byte-aligned address -> speculative word
}

var _ isa.MemBus = (*storeOverlay)(nil)

func newStoreOverlay(base *isa.Memory) *storeOverlay {
	return &storeOverlay{base: base, words: make(map[uint64]specWord)}
}

// word returns the current speculative value of the aligned 8-byte word.
func (o *storeOverlay) word(wa uint64) uint64 {
	if len(o.words) != 0 {
		if e, ok := o.words[wa]; ok {
			return e.word
		}
	}
	return o.base.Load(wa, 8)
}

// Load reads size bytes through the overlay. Accesses align down to their
// size, so they never straddle an 8-byte word (matching isa.Memory).
func (o *storeOverlay) Load(addr uint64, size uint8) uint64 {
	if size == 0 {
		return 0
	}
	addr &^= uint64(size) - 1
	w := o.word(addr &^ 7)
	shift := (addr & 7) * 8
	switch size {
	case 1:
		return (w >> shift) & 0xff
	case 2:
		return (w >> shift) & 0xffff
	case 4:
		return (w >> shift) & 0xffffffff
	default:
		return w
	}
}

// Store writes size bytes into the overlay only; committed memory is updated
// separately when the store commits.
func (o *storeOverlay) Store(addr uint64, size uint8, v uint64) {
	if size == 0 {
		return
	}
	addr &^= uint64(size) - 1
	wa := addr &^ 7
	e, ok := o.words[wa]
	if !ok {
		e.word = o.base.Load(wa, 8)
	}
	shift := (addr & 7) * 8
	switch size {
	case 1:
		e.word = e.word&^(uint64(0xff)<<shift) | (v&0xff)<<shift
	case 2:
		e.word = e.word&^(uint64(0xffff)<<shift) | (v&0xffff)<<shift
	case 4:
		e.word = e.word&^(uint64(0xffffffff)<<shift) | (v&0xffffffff)<<shift
	default:
		e.word = v
	}
	e.refs++
	o.words[wa] = e
}

// commitStore releases one in-flight store to the word holding addr. The
// last release deletes the entry: the commit stage has just applied the
// store to committed memory, which therefore now equals the merged word.
func (o *storeOverlay) commitStore(addr uint64) {
	wa := addr &^ 7
	e, ok := o.words[wa]
	if !ok {
		return
	}
	if e.refs <= 1 {
		delete(o.words, wa)
		return
	}
	e.refs--
	o.words[wa] = e
}

// Reset discards all speculative words (pipeline flush).
func (o *storeOverlay) Reset() {
	clear(o.words)
}

// specState is the dispatch-time execution view: speculative register files
// over the committed memory + store overlay. Flushes copy the committed
// registers back and reset the overlay.
type specState struct {
	arch    isa.ArchState // speculative registers; Mem points at the overlay
	overlay *storeOverlay
}

func newSpecState(committed *isa.ArchState, mem *isa.Memory) *specState {
	s := &specState{overlay: newStoreOverlay(mem)}
	s.arch.R = committed.R
	s.arch.F = committed.F
	s.arch.Mem = s.overlay
	return s
}

// execInto computes one instruction's outcome into *o and speculatively
// applies it; dispatch passes a pointer straight into the ROB outcome column.
func (s *specState) execInto(o *isa.Outcome, d isa.DecodeSignals, pc uint64) {
	s.arch.ExecInto(o, d, pc)
	s.arch.ApplyRef(o)
}

// restore rolls the speculative view back to the committed state.
func (s *specState) restore(committed *isa.ArchState) {
	s.arch.R = committed.R
	s.arch.F = committed.F
	s.overlay.Reset()
}
