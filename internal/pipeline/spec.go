package pipeline

import "itr/internal/isa"

// storeOverlay is the speculative memory view: committed memory plus a
// word-granular overlay of in-flight (uncommitted) stores. Flushing the
// pipeline discards the overlay, rolling memory back to the committed image
// without copying it.
type storeOverlay struct {
	base  *isa.Memory
	words map[uint64]uint64 // 8-byte-aligned address -> speculative word
}

var _ isa.MemBus = (*storeOverlay)(nil)

func newStoreOverlay(base *isa.Memory) *storeOverlay {
	return &storeOverlay{base: base, words: make(map[uint64]uint64)}
}

// word returns the current speculative value of the aligned 8-byte word.
func (o *storeOverlay) word(wa uint64) uint64 {
	if v, ok := o.words[wa]; ok {
		return v
	}
	return o.base.Load(wa, 8)
}

// Load reads size bytes through the overlay. Accesses align down to their
// size, so they never straddle an 8-byte word (matching isa.Memory).
func (o *storeOverlay) Load(addr uint64, size uint8) uint64 {
	if size == 0 {
		return 0
	}
	addr &^= uint64(size) - 1
	w := o.word(addr &^ 7)
	shift := (addr & 7) * 8
	switch size {
	case 1:
		return (w >> shift) & 0xff
	case 2:
		return (w >> shift) & 0xffff
	case 4:
		return (w >> shift) & 0xffffffff
	default:
		return w
	}
}

// Store writes size bytes into the overlay only; committed memory is updated
// separately when the store commits.
func (o *storeOverlay) Store(addr uint64, size uint8, v uint64) {
	if size == 0 {
		return
	}
	addr &^= uint64(size) - 1
	wa := addr &^ 7
	w := o.word(wa)
	shift := (addr & 7) * 8
	switch size {
	case 1:
		w = w&^(uint64(0xff)<<shift) | (v&0xff)<<shift
	case 2:
		w = w&^(uint64(0xffff)<<shift) | (v&0xffff)<<shift
	case 4:
		w = w&^(uint64(0xffffffff)<<shift) | (v&0xffffffff)<<shift
	default:
		w = v
	}
	o.words[wa] = w
}

// Reset discards all speculative words (pipeline flush).
func (o *storeOverlay) Reset() {
	if len(o.words) > 0 {
		o.words = make(map[uint64]uint64)
	}
}

// specState is the dispatch-time execution view: speculative register files
// over the committed memory + store overlay. Flushes copy the committed
// registers back and reset the overlay.
type specState struct {
	arch    isa.ArchState // speculative registers; Mem points at the overlay
	overlay *storeOverlay
}

func newSpecState(committed *isa.ArchState, mem *isa.Memory) *specState {
	s := &specState{overlay: newStoreOverlay(mem)}
	s.arch.R = committed.R
	s.arch.F = committed.F
	s.arch.Mem = s.overlay
	return s
}

// exec computes and speculatively applies one instruction's outcome.
func (s *specState) exec(d isa.DecodeSignals, pc uint64) isa.Outcome {
	o := s.arch.Exec(d, pc)
	s.arch.Apply(o)
	return o
}

// restore rolls the speculative view back to the committed state.
func (s *specState) restore(committed *isa.ArchState) {
	s.arch.R = committed.R
	s.arch.F = committed.F
	s.overlay.Reset()
}
