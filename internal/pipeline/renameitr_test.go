package pipeline

import (
	"testing"

	"itr/internal/isa"
)

// renameFaultOnce corrupts the Src1 rename index of the first matching
// correct-path instruction after warmup.
func renameFaultOnce(after int64) (RenameFaultHook, *bool) {
	injected := new(bool)
	return func(i int64, ri RenameIndexes) RenameIndexes {
		if !*injected && i > after && ri.NSrc >= 1 && ri.Src1 != 0 {
			*injected = true
			ri.Src1 ^= 0x1f // read a very different map entry
		}
		return ri
	}, injected
}

func TestRenameFaultInvisibleToFrontendITR(t *testing.T) {
	p := loopProgram(t, 20, 30)
	cfg := DefaultConfig() // main ITR only
	cpu, _ := New(p, cfg)
	hook, injected := renameFaultOnce(500)
	cpu.SetRenameFaultHook(hook)

	st := isa.NewArchState()
	st.PC = p.Entry
	diverged := false
	cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		if diverged {
			return
		}
		if pc != st.PC {
			diverged = true
			return
		}
		want := st.Step(p.Fetch(pc))
		if !o.SameArchEffect(&want) {
			diverged = true
		}
	})
	res := cpu.Run(2_000_000)
	if !*injected {
		t.Fatal("rename fault not injected")
	}
	if !diverged {
		t.Skip("this injection happened to be masked; frontend-invisibility still holds")
	}
	// The SDC went completely unnoticed by the frontend signature.
	if cpu.Checker().Stats().Mismatches != 0 {
		t.Fatal("frontend ITR detected a pure rename fault — it should be blind to it")
	}
	if res.Termination != TermHalt && res.Termination != TermBudget {
		t.Fatalf("termination: %v", res.Termination)
	}
}

func TestRenameITRDetectsAndRecoversRenameFault(t *testing.T) {
	p := loopProgram(t, 20, 30)
	cfg := DefaultConfig()
	cfg.RenameITREnabled = true
	cpu, _ := New(p, cfg)
	hook, injected := renameFaultOnce(500)
	cpu.SetRenameFaultHook(hook)

	// Full lockstep: with the rename checker the fault must be detected
	// pre-commit and recovered, leaving the committed stream exact.
	st := isa.NewArchState()
	st.PC = p.Entry
	idx := 0
	cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		if pc != st.PC {
			t.Fatalf("commit %d: pc %d, functional %d", idx, pc, st.PC)
		}
		want := st.Step(p.Fetch(pc))
		if !o.SameArchEffect(&want) {
			t.Fatalf("commit %d diverged at pc %d", idx, pc)
		}
		idx++
	})
	res := cpu.Run(2_000_000)
	if !*injected {
		t.Fatal("rename fault not injected")
	}
	if res.Termination != TermHalt {
		t.Fatalf("termination: %v", res.Termination)
	}
	rst := cpu.RenameChecker().Stats()
	if rst.Mismatches == 0 || rst.Retries == 0 || rst.Recoveries == 0 {
		t.Fatalf("rename checker missed the fault: %+v", rst)
	}
	// The frontend checker stays silent: the signals were never corrupted.
	if cpu.Checker().Stats().Mismatches != 0 {
		t.Fatalf("frontend checker reacted to a rename fault: %+v", cpu.Checker().Stats())
	}
}

func TestRenameITRFaultFreeIsSilent(t *testing.T) {
	p := loopProgram(t, 20, 30)
	cfg := DefaultConfig()
	cfg.RenameITREnabled = true
	cpu, _ := New(p, cfg)
	res := cpu.Run(2_000_000)
	if res.Termination != TermHalt {
		t.Fatalf("termination: %v", res.Termination)
	}
	rst := cpu.RenameChecker().Stats()
	if rst.Mismatches != 0 || rst.Retries != 0 {
		t.Fatalf("fault-free rename checker events: %+v", rst)
	}
	if rst.Hits == 0 {
		t.Fatal("rename signature cache never hit")
	}
}

func TestRenameITRLockstepOnBenchmark(t *testing.T) {
	p := loopProgram(t, 15, 25)
	cfg := DefaultConfig()
	cfg.RenameITREnabled = true
	cpu, _ := New(p, cfg)
	expectLockstepOn(t, cpu)
}

func TestRenameITRRequiresMainITR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ITREnabled = false
	cfg.RenameITREnabled = true
	if _, err := New(loopProgram(t, 2, 2), cfg); err == nil {
		t.Fatal("rename ITR without main ITR accepted")
	}
}

func TestRenameIndexesPackDistinguishes(t *testing.T) {
	a := RenameIndexes{Src1: 1, Src2: 2, Dst: 3, NSrc: 2, NDst: 1}
	variants := []RenameIndexes{
		{Src1: 2, Src2: 2, Dst: 3, NSrc: 2, NDst: 1},
		{Src1: 1, Src2: 3, Dst: 3, NSrc: 2, NDst: 1},
		{Src1: 1, Src2: 2, Dst: 4, NSrc: 2, NDst: 1},
		{Src1: 1, Src2: 2, Dst: 3, NSrc: 1, NDst: 1},
		{Src1: 1, Src2: 2, Dst: 3, NSrc: 2, NDst: 0},
		{Src1: 1, Src2: 2, Dst: 3, NSrc: 2, NDst: 1, FP: true},
	}
	for i, v := range variants {
		if v.pack() == a.pack() {
			t.Errorf("variant %d packs identically", i)
		}
	}
}

func TestApplyRenameIndexesOnlyTouchesRegisters(t *testing.T) {
	d := isa.Decode(isa.Instruction{Op: isa.OpAdd, Rd: 3, Rs1: 1, Rs2: 2})
	ri := renameIndexesOf(d)
	ri.Src1 = 9
	d2 := applyRenameIndexes(d, ri)
	if d2.Rsrc1 != 9 || d2.Rsrc2 != d.Rsrc2 || d2.Rdst != d.Rdst {
		t.Fatalf("apply: %+v", d2)
	}
	if d2.Opcode != d.Opcode || d2.Flags != d.Flags || d2.Imm != d.Imm {
		t.Fatal("apply touched non-register fields")
	}
	// Crucially, the original signal word (the frontend signature input)
	// differs from the executed one only in the register fields.
	if d.Pack() == d2.Pack() {
		t.Fatal("corrupted index should change the executed vector")
	}
}
