package pipeline

import (
	"testing"

	"itr/internal/core"
	"itr/internal/isa"
	"itr/internal/program"
	"itr/internal/workload"
)

// loopProgram builds a small two-level loop nest with memory traffic.
func loopProgram(t *testing.T, outer, inner int16) *program.Program {
	t.Helper()
	b := program.NewBuilder("nest")
	b.OpImm(isa.OpAddi, 1, 0, outer)
	b.OpImm(isa.OpAddi, 4, 0, 0x1000) // data base
	b.Label("outer")
	b.OpImm(isa.OpAddi, 2, 0, inner)
	b.Label("inner")
	b.OpImm(isa.OpAddi, 3, 3, 1)
	b.Op(isa.OpMul, 5, 3, 3)
	b.Store(isa.OpSd, 5, 4, 8)
	b.Load(isa.OpLd, 6, 4, 8)
	b.Op(isa.OpXor, 7, 6, 3)
	b.OpImm(isa.OpAddi, 2, 2, -1)
	b.Branch(isa.OpBne, 2, 0, "inner")
	b.OpImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "outer")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// functionalStream captures the reference committed stream.
func functionalStream(p *program.Program, limit int64) []struct {
	pc uint64
	o  isa.Outcome
} {
	var out []struct {
		pc uint64
		o  isa.Outcome
	}
	program.Run(p, limit, func(pc uint64, inst isa.Instruction, o isa.Outcome) bool {
		out = append(out, struct {
			pc uint64
			o  isa.Outcome
		}{pc, o})
		return true
	})
	return out
}

// expectLockstep runs the pipeline and fails if the committed stream ever
// deviates from functional execution.
func expectLockstep(t *testing.T, p *program.Program, cfg Config, maxCycles int64) Result {
	t.Helper()
	want := functionalStream(p, 0)
	cpu, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		if idx >= len(want) {
			t.Fatalf("committed more instructions than functional run (%d)", idx)
		}
		w := want[idx]
		if pc != w.pc || !o.SameArchEffect(&w.o) {
			t.Fatalf("commit %d diverged: pipeline pc=%d %v, functional pc=%d %v",
				idx, pc, o, w.pc, w.o)
		}
		idx++
	})
	res := cpu.Run(maxCycles)
	if res.Termination != TermHalt {
		t.Fatalf("termination = %v, want halt (committed %d of %d)", res.Termination, idx, len(want))
	}
	if idx != len(want) {
		t.Fatalf("committed %d instructions, functional executed %d", idx, len(want))
	}
	return res
}

func TestPipelineLockstepSmallLoop(t *testing.T) {
	p := loopProgram(t, 10, 20)
	res := expectLockstep(t, p, DefaultConfig(), 1_000_000)
	if res.SpcFired != 0 {
		t.Fatalf("spc fired %d times on a fault-free run", res.SpcFired)
	}
	if res.IPC() <= 0.5 {
		t.Fatalf("suspiciously low IPC %.2f", res.IPC())
	}
}

func TestPipelineLockstepWithITRDisabled(t *testing.T) {
	p := loopProgram(t, 5, 10)
	cfg := DefaultConfig()
	cfg.ITREnabled = false
	expectLockstep(t, p, cfg, 1_000_000)
}

func TestPipelineLockstepObserveMode(t *testing.T) {
	p := loopProgram(t, 5, 10)
	cfg := DefaultConfig()
	cfg.ITRMode = core.ModeObserve
	expectLockstep(t, p, cfg, 1_000_000)
}

func TestPipelineFaultFreeHasNoDetections(t *testing.T) {
	p := loopProgram(t, 20, 30)
	cpu, err := New(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(1_000_000)
	if res.Termination != TermHalt {
		t.Fatalf("termination = %v", res.Termination)
	}
	st := cpu.Checker().Stats()
	if st.Mismatches != 0 || st.Retries != 0 || st.MachineChecks != 0 {
		t.Fatalf("fault-free run produced checker events: %+v", st)
	}
	if st.Hits == 0 {
		t.Fatal("ITR cache never hit on a loopy program")
	}
	if res.ITRFlushes != 0 {
		t.Fatalf("ITR flushes on fault-free run: %d", res.ITRFlushes)
	}
}

func TestPipelineBenchmarkLockstep(t *testing.T) {
	// The synthesized benchmarks (with wrong paths, jumps, cold code, fp)
	// must commit exactly the functional stream.
	prof, err := workload.ByName("gap")
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.CachedProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 60_000
	want := functionalStream(p, limit)
	cpu, err := New(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	bad := false
	cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		if bad || idx >= len(want) {
			return
		}
		w := want[idx]
		if pc != w.pc || !o.SameArchEffect(&w.o) {
			t.Errorf("commit %d diverged: pipeline pc=%d, functional pc=%d", idx, pc, w.pc)
			bad = true
		}
		idx++
	})
	for cpu.CommittedInsts() < limit && !bad {
		res := cpu.Run(50_000)
		if res.Termination != TermBudget {
			t.Fatalf("unexpected termination %v", res.Termination)
		}
	}
	if idx < limit/2 {
		t.Fatalf("too few commits compared: %d", idx)
	}
	if cpu.Checker().Stats().Mismatches != 0 {
		t.Fatal("fault-free benchmark produced mismatches")
	}
}

func TestPipelineFPBenchmarkLockstep(t *testing.T) {
	prof, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.CachedProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 40_000
	want := functionalStream(p, limit)
	cpu, err := New(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		if idx >= len(want) {
			return
		}
		w := want[idx]
		if pc != w.pc || !o.SameArchEffect(&w.o) {
			t.Fatalf("commit %d diverged (pc %d vs %d)", idx, pc, w.pc)
		}
		idx++
	})
	cpu.Run(200_000)
	if idx < limit/2 {
		t.Fatalf("too few commits: %d", idx)
	}
}

func TestPipelineBudgetTermination(t *testing.T) {
	p := loopProgram(t, 10000, 10000)
	cpu, _ := New(p, DefaultConfig())
	res := cpu.Run(1000)
	if res.Termination != TermBudget {
		t.Fatalf("termination = %v", res.Termination)
	}
	if res.Cycles != 1000 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
}

func TestPipelineRunResumes(t *testing.T) {
	p := loopProgram(t, 10, 20)
	cpu, _ := New(p, DefaultConfig())
	r1 := cpu.Run(100)
	if r1.Termination != TermBudget {
		t.Fatalf("first run: %v", r1.Termination)
	}
	r2 := cpu.Run(1_000_000)
	if r2.Termination != TermHalt {
		t.Fatalf("second run: %v", r2.Termination)
	}
	if r2.Committed <= r1.Committed {
		t.Fatal("no progress on resume")
	}
}

// Fault: corrupt rdst of one dynamic instruction. With the full ITR
// protocol the fault must be detected at commit-poll, flushed and re-
// executed, and the committed stream must remain exactly the golden stream.
func TestPipelineITRRecoversRdstFault(t *testing.T) {
	p := loopProgram(t, 10, 20)
	want := functionalStream(p, 0)
	cpu, _ := New(p, DefaultConfig())
	injected := false
	cpu.SetFaultHook(func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
		// Corrupt a mid-run instruction that writes a register.
		if !injected && i == 400 && d.NumRdst == 1 {
			injected = true
			return d.FlipBit(36) // a bit of the rdst field
		}
		return d
	})
	idx := 0
	cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		w := want[idx]
		if pc != w.pc || !o.SameArchEffect(&w.o) {
			t.Fatalf("commit %d diverged after recovery: pc=%d vs %d", idx, pc, w.pc)
		}
		idx++
	})
	res := cpu.Run(1_000_000)
	if !injected {
		t.Skip("injection point not reached (instruction 400 had no rdst)")
	}
	if res.Termination != TermHalt {
		t.Fatalf("termination = %v", res.Termination)
	}
	st := cpu.Checker().Stats()
	if st.Mismatches == 0 || st.Retries == 0 || st.Recoveries == 0 {
		t.Fatalf("fault not detected+recovered: %+v", st)
	}
	if res.ITRFlushes == 0 {
		t.Fatal("no ITR flush recorded")
	}
}

// The same fault in observe mode must corrupt architectural state (SDC) and
// be recorded as a detection without any recovery.
func TestPipelineObserveModeRecordsSDC(t *testing.T) {
	p := loopProgram(t, 10, 20)
	want := functionalStream(p, 0)
	cfg := DefaultConfig()
	cfg.ITRMode = core.ModeObserve
	cpu, _ := New(p, cfg)
	injected := false
	cpu.SetFaultHook(func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
		if !injected && i == 400 && d.NumRdst == 1 && !d.IsBranching() {
			injected = true
			d.Rdst ^= 0x1f // gross rdst corruption
			return d
		}
		return d
	})
	diverged := false
	idx := 0
	cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		if diverged || idx >= len(want) {
			return
		}
		w := want[idx]
		if pc != w.pc || !o.SameArchEffect(&w.o) {
			diverged = true
		}
		idx++
	})
	cpu.Run(1_000_000)
	if !injected {
		t.Skip("injection point not reached")
	}
	if !diverged {
		t.Fatal("corrupted rdst did not corrupt the committed stream")
	}
	if len(cpu.Checker().Detections()) == 0 {
		t.Fatal("observe mode recorded no detection")
	}
	if cpu.Checker().Stats().Retries != 0 {
		t.Fatal("observe mode must not retry")
	}
}

// num_rsrc corrupted to 3 makes the instruction wait forever; without ITR
// the watchdog must catch the deadlock.
func TestPipelineWatchdogCatchesDeadlock(t *testing.T) {
	p := loopProgram(t, 10, 20)
	cfg := DefaultConfig()
	cfg.ITREnabled = false
	cfg.WatchdogCycles = 2000
	cpu, _ := New(p, cfg)
	injected := false
	cpu.SetFaultHook(func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
		if !injected && i > 400 && d.Opcode == isa.OpMul {
			injected = true
			d.NumRsrc = 3
			return d
		}
		return d
	})
	res := cpu.Run(1_000_000)
	if !injected {
		t.Fatal("injection point not reached")
	}
	if res.Termination != TermDeadlock {
		t.Fatalf("termination = %v, want deadlock", res.Termination)
	}
}

// With full ITR the same deadlock fault is detected by the commit poll of an
// earlier instruction in the trace and recovered by the retry flush — the
// paper's ITR+wdog+R scenario.
func TestPipelineITRRescuesDeadlock(t *testing.T) {
	p := loopProgram(t, 10, 20)
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 4000
	cpu, _ := New(p, cfg)
	injected := false
	cpu.SetFaultHook(func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
		// Inject mid-trace (the mul is never the first instruction of its
		// trace), so an earlier instruction of the faulty trace polls the
		// retry bit before the deadlocked one blocks commit.
		if !injected && i > 400 && d.Opcode == isa.OpMul {
			injected = true
			d.NumRsrc = 3
			return d
		}
		return d
	})
	res := cpu.Run(1_000_000)
	if !injected {
		t.Fatal("injection point not reached")
	}
	if res.Termination != TermHalt {
		t.Fatalf("termination = %v, want halt (recovered)", res.Termination)
	}
	if cpu.Checker().Stats().Recoveries == 0 {
		t.Fatal("no recovery recorded")
	}
}

// is_branch cleared on a predicted-taken branch: fetch redirects, nobody
// validates, and the committed stream has a PC discontinuity that the
// sequential-PC check catches (the paper's Section 4 spc scenario).
func TestPipelineSpcCatchesIsBranchFault(t *testing.T) {
	p := loopProgram(t, 30, 40)
	cfg := DefaultConfig()
	cfg.ITRMode = core.ModeObserve // let the fault commit
	cpu, _ := New(p, cfg)
	injected := false
	cpu.SetFaultHook(func(i int64, pc uint64, wrongPath bool, d isa.DecodeSignals) isa.DecodeSignals {
		// Wait until the backedge branch is warm in the BTB, then clear
		// is_branch on one of its instances.
		if !injected && i > 2000 && d.IsBranching() && !d.HasFlag(isa.FlagUncond) {
			injected = true
			d.Flags &^= isa.FlagBranch
			return d
		}
		return d
	})
	res := cpu.Run(1_000_000)
	if !injected {
		t.Fatal("injection point not reached")
	}
	if res.SpcFired == 0 {
		t.Fatal("sequential-PC check did not fire")
	}
}

func TestPredictorLearnsLoopBranch(t *testing.T) {
	pr := NewPredictor(64, 2, 8)
	pc, target := uint64(100), uint64(50)
	// Train a strongly-taken branch past gshare history warm-up: once the
	// history register saturates at all-taken, the steady-state counter
	// saturates too.
	for i := 0; i < 20; i++ {
		pr.Train(pc, target, true, false)
	}
	next, taken := pr.Predict(pc)
	if !taken || next != target {
		t.Fatalf("predict = %d taken=%v", next, taken)
	}
	// Unknown PC falls through.
	next, taken = pr.Predict(999)
	if taken || next != 1000 {
		t.Fatalf("cold predict = %d taken=%v", next, taken)
	}
}

func TestPredictorUnconditionalAlwaysTaken(t *testing.T) {
	pr := NewPredictor(64, 2, 8)
	pr.Train(7, 1234, true, true)
	next, taken := pr.Predict(7)
	if !taken || next != 1234 {
		t.Fatalf("uncond predict = %d taken=%v", next, taken)
	}
}

func TestPredictorDirectionAdapts(t *testing.T) {
	pr := NewPredictor(64, 2, 8)
	pc, target := uint64(100), uint64(50)
	pr.Train(pc, target, true, false) // install BTB entry
	for i := 0; i < 8; i++ {
		pr.Train(pc, target, false, false)
	}
	if _, taken := pr.Predict(pc); taken {
		t.Fatal("not-taken branch still predicted taken")
	}
}

func TestPipelineMispredictsAreRepaired(t *testing.T) {
	// The inner loop exit mispredicts each outer iteration; commits must
	// still be exact (checked via lockstep) and repairs counted.
	p := loopProgram(t, 30, 5)
	res := expectLockstep(t, p, DefaultConfig(), 1_000_000)
	if res.Mispredicts == 0 {
		t.Fatal("no mispredictions on a loop-exit-heavy program")
	}
}

func TestConfigNormalize(t *testing.T) {
	var cfg Config
	n := cfg.normalize()
	if n.FetchWidth == 0 || n.ROBSize == 0 || n.WatchdogCycles == 0 {
		t.Fatalf("normalize left zeros: %+v", n)
	}
}

func TestTerminationString(t *testing.T) {
	for _, term := range []Termination{TermBudget, TermHalt, TermMachineCheck, TermDeadlock, Termination(99)} {
		if term.String() == "" {
			t.Fatalf("empty rendering for %d", int(term))
		}
	}
}

func TestStoreOverlay(t *testing.T) {
	base := isa.NewMemory()
	base.Store(0x100, 8, 0x1111)
	o := newStoreOverlay(base)
	if o.Load(0x100, 8) != 0x1111 {
		t.Fatal("overlay must read through to base")
	}
	o.Store(0x100, 4, 0x2222)
	if o.Load(0x100, 8) != 0x2222 {
		t.Fatalf("overlay write lost: %#x", o.Load(0x100, 8))
	}
	if base.Load(0x100, 8) != 0x1111 {
		t.Fatal("overlay leaked into base")
	}
	o.Reset()
	if o.Load(0x100, 8) != 0x1111 {
		t.Fatal("reset did not discard speculative words")
	}
}

func TestStoreOverlaySubword(t *testing.T) {
	base := isa.NewMemory()
	o := newStoreOverlay(base)
	o.Store(0x10, 1, 0xaa)
	o.Store(0x11, 1, 0xbb)
	if got := o.Load(0x10, 2); got != 0xbbaa {
		t.Fatalf("subword overlay = %#x", got)
	}
}
