package itr_test

import (
	"testing"

	"itr"
	"itr/internal/isa"
	"itr/internal/pipeline"
)

func TestFacadeBenchmarks(t *testing.T) {
	if got := len(itr.Benchmarks()); got != 16 {
		t.Fatalf("benchmarks = %d", got)
	}
	b, err := itr.BenchmarkByName("bzip")
	if err != nil || b.StaticTraces != 283 {
		t.Fatalf("bzip: %+v, %v", b, err)
	}
	if _, err := itr.BenchmarkByName("none"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeDesignSpace(t *testing.T) {
	if got := len(itr.DesignSpace()); got != 18 {
		t.Fatalf("design space = %d", got)
	}
	cfg := itr.DefaultCacheConfig()
	if cfg.Entries != 1024 || cfg.Assoc != 2 {
		t.Fatalf("default cache config %+v", cfg)
	}
}

func TestFacadeBuildAndCharacterize(t *testing.T) {
	b, err := itr.BenchmarkByName("wupwise")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := itr.BuildBenchmark(b)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() == 0 {
		t.Fatal("empty program")
	}
	c, err := itr.Characterize(b, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if c.StaticTraces() != 18 {
		t.Fatalf("wupwise static traces = %d", c.StaticTraces())
	}
}

func TestFacadeCoverage(t *testing.T) {
	b, err := itr.BenchmarkByName("art")
	if err != nil {
		t.Fatal(err)
	}
	res, err := itr.Coverage(b, itr.DefaultCacheConfig(), 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInsts != 300_000 {
		t.Fatalf("total insts = %d", res.TotalInsts)
	}
	if res.DetectionLoss > 1 {
		t.Fatalf("art detection loss %.2f%%, should be negligible", res.DetectionLoss)
	}
}

func TestFacadeInjectFaults(t *testing.T) {
	b, err := itr.BenchmarkByName("art")
	if err != nil {
		t.Fatal(err)
	}
	cfg := itr.DefaultCampaign()
	cfg.Faults = 4
	cfg.Experiment.WindowCycles = 20_000
	res, err := itr.InjectFaults(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 4 {
		t.Fatalf("total = %d", res.Total)
	}
}

func TestFacadeNewCPU(t *testing.T) {
	b, err := itr.BenchmarkByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := itr.BuildBenchmark(b)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := itr.NewCPU(prog, itr.DefaultPipeline())
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(5_000)
	if res.Termination != pipeline.TermBudget || res.Committed == 0 {
		t.Fatalf("run: %+v", res)
	}
	if cpu.Checker() == nil {
		t.Fatal("default pipeline must attach the ITR checker")
	}
}

// End-to-end integration: the committed stream of the facade-built CPU
// matches functional execution of the facade-built program.
func TestFacadeEndToEndLockstep(t *testing.T) {
	b, err := itr.BenchmarkByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := itr.BuildBenchmark(b)
	if err != nil {
		t.Fatal(err)
	}
	st := isa.NewArchState()
	st.PC = prog.Entry
	cpu, err := itr.NewCPU(prog, itr.DefaultPipeline())
	if err != nil {
		t.Fatal(err)
	}
	mismatch := false
	n := 0
	cpu.SetCommitObserver(func(pc uint64, o *isa.Outcome) {
		if mismatch {
			return
		}
		if pc != st.PC {
			mismatch = true
			return
		}
		want := st.Step(prog.Fetch(pc))
		if !o.SameArchEffect(&want) {
			mismatch = true
		}
		n++
	})
	cpu.Run(20_000)
	if mismatch {
		t.Fatal("pipeline diverged from functional execution")
	}
	if n < 10_000 {
		t.Fatalf("too few commits: %d", n)
	}
}

func TestVersion(t *testing.T) {
	if itr.Version == "" {
		t.Fatal("version must be set")
	}
}

func TestFacadeExtensionsCompose(t *testing.T) {
	// The full regimen — parity, rename ITR, checkpointing, TAC — must run
	// fault-free through the facade without events.
	b, err := itr.BenchmarkByName("art")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := itr.BuildBenchmark(b)
	if err != nil {
		t.Fatal(err)
	}
	cfg := itr.DefaultPipeline()
	cfg.ITR.Parity = true
	cfg.RenameITREnabled = true
	cfg.CheckpointEnabled = true
	cfg.TACEnabled = true
	cpu, err := itr.NewCPU(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(30_000)
	if res.Termination != pipeline.TermBudget {
		t.Fatalf("termination: %v", res.Termination)
	}
	if cpu.Checker().Stats().Mismatches != 0 ||
		cpu.RenameChecker().Stats().Mismatches != 0 ||
		cpu.TAC().Violations != 0 {
		t.Fatal("fault-free regimen produced check events")
	}
	if cpu.Checkpoints() == nil {
		t.Fatal("checkpoint manager missing")
	}
}

func TestFacadeCampaignWithCheckpoint(t *testing.T) {
	b, err := itr.BenchmarkByName("art")
	if err != nil {
		t.Fatal(err)
	}
	cfg := itr.DefaultCampaign()
	cfg.Faults = 3
	cfg.Experiment.WindowCycles = 15_000
	cfg.Experiment.Checkpoint = true
	res, err := itr.InjectFaults(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 3 {
		t.Fatalf("total = %d", res.Total)
	}
}
