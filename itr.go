// Package itr is a from-scratch reproduction of "Inherent Time Redundancy
// (ITR): Using Program Repetition for Low-Overhead Fault Tolerance"
// (Reddy and Rotenberg, DSN 2007).
//
// Programs execute the same static instruction traces repeatedly at short
// dynamic distances. Because decode signals depend only on the program
// text, a per-trace XOR signature of the decode-signal vector is invariant
// across instances: caching signatures in a small PC-indexed ITR cache and
// comparing them on every recurrence detects transient faults in the fetch
// and decode units at a fraction of the cost of structural duplication or
// full time-redundant execution.
//
// This package is a facade over the implementation packages:
//
//   - internal/isa       — the instruction set and Table 2 decode signals
//   - internal/program   — program IR, assembler-style builder, runner
//   - internal/workload  — SPEC2K stand-in benchmarks (Table 1 calibrated)
//   - internal/trace     — trace formation and repetition characterization
//   - internal/cache     — the set-associative cache engine
//   - internal/sig       — signature generation and protected control state
//   - internal/core      — the ITR cache, ITR ROB, checker and coverage sim
//   - internal/pipeline  — the cycle-level out-of-order core
//   - internal/fault     — fault injection campaigns (Figure 8)
//   - internal/energy    — CACTI-style energy/area models (Figure 9)
//   - internal/baseline  — structural duplication / time redundancy models
//   - internal/checkpoint — coarse-grain checkpointing (Section 2.3 extension)
//   - internal/asm       — text assembler/disassembler for the ISA
//   - internal/report    — regeneration of every table and figure
//
// The `itr` CLI (subcommands char, coverage, fault, energy, sim, dump)
// prints the paper's tables and figures; the examples directory
// shows the library API on progressively richer scenarios, ending with
// examples/regimen — the full check regimen recovering three distinct
// fault types in one verified run.
package itr

import (
	"fmt"

	"itr/internal/core"
	"itr/internal/fault"
	"itr/internal/pipeline"
	"itr/internal/program"
	"itr/internal/report"
	"itr/internal/trace"
	"itr/internal/workload"
)

// Re-exported configuration types. These aliases make the common surface
// usable without importing internal packages directly in examples and
// benchmarks within this module.
type (
	// CacheConfig selects an ITR cache design point (size, associativity,
	// replacement, parity, miss fallback).
	CacheConfig = core.Config
	// CoverageResult reports detection/recovery coverage loss for one
	// benchmark and configuration.
	CoverageResult = core.Result
	// PipelineConfig sizes the cycle-level core.
	PipelineConfig = pipeline.Config
	// CampaignConfig parameterizes a fault-injection campaign.
	CampaignConfig = fault.CampaignConfig
	// CampaignResult aggregates a campaign's classified outcomes.
	CampaignResult = fault.CampaignResult
	// Benchmark describes one SPEC2K stand-in workload profile.
	Benchmark = workload.Profile
	// Program is an executable synthetic program.
	Program = program.Program
)

// DefaultBudget is the default dynamic-instruction budget per benchmark.
const DefaultBudget = workload.DefaultBudget

// DefaultCacheConfig returns the paper's headline ITR cache: 2-way set
// associative, 1024 signatures.
func DefaultCacheConfig() CacheConfig { return core.DefaultConfig() }

// DesignSpace returns the 18 cache configurations of the Section 3 sweep.
func DesignSpace() []CacheConfig { return core.DesignSpace() }

// Benchmarks returns all 16 SPEC2K stand-in profiles.
func Benchmarks() []Benchmark { return workload.Suite() }

// BenchmarkByName looks up one profile ("bzip" ... "wupwise").
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// BuildBenchmark synthesizes the program for a benchmark profile. The
// program contains exactly the profile's Table 1 static trace count.
func BuildBenchmark(b Benchmark) (*Program, error) { return workload.Build(b) }

// Characterize runs trace characterization (Figures 1-4, Table 1 metrics)
// for a benchmark at the given instruction budget.
func Characterize(b Benchmark, budget int64) (*trace.Characterizer, error) {
	return report.Characterization(b, budget)
}

// Coverage measures ITR coverage loss for one benchmark and cache
// configuration: the unit of Figures 6 and 7.
func Coverage(b Benchmark, cfg CacheConfig, budget int64) (CoverageResult, error) {
	cells, err := report.CoverageSweep([]workload.Profile{b}, []core.Config{cfg}, budget)
	if err != nil {
		return CoverageResult{}, err
	}
	if len(cells) != 1 {
		return CoverageResult{}, fmt.Errorf("coverage: expected one cell, got %d", len(cells))
	}
	return cells[0].Result, nil
}

// InjectFaults runs a Section 4 fault-injection campaign on a benchmark.
func InjectFaults(b Benchmark, cfg CampaignConfig) (CampaignResult, error) {
	prog, err := workload.CachedProgram(b)
	if err != nil {
		return CampaignResult{}, err
	}
	return fault.RunCampaign(b.Name, prog, cfg)
}

// DefaultCampaign returns a scaled-down campaign configuration; raise
// Faults to 1000 and Experiment.WindowCycles to 1e6 for paper fidelity.
func DefaultCampaign() CampaignConfig { return fault.DefaultCampaignConfig() }

// NewCPU builds a cycle-level core over a program (ITR-protected by
// default).
func NewCPU(p *Program, cfg PipelineConfig) (*pipeline.CPU, error) {
	return pipeline.New(p, cfg)
}

// DefaultPipeline returns the 4-wide R10K-style core configuration with the
// paper's headline ITR cache attached.
func DefaultPipeline() PipelineConfig { return pipeline.DefaultConfig() }

// Version identifies this reproduction.
const Version = "1.0.0"
