module itr

go 1.22
